// Distributional-equivalence tests: the count-based engine simulates
// the same Markov chain as the agent-array engine (projected onto
// configurations), so for every adapted protocol the distribution of
// convergence times must match. The two engines consume randomness
// differently, so runs are compared statistically — paired trial sets,
// equal per-trial seed derivation, and a pinned tolerance on the mean
// convergence time — rather than bit for bit.
package popcount_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"popcount"
	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/sim"
)

// equivTolerance is the pinned relative tolerance on the difference of
// mean convergence times between the two engines over equivTrials
// paired trials. With ≥64 trials the standard error of each mean is
// ~1–2% for these protocols, so 10% is a ≥5σ bound: failures indicate a
// real dynamics mismatch, not noise.
const (
	equivTolerance = 0.10
	equivTrials    = 64
	equivN         = 1024
)

// meanAgent runs trials of an agent-form protocol and returns the mean
// convergence time, failing the test on any non-converged trial.
func meanAgent(t *testing.T, name string, factory func(int) sim.Protocol, cfg sim.Config) float64 {
	t.Helper()
	runs, err := sim.RunTrials(factory, equivTrials, cfg, sim.TrialOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("%s agent trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s agent trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / equivTrials
}

// batched returns cfg with the multinomial batch-stepping mode enabled.
func batched(cfg sim.Config) sim.Config {
	cfg.BatchSteps = true
	return cfg
}

// meanCount is meanAgent for the count form.
func meanCount(t *testing.T, name string, factory func(int) sim.CountProtocol, cfg sim.Config) float64 {
	t.Helper()
	runs, err := sim.RunCountTrials(factory, equivTrials, cfg, sim.CountTrialOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("%s count trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s count trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / equivTrials
}

func checkEquivalence(t *testing.T, name string, agent, count float64) {
	t.Helper()
	gap := math.Abs(agent-count) / agent
	t.Logf("%s: agent mean T_C = %.0f, count mean T_C = %.0f, relative gap %.3f",
		name, agent, count, gap)
	if gap > equivTolerance {
		t.Errorf("%s: engines disagree: agent mean %.0f vs count mean %.0f (gap %.3f > %.2f)",
			name, agent, count, gap, equivTolerance)
	}
}

func TestCountEngineEquivalenceEpidemic(t *testing.T) {
	cfg := sim.Config{Seed: 0xE1, CheckEvery: equivN / 8}
	spec := func() *sim.Spec { return epidemic.NewSingleSourceSpec(equivN, true) }
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(spec()) }
	agent := meanAgent(t, "epidemic",
		func(int) sim.Protocol { return sim.NewSpecAgent(spec()) }, cfg)
	count := meanCount(t, "epidemic", factory, cfg)
	checkEquivalence(t, "epidemic", agent, count)
	checkEquivalence(t, "epidemic batched", agent,
		meanCount(t, "epidemic batched", factory, batched(cfg)))
}

func TestCountEngineEquivalenceJunta(t *testing.T) {
	cfg := sim.Config{Seed: 0xE2, CheckEvery: equivN / 8}
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(equivN)) }
	agent := meanAgent(t, "junta",
		func(int) sim.Protocol { return junta.New(equivN) }, cfg)
	count := meanCount(t, "junta", factory, cfg)
	checkEquivalence(t, "junta", agent, count)
	checkEquivalence(t, "junta batched", agent,
		meanCount(t, "junta batched", factory, batched(cfg)))
}

func TestCountEngineEquivalenceLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("leader equivalence is the heaviest pairing; skipped with -short")
	}
	js := 2 * sim.Log2Ceil(equivN)
	cfg := sim.Config{Seed: 0xE4, CheckEvery: equivN}
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(leader.NewSpec(equivN, clock.DefaultM, js)) }
	agent := meanAgent(t, "leader",
		func(int) sim.Protocol { return leader.NewProtocol(equivN, clock.DefaultM, js) }, cfg)
	count := meanCount(t, "leader", factory, cfg)
	checkEquivalence(t, "leader", agent, count)
	checkEquivalence(t, "leader batched", agent,
		meanCount(t, "leader batched", factory, batched(cfg)))
}

func TestCountEngineEquivalenceClock(t *testing.T) {
	const maxPhase = 3
	js := 2 * sim.Log2Ceil(equivN)
	cfg := sim.Config{Seed: 0xE3, CheckEvery: equivN}
	factory := func(int) sim.CountProtocol {
		return sim.NewSpecCount(clock.NewSpec(equivN, clock.DefaultM, js, maxPhase))
	}
	agent := meanAgent(t, "clock",
		func(int) sim.Protocol { return clock.NewProtocol(equivN, clock.DefaultM, js, maxPhase) }, cfg)
	count := meanCount(t, "clock", factory, cfg)
	checkEquivalence(t, "clock", agent, count)
	checkEquivalence(t, "clock batched", agent,
		meanCount(t, "clock batched", factory, batched(cfg)))
}

func TestCountEngineEquivalenceGeometric(t *testing.T) {
	cfg := sim.Config{Seed: 0xE5, CheckEvery: equivN / 8}
	spec := func() *sim.Spec { return baseline.NewGeometricSpec(equivN) }
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(spec()) }
	agent := meanAgent(t, "geometric",
		func(int) sim.Protocol { return sim.NewSpecAgent(spec()) }, cfg)
	count := meanCount(t, "geometric", factory, cfg)
	checkEquivalence(t, "geometric", agent, count)
	checkEquivalence(t, "geometric batched", agent,
		meanCount(t, "geometric batched", factory, batched(cfg)))
}

// TestWithEngineCount exercises the public engine selection: the count
// engine runs supported algorithms at populations the agent engine
// would need gigabytes for, rejects unsupported algorithms with a clear
// error, and EngineAuto resolves per algorithm.
func TestWithEngineCount(t *testing.T) {
	const n = 1 << 21 // 2M agents: trivial for the count engine
	res, err := popcount.Count(popcount.GeometricEstimate, n,
		popcount.WithEngine(popcount.EngineCount), popcount.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("count-engine run did not converge")
	}
	if res.Outputs != nil {
		t.Fatalf("count-engine result carries per-agent outputs (%d entries)", len(res.Outputs))
	}
	// The max of n Geometric(1/2) samples is log2 n + Θ(1) w.h.p.
	if res.Output < 15 || res.Output > 40 {
		t.Fatalf("log-estimate %d implausible for n=2^21", res.Output)
	}

	if _, err := popcount.Count(popcount.TokenBag, 64,
		popcount.WithEngine(popcount.EngineCount)); err == nil {
		t.Fatal("EngineCount accepted an algorithm without a count form")
	}

	// The core counting protocols run on the count engine since their
	// spec port; the configuration view must agree with the agent form
	// on the answer itself.
	res, err = popcount.Count(popcount.CountExact, 512,
		popcount.WithEngine(popcount.EngineCount), popcount.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Output != 512 {
		t.Fatalf("CountExact on the count engine: converged=%v output=%d, want exact 512", res.Converged, res.Output)
	}

	s, err := popcount.NewSimulation(popcount.GeometricEstimate, 1024,
		popcount.WithEngine(popcount.EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != popcount.EngineCount {
		t.Fatalf("EngineAuto picked %v for geometric, want count", s.Engine())
	}
	// EngineAuto stays conservative for the core protocols: their count
	// form exists but is not the profitable default (Spec.PreferCount).
	s, err = popcount.NewSimulation(popcount.CountExact, 1024,
		popcount.WithEngine(popcount.EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != popcount.EngineAgent {
		t.Fatalf("EngineAuto picked %v for exact, want agent", s.Engine())
	}

	// Non-uniform schedulers are incompatible with the configuration
	// view.
	if _, err := popcount.Count(popcount.GeometricEstimate, 1024,
		popcount.WithEngine(popcount.EngineCount),
		popcount.WithScheduler(popcount.RandomMatching)); err == nil {
		t.Fatal("count engine accepted a non-uniform scheduler")
	}
}

// TestWithEngineCountBatched exercises the public batched mode: it runs
// supported algorithms at populations beyond the exact count engine's
// comfort, accepts the WithBatchRounds knob, reports its concrete kind,
// and is subject to the same restrictions as EngineCount.
func TestWithEngineCountBatched(t *testing.T) {
	const n = 1 << 22 // 4M agents
	res, err := popcount.Count(popcount.GeometricEstimate, n,
		popcount.WithEngine(popcount.EngineCountBatched),
		popcount.WithBatchRounds(4), popcount.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("batched count-engine run did not converge")
	}
	if res.Outputs != nil {
		t.Fatalf("batched count-engine result carries per-agent outputs (%d entries)", len(res.Outputs))
	}
	// The max of n Geometric(1/2) samples is log2 n + Θ(1) w.h.p.
	if res.Output < 15 || res.Output > 45 {
		t.Fatalf("log-estimate %d implausible for n=2^22", res.Output)
	}

	k, err := popcount.ParseEngineKind("count-batched")
	if err != nil || k != popcount.EngineCountBatched {
		t.Fatalf("ParseEngineKind(count-batched) = %v, %v", k, err)
	}
	s, err := popcount.NewSimulation(popcount.GeometricEstimate, 1024,
		popcount.WithEngine(popcount.EngineCountBatched))
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != popcount.EngineCountBatched {
		t.Fatalf("Engine() = %v, want count-batched", s.Engine())
	}

	if _, err := popcount.Count(popcount.TokenBag, 64,
		popcount.WithEngine(popcount.EngineCountBatched)); err == nil {
		t.Fatal("EngineCountBatched accepted an algorithm without a count form")
	}

	// A core protocol on the public batched path end to end. 1024 is a
	// power of two, so ⌊log₂ n⌋ = ⌈log₂ n⌉ = 10 is the only correct
	// answer — no slack for an off-by-one in the search stage.
	res, err = popcount.Count(popcount.Approximate, 1024,
		popcount.WithEngine(popcount.EngineCountBatched), popcount.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Output != 10 {
		t.Fatalf("Approximate on the batched engine: converged=%v output=%d, want exactly 10", res.Converged, res.Output)
	}
	if _, err := popcount.NewSimulation(popcount.GeometricEstimate, 1024,
		popcount.WithEngine(popcount.EngineCountBatched),
		popcount.WithScheduler(popcount.RandomMatching)); !errors.Is(err, sim.ErrCountScheduler) || !errors.Is(err, popcount.ErrUnsupportedEngine) {
		t.Fatalf("batched engine with non-uniform scheduler: got %v, want ErrCountScheduler wrapped in ErrUnsupportedEngine", err)
	}
}

// TestEngineSchedulerValidation pins the construction-time validation
// of engine × scheduler combinations: explicit count-engine requests
// with a non-uniform scheduler fail from NewSimulation and RunEnsemble
// (not at Run time), and EngineAuto falls back to the agent engine
// instead of erroring.
func TestEngineSchedulerValidation(t *testing.T) {
	// EngineAuto + non-uniform scheduler: the count engine is ruled out,
	// so auto must resolve to the agent engine and run fine.
	s, err := popcount.NewSimulation(popcount.GeometricEstimate, 256,
		popcount.WithEngine(popcount.EngineAuto),
		popcount.WithScheduler(popcount.RandomMatching))
	if err != nil {
		t.Fatalf("EngineAuto with matching scheduler errored: %v", err)
	}
	if s.Engine() != popcount.EngineAgent {
		t.Fatalf("EngineAuto with matching scheduler picked %v, want agent", s.Engine())
	}
	res, err := popcount.Count(popcount.GeometricEstimate, 256,
		popcount.WithEngine(popcount.EngineAuto),
		popcount.WithScheduler(popcount.RandomMatching))
	if err != nil || !res.Converged {
		t.Fatalf("EngineAuto fallback run failed: %v (converged=%v)", err, res.Converged)
	}
	if _, err := popcount.RunEnsemble(context.Background(),
		popcount.GeometricEstimate, 256, 4,
		popcount.WithEngine(popcount.EngineAuto),
		popcount.WithScheduler(popcount.RandomMatching)); err != nil {
		t.Fatalf("EngineAuto ensemble with matching scheduler errored: %v", err)
	}

	// An explicit count-engine request with the same scheduler must
	// surface ErrCountScheduler from the constructors.
	if _, err := popcount.NewSimulation(popcount.GeometricEstimate, 256,
		popcount.WithEngine(popcount.EngineCount),
		popcount.WithScheduler(popcount.RandomMatching)); !errors.Is(err, sim.ErrCountScheduler) || !errors.Is(err, popcount.ErrUnsupportedEngine) {
		t.Fatalf("NewSimulation: got %v, want ErrCountScheduler wrapped in ErrUnsupportedEngine", err)
	}
	if _, err := popcount.RunEnsemble(context.Background(),
		popcount.GeometricEstimate, 256, 4,
		popcount.WithEngine(popcount.EngineCount),
		popcount.WithScheduler(popcount.RandomMatching)); !errors.Is(err, sim.ErrCountScheduler) || !errors.Is(err, popcount.ErrUnsupportedEngine) {
		t.Fatalf("RunEnsemble: got %v, want ErrCountScheduler wrapped in ErrUnsupportedEngine", err)
	}

	// A uniform scheduler registered explicitly stays compatible.
	if _, err := popcount.NewSimulation(popcount.GeometricEstimate, 256,
		popcount.WithEngine(popcount.EngineCount),
		popcount.WithScheduler(popcount.UniformPairs)); err != nil {
		t.Fatalf("uniform scheduler rejected: %v", err)
	}
}

// TestRunEnsembleCountEngine pins the ensemble path: reproducible at any
// parallelism, aggregate statistics filled, observers fired.
func TestRunEnsembleCountEngine(t *testing.T) {
	const n, trials = 4096, 16
	run := func(par int) popcount.EnsembleResult {
		ens, err := popcount.RunEnsemble(context.Background(),
			popcount.GeometricEstimate, n, trials,
			popcount.WithEngine(popcount.EngineCount),
			popcount.WithSeed(77), popcount.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return ens
	}
	seq, parl := run(1), run(4)
	if !reflect.DeepEqual(seq, parl) {
		t.Fatal("count-engine ensemble is not reproducible across parallelism")
	}
	if seq.Stats.Trials != trials || seq.Stats.Converged != trials {
		t.Fatalf("expected %d converged trials, got %+v", trials, seq.Stats)
	}
	if seq.Stats.Interactions.Mean <= 0 || seq.Stats.Estimates.Mean <= 0 {
		t.Fatalf("aggregates missing: %+v", seq.Stats)
	}

	var snaps atomic.Int64
	_, err := popcount.RunEnsemble(context.Background(),
		popcount.GeometricEstimate, n, 4,
		popcount.WithEngine(popcount.EngineCount), popcount.WithSeed(78),
		popcount.WithParallelism(2),
		popcount.WithObserver(func(popcount.Snapshot) { snaps.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	if snaps.Load() == 0 {
		t.Fatal("ensemble observer never fired on the count engine")
	}

	// The batched mode shares the ensemble path — and its bit-for-bit
	// reproducibility across parallelism.
	runBatched := func(par int) popcount.EnsembleResult {
		ens, err := popcount.RunEnsemble(context.Background(),
			popcount.GeometricEstimate, n, 8,
			popcount.WithEngine(popcount.EngineCountBatched),
			popcount.WithSeed(79), popcount.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return ens
	}
	if !reflect.DeepEqual(runBatched(1), runBatched(3)) {
		t.Fatal("batched count-engine ensemble is not reproducible across parallelism")
	}
}

package popcount

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoders —
// the PCSS envelope directly, and the PSNA/PSNC engine decoders through
// forged envelopes around the fuzz input — asserting they error cleanly:
// no panics, and no attacker-controlled allocations (a forged header
// cannot buy memory the input bytes did not pay for; the restored
// simulation is bounded by the header's validated population).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed the corpus with genuine snapshots of both engine families so
	// the fuzzer starts at the format's happy path.
	for _, kind := range []EngineKind{EngineAgent, EngineCount} {
		s, err := NewSimulation(Approximate, 32, WithSeed(3), WithEngine(kind),
			WithFaults(FaultPlan{Seed: 1, Bursts: []FaultBurst{{At: 40, Agents: 4}}}))
		if err != nil {
			f.Fatal(err)
		}
		s.Step(128)
		snap, err := s.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(snap)
	}
	f.Add([]byte("PCSS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Latency tripwire: a decode (or the bounded 16-step resume) of
		// arbitrary bytes must stay far under interactive time — a slow
		// input means a forged header bought unbounded work.
		start := time.Now()
		defer func() {
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("slow input: %v", d)
			}
		}()
		// PCSS decoder on the raw input.
		if s, err := RestoreSimulation(data); err == nil {
			// A decodable blob must yield a working simulation.
			s.Step(16)
			_ = s.Stats()
		}

		// PSNA/PSNC decoders: wrap the input as the engine blob of an
		// otherwise-valid envelope, so the inner parsers see arbitrary
		// bytes behind a header that passes the envelope checks.
		for _, kind := range []EngineKind{EngineAgent, EngineCount, EngineCountBatched} {
			hdr := make([]byte, 0, rootSnapHeaderLen+len(data))
			hdr = binary.LittleEndian.AppendUint32(hdr, rootSnapMagic)
			hdr = binary.LittleEndian.AppendUint16(hdr, rootSnapVersion)
			hdr = binary.LittleEndian.AppendUint16(hdr, uint16(Approximate))
			hdr = append(hdr, byte(kind), 0)
			hdr = binary.LittleEndian.AppendUint64(hdr, 16) // n
			hdr = binary.LittleEndian.AppendUint64(hdr, 1)  // seed
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // maxI
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // checkEvery
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // confirmWindow
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // clockM
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // fastRounds
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // shift
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // batchRounds
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // faultLen
			hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(data)))
			hdr = append(hdr, data...)
			if s, err := RestoreSimulation(hdr); err == nil {
				s.Step(16)
			}
		}
	})
}

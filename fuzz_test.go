package popcount

import (
	"encoding/binary"
	"testing"
	"time"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// FuzzSchedulerPairs drives every built-in scheduler — uniform, biased,
// matching, and the three graph families — over fuzzed (n, seed) inputs
// and asserts the Scheduler contract: both indices in [0, n), initiator
// distinct from responder, and bit-for-bit determinism when the same
// scheduler is rebuilt and replayed on an equal random stream.
func FuzzSchedulerPairs(f *testing.F) {
	f.Add(uint64(1), 8, 64)
	f.Add(uint64(42), 33, 256)
	f.Add(uint64(7), 1024, 128)
	f.Fuzz(func(t *testing.T, seed uint64, n, draws int) {
		// Keep graph construction cheap: small-to-moderate populations,
		// composite so the torus accepts them, bounded draw counts.
		if n < 4 || n > 1<<14 {
			t.Skip()
		}
		n &^= 1 // even ⇒ composite ⇒ every scheduler accepts n
		if draws < 1 || draws > 512 {
			draws = 64
		}
		mks := map[string]func() Scheduler{
			"uniform":  UniformPairs,
			"biased":   func() Scheduler { return BiasedPairs(n/2, 0.3) },
			"matching": RandomMatching,
			"ring":     GraphRing,
			"torus":    GraphTorus,
			"kron":     func() Scheduler { return GraphKronecker(sim.DefaultKronInitiator, 14, seed|1) },
			"kron0": func() Scheduler {
				return GraphKronecker([4]float64{0.4, 0.25, 0.25, 0.1}, 14, 0)
			},
		}
		for name, mk := range mks {
			r1, r2 := rng.New(seed), rng.New(seed)
			s1, s2 := mk(), mk()
			for i := 0; i < draws; i++ {
				u, v := s1.Next(n, r1)
				if u < 0 || u >= n || v < 0 || v >= n {
					t.Fatalf("%s: pair (%d, %d) outside [0, %d)", name, u, v, n)
				}
				if u == v {
					t.Fatalf("%s: self-pair %d at draw %d", name, u, i)
				}
				u2, v2 := s2.Next(n, r2)
				if u != u2 || v != v2 {
					t.Fatalf("%s: draw %d diverged under equal seeds: (%d,%d) vs (%d,%d)", name, i, u, v, u2, v2)
				}
			}
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoders —
// the PCSS envelope directly, and the PSNA/PSNC engine decoders through
// forged envelopes around the fuzz input — asserting they error cleanly:
// no panics, and no attacker-controlled allocations (a forged header
// cannot buy memory the input bytes did not pay for; the restored
// simulation is bounded by the header's validated population).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed the corpus with genuine snapshots of both engine families so
	// the fuzzer starts at the format's happy path.
	for _, kind := range []EngineKind{EngineAgent, EngineCount} {
		s, err := NewSimulation(Approximate, 32, WithSeed(3), WithEngine(kind),
			WithFaults(FaultPlan{Seed: 1, Bursts: []FaultBurst{{At: 40, Agents: 4}}}))
		if err != nil {
			f.Fatal(err)
		}
		s.Step(128)
		snap, err := s.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(snap)
	}
	f.Add([]byte("PCSS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Latency tripwire: a decode (or the bounded 16-step resume) of
		// arbitrary bytes must stay far under interactive time — a slow
		// input means a forged header bought unbounded work.
		start := time.Now()
		defer func() {
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("slow input: %v", d)
			}
		}()
		// PCSS decoder on the raw input.
		if s, err := RestoreSimulation(data); err == nil {
			// A decodable blob must yield a working simulation.
			s.Step(16)
			_ = s.Stats()
		}

		// PSNA/PSNC decoders: wrap the input as the engine blob of an
		// otherwise-valid envelope, so the inner parsers see arbitrary
		// bytes behind a header that passes the envelope checks.
		for _, kind := range []EngineKind{EngineAgent, EngineCount, EngineCountBatched} {
			hdr := make([]byte, 0, rootSnapHeaderLen+len(data))
			hdr = binary.LittleEndian.AppendUint32(hdr, rootSnapMagic)
			hdr = binary.LittleEndian.AppendUint16(hdr, rootSnapVersion)
			hdr = binary.LittleEndian.AppendUint16(hdr, uint16(Approximate))
			hdr = append(hdr, byte(kind), 0)
			hdr = binary.LittleEndian.AppendUint64(hdr, 16) // n
			hdr = binary.LittleEndian.AppendUint64(hdr, 1)  // seed
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // maxI
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // checkEvery
			hdr = binary.LittleEndian.AppendUint64(hdr, 0)  // confirmWindow
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // clockM
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // fastRounds
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // shift
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // batchRounds
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // shards
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // schedLen
			hdr = binary.LittleEndian.AppendUint32(hdr, 0)  // faultLen
			hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(data)))
			hdr = append(hdr, data...)
			if s, err := RestoreSimulation(hdr); err == nil {
				s.Step(16)
			}
		}
	})
}

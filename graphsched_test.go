package popcount

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"popcount/internal/sim"
)

func graphFactories() map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"ring":  GraphRing,
		"torus": GraphTorus,
		// Seed 0: the graph seed is drawn from the trial's random
		// stream, so the snapshot must carry the drawn value.
		"kron": func() Scheduler { return GraphKronecker(sim.DefaultKronInitiator, 6, 0) },
	}
}

// TestBadSchedulerValidation pins the ErrBadScheduler sentinel at both
// construction surfaces: an out-of-range BiasedPairs hot index (legal
// at BiasedPairs time, where n is unknown) and graph/population
// mismatches must fail NewSimulation and RunEnsemble up front instead
// of skewing the run.
func TestBadSchedulerValidation(t *testing.T) {
	cases := map[string]func() Scheduler{
		"biased-hot-high": func() Scheduler { return BiasedPairs(32, 0.2) }, // hot == n
		"biased-hot-huge": func() Scheduler { return BiasedPairs(1<<20, 0.2) },
		"torus-prime-n":   GraphTorus, // 31 is prime: no grid factors
		"kron-k-small":    func() Scheduler { return GraphKronecker(sim.DefaultKronInitiator, 4, 0) },
	}
	for name, mk := range cases {
		n := 32
		if name == "torus-prime-n" {
			n = 31
		}
		if _, err := NewSimulation(Approximate, n, WithScheduler(mk)); !errors.Is(err, ErrBadScheduler) {
			t.Errorf("NewSimulation/%s: err = %v, want ErrBadScheduler", name, err)
		}
		if _, err := RunEnsemble(context.Background(), Approximate, n, 2, WithScheduler(mk)); !errors.Is(err, ErrBadScheduler) {
			t.Errorf("RunEnsemble/%s: err = %v, want ErrBadScheduler", name, err)
		}
	}

	// In-range hot indices must keep working.
	if _, err := NewSimulation(Approximate, 32,
		WithScheduler(func() Scheduler { return BiasedPairs(31, 0.2) })); err != nil {
		t.Errorf("NewSimulation with hot = n-1: %v", err)
	}

	// An explicit count engine under a graph scheduler is an engine
	// mismatch, not a scheduler bug — no public algorithm has a ring
	// count form.
	_, err := NewSimulation(Approximate, 32, WithEngine(EngineCount),
		WithScheduler(GraphRing))
	if !errors.Is(err, ErrUnsupportedEngine) {
		t.Errorf("count engine + ring: err = %v, want ErrUnsupportedEngine", err)
	}
}

// TestUniformSchedulerNormalization pins the explicit uniform scheduler
// to the nil default: same trajectory, byte-identical snapshots (so a
// run that spells out WithScheduler(UniformPairs) still takes the
// batched devirtualized path and restores interchangeably).
func TestUniformSchedulerNormalization(t *testing.T) {
	plain, err := NewSimulation(Approximate, 32, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := NewSimulation(Approximate, 32, WithSeed(9),
		WithScheduler(UniformPairs))
	if err != nil {
		t.Fatal(err)
	}
	plain.Step(256)
	explicit.Step(256)
	ps, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	es, err := explicit.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ps, es) {
		t.Fatal("explicit uniform scheduler snapshot differs from the default's")
	}

	// Round trip: the restored run continues the explicit-uniform one
	// bit-for-bit.
	res, err := RestoreSimulation(es)
	if err != nil {
		t.Fatal(err)
	}
	explicit.Step(256)
	res.Step(256)
	a, err := explicit.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("restored uniform run diverged from the original")
	}
}

// TestGraphSnapshotRoundTrip checkpoints graph-restricted runs mid-way
// and asserts the resumed run is bit-for-bit the uninterrupted one —
// including the Kronecker case whose graph seed was drawn from the
// trial stream before the checkpoint.
func TestGraphSnapshotRoundTrip(t *testing.T) {
	for name, mk := range graphFactories() {
		t.Run(name, func(t *testing.T) {
			for _, pre := range []int64{0, 200} {
				ref, err := NewSimulation(Approximate, 32, WithSeed(11), WithScheduler(mk))
				if err != nil {
					t.Fatal(err)
				}
				ref.Step(pre)
				snap, err := ref.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				res, err := RestoreSimulation(snap)
				if err != nil {
					t.Fatal(err)
				}
				ref.Step(300)
				res.Step(300)
				a, err := ref.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				b, err := res.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("pre=%d: resumed run diverged from the uninterrupted one", pre)
				}
			}
		})
	}
}

// TestGraphEnsembleDeterministic runs graph-restricted ensembles and
// asserts reproducibility across parallelism — each trial draws its own
// graph from its own stream, so worker scheduling must not leak in.
func TestGraphEnsembleDeterministic(t *testing.T) {
	for name, mk := range graphFactories() {
		t.Run(name, func(t *testing.T) {
			run := func(par int) EnsembleResult {
				t.Helper()
				// A tight interaction budget: the protocols need not
				// converge on a restricted graph — only reproduce.
				ens, err := RunEnsemble(context.Background(), Approximate, 64, 8,
					WithSeed(13), WithParallelism(par), WithScheduler(mk),
					WithMaxInteractions(100_000))
				if err != nil {
					t.Fatal(err)
				}
				return ens
			}
			if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
				t.Fatal("graph ensemble differs between parallelism 1 and 4")
			}
		})
	}
}

// TestParseSchedulerSpec pins the scheduler spec grammar: canonical
// forms, default elision, and rejection of malformed specs with
// ErrBadScheduler.
func TestParseSchedulerSpec(t *testing.T) {
	good := map[string]string{
		"":                              "",
		"uniform":                       "",
		"ring":                          "ring",
		"torus":                         "torus",
		"kron:12":                       "kron:12",
		"kron:12:0":                     "kron:12",
		"kron:12:7":                     "kron:12:7",
		"kron:12:0:0.57,0.19,0.19,0.05": "kron:12",
		"kron:8:3:0.4,0.25,0.25,0.1":    "kron:8:3:0.4,0.25,0.25,0.1",
	}
	for spec, want := range good {
		mk, canon, err := ParseSchedulerSpec(spec)
		if err != nil {
			t.Errorf("ParseSchedulerSpec(%q): %v", spec, err)
			continue
		}
		if canon != want {
			t.Errorf("ParseSchedulerSpec(%q) canonical = %q, want %q", spec, canon, want)
		}
		if (mk == nil) != (want == "") {
			t.Errorf("ParseSchedulerSpec(%q): factory nil-ness %v inconsistent with canonical %q", spec, mk == nil, want)
		}
		// Canonical forms are fixed points.
		if _, again, err := ParseSchedulerSpec(canon); err != nil || again != canon {
			t.Errorf("canonical %q is not a fixed point: %q, %v", canon, again, err)
		}
	}
	bad := []string{
		"mesh", "kron", "kron:", "kron:0", "kron:31", "kron:x",
		"kron:12:y", "kron:12:1:0.5,0.5", "kron:12:1:a,b,c,d",
		"ring:3", "biased", "matching",
	}
	for _, spec := range bad {
		if _, _, err := ParseSchedulerSpec(spec); !errors.Is(err, ErrBadScheduler) {
			t.Errorf("ParseSchedulerSpec(%q): err = %v, want ErrBadScheduler", spec, err)
		}
	}
}

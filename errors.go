package popcount

import "errors"

// Typed sentinel errors. Every validation failure of the public
// constructors and run functions wraps one of these, so callers — the
// popcountd service in particular — can map client mistakes to the
// right failure class with errors.Is instead of matching message text
// (bad requests become HTTP 400s, not 500s).
var (
	// ErrInvalidN marks a population size below 2 (or otherwise outside
	// the chosen engine's range).
	ErrInvalidN = errors.New("popcount: invalid population size")

	// ErrUnknownAlgorithm marks an algorithm value or name the library
	// does not provide.
	ErrUnknownAlgorithm = errors.New("popcount: unknown algorithm")

	// ErrUnsupportedEngine marks an engine × algorithm × scheduler
	// combination that cannot run: a count engine for an algorithm
	// without a count form, a count engine under a non-uniform
	// scheduler, or an engine kind the library does not provide. The
	// wrapped message carries the remediation hint.
	ErrUnsupportedEngine = errors.New("popcount: unsupported engine for this configuration")

	// ErrNotSnapshottable marks a simulation whose state has no
	// serialized form (TokenBag's per-agent bags, or the internal state
	// of a scheduler other than the uniform default and the graph
	// schedulers).
	ErrNotSnapshottable = errors.New("popcount: simulation cannot be snapshotted")

	// ErrBadSnapshot marks a snapshot blob that is malformed, of an
	// unknown version, or inconsistent with the simulation it is being
	// restored into.
	ErrBadSnapshot = errors.New("popcount: invalid snapshot")

	// ErrBadFaultPlan marks a fault plan that is structurally invalid
	// (bad event bounds or rates, unknown adversary) or a fault-plan
	// text form ParseFaultPlan cannot parse.
	ErrBadFaultPlan = errors.New("popcount: invalid fault plan")

	// ErrBadScheduler marks a scheduler whose parameters are invalid for
	// the simulated population — a BiasedPairs hot index outside [0, n),
	// a torus over a prime population, a Kronecker graph with fewer
	// vertices than agents — or a scheduler text form ParseSchedulerSpec
	// cannot parse.
	ErrBadScheduler = errors.New("popcount: invalid scheduler")
)

module popcount

go 1.23

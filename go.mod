module popcount

go 1.24

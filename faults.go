package popcount

// The public face of the fault plane. A FaultPlan describes a
// deterministic, seed-reproducible fault schedule — corruption bursts,
// Poisson-rate corruption and churn streams, adversarial scheduling —
// that the engine layer (internal/sim) applies identically on every
// engine form. WithFaults attaches a plan to a run; ParseFaultPlan and
// FaultPlan.String round-trip the plan through a canonical flag-friendly
// text form used by popsim's -faults flag and the snapshot envelope.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"popcount/internal/sim"
)

// FaultBurst is one scheduled corruption burst: at interaction At,
// Agents agents (drawn uniformly without replacement) are reset — to
// random occupied states when Random, to fresh initial states
// otherwise.
type FaultBurst struct {
	At     int64
	Agents int
	Random bool
}

// FaultChurn is one scheduled churn event: at interaction At, Agents
// agents leave the population and are replaced by fresh agents in fresh
// initial states, conserving n.
type FaultChurn struct {
	At     int64
	Agents int
}

// Adversary selects the adversarial interaction model of a FaultPlan.
type Adversary int

const (
	// AdversaryNone disables adversarial interactions.
	AdversaryNone Adversary = iota
	// AdversaryStaleReplay replays previously recorded interaction
	// pairs at a Poisson rate — a scheduler acting on stale
	// configuration information.
	AdversaryStaleReplay
	// AdversaryInitiatorBias forces interactions whose initiator is
	// drawn from the most populated state — a scheduler biased toward
	// the majority.
	AdversaryInitiatorBias
	// AdversaryConvergence waits for the first converged poll and
	// corrupts AdversaryAgents agents at that moment; the run then
	// continues to genuine re-convergence. This is the detect-and-
	// restart measurement for the stable hybrids.
	AdversaryConvergence
)

// String returns the adversary's name.
func (a Adversary) String() string {
	return sim.AdversaryKind(a).String()
}

// Adversaries returns every adversary kind, in declaration order.
func Adversaries() []Adversary {
	return []Adversary{AdversaryNone, AdversaryStaleReplay, AdversaryInitiatorBias, AdversaryConvergence}
}

// ParseAdversary resolves an adversary by its String name.
func ParseAdversary(name string) (Adversary, error) {
	for _, a := range Adversaries() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown adversary %q (valid: none, stale-replay, initiator-bias, convergence)", ErrBadFaultPlan, name)
}

// FaultPlan is a deterministic, seed-reproducible fault schedule. The
// zero value is a valid empty plan (no faults). Rates are expressed per
// n interactions, so a plan keeps its meaning across population sizes;
// event times are drawn at construction from a dedicated RNG stream
// seeded by Seed mixed with the scheduler seed, so the same plan and
// seeds reproduce the identical schedule on every engine.
//
// Fault plans require a spec-backed algorithm (every algorithm except
// TokenBag) and the default uniform scheduler; the run constructors
// error otherwise.
type FaultPlan struct {
	// Seed decorrelates the fault stream from the scheduler stream.
	Seed uint64

	// Bursts are scheduled one-off corruption bursts.
	Bursts []FaultBurst
	// CorruptRate, when positive, adds a Poisson stream of corruption
	// events (expected events per n interactions), each resetting
	// CorruptAgents agents (default 1).
	CorruptRate   float64
	CorruptAgents int
	// CorruptRandom selects random occupied states as corruption
	// targets for rate-driven and convergence-adversary events (fresh
	// initial states otherwise).
	CorruptRandom bool

	// Churn are scheduled one-off churn events; ChurnRate and
	// ChurnAgents add a Poisson churn stream (default 1 agent).
	Churn       []FaultChurn
	ChurnRate   float64
	ChurnAgents int

	// Adversary selects the adversarial interaction model;
	// AdversaryRate is its Poisson rate (required for stale-replay and
	// initiator-bias) and AdversaryAgents sizes the convergence
	// adversary's strike (default 1).
	Adversary       Adversary
	AdversaryRate   float64
	AdversaryAgents int

	// CorruptSearch corrupts the search result of the stable protocol
	// variants (StableApproximate, StableCountExact), forcing their
	// error-detection → backup pipeline to engage — the legacy
	// WithFaultInjection knob. It is a protocol-construction switch,
	// not a scheduled fault: Enabled ignores it.
	CorruptSearch bool
}

// Enabled reports whether the plan schedules any dynamic faults
// (CorruptSearch alone does not count: it rewires the protocol, not the
// schedule).
func (p FaultPlan) Enabled() bool {
	return len(p.Bursts) > 0 || len(p.Churn) > 0 ||
		p.CorruptRate > 0 || p.ChurnRate > 0 || p.Adversary != AdversaryNone
}

// simPlan converts the plan to the engine layer's form, nil when no
// dynamic faults are scheduled.
func (p FaultPlan) simPlan() *sim.FaultPlan {
	if !p.Enabled() {
		return nil
	}
	return p.convert()
}

// convert is the unconditional plan conversion backing simPlan and
// validate.
func (p FaultPlan) convert() *sim.FaultPlan {
	sp := &sim.FaultPlan{
		Seed:            p.Seed,
		CorruptRate:     p.CorruptRate,
		CorruptAgents:   p.CorruptAgents,
		CorruptRandom:   p.CorruptRandom,
		ChurnRate:       p.ChurnRate,
		ChurnAgents:     p.ChurnAgents,
		Adversary:       sim.AdversaryKind(p.Adversary),
		AdversaryRate:   p.AdversaryRate,
		AdversaryAgents: p.AdversaryAgents,
	}
	for _, b := range p.Bursts {
		sp.Bursts = append(sp.Bursts, sim.FaultBurst{At: b.At, Agents: b.Agents, Random: b.Random})
	}
	for _, c := range p.Churn {
		sp.Churn = append(sp.Churn, sim.FaultChurn{At: c.At, Agents: c.Agents})
	}
	return sp
}

// validate checks the plan against a population of n agents, wrapping
// every failure in ErrBadFaultPlan. Plans that schedule nothing are
// still checked: a negative rate is a mistake, not an empty schedule.
func (p FaultPlan) validate(n int) error {
	if err := p.convert().Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrBadFaultPlan, err)
	}
	return nil
}

// WithFaults attaches a fault plan to the run (see FaultPlan). It
// replaces the whole plan, including the CorruptSearch knob.
func WithFaults(plan FaultPlan) Option {
	return func(s *settings) { s.faults = plan }
}

// String renders the plan in the canonical `key=value;…` form accepted
// by ParseFaultPlan (empty for the zero plan). The rendering is
// canonical — field order fixed, defaults omitted — so equal plans
// produce equal strings, which the service layer folds into job
// fingerprints.
func (p FaultPlan) String() string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	ff := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	if p.Seed != 0 {
		add("seed=%d", p.Seed)
	}
	for _, b := range p.Bursts {
		if b.Random {
			add("burst=%d:%d:random", b.At, b.Agents)
		} else {
			add("burst=%d:%d", b.At, b.Agents)
		}
	}
	if p.CorruptRate != 0 {
		add("rate=%s", ff(p.CorruptRate))
	}
	if p.CorruptAgents != 0 {
		add("agents=%d", p.CorruptAgents)
	}
	if p.CorruptRandom {
		add("random=true")
	}
	for _, c := range p.Churn {
		add("churn=%d:%d", c.At, c.Agents)
	}
	if p.ChurnRate != 0 {
		add("churn-rate=%s", ff(p.ChurnRate))
	}
	if p.ChurnAgents != 0 {
		add("churn-agents=%d", p.ChurnAgents)
	}
	if p.Adversary != AdversaryNone {
		add("adversary=%s", p.Adversary)
	}
	if p.AdversaryRate != 0 {
		add("adv-rate=%s", ff(p.AdversaryRate))
	}
	if p.AdversaryAgents != 0 {
		add("adv-agents=%d", p.AdversaryAgents)
	}
	if p.CorruptSearch {
		add("corrupt-search=true")
	}
	return strings.Join(parts, ";")
}

// ParseFaultPlan parses the `key=value;…` fault-plan grammar:
//
//	burst=AT:AGENTS[:random]   one corruption burst (repeatable)
//	rate=R                     Poisson corruption rate per n interactions
//	agents=K                   agents per rate-driven corruption event
//	random[=BOOL]              corrupt to random occupied states
//	churn=AT:AGENTS            one churn event (repeatable)
//	churn-rate=R               Poisson churn rate per n interactions
//	churn-agents=K             agents per rate-driven churn event
//	adversary=KIND             stale-replay | initiator-bias | convergence
//	adv-rate=R                 adversary event rate per n interactions
//	adv-agents=K               convergence adversary's strike size
//	seed=S                     fault stream seed
//	corrupt-search[=BOOL]      legacy stable-hybrid search corruption
//
// The empty string parses to the zero plan. Structural validation
// against the population size happens at run construction, not here.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var p FaultPlan
	bad := func(format string, args ...any) (FaultPlan, error) {
		return FaultPlan{}, fmt.Errorf("%w: "+format, append([]any{ErrBadFaultPlan}, args...)...)
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		parseBool := func() (bool, error) {
			if !hasVal {
				return true, nil
			}
			return strconv.ParseBool(val)
		}
		parseF := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
				return 0, fmt.Errorf("not a finite number: %q", val)
			}
			return f, nil
		}
		parseI := func() (int, error) { return strconv.Atoi(val) }
		var err error
		switch key {
		case "seed":
			var s uint64
			if s, err = strconv.ParseUint(val, 10, 64); err == nil {
				p.Seed = s
			}
		case "burst":
			var b FaultBurst
			if b, err = parseBurst(val); err == nil {
				p.Bursts = append(p.Bursts, b)
			}
		case "rate":
			p.CorruptRate, err = parseF()
		case "agents":
			p.CorruptAgents, err = parseI()
		case "random":
			p.CorruptRandom, err = parseBool()
		case "churn":
			var c FaultBurst
			if c, err = parseBurst(val); err == nil {
				if c.Random {
					return bad("churn events take no :random suffix (%q)", part)
				}
				p.Churn = append(p.Churn, FaultChurn{At: c.At, Agents: c.Agents})
			}
		case "churn-rate":
			p.ChurnRate, err = parseF()
		case "churn-agents":
			p.ChurnAgents, err = parseI()
		case "adversary":
			p.Adversary, err = ParseAdversary(val)
		case "adv-rate":
			p.AdversaryRate, err = parseF()
		case "adv-agents":
			p.AdversaryAgents, err = parseI()
		case "corrupt-search":
			p.CorruptSearch, err = parseBool()
		default:
			return bad("unknown key %q", key)
		}
		if err != nil {
			return bad("bad %s value %q: %v", key, val, err)
		}
	}
	return p, nil
}

// parseBurst parses the AT:AGENTS[:random] event form.
func parseBurst(val string) (FaultBurst, error) {
	fields := strings.Split(val, ":")
	if len(fields) != 2 && len(fields) != 3 {
		return FaultBurst{}, fmt.Errorf("want AT:AGENTS[:random], got %q", val)
	}
	at, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return FaultBurst{}, fmt.Errorf("bad interaction time %q", fields[0])
	}
	agents, err := strconv.Atoi(strings.TrimSpace(fields[1]))
	if err != nil {
		return FaultBurst{}, fmt.Errorf("bad agent count %q", fields[1])
	}
	b := FaultBurst{At: at, Agents: agents}
	if len(fields) == 3 {
		switch f := strings.TrimSpace(fields[2]); f {
		case "random":
			b.Random = true
		default:
			if b.Random, err = strconv.ParseBool(f); err != nil {
				return FaultBurst{}, fmt.Errorf("bad random flag %q", fields[2])
			}
		}
	}
	return b, nil
}

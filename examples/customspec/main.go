// Customspec: define a brand-new population protocol as a transition
// spec — one rule table — and run it on every engine the repository
// has: the agent-array engine, the exact count engine, and the batched
// (τ-leaping) count engine, all derived from the same ~20-line Spec.
//
// The protocol is three-state approximate majority (Angluin, Aspnes,
// Eisenstat 2008): agents hold A, B or blank; meeting the opposite
// camp blanks the responder, and blanks adopt the initiator's camp.
// Started from a small imbalance it converges to the initial majority
// w.h.p. within O(n log n) interactions.
//
//	go run ./examples/customspec
package main

import (
	"fmt"
	"log"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

const (
	blank = iota
	campA
	campB
)

// majoritySpec is the whole protocol definition: initial configuration,
// transition table, convergence predicate, output function.
func majoritySpec(n, a, b int) *sim.Spec {
	return &sim.Spec{
		Name: "approximate-majority",
		N:    n,
		Init: func() map[uint64]int64 {
			init := map[uint64]int64{campA: int64(a), campB: int64(b)}
			if rest := int64(n - a - b); rest > 0 {
				init[blank] = rest
			}
			return init
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			switch {
			case qu == campA && qv == campB, qu == campB && qv == campA:
				return qu, blank // opposite camps: the responder is blanked
			case qv == blank && qu != blank:
				return qu, qu // blanks adopt the initiator's camp
			}
			return qu, qv
		},
		Skip: true, // same-camp meetings are certain no-ops: let the engine skip them
		Converged: func(v sim.ConfigView) bool {
			return v.Count(campA) == v.N() || v.Count(campB) == v.N()
		},
		Output: func(q uint64) int64 { return int64(q) },
	}
}

func main() {
	const n = 1 << 20
	spec := majoritySpec(n, n/2+n/64, n/2-n/64) // slight A majority, no blanks

	// Engine 1: the agent array (exact, O(n) memory).
	small := majoritySpec(4096, 2048+64, 2048-64)
	agent := sim.NewSpecAgent(small)
	res, err := sim.Run(agent, sim.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent engine   n=%7d: winner=%d converged=%v after %d interactions\n",
		small.N, agent.Output(0), res.Converged, res.Interactions)
	if !res.Converged {
		log.Fatal("agent engine did not converge")
	}

	// Engine 2: the count engine (exact, O(states) memory).
	res, err = sim.RunCount(sim.NewSpecCount(spec), sim.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count engine   n=%7d: converged=%v after %d interactions\n",
		n, res.Converged, res.Interactions)
	if !res.Converged {
		log.Fatal("count engine did not converge")
	}

	// Engine 3: batched multinomial stepping (τ-leaping over the
	// configuration) — the same spec, at o(1) amortized cost per
	// interaction.
	eng, err := sim.NewCountEngine(sim.NewSpecCount(spec), sim.Config{Seed: 7, BatchSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.RunToConvergence()
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("batched engine n=%7d: converged=%v after %d interactions (%d epochs, %d rule calls)\n",
		n, res.Converged, res.Interactions, st.Epochs, st.DeltaCalls)
	if !res.Converged {
		log.Fatal("batched engine did not converge")
	}
}

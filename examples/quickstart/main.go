// Quickstart: count a population of anonymous agents, approximately and
// exactly, with the two headline protocols of the paper — then separate
// convergence from stabilization with a confirmation window.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"popcount"
)

func main() {
	const n = 5000

	// Protocol Approximate (Theorem 1.1): every agent learns
	// ⌊log₂ n⌋ or ⌈log₂ n⌉ within O(n log² n) interactions, w.h.p.
	apx, err := popcount.EstimateSize(n, popcount.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Approximate: log₂ estimate %d → ≈%d agents (true n = %d), %d interactions\n",
		apx.Output, apx.Estimate, n, apx.Interactions)

	// Protocol CountExact (Theorem 2): every agent learns the exact n
	// within the optimal O(n log n) interactions, w.h.p.
	exact, err := popcount.ExactSize(n, popcount.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CountExact:  %d agents exactly, %d interactions\n",
		exact.Output, exact.Interactions)

	// The stable variant trades a little bookkeeping for correctness
	// with probability 1 (Theorem 1.2 / Appendix F). A confirmation
	// window distinguishes convergence (T_C) from stabilization (T_S,
	// Section 1.1): the run continues past first convergence and
	// Result.Stable certifies the answer never flapped.
	stable, err := popcount.Count(popcount.StableCountExact, n,
		popcount.WithSeed(42), popcount.WithConfirmWindow(20*n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stable:      %d agents, guaranteed correct, converged at %d, stable=%v through %d total\n",
		stable.Output, stable.Interactions, stable.Stable, stable.Total)
}

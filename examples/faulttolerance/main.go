// Faulttolerance: what the stable protocols buy you — a demonstration of
// the error-detection → backup pipeline (Section 3.4, Appendices B–C).
//
// The w.h.p. protocols can, with small probability, settle on a wrong
// answer (for example if leader election leaves two leaders, or a load
// balancing phase does not finish in time). The stable variants detect
// such inconsistencies, raise an error flag that spreads by one-way
// epidemics, and fall back to a slow protocol that is correct with
// probability 1. This example runs protocol Approximate's stable variant
// with an artificially corrupted search result and watches the machinery
// recover.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"popcount/internal/core"
	"popcount/internal/rng"
)

func main() {
	const n = 400

	p := core.NewStableApproximate(core.Config{N: n})
	p.FaultInjection = true // corrupt the leader's k by −4 doublings
	r := rng.New(77)

	fmt.Println("running stable Approximate with a corrupted search result …")
	var t int64
	for !p.Converged() {
		for i := 0; i < n; i++ {
			u, v := r.Pair(n)
			p.Interact(u, v, r)
		}
		t += int64(n)
		if t%(int64(n)*5000) == 0 {
			fmt.Printf("t=%10d  error detected: %v  agent#0 output: %d\n",
				t, p.Errored(), p.Output(0))
		}
		if t > int64(n)*int64(n)*2000 {
			log.Fatal("did not stabilize")
		}
	}

	if !p.Errored() {
		log.Fatal("the corrupted run was not detected — this should never happen")
	}
	want := int64(0)
	for v := n; v > 1; v >>= 1 {
		want++
	}
	fmt.Printf("\nstabilized after %d interactions\n", t)
	fmt.Printf("error was detected and the backup protocol took over\n")
	fmt.Printf("final output: %d (⌊log₂ %d⌋ = %d) — correct despite the fault\n",
		p.Output(0), n, want)
	if p.Output(0) != want {
		log.Fatal("wrong final output")
	}
}

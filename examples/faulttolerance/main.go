// Faulttolerance: what the stable protocols buy you — a demonstration of
// the error-detection → backup pipeline (Section 3.4, Appendices B–C).
//
// The w.h.p. protocols can, with small probability, settle on a wrong
// answer (for example if leader election leaves two leaders, or a load
// balancing phase does not finish in time). The stable variants detect
// such inconsistencies, raise an error flag that spreads by one-way
// epidemics, and fall back to a slow protocol that is correct with
// probability 1. This example runs protocol Approximate's stable variant
// with an artificially corrupted search result (WithFaultInjection) and
// watches the machinery recover through the observer hook.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"popcount"
)

func main() {
	const n = 400

	fmt.Println("running stable Approximate with a corrupted search result …")
	var s *popcount.Simulation
	s, err := popcount.NewSimulation(popcount.StableApproximate, n,
		popcount.WithSeed(77),
		popcount.WithFaultInjection(), // corrupt the leader's k by −4 doublings
		popcount.WithMaxInteractions(int64(n)*int64(n)*2000),
		popcount.WithObserveEvery(int64(n)*1000),
		popcount.WithObserver(func(snap popcount.Snapshot) {
			fmt.Printf("t=%10d  error detected: %v  agent#0 output: %d\n",
				snap.Interactions, s.Errored(), snap.Output)
		}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.RunToConvergence()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatal("did not stabilize")
	}

	if !s.Errored() {
		log.Fatal("the corrupted run was not detected — this should never happen")
	}
	want := int64(0)
	for v := n; v > 1; v >>= 1 {
		want++
	}
	fmt.Printf("\nstabilized after %d interactions\n", res.Interactions)
	fmt.Printf("error was detected and the backup protocol took over\n")
	fmt.Printf("final output: %d (⌊log₂ %d⌋ = %d) — correct despite the fault\n",
		res.Output, n, want)
	if res.Output != want {
		log.Fatal("wrong final output")
	}
}

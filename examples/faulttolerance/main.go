// Faulttolerance: what the stable protocols buy you — a demonstration of
// the error-detection → backup pipeline (Section 3.4, Appendices B–C)
// under a deterministic fault plan (popcount.WithFaults).
//
// The w.h.p. protocols can, with small probability, settle on a wrong
// answer (for example if leader election leaves two leaders, or a load
// balancing phase does not finish in time). The stable variants detect
// such inconsistencies, raise an error flag that spreads by one-way
// epidemics, and fall back to a slow protocol that is correct with
// probability 1. This example stacks two faults onto the stable
// variant of protocol CountExact:
//
//   - a mid-run corruption burst resets 32 agents to fresh initial
//     states while the protocol is still working;
//   - the convergence adversary waits for the first converged poll and
//     then corrupts 64 agents, forcing a detect-and-recover cycle whose
//     reconvergence window and error-flag latency the engine measures
//     (Simulation.Stats).
//
// Run it with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"popcount"
)

func main() {
	const n = 128

	plan := popcount.FaultPlan{
		Seed:            17,
		Bursts:          []popcount.FaultBurst{{At: int64(n) * 100, Agents: 32}},
		Adversary:       popcount.AdversaryConvergence,
		AdversaryAgents: 64,
	}
	fmt.Println("running stable CountExact under a fault plan:")
	fmt.Printf("  %s\n\n", plan)

	var s *popcount.Simulation
	s, err := popcount.NewSimulation(popcount.StableCountExact, n,
		popcount.WithSeed(4),
		popcount.WithFaults(plan),
		popcount.WithObserveEvery(int64(n)*200),
		popcount.WithObserver(func(snap popcount.Snapshot) {
			fmt.Printf("t=%10d  error detected: %v  agent#0 output: %d\n",
				snap.Interactions, snap.Errored || s.Errored(), snap.Output)
		}))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.RunToConvergence()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatal("did not stabilize")
	}

	st := s.Stats()
	fmt.Printf("\nstabilized after %d interactions\n", res.Interactions)
	fmt.Printf("fault events applied: %d (%d agents corrupted)\n", st.FaultEvents, st.Corrupted)
	if st.Reconvergences > 0 {
		fmt.Printf("recovery: %d reconvergence(s), %d interactions to re-converge\n",
			st.Reconvergences, st.ReconvergeTotal)
	}
	if st.ErrorLatency >= 0 {
		fmt.Printf("error flag raised %d interactions after the adversary's strike\n", st.ErrorLatency)
	}
	fmt.Printf("final output: %d (population %d) — correct despite the faults\n", res.Output, n)
	if res.Output != n {
		log.Fatal("wrong final output")
	}
}

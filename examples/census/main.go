// Census: exact population counting with a correctness guarantee, and a
// head-to-head against the naive baseline across population sizes.
//
// A swarm of agents must determine its exact size — say, to decide
// whether a quorum exists or to split into equal task groups. The simple
// uniform protocol from the paper's introduction (combine token bags,
// spread the maximum) gets there in Θ(n²) interactions; protocol
// CountExact does it in the optimal O(n log n). Asymptotics hide
// constants, so this example sweeps n and shows the crossover: the
// baseline wins for small populations, CountExact's advantage then grows
// like n / log n. The sweep runs both protocols as parallel ensembles so
// each cell is a mean over independent trials rather than a single run.
//
//	go run ./examples/census
package main

import (
	"context"
	"fmt"
	"log"

	"popcount"
)

func main() {
	const trials = 4
	ctx := context.Background()

	fmt.Printf("%8s %16s %16s %9s\n", "n", "token bags (Θn²)", "CountExact", "speedup")
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		bags, err := popcount.RunEnsemble(ctx, popcount.TokenBag, n, trials,
			popcount.WithSeed(9), popcount.WithMaxInteractions(int64(n)*int64(n)*200))
		if err != nil {
			log.Fatal(err)
		}
		fast, err := popcount.RunEnsemble(ctx, popcount.CountExact, n, trials,
			popcount.WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		for _, ens := range []popcount.EnsembleResult{bags, fast} {
			for i, r := range ens.Trials {
				if !r.Converged || r.Output != int64(n) {
					log.Fatalf("n=%d trial %d: census mismatch (converged=%v output=%d)",
						n, i, r.Converged, r.Output)
				}
			}
		}
		fmt.Printf("%8d %16.0f %16.0f %8.1fx\n",
			n, bags.Stats.Interactions.Mean, fast.Stats.Interactions.Mean,
			bags.Stats.Interactions.Mean/fast.Stats.Interactions.Mean)
	}

	// Use the count: split the swarm into equal task groups.
	const n = 4000
	res, err := popcount.Count(popcount.StableCountExact, n, popcount.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	groups := 4
	fmt.Printf("\nstable census of %d agents → %d task groups of ~%d agents each (guaranteed correct)\n",
		res.Output, groups, int(res.Output)/groups)
}

// Census: exact population counting with a correctness guarantee, and a
// head-to-head against the naive baseline across population sizes.
//
// A swarm of agents must determine its exact size — say, to decide
// whether a quorum exists or to split into equal task groups. The simple
// uniform protocol from the paper's introduction (combine token bags,
// spread the maximum) gets there in Θ(n²) interactions; protocol
// CountExact does it in the optimal O(n log n). Asymptotics hide
// constants, so this example sweeps n and shows the crossover: the
// baseline wins for small populations, CountExact's advantage then grows
// like n / log n.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"

	"popcount"
)

func main() {
	fmt.Printf("%8s %16s %16s %9s\n", "n", "token bags (Θn²)", "CountExact", "speedup")
	for _, n := range []int{500, 1000, 2000, 4000, 8000, 16000} {
		bag, err := popcount.Count(popcount.TokenBag, n,
			popcount.WithSeed(9), popcount.WithMaxInteractions(int64(n)*int64(n)*200))
		if err != nil {
			log.Fatal(err)
		}
		fast, err := popcount.ExactSize(n, popcount.WithSeed(9))
		if err != nil {
			log.Fatal(err)
		}
		if bag.Output != int64(n) || fast.Output != int64(n) {
			log.Fatalf("n=%d: census mismatch (bag=%d exact=%d)", n, bag.Output, fast.Output)
		}
		fmt.Printf("%8d %16d %16d %8.1fx\n",
			n, bag.Interactions, fast.Interactions,
			float64(bag.Interactions)/float64(fast.Interactions))
	}

	// Use the count: split the swarm into equal task groups.
	const n = 4000
	res, err := popcount.Count(popcount.StableCountExact, n, popcount.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	groups := 4
	fmt.Printf("\nstable census of %d agents → %d task groups of ~%d agents each (guaranteed correct)\n",
		res.Output, groups, int(res.Output)/groups)
}

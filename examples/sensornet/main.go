// Sensornet: a network of anonymous, battery-limited sensors estimates
// its own size to calibrate itself — the motivating scenario of the
// population model ("distributed systems of resource-limited mobile
// agents", Section 1).
//
// Sensors meet in random pairs (radio contacts). None of them knows how
// many sensors were deployed, yet each needs the network size to pick a
// duty cycle: with more sensors covering the field, each can sleep
// longer. Protocol Approximate gives every sensor ⌊log₂ n⌋ or ⌈log₂ n⌉
// using only O(log n · log log n) states — small enough for firmware.
// The refining estimate is watched through the engine's observer hook;
// no manual stepping loop needed.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"popcount"
)

// dutyCycle maps a log₂ population estimate to a sleep fraction: each
// doubling of the deployment lets every sensor halve its awake time,
// bounded below at 1/64.
func dutyCycle(logEstimate int64) float64 {
	d := 1.0
	for i := int64(0); i < logEstimate && d > 1.0/64; i++ {
		d /= 2
	}
	return d
}

func main() {
	const deployed = 20000 // ground truth, unknown to the sensors

	// Watch the estimate refine as radio contacts accumulate.
	fmt.Println("contacts      sensor#0 log-estimate")
	res, err := popcount.Count(popcount.Approximate, deployed,
		popcount.WithSeed(2026),
		popcount.WithMaxInteractions(int64(deployed)*100000),
		popcount.WithObserveEvery(int64(deployed)*25),
		popcount.WithObserver(func(s popcount.Snapshot) {
			fmt.Printf("%9d     %d\n", s.Interactions, s.Output)
		}))
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatal("sensornet: estimation did not settle")
	}

	est := res.Output
	fmt.Printf("\nnetwork size: 2^%d ≈ %d sensors (true: %d)\n", est, res.Estimate, deployed)
	fmt.Printf("chosen duty cycle: %.3f (awake fraction)\n", dutyCycle(est))

	// Every sensor independently arrives at the same calibration.
	for i, o := range res.Outputs {
		if o != est {
			log.Fatalf("sensor %d disagrees: %d vs %d", i, o, est)
		}
	}
	fmt.Printf("all %d sensors agree on the estimate\n", len(res.Outputs))
}

package popcount

import "popcount/internal/sim"

// Snapshot is a periodic observation of a running simulation, delivered
// to the Observer registered with WithObserver at every convergence poll
// (throttled by WithObserveEvery).
type Snapshot struct {
	// Trial is the trial index within an ensemble (0 for single runs).
	Trial int
	// Interactions is the number of interactions executed so far.
	Interactions int64
	// Converged reports whether the protocol's desired configuration
	// held at this poll.
	Converged bool
	// Output is agent 0's current output (on the count engine: the most
	// populated state's output).
	Output int64
	// Estimate is the population-size estimate implied by Output.
	Estimate int64
	// Errored reports whether the protocol's error flag was raised at
	// this poll. It is probed only when a fault plan is active
	// (WithFaults) and only the stable hybrids detect; false otherwise.
	Errored bool
}

// Observer receives periodic snapshots of a running simulation. It is
// called synchronously from the simulation's goroutine: within one trial
// snapshots arrive in order, but an ensemble delivers snapshots of
// different trials concurrently — observers used with RunEnsemble must be
// safe for concurrent use.
type Observer func(Snapshot)

// WithObserver registers an observer. Progress reporting, live plots,
// and convergence tracing all hang off this one hook — the engine polls,
// the observer consumes; no caller needs its own stepping loop.
func WithObserver(obs Observer) Option {
	return func(s *settings) { s.observer = obs }
}

// WithObserveEvery throttles the observer to at most one snapshot per
// interval interactions (default: every convergence poll, i.e. every
// CheckEvery interactions). The engine still polls convergence at
// CheckEvery granularity; snapshots fire at the first poll at or past
// each interval boundary.
func WithObserveEvery(interval int64) Option {
	return func(s *settings) { s.observeEvery = interval }
}

// snapshotCountObserver adapts the public observer to the count
// engine's hook for one trial. The engine is resolved through a getter
// because the observer closure must be wired into the engine's Config
// before the engine exists. Snapshots report the plurality state's
// output — the consensus output once converged.
func (set settings) snapshotCountObserver(alg Algorithm, eng func() *sim.CountEngine, trial int) func(sim.Observation) {
	interval := set.observeEvery
	obs := set.observer
	var last int64
	return func(o sim.Observation) {
		if interval > 0 && o.Interactions-last < interval {
			return
		}
		last = o.Interactions
		snap := Snapshot{
			Trial:        trial,
			Interactions: o.Interactions,
			Converged:    o.Converged,
			Errored:      o.Errored,
		}
		if e := eng(); e != nil {
			if out, ok := e.PluralityOutput(); ok {
				snap.Output = out
				snap.Estimate = estimateFor(alg, out)
			}
		}
		obs(snap)
	}
}

// snapshotObserver adapts the public observer to the engine's hook for
// one trial of the given protocol instance.
func (set settings) snapshotObserver(alg Algorithm, p sim.Protocol, trial int) func(sim.Observation) {
	out, _ := p.(sim.Outputter)
	interval := set.observeEvery
	obs := set.observer
	var last int64
	return func(o sim.Observation) {
		if interval > 0 && o.Interactions-last < interval {
			return
		}
		last = o.Interactions
		snap := Snapshot{
			Trial:        trial,
			Interactions: o.Interactions,
			Converged:    o.Converged,
			Errored:      o.Errored,
		}
		if out != nil {
			snap.Output = out.Output(0)
			snap.Estimate = estimateFor(alg, snap.Output)
		}
		obs(snap)
	}
}

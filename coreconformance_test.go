// Cross-engine conformance of the paper's composed counting protocols:
// the spec-derived count and batched-count forms must simulate the same
// chain as the hand-written agent protocols. Complements the bit-for-
// bit agent pins in internal/core (which anchor the SPEC to the
// hand-written rule) with a distributional pin that anchors the COUNT
// ENGINES to the agent engine across the interning layer, plus
// Σ counts == n conservation on the interned sparse-Delta path.
//
// Unlike the building-block protocols of TestCountEngineEquivalence*,
// the composed protocols' convergence time is multi-modal: T_C is
// quantized by how many leader-election and search phases the junta
// race happens to need, so per-trial values at n = 1024 spread over
// roughly 3·10⁶–13·10⁶ with σ/mean ≈ 0.45 on EVERY engine. The pinned
// tolerance is therefore 0.35 at 40 paired trials (≈ 3.5σ on the
// difference of means): wide enough to be stable, tight enough to
// catch the failure modes this suite exists for — an unsound state
// canonicalization (which distorts leader retirement and shifts means
// by far more), a broken coin-claim predicate, or count-engine
// sampling drift.
//
// The suite is split across two test packages so each stays inside the
// default per-package test budget on a single-core runner: the fast
// path's two protocols here, the stable hybrids' two in
// internal/core's stableequivalence_test.go (same helpers, same
// tolerance).
package popcount_test

import (
	"math"
	"testing"

	"popcount/internal/core"
	"popcount/internal/sim"
)

const (
	coreEquivTolerance = 0.35
	coreEquivTrials    = 40
	coreEquivN         = 1024
)

// coreMeanAgent runs trials of the hand-written agent protocol and
// returns the mean convergence time.
func coreMeanAgent(t *testing.T, name string, factory func(int) sim.Protocol, cfg sim.Config) float64 {
	t.Helper()
	runs, err := sim.RunTrials(factory, coreEquivTrials, cfg, sim.TrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s agent trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s agent trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / coreEquivTrials
}

// coreMeanCount is coreMeanAgent for a spec's count form.
func coreMeanCount(t *testing.T, name string, spec func() *sim.Spec, cfg sim.Config) float64 {
	t.Helper()
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(spec()) }
	runs, err := sim.RunCountTrials(factory, coreEquivTrials, cfg, sim.CountTrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s count trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s count trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / coreEquivTrials
}

func checkCoreEquivalence(t *testing.T, name string, agent, count float64) {
	t.Helper()
	gap := math.Abs(agent-count) / agent
	t.Logf("%s: agent mean T_C = %.0f, count mean T_C = %.0f, relative gap %.3f",
		name, agent, count, gap)
	if gap > coreEquivTolerance {
		t.Errorf("%s: engines disagree: agent mean %.0f vs count mean %.0f (gap %.3f > %.2f)",
			name, agent, count, gap, coreEquivTolerance)
	}
}

// coreEquivalence runs the full three-column comparison for one
// protocol: hand-written agent form vs spec count form vs spec batched
// form, paired trial seeds throughout.
func coreEquivalence(t *testing.T, name string, agentFactory func(int) sim.Protocol, spec func() *sim.Spec, cfg sim.Config) {
	t.Helper()
	agent := coreMeanAgent(t, name, agentFactory, cfg)
	checkCoreEquivalence(t, name, agent, coreMeanCount(t, name, spec, cfg))
	checkCoreEquivalence(t, name+" batched", agent,
		coreMeanCount(t, name+" batched", spec, batched(cfg)))
}

func TestCoreEngineEquivalenceApproximate(t *testing.T) {
	if testing.Short() {
		t.Skip("three engine columns of a Θ(n log² n) protocol; skipped with -short")
	}
	t.Parallel()
	cfg := sim.Config{Seed: 0xCE1, CheckEvery: coreEquivN}
	coreEquivalence(t, "approximate",
		func(int) sim.Protocol { return core.NewApproximate(core.Config{N: coreEquivN}) },
		func() *sim.Spec { return core.NewApproximateSpec(core.Config{N: coreEquivN}).Spec },
		cfg)
}

func TestCoreEngineEquivalenceCountExact(t *testing.T) {
	t.Parallel()
	cfg := sim.Config{Seed: 0xCE2, CheckEvery: coreEquivN}
	coreEquivalence(t, "exact",
		func(int) sim.Protocol { return core.NewCountExact(core.Config{N: coreEquivN}) },
		func() *sim.Spec { return core.NewCountExactSpec(core.Config{N: coreEquivN}).Spec },
		cfg)
}

// TestCoreSpecCountConservation pins Σ counts == n and non-negativity
// on the interned sparse-Delta path: the core specs discover codes
// lazily through an interner, so a mis-netted transition would corrupt
// the configuration silently if nothing summed it.
func TestCoreSpecCountConservation(t *testing.T) {
	const n = 600
	specs := map[string]func() *sim.Spec{
		"approximate":        func() *sim.Spec { return core.NewApproximateSpec(core.Config{N: n}).Spec },
		"exact":              func() *sim.Spec { return core.NewCountExactSpec(core.Config{N: n}).Spec },
		"stable-approximate": func() *sim.Spec { return core.NewStableApproximateSpec(core.Config{N: n}, false).Spec },
		"stable-exact":       func() *sim.Spec { return core.NewStableCountExactSpec(core.Config{N: n}, true).Spec },
	}
	for name, mk := range specs {
		for _, mode := range []struct {
			name  string
			batch bool
		}{{"exact", false}, {"batched", true}} {
			e, err := sim.NewCountEngine(sim.NewSpecCount(mk()),
				sim.Config{Seed: 0xC0C0, BatchSteps: mode.batch})
			if err != nil {
				t.Fatalf("%s/%s: NewCountEngine: %v", name, mode.name, err)
			}
			var done int64
			for _, batch := range []int64{1, 63, 1000, 20000, 100000, 300000} {
				e.Step(batch)
				done += batch
				if got := e.Counts().Sum(); got != n {
					t.Fatalf("%s/%s: Σ counts = %d after %d interactions, want %d", name, mode.name, got, done, n)
				}
				e.Counts().ForEach(func(code uint64, cnt int64) {
					if cnt < 0 {
						t.Fatalf("%s/%s: negative count %d for state %d", name, mode.name, cnt, code)
					}
				})
				if e.Interactions() != done {
					t.Fatalf("%s/%s: Interactions = %d, want %d", name, mode.name, e.Interactions(), done)
				}
			}
		}
	}
}

package popcount

import (
	"fmt"
	"strconv"
	"strings"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Rand is the deterministic random-number source the engine hands to
// schedulers. It is implemented by the engine's internal xoshiro256++
// generator; user-defined schedulers draw all their randomness from it so
// runs stay bit-for-bit reproducible under equal seeds.
type Rand interface {
	// Uint64 returns the next 64 uniformly distributed bits.
	Uint64() uint64
	// Intn returns a uniform integer in [0, n); it panics for n ≤ 0.
	Intn(n int) int
	// Float64 returns a uniform float64 in [0, 1).
	Float64() float64
	// Bool returns a fair random bit.
	Bool() bool
	// Pair returns an ordered pair of distinct agent indices chosen
	// uniformly at random from [0, n); n must be ≥ 2.
	Pair(n int) (u, v int)
	// Perm returns a uniformly random permutation of [0, n).
	Perm(n int) []int
}

// Scheduler selects the ordered agent pair — initiator, responder — for
// each interaction. The paper's probabilistic scheduler is UniformPairs;
// BiasedPairs and RandomMatching bend the scheduling assumption to probe
// protocol robustness (experiment E16), and user-defined implementations
// can model any contact process. Schedulers may be stateful; the engine
// builds a fresh one per trial via the factory given to WithScheduler.
type Scheduler interface {
	// Next returns the initiator and responder for the next interaction,
	// distinct indices in [0, n).
	Next(n int, r Rand) (u, v int)
}

// WithScheduler selects the interaction scheduler. The factory is invoked
// once per trial — stateful schedulers are never shared across trials —
// so both of these are valid:
//
//	popcount.Count(alg, n, popcount.WithScheduler(popcount.RandomMatching))
//	popcount.RunEnsemble(ctx, alg, n, 32,
//	    popcount.WithScheduler(func() popcount.Scheduler {
//	        return popcount.BiasedPairs(0, 0.2)
//	    }))
//
// A nil factory (the default) selects the paper's uniform scheduler.
func WithScheduler(factory func() Scheduler) Option {
	return func(s *settings) { s.mkSched = factory }
}

// UniformPairs returns the paper's scheduler: an ordered pair of distinct
// agents chosen independently and uniformly at random. It is the default.
func UniformPairs() Scheduler { return uniformSched{} }

type uniformSched struct{}

func (uniformSched) Next(n int, r Rand) (int, int) { return r.Pair(n) }

// BiasedPairs returns a perturbed uniform scheduler: with probability
// bias the initiator is the fixed agent hot (the responder stays
// uniform). This models a "chatty" agent — a mild violation of the model
// under which the w.h.p. analyses no longer apply verbatim. It panics
// unless bias is in [0, 1) and hot is non-negative; hot must also be a
// valid index of the simulated population, which NewSimulation and
// RunEnsemble enforce with ErrBadScheduler once n is known.
func BiasedPairs(hot int, bias float64) Scheduler {
	if bias < 0 || bias >= 1 {
		panic("popcount: BiasedPairs bias must be in [0, 1)")
	}
	if hot < 0 {
		panic("popcount: BiasedPairs hot agent index must be non-negative")
	}
	return biasedSched{hot: hot, bias: bias}
}

type biasedSched struct {
	hot  int
	bias float64
}

func (s biasedSched) Next(n int, r Rand) (int, int) {
	if r.Float64() < s.bias {
		v := r.Intn(n - 1)
		if v >= s.hot {
			v++
		}
		return s.hot, v
	}
	return r.Pair(n)
}

// RandomMatching returns a scheduler that draws interactions from random
// perfect matchings: each "round" it shuffles the population and plays
// the ⌊n/2⌋ disjoint pairs in sequence before reshuffling. Every agent
// interacts exactly once per round — a synchronous flavour common in
// practical gossip systems. It is not the paper's model, but the
// protocols' building blocks (epidemics, balancing, clocks) tolerate it
// well. The returned scheduler is stateful.
func RandomMatching() Scheduler { return &matchingSched{} }

type matchingSched struct {
	perm []int
	pos  int
}

func (s *matchingSched) Next(n int, r Rand) (int, int) {
	if s.perm == nil || len(s.perm) != n || s.pos+1 >= len(s.perm)-(n%2) {
		s.perm = r.Perm(n)
		s.pos = 0
	}
	u, v := s.perm[s.pos], s.perm[s.pos+1]
	s.pos += 2
	// Randomize the initiator/responder role within the matched pair.
	if r.Bool() {
		return v, u
	}
	return u, v
}

// GraphRing returns a scheduler that restricts interactions to the
// ring (cycle) graph C_n: each draw picks a uniform agent and one of
// its two neighbors, i.e. a uniform directed ring edge. Ring runs
// snapshot and resume like uniform ones, and epidemic-style
// single-source algorithms additionally keep a count-engine form.
func GraphRing() Scheduler {
	return &graphSched{g: &sim.GraphScheduler{Kind: sim.GraphKindRing}}
}

// GraphTorus returns a scheduler that restricts interactions to the
// 2-D torus over the most-square rows×cols factorization of n (each
// draw is a uniform directed torus edge: an agent and one of its four
// axis-aligned neighbors). n must be composite; a prime population
// has no 2-D factorization and is rejected with ErrBadScheduler.
func GraphTorus() Scheduler {
	return &graphSched{g: &sim.GraphScheduler{Kind: sim.GraphKindTorus}}
}

// GraphKronecker returns a scheduler over a stochastic-Kronecker
// (R-MAT) random graph: 8n edges sampled by k-level quadrant descent
// over the 2×2 initiator matrix (row-major a, b, c, d; the zero value
// selects the Graph500 reference (0.57, 0.19, 0.19, 0.05)), vertex
// ids folded mod n, self-loops rewired to the successor vertex. Each
// draw is a uniform directed edge of the sampled graph. seed pins one
// graph across every trial; seed 0 samples a fresh graph per trial
// from the trial's scheduler stream, so runs remain a pure function
// of the simulation seed either way. The graph needs 2^k ≥ n.
func GraphKronecker(initiator [4]float64, k int, seed uint64) Scheduler {
	return &graphSched{g: &sim.GraphScheduler{Kind: sim.GraphKindKron, K: k, Initiator: initiator, Seed: seed}}
}

// graphSched wraps the engine-native graph scheduler for the public
// interface. Next delegates to the engine implementation's NextPair so
// the public path and the engine path consume randomness identically.
type graphSched struct {
	g *sim.GraphScheduler
}

func (s *graphSched) Next(n int, r Rand) (int, int) { return s.g.NextPair(n, r) }

// spec returns the scheduler's canonical text form (the -sched flag /
// job-request syntax parsed by ParseSchedulerSpec).
func (s *graphSched) spec() string {
	g := s.g
	switch g.Kind {
	case sim.GraphKindRing:
		return "ring"
	case sim.GraphKindTorus:
		return "torus"
	default:
		init := g.Initiator
		if init == ([4]float64{}) {
			init = sim.DefaultKronInitiator
		}
		custom := init != sim.DefaultKronInitiator
		spec := fmt.Sprintf("kron:%d", g.K)
		if g.Seed != 0 || custom {
			spec += fmt.Sprintf(":%d", g.Seed)
		}
		if custom {
			parts := make([]string, 4)
			for i, p := range init {
				parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
			}
			spec += ":" + strings.Join(parts, ",")
		}
		return spec
	}
}

// ParseSchedulerSpec parses the canonical text form of a scheduler
// that can ride in snapshots and job requests:
//
//	uniform                              the default (empty canonical form)
//	ring                                 cycle graph C_n
//	torus                                2-D torus (n must be composite)
//	kron:<k>[:<seed>[:<a>,<b>,<c>,<d>]]  stochastic-Kronecker graph
//
// It returns a WithScheduler-ready factory (nil for uniform), the
// canonical form of the spec (defaults dropped: seed 0 and the
// Graph500 initiator are omitted, "uniform" canonicalizes to ""), and
// ErrBadScheduler for anything unparseable. Biased and matching
// schedulers have no text form — their state is not snapshottable, so
// they never appear where specs travel.
func ParseSchedulerSpec(spec string) (factory func() Scheduler, canonical string, err error) {
	switch spec {
	case "", "uniform":
		return nil, "", nil
	case "ring":
		return GraphRing, "ring", nil
	case "torus":
		return GraphTorus, "torus", nil
	}
	if rest, ok := strings.CutPrefix(spec, "kron:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) > 3 {
			return nil, "", fmt.Errorf("%w: kron spec %q has %d colon fields, want at most 3", ErrBadScheduler, spec, len(parts))
		}
		k, aerr := strconv.Atoi(parts[0])
		if aerr != nil || k < 1 || k > 30 {
			return nil, "", fmt.Errorf("%w: kron depth %q outside [1, 30]", ErrBadScheduler, parts[0])
		}
		var seed uint64
		if len(parts) >= 2 {
			seed, aerr = strconv.ParseUint(parts[1], 10, 64)
			if aerr != nil {
				return nil, "", fmt.Errorf("%w: kron seed %q is not a uint64", ErrBadScheduler, parts[1])
			}
		}
		var init [4]float64
		if len(parts) == 3 {
			fields := strings.Split(parts[2], ",")
			if len(fields) != 4 {
				return nil, "", fmt.Errorf("%w: kron initiator %q needs 4 comma-separated entries", ErrBadScheduler, parts[2])
			}
			for i, f := range fields {
				init[i], aerr = strconv.ParseFloat(f, 64)
				if aerr != nil {
					return nil, "", fmt.Errorf("%w: kron initiator entry %q is not a float", ErrBadScheduler, f)
				}
			}
		}
		f := func() Scheduler { return GraphKronecker(init, k, seed) }
		return f, f().(*graphSched).spec(), nil
	}
	return nil, "", fmt.Errorf("%w: unknown scheduler spec %q (valid: uniform, ring, torus, kron:<k>[:<seed>[:<a>,<b>,<c>,<d>]])", ErrBadScheduler, spec)
}

// newSimScheduler builds the engine-side scheduler for one trial. The
// built-in schedulers map to the engine's native implementations — the
// explicitly-uniform factory normalizes to the nil engine default, so
// it snapshots, resumes and takes the batched devirtualized path
// identically to an option-free run; the others map to their engine
// types so that one certified implementation defines engine behavior
// (TestPublicSchedulersMatchEngine pins the public types to them).
// User-defined schedulers run through a thin adapter.
func (s settings) newSimScheduler() sim.Scheduler {
	if s.mkSched == nil {
		return nil // engine default: uniform
	}
	switch sched := s.mkSched().(type) {
	case uniformSched:
		return nil // semantically the default: normalize to it
	case biasedSched:
		return sim.BiasedScheduler{Hot: sched.hot, Bias: sched.bias}
	case *matchingSched:
		return sim.NewMatchingScheduler()
	case *graphSched:
		// The factory built a fresh public wrapper; hand its engine-side
		// scheduler over wholesale (per-trial instances mean per-trial
		// Kronecker graphs unless the graph seed is pinned).
		return sched.g
	default:
		return schedAdapter{sched}
	}
}

// schedSpec returns the canonical text form of the registered
// scheduler for the snapshot envelope, or ErrNotSnapshottable for
// schedulers that have none (biased, matching, user-defined). The
// uniform default — explicit or absent — has the empty canonical form.
func (s settings) schedSpec() (string, error) {
	if s.mkSched == nil {
		return "", nil
	}
	switch sched := s.mkSched().(type) {
	case uniformSched:
		return "", nil
	case *graphSched:
		return sched.spec(), nil
	default:
		return "", fmt.Errorf("%w: scheduler %T has no serialized form", ErrNotSnapshottable, sched)
	}
}

// validateScheduler checks the registered scheduler against the
// population size — the first point where n is known. It catches a
// BiasedPairs hot index outside the population and graph parameters
// the population cannot satisfy, wrapping each in ErrBadScheduler.
func (s settings) validateScheduler(n int) error {
	if s.mkSched == nil {
		return nil
	}
	sched := s.newSimScheduler()
	v, ok := sched.(sim.SchedulerValidator)
	if !ok {
		return nil
	}
	if err := v.Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrBadScheduler, err)
	}
	return nil
}

// schedAdapter lifts a public Scheduler into the engine's interface; the
// engine's generator satisfies Rand directly.
type schedAdapter struct{ s Scheduler }

func (a schedAdapter) Next(n int, r *rng.Rand) (int, int) { return a.s.Next(n, r) }

package popcount

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Rand is the deterministic random-number source the engine hands to
// schedulers. It is implemented by the engine's internal xoshiro256++
// generator; user-defined schedulers draw all their randomness from it so
// runs stay bit-for-bit reproducible under equal seeds.
type Rand interface {
	// Uint64 returns the next 64 uniformly distributed bits.
	Uint64() uint64
	// Intn returns a uniform integer in [0, n); it panics for n ≤ 0.
	Intn(n int) int
	// Float64 returns a uniform float64 in [0, 1).
	Float64() float64
	// Bool returns a fair random bit.
	Bool() bool
	// Pair returns an ordered pair of distinct agent indices chosen
	// uniformly at random from [0, n); n must be ≥ 2.
	Pair(n int) (u, v int)
	// Perm returns a uniformly random permutation of [0, n).
	Perm(n int) []int
}

// Scheduler selects the ordered agent pair — initiator, responder — for
// each interaction. The paper's probabilistic scheduler is UniformPairs;
// BiasedPairs and RandomMatching bend the scheduling assumption to probe
// protocol robustness (experiment E16), and user-defined implementations
// can model any contact process. Schedulers may be stateful; the engine
// builds a fresh one per trial via the factory given to WithScheduler.
type Scheduler interface {
	// Next returns the initiator and responder for the next interaction,
	// distinct indices in [0, n).
	Next(n int, r Rand) (u, v int)
}

// WithScheduler selects the interaction scheduler. The factory is invoked
// once per trial — stateful schedulers are never shared across trials —
// so both of these are valid:
//
//	popcount.Count(alg, n, popcount.WithScheduler(popcount.RandomMatching))
//	popcount.RunEnsemble(ctx, alg, n, 32,
//	    popcount.WithScheduler(func() popcount.Scheduler {
//	        return popcount.BiasedPairs(0, 0.2)
//	    }))
//
// A nil factory (the default) selects the paper's uniform scheduler.
func WithScheduler(factory func() Scheduler) Option {
	return func(s *settings) { s.mkSched = factory }
}

// UniformPairs returns the paper's scheduler: an ordered pair of distinct
// agents chosen independently and uniformly at random. It is the default.
func UniformPairs() Scheduler { return uniformSched{} }

type uniformSched struct{}

func (uniformSched) Next(n int, r Rand) (int, int) { return r.Pair(n) }

// BiasedPairs returns a perturbed uniform scheduler: with probability
// bias the initiator is the fixed agent hot (the responder stays
// uniform). This models a "chatty" agent — a mild violation of the model
// under which the w.h.p. analyses no longer apply verbatim. It panics
// unless bias is in [0, 1) and hot is non-negative; hot must also be a
// valid index of the simulated population.
func BiasedPairs(hot int, bias float64) Scheduler {
	if bias < 0 || bias >= 1 {
		panic("popcount: BiasedPairs bias must be in [0, 1)")
	}
	if hot < 0 {
		panic("popcount: BiasedPairs hot agent index must be non-negative")
	}
	return biasedSched{hot: hot, bias: bias}
}

type biasedSched struct {
	hot  int
	bias float64
}

func (s biasedSched) Next(n int, r Rand) (int, int) {
	if r.Float64() < s.bias {
		v := r.Intn(n - 1)
		if v >= s.hot {
			v++
		}
		return s.hot, v
	}
	return r.Pair(n)
}

// RandomMatching returns a scheduler that draws interactions from random
// perfect matchings: each "round" it shuffles the population and plays
// the ⌊n/2⌋ disjoint pairs in sequence before reshuffling. Every agent
// interacts exactly once per round — a synchronous flavour common in
// practical gossip systems. It is not the paper's model, but the
// protocols' building blocks (epidemics, balancing, clocks) tolerate it
// well. The returned scheduler is stateful.
func RandomMatching() Scheduler { return &matchingSched{} }

type matchingSched struct {
	perm []int
	pos  int
}

func (s *matchingSched) Next(n int, r Rand) (int, int) {
	if s.perm == nil || len(s.perm) != n || s.pos+1 >= len(s.perm)-(n%2) {
		s.perm = r.Perm(n)
		s.pos = 0
	}
	u, v := s.perm[s.pos], s.perm[s.pos+1]
	s.pos += 2
	// Randomize the initiator/responder role within the matched pair.
	if r.Bool() {
		return v, u
	}
	return u, v
}

// newSimScheduler builds the engine-side scheduler for one trial. The
// built-in schedulers map to the engine's native implementations — the
// uniform one so the batched fast path can devirtualize pair drawing,
// the others so that one certified implementation defines engine
// behavior (TestPublicSchedulersMatchEngine pins the public types to
// them). User-defined schedulers run through a thin adapter.
func (s settings) newSimScheduler() sim.Scheduler {
	if s.mkSched == nil {
		return nil // engine default: uniform
	}
	switch sched := s.mkSched().(type) {
	case uniformSched:
		return sim.UniformScheduler{}
	case biasedSched:
		return sim.BiasedScheduler{Hot: sched.hot, Bias: sched.bias}
	case *matchingSched:
		return sim.NewMatchingScheduler()
	default:
		return schedAdapter{sched}
	}
}

// schedAdapter lifts a public Scheduler into the engine's interface; the
// engine's generator satisfies Rand directly.
type schedAdapter struct{ s Scheduler }

func (a schedAdapter) Next(n int, r *rng.Rand) (int, int) { return a.s.Next(n, r) }

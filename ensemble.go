package popcount

import (
	"context"
	"fmt"
	"runtime"

	"popcount/internal/sim"
	"popcount/internal/stats"
)

// SummaryStats are the summary statistics of one per-trial quantity.
type SummaryStats struct {
	Mean   float64
	Median float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	P10    float64 // 10th percentile
	P90    float64 // 90th percentile
}

// summarize computes SummaryStats of xs (zero value when xs is empty).
func summarize(xs []float64) SummaryStats {
	s, err := stats.Summarize(xs)
	if err != nil {
		return SummaryStats{}
	}
	return SummaryStats{
		Mean:   s.Mean,
		Median: s.Median,
		Std:    s.Std,
		Min:    s.Min,
		Max:    s.Max,
		P10:    stats.Quantile(xs, 0.1),
		P90:    stats.Quantile(xs, 0.9),
	}
}

// EnsembleStats aggregates the per-trial results of an ensemble.
type EnsembleStats struct {
	// Trials is the number of trials run.
	Trials int
	// Converged counts the trials whose protocol reached its desired
	// configuration; ConvergenceRate is the corresponding fraction.
	Converged       int
	ConvergenceRate float64
	// Stable counts the trials that additionally held the configuration
	// through the confirmation window (equal to Converged when no window
	// was requested); StableRate is the corresponding fraction.
	Stable     int
	StableRate float64
	// Interactions summarizes the convergence times T_C (in
	// interactions) of the converged trials.
	Interactions SummaryStats
	// Estimates summarizes the population-size estimates of the
	// converged trials.
	Estimates SummaryStats
}

// EnsembleResult is the outcome of RunEnsemble: every trial's result in
// trial order, plus aggregate statistics.
type EnsembleResult struct {
	Trials []Result
	Stats  EnsembleStats
}

// RunEnsemble runs trials independent simulations of the chosen
// algorithm in parallel and aggregates the results. Trial i derives its
// scheduler seed deterministically from the base seed (WithSeed), so an
// ensemble is bit-for-bit reproducible at any parallelism
// (WithParallelism; default one worker per CPU). Schedulers registered
// with WithScheduler are built fresh per trial, observers receive
// snapshots tagged with the trial index, and ctx cancellation stops all
// trials at their next convergence poll and returns ctx's error. On
// cancellation the returned EnsembleResult still carries every trial's
// partial result — interrupted trials are tagged Result.Interrupted and
// excluded from the convergence statistics — so callers can report the
// progress a killed run had made.
func RunEnsemble(ctx context.Context, alg Algorithm, n, trials int, opts ...Option) (EnsembleResult, error) {
	if trials <= 0 {
		return EnsembleResult{}, fmt.Errorf("popcount: non-positive trial count %d", trials)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	set := newSettings(opts)
	// Validate once up front so the trial factory cannot fail mid-run;
	// engine × algorithm × scheduler incompatibilities error here.
	if err := validate(alg, n); err != nil {
		return EnsembleResult{}, err
	}
	kind, err := set.resolveEngine(alg)
	if err != nil {
		return EnsembleResult{}, err
	}
	if err := set.validateScheduler(n); err != nil {
		return EnsembleResult{}, err
	}
	if kind == EngineCount || kind == EngineCountBatched {
		return runCountEnsemble(ctx, alg, n, trials, kind, set)
	}

	// Per-trial observer closures, written by the factory and read by
	// the observer hook — both run on the owning trial's goroutine.
	var obsFns []func(sim.Observation)
	if set.observer != nil {
		obsFns = make([]func(sim.Observation), trials)
	}
	factory := func(trial int) sim.Protocol {
		p, err := newProtocol(alg, n, set)
		if err != nil {
			panic(err) // validated above; unreachable
		}
		if obsFns != nil {
			obsFns[trial] = set.snapshotObserver(alg, p, trial)
		}
		return p
	}

	cfg := sim.Config{
		Seed:            set.seed,
		MaxInteractions: set.maxI,
		CheckEvery:      set.checkEvery,
		ConfirmWindow:   set.confirmWindow,
		Interrupt:       ensembleInterrupt(ctx, set),
		Faults:          set.faults.simPlan(),
	}

	par := set.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	topt := sim.TrialOptions{Parallelism: par}
	if set.mkSched != nil {
		topt.MakeScheduler = set.newSimScheduler
	}
	if obsFns != nil {
		topt.Observe = func(trial int, o sim.Observation) { obsFns[trial](o) }
	}

	runs, err := sim.RunTrials(factory, trials, cfg, topt)
	if err != nil {
		return EnsembleResult{}, err
	}

	results := make([]Result, trials)
	for i, tr := range runs {
		r := Result{
			Converged:    tr.Result.Converged,
			Interactions: tr.Result.Interactions,
			Total:        tr.Result.Total,
			Stable:       tr.Result.Stable,
			Interrupted:  tr.Result.Interrupted,
			Outputs:      sim.Outputs(tr.Protocol),
		}
		if o, ok := tr.Protocol.(sim.Outputter); ok {
			r.Output = o.Output(0)
		}
		r.Estimate = estimateFor(alg, r.Output)
		results[i] = r
	}
	return aggregateEnsemble(results), ctx.Err()
}

// ensembleInterrupt builds the trial interrupt hook: ctx cancellation
// stops every trial, and a WithInterrupt hook is polled alongside it.
func ensembleInterrupt(ctx context.Context, set settings) func() bool {
	return func() bool {
		if set.interrupt != nil && set.interrupt() {
			return true
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
}

// aggregateEnsemble computes the ensemble statistics over per-trial
// results — the one aggregation rule shared by the agent-engine and
// count-engine trial paths.
func aggregateEnsemble(results []Result) EnsembleResult {
	out := EnsembleResult{Trials: results}
	var times, ests []float64
	for _, r := range results {
		if r.Converged && !r.Interrupted {
			out.Stats.Converged++
			times = append(times, float64(r.Interactions))
			ests = append(ests, float64(r.Estimate))
		}
		if r.Stable && r.Converged {
			out.Stats.Stable++
		}
	}
	trials := len(results)
	out.Stats.Trials = trials
	out.Stats.ConvergenceRate = float64(out.Stats.Converged) / float64(trials)
	out.Stats.StableRate = float64(out.Stats.Stable) / float64(trials)
	out.Stats.Interactions = summarize(times)
	out.Stats.Estimates = summarize(ests)
	return out
}

// runCountEnsemble is the count-engine trial path of RunEnsemble: same
// seed derivation and aggregation, backed by sim.RunCountTrials.
// Per-trial Outputs are nil (the configuration is aggregate) and Output
// is the plurality state's output.
func runCountEnsemble(ctx context.Context, alg Algorithm, n, trials int, kind EngineKind, set settings) (EnsembleResult, error) {
	cfg := set.countSimConfig(kind)
	cfg.Interrupt = ensembleInterrupt(ctx, set)
	par := set.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	topt := sim.CountTrialOptions{Parallelism: par}
	if set.observer != nil {
		// One throttled adapter per trial, created lazily on the trial's
		// own goroutine — each trial only ever touches its own slot, so
		// no lock is needed (mirroring the agent path's obsFns).
		adapters := make([]func(sim.Observation), trials)
		topt.Observe = func(trial int, e *sim.CountEngine, o sim.Observation) {
			fn := adapters[trial]
			if fn == nil {
				fn = set.snapshotCountObserver(alg, func() *sim.CountEngine { return e }, trial)
				adapters[trial] = fn
			}
			fn(o)
		}
	}
	factory := func(int) sim.CountProtocol {
		cp, _ := newCountProtocol(alg, n, set)
		return cp
	}
	runs, err := sim.RunCountTrials(factory, trials, cfg, topt)
	if err != nil {
		return EnsembleResult{}, err
	}

	results := make([]Result, trials)
	for i, tr := range runs {
		r := Result{
			Converged:    tr.Result.Converged,
			Interactions: tr.Result.Interactions,
			Total:        tr.Result.Total,
			Stable:       tr.Result.Stable,
			Interrupted:  tr.Result.Interrupted,
		}
		if outv, ok := tr.Engine.PluralityOutput(); ok {
			r.Output = outv
		}
		r.Estimate = estimateFor(alg, r.Output)
		results[i] = r
	}
	return aggregateEnsemble(results), ctx.Err()
}

package popcount

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// swapSched is a user-defined scheduler: uniform pairs with the roles
// swapped. It exercises the public Scheduler extension point.
type swapSched struct{}

func (swapSched) Next(n int, r Rand) (int, int) {
	u, v := r.Pair(n)
	return v, u
}

func TestWithSchedulerReproducibility(t *testing.T) {
	factories := map[string]func() Scheduler{
		"uniform":  UniformPairs,
		"biased":   func() Scheduler { return BiasedPairs(0, 0.2) },
		"matching": RandomMatching,
		"custom":   func() Scheduler { return swapSched{} },
	}
	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			a, err := Count(TokenBag, 64, WithSeed(8), WithScheduler(mk))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Count(TokenBag, 64, WithSeed(8), WithScheduler(mk))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("equal seeds diverged under %s scheduler:\n%+v\n%+v", name, a, b)
			}
			if !a.Converged || a.Output != 64 {
				t.Fatalf("token bag under %s scheduler: converged=%v output=%d", name, a.Converged, a.Output)
			}
		})
	}
}

// TestPublicSchedulersMatchEngine pins the public scheduler types to the
// internal implementations newSimScheduler maps them to: same seed, same
// draw sequence. A divergence would break the reproducibility contract
// between direct Next calls and engine-driven runs.
func TestPublicSchedulersMatchEngine(t *testing.T) {
	cases := []struct {
		name   string
		public func() Scheduler
		engine func() sim.Scheduler
	}{
		{"uniform",
			UniformPairs,
			func() sim.Scheduler { return sim.UniformScheduler{} }},
		{"biased",
			func() Scheduler { return BiasedPairs(2, 0.3) },
			func() sim.Scheduler { return sim.BiasedScheduler{Hot: 2, Bias: 0.3} }},
		{"matching",
			RandomMatching,
			func() sim.Scheduler { return sim.NewMatchingScheduler() }},
		{"ring",
			GraphRing,
			func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} }},
		{"torus",
			GraphTorus,
			func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindTorus} }},
		{"kron",
			func() Scheduler { return GraphKronecker(sim.DefaultKronInitiator, 6, 0) },
			func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 6} }},
	}
	// Both even and odd populations: the matching scheduler's refill
	// logic differs by parity (odd n leaves one agent out per round),
	// and a drift there shows up only pair-for-pair.
	for _, n := range []int{12, 33} {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/n=%d", c.name, n), func(t *testing.T) {
				pub, eng := c.public(), c.engine()
				rp, re := rng.New(42), rng.New(42)
				for i := 0; i < 10_000; i++ {
					pu, pv := pub.Next(n, rp)
					eu, ev := eng.Next(n, re)
					if pu != eu || pv != ev {
						t.Fatalf("draw %d: public (%d,%d) vs engine (%d,%d)", i, pu, pv, eu, ev)
					}
				}
			})
		}
	}

	// A population-size change mid-stream must reset stateful
	// schedulers identically on both sides (the matching round and any
	// built graph are n-specific).
	t.Run("n-change", func(t *testing.T) {
		for _, c := range cases {
			pub, eng := c.public(), c.engine()
			rp, re := rng.New(7), rng.New(7)
			for i, n := range []int{12, 12, 12, 33, 33, 8, 9, 12} {
				pu, pv := pub.Next(n, rp)
				eu, ev := eng.Next(n, re)
				if pu != eu || pv != ev {
					t.Fatalf("%s: draw %d (n=%d): public (%d,%d) vs engine (%d,%d)",
						c.name, i, n, pu, pv, eu, ev)
				}
			}
		}
	})
}

func TestBiasedPairsValidation(t *testing.T) {
	for _, c := range []struct {
		hot  int
		bias float64
	}{{0, 1.0}, {0, -0.1}, {-1, 0.2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BiasedPairs(%d, %v) accepted", c.hot, c.bias)
				}
			}()
			BiasedPairs(c.hot, c.bias)
		}()
	}
}

func TestRunEnsembleDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) EnsembleResult {
		t.Helper()
		ens, err := RunEnsemble(context.Background(), TokenBag, 64, 32,
			WithSeed(5), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return ens
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("ensemble results differ between parallelism 1 and 8")
	}
	st := serial.Stats
	if st.Trials != 32 || st.Converged != 32 || st.ConvergenceRate != 1 {
		t.Fatalf("unexpected aggregate: %+v", st)
	}
	if st.Interactions.Mean <= 0 || st.Interactions.Median <= 0 ||
		st.Interactions.P10 > st.Interactions.P90 ||
		st.Interactions.Min > st.Interactions.Max {
		t.Fatalf("implausible interaction summary: %+v", st.Interactions)
	}
	// Independent trials: the seeds differ, so convergence times must
	// not all coincide.
	distinct := map[int64]bool{}
	for _, r := range serial.Trials {
		distinct[r.Interactions] = true
		if r.Output != 64 {
			t.Fatalf("trial output %d, want 64", r.Output)
		}
	}
	if len(distinct) < 2 {
		t.Fatal("all 32 trials converged at the identical interaction count — trials are not independent")
	}
}

func TestRunEnsembleSchedulerPerTrial(t *testing.T) {
	// A stateful scheduler must be rebuilt per trial; if an instance were
	// shared, concurrent trials would race and determinism would break.
	run := func(par int) EnsembleResult {
		t.Helper()
		ens, err := RunEnsemble(context.Background(), TokenBag, 64, 8,
			WithSeed(3), WithParallelism(par), WithScheduler(RandomMatching))
		if err != nil {
			t.Fatal(err)
		}
		return ens
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("matching-scheduler ensemble not reproducible across parallelism")
	}
}

func TestRunEnsembleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunEnsemble(ctx, Approximate, 512, 4, WithSeed(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEnsembleValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunEnsemble(ctx, TokenBag, 64, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunEnsemble(ctx, TokenBag, 1, 4); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RunEnsemble(ctx, Algorithm(99), 64, 4); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestConfirmWindowReportsStability(t *testing.T) {
	res, err := Count(TokenBag, 64, WithSeed(2), WithConfirmWindow(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Stable {
		t.Fatalf("token bag should be stable: %+v", res)
	}
	if res.Total != res.Interactions+5000 {
		t.Fatalf("confirmation window not executed: Interactions=%d Total=%d", res.Interactions, res.Total)
	}
}

func TestResultTotalWithoutWindow(t *testing.T) {
	res, err := Count(TokenBag, 64, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != res.Interactions {
		t.Fatalf("without a window Total (%d) must equal Interactions (%d)", res.Total, res.Interactions)
	}
	if res.Stable != res.Converged {
		t.Fatalf("without a window Stable (%v) must equal Converged (%v)", res.Stable, res.Converged)
	}
}

func TestObserverSnapshots(t *testing.T) {
	var snaps []Snapshot
	res, err := Count(TokenBag, 64, WithSeed(3),
		WithObserver(func(s Snapshot) { snaps = append(snaps, s) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("observer never called")
	}
	last := int64(0)
	for _, s := range snaps {
		if s.Interactions <= last {
			t.Fatalf("snapshots not monotone: %d after %d", s.Interactions, last)
		}
		last = s.Interactions
		if s.Trial != 0 {
			t.Fatalf("single run produced trial index %d", s.Trial)
		}
	}
	final := snaps[len(snaps)-1]
	if !final.Converged || final.Interactions != res.Interactions {
		t.Fatalf("final snapshot %+v inconsistent with result %+v", final, res)
	}
}

func TestObserveEveryThrottles(t *testing.T) {
	var snaps []Snapshot
	_, err := Count(TokenBag, 64, WithSeed(3),
		WithObserveEvery(1024),
		WithObserver(func(s Snapshot) { snaps = append(snaps, s) }))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snaps); i++ {
		if gap := snaps[i].Interactions - snaps[i-1].Interactions; gap < 1024 {
			t.Fatalf("snapshots %d and %d only %d interactions apart, want ≥ 1024", i-1, i, gap)
		}
	}
}

func TestEnsembleObserverTagsTrials(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	_, err := RunEnsemble(context.Background(), TokenBag, 64, 4,
		WithSeed(5), WithParallelism(4),
		WithObserver(func(s Snapshot) {
			mu.Lock()
			seen[s.Trial] = true
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("trial %d produced no snapshots", i)
		}
	}
}

func TestFaultInjectionEngagesBackup(t *testing.T) {
	s, err := NewSimulation(StableApproximate, 128, WithSeed(7), WithFaultInjection())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("faulted run did not stabilize")
	}
	if !s.Errored() {
		t.Fatal("fault was not detected")
	}
	if res.Output != 7 { // ⌊log₂ 128⌋, recovered by the backup
		t.Fatalf("recovered output %d, want 7", res.Output)
	}
}

func TestSimulationStepThenRun(t *testing.T) {
	s, err := NewSimulation(TokenBag, 64, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1000)
	res, err := s.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Total != s.Interactions() {
		t.Fatalf("manual stepping not honored: %+v vs t=%d", res, s.Interactions())
	}
}

package popcount

import (
	"testing"
)

func TestEstimateSize(t *testing.T) {
	res, err := EstimateSize(1000, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Output != 9 && res.Output != 10 {
		t.Fatalf("log estimate %d, want 9 or 10", res.Output)
	}
	if res.Estimate != 1<<uint(res.Output) {
		t.Fatalf("estimate %d inconsistent with output %d", res.Estimate, res.Output)
	}
}

func TestExactSize(t *testing.T) {
	res, err := ExactSize(700, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Output != 700 {
		t.Fatalf("converged=%v output=%d, want exact 700", res.Converged, res.Output)
	}
	for i, out := range res.Outputs {
		if out != 700 {
			t.Fatalf("agent %d outputs %d", i, out)
		}
	}
}

func TestCountStableVariants(t *testing.T) {
	for _, alg := range []Algorithm{StableApproximate, StableCountExact} {
		res, err := Count(alg, 512, WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v did not converge", alg)
		}
		switch alg {
		case StableApproximate:
			if res.Output != 9 {
				t.Fatalf("stable approximate output %d, want 9", res.Output)
			}
		case StableCountExact:
			if res.Output != 512 {
				t.Fatalf("stable exact output %d, want 512", res.Output)
			}
		}
	}
}

func TestCountBaselines(t *testing.T) {
	res, err := Count(TokenBag, 128, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Output != 128 {
		t.Fatalf("token bag: converged=%v output=%d", res.Converged, res.Output)
	}
	res, err = Count(GeometricEstimate, 1024, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("geometric estimator did not converge")
	}
	if res.Output < 4 || res.Output > 18 {
		t.Fatalf("geometric log estimate %d is implausible for n=1024", res.Output)
	}
}

func TestNewSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(Approximate, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewSimulation(Algorithm(99), 10); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSimulationStepwise(t *testing.T) {
	s, err := NewSimulation(TokenBag, 64, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 64 || s.Algorithm() != TokenBag {
		t.Fatalf("simulation metadata wrong: n=%d alg=%v", s.N(), s.Algorithm())
	}
	s.Step(1000)
	if s.Interactions() != 1000 {
		t.Fatalf("interactions = %d", s.Interactions())
	}
	for !s.Converged() {
		s.Step(10000)
		if s.Interactions() > 50_000_000 {
			t.Fatal("token bag did not converge in 50M interactions on 64 agents")
		}
	}
	if s.Output(0) != 64 {
		t.Fatalf("output %d", s.Output(0))
	}
	if got := len(s.Outputs()); got != 64 {
		t.Fatalf("outputs length %d", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := ExactSize(300, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExactSize(300, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Interactions != b.Interactions || a.Output != b.Output {
		t.Fatalf("runs with equal seeds diverged: %+v vs %+v", a, b)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{Approximate, CountExact, StableApproximate,
		StableCountExact, TokenBag, GeometricEstimate} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestWithMaxInteractionsCapsRun(t *testing.T) {
	res, err := Count(Approximate, 256, WithSeed(1), WithMaxInteractions(1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge in 1000 interactions")
	}
	if res.Interactions != 1000 {
		t.Fatalf("interactions = %d, want 1000", res.Interactions)
	}
}

func TestAlgorithmStringRoundTrip(t *testing.T) {
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm has empty name")
	}
}

package main

import "testing"

func TestRunTokenBag(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-seed", "3"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunExactSmall(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-seed", "5"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunWithProgress(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "128", "-progress"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-alg", "nope", "-n", "64"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunCountEngine(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "100000", "-engine", "count"}); err != nil {
		t.Fatalf("count-engine run failed: %v", err)
	}
}

func TestRunCountEngineEnsemble(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "4096", "-engine", "count", "-trials", "4"}); err != nil {
		t.Fatalf("count-engine ensemble failed: %v", err)
	}
}

func TestRunCountEngineUnsupportedAlgorithm(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "64", "-engine", "count"}); err == nil {
		t.Fatal("count engine accepted an algorithm without a count form")
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "64", "-engine", "nope"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunEnsembleFlag(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-trials", "4", "-par", "2"}); err != nil {
		t.Fatalf("ensemble run failed: %v", err)
	}
}

func TestRunMatchingScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "matching"}); err != nil {
		t.Fatalf("matching-scheduler run failed: %v", err)
	}
}

func TestRunBiasedScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "biased", "-bias", "0.3"}); err != nil {
		t.Fatalf("biased-scheduler run failed: %v", err)
	}
}

func TestRunUnknownScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "nope"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunConfirmWindow(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-confirm", "5000"}); err != nil {
		t.Fatalf("confirm-window run failed: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCapWithoutConvergenceErrors(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-max", "100"}); err == nil {
		t.Fatal("non-convergence should be reported as an error")
	}
}

package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

func TestRunTokenBag(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-seed", "3"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunExactSmall(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-seed", "5"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunWithProgress(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "128", "-progress"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-alg", "nope", "-n", "64"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunCountEngine(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "100000", "-engine", "count"}); err != nil {
		t.Fatalf("count-engine run failed: %v", err)
	}
}

func TestRunCountEngineEnsemble(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "4096", "-engine", "count", "-trials", "4"}); err != nil {
		t.Fatalf("count-engine ensemble failed: %v", err)
	}
}

func TestRunCountEngineUnsupportedAlgorithm(t *testing.T) {
	// TokenBag is the one algorithm left without a count form (the core
	// counting protocols run on every engine since their spec port).
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-engine", "count"}); err == nil {
		t.Fatal("count engine accepted an algorithm without a count form")
	}
}

func TestRunCoreProtocolCountEngine(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-engine", "count", "-seed", "5"}); err != nil {
		t.Fatalf("core protocol on the count engine failed: %v", err)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "64", "-engine", "nope"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunEnsembleFlag(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-trials", "4", "-par", "2"}); err != nil {
		t.Fatalf("ensemble run failed: %v", err)
	}
}

func TestRunMatchingScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "matching"}); err != nil {
		t.Fatalf("matching-scheduler run failed: %v", err)
	}
}

func TestRunBiasedScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "biased", "-bias", "0.3"}); err != nil {
		t.Fatalf("biased-scheduler run failed: %v", err)
	}
}

func TestRunUnknownScheduler(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-sched", "nope"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestRunConfirmWindow(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-confirm", "5000"}); err != nil {
		t.Fatalf("confirm-window run failed: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCapWithoutConvergenceErrors(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-max", "100"}); err == nil {
		t.Fatal("non-convergence should be reported as an error")
	}
}

// TestGoldenTraces pins popsim's full output for one core protocol on
// each engine at a fixed seed: engine resolution, the interaction
// counter, the consensus output and the deterministic engine counters
// are all machine-independent, so any drift here — a changed rule, a
// changed sampler, a broken engine flag — surfaces in tier-1 instead
// of only in fuzz or the scheduled bench gate.
func TestGoldenTraces(t *testing.T) {
	goldens := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "approximate-agent",
			args: []string{"-alg", "approximate", "-n", "256", "-seed", "12", "-engine", "agent"},
			want: `algorithm:    approximate
population:   256 agents
scheduler:    uniform
engine:       agent
converged:    true
interactions: 719104
output:       8
estimate:     256 agents
`,
		},
		{
			name: "approximate-count",
			args: []string{"-alg", "approximate", "-n", "256", "-seed", "12", "-engine", "count"},
			want: `algorithm:    approximate
population:   256 agents
scheduler:    uniform
engine:       count
converged:    true
interactions: 769024
output:       8
estimate:     256 agents
delta calls:  769024
`,
		},
		{
			name: "approximate-count-batched",
			args: []string{"-alg", "approximate", "-n", "256", "-seed", "12", "-engine", "count-batched"},
			want: `algorithm:    approximate
population:   256 agents
scheduler:    uniform
engine:       count-batched
converged:    true
interactions: 772608
output:       8
estimate:     256 agents
delta calls:  772608
epochs:       0 (safety-net violations 0, half-epochs reused 0, re-planned 0)
`,
		},
	}
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			got, err := captureStdout(t, func() error { return run(g.args) })
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if got != g.want {
				t.Errorf("output drifted.\n--- got ---\n%s--- want ---\n%s", got, g.want)
			}
		})
	}
}

// TestGoldenJSON pins the -json document: popsim's JSON path shares
// the popcountd service's canonicalization and encoder, so these bytes
// are exactly what GET /v1/jobs/{id}/result serves for the same
// request. The interaction counter is the same machine-independent
// golden value TestGoldenTraces pins for the text path.
func TestGoldenJSON(t *testing.T) {
	got, err := captureStdout(t, func() error {
		return run([]string{"-json", "-alg", "approximate", "-n", "256", "-seed", "12", "-engine", "count"})
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	want := `{
  "request": {
    "algorithm": "approximate",
    "n": 256,
    "trials": 1,
    "seed": 12,
    "engine": "count"
  },
  "trials": [
    {
      "converged": true,
      "stable": true,
      "interactions": 769024,
      "total": 769024,
      "output": 8,
      "estimate": 256
    }
  ],
  "stats": {
    "trials": 1,
    "converged": 1,
    "convergence_rate": 1,
    "stable": 1,
    "stable_rate": 1,
    "interactions": {
      "mean": 769024,
      "median": 769024,
      "std": 0,
      "min": 769024,
      "max": 769024,
      "p10": 769024,
      "p90": 769024
    },
    "estimates": {
      "mean": 256,
      "median": 256,
      "std": 0,
      "min": 256,
      "max": 256,
      "p10": 256,
      "p90": 256
    }
  }
}
`
	if got != want {
		t.Errorf("JSON document drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRunJSONEnsemble(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-json", "-alg", "tokenbag", "-n", "64", "-trials", "3", "-par", "2", "-seed", "4"})
	})
	if err != nil {
		t.Fatalf("ensemble -json run failed: %v", err)
	}
	if !bytes.Contains([]byte(out), []byte(`"trials": 3`)) {
		t.Errorf("ensemble stats missing from document:\n%s", out)
	}
}

func TestRunJSONIncompatibleFlags(t *testing.T) {
	if err := run([]string{"-json", "-alg", "tokenbag", "-n", "64", "-sched", "matching"}); err == nil {
		t.Fatal("-json accepted a non-uniform scheduler")
	}
	if err := run([]string{"-json", "-alg", "tokenbag", "-n", "64", "-progress"}); err == nil {
		t.Fatal("-json accepted -progress")
	}
}

// captureStdout redirects os.Stdout around fn and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	out := <-done
	r.Close()
	return out, runErr
}

package main

import "testing"

func TestRunTokenBag(t *testing.T) {
	if err := run([]string{"-alg", "tokenbag", "-n", "64", "-seed", "3"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunExactSmall(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-seed", "5"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunWithProgress(t *testing.T) {
	if err := run([]string{"-alg", "geometric", "-n", "128", "-progress"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if err := run([]string{"-alg", "nope", "-n", "64"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCapWithoutConvergenceErrors(t *testing.T) {
	if err := run([]string{"-alg", "exact", "-n", "256", "-max", "100"}); err == nil {
		t.Fatal("non-convergence should be reported as an error")
	}
}

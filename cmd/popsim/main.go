// Command popsim runs one of the population-size counting protocols on a
// simulated population and reports the outcome.
//
// Usage:
//
//	popsim -alg exact -n 10000 -seed 7
//	popsim -alg approximate -n 100000 -progress
//	popsim -alg stable-exact -n 2000 -confirm 100000
//	popsim -alg exact -n 4096 -trials 32 -par 8
//	popsim -alg approximate -n 4096 -sched matching
//	popsim -alg approximate -n 4096 -sched ring
//	popsim -alg exact -n 4096 -sched kron:12
//	popsim -alg geometric -n 100000000 -engine count
//	popsim -alg geometric -n 100000000 -engine count-batched
//	popsim -alg approximate -n 100000000 -engine count-batched
//	popsim -alg approximate -n 4096 -faults 'burst=8000:256;churn=20000:128'
//	popsim -alg stable-exact -n 2048 -faults 'adversary=convergence;adv-agents=512'
//
// Algorithms: approximate, exact, stable-approximate, stable-exact,
// tokenbag, geometric. Schedulers: uniform, biased, matching, and the
// interaction-graph schedulers ring, torus and kron:<k>[:<seed>]
// (stochastic-Kronecker random graph of depth k).
// Engines: agent (default), count, count-batched, auto — the count
// engine simulates the configuration (per-state agent counts) directly;
// count-batched additionally steps the configuration in multinomial
// epochs (drift-bounded τ-leaping, distributionally faithful but not
// exact). Every algorithm except tokenbag has a count form: the
// building blocks reach n ≥ 10⁹, and the composed counting protocols
// themselves (approximate, exact and the stable variants) run on the
// count engines through their interned transition specs — protocol
// Approximate converges at n = 10⁸ on count-batched in minutes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"popcount"
	"popcount/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popsim", flag.ContinueOnError)
	var (
		algName  = fs.String("alg", "exact", "algorithm: approximate | exact | stable-approximate | stable-exact | tokenbag | geometric")
		n        = fs.Int("n", 1000, "population size")
		seed     = fs.Uint64("seed", 1, "scheduler seed (runs are reproducible)")
		maxI     = fs.Int64("max", 0, "interaction cap (0 = engine default)")
		progress = fs.Bool("progress", false, "print progress snapshots while running")
		schedN   = fs.String("sched", "uniform", "scheduler: uniform | biased | matching | ring | torus | kron:<k>[:<seed>[:<a>,<b>,<c>,<d>]]")
		bias     = fs.Float64("bias", 0.2, "initiator bias of agent 0 under -sched biased")
		confirm  = fs.Int64("confirm", 0, "confirmation window in interactions (0 = none); reports stabilization")
		trials   = fs.Int("trials", 1, "independent trials; >1 runs an ensemble and prints aggregate statistics")
		par      = fs.Int("par", 0, "parallel trials for ensembles (0 = one per CPU)")
		engineN  = fs.String("engine", "agent", "simulation engine: agent | count | count-batched | auto (count simulates the configuration directly, enabling n >= 1e8 for supported algorithms; count-batched steps it in drift-bounded multinomial epochs for o(1) amortized cost per interaction — approximate, see DESIGN.md)")
		batchR   = fs.Int("batch-rounds", 0, "count-batched: cap one batch epoch at this many rounds of n interactions (0 = engine default)")
		shards   = fs.Int("shards", 0, "count-batched: shard each batch epoch across this many independent RNG streams, planned concurrently (0 or 1 = serial, bit-compatible with older runs; results depend on the shard count but never on GOMAXPROCS)")
		faultsN  = fs.String("faults", "", "fault plan in key=value;… form, e.g. 'burst=2000:32;churn=4000:16;adversary=convergence;adv-agents=64' (see popcount.ParseFaultPlan)")
		jsonOut  = fs.Bool("json", false, "print the popcountd result document (byte-identical to GET /v1/jobs/{id}/result for the same request) instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := popcount.ParseFaultPlan(*faultsN)
	if err != nil {
		return err
	}
	if *jsonOut {
		// The JSON path goes through the same request canonicalization,
		// run options and document encoder as popcountd, so the printed
		// bytes match what the service stores for this request. Only
		// request-expressible runs qualify: the JobRequest schema carries
		// the uniform and graph schedulers (ring, torus, kron) but not
		// biased or matching, and progress text would corrupt the
		// document.
		switch *schedN {
		case "biased", "matching":
			return fmt.Errorf("-json supports only the uniform and graph schedulers (the popcountd job schema has no %s form)", *schedN)
		}
		if *progress {
			return fmt.Errorf("-json and -progress are mutually exclusive")
		}
		return runJSON(service.JobRequest{
			Algorithm:       *algName,
			N:               *n,
			Trials:          *trials,
			Seed:            *seed,
			Engine:          *engineN,
			Scheduler:       *schedN,
			MaxInteractions: *maxI,
			ConfirmWindow:   *confirm,
			BatchRounds:     *batchR,
			Shards:          *shards,
			FaultInjection:  plan.CorruptSearch,
			Faults:          service.FaultRequestFromPlan(plan),
		}, *par)
	}
	alg, err := popcount.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	engine, err := popcount.ParseEngineKind(*engineN)
	if err != nil {
		return err
	}

	opts := []popcount.Option{
		popcount.WithSeed(*seed),
		popcount.WithMaxInteractions(*maxI),
		popcount.WithConfirmWindow(*confirm),
		popcount.WithParallelism(*par),
		popcount.WithEngine(engine),
	}
	if *batchR > 0 {
		opts = append(opts, popcount.WithBatchRounds(*batchR))
	}
	if *shards != 0 {
		// Pass 1 (and invalid negatives) through so the library's
		// validation owns the semantics; only 0 means "flag unset".
		opts = append(opts, popcount.WithIntraRunParallelism(*shards))
	}
	if *faultsN != "" {
		opts = append(opts, popcount.WithFaults(plan))
	}
	switch *schedN {
	case "uniform":
		// Engine default.
	case "biased":
		b := *bias
		if b < 0 || b >= 1 {
			return fmt.Errorf("-bias %v out of range [0, 1)", b)
		}
		opts = append(opts, popcount.WithScheduler(func() popcount.Scheduler {
			return popcount.BiasedPairs(0, b)
		}))
	case "matching":
		opts = append(opts, popcount.WithScheduler(popcount.RandomMatching))
	default:
		// Graph schedulers (ring, torus, kron:<k>…) parse from the same
		// canonical spec grammar the job schema and snapshots use.
		mkSched, _, err := popcount.ParseSchedulerSpec(*schedN)
		if err != nil {
			return err
		}
		opts = append(opts, popcount.WithScheduler(mkSched))
	}
	if *progress {
		opts = append(opts,
			popcount.WithObserveEvery(int64(*n)*10),
			popcount.WithObserver(func(s popcount.Snapshot) {
				if *trials > 1 {
					fmt.Printf("trial=%3d  t=%12d  agent0 output=%d\n", s.Trial, s.Interactions, s.Output)
					return
				}
				fmt.Printf("t=%12d  agent0 output=%d\n", s.Interactions, s.Output)
			}))
	}

	if *trials > 1 {
		return runEnsemble(alg, *n, *trials, *confirm, opts)
	}

	s, err := popcount.NewSimulation(alg, *n, opts...)
	if err != nil {
		return err
	}
	res, err := s.RunToConvergence()
	if err != nil {
		return err
	}
	fmt.Printf("algorithm:    %s\n", alg)
	fmt.Printf("population:   %d agents\n", *n)
	fmt.Printf("scheduler:    %s\n", *schedN)
	fmt.Printf("engine:       %s\n", s.Engine())
	fmt.Printf("converged:    %v\n", res.Converged)
	fmt.Printf("interactions: %d\n", res.Interactions)
	if *confirm > 0 {
		fmt.Printf("total:        %d (confirmation window %d)\n", res.Total, *confirm)
		fmt.Printf("stable:       %v\n", res.Stable)
	}
	fmt.Printf("output:       %d\n", res.Output)
	fmt.Printf("estimate:     %d agents\n", res.Estimate)
	// The count engines carry deterministic run counters (equal seeds
	// reproduce them exactly on any machine; cmd/benchdiff gates CI on
	// the same quantities).
	if st := s.Stats(); s.Engine() != popcount.EngineAgent {
		fmt.Printf("delta calls:  %d\n", st.DeltaCalls)
		if s.Engine() == popcount.EngineCountBatched {
			fmt.Printf("epochs:       %d (safety-net violations %d, half-epochs reused %d, re-planned %d)\n",
				st.Epochs, st.Violations, st.HalfReuses, st.HalfDiscards)
		}
		if st.ShardEpochs > 0 {
			fmt.Printf("sharded:      %d epochs, %d blocks (merge conflicts %d, steal events %d)\n",
				st.ShardEpochs, st.ShardBlocks, st.MergeConflicts, st.StealEvents)
		}
	}
	if plan.Enabled() {
		st := s.Stats()
		fmt.Printf("faults:       %d events (%d corrupted, %d churned, %d forced interactions)\n",
			st.FaultEvents, st.Corrupted, st.Churned, st.ForcedInteractions)
		if st.Reconvergences > 0 {
			fmt.Printf("recovery:     %d reconvergences, %d interactions total (max %d)\n",
				st.Reconvergences, st.ReconvergeTotal, st.ReconvergeMax)
		}
		if st.ErrorLatency >= 0 {
			fmt.Printf("error flag:   raised %d interactions after first corruption\n", st.ErrorLatency)
		}
	}
	if !res.Converged {
		return fmt.Errorf("no convergence within the interaction cap")
	}
	return nil
}

// runJSON runs the request exactly as popcountd would and prints the
// service's result document.
func runJSON(req service.JobRequest, par int) error {
	req, err := req.Canonicalize()
	if err != nil {
		return err
	}
	var doc service.ResultDoc
	if req.Trials == 1 {
		s, err := popcount.NewSimulation(req.Alg(), req.N, req.Options()...)
		if err != nil {
			return err
		}
		res, err := s.RunToConvergence()
		if err != nil {
			return err
		}
		doc = service.SingleDoc(req, res)
	} else {
		opts := append(req.Options(), popcount.WithParallelism(par))
		ens, err := popcount.RunEnsemble(context.Background(), req.Alg(), req.N, req.Trials, opts...)
		if err != nil {
			return err
		}
		doc = service.EnsembleDoc(req, ens)
	}
	data, err := service.MarshalDoc(doc)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	for _, tr := range doc.Trials {
		if !tr.Converged {
			return fmt.Errorf("trials missed convergence within the interaction cap")
		}
	}
	return nil
}

// runEnsemble runs the multi-trial path and prints per-run aggregates.
func runEnsemble(alg popcount.Algorithm, n, trials int, confirm int64, opts []popcount.Option) error {
	ens, err := popcount.RunEnsemble(context.Background(), alg, n, trials, opts...)
	if err != nil {
		return err
	}
	st := ens.Stats
	fmt.Printf("algorithm:    %s\n", alg)
	fmt.Printf("population:   %d agents\n", n)
	fmt.Printf("trials:       %d\n", st.Trials)
	fmt.Printf("converged:    %d/%d (%.0f%%)\n", st.Converged, st.Trials, 100*st.ConvergenceRate)
	if confirm > 0 {
		fmt.Printf("stable:       %d/%d (%.0f%%)\n", st.Stable, st.Trials, 100*st.StableRate)
	}
	fmt.Printf("interactions: mean %.0f  median %.0f  p10 %.0f  p90 %.0f\n",
		st.Interactions.Mean, st.Interactions.Median, st.Interactions.P10, st.Interactions.P90)
	fmt.Printf("estimate:     mean %.1f  median %.1f\n", st.Estimates.Mean, st.Estimates.Median)
	if st.Converged < st.Trials {
		return fmt.Errorf("%d trials missed convergence within the interaction cap", st.Trials-st.Converged)
	}
	return nil
}

// Command popsim runs one of the population-size counting protocols on a
// simulated population and reports the outcome.
//
// Usage:
//
//	popsim -alg exact -n 10000 -seed 7
//	popsim -alg approximate -n 100000
//	popsim -alg stable-exact -n 2000 -progress
//
// Algorithms: approximate, exact, stable-approximate, stable-exact,
// tokenbag, geometric.
package main

import (
	"flag"
	"fmt"
	"os"

	"popcount"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popsim", flag.ContinueOnError)
	var (
		algName  = fs.String("alg", "exact", "algorithm: approximate | exact | stable-approximate | stable-exact | tokenbag | geometric")
		n        = fs.Int("n", 1000, "population size")
		seed     = fs.Uint64("seed", 1, "scheduler seed (runs are reproducible)")
		maxI     = fs.Int64("max", 0, "interaction cap (0 = engine default)")
		progress = fs.Bool("progress", false, "print progress snapshots while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := popcount.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	s, err := popcount.NewSimulation(alg, *n,
		popcount.WithSeed(*seed), popcount.WithMaxInteractions(*maxI))
	if err != nil {
		return err
	}

	if *progress {
		step := int64(*n) * 10
		for !s.Converged() {
			s.Step(step)
			fmt.Printf("t=%12d  agent0 output=%d\n", s.Interactions(), s.Output(0))
			if *maxI > 0 && s.Interactions() >= *maxI {
				break
			}
		}
	}

	res, err := s.RunToConvergence()
	if err != nil {
		return err
	}
	fmt.Printf("algorithm:    %s\n", alg)
	fmt.Printf("population:   %d agents\n", *n)
	fmt.Printf("converged:    %v\n", res.Converged)
	fmt.Printf("interactions: %d\n", res.Interactions)
	fmt.Printf("output:       %d\n", res.Output)
	fmt.Printf("estimate:     %d agents\n", res.Estimate)
	if !res.Converged {
		return fmt.Errorf("no convergence within the interaction cap")
	}
	return nil
}

package main

import (
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E6", "-trials", "2", "-par", "4"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunSelectedLowercase(t *testing.T) {
	if err := run([]string{"-exp", "e13", "-trials", "2"}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "E99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must name the bad id and list every valid one, so a CI
	// typo fails before the 3-run best-of burns minutes.
	for _, want := range []string{`"E99"`, "E1", "E23", "A3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-experiment error %q does not mention %s", err, want)
		}
	}
}

func TestRunFigure(t *testing.T) {
	if err := run([]string{"-fig", "F1"}); err != nil {
		t.Fatalf("figure run failed: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "F9"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// Command popbench runs the reproduction experiment suite (E1–E15 and
// ablations A1–A3 from DESIGN.md) and prints the result tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	popbench                 # quick suite
//	popbench -full           # full sweeps (takes a while)
//	popbench -exp E8,E12     # selected experiments only
//	popbench -trials 20 -par 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popcount/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popbench", flag.ContinueOnError)
	var (
		full   = fs.Bool("full", false, "run the full sweeps instead of the quick suite")
		sel    = fs.String("exp", "", "comma-separated experiment ids (e.g. E1,E8,A2); empty = all")
		trials = fs.Int("trials", 0, "trials per configuration (0 = default)")
		par    = fs.Int("par", 8, "parallel trials")
		seed   = fs.Uint64("seed", 0, "base seed (0 = default)")
		figs   = fs.String("fig", "", "comma-separated figure ids (F1..F4) to emit as CSV instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := exp.Options{
		Quick:       !*full,
		Trials:      *trials,
		Parallelism: *par,
		Seed:        *seed,
	}

	if *figs != "" {
		series := map[string]func(exp.Options) exp.Series{
			"F1": exp.F1EpidemicCurve, "F2": exp.F2LeaderDecay,
			"F3": exp.F3EstimateTrajectory, "F4": exp.F4ExactSettling,
		}
		for _, id := range strings.Split(*figs, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			f, ok := series[id]
			if !ok {
				return fmt.Errorf("unknown figure %q", id)
			}
			fmt.Print(f(o).CSV())
		}
		return nil
	}

	runners := map[string]func(exp.Options) exp.Table{
		"E1": exp.E1Broadcast, "E2": exp.E2Junta, "E3": exp.E3PhaseClock,
		"E4": exp.E4LeaderElect, "E5": exp.E5FastLeader, "E6": exp.E6PowerOfTwo,
		"E7": exp.E7Search, "E8": exp.E8Approximate, "E9": exp.E9StableApproximate,
		"E10": exp.E10ApproxStage, "E11": exp.E11Refine, "E12": exp.E12CountExact,
		"E13": exp.E13BackupApprox, "E14": exp.E14BackupExact, "E15": exp.E15Baselines,
		"E16": exp.E16SchedulerRobustness, "E17": exp.E17Stabilization,
		"A1": exp.A1ClockPeriod, "A2": exp.A2Shift, "A3": exp.A3FastLeaderRounds,
	}

	if *sel == "" {
		for _, t := range exp.All(o) {
			fmt.Println(t.Format())
		}
		return nil
	}
	for _, id := range strings.Split(*sel, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		f, ok := runners[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		fmt.Println(f(o).Format())
	}
	return nil
}

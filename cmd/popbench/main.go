// Command popbench runs the reproduction experiment suite (E1–E24 and
// ablations A1–A3 from DESIGN.md) and prints the result tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	popbench                 # quick suite
//	popbench -full           # full sweeps (takes a while)
//	popbench -exp E8,E12     # selected experiments only
//	popbench -trials 20 -par 8
//	popbench -exp E18 -full  # count-engine scaling up to n = 1e8
//	popbench -exp E19 -full  # batched stepping up to n = 1e9
//	popbench -json bench.json            # machine-readable metrics
//	popbench -cpuprofile cpu.pprof       # pprof evidence for perf PRs
//	popbench -exp E22 -shards 8 -json shard.json  # multicore CI gate workload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"popcount/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popbench:", err)
		os.Exit(1)
	}
}

// experiments is the single registry of the suite, in canonical run
// order — selection, default order and the -json path all derive from
// it, so an experiment cannot be registered in one place and dropped
// from another.
var experiments = []struct {
	id string
	fn func(exp.Options) exp.Table
}{
	{"E1", exp.E1Broadcast}, {"E2", exp.E2Junta}, {"E3", exp.E3PhaseClock},
	{"E4", exp.E4LeaderElect}, {"E5", exp.E5FastLeader}, {"E6", exp.E6PowerOfTwo},
	{"E7", exp.E7Search}, {"E8", exp.E8Approximate}, {"E9", exp.E9StableApproximate},
	{"E10", exp.E10ApproxStage}, {"E11", exp.E11Refine}, {"E12", exp.E12CountExact},
	{"E13", exp.E13BackupApprox}, {"E14", exp.E14BackupExact}, {"E15", exp.E15Baselines},
	{"E16", exp.E16SchedulerRobustness}, {"E17", exp.E17Stabilization},
	{"E18", exp.E18CountEngine}, {"E19", exp.E19BatchedEngine},
	{"E20", exp.E20Service}, {"E21", exp.E21FaultRecovery},
	{"E22", exp.E22ShardScaling}, {"E23", exp.E23InternedThroughput},
	{"E24", exp.E24GraphSchedulers},
	{"A1", exp.A1ClockPeriod}, {"A2", exp.A2Shift}, {"A3", exp.A3FastLeaderRounds},
}

// experimentIDs returns every registered id in canonical order — the
// valid-id list unknown-id errors print, so a typo fails loudly with
// the fix in hand instead of after a multi-run CI job.
func experimentIDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return ids
}

// runnerFor resolves an experiment id from the registry.
func runnerFor(id string) (func(exp.Options) exp.Table, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e.fn, true
		}
	}
	return nil, false
}

// experimentMetrics is the machine-readable per-experiment record
// emitted by -json. Trials, Converged, Interactions, DeltaCalls and
// Epochs are deterministic functions of the experiment's seeds —
// cmd/benchdiff gates on them exactly, independent of the runner's
// machine class; only WallSeconds and InteractionsPerSec vary with the
// machine.
type experimentMetrics struct {
	ID                 string  `json:"id"`
	Title              string  `json:"title"`
	WallSeconds        float64 `json:"wall_seconds"`
	Trials             int64   `json:"trials"`
	Converged          int64   `json:"converged"`
	ConvergenceRate    float64 `json:"convergence_rate"`
	Interactions       int64   `json:"interactions"`
	InteractionsPerSec float64 `json:"interactions_per_sec"`
	DeltaCalls         int64   `json:"delta_calls,omitempty"`
	Epochs             int64   `json:"epochs,omitempty"`
	ShardEpochs        int64   `json:"shard_epochs,omitempty"`
	ShardBlocks        int64   `json:"shard_blocks,omitempty"`
	MergeConflicts     int64   `json:"merge_conflicts,omitempty"`
	StealEvents        int64   `json:"steal_events,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("popbench", flag.ContinueOnError)
	var (
		full       = fs.Bool("full", false, "run the full sweeps instead of the quick suite")
		sel        = fs.String("exp", "", "comma-separated experiment ids (e.g. E1,E8,A2); empty = all")
		trials     = fs.Int("trials", 0, "trials per configuration (0 = default)")
		par        = fs.Int("par", 8, "parallel trials")
		seed       = fs.Uint64("seed", 0, "base seed (0 = default)")
		shards     = fs.Int("shards", 0, "pin the intra-run shard count of shard-aware experiments (E22) instead of their default sweep")
		figs       = fs.String("fig", "", "comma-separated figure ids (F1..F4) to emit as CSV instead of tables")
		jsonPath   = fs.String("json", "", "write per-experiment metrics (trials, interactions, interactions/sec, convergence rate) to this JSON file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := exp.Options{
		Quick:       !*full,
		Trials:      *trials,
		Parallelism: *par,
		Seed:        *seed,
		Shards:      *shards,
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "popbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "popbench: memprofile:", err)
			}
		}()
	}

	if *figs != "" {
		if *jsonPath != "" {
			return fmt.Errorf("-fig emits CSV only and cannot be combined with -json")
		}
		series := map[string]func(exp.Options) exp.Series{
			"F1": exp.F1EpidemicCurve, "F2": exp.F2LeaderDecay,
			"F3": exp.F3EstimateTrajectory, "F4": exp.F4ExactSettling,
		}
		for _, id := range strings.Split(*figs, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			f, ok := series[id]
			if !ok {
				return fmt.Errorf("unknown figure %q", id)
			}
			fmt.Print(f(o).CSV())
		}
		return nil
	}

	var ids []string
	if *sel != "" {
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runnerFor(id); !ok {
				return fmt.Errorf("unknown experiment %q (valid: %s)",
					id, strings.Join(experimentIDs(), ", "))
			}
			ids = append(ids, id)
		}
	} else {
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
	}

	// Without -json, the default full-suite path delegates to exp.All so
	// E10–E12 share one set of CountExact runs; per-experiment metrics
	// need per-experiment counter windows, so -json runs them
	// individually.
	if *jsonPath == "" && *sel == "" {
		for _, t := range exp.All(o) {
			fmt.Println(t.Format())
		}
		return nil
	}

	var metrics []experimentMetrics
	for _, id := range ids {
		f, _ := runnerFor(id)
		exp.ResetCounters()
		start := time.Now()
		tbl := f(o)
		wall := time.Since(start).Seconds()
		fmt.Println(tbl.Format())
		c := exp.CounterSnapshot()
		m := experimentMetrics{
			ID:             id,
			Title:          tbl.Title,
			WallSeconds:    wall,
			Trials:         c.Trials,
			Converged:      c.Converged,
			Interactions:   c.Interactions,
			DeltaCalls:     c.DeltaCalls,
			Epochs:         c.Epochs,
			ShardEpochs:    c.ShardEpochs,
			ShardBlocks:    c.ShardBlocks,
			MergeConflicts: c.MergeConflicts,
			StealEvents:    c.StealEvents,
		}
		if c.Trials > 0 {
			m.ConvergenceRate = float64(c.Converged) / float64(c.Trials)
		}
		if wall > 0 {
			m.InteractionsPerSec = float64(c.Interactions) / wall
		}
		metrics = append(metrics, m)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

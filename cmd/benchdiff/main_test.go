package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeMetrics writes a popbench-format metrics file and returns its
// path.
func writeMetrics(t *testing.T, dir, name string, ms []metrics) string {
	t.Helper()
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func m(id string, ips float64) metrics {
	// WallSeconds sits above the default -min-wall noise floor so the
	// throughput ratio is gated; TestGateMinWallFloor covers the
	// sub-floor skip.
	return metrics{ID: id, Title: id, InteractionsPerSec: ips, WallSeconds: 1, Trials: 2, Converged: 2}
}

// TestGatePasses pins the accept path: rates within the threshold —
// including improvements — pass.
func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100), m("E18", 1e9), m("E19", 1e11)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 90), m("E18", 2e9), m("E19", 0.8e11)})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err != nil {
		t.Fatalf("gate failed on tolerable drift: %v", err)
	}
}

// TestGateFailsOnSyntheticRegression pins the reject path: a synthetic
// >25% interactions/sec regression must fail the gate.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100), m("E18", 1e9), m("E19", 1e11)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 100), m("E18", 0.74e9), m("E19", 1e11)})
	err := run([]string{"-baseline", base, "-current", cur}, os.Stdout)
	if err == nil {
		t.Fatal("gate passed a 26% regression")
	}
	if !strings.Contains(err.Error(), "E18") {
		t.Fatalf("failure does not name the regressed experiment: %v", err)
	}
	// A drop exactly at the boundary (25%) still passes.
	cur = writeMetrics(t, dir, "cur2.json", []metrics{m("E1", 100), m("E18", 0.76e9), m("E19", 1e11)})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err != nil {
		t.Fatalf("gate failed a 24%% drop inside the threshold: %v", err)
	}
}

// TestGateFailsOnMissingExperiment pins that silently dropping a gated
// experiment fails.
func TestGateFailsOnMissingExperiment(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100), m("E19", 1e11)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 100)})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err == nil {
		t.Fatal("gate passed with E19 missing from current metrics")
	}
}

// TestGateIDSelection pins -ids: only the named experiments gate.
func TestGateIDSelection(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100), m("E18", 1e9)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 100), m("E18", 1)})
	if err := run([]string{"-baseline", base, "-current", cur, "-ids", "E1"}, os.Stdout); err != nil {
		t.Fatalf("gate inspected an unselected experiment: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-ids", "E1,E18"}, os.Stdout); err == nil {
		t.Fatal("gate missed a selected regression")
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-ids", "E7"}, os.Stdout); err == nil {
		t.Fatal("gate accepted an id absent from the baseline")
	}
}

// TestGateBestOfRuns pins the repeated-run noise filter: several
// -current files gate on each experiment's best run, so one
// contention-slowed run does not fail the gate.
func TestGateBestOfRuns(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100), m("E18", 1e9)})
	slow := writeMetrics(t, dir, "slow.json", []metrics{m("E1", 40), m("E18", 1e9)})
	good := writeMetrics(t, dir, "good.json", []metrics{m("E1", 98), m("E18", 0.9e9)})
	if err := run([]string{"-baseline", base, "-current", slow + "," + good}, os.Stdout); err != nil {
		t.Fatalf("best-of gate failed despite one clean run: %v", err)
	}
	// Both runs slow: a real regression still fails.
	slow2 := writeMetrics(t, dir, "slow2.json", []metrics{m("E1", 45), m("E18", 1e9)})
	if err := run([]string{"-baseline", base, "-current", slow + "," + slow2}, os.Stdout); err == nil {
		t.Fatal("best-of gate passed a regression present in every run")
	}
}

// TestGateThresholdFlag pins the-threshold knob.
func TestGateThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 60)})
	if err := run([]string{"-baseline", base, "-current", cur, "-threshold", "0.5"}, os.Stdout); err != nil {
		t.Fatalf("40%% drop failed a 50%% threshold: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-threshold", "0.2"}, os.Stdout); err == nil {
		t.Fatal("40% drop passed a 20% threshold")
	}
}

// TestGateCountersExact pins the machine-independent counter gate:
// interactions, delta_calls, epochs and trials are deterministic per
// seed, so any mismatch with the baseline fails regardless of how fast
// the runner is — and -counters=false restores the wall-clock-only
// behaviour.
func TestGateCountersExact(t *testing.T) {
	dir := t.TempDir()
	withCounters := func(mm metrics, interactions, deltaCalls, epochs int64) metrics {
		mm.Interactions = interactions
		mm.DeltaCalls = deltaCalls
		mm.Epochs = epochs
		return mm
	}
	base := writeMetrics(t, dir, "base.json", []metrics{
		withCounters(m("E18", 1e9), 500000, 120000, 0),
		withCounters(m("E19", 1e11), 900000, 3000, 750),
	})

	// Identical counters at much slower wall-clock within threshold: ok.
	cur := writeMetrics(t, dir, "cur.json", []metrics{
		withCounters(m("E18", 0.8e9), 500000, 120000, 0),
		withCounters(m("E19", 0.9e11), 900000, 3000, 750),
	})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err != nil {
		t.Fatalf("gate failed on matching counters: %v", err)
	}

	// Drifted delta_calls at identical wall-clock: counter gate fails
	// and names the counter.
	drift := writeMetrics(t, dir, "drift.json", []metrics{
		withCounters(m("E18", 1e9), 500000, 119999, 0),
		withCounters(m("E19", 1e11), 900000, 3000, 750),
	})
	err := run([]string{"-baseline", base, "-current", drift}, os.Stdout)
	if err == nil {
		t.Fatal("gate passed drifted delta_calls")
	}
	if !strings.Contains(err.Error(), "delta_calls") {
		t.Fatalf("failure does not name the drifted counter: %v", err)
	}
	// -counters=false falls back to the wall-clock gate alone.
	if err := run([]string{"-baseline", base, "-current", drift, "-counters=false"}, os.Stdout); err != nil {
		t.Fatalf("-counters=false still failed: %v", err)
	}

	// Drifted epochs likewise fail.
	edrift := writeMetrics(t, dir, "edrift.json", []metrics{
		withCounters(m("E18", 1e9), 500000, 120000, 0),
		withCounters(m("E19", 1e11), 900000, 3000, 751),
	})
	if err := run([]string{"-baseline", base, "-current", edrift}, os.Stdout); err == nil {
		t.Fatal("gate passed drifted epochs")
	}

	// A zero baseline counter (older baseline, agent-only experiment)
	// skips that check.
	zbase := writeMetrics(t, dir, "zbase.json", []metrics{m("E1", 100)})
	zcur := writeMetrics(t, dir, "zcur.json", []metrics{
		withCounters(m("E1", 100), 123456, 99, 7),
	})
	if err := run([]string{"-baseline", zbase, "-current", zcur}, os.Stdout); err != nil {
		t.Fatalf("zero-baseline counters were gated: %v", err)
	}
}

// TestGateMinWallFloor pins the noise floor: an experiment whose
// baseline run is shorter than -min-wall carries no wall-clock signal,
// so its throughput ratio is not gated — but its machine-independent
// counters still are.
func TestGateMinWallFloor(t *testing.T) {
	dir := t.TempDir()
	short := m("E13", 100)
	short.WallSeconds = 0.008
	short.Interactions = 300000
	base := writeMetrics(t, dir, "base.json", []metrics{short})

	// A 60% apparent drop on a sub-floor experiment passes.
	slow := short
	slow.InteractionsPerSec = 40
	cur := writeMetrics(t, dir, "cur.json", []metrics{slow})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err != nil {
		t.Fatalf("sub-noise-floor ratio was gated: %v", err)
	}

	// Counter drift on the same experiment still fails.
	drift := slow
	drift.Interactions = 300001
	cur = writeMetrics(t, dir, "drift.json", []metrics{drift})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err == nil {
		t.Fatal("counter drift passed under the noise floor")
	}

	// Raising -min-wall pulls longer experiments under the floor too.
	long := m("E18", 100)
	base = writeMetrics(t, dir, "base2.json", []metrics{long})
	slow2 := long
	slow2.InteractionsPerSec = 40
	cur = writeMetrics(t, dir, "cur2.json", []metrics{slow2})
	if err := run([]string{"-baseline", base, "-current", cur}, os.Stdout); err == nil {
		t.Fatal("a gated regression passed above the floor")
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-min-wall", "2"}, os.Stdout); err != nil {
		t.Fatalf("-min-wall=2 still gated a 1s experiment: %v", err)
	}
}

// TestGateSpeedup pins -speedup, the multicore gate: the current file
// must be at least the given multiple faster than the baseline, and the
// machine-independent counters — shard counters and zeros included —
// must match exactly across the two pinnings.
func TestGateSpeedup(t *testing.T) {
	dir := t.TempDir()
	sharded := func(ips float64, conflicts, steals int64) metrics {
		mm := m("E22", ips)
		mm.Interactions = 5_000_000
		mm.Epochs = 900
		mm.ShardEpochs = 880
		mm.ShardBlocks = 7040
		mm.MergeConflicts = conflicts
		mm.StealEvents = steals
		return mm
	}
	base := writeMetrics(t, dir, "single.json", []metrics{sharded(100, 3, 0)})

	// 2.5× faster with identical counters passes a 2.0 gate.
	fast := writeMetrics(t, dir, "multi.json", []metrics{sharded(250, 3, 0)})
	if err := run([]string{"-baseline", base, "-current", fast, "-speedup", "2.0"}, os.Stdout); err != nil {
		t.Fatalf("2.5× speedup failed a 2.0 gate: %v", err)
	}

	// 1.5× is not enough and the failure names the shortfall.
	slow := writeMetrics(t, dir, "slow.json", []metrics{sharded(150, 3, 0)})
	err := run([]string{"-baseline", base, "-current", slow, "-speedup", "2.0"}, os.Stdout)
	if err == nil {
		t.Fatal("1.5× speedup passed a 2.0 gate")
	}
	if !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("failure does not name the speedup shortfall: %v", err)
	}

	// Counter drift across the pinnings is a determinism bug even at
	// ample speedup — including a counter whose baseline value is zero,
	// which regression mode would skip.
	drift := writeMetrics(t, dir, "drift.json", []metrics{sharded(300, 3, 4)})
	err = run([]string{"-baseline", base, "-current", drift, "-speedup", "2.0"}, os.Stdout)
	if err == nil {
		t.Fatal("steal_events drift passed the speedup gate")
	}
	if !strings.Contains(err.Error(), "steal_events") {
		t.Fatalf("failure does not name the drifted counter: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", drift}, os.Stdout); err != nil {
		t.Fatalf("regression mode gated a zero-baseline counter: %v", err)
	}

	// Flag validation.
	if err := run([]string{"-baseline", base, "-current", fast, "-speedup", "-1"}, os.Stdout); err == nil {
		t.Fatal("negative -speedup accepted")
	}
	if err := run([]string{"-baseline", base, "-current", fast, "-speedup", "2", "-update"}, os.Stdout); err == nil {
		t.Fatal("-speedup with -update accepted")
	}
}

// TestUpdateRewritesBaseline pins -update.
func TestUpdateRewritesBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeMetrics(t, dir, "base.json", []metrics{m("E1", 100)})
	cur := writeMetrics(t, dir, "cur.json", []metrics{m("E1", 500), m("E18", 1e9)})
	if err := run([]string{"-baseline", base, "-current", cur, "-update"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	got, _, err := load(base)
	if err != nil {
		t.Fatal(err)
	}
	if got["E1"].InteractionsPerSec != 500 || len(got) != 2 {
		t.Fatalf("baseline not rewritten: %+v", got)
	}
}

// Command benchdiff compares two popbench -json metric files and fails
// on regressions — the CI perf gate.
//
// Usage:
//
//	popbench -exp E1,E18,E19 -trials 16 -json current.json
//	benchdiff -baseline bench/baseline.json -current current.json
//	benchdiff -baseline bench/baseline.json -current a.json,b.json,c.json
//	benchdiff -baseline bench/baseline.json -current current.json -ids E1,E18 -threshold 0.4
//	benchdiff -baseline bench/baseline.json -current current.json -counters=false
//	benchdiff -baseline bench/baseline.json -current current.json -update
//	benchdiff -baseline single-core.json -current multi-core.json -speedup 2.0
//
// The files hold the []experimentMetrics records popbench emits. For
// every selected experiment id present in the baseline, benchdiff gates
// two independent properties:
//
//   - Machine-independent counters: trials, interactions, delta_calls
//     and epochs are deterministic functions of the experiment's seeds
//     — they must match the baseline exactly on any machine, so any
//     difference is real dynamics drift (a changed rule, a changed
//     sampler, a lost fast path), never runner noise. Disable with
//     -counters=false when diffing across intentionally different
//     configurations.
//   - Wall-clock throughput: interactions_per_sec may regress by at
//     most the threshold (default 0.25, i.e. current < 75% of
//     baseline).
//
// Experiments missing from the current metrics fail the gate outright —
// a silently dropped experiment is a regression too. -update rewrites
// the baseline from the current metrics instead of comparing (run it on
// the reference machine when a PR legitimately shifts throughput or
// dynamics, and commit the result).
//
// -speedup flips the throughput gate's direction for the multicore CI
// job: instead of tolerating a bounded drop against a committed
// baseline, it requires current interactions_per_sec to be at least the
// given multiple of the baseline's. There the two files are the same
// sharded workload run twice in one job — GOMAXPROCS pinned to one core
// for the baseline and to all cores for the current — so the counter
// gate tightens to full equality (no zero-skip): the sharded planner's
// counters are functions of seed and shard count alone, and any
// difference across the two pinnings is a determinism bug, not noise.
//
// Scheduler noise on shared runners is one-sided — contention only ever
// slows a measurement down — so -current accepts several
// comma-separated files (popbench runs repeated in one job) and gates
// on each experiment's best run. Combined with a baseline recorded the
// same way and the loose default threshold, the wall-clock gate catches
// algorithmic regressions (a 2× slowdown from a lost fast path), not
// machine variance; the counter gate is exact and carries none of that
// residual machine-class risk.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// metrics mirrors popbench's experimentMetrics JSON records.
type metrics struct {
	ID                 string  `json:"id"`
	Title              string  `json:"title"`
	WallSeconds        float64 `json:"wall_seconds"`
	Trials             int64   `json:"trials"`
	Converged          int64   `json:"converged"`
	ConvergenceRate    float64 `json:"convergence_rate"`
	Interactions       int64   `json:"interactions"`
	InteractionsPerSec float64 `json:"interactions_per_sec"`
	DeltaCalls         int64   `json:"delta_calls,omitempty"`
	Epochs             int64   `json:"epochs,omitempty"`
	ShardEpochs        int64   `json:"shard_epochs,omitempty"`
	ShardBlocks        int64   `json:"shard_blocks,omitempty"`
	MergeConflicts     int64   `json:"merge_conflicts,omitempty"`
	StealEvents        int64   `json:"steal_events,omitempty"`
}

// counterChecks enumerates the machine-independent counters gated for
// exact equality. A zero baseline value skips its check — older
// baselines predate some counters, and agent-only experiments report no
// delta_calls at all.
var counterChecks = []struct {
	name string
	get  func(m metrics) int64
}{
	{"trials", func(m metrics) int64 { return m.Trials }},
	{"interactions", func(m metrics) int64 { return m.Interactions }},
	{"delta_calls", func(m metrics) int64 { return m.DeltaCalls }},
	{"epochs", func(m metrics) int64 { return m.Epochs }},
	{"shard_epochs", func(m metrics) int64 { return m.ShardEpochs }},
	{"shard_blocks", func(m metrics) int64 { return m.ShardBlocks }},
	{"merge_conflicts", func(m metrics) int64 { return m.MergeConflicts }},
	{"steal_events", func(m metrics) int64 { return m.StealEvents }},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func load(path string) (map[string]metrics, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []metrics
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]metrics, len(list))
	order := make([]string, 0, len(list))
	for _, m := range list {
		if _, dup := out[m.ID]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate experiment id %q", path, m.ID)
		}
		out[m.ID] = m
		order = append(order, m.ID)
	}
	return out, order, nil
}

// loadBest merges several metrics files, keeping each experiment's
// fastest record — the repeated-run noise filter of the gate.
func loadBest(paths []string) (map[string]metrics, []string, error) {
	best := make(map[string]metrics)
	var order []string
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		m, o, err := load(path)
		if err != nil {
			return nil, nil, err
		}
		for _, id := range o {
			prev, seen := best[id]
			if !seen {
				order = append(order, id)
			}
			if !seen || m[id].InteractionsPerSec > prev.InteractionsPerSec {
				best[id] = m[id]
			}
		}
	}
	if len(best) == 0 {
		return nil, nil, fmt.Errorf("no metrics in %s", strings.Join(paths, ","))
	}
	return best, order, nil
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "bench/baseline.json", "committed baseline metrics (popbench -json format)")
		curPath   = fs.String("current", "", "current metrics to gate; comma-separated popbench -json files gate on each experiment's best run")
		ids       = fs.String("ids", "", "comma-separated experiment ids to gate; empty = every id in the baseline")
		threshold = fs.Float64("threshold", 0.25, "maximum tolerated relative drop in interactions_per_sec")
		counters  = fs.Bool("counters", true, "gate the machine-independent counters (trials, interactions, delta_calls, epochs) for exact equality")
		minWall   = fs.Float64("min-wall", 0.05, "baseline wall_seconds below which the throughput ratio is skipped (sub-noise-floor experiments carry no wall-clock signal; their counters are still gated exactly)")
		update    = fs.Bool("update", false, "rewrite the baseline from -current (best run per experiment) instead of comparing")
		speedup   = fs.Float64("speedup", 0, "multicore gate: require current interactions_per_sec >= this multiple of the baseline's (e.g. 2.0) and full counter equality with no zero-skip; 0 = regression mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *curPath == "" {
		return fmt.Errorf("-current is required")
	}
	if *threshold <= 0 || *threshold >= 1 {
		return fmt.Errorf("-threshold %v out of range (0, 1)", *threshold)
	}
	if *speedup < 0 {
		return fmt.Errorf("-speedup %v must be positive", *speedup)
	}
	if *speedup > 0 && *update {
		return fmt.Errorf("-speedup and -update are mutually exclusive")
	}

	cur, curOrder, err := loadBest(strings.Split(*curPath, ","))
	if err != nil {
		return err
	}

	if *update {
		list := make([]metrics, 0, len(cur))
		for _, id := range curOrder {
			list = append(list, cur[id])
		}
		data, err := json.MarshalIndent(list, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchdiff: baseline %s updated from %s\n", *basePath, *curPath)
		return nil
	}

	base, order, err := load(*basePath)
	if err != nil {
		return err
	}

	selected := order
	if *ids != "" {
		selected = nil
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := base[id]; !ok {
				return fmt.Errorf("experiment %q not in baseline %s", id, *basePath)
			}
			selected = append(selected, id)
		}
	}

	var failures []string
	fmt.Fprintf(w, "%-5s  %14s  %14s  %8s  %s\n", "id", "baseline ips", "current ips", "ratio", "verdict")
	for _, id := range selected {
		b := base[id]
		c, ok := cur[id]
		if !ok {
			fmt.Fprintf(w, "%-5s  %14.3g  %14s  %8s  MISSING\n", id, b.InteractionsPerSec, "-", "-")
			failures = append(failures, fmt.Sprintf("%s: missing from current metrics", id))
			continue
		}
		if b.InteractionsPerSec <= 0 {
			fmt.Fprintf(w, "%-5s  %14.3g  %14.3g  %8s  SKIP (no baseline rate)\n",
				id, b.InteractionsPerSec, c.InteractionsPerSec, "-")
			continue
		}
		ratio := c.InteractionsPerSec / b.InteractionsPerSec
		verdict := "ok"
		switch {
		case b.WallSeconds < *minWall:
			// A run this short is all measurement noise — a millisecond
			// of scheduler jitter moves the ratio by tens of percent.
			// The counter gate below still applies in full.
			verdict = "ok (wall below noise floor, ratio not gated)"
		case *speedup > 0:
			if ratio < *speedup {
				verdict = fmt.Sprintf("NO SPEEDUP (ratio %.2f < %.2f)", ratio, *speedup)
				failures = append(failures, fmt.Sprintf("%s: interactions/sec %.3g -> %.3g (speedup %.2f, want >= %.2f)",
					id, b.InteractionsPerSec, c.InteractionsPerSec, ratio, *speedup))
			}
		case ratio < 1-*threshold:
			verdict = fmt.Sprintf("REGRESSION (>%.0f%% drop)", 100**threshold)
			failures = append(failures, fmt.Sprintf("%s: interactions/sec %.3g -> %.3g (ratio %.2f)",
				id, b.InteractionsPerSec, c.InteractionsPerSec, ratio))
		}
		if *counters {
			for _, ck := range counterChecks {
				// In speedup mode the two files are the same workload under
				// different GOMAXPROCS pinnings, so every counter — zeros
				// included — must agree; regression mode keeps the zero-skip
				// for baselines that predate a counter.
				want, got := ck.get(b), ck.get(c)
				if got != want && (want != 0 || *speedup > 0) {
					verdict = "COUNTER DRIFT"
					failures = append(failures, fmt.Sprintf("%s: %s %d -> %d (machine-independent counter must match exactly)",
						id, ck.name, want, got))
				}
			}
		}
		fmt.Fprintf(w, "%-5s  %14.3g  %14.3g  %8.2f  %s\n",
			id, b.InteractionsPerSec, c.InteractionsPerSec, ratio, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d experiment(s) regressed:\n  %s",
			len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

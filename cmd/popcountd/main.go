// Command popcountd serves population-protocol simulations over HTTP:
// a job API with a bounded worker pool, a content-addressed result
// cache, and checkpointed jobs that survive restarts.
//
// Usage:
//
//	popcountd -addr :8080 -state ./popcountd-state -workers 4
//
// Submit, watch, fetch:
//
//	curl -s localhost:8080/v1/jobs -d '{"algorithm":"approximate","n":4096,"seed":7}'
//	curl -s localhost:8080/v1/jobs/<id>/events     # NDJSON stream, live
//	curl -s localhost:8080/v1/jobs/<id>/result     # stored result document
//	curl -s localhost:8080/metrics                 # queue, cache, throughput
//
// -pprof starts a second, separate listener serving net/http/pprof
// (off by default; keep it on a loopback or otherwise private address —
// profiles expose internals). It is the service-side twin of popbench
// -cpuprofile:
//
//	popcountd -addr :8080 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//
// Identical submissions dedup onto one job — the result document is
// stored content-addressed by the request fingerprint and re-served
// byte-identical. On SIGTERM the daemon drains: running single-trial
// jobs write a final engine checkpoint and requeue; the next start
// resumes them from the checkpoint, bit for bit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"popcount/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popcountd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popcountd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		stateD  = fs.String("state", "popcountd-state", "state directory (job records, results, checkpoints)")
		workers = fs.Int("workers", 2, "worker pool size")
		cpEvery = fs.Int64("checkpoint-every", 0, "interactions between job checkpoints (0 = default 4Mi)")
		pprofAt = fs.String("pprof", "", "serve net/http/pprof debug endpoints on this separate listen address (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := service.New(service.Config{
		Dir:             *stateD,
		Workers:         *workers,
		CheckpointEvery: *cpEvery,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The listen line is the readiness signal scripts wait for.
	fmt.Printf("popcountd listening on %s (state %s, %d workers)\n", ln.Addr(), *stateD, *workers)

	if *pprofAt != "" {
		// A dedicated listener and explicit mux: the debug surface never
		// shares an address with the job API, and the main handler stays
		// free of DefaultServeMux registrations.
		dln, err := net.Listen("tcp", *pprofAt)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Handler: dmux}
		defer ds.Close()
		fmt.Printf("popcountd pprof on %s\n", dln.Addr())
		go func() {
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "popcountd: pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting requests, then let workers
	// checkpoint and requeue their jobs.
	fmt.Println("popcountd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "popcountd: http shutdown:", err)
	}
	srv.Shutdown()
	fmt.Println("popcountd: drained")
	return nil
}

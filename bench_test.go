// Benchmarks: one testing.B benchmark per reproduction table (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
// results). Each benchmark runs its experiment's core measurement at a
// benchmark-sized population and reports the normalized quantity the
// paper's claim is about (interactions divided by the claimed asymptotic
// bound) via b.ReportMetric, so regressions in either wall-clock speed
// or protocol efficiency are visible. The full parameter sweeps that
// regenerate the EXPERIMENTS.md tables are run by cmd/popbench, which
// shares the same internal/exp harness.
package popcount_test

import (
	"math"
	"testing"

	"popcount"
	"popcount/internal/backup"
	"popcount/internal/balance"
	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/core"
	"popcount/internal/epidemic"
	"popcount/internal/exp"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/sim"
)

// runNorm runs factory-built protocols b.N times and reports the mean of
// interactions/denom as metric.
func runNorm(b *testing.B, factory func(i int) sim.Protocol, cfg sim.Config, denom float64, metric string) {
	b.Helper()
	var total float64
	conv := 0
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		res, err := sim.Run(factory(i), c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Converged {
			conv++
			total += float64(res.Interactions) / denom
		}
	}
	if conv > 0 {
		b.ReportMetric(total/float64(conv), metric)
	}
	b.ReportMetric(float64(conv)/float64(b.N), "convergence-rate")
}

func nLnN(n int) float64  { return float64(n) * math.Log(float64(n)) }
func nLn2N(n int) float64 { l := math.Log(float64(n)); return float64(n) * l * l }

// BenchmarkE1Broadcast — Lemma 3: T_bc = O(n log n).
func BenchmarkE1Broadcast(b *testing.B) {
	const n = 4096
	runNorm(b, func(int) sim.Protocol { return sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true)) },
		sim.Config{Seed: 1, CheckEvery: n / 4}, nLnN(n), "T/(n·ln·n)")
}

// BenchmarkE2Junta — Lemma 4: junta settles in O(n log n).
func BenchmarkE2Junta(b *testing.B) {
	const n = 4096
	runNorm(b, func(int) sim.Protocol { return junta.New(n) },
		sim.Config{Seed: 2}, nLnN(n), "settle/(n·ln·n)")
}

// BenchmarkE3PhaseClock — Lemma 5: phases of Θ(n log n) interactions.
func BenchmarkE3PhaseClock(b *testing.B) {
	const n = 2048
	var total float64
	count := 0
	for i := 0; i < b.N; i++ {
		p := clock.NewProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), 4)
		if _, err := sim.Run(p, sim.Config{Seed: uint64(3 + i), MaxInteractions: n * 20000}); err != nil {
			b.Fatal(err)
		}
		if ds, de, ok := p.PhaseInterval(2); ok {
			total += float64(de-ds) / nLnN(n)
			count++
		}
	}
	if count > 0 {
		b.ReportMetric(total/float64(count), "D/(n·ln·n)")
	}
}

// BenchmarkE4LeaderElect — Lemma 6: unique leader in O(n log² n).
func BenchmarkE4LeaderElect(b *testing.B) {
	const n = 2048
	runNorm(b, func(int) sim.Protocol {
		return leader.NewProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n))
	}, sim.Config{Seed: 4}, nLn2N(n), "T/(n·ln²·n)")
}

// BenchmarkE5FastLeader — Lemma 7: unique leader in O(n log n).
func BenchmarkE5FastLeader(b *testing.B) {
	const n = 2048
	runNorm(b, func(int) sim.Protocol {
		return leader.NewFastProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), leader.DefaultFastRounds)
	}, sim.Config{Seed: 5}, nLnN(n), "T/(n·ln·n)")
}

// BenchmarkE6PowerOfTwo — Lemma 8: balancing completes in ≤ 16·n·log n.
func BenchmarkE6PowerOfTwo(b *testing.B) {
	const n = 4096
	kappa := sim.Log2Floor(3 * n / 4)
	limit := int64(16 * float64(n) * math.Log2(float64(n)))
	runNorm(b, func(int) sim.Protocol { return balance.NewPowers(n, kappa, true) },
		sim.Config{Seed: 6, MaxInteractions: limit}, nLnN(n), "T/(n·ln·n)")
}

// BenchmarkE7Search — Lemma 9: the Search Protocol's result window
// (measured through protocol Approximate).
func BenchmarkE7Search(b *testing.B) {
	const n = 1000
	okWindow := 0
	for i := 0; i < b.N; i++ {
		p := core.NewApproximate(core.Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(7 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Converged {
			est := float64(p.Estimate(0))
			if est > 0.75*n && est <= math.Pow(2, float64(sim.Log2Ceil(n))) {
				okWindow++
			}
		}
	}
	b.ReportMetric(float64(okWindow)/float64(b.N), "window-ok-rate")
}

// BenchmarkE8Approximate — Theorem 1.1: convergence in O(n log² n).
func BenchmarkE8Approximate(b *testing.B) {
	const n = 1024
	runNorm(b, func(int) sim.Protocol { return core.NewApproximate(core.Config{N: n}) },
		sim.Config{Seed: 8}, nLn2N(n), "T/(n·ln²·n)")
}

// BenchmarkE9StableApprox — Theorem 1.2: the stable hybrid's clean path.
func BenchmarkE9StableApprox(b *testing.B) {
	const n = 512
	runNorm(b, func(int) sim.Protocol { return core.NewStableApproximate(core.Config{N: n}) },
		sim.Config{Seed: 9}, nLn2N(n), "T/(n·ln²·n)")
}

// BenchmarkE10ApproxStage — Lemma 10: k = log n ± 3.
func BenchmarkE10ApproxStage(b *testing.B) {
	const n = 1024
	ok := 0
	for i := 0; i < b.N; i++ {
		p := core.NewCountExact(core.Config{N: n})
		if _, err := sim.Run(p, sim.Config{Seed: uint64(10 + i)}); err != nil {
			b.Fatal(err)
		}
		if d := math.Abs(float64(p.Metrics().MaxK) - math.Log2(n)); d <= 3 {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "k-within-3-rate")
}

// BenchmarkE11Refine — Lemma 11: all agents output exactly n.
func BenchmarkE11Refine(b *testing.B) {
	const n = 1024
	exact := 0
	for i := 0; i < b.N; i++ {
		p := core.NewCountExact(core.Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(11 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Converged && sim.AllOutputsEqual(p, n) {
			exact++
		}
	}
	b.ReportMetric(float64(exact)/float64(b.N), "exact-rate")
}

// BenchmarkE12CountExact — Theorem 2: stabilization in O(n log n).
func BenchmarkE12CountExact(b *testing.B) {
	const n = 1024
	runNorm(b, func(int) sim.Protocol { return core.NewCountExact(core.Config{N: n}) },
		sim.Config{Seed: 12}, nLnN(n), "T/(n·ln·n)")
}

// BenchmarkE13BackupApprox — Lemma 12: backup in O(n² log² n).
func BenchmarkE13BackupApprox(b *testing.B) {
	const n = 64
	runNorm(b, func(int) sim.Protocol { return backup.NewApprox(n) },
		sim.Config{Seed: 13, MaxInteractions: n * n * 2000},
		float64(n)*float64(n)*math.Log(n), "T/(n²·ln·n)")
}

// BenchmarkE14BackupExact — Lemma 13: backup in O(n² log n).
func BenchmarkE14BackupExact(b *testing.B) {
	const n = 128
	runNorm(b, func(int) sim.Protocol { return backup.NewExact(n) },
		sim.Config{Seed: 14, MaxInteractions: n * n * 1000},
		float64(n)*float64(n)*math.Log(n), "T/(n²·ln·n)")
}

// BenchmarkE15Baselines — Section 1: CountExact vs the Θ(n²) token-bag
// baseline; the reported metric is the baseline/CountExact speedup.
func BenchmarkE15Baselines(b *testing.B) {
	const n = 2048
	var speedups float64
	count := 0
	for i := 0; i < b.N; i++ {
		bag := baseline.NewTokenBag(n)
		bres, err := sim.Run(bag, sim.Config{Seed: uint64(15 + i), MaxInteractions: n * n * 200})
		if err != nil {
			b.Fatal(err)
		}
		ce := core.NewCountExact(core.Config{N: n})
		cres, err := sim.Run(ce, sim.Config{Seed: uint64(115 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if bres.Converged && cres.Converged {
			speedups += float64(bres.Interactions) / float64(cres.Interactions)
			count++
		}
	}
	if count > 0 {
		b.ReportMetric(speedups/float64(count), "bag/CountExact-speedup")
	}
}

// BenchmarkA1ClockPeriod — ablation: protocol Approximate at half the
// default clock constant (shorter phases).
func BenchmarkA1ClockPeriod(b *testing.B) {
	const n = 1024
	runNorm(b, func(int) sim.Protocol {
		return core.NewApproximate(core.Config{N: n, ClockM: 16})
	}, sim.Config{Seed: 16}, nLn2N(n), "T/(n·ln²·n)")
}

// BenchmarkA2Shift — ablation: CountExact with a coarser load explosion.
func BenchmarkA2Shift(b *testing.B) {
	const n = 1024
	runNorm(b, func(int) sim.Protocol {
		return core.NewCountExact(core.Config{N: n, Shift: 1})
	}, sim.Config{Seed: 17}, nLnN(n), "T/(n·ln·n)")
}

// BenchmarkA3FastLeaderBits — ablation: FastLeaderElection with a single
// round (higher collision probability).
func BenchmarkA3FastLeaderBits(b *testing.B) {
	const n = 2048
	unique := 0
	for i := 0; i < b.N; i++ {
		p := leader.NewFastProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n), 1)
		res, err := sim.Run(p, sim.Config{Seed: uint64(18 + i), MaxInteractions: int64(nLnN(n)) * 400})
		if err != nil {
			b.Fatal(err)
		}
		if res.Converged && p.Leaders() == 1 {
			unique++
		}
	}
	b.ReportMetric(float64(unique)/float64(b.N), "unique-leader-rate")
}

// BenchmarkInteractionThroughput measures raw simulator speed: scheduler
// plus the CountExact transition function, on the engine's default
// (batched) path through the public API.
func BenchmarkInteractionThroughput(b *testing.B) {
	const n = 1 << 16
	s, err := popcount.NewSimulation(popcount.CountExact, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// reportIPS reports the explicit interactions/sec throughput metric.
func reportIPS(b *testing.B, interactions int64) {
	b.Helper()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(interactions)/secs, "interactions/sec")
	}
}

// benchEngineConvergence runs a full convergence run per iteration and
// reports interactions/sec over the executed interactions — on the count
// engine that includes the no-op interactions applied in bulk by the
// self-loop skip, which is exactly the point: those interactions happen
// in the simulated chain but cost no per-interaction work.
func benchEngineConvergence(b *testing.B, run func(seed uint64) (sim.Result, error)) {
	b.Helper()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := run(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("run did not converge")
		}
		total += res.Total
	}
	reportIPS(b, total)
}

// throughputN is the population for the engine-vs-engine comparisons:
// n ≈ 10⁶, the scale where the agent engine's per-interaction memory
// traffic dominates while the count engine's cost stays O(1) per
// interaction.
const throughputN = 1 << 20

// BenchmarkEpidemicAgentEngine / BenchmarkEpidemicCountEngine — the
// headline comparison: one-way max-broadcast at n ≈ 10⁶ to convergence.
// The count engine's interactions/sec metric exceeds the agent engine's
// by far more than 100x (EXPERIMENTS.md records the measured numbers).
func BenchmarkEpidemicAgentEngine(b *testing.B) {
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.Run(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(throughputN, true)),
			sim.Config{Seed: seed})
	})
}

func BenchmarkEpidemicCountEngine(b *testing.B) {
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(throughputN, true)),
			sim.Config{Seed: seed})
	})
}

// BenchmarkEpidemicCountBatched — the same convergence run under
// multinomial batch stepping (countbatch.go): whole drift-bounded
// epochs of interactions are applied to the configuration at once, so
// the per-conversion cost that bounds BenchmarkEpidemicCountEngine
// disappears and a full n ≈ 10⁶ run costs a fraction of a millisecond.
func BenchmarkEpidemicCountBatched(b *testing.B) {
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(throughputN, true)),
			sim.Config{Seed: seed, BatchSteps: true})
	})
}

// BenchmarkLeaderAgentEngine / BenchmarkLeaderCountEngine — leader_elect
// over a fixed junta. The leader count form has no self-loop skip (its
// alphabet is too rich), so the gain here is the O(|states|) working set
// versus the agent engine's O(n) random memory traffic.
func BenchmarkLeaderAgentEngine(b *testing.B) {
	const n = 1 << 14
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.Run(leader.NewProtocol(n, clock.DefaultM, 2*sim.Log2Ceil(n)),
			sim.Config{Seed: seed})
	})
}

func BenchmarkLeaderCountEngine(b *testing.B) {
	const n = 1 << 14
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.RunCount(sim.NewSpecCount(leader.NewSpec(n, clock.DefaultM, 2*sim.Log2Ceil(n))),
			sim.Config{Seed: seed})
	})
}

// BenchmarkJuntaCountEngine — junta settling on the count engine; with
// the epidemic pair this covers both skip-path protocols at scale.
func BenchmarkJuntaCountEngine(b *testing.B) {
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.RunCount(sim.NewSpecCount(junta.NewSpec(throughputN)), sim.Config{Seed: seed})
	})
}

// BenchmarkEpidemicStepAgent / BenchmarkEpidemicStepCount — sustained
// interaction throughput: both engines execute b.N interactions of the
// same chain (one-way broadcast at n ≈ 10⁶) from the initial state. The
// agent engine pays full price for every interaction; the count engine
// pays only for the ≈ n state-changing ones and jumps the certain no-op
// runs that dominate once the maximum has mostly spread. This sustained
// rate — not the per-conversion cost — is what makes the Θ(n log n)-to-
// horizon runs at n = 10⁸ affordable, and it exceeds the agent engine's
// rate by far more than 100x (see EXPERIMENTS.md for recorded numbers).
func BenchmarkEpidemicStepAgent(b *testing.B) {
	e, err := sim.NewEngine(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(throughputN, true)), sim.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

func BenchmarkEpidemicStepCount(b *testing.B) {
	e, err := sim.NewCountEngine(sim.NewSpecCount(epidemic.NewSingleSourceSpec(throughputN, true)), sim.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// BenchmarkEpidemicStepCountBatched — sustained throughput of the
// multinomial batch-stepping mode over the same chain: the E19
// acceptance bar is ≥10× BenchmarkEpidemicStepCount; measured is
// ~500× (see EXPERIMENTS.md).
func BenchmarkEpidemicStepCountBatched(b *testing.B) {
	e, err := sim.NewCountEngine(sim.NewSpecCount(epidemic.NewSingleSourceSpec(throughputN, true)),
		sim.Config{Seed: 1, BatchSteps: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// benchPath measures interaction throughput of one protocol on either
// the scalar engine loop (disableBatch) or the BatchInteractor fast
// path. The two paths are bit-for-bit equivalent (see
// TestBatchEquivalentToScalar); these benchmarks quantify the speedup of
// removing the per-interaction virtual calls.
func benchPath(b *testing.B, p sim.Protocol, disableBatch bool) {
	b.Helper()
	e, err := sim.NewEngine(p, sim.Config{Seed: 1, DisableBatch: disableBatch})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// BenchmarkTokenBagScalar / BenchmarkTokenBagBatch — the Θ(n²) baseline's
// cheap transition is dominated by dispatch overhead, so the batched
// path's gain is largest here.
func BenchmarkTokenBagScalar(b *testing.B) { benchPath(b, baseline.NewTokenBag(1<<14), true) }
func BenchmarkTokenBagBatch(b *testing.B)  { benchPath(b, baseline.NewTokenBag(1<<14), false) }

// BenchmarkApproximateScalar / BenchmarkApproximateBatch — protocol
// Approximate's transition is heavier, so the dispatch saving is
// proportionally smaller but still visible.
func BenchmarkApproximateScalar(b *testing.B) {
	benchPath(b, core.NewApproximate(core.Config{N: 1 << 14}), true)
}
func BenchmarkApproximateBatch(b *testing.B) {
	benchPath(b, core.NewApproximate(core.Config{N: 1 << 14}), false)
}

// BenchmarkCountExactScalar / BenchmarkCountExactBatch — same comparison
// for protocol CountExact.
func BenchmarkCountExactScalar(b *testing.B) {
	benchPath(b, core.NewCountExact(core.Config{N: 1 << 14}), true)
}
func BenchmarkCountExactBatch(b *testing.B) {
	benchPath(b, core.NewCountExact(core.Config{N: 1 << 14}), false)
}

// benchSpecAgentStep measures sustained agent-adapter throughput of a
// spec on the agent engine.
func benchSpecAgentStep(b *testing.B, spec *sim.Spec) {
	b.Helper()
	e, err := sim.NewEngine(sim.NewSpecAgent(spec), sim.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// BenchmarkJuntaSpecAgentTable / BenchmarkJuntaSpecAgentClosure — the
// flat successor-table precompile of NewSpecAgent (Spec.Domain): the
// junta spec's dense 8-bit packing qualifies, replacing the
// per-interaction Delta closure (decode, rule, encode) with one slice
// lookup. The closure variant clears Domain on an otherwise identical
// spec; the two paths are bit-for-bit equal (FuzzSpecAdapters pins
// them against the naive reference). Measured: the table recovers
// ~25% agent-engine throughput on this spec (EXPERIMENTS.md).
func BenchmarkJuntaSpecAgentTable(b *testing.B) {
	benchSpecAgentStep(b, junta.NewSpec(1<<20))
}

func BenchmarkJuntaSpecAgentClosure(b *testing.B) {
	spec := junta.NewSpec(1 << 20)
	spec.Domain = 0
	benchSpecAgentStep(b, spec)
}

// BenchmarkApproximateSpecCountBatched — sustained throughput of the
// composed protocol Approximate (junta × clock × slow election ×
// search) on the batched count engine via its interned spec: the
// engine form behind E8's n = 10⁸ rows.
func BenchmarkApproximateSpecCountBatched(b *testing.B) {
	e, err := sim.NewCountEngine(
		sim.NewSpecCount(core.NewApproximateSpec(core.Config{N: throughputN}).Spec),
		sim.Config{Seed: 1, BatchSteps: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	e.Step(int64(b.N))
	reportIPS(b, int64(b.N))
}

// BenchmarkBackupExactCountEngine — the exact backup's Θ(n² log n)
// chain on the count engine's skip path: a full Lemma 13 run at
// n = 2¹⁴ per iteration, dominated by the ~n merges instead of the n²
// scheduler draws.
func BenchmarkBackupExactCountEngine(b *testing.B) {
	const n = 1 << 14
	benchEngineConvergence(b, func(seed uint64) (sim.Result, error) {
		return sim.RunCount(sim.NewSpecCount(backup.NewExactSpec(n)),
			sim.Config{Seed: seed, CheckEvery: n, MaxInteractions: int64(n) * int64(n) * 1000})
	})
}

// BenchmarkQuickSuite runs the whole quick experiment suite once per
// iteration — the full reproduction in one knob (also exercised by
// cmd/popbench).
func BenchmarkQuickSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("quick suite is still heavy; skipped with -short")
	}
	for i := 0; i < b.N; i++ {
		tables := exp.All(exp.Options{Quick: true, Parallelism: 8, Trials: 2, Seed: uint64(19 + i)})
		if len(tables) != 22 {
			b.Fatalf("expected 22 tables, got %d", len(tables))
		}
	}
}

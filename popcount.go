// Package popcount is a library of uniform population protocols for
// counting the population size, reproducing "On Counting the Population
// Size" (Berenbrink, Kaaser, Radzik; PODC 2019).
//
// In the population model, n identical agents interact in uniformly
// random pairs. A uniform protocol's transition function does not depend
// on n — yet the protocols here let every agent learn n, exactly or
// within a factor of two:
//
//   - Approximate (Theorem 1.1) converges in O(n log² n) interactions,
//     using O(log n · log log n) states, to either ⌊log₂ n⌋ or ⌈log₂ n⌉
//     at every agent, w.h.p.
//   - CountExact (Theorem 2) stabilizes on the exact n in the optimal
//     O(n log n) interactions using Õ(n) states, w.h.p.
//   - StableApproximate and StableCountExact (Theorems 1.2 and 2) add
//     error detection and a slow always-correct backup, making the
//     answer correct with probability 1.
//
// The package's high-level functions run a full simulation under the
// uniform random scheduler; the Simulation type offers stepwise control,
// and RunEnsemble drives many independent trials in parallel with
// aggregate statistics. The scheduling assumption itself is pluggable
// (WithScheduler), running progress is observable (WithObserver), and a
// confirmation window (WithConfirmWindow) separates convergence from
// stabilization — Section 1.1's T_C vs T_S distinction, reported through
// Result.Stable and Result.Total. The building blocks (epidemics, junta,
// phase clocks, leader election, load balancing, backups, baselines)
// live in internal packages and are exercised by the experiment suite in
// internal/exp (see DESIGN.md and EXPERIMENTS.md).
package popcount

import (
	"fmt"

	"popcount/internal/baseline"
	"popcount/internal/core"
	"popcount/internal/sim"
)

// Algorithm selects one of the library's counting protocols.
type Algorithm int

// The available algorithms.
const (
	// Approximate is protocol Approximate (Theorem 1.1): every agent
	// outputs ⌊log₂ n⌋ or ⌈log₂ n⌉ w.h.p.
	Approximate Algorithm = iota + 1
	// CountExact is protocol CountExact (Theorem 2): every agent
	// outputs the exact n w.h.p.
	CountExact
	// StableApproximate is the stable hybrid variant of Approximate
	// (Theorem 1.2): correct with probability 1.
	StableApproximate
	// StableCountExact is the stable variant of CountExact (Theorem 2
	// with Appendix F): correct with probability 1.
	StableCountExact
	// TokenBag is the simple Θ(n²)-interaction exact baseline from the
	// paper's introduction.
	TokenBag
	// GeometricEstimate is the O(log n)-state polynomial-factor
	// estimator baseline ([1]-style).
	GeometricEstimate
)

// String returns the algorithm's name.
func (a Algorithm) String() string {
	switch a {
	case Approximate:
		return "approximate"
	case CountExact:
		return "exact"
	case StableApproximate:
		return "stable-approximate"
	case StableCountExact:
		return "stable-exact"
	case TokenBag:
		return "tokenbag"
	case GeometricEstimate:
		return "geometric"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms returns every available algorithm, in declaration order.
func Algorithms() []Algorithm {
	return []Algorithm{Approximate, CountExact, StableApproximate,
		StableCountExact, TokenBag, GeometricEstimate}
}

// ParseAlgorithm resolves an algorithm by its String name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: %q (valid: approximate, exact, stable-approximate, stable-exact, tokenbag, geometric)", ErrUnknownAlgorithm, name)
}

// EngineKind selects the simulation engine backing a run.
type EngineKind int

const (
	// EngineAgent is the agent-array engine: O(n) memory, one scheduler
	// draw and transition per interaction. It works for every algorithm
	// and every scheduler, and is the default.
	EngineAgent EngineKind = iota
	// EngineCount is the count-based engine: the configuration is
	// simulated directly on per-state agent counts, with O(|occupied
	// states|) memory and amortized ~O(1) cost per interaction —
	// population sizes of 10⁸ and beyond become practical. Every
	// algorithm except TokenBag supports it (the core counting
	// protocols' product states are interned over the occupied
	// fragment, see DESIGN.md), and only under the default uniform
	// scheduler.
	EngineCount
	// EngineCountBatched is the count engine's multinomial batch-stepping
	// mode: whole epochs of interactions are projected onto ordered
	// state pairs and applied to the configuration in bulk, for o(1)
	// amortized cost per interaction — another ~500× sustained
	// throughput over EngineCount on epidemic-style chains, unlocking
	// n ≥ 10⁹. The mode is a drift-bounded τ-leaping approximation:
	// distributionally faithful within a few percent (see DESIGN.md),
	// but, unlike EngineCount, not an exact simulation of the chain.
	// Same restrictions as EngineCount (count-form algorithms, uniform
	// scheduler, no per-agent outputs); tune with WithBatchRounds.
	EngineCountBatched
	// EngineAuto picks EngineCount when the algorithm's spec declares
	// the count form profitable (small occupied alphabet, no-op
	// dominated — currently GeometricEstimate) and EngineAgent otherwise
	// (also when a non-uniform scheduler rules the count engine out).
	// It never picks the batched mode — approximate stepping is always
	// an explicit opt-in.
	EngineAuto
)

// String returns the engine kind's name.
func (k EngineKind) String() string {
	switch k {
	case EngineAgent:
		return "agent"
	case EngineCount:
		return "count"
	case EngineCountBatched:
		return "count-batched"
	case EngineAuto:
		return "auto"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ParseEngineKind resolves an engine kind by its String name.
func ParseEngineKind(name string) (EngineKind, error) {
	for _, k := range []EngineKind{EngineAgent, EngineCount, EngineCountBatched, EngineAuto} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown engine %q (valid: agent, count, count-batched, auto)", ErrUnsupportedEngine, name)
}

// WithEngine selects the simulation engine (default EngineAgent).
// EngineCount and EngineCountBatched return an error from the run
// constructors when the algorithm has no count-based form or a
// non-uniform scheduler was requested. Count-engine results carry no
// per-agent output vector (Result.Outputs is nil): the configuration is
// aggregate, and Result.Output reports the output of the most populated
// state — at convergence, the consensus output.
func WithEngine(kind EngineKind) Option { return func(s *settings) { s.engine = kind } }

// WithBatchRounds caps one batch epoch of EngineCountBatched at rounds·n
// interactions (default 1 round; a round is n interactions). Larger
// caps let fully mixed phases pass in fewer epochs; the drift bound
// still sizes every epoch, so the knob rarely matters below n = 10⁸.
// Other engines ignore it.
func WithBatchRounds(rounds int) Option {
	return func(s *settings) { s.batchRounds = rounds }
}

// WithIntraRunParallelism shards each batch epoch of EngineCountBatched
// across the given number of deterministic work streams, executed
// concurrently when cores are available. The default (1) keeps the
// serial planner and is bit-for-bit the pre-sharding engine — every
// committed baseline and conformance pin reproduces unchanged. Values
// ≥ 2 change the run's random-stream layout (results depend on the
// shard count but never on GOMAXPROCS: the same seed and shard count
// give the same trajectory and Stats on any machine) and are rejected
// at construction for any engine other than EngineCountBatched. See
// DESIGN.md, "Sharding a single run".
func WithIntraRunParallelism(shards int) Option {
	return func(s *settings) { s.shards = shards }
}

// Option customizes a simulation or ensemble.
type Option func(*settings)

type settings struct {
	seed          uint64
	maxI          int64
	checkEvery    int64
	confirmWindow int64
	clockM        int
	fastRounds    int
	shift         int
	parallelism   int
	engine        EngineKind
	batchRounds   int
	shards        int
	mkSched       func() Scheduler
	observer      Observer
	observeEvery  int64
	interrupt     func() bool
	faults        FaultPlan
}

func newSettings(opts []Option) settings {
	set := settings{seed: 1}
	for _, o := range opts {
		o(&set)
	}
	return set
}

// WithSeed sets the scheduler seed (default 1). Equal seeds reproduce
// runs bit for bit; ensemble trial i derives its own seed from this base
// deterministically, so ensembles are reproducible too.
func WithSeed(seed uint64) Option { return func(s *settings) { s.seed = seed } }

// WithMaxInteractions caps the simulation length (default: a generous
// multiple of n·log² n chosen by the engine).
func WithMaxInteractions(max int64) Option { return func(s *settings) { s.maxI = max } }

// WithCheckEvery sets the convergence polling interval in interactions
// (default n).
func WithCheckEvery(interval int64) Option { return func(s *settings) { s.checkEvery = interval } }

// WithConfirmWindow keeps a run going for window further interactions
// after convergence is first observed and reports, via Result.Stable,
// whether the desired configuration held throughout — the paper's
// stabilization time T_S as opposed to the convergence time T_C
// (Section 1.1). Result.Total then exceeds Result.Interactions by the
// window length.
func WithConfirmWindow(window int64) Option {
	return func(s *settings) { s.confirmWindow = window }
}

// WithClockM sets the phase-clock constant m (Lemma 5); see DESIGN.md
// for the calibration of the default.
func WithClockM(m int) Option { return func(s *settings) { s.clockM = m } }

// WithFastRounds sets the number of FastLeaderElection rounds (Lemma 7).
func WithFastRounds(rounds int) Option { return func(s *settings) { s.fastRounds = rounds } }

// WithShift sets the Approximation Stage's load-explosion shift
// (DESIGN.md, substitution 1).
func WithShift(shift int) Option { return func(s *settings) { s.shift = shift } }

// WithParallelism bounds the number of concurrently running trials in
// RunEnsemble (default: one per CPU). It has no effect on single runs,
// and no effect on results — ensembles are bit-for-bit reproducible at
// any parallelism.
func WithParallelism(workers int) Option {
	return func(s *settings) { s.parallelism = workers }
}

// WithInterrupt registers a hook the engine polls at every convergence
// check (CheckEvery granularity): when it returns true the run stops
// early at the next poll boundary with Result.Interrupted set. Because
// the stop lands on a poll boundary, a Simulation interrupted this way
// can be snapshotted and later resumed (RunToConvergence continues from
// the current position), which is how popcountd checkpoints long jobs
// without perturbing their trajectory. In RunEnsemble the hook is
// polled alongside the context.
func WithInterrupt(fn func() bool) Option {
	return func(s *settings) { s.interrupt = fn }
}

// WithFaultInjection corrupts the search result of the stable protocol
// variants (StableApproximate, StableCountExact), forcing their
// error-detection → backup pipeline to engage — a demonstration and
// testing knob for the machinery of Theorem 1.2 and Appendix F. Other
// algorithms ignore it. It is a thin alias for the FaultPlan's
// CorruptSearch knob; schedule dynamic faults — corruption bursts,
// churn, adversarial scheduling — with WithFaults.
func WithFaultInjection() Option { return func(s *settings) { s.faults.CorruptSearch = true } }

// Result reports the outcome of a completed simulation.
type Result struct {
	// Converged reports whether the protocol reached its desired
	// configuration within the interaction budget.
	Converged bool
	// Interactions is the number of interactions until convergence was
	// detected (or the budget, if not converged) — the convergence time
	// T_C at CheckEvery granularity.
	Interactions int64
	// Total is the total number of interactions executed. It exceeds
	// Interactions when a confirmation window was requested
	// (WithConfirmWindow).
	Total int64
	// Stable reports whether the desired configuration held at every
	// poll of the confirmation window after first convergence. Without a
	// window it equals Converged.
	Stable bool
	// Output is agent 0's output; at convergence all agents agree. For
	// the approximate protocols it is the log₂-estimate, for the exact
	// protocols and baselines the population-size estimate itself. On
	// the count engine (WithEngine) agents have no identity and Output
	// is the most populated state's output — the consensus output once
	// converged.
	Output int64
	// Estimate is the population-size estimate implied by Output (2^k
	// for the approximate protocols, Output itself otherwise).
	Estimate int64
	// Outputs holds every agent's output. It is nil on the count engine
	// (WithEngine), whose configuration is aggregate — materializing n
	// entries would defeat its O(states) memory footprint.
	Outputs []int64
	// Interrupted reports that the run was stopped early by context
	// cancellation (RunEnsemble) before reaching convergence or its
	// interaction budget: the result reflects partial progress, not a
	// completed trial.
	Interrupted bool
}

// Count runs the chosen algorithm on a population of n agents until it
// converges (or a generous interaction cap is hit) and returns the
// result.
func Count(alg Algorithm, n int, opts ...Option) (Result, error) {
	s, err := NewSimulation(alg, n, opts...)
	if err != nil {
		return Result{}, err
	}
	return s.RunToConvergence()
}

// EstimateSize runs protocol Approximate and returns the estimated
// population size (2^k with k ∈ {⌊log n⌋, ⌈log n⌉} w.h.p.).
func EstimateSize(n int, opts ...Option) (Result, error) {
	return Count(Approximate, n, opts...)
}

// ExactSize runs protocol CountExact and returns the exact population
// size (w.h.p.; use StableCountExact for probability 1).
func ExactSize(n int, opts ...Option) (Result, error) {
	return Count(CountExact, n, opts...)
}

// validate checks the algorithm/population pair without building the
// O(n) protocol state.
func validate(alg Algorithm, n int) error {
	if n < 2 {
		return fmt.Errorf("%w: population size %d is below 2", ErrInvalidN, n)
	}
	for _, a := range Algorithms() {
		if a == alg {
			return nil
		}
	}
	return fmt.Errorf("%w: %v", ErrUnknownAlgorithm, alg)
}

// Validate checks an algorithm × population × option combination
// without building any O(n) state: it is the O(1) request validation
// the service layer runs at submit time. A nil error guarantees
// NewSimulation and RunEnsemble will pass their constructors'
// validation for the same arguments.
func Validate(alg Algorithm, n int, opts ...Option) error {
	if err := validate(alg, n); err != nil {
		return err
	}
	set := newSettings(opts)
	if _, err := set.resolveEngine(alg); err != nil {
		return err
	}
	if err := set.faults.validate(n); err != nil {
		return err
	}
	return set.validateScheduler(n)
}

// specFor returns the canonical transition spec of alg over n agents
// under the given settings, or reports that the algorithm has none.
// Spec-backed algorithms run on every engine through the spec's derived
// forms — since the core counting protocols were ported to the spec
// layer that is every algorithm except the Θ(n²)-state TokenBag
// baseline, whose per-agent bag genuinely has no configuration form
// worth keeping. The core protocols' state spaces grow with n, so their
// specs intern codes over the occupied fragment (see internal/core's
// spec files) instead of packing a fixed-width domain.
func specFor(alg Algorithm, n int, set settings) (*sim.Spec, bool) {
	cfg := core.Config{N: n, ClockM: set.clockM, FastRounds: set.fastRounds, Shift: set.shift}
	switch alg {
	case Approximate:
		return core.NewApproximateSpec(cfg).Spec, true
	case CountExact:
		return core.NewCountExactSpec(cfg).Spec, true
	case StableApproximate:
		return core.NewStableApproximateSpec(cfg, set.faults.CorruptSearch).Spec, true
	case StableCountExact:
		return core.NewStableCountExactSpec(cfg, set.faults.CorruptSearch).Spec, true
	case GeometricEstimate:
		return baseline.NewGeometricSpec(n), true
	default:
		return nil, false
	}
}

// newProtocol builds the agent-engine protocol instance for alg over n
// agents: the spec-derived agent adapter for spec-backed algorithms
// (bit-for-bit the hand-written composed protocols, pinned by the
// conformance suite), the hand-written TokenBag otherwise.
func newProtocol(alg Algorithm, n int, set settings) (sim.Protocol, error) {
	if err := validate(alg, n); err != nil {
		return nil, err
	}
	if spec, ok := specFor(alg, n, set); ok {
		return sim.NewSpecAgent(spec), nil
	}
	if alg == TokenBag {
		return baseline.NewTokenBag(n), nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnknownAlgorithm, alg)
}

// newCountProtocol builds the count-based form of alg over n agents from
// the same spec the agent form derives from, or reports that the
// algorithm has none.
func newCountProtocol(alg Algorithm, n int, set settings) (sim.CountProtocol, bool) {
	spec, ok := specFor(alg, n, set)
	if !ok {
		return nil, false
	}
	return sim.NewSpecCount(spec), true
}

// resolveEngine maps the requested engine kind to a concrete one for
// alg, validating the whole engine × algorithm × scheduler combination
// up front: an explicit count-engine request errors here — at
// construction, not at Run time — when the algorithm has no count form
// or a non-uniform scheduler was registered, and EngineAuto falls back
// to the agent engine in both cases instead of erroring.
func (set settings) resolveEngine(alg Algorithm) (EngineKind, error) {
	spec, supported := specFor(alg, 2, set)
	uniform := true
	if set.mkSched != nil {
		// The explicitly-uniform factory normalizes to the nil engine
		// default, so both nil and the engine's uniform type count.
		if sched := set.newSimScheduler(); sched != nil {
			_, uniform = sched.(sim.UniformScheduler)
		}
	}
	if set.faults.Enabled() {
		// Dynamic faults are code-to-code transformations over a Spec's
		// state domain, applied under the uniform scheduler — reject
		// incompatible combinations here, at construction.
		if !supported {
			return 0, fmt.Errorf("%w: algorithm %v is not spec-backed, so fault plans cannot transform its states — rerun without WithFaults", ErrUnsupportedEngine, alg)
		}
		if !uniform {
			return 0, fmt.Errorf("%w: fault plans require the default uniform scheduler — drop the WithScheduler override", ErrUnsupportedEngine)
		}
	}
	if set.shards < 0 {
		// A negative shard count is a mistake, not a request for the
		// serial planner: reject it instead of silently ignoring it.
		return 0, fmt.Errorf("%w: WithIntraRunParallelism(%d) — shard count must be non-negative", ErrInvalidN, set.shards)
	}
	if set.shards >= 2 && set.engine != EngineCountBatched {
		return 0, fmt.Errorf("%w: WithIntraRunParallelism(%d) requires EngineCountBatched — only batch epochs shard (engine %v requested)", ErrUnsupportedEngine, set.shards, set.engine)
	}
	switch set.engine {
	case EngineAgent:
		return EngineAgent, nil
	case EngineCount, EngineCountBatched:
		if !supported {
			return 0, fmt.Errorf("%w: algorithm %v has no count-based form (its per-agent bag state has no configuration view worth keeping; see DESIGN.md) — rerun with the agent engine", ErrUnsupportedEngine, alg)
		}
		if !uniform {
			return 0, fmt.Errorf("%w: %w — rerun with the agent engine or drop the scheduler override", ErrUnsupportedEngine, sim.ErrCountScheduler)
		}
		return set.engine, nil
	case EngineAuto:
		// Auto is conservative: it picks the count engine only for specs
		// that declare the count form profitable (PreferCount). The core
		// counting protocols run on the count engines when explicitly
		// requested, but their interned count form trades per-interaction
		// struct ops for map work, so auto keeps them on the agent engine.
		if supported && uniform && spec.PreferCount {
			return EngineCount, nil
		}
		return EngineAgent, nil
	default:
		return 0, fmt.Errorf("%w: unknown engine kind %v", ErrUnsupportedEngine, set.engine)
	}
}

// simConfig translates the settings into an engine configuration for one
// trial, wiring the observer to the given protocol instance.
func (set settings) simConfig(alg Algorithm, p sim.Protocol, trial int) sim.Config {
	cfg := sim.Config{
		Seed:            set.seed,
		MaxInteractions: set.maxI,
		CheckEvery:      set.checkEvery,
		ConfirmWindow:   set.confirmWindow,
		Scheduler:       set.newSimScheduler(),
		Interrupt:       set.interrupt,
		Faults:          set.faults.simPlan(),
	}
	if set.observer != nil {
		cfg.Observe = set.snapshotObserver(alg, p, trial)
	}
	return cfg
}

// Simulation is a stepwise-controlled protocol run, backed by the
// agent-array engine or the count-based engine — exact or batched —
// selected with WithEngine.
type Simulation struct {
	alg  Algorithm
	n    int
	kind EngineKind
	set  settings // retained for Snapshot's header
	// Exactly one of the two engines is non-nil.
	p    sim.Protocol // agent path only
	eng  *sim.Engine
	ceng *sim.CountEngine
}

// countSimConfig translates the settings into a count-engine
// configuration — the one place the batched mode's knobs are wired.
func (set settings) countSimConfig(kind EngineKind) sim.Config {
	return sim.Config{
		Seed:            set.seed,
		MaxInteractions: set.maxI,
		CheckEvery:      set.checkEvery,
		ConfirmWindow:   set.confirmWindow,
		BatchSteps:      kind == EngineCountBatched,
		BatchMaxRounds:  set.batchRounds,
		Shards:          set.shards,
		Interrupt:       set.interrupt,
		Faults:          set.faults.simPlan(),
	}
}

// NewSimulation builds a protocol instance over n agents, driven by the
// selected simulation engine. Invalid combinations — an algorithm
// without a count form or a non-uniform scheduler under an explicit
// count-engine request — error here, not at run time.
func NewSimulation(alg Algorithm, n int, opts ...Option) (*Simulation, error) {
	return newSimulationFrom(alg, n, newSettings(opts))
}

// newSimulationFrom is the settings-level constructor shared by
// NewSimulation and RestoreSimulation.
func newSimulationFrom(alg Algorithm, n int, set settings) (*Simulation, error) {
	kind, err := set.resolveEngine(alg)
	if err != nil {
		return nil, err
	}
	if err := validate(alg, n); err != nil {
		return nil, err
	}
	if err := set.faults.validate(n); err != nil {
		return nil, err
	}
	if err := set.validateScheduler(n); err != nil {
		return nil, err
	}
	if kind == EngineCount || kind == EngineCountBatched {
		cp, _ := newCountProtocol(alg, n, set)
		s := &Simulation{alg: alg, n: n, kind: kind, set: set}
		cfg := set.countSimConfig(kind)
		if set.observer != nil {
			cfg.Observe = set.snapshotCountObserver(alg, func() *sim.CountEngine { return s.ceng }, 0)
		}
		ceng, err := sim.NewCountEngine(cp, cfg)
		if err != nil {
			return nil, err
		}
		s.ceng = ceng
		return s, nil
	}
	p, err := newProtocol(alg, n, set)
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(p, set.simConfig(alg, p, 0))
	if err != nil {
		return nil, err
	}
	return &Simulation{alg: alg, n: n, kind: EngineAgent, set: set, p: p, eng: eng}, nil
}

// EngineStats are deterministic, machine-independent run counters:
// equal algorithms, seeds and run lengths produce equal stats on any
// machine. The batch counters (DeltaCalls through HalfDiscards) are
// zero on the agent engine, whose only counter is the interaction count
// itself; the fault counters are filled on every engine when a fault
// plan is active (WithFaults) and zero otherwise.
type EngineStats struct {
	// DeltaCalls counts transition-rule invocations (the interactions
	// the engine could not skip or bulk-apply).
	DeltaCalls int64
	// Epochs counts applied batch epochs (EngineCountBatched only).
	Epochs int64
	// Violations counts safety-net trips of the batch planner.
	Violations int64
	// HalfReuses counts second half-epochs reused after a post-leap
	// recheck; HalfDiscards counts the ones re-planned instead.
	HalfReuses   int64
	HalfDiscards int64
	// ShardEpochs, ShardBlocks, MergeConflicts and StealEvents describe
	// the sharded planner of WithIntraRunParallelism (zero at the
	// default parallelism of 1): epochs planned by the sharded path,
	// initiator-row blocks across their resolve passes, epochs whose
	// merged result tripped the safety net and replayed serially, and
	// blocks beyond the shard worker count available for work stealing.
	// All four are functions of (algorithm, seed, shard count) only —
	// equal on any machine and at any GOMAXPROCS — which is what lets
	// the multicore CI gate compare differently-pinned runs exactly.
	ShardEpochs    int64
	ShardBlocks    int64
	MergeConflicts int64
	StealEvents    int64

	// FaultEvents counts applied fault events of every kind; Corrupted,
	// Churned and ForcedInteractions break the damage down by family
	// (agents corrupted, agents replaced by churn, adversarial
	// interactions forced).
	FaultEvents        int64
	Corrupted          int64
	Churned            int64
	ForcedInteractions int64
	// Reconvergences counts completed recovery cycles — a corruption or
	// churn event opens a window, the next converged poll closes it —
	// with ReconvergeTotal and ReconvergeMax aggregating the window
	// lengths in interactions (mean = total/count).
	Reconvergences  int64
	ReconvergeTotal int64
	ReconvergeMax   int64
	// ErrorLatency is the number of interactions from the first damage
	// event to the first poll at which the protocol's error flag was
	// raised, or -1 while undetected (only the stable hybrids detect).
	ErrorLatency int64
}

// Stats returns the simulation's deterministic engine counters.
func (s *Simulation) Stats() EngineStats {
	var out EngineStats
	if s.ceng != nil {
		st := s.ceng.Stats()
		out = EngineStats{
			DeltaCalls:     st.DeltaCalls,
			Epochs:         st.Epochs,
			Violations:     st.Violations,
			HalfReuses:     st.HalfReuses,
			HalfDiscards:   st.HalfDiscards,
			ShardEpochs:    st.ShardEpochs,
			ShardBlocks:    st.ShardBlocks,
			MergeConflicts: st.MergeConflicts,
			StealEvents:    st.StealEvents,
		}
	}
	if s.set.faults.Enabled() {
		var fst sim.FaultStats
		if s.ceng != nil {
			fst = s.ceng.FaultStats()
		} else {
			fst = s.eng.FaultStats()
		}
		out.FaultEvents = fst.Events
		out.Corrupted = fst.Corrupted
		out.Churned = fst.Churned
		out.ForcedInteractions = fst.Forced
		out.Reconvergences = fst.Reconvergences
		out.ReconvergeTotal = fst.ReconvergeTotal
		out.ReconvergeMax = fst.ReconvergeMax
		out.ErrorLatency = fst.ErrorLatency
	}
	return out
}

// N returns the population size.
func (s *Simulation) N() int { return s.n }

// Algorithm returns the algorithm under simulation.
func (s *Simulation) Algorithm() Algorithm { return s.alg }

// Engine returns the concrete engine kind backing the simulation
// (never EngineAuto).
func (s *Simulation) Engine() EngineKind { return s.kind }

// Step executes count scheduler steps, using the engine's fast paths
// when available (batched interactions on the agent engine, self-loop
// skipping on the count engine).
func (s *Simulation) Step(count int64) {
	if s.ceng != nil {
		s.ceng.Step(count)
		return
	}
	s.eng.Step(count)
}

// Interactions returns the number of interactions executed so far.
func (s *Simulation) Interactions() int64 {
	if s.ceng != nil {
		return s.ceng.Interactions()
	}
	return s.eng.Interactions()
}

// Converged reports whether the protocol's desired configuration holds.
func (s *Simulation) Converged() bool {
	if s.ceng != nil {
		return s.ceng.Converged()
	}
	return s.eng.Converged()
}

// Errored reports whether a stable protocol variant has detected an
// inconsistency and handed over to its backup (false for algorithms
// without error detection). It works on every engine: the agent adapter
// evaluates the spec's error predicate on its count mirror, the count
// engines on their configuration.
func (s *Simulation) Errored() bool {
	if s.ceng != nil {
		sp, ok := s.ceng.Protocol().(interface{ Spec() *sim.Spec })
		if !ok || sp.Spec().Errored == nil {
			return false
		}
		return sp.Spec().Errored(s.ceng.Counts())
	}
	e, ok := s.p.(interface{ Errored() bool })
	return ok && e.Errored()
}

// Output returns agent i's current output. On the count engine agents
// have no identity; every i reports the output of the most populated
// state (the consensus output once converged).
func (s *Simulation) Output(i int) int64 {
	if s.ceng != nil {
		out, _ := s.ceng.PluralityOutput()
		return out
	}
	o, ok := s.p.(sim.Outputter)
	if !ok {
		return 0
	}
	return o.Output(i)
}

// Outputs returns the current outputs of all agents. It is nil on the
// count engine, whose configuration is aggregate — materializing n
// entries would defeat its O(|states|) memory footprint.
func (s *Simulation) Outputs() []int64 {
	if s.ceng != nil {
		return nil
	}
	return sim.Outputs(s.p)
}

// RunToConvergence drives the simulation from its current position until
// convergence (plus the optional confirmation window) or the interaction
// cap, and packages the result. It honors prior Step calls.
func (s *Simulation) RunToConvergence() (Result, error) {
	var res sim.Result
	var err error
	if s.ceng != nil {
		res, err = s.ceng.RunToConvergence()
	} else {
		res, err = s.eng.RunToConvergence()
	}
	if err != nil {
		return Result{}, err
	}
	return s.result(res), nil
}

// result converts an engine result into the public form.
func (s *Simulation) result(res sim.Result) Result {
	out := Result{
		Converged:    res.Converged,
		Interactions: res.Interactions,
		Total:        res.Total,
		Stable:       res.Stable,
		Output:       s.Output(0),
		Outputs:      s.Outputs(),
		Interrupted:  res.Interrupted,
	}
	out.Estimate = estimateFor(s.alg, out.Output)
	return out
}

// EstimateOutput converts an agent output value of the given algorithm
// into a population-size estimate — the same mapping Result.Estimate
// uses. Callers that drive a Simulation stepwise (rather than through
// RunToConvergence) use it to interpret Output values.
func EstimateOutput(alg Algorithm, out int64) int64 { return estimateFor(alg, out) }

// estimateFor converts an output value into a population-size estimate.
func estimateFor(alg Algorithm, out int64) int64 {
	switch alg {
	case Approximate, StableApproximate, GeometricEstimate:
		if out < 0 {
			return 0
		}
		if out > 62 {
			return 1 << 62
		}
		return int64(1) << uint(out)
	default:
		return out
	}
}

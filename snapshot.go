package popcount

// Root-level snapshot envelope. A Simulation snapshot is the engine
// blob produced by internal/sim wrapped in a header that records
// everything NewSimulation needs to rebuild an equivalent engine:
// the algorithm, the engine kind, the population size, and the
// dynamics settings (seed, budgets, protocol parameters) the original
// simulation was constructed with. RestoreSimulation rebuilds the
// simulation from the header alone — callers supply only
// non-dynamics options (observers, parallelism) — then hands the
// inner blob to the engine's Restore, so a resumed run continues the
// exact trajectory of the snapshotted one.
//
// Functional options that affect dynamics (seed, interaction budgets,
// clock sizes, fault injection, the scheduler) are taken from the
// header, not from the opts argument: a snapshot pins the dynamics of
// the run it came from. Schedulers travel as their canonical text
// form (ParseSchedulerSpec grammar): the uniform default — explicit
// or absent — is the empty spec, and the graph schedulers (ring,
// torus, Kronecker) serialize their parameters plus any drawn graph
// seed, so graph-restricted runs checkpoint and resume bit-for-bit.
// Schedulers with no text form (BiasedPairs, RandomMatching,
// user-defined closures) make the simulation non-snapshottable in
// the first place (the engine layer rejects them), so restore never
// needs to reproduce one.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"popcount/internal/sim"
)

const (
	rootSnapMagic = 0x50435353 // "PCSS"
	// rootSnapVersion 4 appended the scheduler spec to the header;
	// version 3 appended the intra-run shard count. Version-2 (no
	// sharding, no scheduler) and version-3 blobs still restore.
	rootSnapVersion   = 4
	rootSnapVersionV3 = 3
	rootSnapVersionV2 = 2
)

// Snapshot serializes the simulation's full dynamic state — engine
// configuration or agent states, RNG stream position, interaction
// clock, convergence record — together with its construction
// parameters. The blob restores with RestoreSimulation, and the
// resumed run is bit-for-bit identical to the uninterrupted one.
//
// It fails with ErrNotSnapshottable for simulations whose state has
// no serialized form: TokenBag (per-agent token multisets with no
// canonical codec) and any WithScheduler simulation other than the
// explicit uniform default and the graph schedulers (GraphRing,
// GraphTorus, GraphKronecker), whose state is a spec string plus a
// drawn graph seed.
func (s *Simulation) Snapshot() ([]byte, error) {
	var blob []byte
	var err error
	if s.ceng != nil {
		blob, err = s.ceng.Snapshot()
	} else {
		blob, err = s.eng.Snapshot()
	}
	if err != nil {
		if s.alg == TokenBag {
			return nil, fmt.Errorf("%w: TokenBag agents hold token multisets with no canonical serialized form — use a counting algorithm (approximate, exact, stable-*) for checkpointable jobs", ErrNotSnapshottable)
		}
		return nil, mapSimSnapErr(err)
	}

	set := &s.set
	// The scheduler travels as its canonical text form
	// (ParseSchedulerSpec grammar; empty for the uniform default). The
	// engine snapshot above already rejected schedulers with no
	// serialized form, so this cannot fail after it succeeded.
	schedSpec, err := set.schedSpec()
	if err != nil {
		return nil, err
	}
	// The fault plan travels as its canonical text form (ParseFaultPlan
	// grammar), with the CorruptSearch knob carried by the header flag
	// byte it has occupied since v1.
	dyn := set.faults
	dyn.CorruptSearch = false
	faultSpec := dyn.String()
	buf := make([]byte, 0, rootSnapHeaderLen+len(schedSpec)+len(faultSpec)+len(blob))
	buf = binary.LittleEndian.AppendUint32(buf, rootSnapMagic)
	buf = binary.LittleEndian.AppendUint16(buf, rootSnapVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(s.alg))
	buf = append(buf, byte(s.kind))
	if set.faults.CorruptSearch {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint64(buf, set.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(set.maxI))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(set.checkEvery))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(set.confirmWindow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.clockM))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.fastRounds))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.shift))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.batchRounds))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(set.shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(schedSpec)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(faultSpec)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
	buf = append(buf, schedSpec...)
	buf = append(buf, faultSpec...)
	buf = append(buf, blob...)
	return buf, nil
}

// rootSnapHeaderLen is the fixed byte length of the version-4 envelope
// header, up to and including the engine-blob length field;
// rootSnapHeaderLenV3 drops the scheduler-spec length and
// rootSnapHeaderLenV2 additionally the shard count.
const (
	rootSnapHeaderLen   = 4 + 2 + 2 + 1 + 1 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 4 + 4 + 4
	rootSnapHeaderLenV3 = rootSnapHeaderLen - 4
	rootSnapHeaderLenV2 = rootSnapHeaderLenV3 - 4
)

// RestoreSimulation rebuilds a Simulation from a Snapshot blob and
// resumes it at the exact point the snapshot was taken. Dynamics
// settings (algorithm, engine, population, seed, budgets, protocol
// parameters) come from the snapshot; opts supplies only
// non-dynamics options such as WithObserver. It fails with
// ErrBadSnapshot if data is malformed, truncated, of an unknown
// version, or internally inconsistent.
func RestoreSimulation(data []byte, opts ...Option) (*Simulation, error) {
	if len(data) < rootSnapHeaderLenV2 {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadSnapshot, len(data), rootSnapHeaderLenV2)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != rootSnapMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadSnapshot, m)
	}
	version := binary.LittleEndian.Uint16(data[4:])
	var headerLen int
	switch version {
	case rootSnapVersion:
		headerLen = rootSnapHeaderLen
	case rootSnapVersionV3:
		headerLen = rootSnapHeaderLenV3
	case rootSnapVersionV2:
		headerLen = rootSnapHeaderLenV2
	default:
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadSnapshot, version)
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadSnapshot, len(data), headerLen)
	}
	alg := Algorithm(binary.LittleEndian.Uint16(data[6:]))
	kind := EngineKind(data[8])
	if data[9] > 1 {
		return nil, fmt.Errorf("%w: bad fault-injection flag %d", ErrBadSnapshot, data[9])
	}
	corruptSearch := data[9] != 0
	if alg == TokenBag {
		// TokenBag simulations can never be snapshotted, so a header
		// claiming one is forged — reject it before building the
		// quadratic-state protocol.
		return nil, fmt.Errorf("%w: TokenBag simulations have no snapshot form", ErrBadSnapshot)
	}
	n := binary.LittleEndian.Uint64(data[10:])
	if n > 1<<40 {
		return nil, fmt.Errorf("%w: implausible population %d", ErrBadSnapshot, n)
	}

	set := newSettings(opts)
	set.seed = binary.LittleEndian.Uint64(data[18:])
	set.maxI = int64(binary.LittleEndian.Uint64(data[26:]))
	set.checkEvery = int64(binary.LittleEndian.Uint64(data[34:]))
	set.confirmWindow = int64(binary.LittleEndian.Uint64(data[42:]))
	set.clockM = int(binary.LittleEndian.Uint32(data[50:]))
	// The clock package panics on out-of-range hour counts; a forged
	// header must fail cleanly instead (zero selects the default).
	if m := set.clockM; m != 0 && (m < 4 || m > 128 || m%2 != 0) {
		return nil, fmt.Errorf("%w: clock hour count %d outside the even [4, 128] range", ErrBadSnapshot, m)
	}
	set.fastRounds = int(binary.LittleEndian.Uint32(data[54:]))
	set.shift = int(binary.LittleEndian.Uint32(data[58:]))
	set.batchRounds = int(binary.LittleEndian.Uint32(data[62:]))
	set.engine = kind

	off := 66
	if version >= rootSnapVersionV3 {
		set.shards = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	schedLen := 0
	if version >= rootSnapVersion {
		schedLen = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	faultLen := int(binary.LittleEndian.Uint32(data[off:]))
	blobLen := int(binary.LittleEndian.Uint32(data[off+4:]))
	rest := data[headerLen:]
	if schedLen < 0 || schedLen > len(rest) {
		return nil, fmt.Errorf("%w: scheduler spec is %d bytes, header says %d", ErrBadSnapshot, len(rest), schedLen)
	}
	mkSched, _, err := ParseSchedulerSpec(string(rest[:schedLen]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	set.mkSched = mkSched
	rest = rest[schedLen:]
	if faultLen < 0 || faultLen > len(rest) {
		return nil, fmt.Errorf("%w: fault plan is %d bytes, header says %d", ErrBadSnapshot, len(rest), faultLen)
	}
	plan, err := ParseFaultPlan(string(rest[:faultLen]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	plan.CorruptSearch = corruptSearch
	set.faults = plan
	blob := rest[faultLen:]
	if len(blob) != blobLen {
		return nil, fmt.Errorf("%w: engine blob is %d bytes, header says %d", ErrBadSnapshot, len(blob), blobLen)
	}
	if kind == EngineAgent && blobLen < int(n) {
		// Each agent costs at least one blob byte: a forged header
		// cannot buy an O(n) protocol allocation with a short blob.
		return nil, fmt.Errorf("%w: %d-byte engine blob cannot hold %d agents", ErrBadSnapshot, blobLen, n)
	}

	s, err := newSimulationFrom(alg, int(n), set)
	if err != nil {
		// The header named an algorithm/engine/size combination the
		// library rejects — the blob is inconsistent, not the caller.
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if s.ceng != nil {
		err = s.ceng.Restore(blob)
	} else {
		err = s.eng.Restore(blob)
	}
	if err != nil {
		return nil, mapSimSnapErr(err)
	}
	return s, nil
}

// mapSimSnapErr lifts engine-layer snapshot sentinels to the root
// package's, preserving the detail message.
func mapSimSnapErr(err error) error {
	switch {
	case errors.Is(err, sim.ErrNotSnapshottable):
		return fmt.Errorf("%w: %v", ErrNotSnapshottable, err)
	case errors.Is(err, sim.ErrSnapshotFormat):
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return err
}

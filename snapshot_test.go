package popcount_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"popcount"
)

// stepSim drives a simulation through a fixed chunk sequence so both
// sides of a comparison execute identical Step call patterns (the
// batched engine's epoch boundaries depend on them).
func stepSim(s *popcount.Simulation, chunks []int64) {
	for _, c := range chunks {
		s.Step(c)
	}
}

// TestSimulationSnapshotRoundTrip pins the service's checkpointing
// contract on all three engine kinds: a run snapshotted mid-flight,
// serialized, restored via RestoreSimulation, and resumed finishes
// bit-for-bit identical to the uninterrupted run.
func TestSimulationSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		alg  popcount.Algorithm
		kind popcount.EngineKind
	}{
		{"approximate-agent", popcount.Approximate, popcount.EngineAgent},
		{"approximate-count", popcount.Approximate, popcount.EngineCount},
		{"approximate-batched", popcount.Approximate, popcount.EngineCountBatched},
		{"stable-exact-count", popcount.StableCountExact, popcount.EngineCount},
	}
	pre := []int64{700, 1300, 512}
	post := []int64{911, 2048, 4096, 333}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []popcount.Option{
				popcount.WithSeed(99),
				popcount.WithEngine(tc.kind),
			}
			ref, err := popcount.NewSimulation(tc.alg, 512, opts...)
			if err != nil {
				t.Fatal(err)
			}
			stepSim(ref, pre)
			blob, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stepSim(ref, post)

			res, err := popcount.RestoreSimulation(blob)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm() != tc.alg || res.Engine() != tc.kind || res.N() != 512 {
				t.Fatalf("restored identity = (%v, %v, %d), want (%v, %v, 512)",
					res.Algorithm(), res.Engine(), res.N(), tc.alg, tc.kind)
			}
			stepSim(res, post)

			if ref.Interactions() != res.Interactions() {
				t.Fatalf("interactions: want %d, got %d", ref.Interactions(), res.Interactions())
			}
			if ref.Converged() != res.Converged() {
				t.Fatalf("converged: want %v, got %v", ref.Converged(), res.Converged())
			}
			if ref.Stats() != res.Stats() {
				t.Fatalf("stats: want %+v, got %+v", ref.Stats(), res.Stats())
			}
			if ref.Output(0) != res.Output(0) {
				t.Fatalf("output: want %d, got %d", ref.Output(0), res.Output(0))
			}
			if tc.kind == popcount.EngineAgent {
				w, g := ref.Outputs(), res.Outputs()
				for i := range w {
					if w[i] != g[i] {
						t.Fatalf("agent %d output: want %d, got %d", i, w[i], g[i])
					}
				}
			}
		})
	}
}

// TestSimulationSnapshotResumeToConvergence checks the property the
// daemon's crash recovery actually relies on: restoring a mid-flight
// checkpoint and running to convergence produces the same convergence
// time and output as the run that was never interrupted.
func TestSimulationSnapshotResumeToConvergence(t *testing.T) {
	mk := func() *popcount.Simulation {
		s, err := popcount.NewSimulation(popcount.Approximate, 256,
			popcount.WithSeed(5), popcount.WithEngine(popcount.EngineCount))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := mk()
	refRes, err := ref.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Converged {
		t.Fatal("reference run did not converge")
	}

	mid := mk()
	mid.Step(refRes.Interactions / 2)
	blob, err := mid.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := popcount.RestoreSimulation(blob)
	if err != nil {
		t.Fatal(err)
	}
	resRes, err := res.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if resRes.Interactions != refRes.Interactions || resRes.Total != refRes.Total ||
		resRes.Converged != refRes.Converged || resRes.Output != refRes.Output ||
		resRes.Estimate != refRes.Estimate {
		t.Fatalf("resumed result %+v, want %+v", resRes, refRes)
	}
}

// TestSnapshotUnsupported pins the typed failures: TokenBag has no
// serialized agent form, and WithScheduler state cannot be captured.
func TestSnapshotUnsupported(t *testing.T) {
	s, err := popcount.NewSimulation(popcount.TokenBag, 64, popcount.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, popcount.ErrNotSnapshottable) {
		t.Fatalf("TokenBag snapshot: err = %v, want ErrNotSnapshottable", err)
	}

	s2, err := popcount.NewSimulation(popcount.Approximate, 64,
		popcount.WithSeed(1),
		popcount.WithScheduler(func() popcount.Scheduler { return popcount.BiasedPairs(0, 0.5) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Snapshot(); !errors.Is(err, popcount.ErrNotSnapshottable) {
		t.Fatalf("custom-scheduler snapshot: err = %v, want ErrNotSnapshottable", err)
	}
}

// TestRestoreSimulationErrors pins ErrBadSnapshot on malformed blobs:
// garbage, truncations, version skew, and inner-blob corruption.
func TestRestoreSimulationErrors(t *testing.T) {
	if _, err := popcount.RestoreSimulation([]byte("not a snapshot")); !errors.Is(err, popcount.ErrBadSnapshot) {
		t.Fatalf("garbage: err = %v, want ErrBadSnapshot", err)
	}

	s, err := popcount.NewSimulation(popcount.Approximate, 128,
		popcount.WithSeed(2), popcount.WithEngine(popcount.EngineCount))
	if err != nil {
		t.Fatal(err)
	}
	s.Step(500)
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(blob); cut += 11 {
		if _, err := popcount.RestoreSimulation(blob[:cut]); !errors.Is(err, popcount.ErrBadSnapshot) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}

	bad := append([]byte(nil), blob...)
	bad[4] ^= 0xff // version field
	if _, err := popcount.RestoreSimulation(bad); !errors.Is(err, popcount.ErrBadSnapshot) {
		t.Fatalf("version skew: err = %v, want ErrBadSnapshot", err)
	}
}

// TestRunEnsembleCancellationPartial pins satellite behavior the
// service depends on: cancelling mid-ensemble still returns every
// trial's partial progress, tagged Interrupted, alongside ctx's error.
func TestRunEnsembleCancellationPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	const trials = 4
	res, err := popcount.RunEnsemble(ctx, popcount.Approximate, 1<<14, trials,
		popcount.WithSeed(11),
		popcount.WithMaxInteractions(1<<40),
		popcount.WithParallelism(2),
		popcount.WithObserver(func(popcount.Snapshot) {
			// First progress snapshot of any trial: pull the plug.
			once.Do(cancel)
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Trials) != trials {
		t.Fatalf("got %d partial trials, want %d", len(res.Trials), trials)
	}
	interrupted, withProgress := 0, 0
	for _, tr := range res.Trials {
		if tr.Interrupted {
			interrupted++
			if tr.Total > 0 {
				withProgress++
			}
		}
	}
	if interrupted == 0 {
		t.Fatal("no trial was tagged Interrupted")
	}
	if withProgress == 0 {
		t.Fatal("no interrupted trial recorded partial progress")
	}
	if res.Stats.Trials != trials {
		t.Fatalf("Stats.Trials = %d, want %d", res.Stats.Trials, trials)
	}
}

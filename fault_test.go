package popcount

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// burstPlan is the reference fault schedule of the public-API tests:
// two corruption bursts and a churn event, all mid-run for n≈1024-sized
// populations.
func burstPlan() FaultPlan {
	return FaultPlan{
		Seed:   5,
		Bursts: []FaultBurst{{At: 2000, Agents: 64}, {At: 6000, Agents: 32, Random: true}},
		Churn:  []FaultChurn{{At: 4000, Agents: 48}},
	}
}

// TestWithFaultsDeterministic pins the public bit-for-bit claim on the
// agent engine: two runs of the same algorithm, seed and fault plan
// produce identical results, outputs and fault counters, and the plan
// actually fires.
func TestWithFaultsDeterministic(t *testing.T) {
	run := func() (Result, EngineStats) {
		t.Helper()
		s, err := NewSimulation(Approximate, 256, WithSeed(3), WithFaults(burstPlan()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		return res, s.Stats()
	}
	r1, st1 := run()
	r2, st2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("faulted runs diverged:\n%+v\n%+v", r1, r2)
	}
	if st1 != st2 {
		t.Fatalf("fault stats diverged:\n%+v\n%+v", st1, st2)
	}
	if st1.FaultEvents != 3 || st1.Corrupted != 96 || st1.Churned != 48 {
		t.Fatalf("burst plan misapplied: %+v", st1)
	}
	if !r1.Converged {
		t.Fatal("faulted run did not converge")
	}
}

// TestWithFaultsCrossEngineDistributional is the cross-engine
// conformance pin at n=1024: the same burst-corruption plan on the
// agent, count and batched engines must agree distributionally —
// convergence behavior, convergence times and estimates within
// tolerance over a seed ensemble. (Bit-for-bit equality across engine
// forms is impossible: they consume the RNG stream differently.)
func TestWithFaultsCrossEngineDistributional(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed ensemble")
	}
	const n, seeds = 1024, 12
	plan := FaultPlan{
		Seed:   9,
		Bursts: []FaultBurst{{At: 3 * n, Agents: n / 8}, {At: 10 * n, Agents: n / 16, Random: true}},
		Churn:  []FaultChurn{{At: 5 * n, Agents: n / 8}},
	}
	type agg struct {
		converged int
		meanT     float64
		meanEst   float64
	}
	measure := func(kind EngineKind) agg {
		t.Helper()
		var a agg
		for seed := uint64(1); seed <= seeds; seed++ {
			s, err := NewSimulation(Approximate, n, WithSeed(seed), WithEngine(kind), WithFaults(plan))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.RunToConvergence()
			if err != nil {
				t.Fatal(err)
			}
			if res.Converged {
				a.converged++
				a.meanT += float64(res.Interactions)
				a.meanEst += float64(res.Estimate)
			}
			if st := s.Stats(); st.FaultEvents != 3 {
				t.Fatalf("%v seed %d: %d fault events, want 3", kind, seed, st.FaultEvents)
			}
		}
		if a.converged > 0 {
			a.meanT /= float64(a.converged)
			a.meanEst /= float64(a.converged)
		}
		return a
	}
	agent := measure(EngineAgent)
	count := measure(EngineCount)
	batched := measure(EngineCountBatched)
	for _, tc := range []struct {
		name string
		got  agg
	}{{"count", count}, {"count-batched", batched}} {
		if d := tc.got.converged - agent.converged; d < -2 || d > 2 {
			t.Errorf("%s: %d/%d trials converged, agent %d/%d", tc.name, tc.got.converged, seeds, agent.converged, seeds)
		}
		if agent.converged > 0 && tc.got.converged > 0 {
			if r := tc.got.meanT / agent.meanT; r < 0.6 || r > 1.67 {
				t.Errorf("%s: mean convergence time %.0f vs agent %.0f (ratio %.2f)", tc.name, tc.got.meanT, agent.meanT, r)
			}
			if r := tc.got.meanEst / agent.meanEst; r < 0.7 || r > 1.43 {
				t.Errorf("%s: mean estimate %.0f vs agent %.0f (ratio %.2f)", tc.name, tc.got.meanEst, agent.meanEst, r)
			}
		}
	}
}

// TestFaultySnapshotResume pins the checkpoint claim: a faulted run
// snapshotted mid-schedule resumes bit-for-bit on both engine families,
// through the public PCSS envelope.
func TestFaultySnapshotResume(t *testing.T) {
	for _, kind := range []EngineKind{EngineAgent, EngineCount, EngineCountBatched} {
		t.Run(kind.String(), func(t *testing.T) {
			opts := []Option{WithSeed(11), WithEngine(kind), WithFaults(burstPlan()), WithFaultInjection()}
			alg := StableApproximate
			ref, err := NewSimulation(alg, 256, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref.Step(3000) // between the first burst and the churn event
			snap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := ref.RunToConvergence()
			if err != nil {
				t.Fatal(err)
			}

			res, err := RestoreSimulation(snap)
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine() != kind || res.Algorithm() != alg || res.N() != 256 {
				t.Fatalf("restored identity %v/%v/%d", res.Engine(), res.Algorithm(), res.N())
			}
			resRes, err := res.RunToConvergence()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refRes, resRes) {
				t.Fatalf("resumed result diverged:\n%+v\n%+v", refRes, resRes)
			}
			if ref.Stats() != res.Stats() {
				t.Fatalf("resumed stats diverged:\n%+v\n%+v", ref.Stats(), res.Stats())
			}
			if st := res.Stats(); st.FaultEvents != 3 {
				t.Fatalf("resumed run applied %d fault events, want 3", st.FaultEvents)
			}
		})
	}
}

// TestFaultPlanStringRoundTrip pins the canonical text form: plans
// survive String → ParseFaultPlan unchanged, and the zero plan renders
// empty.
func TestFaultPlanStringRoundTrip(t *testing.T) {
	plans := []FaultPlan{
		{},
		burstPlan(),
		{Seed: 42, CorruptRate: 0.125, CorruptAgents: 3, CorruptRandom: true},
		{ChurnRate: 1e-3, ChurnAgents: 7, Churn: []FaultChurn{{At: 0, Agents: 1}}},
		{Adversary: AdversaryStaleReplay, AdversaryRate: 2.5},
		{Adversary: AdversaryConvergence, AdversaryAgents: 9, CorruptRandom: true},
		{CorruptSearch: true},
		{Seed: math.MaxUint64, CorruptRate: math.Pi},
	}
	for _, p := range plans {
		got, err := ParseFaultPlan(p.String())
		if err != nil {
			t.Fatalf("plan %q did not parse back: %v", p.String(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip of %q:\n want %+v\n got  %+v", p.String(), p, got)
		}
	}
	if s := (FaultPlan{}).String(); s != "" {
		t.Fatalf("zero plan renders %q, want empty", s)
	}

	for _, bad := range []string{
		"bogus=1", "burst=10", "burst=x:1", "rate=NaN", "rate=x",
		"adversary=mean", "churn=1:2:random", "seed=-1", "agents=x",
	} {
		if _, err := ParseFaultPlan(bad); !errors.Is(err, ErrBadFaultPlan) {
			t.Errorf("ParseFaultPlan(%q): err = %v, want ErrBadFaultPlan", bad, err)
		}
	}
}

// TestWithFaultsRejections pins construction-time validation: TokenBag
// (not spec-backed) and scheduler overrides are incompatible with
// dynamic fault plans, and structurally invalid plans fail with
// ErrBadFaultPlan — all at construction, never at run time.
func TestWithFaultsRejections(t *testing.T) {
	plan := burstPlan()
	if _, err := NewSimulation(TokenBag, 64, WithFaults(plan)); !errors.Is(err, ErrUnsupportedEngine) {
		t.Fatalf("TokenBag with faults: err = %v, want ErrUnsupportedEngine", err)
	}
	if err := Validate(TokenBag, 64, WithFaults(plan)); !errors.Is(err, ErrUnsupportedEngine) {
		t.Fatalf("Validate TokenBag with faults: err = %v, want ErrUnsupportedEngine", err)
	}
	if _, err := NewSimulation(Approximate, 64, WithFaults(plan), WithScheduler(RandomMatching)); !errors.Is(err, ErrUnsupportedEngine) {
		t.Fatalf("scheduler override with faults: err = %v, want ErrUnsupportedEngine", err)
	}
	invalid := FaultPlan{Bursts: []FaultBurst{{At: -5, Agents: 1}}}
	if _, err := NewSimulation(Approximate, 64, WithFaults(invalid)); !errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("invalid plan: err = %v, want ErrBadFaultPlan", err)
	}
	if err := Validate(Approximate, 64, WithFaults(FaultPlan{Bursts: []FaultBurst{{At: 1, Agents: 65}}})); !errors.Is(err, ErrBadFaultPlan) {
		t.Fatalf("oversized burst: err = %v, want ErrBadFaultPlan", err)
	}
	// CorruptSearch alone is not a dynamic plan: it works everywhere the
	// legacy option worked, TokenBag included.
	if _, err := NewSimulation(TokenBag, 64, WithFaults(FaultPlan{CorruptSearch: true})); err != nil {
		t.Fatalf("CorruptSearch-only plan on TokenBag: %v", err)
	}
}

// TestFaultRecoveryInstrumentation pins the recovery-time measurements
// on a stable hybrid: the convergence-timed adversary strikes once, the
// error flag is raised (ErrorLatency ≥ 0), the run re-converges, and
// the observer stream carries the Errored transition.
func TestFaultRecoveryInstrumentation(t *testing.T) {
	// Spec-chosen targets (fresh init states) genuinely damage a
	// converged configuration; random occupied codes would mostly land
	// the victims back in converged states.
	plan := FaultPlan{Seed: 17, Adversary: AdversaryConvergence, AdversaryAgents: 64}
	var sawErrored bool
	s, err := NewSimulation(StableCountExact, 128, WithSeed(4), WithFaults(plan),
		WithObserver(func(snap Snapshot) {
			if snap.Errored {
				sawErrored = true
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not re-converge after the adversary strike")
	}
	st := s.Stats()
	if st.FaultEvents != 1 || st.Corrupted != 64 {
		t.Fatalf("adversary strike misapplied: %+v", st)
	}
	if st.Reconvergences != 1 || st.ReconvergeTotal <= 0 {
		t.Fatalf("recovery window not recorded: %+v", st)
	}
	if st.ErrorLatency < 0 {
		t.Fatalf("stable hybrid never raised its error flag: %+v", st)
	}
	if !sawErrored {
		t.Fatal("observer stream never reported Errored")
	}
}

package popcount_test

import (
	"reflect"
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/core"
	"popcount/internal/sim"
)

// TestBatchEquivalentToScalar runs every batch-wired protocol down both
// engine paths — the scalar per-interaction loop and the BatchInteractor
// fast path — under equal seeds, and demands bit-for-bit identical
// results and per-agent output vectors.
func TestBatchEquivalentToScalar(t *testing.T) {
	cases := []struct {
		name    string
		factory func() sim.Protocol
		cfg     sim.Config
	}{
		{"TokenBag", func() sim.Protocol { return baseline.NewTokenBag(128) },
			sim.Config{Seed: 3}},
		{"TokenBag/confirm", func() sim.Protocol { return baseline.NewTokenBag(96) },
			sim.Config{Seed: 9, ConfirmWindow: 10_000}},
		{"Approximate", func() sim.Protocol { return core.NewApproximate(core.Config{N: 256}) },
			sim.Config{Seed: 4}},
		{"CountExact", func() sim.Protocol { return core.NewCountExact(core.Config{N: 256}) },
			sim.Config{Seed: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scalarP, batchP := c.factory(), c.factory()
			if _, ok := batchP.(sim.BatchInteractor); !ok {
				t.Fatalf("%T does not implement sim.BatchInteractor", batchP)
			}
			scalarCfg := c.cfg
			scalarCfg.DisableBatch = true
			scalarRes, err := sim.Run(scalarP, scalarCfg)
			if err != nil {
				t.Fatal(err)
			}
			batchRes, err := sim.Run(batchP, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if scalarRes != batchRes {
				t.Fatalf("results diverged:\nscalar %+v\nbatch  %+v", scalarRes, batchRes)
			}
			if !reflect.DeepEqual(sim.Outputs(scalarP), sim.Outputs(batchP)) {
				t.Fatal("per-agent outputs diverged between scalar and batch paths")
			}
		})
	}
}

// TestBatchEquivalentUnderNonUniformSchedulers exercises the generic
// (non-devirtualized) branch of the batch loop: under stateful and
// biased schedulers the two paths must still agree bit for bit. Each run
// gets a fresh scheduler instance.
func TestBatchEquivalentUnderNonUniformSchedulers(t *testing.T) {
	scheds := map[string]func() sim.Scheduler{
		"biased":   func() sim.Scheduler { return sim.BiasedScheduler{Hot: 1, Bias: 0.3} },
		"matching": func() sim.Scheduler { return sim.NewMatchingScheduler() },
	}
	for name, mk := range scheds {
		t.Run(name, func(t *testing.T) {
			scalarP := baseline.NewTokenBag(100)
			batchP := baseline.NewTokenBag(100)
			scalarRes, err := sim.Run(scalarP, sim.Config{Seed: 6, Scheduler: mk(), DisableBatch: true})
			if err != nil {
				t.Fatal(err)
			}
			batchRes, err := sim.Run(batchP, sim.Config{Seed: 6, Scheduler: mk()})
			if err != nil {
				t.Fatal(err)
			}
			if scalarRes != batchRes {
				t.Fatalf("results diverged:\nscalar %+v\nbatch  %+v", scalarRes, batchRes)
			}
			if !reflect.DeepEqual(sim.Outputs(scalarP), sim.Outputs(batchP)) {
				t.Fatal("per-agent outputs diverged between scalar and batch paths")
			}
		})
	}
}

package balance

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Powers spec state codes pack the logarithmic load shifted by one
// (empty −1 maps to 0, so k ∈ [−1, 62] occupies [0, 63]) with the
// excluded-leader marker in bit 6. The domain is 128 codes, small
// enough that the agent adapter precompiles the flat successor table.
const (
	powersLeaderBit = 1 << 6
	powersDomain    = 1 << 7
)

func encodePowers(k int16, leader bool) uint64 {
	c := uint64(k + 1)
	if leader {
		c |= powersLeaderBit
	}
	return c
}

func decodePowersK(c uint64) int16 { return int16(c&(powersLeaderBit-1)) - 1 }

// NewPowersSpec returns the canonical transition spec of the
// powers-of-two load balancing process in Lemma 8's setting: agent 1
// holds 2^kappa tokens, every other agent is empty, and (when
// excludeLeader is set) agent 0 plays the non-participating leader, as
// in the Search Protocol. Pairs not involving an empty agent and a
// loaded one are certain no-ops, which dominate the Θ(n log n) run, so
// the spec opts into the skip path and the count engines.
func NewPowersSpec(n, kappa int, excludeLeader bool) *sim.Spec {
	if kappa < 0 || kappa > 62 {
		panic("balance: kappa out of range")
	}
	if n < 2 {
		panic("balance: population below 2")
	}
	empty := encodePowers(Empty, false)
	loaded := encodePowers(int16(kappa), false)
	leader := encodePowers(Empty, true)
	return &sim.Spec{
		Name:   "powers",
		N:      n,
		Domain: powersDomain,
		Init: func() map[uint64]int64 {
			init := map[uint64]int64{loaded: 1}
			rest := int64(n - 1)
			if excludeLeader {
				init[leader] = 1
				rest--
			}
			if rest > 0 {
				init[empty] += rest
			}
			return init
		},
		Layout: func() []uint64 {
			layout := make([]uint64, n)
			for i := range layout {
				layout[i] = empty
			}
			if excludeLeader {
				layout[0] = leader
			}
			layout[1] = loaded
			return layout
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			if qu&powersLeaderBit != 0 || qv&powersLeaderBit != 0 {
				return qu, qv
			}
			ku, kv := decodePowersK(qu), decodePowersK(qv)
			PowerOfTwo(&ku, &kv)
			return encodePowers(ku, false), encodePowers(kv, false)
		},
		PureDelta: true,
		SelfLoop: func(qu, qv uint64) bool {
			if qu&powersLeaderBit != 0 || qv&powersLeaderBit != 0 {
				return true
			}
			ku, kv := decodePowersK(qu), decodePowersK(qv)
			return !(ku > 0 && kv == Empty) && !(ku == Empty && kv > 0)
		},
		Skip:        true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			// Lemma 8's terminal condition: no logarithmic load above 0.
			ok := true
			v.ForEach(func(code uint64, _ int64) {
				if code&powersLeaderBit == 0 && decodePowersK(code) > 0 {
					ok = false
				}
			})
			return ok
		},
		Output: func(q uint64) int64 { return int64(decodePowersK(q)) },
	}
}

// NewClassicalSpec returns the canonical transition spec of classical
// load balancing ([BFKK19]) over the given initial loads (copied; all
// must be non-negative — the state code is the load itself). The
// occupied alphabet is the set of distinct loads, which collapses to at
// most two adjacent values as the discrepancy drops, and equal or
// adjacent-load pairs are configuration no-ops, so the spec opts into
// the skip path and the count engines.
func NewClassicalSpec(loads []int64) *sim.Spec {
	init := make(map[uint64]int64, len(loads))
	layout := make([]uint64, len(loads))
	for i, l := range loads {
		if l < 0 {
			panic("balance: negative load in classical spec")
		}
		init[uint64(l)]++
		layout[i] = uint64(l)
	}
	return &sim.Spec{
		Name: "classical",
		N:    len(loads),
		Init: func() map[uint64]int64 {
			out := make(map[uint64]int64, len(init))
			for c, n := range init {
				out[c] = n
			}
			return out
		},
		Layout: func() []uint64 { return append([]uint64(nil), layout...) },
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			lu, lv := int64(qu), int64(qv)
			Classical(&lu, &lv)
			return uint64(lu), uint64(lv)
		},
		PureDelta: true,
		SelfLoop: func(qu, qv uint64) bool {
			// Identity: equal loads, or the responder exactly one token
			// ahead (⌊·⌋ to the initiator keeps both in place). The
			// initiator one ahead is a swap — a configuration no-op the
			// batch planner nets away, but not an identity on agents.
			return qu == qv || qv == qu+1
		},
		Skip:        true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			// Discrepancy at most 2 ([BFKK19, Theorem 1]'s practical
			// terminal condition, like ClassicalProtocol.Converged).
			first := true
			var minL, maxL uint64
			v.ForEach(func(code uint64, _ int64) {
				if first {
					minL, maxL, first = code, code, false
					return
				}
				if code < minL {
					minL = code
				}
				if code > maxL {
					maxL = code
				}
			})
			return !first && maxL-minL <= 2
		},
		Output: func(q uint64) int64 { return int64(q) },
	}
}

// NewClassicalPointMassSpec is NewClassicalSpec for the point-mass
// start: agent 0 holds m tokens, everyone else none.
func NewClassicalPointMassSpec(n int, m int64) *sim.Spec {
	loads := make([]int64, n)
	loads[0] = m
	return NewClassicalSpec(loads)
}

package balance

import "testing"

// FuzzClassical fuzzes the classical balancing step: conservation and
// the floor/ceil split.
func FuzzClassical(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(7), int64(2))
	f.Add(int64(1), int64(1<<40))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if a < 0 || b < 0 || a > 1<<60 || b > 1<<60 {
			t.Skip()
		}
		u, v := a, b
		Classical(&u, &v)
		if u+v != a+b {
			t.Fatalf("sum not conserved: %d+%d → %d+%d", a, b, u, v)
		}
		if d := v - u; d < 0 || d > 1 {
			t.Fatalf("split not floor/ceil: %d, %d", u, v)
		}
	})
}

// FuzzPowerOfTwo fuzzes Equation (1): token conservation and the
// only-split-with-empty rule.
func FuzzPowerOfTwo(f *testing.F) {
	f.Add(int16(-1), int16(-1))
	f.Add(int16(5), int16(-1))
	f.Add(int16(0), int16(0))
	tokens := func(k int16) int64 {
		if k < 0 {
			return 0
		}
		return 1 << uint(k)
	}
	f.Fuzz(func(t *testing.T, a, b int16) {
		if a < -1 || b < -1 || a > 60 || b > 60 {
			t.Skip()
		}
		u, v := a, b
		PowerOfTwo(&u, &v)
		if tokens(u)+tokens(v) != tokens(a)+tokens(b) {
			t.Fatalf("tokens not conserved: (%d,%d) → (%d,%d)", a, b, u, v)
		}
		if a >= 0 && b >= 0 && (u != a || v != b) {
			t.Fatalf("two non-empty agents interacted: (%d,%d) → (%d,%d)", a, b, u, v)
		}
	})
}

// Package balance implements the two load-balancing processes used by the
// paper's counting protocols.
//
// Classical load balancing ([BFKK19], used in Sections 4.1 and 4.2): when
// agents u and v interact, their loads are rebalanced to
// (⌊(ℓu+ℓv)/2⌋, ⌈(ℓu+ℓv)/2⌉). The total load is conserved exactly and the
// discrepancy drops to O(1) within O(n log n) interactions w.h.p.
//
// Powers-of-two load balancing (Section 3.1, Equation (1), Lemma 8): agent
// loads are powers of two stored as their logarithm k (k = −1 encodes an
// empty agent). A balancing step is permitted only between an empty agent
// and an agent with load > 1, which then split evenly:
//
//	(k′u, k′v) = (ku−1, ku−1)  if ku > 0 and kv = −1
//	             (kv−1, kv−1)  if ku = −1 and kv > 0
//	             (ku, kv)      otherwise.
//
// Lemma 8: starting from a single agent holding 2^κ ≤ ¾·n tokens, after
// 16·n·log n interactions the maximum logarithmic load is 0 w.h.p.
package balance

import "popcount/internal/rng"

// Empty is the logarithmic load value of an empty agent.
const Empty int16 = -1

// Classical applies one classical load-balancing step to the two loads.
func Classical(u, v *int64) {
	sum := *u + *v
	*u = sum / 2
	*v = sum - sum/2
}

// PowerOfTwo applies one powers-of-two balancing step (Equation (1)) to
// the two logarithmic loads.
func PowerOfTwo(u, v *int16) {
	switch {
	case *u > 0 && *v == Empty:
		*u--
		*v = *u
	case *u == Empty && *v > 0:
		*v--
		*u = *v
	}
}

// ClassicalProtocol is a standalone simulation of the classical process
// for measurement: an arbitrary initial load vector is balanced until the
// discrepancy is at most 1.
type ClassicalProtocol struct {
	loads []int64
	total int64
}

// NewClassical returns a classical balancing simulation over the given
// initial loads (copied).
func NewClassical(loads []int64) *ClassicalProtocol {
	l := make([]int64, len(loads))
	copy(l, loads)
	var total int64
	for _, x := range l {
		total += x
	}
	return &ClassicalProtocol{loads: l, total: total}
}

// NewClassicalPointMass returns n agents where agent 0 holds m tokens.
func NewClassicalPointMass(n int, m int64) *ClassicalProtocol {
	loads := make([]int64, n)
	loads[0] = m
	return NewClassical(loads)
}

// N returns the population size.
func (p *ClassicalProtocol) N() int { return len(p.loads) }

// Interact applies one balancing step.
func (p *ClassicalProtocol) Interact(u, v int, _ *rng.Rand) {
	Classical(&p.loads[u], &p.loads[v])
}

// Converged reports whether the discrepancy is at most 2, the bound the
// classical process reaches within O(n log n) interactions w.h.p.
// ([BFKK19, Theorem 1]; reaching discrepancy 1 exactly takes Θ(n²·…)
// because the final surplus token performs a random walk).
func (p *ClassicalProtocol) Converged() bool { return p.Discrepancy() <= 2 }

// Total returns the (invariant) total load.
func (p *ClassicalProtocol) Total() int64 { return p.total }

// SumLoads recomputes the total from the load vector (for conservation
// checks in tests).
func (p *ClassicalProtocol) SumLoads() int64 {
	var s int64
	for _, x := range p.loads {
		s += x
	}
	return s
}

// Discrepancy returns max load − min load.
func (p *ClassicalProtocol) Discrepancy() int64 {
	minL, maxL := p.loads[0], p.loads[0]
	for _, x := range p.loads[1:] {
		if x < minL {
			minL = x
		}
		if x > maxL {
			maxL = x
		}
	}
	return maxL - minL
}

// Load returns agent i's load.
func (p *ClassicalProtocol) Load(i int) int64 { return p.loads[i] }

// Output returns agent i's load (Outputter).
func (p *ClassicalProtocol) Output(i int) int64 { return p.loads[i] }

// PowersProtocol is a standalone simulation of the powers-of-two process
// from Lemma 8: one agent starts with 2^κ tokens, everyone else is empty,
// and the process runs until the maximum logarithmic load is at most 0
// (or can make no further progress).
type PowersProtocol struct {
	ks       []int16
	excluded int // index of an agent excluded from balancing (the leader), or -1
	maxK     int16
	maxCount int
}

// NewPowers returns the Lemma 8 setting: agent 1 holds 2^kappa tokens
// (kappa ≥ 0), all other agents are empty. If excludeLeader is true,
// agent 0 plays the role of the non-participating leader, matching the
// Search Protocol where the leader does not take part in balancing.
func NewPowers(n int, kappa int, excludeLeader bool) *PowersProtocol {
	if kappa < 0 || kappa > 62 {
		panic("balance: kappa out of range")
	}
	ks := make([]int16, n)
	for i := range ks {
		ks[i] = Empty
	}
	ks[1] = int16(kappa)
	excl := -1
	if excludeLeader {
		excl = 0
	}
	p := &PowersProtocol{ks: ks, excluded: excl}
	p.recount()
	return p
}

func (p *PowersProtocol) recount() {
	p.maxK = Empty
	p.maxCount = 0
	for _, k := range p.ks {
		if k > p.maxK {
			p.maxK = k
			p.maxCount = 1
		} else if k == p.maxK {
			p.maxCount++
		}
	}
}

// N returns the population size.
func (p *PowersProtocol) N() int { return len(p.ks) }

// Interact applies one powers-of-two step (no-op if either endpoint is
// the excluded leader).
func (p *PowersProtocol) Interact(u, v int, _ *rng.Rand) {
	if u == p.excluded || v == p.excluded {
		return
	}
	ku, kv := p.ks[u], p.ks[v]
	PowerOfTwo(&p.ks[u], &p.ks[v])
	if p.ks[u] != ku || p.ks[v] != kv {
		// A split happened; the old max may have lost a holder.
		if ku == p.maxK || kv == p.maxK {
			p.maxCount--
			if p.maxCount == 0 {
				p.recount()
			}
		}
	}
}

// Converged reports whether no agent has logarithmic load above 0, i.e.
// the process has reached maximum load 1 (Lemma 8's terminal condition).
func (p *PowersProtocol) Converged() bool { return p.maxK <= 0 }

// MaxK returns the maximum logarithmic load.
func (p *PowersProtocol) MaxK() int16 { return p.maxK }

// TotalTokens returns Σ 2^k over non-empty agents (conserved).
func (p *PowersProtocol) TotalTokens() int64 {
	var s int64
	for _, k := range p.ks {
		if k >= 0 {
			s += int64(1) << uint(k)
		}
	}
	return s
}

// K returns agent i's logarithmic load.
func (p *PowersProtocol) K(i int) int16 { return p.ks[i] }

// Output returns agent i's logarithmic load (Outputter).
func (p *PowersProtocol) Output(i int) int64 { return int64(p.ks[i]) }

package balance

import (
	"math"
	"testing"
	"testing/quick"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestClassicalTruthTable(t *testing.T) {
	cases := []struct{ u, v, wantU, wantV int64 }{
		{0, 0, 0, 0},
		{5, 0, 2, 3},
		{0, 5, 2, 3},
		{3, 3, 3, 3},
		{7, 2, 4, 5},
		{1, 0, 0, 1},
	}
	for _, c := range cases {
		u, v := c.u, c.v
		Classical(&u, &v)
		if u != c.wantU || v != c.wantV {
			t.Errorf("Classical(%d,%d) = (%d,%d), want (%d,%d)", c.u, c.v, u, v, c.wantU, c.wantV)
		}
	}
}

func TestClassicalConservesAndBalances(t *testing.T) {
	// Properties: sum conserved, |u−v| ≤ 1 afterwards, u ≤ v (floor to
	// the initiator, ceil to the responder).
	err := quick.Check(func(a, b uint32) bool {
		u, v := int64(a), int64(b)
		sum := u + v
		Classical(&u, &v)
		return u+v == sum && v-u >= 0 && v-u <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoTruthTable(t *testing.T) {
	cases := []struct{ u, v, wantU, wantV int16 }{
		{3, Empty, 2, 2},     // split
		{Empty, 3, 2, 2},     // split, other side
		{1, Empty, 0, 0},     // split to single tokens
		{0, Empty, 0, Empty}, // load 1 cannot split
		{Empty, 0, Empty, 0},
		{Empty, Empty, Empty, Empty},
		{2, 2, 2, 2}, // both non-empty: no action
		{4, 0, 4, 0},
	}
	for _, c := range cases {
		u, v := c.u, c.v
		PowerOfTwo(&u, &v)
		if u != c.wantU || v != c.wantV {
			t.Errorf("PowerOfTwo(%d,%d) = (%d,%d), want (%d,%d)", c.u, c.v, u, v, c.wantU, c.wantV)
		}
	}
}

func TestPowerOfTwoConservesTokens(t *testing.T) {
	tokens := func(k int16) int64 {
		if k < 0 {
			return 0
		}
		return 1 << uint(k)
	}
	err := quick.Check(func(a, b int8) bool {
		u := int16(a % 20)
		v := int16(b % 20)
		if u < Empty {
			u = Empty
		}
		if v < Empty {
			v = Empty
		}
		before := tokens(u) + tokens(v)
		PowerOfTwo(&u, &v)
		return tokens(u)+tokens(v) == before
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClassicalProtocolConverges(t *testing.T) {
	p := NewClassicalPointMass(512, 10_000)
	res, err := sim.Run(p, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("classical balancing did not converge")
	}
	if p.SumLoads() != 10_000 {
		t.Fatalf("total load changed to %d", p.SumLoads())
	}
	if d := p.Discrepancy(); d > 2 {
		t.Fatalf("discrepancy %d after convergence", d)
	}
}

func TestClassicalTimeIsNLogN(t *testing.T) {
	for _, n := range []int{512, 2048, 8192} {
		p := NewClassicalPointMass(n, int64(4*n))
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		norm := float64(res.Interactions) / (float64(n) * math.Log(float64(n)))
		if !res.Converged || norm > 30 {
			t.Errorf("n=%d: classical balancing took %.1f × n ln n (converged=%v)",
				n, norm, res.Converged)
		}
	}
}

func TestPowersLemma8Completes(t *testing.T) {
	// Lemma 8: 2^κ ≤ ¾n tokens on one agent reach max load 1 within
	// 16·n·log₂ n interactions w.h.p.
	for _, n := range []int{512, 2048, 8192} {
		kappa := sim.Log2Floor(3 * n / 4)
		limit := int64(16 * float64(n) * math.Log2(float64(n)))
		p := NewPowers(n, kappa, true)
		want := p.TotalTokens()
		res, err := sim.Run(p, sim.Config{Seed: uint64(n), MaxInteractions: limit})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("n=%d κ=%d: max load still 2^%d after %d interactions",
				n, kappa, p.MaxK(), limit)
		}
		if got := p.TotalTokens(); got != want {
			t.Errorf("n=%d: token total changed from %d to %d", n, want, got)
		}
	}
}

func TestPowersOverloadKeepsBigAgent(t *testing.T) {
	// With 2^κ ≥ n tokens on n−1 participating agents, some agent must
	// keep load ≥ 2 forever (pigeonhole), so the process never converges.
	n := 256
	kappa := sim.Log2Ceil(n) // 2^κ ≥ n
	p := NewPowers(n, kappa, true)
	res, err := sim.Run(p, sim.Config{Seed: 3, MaxInteractions: int64(n) * 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || p.MaxK() < 1 {
		t.Fatalf("overloaded system converged to max load %d", p.MaxK())
	}
}

func TestPowersExcludedLeaderUntouched(t *testing.T) {
	p := NewPowers(64, 5, true)
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		u, v := r.Pair(64)
		p.Interact(u, v, r)
	}
	if p.K(0) != Empty {
		t.Fatalf("excluded leader load changed to %d", p.K(0))
	}
}

func TestNewPowersPanicsOnBadKappa(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kappa=-1")
		}
	}()
	NewPowers(8, -1, false)
}

package balance_test

import (
	"testing"

	"popcount/internal/balance"
	"popcount/internal/sim"
)

// TestSpecAgentMatchesPowersBitForBit pins the spec-derived powers-of-
// two balancing form against the hand-written simulation in Lemma 8's
// setting, excluded leader included: the Layout pins agents 0 and 1, so
// equal seeds must produce identical runs and per-agent loads.
func TestSpecAgentMatchesPowersBitForBit(t *testing.T) {
	const n = 512
	kappa := sim.Log2Floor(3 * n / 4)
	for _, excl := range []bool{false, true} {
		cfg := sim.Config{Seed: 0xBA1, CheckEvery: n, MaxInteractions: int64(n) * 1000}
		hand := balance.NewPowers(n, kappa, excl)
		handRes, err := sim.Run(hand, cfg)
		if err != nil {
			t.Fatal(err)
		}
		agent := sim.NewSpecAgent(balance.NewPowersSpec(n, kappa, excl))
		specRes, err := sim.Run(agent, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if handRes != specRes {
			t.Fatalf("excl=%v: results differ: hand %+v vs spec %+v", excl, handRes, specRes)
		}
		for i := 0; i < n; i++ {
			if got, want := agent.Output(i), hand.Output(i); got != want {
				t.Fatalf("excl=%v agent %d: spec load %d, hand-written %d", excl, i, got, want)
			}
		}
	}
}

// TestSpecAgentMatchesClassicalBitForBit pins the classical balancing
// spec against the hand-written simulation from a point mass.
func TestSpecAgentMatchesClassicalBitForBit(t *testing.T) {
	const n = 512
	const m = 10 * n
	cfg := sim.Config{Seed: 0xBA2, CheckEvery: n, MaxInteractions: int64(n) * 1000}
	hand := balance.NewClassicalPointMass(n, m)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(balance.NewClassicalPointMassSpec(n, m))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		if got, want := agent.Output(i), hand.Output(i); got != want {
			t.Fatalf("agent %d: spec load %d, hand-written %d", i, got, want)
		}
	}
}

// TestBalanceSpecsCountEngine runs both balancing specs on the count
// engines and checks the conserved quantities over the configuration
// view: Σ 2^k tokens for powers-of-two (and Lemma 8's terminal
// condition), Σ loads for classical (and discrepancy ≤ 2).
func TestBalanceSpecsCountEngine(t *testing.T) {
	const n = 4096
	kappa := sim.Log2Floor(3 * n / 4)
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"exact", false}, {"batched", true}} {
		e, err := sim.NewCountEngine(sim.NewSpecCount(balance.NewPowersSpec(n, kappa, true)),
			sim.Config{Seed: 0xBA3, CheckEvery: n, BatchSteps: mode.batch,
				MaxInteractions: int64(n) * 10000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("powers/%s: did not reach max load 1", mode.name)
		}
		var tokens int64
		e.Counts().ForEach(func(code uint64, cnt int64) {
			if k := int64(int8(code & 0x3f)); code&0x40 == 0 && k >= 1 {
				tokens += cnt << uint(k-1)
			}
		})
		if want := int64(1) << uint(kappa); tokens != want {
			t.Fatalf("powers/%s: Σ 2^k = %d, want %d", mode.name, tokens, want)
		}

		c, err := sim.NewCountEngine(sim.NewSpecCount(balance.NewClassicalPointMassSpec(n, 10*n)),
			sim.Config{Seed: 0xBA4, CheckEvery: n, BatchSteps: mode.batch,
				MaxInteractions: int64(n) * 10000})
		if err != nil {
			t.Fatal(err)
		}
		res, err = c.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("classical/%s: discrepancy did not reach ≤ 2", mode.name)
		}
		var sum int64
		c.Counts().ForEach(func(code uint64, cnt int64) { sum += int64(code) * cnt })
		if sum != int64(10*n) {
			t.Fatalf("classical/%s: Σ loads = %d, want %d", mode.name, sum, 10*n)
		}
	}
}

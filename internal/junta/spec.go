package junta

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// State codes for the spec pack the (level, active, junta) triplet into
// 8 bits: level in the low 6 (MaxLevel = 63), then the active and junta
// flags.
const (
	codeActive = 1 << 6
	codeJunta  = 1 << 7
)

// Encode packs an agent state into its spec state code.
func Encode(s State) uint64 {
	c := uint64(s.Level)
	if s.Active {
		c |= codeActive
	}
	if s.Junta {
		c |= codeJunta
	}
	return c
}

// Decode unpacks a spec state code.
func Decode(c uint64) State {
	return State{
		Level:  uint8(c & (codeActive - 1)),
		Active: c&codeActive != 0,
		Junta:  c&codeJunta != 0,
	}
}

// NewSpec returns the canonical transition spec of the junta process
// over n agents. The transition is deterministic and depends only on
// the two (level, active, junta) triplets, so agents sharing a triplet
// are exchangeable and the count view is exact. The occupied alphabet
// stays tiny — levels reach log log n + O(1) — and pairs of inactive
// agents on equal levels are certain no-ops, so the spec opts into the
// count engine's self-loop skip path (with the no-op predicate derived
// from the rule itself).
func NewSpec(n int) *sim.Spec {
	return &sim.Spec{
		Name: "junta",
		N:    n,
		// The (level, active, junta) packing covers exactly 8 bits, and
		// the rule is total and deterministic over all of them, so the
		// agent adapter precompiles the flat successor table.
		Domain: 256,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{Encode(InitState()): int64(n)}
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			su, sv := Decode(qu), Decode(qv)
			Interact(&su, &sv)
			return Encode(su), Encode(sv)
		},
		Skip:      true,
		PureDelta: true,
		Converged: func(v sim.ConfigView) bool {
			done := true
			v.ForEach(func(code uint64, _ int64) {
				if code&codeActive != 0 {
					done = false
				}
			})
			return done
		},
		Output: func(q uint64) int64 { return int64(Decode(q).Level) },
	}
}

// MaxLevelInView returns the maximal level over a configuration's
// occupied states (the configuration-level analogue of
// Protocol.MaxLevelReached).
func MaxLevelInView(v sim.ConfigView) int {
	m := 0
	v.ForEach(func(code uint64, _ int64) {
		if l := int(Decode(code).Level); l > m {
			m = l
		}
	})
	return m
}

// JuntaSizeInView returns the number of agents on the maximal level with
// the junta bit set (the configuration-level analogue of
// Protocol.JuntaSize).
func JuntaSizeInView(v sim.ConfigView) int64 {
	m := MaxLevelInView(v)
	var sz int64
	v.ForEach(func(code uint64, cnt int64) {
		s := Decode(code)
		if int(s.Level) == m && s.Junta {
			sz += cnt
		}
	})
	return sz
}

package junta

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// State codes for the count form pack the (level, active, junta) triplet
// into 8 bits: level in the low 6 (MaxLevel = 63), then the active and
// junta flags.
const (
	codeActive = 1 << 6
	codeJunta  = 1 << 7
)

// encode packs an agent state into its count-form code.
func encode(s State) uint64 {
	c := uint64(s.Level)
	if s.Active {
		c |= codeActive
	}
	if s.Junta {
		c |= codeJunta
	}
	return c
}

// decode unpacks a count-form code.
func decode(c uint64) State {
	return State{
		Level:  uint8(c & (codeActive - 1)),
		Active: c&codeActive != 0,
		Junta:  c&codeJunta != 0,
	}
}

// Counts is the configuration-level (count-based) form of Protocol for
// sim.CountEngine. The junta transition is deterministic and depends
// only on the two (level, active, junta) triplets, so agents sharing a
// triplet are exchangeable and the count view is exact. The occupied
// alphabet stays tiny — levels reach log log n + O(1) — and pairs of
// inactive agents on equal levels are certain no-ops, so the protocol
// implements sim.SelfLooper.
type Counts struct{ n int }

// NewCounts returns the count form of the junta process over n agents.
func NewCounts(n int) *Counts { return &Counts{n: n} }

// N returns the population size.
func (p *Counts) N() int { return p.n }

// InitCounts returns the initial configuration: every agent active on
// level 0 with the junta bit set.
func (p *Counts) InitCounts() map[uint64]int64 {
	return map[uint64]int64{encode(InitState()): int64(p.n)}
}

// Delta applies the junta transition to a state pair (it is
// deterministic; the generator is unused).
func (p *Counts) Delta(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
	su, sv := decode(qu), decode(qv)
	Interact(&su, &sv)
	return encode(su), encode(sv)
}

// DeltaDet exposes the transition matrix for batch stepping
// (sim.DeterministicDelta): the junta transition is deterministic and
// coin-free for every pair.
func (p *Counts) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	a, b := p.Delta(qu, qv, nil)
	return a, b, true
}

// SelfLoop reports whether the (deterministic) transition leaves both
// states unchanged.
func (p *Counts) SelfLoop(qu, qv uint64) bool {
	a, b := p.Delta(qu, qv, nil)
	return a == qu && b == qv
}

// CountConverged reports whether all agents are inactive.
func (p *Counts) CountConverged(c *sim.CountConfig) bool {
	done := true
	c.ForEach(func(code uint64, _ int64) {
		if code&codeActive != 0 {
			done = false
		}
	})
	return done
}

// MaxLevelInConfig returns the maximal level over a configuration's
// occupied states (the count-form analogue of Protocol.MaxLevelReached).
func MaxLevelInConfig(c *sim.CountConfig) int {
	m := 0
	c.ForEach(func(code uint64, _ int64) {
		if l := int(decode(code).Level); l > m {
			m = l
		}
	})
	return m
}

// JuntaSizeInConfig returns the number of agents on the maximal level
// with the junta bit set (the count-form analogue of
// Protocol.JuntaSize).
func JuntaSizeInConfig(c *sim.CountConfig) int64 {
	m := MaxLevelInConfig(c)
	var sz int64
	c.ForEach(func(code uint64, cnt int64) {
		s := decode(code)
		if int(s.Level) == m && s.Junta {
			sz += cnt
		}
	})
	return sz
}

package junta

import (
	"math"
	"testing"
	"testing/quick"

	"popcount/internal/sim"
)

func TestInitState(t *testing.T) {
	s := InitState()
	if s.Level != 0 || !s.Active || !s.Junta {
		t.Fatalf("InitState = %+v, want level 0 active junta", s)
	}
}

func TestInteractTruthTable(t *testing.T) {
	mk := func(l uint8, a, j bool) State { return State{Level: l, Active: a, Junta: j} }
	cases := []struct {
		name  string
		u, v  State
		wantU State
		wantV State
	}{
		{
			name:  "both active same level advance",
			u:     mk(2, true, true),
			v:     mk(2, true, true),
			wantU: mk(3, true, true),
			wantV: mk(3, true, true),
		},
		{
			name:  "active meets lower active: both deactivate, lower loses junta",
			u:     mk(3, true, true),
			v:     mk(1, true, true),
			wantU: mk(3, false, true),
			wantV: mk(3, false, false), // deactivates, clears junta, adopts level
		},
		{
			name:  "active meets inactive same level: deactivate",
			u:     mk(2, true, true),
			v:     mk(2, false, false),
			wantU: mk(2, false, true),
			wantV: mk(2, false, false),
		},
		{
			name:  "inactive adopts higher level and clears junta",
			u:     mk(1, false, true),
			v:     mk(4, false, false),
			wantU: mk(4, false, false),
			wantV: mk(4, false, false),
		},
		{
			name:  "inactive pair same level: no change",
			u:     mk(3, false, false),
			v:     mk(3, false, true),
			wantU: mk(3, false, false),
			wantV: mk(3, false, true),
		},
	}
	for _, c := range cases {
		u, v := c.u, c.v
		Interact(&u, &v)
		if u != c.wantU || v != c.wantV {
			t.Errorf("%s: got u=%+v v=%+v, want u=%+v v=%+v", c.name, u, v, c.wantU, c.wantV)
		}
	}
}

func TestLevelMonotoneAndJuntaMonotone(t *testing.T) {
	// Properties: an agent's level never decreases, the junta bit never
	// flips back on, and an inactive agent never reactivates.
	err := quick.Check(func(lu, lv uint8, au, av, ju, jv bool) bool {
		u := State{Level: lu % 10, Active: au, Junta: ju}
		v := State{Level: lv % 10, Active: av, Junta: jv}
		pu, pv := u, v
		Interact(&u, &v)
		okLevel := u.Level >= pu.Level && v.Level >= pv.Level
		okJunta := (pu.Junta || !u.Junta) && (pv.Junta || !v.Junta)
		okActive := (pu.Active || !u.Active) && (pv.Active || !v.Active)
		return okLevel && okJunta && okActive
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxLevelCap(t *testing.T) {
	u := State{Level: MaxLevel, Active: true, Junta: true}
	v := State{Level: MaxLevel, Active: true, Junta: true}
	Interact(&u, &v)
	if u.Level != MaxLevel || v.Level != MaxLevel {
		t.Fatalf("level exceeded cap: %d %d", u.Level, v.Level)
	}
}

func TestProcessSettles(t *testing.T) {
	p := New(1000)
	res, err := sim.Run(p, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("junta process did not settle")
	}
	if p.SettleTime() <= 0 {
		t.Fatalf("settle time %d", p.SettleTime())
	}
	if p.JuntaSize() < 1 {
		t.Fatal("empty junta")
	}
}

func TestLevelWindowLemma4(t *testing.T) {
	// Lemma 4: log log n − 4 ≤ level* ≤ log log n + 8 w.h.p., and the
	// number of agents on the maximal level is O(√n log n).
	for _, n := range []int{1 << 10, 1 << 13, 1 << 15} {
		loglogn := math.Log2(math.Log2(float64(n)))
		for trial := 0; trial < 3; trial++ {
			p := New(n)
			res, err := sim.Run(p, sim.Config{Seed: uint64(10*n + trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d: did not settle", n)
			}
			lvl := float64(p.MaxLevelReached())
			if lvl < loglogn-4 || lvl > loglogn+8 {
				t.Errorf("n=%d: level* = %v outside [loglogn-4, loglogn+8] = [%.2f, %.2f]",
					n, lvl, loglogn-4, loglogn+8)
			}
			// After settling, every agent has adopted the max level, so
			// Lemma 4's O(sqrt(n) log n) bound on "agents on the maximal
			// level" refers to those that climbed there actively — the
			// agents whose junta bit is still set.
			bound := 8 * math.Sqrt(float64(n)) * math.Log2(float64(n))
			if sz := float64(p.JuntaSize()); sz < 1 || sz > bound {
				t.Errorf("n=%d: junta size %v outside [1, %.0f]", n, sz, bound)
			}
		}
	}
}

func TestSettleTimeIsNLogN(t *testing.T) {
	// Lemma 4: all agents inactive within O(n log n) interactions.
	for _, n := range []int{1 << 10, 1 << 13} {
		p := New(n)
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		norm := float64(res.Interactions) / (float64(n) * math.Log(float64(n)))
		if !res.Converged || norm > 20 {
			t.Errorf("n=%d: settle time %.1f × n ln n (converged=%v)", n, norm, res.Converged)
		}
	}
}

// Package junta implements the junta process from Section 2 of the paper
// (Lemma 4, following [GS18] and [BEFKKR18]).
//
// Every agent starts active on level 0 with its junta bit set. If an
// active agent interacts with an active agent on the same level it
// increases its level; otherwise it becomes inactive. Inactive agents
// adopt the higher level of their partner. Whenever an agent meets a
// partner on a strictly higher level it clears its junta bit. The process
// stabilizes when all agents are inactive; the junta consists of the
// agents that reached the maximal level with their junta bit still set.
//
// W.h.p. the maximal level lies in [log log n − 4, log log n + 8], the
// number of agents on the maximal level is O(√n · log n), and all agents
// become inactive within O(n log n) interactions.
package junta

import "popcount/internal/rng"

// MaxLevel caps the level variable. Levels reach ≈ log log n + O(1), so
// 63 is unreachable for any physical population; the cap only guards the
// fixed-width representation.
const MaxLevel = 63

// State is the per-agent state of the junta process: the triplet
// (level, active, junta), initially (0, true, true).
type State struct {
	Level  uint8
	Active bool
	Junta  bool
}

// InitState returns the initial agent state (0, active, junta).
func InitState() State { return State{Level: 0, Active: true, Junta: true} }

// Interact applies the junta transition to both endpoints of an
// interaction, using the pre-interaction states on both sides (the
// standard simultaneous-update convention for δ: Q×Q → Q×Q).
func Interact(u, v *State) {
	pu, pv := *u, *v
	step(u, pv)
	step(v, pu)
}

// step updates one endpoint w given its partner's pre-interaction state p.
func step(w *State, p State) {
	if p.Level > w.Level {
		w.Junta = false
	}
	if w.Active {
		if p.Active && p.Level == w.Level {
			if w.Level < MaxLevel {
				w.Level++
			}
		} else {
			w.Active = false
		}
	}
	if !w.Active && p.Level > w.Level {
		w.Level = p.Level
	}
}

// Protocol is a standalone simulation wrapper for measuring the junta
// process (experiment E2).
type Protocol struct {
	states   []State
	active   int
	settleAt int64
	t        int64
}

// New returns a junta process over n agents.
func New(n int) *Protocol {
	s := make([]State, n)
	for i := range s {
		s[i] = InitState()
	}
	return &Protocol{states: s, active: n, settleAt: -1}
}

// N returns the population size.
func (p *Protocol) N() int { return len(p.states) }

// Interact applies one transition.
func (p *Protocol) Interact(u, v int, _ *rng.Rand) {
	p.t++
	au, av := p.states[u].Active, p.states[v].Active
	Interact(&p.states[u], &p.states[v])
	if au && !p.states[u].Active {
		p.active--
	}
	if av && !p.states[v].Active {
		p.active--
	}
	if p.active == 0 && p.settleAt < 0 {
		p.settleAt = p.t
	}
}

// Converged reports whether all agents are inactive.
func (p *Protocol) Converged() bool { return p.active == 0 }

// SettleTime returns the interaction at which the last agent became
// inactive, or -1 if some agent is still active.
func (p *Protocol) SettleTime() int64 { return p.settleAt }

// MaxLevelReached returns the maximal level over all agents.
func (p *Protocol) MaxLevelReached() int {
	m := 0
	for i := range p.states {
		if int(p.states[i].Level) > m {
			m = int(p.states[i].Level)
		}
	}
	return m
}

// JuntaSize returns the number of agents on the maximal level with the
// junta bit set — the size of the elected junta.
func (p *Protocol) JuntaSize() int {
	m := p.MaxLevelReached()
	c := 0
	for i := range p.states {
		if int(p.states[i].Level) == m && p.states[i].Junta {
			c++
		}
	}
	return c
}

// OnMaxLevel returns the number of agents on the maximal level.
func (p *Protocol) OnMaxLevel() int {
	m := p.MaxLevelReached()
	c := 0
	for i := range p.states {
		if int(p.states[i].Level) == m {
			c++
		}
	}
	return c
}

// State returns a copy of agent i's state.
func (p *Protocol) State(i int) State { return p.states[i] }

// Package service implements popcountd's simulation-as-a-service
// layer: an HTTP/JSON job API over a bounded worker pool, with a
// content-addressed result cache and checkpointable jobs.
//
// Jobs are identified by the SHA-256 fingerprint of their canonical
// request, so identical submissions — concurrent or months apart —
// dedup onto one job and one stored result document, served
// byte-identical from disk. Single-trial jobs checkpoint their engine
// state (popcount.Simulation snapshots) to the state directory at a
// configurable interaction interval; a daemon that crashes or drains
// mid-job requeues the job on restart and resumes from the checkpoint
// bit-for-bit — the resumed trajectory, and therefore the result
// document, is identical to an uninterrupted run's.
//
//	POST   /v1/jobs           submit (dedups by fingerprint)
//	GET    /v1/jobs/{id}        status
//	GET    /v1/jobs/{id}/result stored result document (exact bytes)
//	GET    /v1/jobs/{id}/events NDJSON event stream, live until terminal
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"popcount"
)

// Config configures a Server.
type Config struct {
	// Dir is the state directory (job records, results, checkpoints).
	Dir string
	// Workers is the worker-pool size (default 2).
	Workers int
	// CheckpointEvery is the interaction interval between engine
	// checkpoints of single-trial jobs (default 1<<22). Smaller values
	// bound the work lost to a crash at the cost of more snapshot I/O.
	CheckpointEvery int64
}

// Server owns the job registry, the worker pool, and the state
// directory. Create with New, serve Handler, stop with Shutdown
// (graceful drain) — or Abort in tests to simulate a crash.
type Server struct {
	st      *store
	met     metrics
	cpEvery int64
	// beforeRun, when non-nil, runs at the top of every job dispatch,
	// inside the worker's panic guard. Tests use it to inject faults
	// into the worker itself.
	beforeRun func(*Job)

	mu   sync.Mutex
	jobs map[string]*Job

	queue    chan *Job
	draining chan struct{}
	drainOne sync.Once
	aborted  chan struct{}
	abortOne sync.Once
	wg       sync.WaitGroup

	mux *http.ServeMux
}

// New opens (or creates) the state directory, recovers persisted jobs
// — interrupted ones are requeued and resume from their checkpoints —
// and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1 << 22
	}
	st, err := newStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		st:       st,
		cpEvery:  cfg.CheckpointEvery,
		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, 4096),
		draining: make(chan struct{}),
		aborted:  make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover rebuilds the registry from persisted job records. Jobs that
// were queued or running when the previous process died go back on the
// queue; their checkpoints (if any) make the rerun a resume.
func (s *Server) recover() error {
	recs, err := s.st.loadJobs()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		j := newJob(rec.ID, rec.Req)
		switch {
		case rec.State.Terminal():
			j.mu.Lock()
			j.state = rec.State
			j.errMsg = rec.Err
			j.cached = rec.Cached
			j.appendEventLocked(Event{Type: string(rec.State), Message: rec.Err})
			j.mu.Unlock()
		default:
			// queued or running: requeue. The state transition is
			// persisted so a crash loop cannot strand a job as "running".
			if rec.State != JobQueued {
				s.persist(j)
			}
			select {
			case s.queue <- j:
			default:
				j.setState(JobFailed, "recovery queue overflow")
				s.persist(j)
			}
		}
		s.jobs[rec.ID] = j
	}
	return nil
}

// Handler returns the HTTP handler of the job API.
func (s *Server) Handler() http.Handler { return s.mux }

// persist writes the job's current record to the state directory.
func (s *Server) persist(j *Job) {
	state, errMsg, cached := j.Snapshot()
	rec := jobRecord{ID: j.ID, Req: j.Req, State: state, Err: errMsg, Cached: cached}
	if err := s.st.saveJob(rec); err != nil {
		// Persistence failures degrade durability, not availability:
		// the job continues in memory and is reported via its record.
		j.emit(Event{Type: "progress", Message: "warning: state persist failed: " + err.Error()})
	}
}

// drainRequested reports whether Shutdown has begun.
func (s *Server) drainRequested() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Shutdown drains the worker pool gracefully: running single-trial
// jobs write a final checkpoint and requeue (persisted as queued, so
// the next start resumes them); running ensembles requeue from
// scratch. It returns once every worker has exited.
func (s *Server) Shutdown() {
	s.drainOne.Do(func() { close(s.draining) })
	s.wg.Wait()
}

// jobStatus is the wire form of GET /v1/jobs/{id} and the submit
// response.
type jobStatus struct {
	ID     string     `json:"id"`
	State  JobState   `json:"state"`
	Cached bool       `json:"cached,omitempty"`
	Error  string     `json:"error,omitempty"`
	Req    JobRequest `json:"request"`
}

func (s *Server) statusOf(j *Job) jobStatus {
	state, errMsg, cached := j.Snapshot()
	return jobStatus{ID: j.ID, State: state, Cached: cached, Error: errMsg, Req: j.Req}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// errorStatus maps an error to its HTTP status: popcount's typed
// validation sentinels are client mistakes (400), everything else is a
// server fault (500).
func errorStatus(err error) int {
	switch {
	case errors.Is(err, popcount.ErrInvalidN),
		errors.Is(err, popcount.ErrUnknownAlgorithm),
		errors.Is(err, popcount.ErrUnsupportedEngine),
		errors.Is(err, popcount.ErrNotSnapshottable),
		errors.Is(err, popcount.ErrBadFaultPlan),
		errors.Is(err, popcount.ErrBadScheduler):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid request body: " + err.Error()})
		return
	}
	req, err := req.Canonicalize()
	if err != nil {
		writeJSON(w, errorStatus(err), apiError{Error: err.Error()})
		return
	}
	id := req.Fingerprint()

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		// In-flight dedup (queued/running) or a warm cache hit (done).
		s.mu.Unlock()
		if state, _, _ := j.Snapshot(); state == JobDone {
			s.met.cacheHits.Add(1)
		}
		writeJSON(w, http.StatusOK, s.statusOf(j))
		return
	}
	if s.st.hasResult(id) {
		// Cold cache hit: a previous process already computed this
		// request. Register a done job backed by the stored document.
		j := newJob(id, req)
		j.mu.Lock()
		j.state = JobDone
		j.cached = true
		j.appendEventLocked(Event{Type: string(JobDone), Message: "served from result cache"})
		j.mu.Unlock()
		s.jobs[id] = j
		s.mu.Unlock()
		s.persist(j)
		s.met.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, s.statusOf(j))
		return
	}
	if s.drainRequested() {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	j := newJob(id, req)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "job queue full"})
		return
	}
	s.jobs[id] = j
	s.mu.Unlock()
	s.persist(j)
	s.met.cacheMisses.Add(1)
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

// jobFor resolves the {id} path parameter.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	if err := validateID(id); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job " + id})
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.statusOf(j))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	state, errMsg, _ := j.Snapshot()
	switch state {
	case JobDone:
		data := s.st.readResult(j.ID)
		if data == nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: "result document missing from store"})
			return
		}
		// The stored bytes are served verbatim: identical requests get
		// byte-identical responses, however many daemons ago the result
		// was computed.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case JobFailed:
		writeJSON(w, http.StatusConflict, apiError{Error: "job failed: " + errMsg})
	default:
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: state " + string(state)})
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	for {
		evs, change, terminal := j.eventsSince(seq)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		seq += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// Drain any events appended between eventsSince and here on
			// the next loop; terminal states append their event before
			// flipping state, so once terminal is observed the log tail
			// reached us.
			if evs2, _, _ := j.eventsSince(seq); len(evs2) == 0 {
				return
			}
			continue
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		case <-s.draining:
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.Cancel()
	s.persist(j)
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// store is the daemon's on-disk state: job records, content-addressed
// result documents, and engine checkpoints. Every write is atomic
// (temp file + rename in the same directory), so a crash mid-write
// leaves the previous version intact — the recovery path never sees a
// torn file.
//
//	<dir>/jobs/<id>.json        job record (request + state)
//	<dir>/results/<id>.json     result document, exact served bytes
//	<dir>/checkpoints/<id>.ckpt latest engine checkpoint
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	for _, sub := range []string{"jobs", "results", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &store{dir: dir}, nil
}

// atomicWrite writes data to path via a temp file + rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// jobRecord is the persisted form of a job.
type jobRecord struct {
	ID     string     `json:"id"`
	Req    JobRequest `json:"request"`
	State  JobState   `json:"state"`
	Err    string     `json:"error,omitempty"`
	Cached bool       `json:"cached,omitempty"`
}

func (st *store) jobPath(id string) string {
	return filepath.Join(st.dir, "jobs", id+".json")
}

func (st *store) resultPath(id string) string {
	return filepath.Join(st.dir, "results", id+".json")
}

func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.dir, "checkpoints", id+".ckpt")
}

func (st *store) saveJob(rec jobRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicWrite(st.jobPath(rec.ID), data)
}

// loadJobs reads every persisted job record. Unreadable or malformed
// records are skipped with an error note rather than failing startup —
// one corrupt record must not take the daemon down.
func (st *store) loadJobs() ([]jobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// saveResult stores a finished job's exact response bytes.
func (st *store) saveResult(id string, data []byte) error {
	return atomicWrite(st.resultPath(id), data)
}

// readResult returns the stored response bytes, or nil if absent.
func (st *store) readResult(id string) []byte {
	data, err := os.ReadFile(st.resultPath(id))
	if err != nil {
		return nil
	}
	return data
}

// hasResult reports whether a result document is stored for id.
func (st *store) hasResult(id string) bool {
	_, err := os.Stat(st.resultPath(id))
	return err == nil
}

// saveCheckpoint stores the latest engine checkpoint for a job.
func (st *store) saveCheckpoint(id string, blob []byte) error {
	return atomicWrite(st.checkpointPath(id), blob)
}

// readCheckpoint returns the stored checkpoint, or nil if absent.
func (st *store) readCheckpoint(id string) []byte {
	data, err := os.ReadFile(st.checkpointPath(id))
	if err != nil {
		return nil
	}
	return data
}

// removeCheckpoint deletes a job's checkpoint (after completion).
func (st *store) removeCheckpoint(id string) {
	os.Remove(st.checkpointPath(id))
}

// validateID guards path construction against traversal: job IDs are
// hex fingerprints, nothing else reaches the filesystem.
func validateID(id string) error {
	if len(id) != 64 {
		return fmt.Errorf("malformed job id %q", id)
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("malformed job id %q", id)
		}
	}
	return nil
}

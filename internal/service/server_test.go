package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer spins up a service instance over httptest.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func submit(t *testing.T, base string, req JobRequest) (jobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, base, id string, want JobState) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %q (error %q), want %q", st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job did not reach %q in time", want)
	return jobStatus{}
}

func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// streamEventsUntil reads the NDJSON event stream until an event of
// the wanted type arrives, returning every event read.
func streamEventsUntil(t *testing.T, base, id, wantType string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
		if e.Type == wantType {
			return evs
		}
	}
	t.Fatalf("stream ended without %q event; got %+v", wantType, evs)
	return nil
}

// TestSubmitRunFetchStream is the core acceptance path: submit over
// HTTP, stream at least one event, fetch the parsed result document.
func TestSubmitRunFetchStream(t *testing.T) {
	_, hs := testServer(t, Config{})
	req := JobRequest{Algorithm: "approximate", N: 4096, Seed: 7, Engine: "count"}
	st, code := submit(t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st.ID == "" || st.Req.Trials != 1 || st.Req.Seed != 7 {
		t.Fatalf("bad submit response %+v", st)
	}

	evs := streamEventsUntil(t, hs.URL, st.ID, "done")
	if len(evs) < 2 || evs[0].Type != "queued" {
		t.Fatalf("event log should open with queued: %+v", evs)
	}

	waitState(t, hs.URL, st.ID, JobDone)
	var doc ResultDoc
	if err := json.Unmarshal(getResult(t, hs.URL, st.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Trials) != 1 || !doc.Trials[0].Converged {
		t.Fatalf("unexpected result document: %+v", doc)
	}
	if doc.Trials[0].Estimate < 2048 || doc.Trials[0].Estimate > 8192 {
		t.Fatalf("estimate %d far from n=4096", doc.Trials[0].Estimate)
	}
	if doc.Request.Algorithm != "approximate" || doc.Request.Engine != "count" {
		t.Fatalf("document request not canonicalized: %+v", doc.Request)
	}
}

// TestCacheByteIdentical pins the content-addressed cache: an
// identical resubmission is answered from the stored document, byte
// for byte, and /metrics records the hit.
func TestCacheByteIdentical(t *testing.T) {
	_, hs := testServer(t, Config{})
	req := JobRequest{Algorithm: "approximate", N: 2048, Seed: 3, Engine: "count"}
	st, _ := submit(t, hs.URL, req)
	waitState(t, hs.URL, st.ID, JobDone)
	first := getResult(t, hs.URL, st.ID)

	// Resubmit with an equivalent-but-differently-spelled request:
	// defaults spelled out, mixed-case algorithm.
	st2, code := submit(t, hs.URL, JobRequest{
		Algorithm: "Approximate", N: 2048, Seed: 3, Engine: "count", Trials: 1,
	})
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d", code)
	}
	if st2.ID != st.ID {
		t.Fatalf("equivalent request got a different job: %s vs %s", st2.ID, st.ID)
	}
	if st2.State != JobDone {
		t.Fatalf("resubmit state %q, want done", st2.State)
	}
	second := getResult(t, hs.URL, st.ID)
	if !bytes.Equal(first, second) {
		t.Fatal("cached result bytes differ from original")
	}
	metrics := getText(t, hs.URL+"/metrics")
	if !strings.Contains(metrics, "popcountd_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", metrics)
	}
	if !strings.Contains(metrics, `popcountd_jobs{state="done"} 1`) {
		t.Fatalf("metrics missing done gauge:\n%s", metrics)
	}
}

// TestEnsembleJob runs a trials>1 job end to end and checks the
// aggregate block.
func TestEnsembleJob(t *testing.T) {
	_, hs := testServer(t, Config{})
	st, _ := submit(t, hs.URL, JobRequest{
		Algorithm: "approximate", N: 1024, Seed: 5, Engine: "count", Trials: 4,
	})
	waitState(t, hs.URL, st.ID, JobDone)
	var doc ResultDoc
	if err := json.Unmarshal(getResult(t, hs.URL, st.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Trials) != 4 || doc.Stats.Trials != 4 {
		t.Fatalf("want 4 trials, got %+v", doc.Stats)
	}
	if doc.Stats.Converged != 4 {
		t.Fatalf("ensemble convergence: %+v", doc.Stats)
	}
}

// TestValidationErrors pins the 400 mapping of the typed sentinels.
func TestValidationErrors(t *testing.T) {
	_, hs := testServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown algorithm", `{"algorithm":"parity","n":100}`},
		{"invalid n", `{"algorithm":"approximate","n":1}`},
		{"tokenbag on count engine", `{"algorithm":"tokenbag","n":100,"engine":"count"}`},
		{"count engine alias typo", `{"algorithm":"approximate","n":100,"engine":"counting"}`},
		{"unknown field", `{"algorithm":"approximate","n":100,"bogus":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var ae apiError
			if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
				t.Fatalf("400 body should carry an error message (err %v)", err)
			}
		})
	}
}

// TestCancelMidRun cancels a long-running job via DELETE and checks it
// lands in cancelled with a terminal event.
func TestCancelMidRun(t *testing.T) {
	_, hs := testServer(t, Config{})
	st, _ := submit(t, hs.URL, JobRequest{
		Algorithm: "approximate", N: 1 << 18, Seed: 2, Engine: "count",
	})
	waitState(t, hs.URL, st.ID, JobRunning)
	delReq, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(delReq); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getStatus(t, hs.URL, st.ID); st.State == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job not cancelled in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	evs := streamEventsUntil(t, hs.URL, st.ID, string(JobCancelled))
	if len(evs) == 0 {
		t.Fatal("no events")
	}
}

// TestCrashRecoveryBitForBit is the tentpole acceptance test: a job
// killed mid-run (simulated SIGKILL via Abort) resumes from its last
// checkpoint under a fresh server over the same state directory, and
// the final result document is byte-identical to an uninterrupted
// run's.
func TestCrashRecoveryBitForBit(t *testing.T) {
	req := JobRequest{Algorithm: "approximate", N: 2048, Seed: 42, Engine: "count"}

	// Reference: uninterrupted run in its own state directory.
	_, refHS := testServer(t, Config{})
	refSt, _ := submit(t, refHS.URL, req)
	waitState(t, refHS.URL, refSt.ID, JobDone)
	want := getResult(t, refHS.URL, refSt.ID)

	// Interrupted run: checkpoint early and often, kill after the
	// first checkpoint lands.
	dir := t.TempDir()
	srvA, hsA := testServer(t, Config{Dir: dir, CheckpointEvery: 50_000})
	stA, _ := submit(t, hsA.URL, req)
	if stA.ID != refSt.ID {
		t.Fatalf("fingerprint mismatch across servers: %s vs %s", stA.ID, refSt.ID)
	}
	streamEventsUntil(t, hsA.URL, stA.ID, "checkpoint")
	srvA.Abort() // SIGKILL equivalent: no drain, no final checkpoint
	hsA.Close()

	// Recovery: a fresh daemon over the same state directory requeues
	// the job and resumes it from the checkpoint.
	_, hsB := testServer(t, Config{Dir: dir, CheckpointEvery: 50_000})
	waitState(t, hsB.URL, stA.ID, JobDone)
	got := getResult(t, hsB.URL, stA.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed result differs from uninterrupted run\nwant: %s\ngot:  %s", want, got)
	}
	evs := streamEventsUntil(t, hsB.URL, stA.ID, "done")
	resumed := false
	for _, e := range evs {
		if e.Type == "resumed" {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("recovered job did not resume from a checkpoint")
	}
	metrics := getText(t, hsB.URL+"/metrics")
	if !strings.Contains(metrics, "popcountd_resumes_total 1") {
		t.Fatalf("metrics missing resume:\n%s", metrics)
	}
}

// TestGracefulDrainRequeues pins Shutdown semantics: a running job is
// checkpointed, persisted as queued, and finishes under the next
// server with its progress intact.
func TestGracefulDrainRequeues(t *testing.T) {
	req := JobRequest{Algorithm: "approximate", N: 2048, Seed: 9, Engine: "count"}
	dir := t.TempDir()
	srvA, hsA := testServer(t, Config{Dir: dir, CheckpointEvery: 50_000})
	st, _ := submit(t, hsA.URL, req)
	streamEventsUntil(t, hsA.URL, st.ID, "checkpoint")
	srvA.Shutdown()
	if got := getStatus(t, hsA.URL, st.ID); got.State != JobQueued {
		t.Fatalf("drained job state %q, want queued", got.State)
	}
	hsA.Close()

	_, hsB := testServer(t, Config{Dir: dir})
	waitState(t, hsB.URL, st.ID, JobDone)
	evs := streamEventsUntil(t, hsB.URL, st.ID, "done")
	resumed := false
	for _, e := range evs {
		if e.Type == "resumed" {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("drained job did not resume from its checkpoint")
	}
}

// TestFingerprintCanonicalization: spelled-out defaults and case
// variants hash identically; dynamics changes do not.
func TestFingerprintCanonicalization(t *testing.T) {
	base, err := JobRequest{Algorithm: "approximate", N: 500}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	same, err := JobRequest{Algorithm: "APPROXIMATE", N: 500, Trials: 1, Seed: 1, Engine: "agent"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("equivalent requests hash differently")
	}
	diff, err := JobRequest{Algorithm: "approximate", N: 500, Seed: 2}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == diff.Fingerprint() {
		t.Fatal("different seeds hash identically")
	}
}

// TestUnknownJobRoutes pins 404/400 handling of the job routes.
func TestUnknownJobRoutes(t *testing.T) {
	_, hs := testServer(t, Config{})
	id := strings.Repeat("ab", 32)
	for _, path := range []string{"/v1/jobs/" + id, "/v1/jobs/" + id + "/result", "/v1/jobs/" + id + "/events"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound &&
		resp.StatusCode != http.StatusMovedPermanently {
		t.Fatalf("traversal id: status %d", resp.StatusCode)
	}
}

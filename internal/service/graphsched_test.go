package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSchedulerJobEndToEnd runs a graph-restricted job through the
// HTTP API: the spec reaches the engine, the run completes, and the
// fingerprint separates graph-restricted from uniform submissions.
func TestSchedulerJobEndToEnd(t *testing.T) {
	_, hs := testServer(t, Config{})
	req := JobRequest{Algorithm: "approximate", N: 512, Seed: 7, Scheduler: "ring",
		MaxInteractions: 300_000}
	st, code := submit(t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st.Req.Scheduler != "ring" {
		t.Fatalf("scheduler lost in canonicalization: %+v", st.Req)
	}
	waitState(t, hs.URL, st.ID, JobDone)
	var doc ResultDoc
	if err := json.Unmarshal(getResult(t, hs.URL, st.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Request.Scheduler != "ring" {
		t.Fatal("result document dropped the scheduler")
	}

	// The same request under the uniform default is a different job.
	plain := req
	plain.Scheduler = ""
	stPlain, _ := submit(t, hs.URL, plain)
	if stPlain.ID == st.ID {
		t.Fatal("ring and uniform requests share a fingerprint")
	}
}

// TestSchedulerFingerprint pins the cache-key behavior of scheduler
// specs: explicit uniform hashes like an absent field, non-canonical
// spellings fold to the canonical form, and spec changes change the
// hash.
func TestSchedulerFingerprint(t *testing.T) {
	canon := func(r JobRequest) JobRequest {
		t.Helper()
		c, err := r.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	plain := canon(JobRequest{Algorithm: "approximate", N: 500})
	uniform := canon(JobRequest{Algorithm: "approximate", N: 500, Scheduler: " UNIFORM "})
	if uniform.Scheduler != "" || uniform.Fingerprint() != plain.Fingerprint() {
		t.Fatal("explicit uniform scheduler split the cache")
	}

	ring := canon(JobRequest{Algorithm: "approximate", N: 500, Scheduler: "ring"})
	if ring.Fingerprint() == plain.Fingerprint() {
		t.Fatal("ring request hashes like a plain one")
	}

	// Seed 0 and the default initiator are canonical-form noise.
	kron := canon(JobRequest{Algorithm: "approximate", N: 500, Scheduler: "kron:12"})
	folded := canon(JobRequest{Algorithm: "approximate", N: 500,
		Scheduler: "KRON:12:0:0.57,0.19,0.19,0.05"})
	if folded.Scheduler != "kron:12" || folded.Fingerprint() != kron.Fingerprint() {
		t.Fatalf("equivalent kron specs hash differently (canonical %q)", folded.Scheduler)
	}
	pinned := canon(JobRequest{Algorithm: "approximate", N: 500, Scheduler: "kron:12:9"})
	if pinned.Fingerprint() == kron.Fingerprint() {
		t.Fatal("pinned and drawn graph seeds hash identically")
	}
}

// TestSchedulerValidationErrors pins the 400 mapping of bad scheduler
// specs: grammar errors and graph/population mismatches both fail at
// submission, not in the worker.
func TestSchedulerValidationErrors(t *testing.T) {
	_, hs := testServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown graph", `{"algorithm":"approximate","n":100,"scheduler":"mesh"}`},
		{"kron depth zero", `{"algorithm":"approximate","n":100,"scheduler":"kron:0"}`},
		{"kron too shallow", `{"algorithm":"approximate","n":100,"scheduler":"kron:5"}`},
		{"torus prime n", `{"algorithm":"approximate","n":101,"scheduler":"torus"}`},
		{"count engine graph", `{"algorithm":"approximate","n":100,"engine":"count","scheduler":"ring"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

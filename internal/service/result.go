package service

import (
	"encoding/json"

	"popcount"
)

// ResultDoc is the canonical machine-readable result document: the
// popcountd service stores and serves it for finished jobs, and
// popsim -json prints the identical structure, so downstream tooling
// parses one schema regardless of how a run was produced.
//
// The document is a pure function of the job request — it carries no
// wall-clock times, hostnames or other machine-dependent fields — so
// identical requests produce byte-identical documents, which is what
// the service's content-addressed result cache relies on.
type ResultDoc struct {
	// Request echoes the canonicalized request that produced the
	// document.
	Request JobRequest `json:"request"`
	// Trials holds every trial's result in trial order.
	Trials []TrialDoc `json:"trials"`
	// Stats aggregates the trials (converged, non-interrupted ones).
	Stats StatsDoc `json:"stats"`
}

// TrialDoc is one trial's outcome.
type TrialDoc struct {
	Converged    bool  `json:"converged"`
	Stable       bool  `json:"stable"`
	Interrupted  bool  `json:"interrupted,omitempty"`
	Interactions int64 `json:"interactions"`
	Total        int64 `json:"total"`
	Output       int64 `json:"output"`
	Estimate     int64 `json:"estimate"`
}

// StatsDoc aggregates an ensemble, mirroring popcount.EnsembleStats.
type StatsDoc struct {
	Trials          int        `json:"trials"`
	Converged       int        `json:"converged"`
	ConvergenceRate float64    `json:"convergence_rate"`
	Stable          int        `json:"stable"`
	StableRate      float64    `json:"stable_rate"`
	Interactions    SummaryDoc `json:"interactions"`
	Estimates       SummaryDoc `json:"estimates"`
}

// SummaryDoc mirrors popcount.SummaryStats.
type SummaryDoc struct {
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P10    float64 `json:"p10"`
	P90    float64 `json:"p90"`
}

func summaryDoc(s popcount.SummaryStats) SummaryDoc {
	return SummaryDoc{
		Mean: s.Mean, Median: s.Median, Std: s.Std,
		Min: s.Min, Max: s.Max, P10: s.P10, P90: s.P90,
	}
}

func trialDoc(r popcount.Result) TrialDoc {
	return TrialDoc{
		Converged:    r.Converged,
		Stable:       r.Stable,
		Interrupted:  r.Interrupted,
		Interactions: r.Interactions,
		Total:        r.Total,
		Output:       r.Output,
		Estimate:     r.Estimate,
	}
}

// EnsembleDoc builds the result document of an ensemble run for the
// canonicalized request req.
func EnsembleDoc(req JobRequest, ens popcount.EnsembleResult) ResultDoc {
	doc := ResultDoc{Request: req, Trials: make([]TrialDoc, len(ens.Trials))}
	for i, r := range ens.Trials {
		doc.Trials[i] = trialDoc(r)
	}
	doc.Stats = StatsDoc{
		Trials:          ens.Stats.Trials,
		Converged:       ens.Stats.Converged,
		ConvergenceRate: ens.Stats.ConvergenceRate,
		Stable:          ens.Stats.Stable,
		StableRate:      ens.Stats.StableRate,
		Interactions:    summaryDoc(ens.Stats.Interactions),
		Estimates:       summaryDoc(ens.Stats.Estimates),
	}
	return doc
}

// SingleDoc builds the result document of a single-trial run.
func SingleDoc(req JobRequest, r popcount.Result) ResultDoc {
	ens := popcount.EnsembleResult{Trials: []popcount.Result{r}}
	return EnsembleDoc(req, aggregateSingle(ens, r))
}

// MarshalDoc renders the canonical byte form of a result document —
// the exact bytes popcountd stores, serves, and cache-dedups on, and
// the exact bytes popsim -json prints.
func MarshalDoc(doc ResultDoc) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// aggregateSingle fills the stats block for a one-trial ensemble so
// single runs and trials=1 ensembles produce identically shaped
// documents.
func aggregateSingle(ens popcount.EnsembleResult, r popcount.Result) popcount.EnsembleResult {
	st := &ens.Stats
	st.Trials = 1
	if r.Converged && !r.Interrupted {
		st.Converged = 1
		st.ConvergenceRate = 1
		t, e := float64(r.Interactions), float64(r.Estimate)
		st.Interactions = popcount.SummaryStats{Mean: t, Median: t, Min: t, Max: t, P10: t, P90: t}
		st.Estimates = popcount.SummaryStats{Mean: e, Median: e, Min: e, Max: e, P10: e, P90: e}
		if r.Stable {
			st.Stable = 1
			st.StableRate = 1
		}
	}
	return ens
}

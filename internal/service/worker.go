package service

import (
	"context"
	"fmt"

	"popcount"
)

// Abort stops the worker pool immediately, skipping the graceful
// drain's final checkpoint and state persistence — on-disk state is
// left exactly as a SIGKILL would leave it (job records still say
// "running", the last periodic checkpoint in place). Tests use it to
// exercise the crash-recovery path in process.
func (s *Server) Abort() {
	s.abortOne.Do(func() { close(s.aborted) })
	s.wg.Wait()
}

func (s *Server) abortRequested() bool {
	select {
	case <-s.aborted:
		return true
	default:
		return false
	}
}

// worker is one pool goroutine: it claims queued jobs until drain or
// abort.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.draining:
			return
		case <-s.aborted:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runOutcome says how a job run ended.
type runOutcome int

const (
	outDone runOutcome = iota
	outFailed
	outCancelled
	outRequeue // drain: persisted as queued for the next process
	outAbandon // abort: touch nothing, the "process" is dead
)

// runJob executes one job end to end: state transitions, result
// storage, checkpointing, metrics.
func (s *Server) runJob(j *Job) {
	if state, _, _ := j.Snapshot(); state != JobQueued {
		return // cancelled while queued
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.setCancel(cancel)
	defer j.setCancel(nil)
	j.setState(JobRunning, "")
	s.persist(j)

	doc, outcome, failMsg := s.dispatch(ctx, j)

	switch outcome {
	case outDone:
		data, err := MarshalDoc(doc)
		if err != nil {
			outcome, failMsg = outFailed, "encoding result: "+err.Error()
			break
		}
		if err := s.st.saveResult(j.ID, data); err != nil {
			outcome, failMsg = outFailed, "storing result: "+err.Error()
			break
		}
		s.st.removeCheckpoint(j.ID)
		j.setState(JobDone, "")
		s.persist(j)
		s.met.jobsFinished.Add(1)
	case outCancelled:
		s.st.removeCheckpoint(j.ID)
		j.setState(JobCancelled, "cancelled")
		s.persist(j)
		s.met.jobsFinished.Add(1)
	case outRequeue:
		// Graceful drain: back to queued on disk; the next process's
		// recovery requeues it (and resumes from the checkpoint, if one
		// was written).
		j.mu.Lock()
		j.state = JobQueued
		j.mu.Unlock()
		s.persist(j)
	case outAbandon:
		// Abort: leave memory and disk exactly as they are.
	}
	if outcome == outFailed {
		j.setState(JobFailed, failMsg)
		s.persist(j)
		s.met.jobsFinished.Add(1)
	}
}

// dispatch runs the job body behind a panic guard: a panicking
// protocol or engine fails that one job — recording the panic message
// in its job record and result error — instead of killing the worker
// goroutine and, with it, a share of the daemon's capacity.
func (s *Server) dispatch(ctx context.Context, j *Job) (doc ResultDoc, outcome runOutcome, failMsg string) {
	defer func() {
		if r := recover(); r != nil {
			s.met.workerPanics.Add(1)
			doc, outcome = ResultDoc{}, outFailed
			failMsg = fmt.Sprintf("worker panic: %v", r)
		}
	}()
	if s.beforeRun != nil {
		s.beforeRun(j)
	}
	if j.Req.Trials == 1 {
		return s.runSingle(ctx, j)
	}
	return s.runEnsembleJob(ctx, j)
}

// progressObserver builds the observer emitting throttled progress
// events (j.emit serializes concurrent ensemble trials internally).
func progressObserver(j *Job) popcount.Option {
	return popcount.WithObserver(func(snap popcount.Snapshot) {
		j.emit(Event{
			Type:         "progress",
			Trial:        snap.Trial,
			Interactions: snap.Interactions,
		})
	})
}

// progressInterval throttles progress events: frequent enough to keep
// streams lively, sparse enough to bound the event log.
func progressInterval(n int, cpEvery int64) int64 {
	iv := int64(n) * 8
	if cpEvery/2 > iv {
		iv = cpEvery / 2
	}
	return iv
}

// runSingle executes a single-trial job with periodic checkpointing.
//
// The loop leans on three engine properties: Interrupt stops a run at
// a convergence-poll boundary; RunToConvergence resumes from wherever
// the engine stands; Snapshot/Restore reproduce the engine bit for
// bit. Together they make checkpoints invisible to the trajectory —
// an interrupted-and-resumed job steps the exact interaction sequence
// of an uninterrupted one, so its result document is byte-identical.
func (s *Server) runSingle(ctx context.Context, j *Job) (ResultDoc, runOutcome, string) {
	req := j.Req
	alg := req.Alg()

	var simu *popcount.Simulation
	var lastCp int64
	snapshottable := true
	interrupt := func() bool {
		if ctx.Err() != nil || s.drainRequested() || s.abortRequested() {
			return true
		}
		return snapshottable && simu != nil && simu.Interactions()-lastCp >= s.cpEvery
	}
	runOpts := append(req.Options(),
		popcount.WithInterrupt(interrupt),
		popcount.WithObserveEvery(progressInterval(req.N, s.cpEvery)),
		progressObserver(j),
	)

	if blob := s.st.readCheckpoint(j.ID); blob != nil {
		if restored, err := popcount.RestoreSimulation(blob, runOpts...); err == nil {
			simu = restored
			lastCp = restored.Interactions()
			s.met.resumes.Add(1)
			j.emit(Event{Type: "resumed", Interactions: lastCp})
		} else {
			// A checkpoint that no longer restores (version skew,
			// corruption, truncation) falls back to a fresh run — losing
			// progress, not the job.
			s.met.checkpointRestoreFailures.Add(1)
			j.emit(Event{Type: "progress", Message: "checkpoint unusable, restarting: " + err.Error()})
		}
	}
	if simu == nil {
		fresh, err := popcount.NewSimulation(alg, req.N, runOpts...)
		if err != nil {
			return ResultDoc{}, outFailed, err.Error()
		}
		simu = fresh
	}

	startT := simu.Interactions()
	startStats := simu.Stats()
	defer func() {
		s.met.countInteractions(simu.Engine(), simu.Interactions()-startT)
		s.met.countShardStats(startStats, simu.Stats())
	}()

	for {
		res, err := simu.RunToConvergence()
		if err != nil {
			return ResultDoc{}, outFailed, err.Error()
		}
		if !res.Interrupted {
			return SingleDoc(req, res), outDone, ""
		}
		if s.abortRequested() {
			return ResultDoc{}, outAbandon, ""
		}
		if ctx.Err() != nil {
			j.emit(Event{Type: "progress", Interactions: simu.Interactions(), Message: "cancelled mid-run"})
			return ResultDoc{}, outCancelled, ""
		}
		draining := s.drainRequested()
		if snapshottable {
			blob, err := simu.Snapshot()
			if err != nil {
				// Not snapshottable after all (e.g. TokenBag): run on
				// without checkpoints.
				snapshottable = false
				j.emit(Event{Type: "progress", Message: "checkpointing disabled: " + err.Error()})
			} else if err := s.st.saveCheckpoint(j.ID, blob); err != nil {
				j.emit(Event{Type: "progress", Message: "warning: checkpoint write failed: " + err.Error()})
			} else {
				s.met.checkpoints.Add(1)
				j.emit(Event{Type: "checkpoint", Interactions: simu.Interactions()})
			}
		}
		lastCp = simu.Interactions()
		if draining {
			return ResultDoc{}, outRequeue, ""
		}
	}
}

// runEnsembleJob executes a multi-trial job via RunEnsemble. Ensembles
// are not checkpointed: a drain or crash reruns them from scratch.
func (s *Server) runEnsembleJob(ctx context.Context, j *Job) (ResultDoc, runOutcome, string) {
	req := j.Req
	opts := append(req.Options(),
		popcount.WithInterrupt(func() bool { return s.drainRequested() || s.abortRequested() }),
		popcount.WithObserveEvery(progressInterval(req.N, s.cpEvery)),
		progressObserver(j),
	)
	ens, err := popcount.RunEnsemble(ctx, req.Alg(), req.N, req.Trials, opts...)
	var total int64
	for _, tr := range ens.Trials {
		total += tr.Total
	}
	if kind, kerr := popcount.ParseEngineKind(req.Engine); kerr == nil {
		s.met.countInteractions(kind, total)
	}
	switch {
	case s.abortRequested():
		return ResultDoc{}, outAbandon, ""
	case err != nil && ctx.Err() != nil:
		done := 0
		for _, tr := range ens.Trials {
			if !tr.Interrupted {
				done++
			}
		}
		j.emit(Event{Type: "progress",
			Message: fmt.Sprintf("cancelled mid-ensemble: %d/%d trials completed", done, len(ens.Trials))})
		return ResultDoc{}, outCancelled, ""
	case err != nil:
		return ResultDoc{}, outFailed, err.Error()
	case s.drainRequested():
		return ResultDoc{}, outRequeue, ""
	}
	return EnsembleDoc(req, ens), outDone, ""
}

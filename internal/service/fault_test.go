package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFaultedJobEndToEnd runs a job with a fault plan through the
// HTTP API: the plan reaches the engine (the request echoes back
// canonicalized), the run completes, and the fingerprint separates
// faulted from fault-free submissions while folding equivalent plans
// together.
func TestFaultedJobEndToEnd(t *testing.T) {
	_, hs := testServer(t, Config{})
	req := JobRequest{
		Algorithm: "approximate", N: 2048, Seed: 7, Engine: "count",
		Faults: &FaultPlanRequest{
			Seed:   3,
			Bursts: []FaultEventRequest{{At: 2000, Agents: 32}},
			Churn:  []FaultEventRequest{{At: 4000, Agents: 16}},
		},
	}
	st, code := submit(t, hs.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if st.Req.Faults == nil || len(st.Req.Faults.Bursts) != 1 {
		t.Fatalf("fault plan lost in canonicalization: %+v", st.Req)
	}
	waitState(t, hs.URL, st.ID, JobDone)
	var doc ResultDoc
	if err := json.Unmarshal(getResult(t, hs.URL, st.ID), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Trials) != 1 || !doc.Trials[0].Converged {
		t.Fatalf("faulted job result: %+v", doc)
	}
	if doc.Request.Faults == nil {
		t.Fatal("result document dropped the fault plan")
	}

	// The same request without faults is a different job.
	plain := req
	plain.Faults = nil
	stPlain, _ := submit(t, hs.URL, plain)
	if stPlain.ID == st.ID {
		t.Fatal("faulted and fault-free requests share a fingerprint")
	}
}

// TestFaultPlanFingerprint pins the cache-key behavior of fault plans:
// equivalent plans hash identically, a no-op plan hashes like no plan,
// and plan changes change the hash.
func TestFaultPlanFingerprint(t *testing.T) {
	base, err := JobRequest{Algorithm: "approximate", N: 500,
		Faults: &FaultPlanRequest{Bursts: []FaultEventRequest{{At: 100, Agents: 4}}},
	}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	same, err := JobRequest{Algorithm: "APPROXIMATE", N: 500, Trials: 1, Seed: 1, Engine: "agent",
		Faults: &FaultPlanRequest{Bursts: []FaultEventRequest{{At: 100, Agents: 4}}, Adversary: "none"},
	}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != same.Fingerprint() {
		t.Fatal("equivalent fault plans hash differently")
	}

	plain, err := JobRequest{Algorithm: "approximate", N: 500}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == plain.Fingerprint() {
		t.Fatal("faulted request hashes like a plain one")
	}
	noop, err := JobRequest{Algorithm: "approximate", N: 500, Faults: &FaultPlanRequest{Seed: 9}}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if noop.Faults != nil {
		t.Fatalf("no-op plan survived canonicalization: %+v", noop.Faults)
	}
	if noop.Fingerprint() != plain.Fingerprint() {
		t.Fatal("no-op fault plan split the cache")
	}
	diff, err := JobRequest{Algorithm: "approximate", N: 500,
		Faults: &FaultPlanRequest{Bursts: []FaultEventRequest{{At: 100, Agents: 5}}},
	}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == diff.Fingerprint() {
		t.Fatal("different burst sizes hash identically")
	}
}

// TestFaultPlanValidationErrors pins the 400 mapping of bad fault
// plans: structural errors, unknown adversaries, and incompatible
// algorithms all fail at submission, not in the worker.
func TestFaultPlanValidationErrors(t *testing.T) {
	_, hs := testServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"unknown adversary", `{"algorithm":"approximate","n":100,"faults":{"adversary":"mean"}}`},
		{"oversized burst", `{"algorithm":"approximate","n":100,"faults":{"bursts":[{"at":10,"agents":500}]}}`},
		{"negative rate", `{"algorithm":"approximate","n":100,"faults":{"corrupt_rate":-1}}`},
		{"random churn", `{"algorithm":"approximate","n":100,"faults":{"churn":[{"at":10,"agents":2,"random":true}]}}`},
		{"tokenbag with faults", `{"algorithm":"tokenbag","n":100,"faults":{"bursts":[{"at":10,"agents":2}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestWorkerPanicFailsJob pins satellite robustness: a panic inside
// the job body fails that one job with the panic message, bumps the
// panic metric, and leaves the worker pool able to run the next job.
func TestWorkerPanicFailsJob(t *testing.T) {
	srv, hs := testServer(t, Config{})
	// Keyed on the seed so the hook is a pure read — no writes racing
	// the worker goroutines.
	srv.beforeRun = func(j *Job) {
		if j.Req.Seed == 666 {
			panic("deliberate test panic")
		}
	}
	st, _ := submit(t, hs.URL, JobRequest{Algorithm: "approximate", N: 1024, Seed: 666, Engine: "count"})
	streamEventsUntil(t, hs.URL, st.ID, string(JobFailed))
	got := getStatus(t, hs.URL, st.ID)
	if got.State != JobFailed || !strings.Contains(got.Error, "worker panic: deliberate test panic") {
		t.Fatalf("panicking job state %q error %q", got.State, got.Error)
	}
	metrics := getText(t, hs.URL+"/metrics")
	if !strings.Contains(metrics, "popcountd_worker_panics_total 1") {
		t.Fatalf("metrics missing worker panic:\n%s", metrics)
	}

	// The pool survived: a clean job still completes.
	st2, _ := submit(t, hs.URL, JobRequest{Algorithm: "approximate", N: 1024, Seed: 2, Engine: "count"})
	waitState(t, hs.URL, st2.ID, JobDone)
}

// TestTruncatedCheckpointRestart pins satellite robustness: a
// truncated checkpoint on recovery is detected, counted, and the job
// restarts from scratch — finishing with the same result document an
// uninterrupted run produces.
func TestTruncatedCheckpointRestart(t *testing.T) {
	req := JobRequest{Algorithm: "approximate", N: 2048, Seed: 21, Engine: "count"}

	// Reference: uninterrupted run.
	_, refHS := testServer(t, Config{})
	refSt, _ := submit(t, refHS.URL, req)
	waitState(t, refHS.URL, refSt.ID, JobDone)
	want := getResult(t, refHS.URL, refSt.ID)

	// Kill a checkpointing run mid-job, then corrupt its checkpoint.
	dir := t.TempDir()
	srvA, hsA := testServer(t, Config{Dir: dir, CheckpointEvery: 50_000})
	st, _ := submit(t, hsA.URL, req)
	streamEventsUntil(t, hsA.URL, st.ID, "checkpoint")
	srvA.Abort()
	hsA.Close()
	cp := filepath.Join(dir, "checkpoints", st.ID+".ckpt")
	info, err := os.Stat(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(cp, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	// Recovery: the fresh daemon detects the bad checkpoint, restarts
	// the job from scratch, and still produces the reference bytes.
	_, hsB := testServer(t, Config{Dir: dir, CheckpointEvery: 50_000})
	waitState(t, hsB.URL, st.ID, JobDone)
	evs := streamEventsUntil(t, hsB.URL, st.ID, "done")
	restarted := false
	for _, e := range evs {
		if e.Type == "progress" && strings.Contains(e.Message, "checkpoint unusable") {
			restarted = true
		}
		if e.Type == "resumed" {
			t.Fatal("job resumed from a truncated checkpoint")
		}
	}
	if !restarted {
		t.Fatalf("no restart event in log: %+v", evs)
	}
	got := getResult(t, hsB.URL, st.ID)
	if string(got) != string(want) {
		t.Fatalf("restarted result differs from uninterrupted run\nwant: %s\ngot:  %s", want, got)
	}
	metrics := getText(t, hsB.URL+"/metrics")
	if !strings.Contains(metrics, "popcountd_checkpoint_restore_failures_total 1") {
		t.Fatalf("metrics missing restore failure:\n%s", metrics)
	}
}

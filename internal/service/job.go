package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"popcount"
)

// JobRequest is the wire form of a simulation job. Zero-valued
// optional fields take the library defaults, and Canonicalize rewrites
// the request into its canonical form (named defaults filled in,
// algorithm and engine names normalized) before fingerprinting, so two
// requests that mean the same run hash to the same job.
type JobRequest struct {
	// Algorithm is the protocol to run: approximate, exact,
	// stable-approximate, stable-exact, tokenbag, geometric.
	Algorithm string `json:"algorithm"`
	// N is the population size.
	N int `json:"n"`
	// Trials is the number of independent trials (default 1). A
	// single-trial job is checkpointed and survives daemon restarts;
	// multi-trial jobs restart from scratch.
	Trials int `json:"trials,omitempty"`
	// Seed is the base scheduler seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the simulation engine: agent, count,
	// count-batched, auto (default agent).
	Engine string `json:"engine,omitempty"`
	// Scheduler restricts interactions to an interaction graph, in
	// popcount.ParseSchedulerSpec syntax: "" or "uniform" (the
	// default), "ring", "torus", "kron:<k>[:<seed>[:<a>,<b>,<c>,<d>]]".
	// Canonicalization drops the uniform default and normalizes graph
	// specs, so an explicit "uniform" hashes like an absent field.
	Scheduler string `json:"scheduler,omitempty"`

	MaxInteractions int64 `json:"max_interactions,omitempty"`
	CheckEvery      int64 `json:"check_every,omitempty"`
	ConfirmWindow   int64 `json:"confirm_window,omitempty"`
	ClockM          int   `json:"clock_m,omitempty"`
	FastRounds      int   `json:"fast_rounds,omitempty"`
	Shift           int   `json:"shift,omitempty"`
	BatchRounds     int   `json:"batch_rounds,omitempty"`
	// Shards shards each batch epoch across that many deterministic
	// work streams (popcount.WithIntraRunParallelism; count-batched
	// engine only). Values ≤ 1 keep the serial planner and hash like an
	// absent field.
	Shards         int  `json:"shards,omitempty"`
	FaultInjection bool `json:"fault_injection,omitempty"`
	// Faults attaches a deterministic fault plan (popcount.WithFaults)
	// to the run. A plan that schedules nothing is dropped during
	// canonicalization, so it cannot split the cache.
	Faults *FaultPlanRequest `json:"faults,omitempty"`
}

// FaultEventRequest is the wire form of one scheduled fault event —
// a corruption burst (Random selects random occupied target states)
// or a churn event (no Random).
type FaultEventRequest struct {
	At     int64 `json:"at"`
	Agents int   `json:"agents"`
	Random bool  `json:"random,omitempty"`
}

// FaultPlanRequest is the wire form of a popcount.FaultPlan. Rates
// are expected events per n interactions; the adversary is named by
// its canonical string (stale-replay, initiator-bias, convergence).
type FaultPlanRequest struct {
	Seed            uint64              `json:"seed,omitempty"`
	Bursts          []FaultEventRequest `json:"bursts,omitempty"`
	CorruptRate     float64             `json:"corrupt_rate,omitempty"`
	CorruptAgents   int                 `json:"corrupt_agents,omitempty"`
	CorruptRandom   bool                `json:"corrupt_random,omitempty"`
	Churn           []FaultEventRequest `json:"churn,omitempty"`
	ChurnRate       float64             `json:"churn_rate,omitempty"`
	ChurnAgents     int                 `json:"churn_agents,omitempty"`
	Adversary       string              `json:"adversary,omitempty"`
	AdversaryRate   float64             `json:"adversary_rate,omitempty"`
	AdversaryAgents int                 `json:"adversary_agents,omitempty"`
}

// FaultRequestFromPlan converts a popcount.FaultPlan to its wire
// form, nil when the plan schedules nothing. The CorruptSearch knob
// is not part of the plan request — callers map it to the request's
// FaultInjection field.
func FaultRequestFromPlan(p popcount.FaultPlan) *FaultPlanRequest {
	if !p.Enabled() {
		return nil
	}
	f := &FaultPlanRequest{
		Seed:            p.Seed,
		CorruptRate:     p.CorruptRate,
		CorruptAgents:   p.CorruptAgents,
		CorruptRandom:   p.CorruptRandom,
		ChurnRate:       p.ChurnRate,
		ChurnAgents:     p.ChurnAgents,
		AdversaryRate:   p.AdversaryRate,
		AdversaryAgents: p.AdversaryAgents,
	}
	for _, b := range p.Bursts {
		f.Bursts = append(f.Bursts, FaultEventRequest{At: b.At, Agents: b.Agents, Random: b.Random})
	}
	for _, c := range p.Churn {
		f.Churn = append(f.Churn, FaultEventRequest{At: c.At, Agents: c.Agents})
	}
	if p.Adversary != popcount.AdversaryNone {
		f.Adversary = p.Adversary.String()
	}
	return f
}

// Plan converts the wire form to a popcount.FaultPlan. A nil request
// yields the zero plan. Errors wrap popcount.ErrBadFaultPlan.
func (f *FaultPlanRequest) Plan() (popcount.FaultPlan, error) {
	var p popcount.FaultPlan
	if f == nil {
		return p, nil
	}
	p.Seed = f.Seed
	for _, b := range f.Bursts {
		p.Bursts = append(p.Bursts, popcount.FaultBurst{At: b.At, Agents: b.Agents, Random: b.Random})
	}
	p.CorruptRate, p.CorruptAgents, p.CorruptRandom = f.CorruptRate, f.CorruptAgents, f.CorruptRandom
	for _, c := range f.Churn {
		if c.Random {
			return p, fmt.Errorf("%w: churn events take no random flag", popcount.ErrBadFaultPlan)
		}
		p.Churn = append(p.Churn, popcount.FaultChurn{At: c.At, Agents: c.Agents})
	}
	p.ChurnRate, p.ChurnAgents = f.ChurnRate, f.ChurnAgents
	if f.Adversary != "" {
		a, err := popcount.ParseAdversary(f.Adversary)
		if err != nil {
			return p, err
		}
		p.Adversary = a
	}
	p.AdversaryRate, p.AdversaryAgents = f.AdversaryRate, f.AdversaryAgents
	return p, nil
}

// Canonicalize validates the request and rewrites it into canonical
// form. The returned error wraps the popcount sentinels
// (ErrUnknownAlgorithm, ErrUnsupportedEngine, ErrInvalidN), which the
// HTTP layer maps to 400s.
func (r JobRequest) Canonicalize() (JobRequest, error) {
	alg, err := popcount.ParseAlgorithm(strings.ToLower(strings.TrimSpace(r.Algorithm)))
	if err != nil {
		return r, err
	}
	r.Algorithm = alg.String()
	if r.Engine == "" {
		r.Engine = "agent"
	}
	engine, err := popcount.ParseEngineKind(strings.ToLower(strings.TrimSpace(r.Engine)))
	if err != nil {
		return r, err
	}
	r.Engine = engine.String()
	_, schedCanon, err := popcount.ParseSchedulerSpec(strings.ToLower(strings.TrimSpace(r.Scheduler)))
	if err != nil {
		return r, err
	}
	r.Scheduler = schedCanon
	if r.Trials == 0 {
		r.Trials = 1
	}
	if r.Trials < 0 {
		return r, fmt.Errorf("%w: non-positive trial count %d", popcount.ErrInvalidN, r.Trials)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Shards < 0 {
		return r, fmt.Errorf("%w: negative shard count %d", popcount.ErrInvalidN, r.Shards)
	}
	if r.Shards == 1 {
		// One shard is the serial planner — canonicalize to the absent
		// field so the request hashes like a plain one.
		r.Shards = 0
	}
	var noopFaults bool
	if r.Faults != nil {
		plan, err := r.Faults.Plan()
		if err != nil {
			return r, err
		}
		noopFaults = !plan.Enabled()
		if plan.Adversary == popcount.AdversaryNone {
			r.Faults.Adversary = ""
		} else {
			r.Faults.Adversary = plan.Adversary.String()
		}
	}
	if err := popcount.Validate(alg, r.N, r.Options()...); err != nil {
		return r, err
	}
	if noopFaults {
		// A well-formed plan that schedules nothing means no faults:
		// drop it so the request hashes like a plain one.
		r.Faults = nil
	}
	return r, nil
}

// Alg returns the parsed algorithm of a canonicalized request.
func (r JobRequest) Alg() popcount.Algorithm {
	alg, _ := popcount.ParseAlgorithm(r.Algorithm)
	return alg
}

// Options translates a canonicalized request into popcount options
// (dynamics only — observers and interrupts are the worker's).
func (r JobRequest) Options() []popcount.Option {
	engine, _ := popcount.ParseEngineKind(r.Engine)
	opts := []popcount.Option{
		popcount.WithSeed(r.Seed),
		popcount.WithEngine(engine),
	}
	if r.MaxInteractions > 0 {
		opts = append(opts, popcount.WithMaxInteractions(r.MaxInteractions))
	}
	if r.CheckEvery > 0 {
		opts = append(opts, popcount.WithCheckEvery(r.CheckEvery))
	}
	if r.ConfirmWindow > 0 {
		opts = append(opts, popcount.WithConfirmWindow(r.ConfirmWindow))
	}
	if r.ClockM > 0 {
		opts = append(opts, popcount.WithClockM(r.ClockM))
	}
	if r.FastRounds > 0 {
		opts = append(opts, popcount.WithFastRounds(r.FastRounds))
	}
	if r.Shift > 0 {
		opts = append(opts, popcount.WithShift(r.Shift))
	}
	if r.BatchRounds > 0 {
		opts = append(opts, popcount.WithBatchRounds(r.BatchRounds))
	}
	if r.Shards > 1 {
		opts = append(opts, popcount.WithIntraRunParallelism(r.Shards))
	}
	if r.Scheduler != "" {
		// Canonicalized requests carry only parseable scheduler specs.
		mkSched, _, _ := popcount.ParseSchedulerSpec(r.Scheduler)
		opts = append(opts, popcount.WithScheduler(mkSched))
	}
	if r.Faults != nil {
		// Canonicalized requests carry only parseable plans.
		plan, _ := r.Faults.Plan()
		opts = append(opts, popcount.WithFaults(plan))
	}
	if r.FaultInjection {
		// Applied after WithFaults: the plan replaces the whole fault
		// state, the legacy knob only raises CorruptSearch on top.
		opts = append(opts, popcount.WithFaultInjection())
	}
	return opts
}

// Fingerprint returns the content address of a canonicalized request:
// the hex SHA-256 of its canonical field serialization. Identical
// requests — and only identical requests — share a fingerprint, which
// doubles as the job ID and the result-cache key.
func (r JobRequest) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h,
		"popcountd-job-v1|alg=%s|n=%d|trials=%d|seed=%d|engine=%s|max=%d|check=%d|confirm=%d|clockm=%d|fastrounds=%d|shift=%d|batchrounds=%d|fault=%t",
		r.Algorithm, r.N, r.Trials, r.Seed, r.Engine,
		r.MaxInteractions, r.CheckEvery, r.ConfirmWindow,
		r.ClockM, r.FastRounds, r.Shift, r.BatchRounds, r.FaultInjection)
	if r.Faults != nil {
		// The plan's canonical text form keys the cache; fault-free
		// requests keep their pre-fault-plane hashes.
		plan, _ := r.Faults.Plan()
		fmt.Fprintf(h, "|faults=%s", plan.String())
	}
	if r.Shards > 1 {
		// Sharding changes the random-stream layout, so the shard count
		// keys the cache; serial requests keep their pre-sharding hashes.
		fmt.Fprintf(h, "|shards=%d", r.Shards)
	}
	if r.Scheduler != "" {
		// The canonical scheduler spec keys the cache; uniform requests
		// keep their pre-graph-scheduler hashes.
		fmt.Fprintf(h, "|sched=%s", r.Scheduler)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobState is a job's lifecycle state.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Event is one entry of a job's event log, streamed as NDJSON from
// GET /v1/jobs/{id}/events. Events carry no wall-clock timestamps:
// the log of a deterministic job is itself deterministic.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued | running | progress | checkpoint | resumed | done | failed | cancelled
	// Interactions is the interaction clock at emission (progress,
	// checkpoint and resumed events).
	Interactions int64 `json:"interactions,omitempty"`
	// Trial is the trial index for ensemble progress events.
	Trial int `json:"trial,omitempty"`
	// Message carries failure detail and cache annotations.
	Message string `json:"message,omitempty"`
}

// Job is one submitted simulation. All mutable fields are guarded by
// mu; the identity fields (ID, Req) are immutable after creation.
type Job struct {
	ID  string
	Req JobRequest

	mu     sync.Mutex
	state  JobState
	errMsg string
	cached bool // result served from the content-addressed cache
	events []Event
	change chan struct{} // closed and replaced on every event append
	cancel func()        // non-nil while running; cancels the job's context
}

func newJob(id string, req JobRequest) *Job {
	j := &Job{ID: id, Req: req, state: JobQueued, change: make(chan struct{})}
	j.appendEventLocked(Event{Type: string(JobQueued)})
	return j
}

// appendEventLocked appends e (stamping its Seq) and wakes streamers.
// Callers hold j.mu (or the job is not yet shared).
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.change)
	j.change = make(chan struct{})
}

// emit appends an event to the job's log.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(e)
}

// setState transitions the job and logs the transition event. msg is
// attached to the event (and recorded as the job error for JobFailed).
func (j *Job) setState(s JobState, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	if s == JobFailed {
		j.errMsg = msg
	}
	j.appendEventLocked(Event{Type: string(s), Message: msg})
}

// Snapshot returns the job's current status fields.
func (j *Job) Snapshot() (state JobState, errMsg string, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.cached
}

// eventsSince returns the events at or after seq, a channel that is
// closed when more arrive, and whether the job has reached a terminal
// state.
func (j *Job) eventsSince(seq int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.change, j.state.Terminal()
}

// setCancel installs the running job's cancel hook.
func (j *Job) setCancel(fn func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = fn
}

// Cancel requests cancellation of a queued or running job.
func (j *Job) Cancel() {
	j.mu.Lock()
	fn := j.cancel
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		return
	}
	if fn != nil {
		fn()
		return
	}
	// Still queued: mark cancelled directly; the worker skips it.
	j.setState(JobCancelled, "cancelled before start")
}

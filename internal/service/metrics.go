package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"

	"popcount"
)

// metrics holds the daemon's counters. Gauges (jobs by state, queue
// depth) are computed at scrape time from the registry; everything
// here is monotonic and atomic.
type metrics struct {
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	checkpoints  atomic.Int64
	resumes      atomic.Int64
	jobsFinished atomic.Int64
	// workerPanics counts jobs failed by a recovered panic in the job
	// body; checkpointRestoreFailures counts checkpoints that no longer
	// restored (corruption, truncation, version skew) and forced a
	// restart from scratch.
	workerPanics              atomic.Int64
	checkpointRestoreFailures atomic.Int64
	// interactions per engine kind, indexed by engineSlot.
	interactions [3]atomic.Int64
	// Sharded-planner counters (WithIntraRunParallelism jobs), summed
	// over single-trial job segments run by this process: epochs planned
	// by the sharded path, epochs that fell back to the serial replay,
	// and blocks beyond the shard worker count (work available for
	// stealing).
	shardEpochs         atomic.Int64
	shardMergeConflicts atomic.Int64
	shardStealEvents    atomic.Int64
}

// countShardStats tallies the sharded-planner counters of one job
// segment (end minus start of the engine's cumulative stats).
func (m *metrics) countShardStats(start, end popcount.EngineStats) {
	if d := end.ShardEpochs - start.ShardEpochs; d > 0 {
		m.shardEpochs.Add(d)
	}
	if d := end.MergeConflicts - start.MergeConflicts; d > 0 {
		m.shardMergeConflicts.Add(d)
	}
	if d := end.StealEvents - start.StealEvents; d > 0 {
		m.shardStealEvents.Add(d)
	}
}

// engineSlot maps an engine kind to its interactions-counter slot.
func engineSlot(kind popcount.EngineKind) int {
	switch kind {
	case popcount.EngineCount:
		return 1
	case popcount.EngineCountBatched:
		return 2
	default:
		return 0
	}
}

var engineSlotNames = [3]string{"agent", "count", "count-batched"}

// countInteractions tallies executed interactions for the engine kind.
func (m *metrics) countInteractions(kind popcount.EngineKind, n int64) {
	if n > 0 {
		m.interactions[engineSlot(kind)].Add(n)
	}
}

// handleMetrics serves the Prometheus text exposition of the daemon's
// state: queue depth, jobs by state, cache hit/miss counters, and
// per-engine interaction throughput.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	byState := map[JobState]int{
		JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0, JobCancelled: 0,
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		st, _, _ := j.Snapshot()
		byState[st]++
	}
	queueDepth := len(s.queue)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, string(st))
	}
	sort.Strings(states)
	fmt.Fprintf(w, "# HELP popcountd_jobs Jobs by lifecycle state.\n# TYPE popcountd_jobs gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "popcountd_jobs{state=%q} %d\n", st, byState[JobState(st)])
	}
	fmt.Fprintf(w, "# HELP popcountd_queue_depth Jobs waiting for a worker.\n# TYPE popcountd_queue_depth gauge\npopcountd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP popcountd_cache_hits_total Submissions served from the result cache.\n# TYPE popcountd_cache_hits_total counter\npopcountd_cache_hits_total %d\n", s.met.cacheHits.Load())
	fmt.Fprintf(w, "# HELP popcountd_cache_misses_total Submissions that enqueued fresh work.\n# TYPE popcountd_cache_misses_total counter\npopcountd_cache_misses_total %d\n", s.met.cacheMisses.Load())
	fmt.Fprintf(w, "# HELP popcountd_checkpoints_total Engine checkpoints written.\n# TYPE popcountd_checkpoints_total counter\npopcountd_checkpoints_total %d\n", s.met.checkpoints.Load())
	fmt.Fprintf(w, "# HELP popcountd_resumes_total Jobs resumed from a checkpoint.\n# TYPE popcountd_resumes_total counter\npopcountd_resumes_total %d\n", s.met.resumes.Load())
	fmt.Fprintf(w, "# HELP popcountd_jobs_finished_total Jobs that reached a terminal state.\n# TYPE popcountd_jobs_finished_total counter\npopcountd_jobs_finished_total %d\n", s.met.jobsFinished.Load())
	fmt.Fprintf(w, "# HELP popcountd_worker_panics_total Jobs failed by a recovered panic in the job body.\n# TYPE popcountd_worker_panics_total counter\npopcountd_worker_panics_total %d\n", s.met.workerPanics.Load())
	fmt.Fprintf(w, "# HELP popcountd_checkpoint_restore_failures_total Checkpoints that failed to restore and forced a restart from scratch.\n# TYPE popcountd_checkpoint_restore_failures_total counter\npopcountd_checkpoint_restore_failures_total %d\n", s.met.checkpointRestoreFailures.Load())
	fmt.Fprintf(w, "# HELP popcountd_interactions_total Interactions simulated, by engine.\n# TYPE popcountd_interactions_total counter\n")
	for i, name := range engineSlotNames {
		fmt.Fprintf(w, "popcountd_interactions_total{engine=%q} %d\n", name, s.met.interactions[i].Load())
	}
	fmt.Fprintf(w, "# HELP popcountd_shard_epochs_total Batch epochs planned by the sharded planner (intra-run parallelism).\n# TYPE popcountd_shard_epochs_total counter\npopcountd_shard_epochs_total %d\n", s.met.shardEpochs.Load())
	fmt.Fprintf(w, "# HELP popcountd_shard_merge_conflicts_total Sharded epochs that tripped the safety net and replayed serially.\n# TYPE popcountd_shard_merge_conflicts_total counter\npopcountd_shard_merge_conflicts_total %d\n", s.met.shardMergeConflicts.Load())
	fmt.Fprintf(w, "# HELP popcountd_shard_steal_events_total Resolve-pass blocks beyond the shard worker count (work available for stealing).\n# TYPE popcountd_shard_steal_events_total counter\npopcountd_shard_steal_events_total %d\n", s.met.shardStealEvents.Load())
}

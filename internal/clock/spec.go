package clock

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// specCodec packs the phase-clock agent tuple (clock value, completed
// phases capped at maxPhase, junta membership) into spec state codes.
// The absolute phase counter is monotone and the convergence predicate
// only asks whether it has reached maxPhase, so capping it keeps the
// alphabet finite without changing the dynamics. Junta membership is
// part of the code — agents are exchangeable only within the same
// membership class.
type specCodec struct {
	clock    Clock
	maxPhase uint32
}

// span returns the extended circle size K·m of the underlying clock.
func (c specCodec) span() uint64 { return uint64(c.clock.M) * uint64(c.clock.K) }

// encode packs (val, phase, junta) into a state code.
func (c specCodec) encode(val uint16, phase uint32, junta bool) uint64 {
	code := uint64(phase)
	code <<= 1
	if junta {
		code |= 1
	}
	return code*c.span() + uint64(val)
}

// decode unpacks a state code.
func (c specCodec) decode(code uint64) (val uint16, phase uint32, junta bool) {
	span := c.span()
	val = uint16(code % span)
	code /= span
	junta = code&1 != 0
	phase = uint32(code >> 1)
	return
}

func capPhase(ph, maxPhase uint32) uint32 {
	if ph > maxPhase {
		return maxPhase
	}
	return ph
}

// NewSpec returns the canonical transition spec of a phase clock over n
// agents with m hours, driven by a fixed junta of juntaSize agents
// (laid out first, like NewProtocol), converging when every agent has
// completed maxPhase phases.
//
// The occupied alphabet (clock values spread over a moving window ×
// phases × membership) is too large for the no-op bookkeeping of the
// count engine's skip path to pay off, so the spec deliberately does
// not opt in; the engine's per-interaction categorical sampling still
// runs in O(log k) per interaction, independent of n.
func NewSpec(n, m, juntaSize, maxPhase int) *sim.Spec {
	if juntaSize < 1 || juntaSize > n {
		panic("clock: junta size out of range")
	}
	c := specCodec{clock: New(m), maxPhase: uint32(maxPhase)}
	return &sim.Spec{
		Name: "clock",
		N:    n,
		Init: func() map[uint64]int64 {
			init := map[uint64]int64{c.encode(0, 0, true): int64(juntaSize)}
			if rest := int64(n - juntaSize); rest > 0 {
				init[c.encode(0, 0, false)] = rest
			}
			return init
		},
		Layout: func() []uint64 {
			layout := make([]uint64, n)
			member, plain := c.encode(0, 0, true), c.encode(0, 0, false)
			for i := range layout {
				if i < juntaSize {
					layout[i] = member
				} else {
					layout[i] = plain
				}
			}
			return layout
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			uv, up, uj := c.decode(qu)
			vv, vp, vj := c.decode(qv)
			us, vs := State{Val: uv}, State{Val: vv}
			c.clock.Tick(&us, &vs, uj, vj)
			up = capPhase(up+us.Phase, c.maxPhase)
			vp = capPhase(vp+vs.Phase, c.maxPhase)
			return c.encode(us.Val, up, uj), c.encode(vs.Val, vp, vj)
		},
		PureDelta: true,
		Converged: func(v sim.ConfigView) bool {
			done := true
			v.ForEach(func(code uint64, _ int64) {
				if _, phase, _ := c.decode(code); phase < c.maxPhase {
					done = false
				}
			})
			return done
		},
		Output: func(q uint64) int64 {
			_, phase, _ := c.decode(q)
			return int64(phase)
		},
	}
}

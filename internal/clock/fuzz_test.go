package clock

import "testing"

// FuzzTick fuzzes the extended-clock transition for its structural
// invariants: values stay on the circle, the phase counter is monotone,
// FirstTick implies a phase increment, and ticking is insensitive to
// argument order (the update of each endpoint depends only on its own
// state and the partner's pre-interaction value).
func FuzzTick(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint32(0), uint32(0), true, false)
	f.Add(uint16(31), uint16(32), uint32(1), uint32(1), false, false)
	f.Add(uint16(1919), uint16(0), uint32(7), uint32(9), true, true)
	c := NewWithModulus(32, 60)
	span := uint16(32 * 60)
	f.Fuzz(func(t *testing.T, va, vb uint16, pa, pb uint32, ja, jb bool) {
		u := State{Val: va % span, Phase: pa % 1000}
		v := State{Val: vb % span, Phase: pb % 1000}
		pu, pv := u, v
		c.Tick(&u, &v, ja, jb)
		if u.Val >= span || v.Val >= span {
			t.Fatalf("value left the circle: %d %d", u.Val, v.Val)
		}
		if u.Phase < pu.Phase || v.Phase < pv.Phase {
			t.Fatal("phase counter decreased")
		}
		if u.FirstTick && u.Phase == pu.Phase {
			t.Fatal("FirstTick set without a phase increment")
		}
		if !u.FirstTick && u.Phase != pu.Phase {
			t.Fatal("phase incremented without FirstTick")
		}

		// Order insensitivity.
		u2, v2 := pv, pu
		c.Tick(&u2, &v2, jb, ja)
		if u2 != v || v2 != u {
			t.Fatalf("tick depends on argument order: (%+v,%+v) vs (%+v,%+v)", u, v, v2, u2)
		}
	})
}

package clock

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Counts is the configuration-level (count-based) form of Protocol for
// sim.CountEngine: a phase clock driven by a fixed-size junta, with the
// per-agent state reduced to (clock value, completed phases capped at
// maxPhase, junta membership). The absolute phase counter is monotone
// and the convergence predicate only asks whether it has reached
// maxPhase, so capping it keeps the alphabet finite without changing
// the dynamics. Junta membership is part of the state code — agents are
// exchangeable only within the same membership class.
//
// The occupied alphabet (clock values spread over a moving window ×
// phases × membership) is too large for the no-op bookkeeping of the
// engine's skip path to pay off, so Counts deliberately does not
// implement sim.SelfLooper; the engine's per-interaction categorical
// sampling still runs in O(log k) per interaction, independent of n.
type Counts struct {
	clock     Clock
	n         int
	juntaSize int
	maxPhase  uint32
}

// NewCounts returns the count form of a phase clock over n agents with m
// hours, driven by a junta of juntaSize agents, converging when every
// agent has completed maxPhase phases.
func NewCounts(n, m, juntaSize, maxPhase int) *Counts {
	if juntaSize < 1 || juntaSize > n {
		panic("clock: junta size out of range")
	}
	return &Counts{clock: New(m), n: n, juntaSize: juntaSize, maxPhase: uint32(maxPhase)}
}

// span returns the extended circle size K·m of the underlying clock.
func (p *Counts) span() uint64 { return uint64(p.clock.M) * uint64(p.clock.K) }

// encode packs (val, phase, junta) into a state code.
func (p *Counts) encode(val uint16, phase uint32, junta bool) uint64 {
	c := uint64(phase)
	c <<= 1
	if junta {
		c |= 1
	}
	return c*p.span() + uint64(val)
}

// decode unpacks a state code.
func (p *Counts) decode(c uint64) (val uint16, phase uint32, junta bool) {
	span := p.span()
	val = uint16(c % span)
	c /= span
	junta = c&1 != 0
	phase = uint32(c >> 1)
	return
}

// N returns the population size.
func (p *Counts) N() int { return p.n }

// InitCounts returns the initial configuration: juntaSize junta members
// and n−juntaSize plain agents, all at clock value 0, phase 0.
func (p *Counts) InitCounts() map[uint64]int64 {
	init := map[uint64]int64{p.encode(0, 0, true): int64(p.juntaSize)}
	if rest := int64(p.n - p.juntaSize); rest > 0 {
		init[p.encode(0, 0, false)] = rest
	}
	return init
}

// Delta applies the phase-clock tick to a state pair (deterministic; the
// generator is unused).
func (p *Counts) Delta(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
	uv, up, uj := p.decode(qu)
	vv, vp, vj := p.decode(qv)
	us, vs := State{Val: uv}, State{Val: vv}
	p.clock.Tick(&us, &vs, uj, vj)
	up = capPhase(up+us.Phase, p.maxPhase)
	vp = capPhase(vp+vs.Phase, p.maxPhase)
	return p.encode(us.Val, up, uj), p.encode(vs.Val, vp, vj)
}

// DeltaDet exposes the transition matrix for batch stepping
// (sim.DeterministicDelta): the phase-clock tick is deterministic and
// coin-free for every pair.
func (p *Counts) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	a, b := p.Delta(qu, qv, nil)
	return a, b, true
}

func capPhase(ph, maxPhase uint32) uint32 {
	if ph > maxPhase {
		return maxPhase
	}
	return ph
}

// CountConverged reports whether every agent has completed maxPhase
// phases.
func (p *Counts) CountConverged(c *sim.CountConfig) bool {
	done := true
	c.ForEach(func(code uint64, _ int64) {
		if _, phase, _ := p.decode(code); phase < p.maxPhase {
			done = false
		}
	})
	return done
}

// StateOutput returns a state's completed phase count.
func (p *Counts) StateOutput(q uint64) int64 {
	_, phase, _ := p.decode(q)
	return int64(phase)
}

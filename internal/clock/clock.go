// Package clock implements the junta-driven phase clocks from Section 2 of
// the paper (Lemma 5, following [AAE08] and [GS18]).
//
// Every agent keeps a clock state ("hour") in {0, …, m−1}. On every
// interaction both agents adopt the later hour with respect to the
// circular order modulo m; to keep the clock running, a junta member that
// meets an agent on the same clock state advances one additional step. An
// agent enters a new phase when its hour crosses the boundary between m−1
// and 0; at that interaction its FirstTick flag is set.
//
// The paper additionally equips each agent with a phase counter modulo a
// constant ("phasev of constant size that counts the current phase of an
// agent modulo some constant"). This implementation realizes that counter
// as part of the circular clock value itself: the agent's value lives on a
// circle of K·m positions, position = (phase mod K)·m + hour. Adopting the
// later value w.r.t. this larger circle synchronizes the modular phase
// counter with exactly the same epidemic mechanism that synchronizes the
// hour, which is what the composed protocols (phase mod 5 in the Search
// Protocol, parity in leader election, 3 phases in the Refinement Stage)
// rely on. K = 60 is divisible by all moduli the protocols use.
//
// The paper states (Lemma 5) that for any constant c a suitable constant
// m = m(c) yields phases of length between c·n·log n and
// c·n·log n + Θ(n·log n) w.h.p. This package exposes m as a parameter;
// experiment E3 measures the resulting phase lengths and the repository
// default is calibrated so one phase comfortably covers one-way epidemics
// (Lemma 3) and powers-of-two load balancing (Lemma 8).
//
// State also carries an absolute phase counter for instrumentation and
// for the exact phase-count comparisons of the stable protocols.
package clock

import "popcount/internal/rng"

const (
	// DefaultM is the default number of hours on the clock face,
	// calibrated (experiment E3) so that one phase exceeds ≈6·n·ln n
	// interactions for juntas of the size elected by the junta process —
	// comfortably above the ≈2.6·n·ln n that powers-of-two load
	// balancing needs (Lemma 8) and the ≈1·n·ln n of one-way epidemics
	// (Lemma 3).
	DefaultM = 32

	// DefaultK is the default phase-counter modulus. It is divisible by
	// 5 (Search Protocol rounds), 4 (leader-election parity tags), 3 and
	// 2, covering every modular phase count the protocols use.
	DefaultK = 60
)

// State is the per-agent phase-clock state.
type State struct {
	// Val is the extended clock value in [0, K·m):
	// Val = (phase mod K)·m + hour.
	Val uint16
	// Phase counts completed boundary crossings (absolute, monotone).
	Phase uint32
	// FirstTick is true exactly when the current interaction is the one
	// in which this agent entered its current phase.
	FirstTick bool
}

// Clock is a phase-clock configuration: m hours per phase and a phase
// counter modulo K folded into the circular value.
type Clock struct {
	M uint8
	K uint8
}

// New returns a phase clock with m hours and the default phase modulus.
// m must be even and in [4, 128].
func New(m int) Clock { return NewWithModulus(m, DefaultK) }

// NewWithModulus returns a phase clock with m hours and phase counter
// modulo k. m must be even and in [4, 128]; k must be in [1, 120].
func NewWithModulus(m, k int) Clock {
	if m < 4 || m > 128 || m%2 != 0 {
		panic("clock: m must be even and in [4, 128]")
	}
	if k < 1 || k > 120 {
		panic("clock: k must be in [1, 120]")
	}
	return Clock{M: uint8(m), K: uint8(k)}
}

// Init returns the initial clock state (hour 0, phase 0).
func (Clock) Init() State { return State{} }

// span returns the extended circle size K·m.
func (c Clock) span() int { return int(c.M) * int(c.K) }

// Hour returns the hour component of s in {0, …, m−1}.
func (c Clock) Hour(s State) uint8 { return uint8(int(s.Val) % int(c.M)) }

// PhaseIdx returns the synchronized phase counter modulo K.
func (c Clock) PhaseIdx(s State) uint8 { return uint8(int(s.Val) / int(c.M)) }

// PhaseMod returns the synchronized phase counter modulo mod, which must
// divide K (this is what composed protocols use, e.g. mod 5 for the
// Search Protocol).
func (c Clock) PhaseMod(s State, mod int) int {
	if int(c.K)%mod != 0 {
		panic("clock: modulus must divide K")
	}
	return int(c.PhaseIdx(s)) % mod
}

// PhasesSince returns the number of phases from a recorded start index to
// s, computed on the circle modulo K. It is exact while the true distance
// is below K.
func (c Clock) PhasesSince(s State, startIdx uint8) int {
	return (int(c.PhaseIdx(s)) - int(startIdx) + int(c.K)) % int(c.K)
}

// Tick applies the phase-clock update to both endpoints at the beginning
// of an interaction. uJunta and vJunta report whether each endpoint is a
// junta member (drives the clock). Pre-interaction values are used on both
// sides, matching δ: Q×Q → Q×Q.
func (c Clock) Tick(u, v *State, uJunta, vJunta bool) {
	cu, cv := u.Val, v.Val
	c.tickOne(u, cv, uJunta)
	c.tickOne(v, cu, vJunta)
}

// TickOne advances only the endpoint w given the partner's pre-interaction
// value pv; used when the partner's clock is frozen (Error Detection,
// Algorithm 7 stops the clock in its final phase).
func (c Clock) TickOne(w *State, pv uint16, junta bool) { c.tickOne(w, pv, junta) }

func (c Clock) tickOne(w *State, pv uint16, junta bool) {
	span := c.span()
	d := (int(pv) - int(w.Val) + span) % span
	crossed := 0
	switch {
	case d > 0 && d <= span/2:
		// Partner is ahead within the half-window: adopt its value.
		crossed = (int(w.Val)%int(c.M) + d) / int(c.M)
		w.Val = pv
	case d == 0 && junta:
		// Junta member on an equal clock state advances one step.
		if int(w.Val)%int(c.M) == int(c.M)-1 {
			crossed = 1
		}
		w.Val = uint16((int(w.Val) + 1) % span)
	}
	w.FirstTick = crossed > 0
	w.Phase += uint32(crossed)
}

// Protocol simulates a phase clock driven by a fixed junta set, for
// stand-alone measurement of phase lengths (experiment E3).
type Protocol struct {
	clock  Clock
	states []State
	junta  []bool
	t      int64

	// Per-phase entry bookkeeping: firstEnter[p] is the interaction at
	// which the first agent entered phase p, lastEnter[p] the interaction
	// at which the last agent entered it. entered[p] counts agents whose
	// phase counter has reached p.
	firstEnter []int64
	lastEnter  []int64
	entered    []int
	maxPhase   uint32
}

// NewProtocol returns a clock simulation over n agents with m hours where
// the first juntaSize agents form the junta. maxPhase bounds the
// bookkeeping (the simulation may run past it).
func NewProtocol(n, m, juntaSize int, maxPhase int) *Protocol {
	if juntaSize < 1 || juntaSize > n {
		panic("clock: junta size out of range")
	}
	c := New(m)
	p := &Protocol{
		clock:      c,
		states:     make([]State, n),
		junta:      make([]bool, n),
		firstEnter: make([]int64, maxPhase+2),
		lastEnter:  make([]int64, maxPhase+2),
		entered:    make([]int, maxPhase+2),
		maxPhase:   uint32(maxPhase),
	}
	for i := 0; i < juntaSize; i++ {
		p.junta[i] = true
	}
	p.entered[0] = n
	return p
}

// N returns the population size.
func (p *Protocol) N() int { return len(p.states) }

// Interact applies one transition.
func (p *Protocol) Interact(u, v int, _ *rng.Rand) {
	p.t++
	pu, pv := p.states[u].Phase, p.states[v].Phase
	p.clock.Tick(&p.states[u], &p.states[v], p.junta[u], p.junta[v])
	p.record(pu, p.states[u].Phase)
	p.record(pv, p.states[v].Phase)
}

func (p *Protocol) record(oldPhase, newPhase uint32) {
	for q := oldPhase + 1; q <= newPhase && q <= p.maxPhase; q++ {
		if p.entered[q] == 0 {
			p.firstEnter[q] = p.t
		}
		p.entered[q]++
		if p.entered[q] == len(p.states) {
			p.lastEnter[q] = p.t
		}
	}
}

// Converged reports whether every agent has completed maxPhase phases.
func (p *Protocol) Converged() bool {
	return p.entered[p.maxPhase] == len(p.states)
}

// PhaseInterval returns the interval D_i = [Dstart, Dend] for phase i:
// Dstart is the interaction at which the last agent entered phase i and
// Dend+1 the interaction at which the first agent left it (entered i+1).
// ok is false if the data is incomplete or the phases overlapped
// improperly (some agent entered i+1 before all agents reached i).
func (p *Protocol) PhaseInterval(i int) (dstart, dend int64, ok bool) {
	if i < 0 || uint32(i+1) > p.maxPhase {
		return 0, 0, false
	}
	if p.entered[i] < len(p.states) || p.entered[i+1] == 0 {
		return 0, 0, false
	}
	dstart = p.lastEnter[i]
	dend = p.firstEnter[i+1] - 1
	return dstart, dend, dend >= dstart
}

// State returns a copy of agent i's clock state.
func (p *Protocol) State(i int) State { return p.states[i] }

// Clock returns the clock configuration.
func (p *Protocol) Clock() Clock { return p.clock }

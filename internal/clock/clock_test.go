package clock

import (
	"math"
	"testing"
	"testing/quick"

	"popcount/internal/sim"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, 2, 3, 5, 130, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
	if c := New(8); c.M != 8 || c.K != DefaultK {
		t.Fatalf("New(8) = %+v", c)
	}
	for _, badK := range []int{0, 121, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWithModulus(8, %d) did not panic", badK)
				}
			}()
			NewWithModulus(8, badK)
		}()
	}
}

func TestHourAndPhaseIdx(t *testing.T) {
	c := NewWithModulus(8, 4)
	s := State{Val: 2*8 + 5} // phase index 2, hour 5
	if c.Hour(s) != 5 {
		t.Fatalf("Hour = %d, want 5", c.Hour(s))
	}
	if c.PhaseIdx(s) != 2 {
		t.Fatalf("PhaseIdx = %d, want 2", c.PhaseIdx(s))
	}
	if c.PhaseMod(s, 2) != 0 {
		t.Fatalf("PhaseMod(2) = %d, want 0", c.PhaseMod(s, 2))
	}
}

func TestPhaseModRequiresDivisor(t *testing.T) {
	c := NewWithModulus(8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("PhaseMod with non-divisor did not panic")
		}
	}()
	c.PhaseMod(State{}, 3)
}

func TestPhasesSince(t *testing.T) {
	c := NewWithModulus(8, 10)
	s := State{Val: 3 * 8} // phase index 3
	if got := c.PhasesSince(s, 1); got != 2 {
		t.Fatalf("PhasesSince = %d, want 2", got)
	}
	if got := c.PhasesSince(s, 8); got != 5 { // wrap: 8→9→0→1→2→3
		t.Fatalf("PhasesSince wrap = %d, want 5", got)
	}
}

func TestTickAdoption(t *testing.T) {
	c := NewWithModulus(8, 4)
	u := State{Val: 1}
	v := State{Val: 3}
	c.Tick(&u, &v, false, false)
	if u.Val != 3 {
		t.Fatalf("behind agent did not adopt: val %d", u.Val)
	}
	if v.Val != 3 {
		t.Fatalf("ahead agent changed: val %d", v.Val)
	}
	if u.FirstTick || v.FirstTick {
		t.Fatal("no boundary crossed, but FirstTick set")
	}
}

func TestTickCrossingSetsFirstTickAndPhaseIdx(t *testing.T) {
	c := NewWithModulus(8, 4)
	u := State{Val: 7} // phase index 0, hour 7
	v := State{Val: 9} // phase index 1, hour 1
	c.Tick(&u, &v, false, false)
	if u.Val != 9 || !u.FirstTick || u.Phase != 1 {
		t.Fatalf("crossing not detected: %+v", u)
	}
	if c.PhaseIdx(u) != 1 {
		t.Fatalf("phase index = %d, want 1", c.PhaseIdx(u))
	}
}

func TestJuntaAdvancesOnEqual(t *testing.T) {
	c := NewWithModulus(8, 4)
	u := State{Val: 5}
	v := State{Val: 5}
	c.Tick(&u, &v, true, false)
	if u.Val != 6 {
		t.Fatalf("junta member did not advance: %d", u.Val)
	}
	if v.Val != 5 {
		t.Fatalf("non-junta member advanced: %d", v.Val)
	}
}

func TestJuntaWrapAroundFullCircle(t *testing.T) {
	// Wrapping the extended circle (K·m − 1 → 0) crosses an hour boundary
	// and resets the phase index to 0.
	c := NewWithModulus(8, 4)
	u := State{Val: 31, Phase: 11}
	v := State{Val: 31}
	c.Tick(&u, &v, true, false)
	if u.Val != 0 || u.Phase != 12 || !u.FirstTick {
		t.Fatalf("full-circle wrap mishandled: %+v", u)
	}
	if c.PhaseIdx(u) != 0 {
		t.Fatalf("phase index after wrap = %d", c.PhaseIdx(u))
	}
}

func TestMultiPhaseJumpCountsCrossings(t *testing.T) {
	// An agent far behind adopts forward across several phase boundaries;
	// all of them must be counted.
	c := NewWithModulus(8, 60)
	u := State{Val: 0}
	v := State{Val: 8 * 3} // 3 phases ahead
	c.Tick(&u, &v, false, false)
	if u.Phase != 3 || !u.FirstTick {
		t.Fatalf("multi-phase jump: %+v, want Phase=3", u)
	}
}

func TestPhaseMonotoneProperty(t *testing.T) {
	c := NewWithModulus(16, 4)
	span := uint16(64)
	err := quick.Check(func(a, b uint16, ju, jv bool) bool {
		u := State{Val: a % span, Phase: 5}
		v := State{Val: b % span, Phase: 7}
		pu, pv := u, v
		c.Tick(&u, &v, ju, jv)
		return u.Phase >= pu.Phase && v.Phase >= pv.Phase &&
			u.Val < span && v.Val < span
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTickOneLeavesPartnerUntouched(t *testing.T) {
	c := NewWithModulus(8, 4)
	w := State{Val: 1}
	c.TickOne(&w, 3, false)
	if w.Val != 3 {
		t.Fatalf("TickOne did not advance w: %+v", w)
	}
}

func TestProtocolPhasesAreThetaNLogN(t *testing.T) {
	// Lemma 5: phase intervals D_i have length Θ(n log n) and the phases
	// are properly nested (last agent enters i before first agent leaves).
	for _, n := range []int{1 << 10, 1 << 13} {
		j := 2 * sim.Log2Ceil(n) // junta of Θ(log n) size, as elected in practice
		p := NewProtocol(n, DefaultM, j, 5)
		res, err := sim.Run(p, sim.Config{Seed: uint64(n), MaxInteractions: int64(n) * 5000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: clock did not complete 5 phases", n)
		}
		for i := 1; i <= 3; i++ {
			ds, de, ok := p.PhaseInterval(i)
			if !ok {
				t.Fatalf("n=%d phase %d: invalid interval (overlap violated)", n, i)
			}
			norm := float64(de-ds) / (float64(n) * math.Log(float64(n)))
			if norm < 1 || norm > 30 {
				t.Errorf("n=%d phase %d: length %.2f × n ln n outside [1, 30]", n, i, norm)
			}
		}
	}
}

func TestPhaseIdxAgreesAcrossAgentsAfterRun(t *testing.T) {
	// The synchronized modular phase counter must agree across agents
	// whenever they are in the same phase; after a run, indices may differ
	// by at most 1 (mod K) between lagging and leading agents.
	n := 512
	p := NewProtocol(n, 16, 8, 4)
	if _, err := sim.Run(p, sim.Config{Seed: 3, MaxInteractions: int64(n) * 2000}); err != nil {
		t.Fatal(err)
	}
	c := p.Clock()
	counts := map[uint8]int{}
	for i := 0; i < n; i++ {
		counts[c.PhaseIdx(p.State(i))]++
	}
	if len(counts) > 2 {
		t.Fatalf("agents spread over %d phase indices: %v", len(counts), counts)
	}
}

func TestProtocolJuntaSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for junta size 0")
		}
	}()
	NewProtocol(10, 8, 0, 3)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("constant x accepted")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestScalingExponentRecoversPowerLaw(t *testing.T) {
	// Property: for T(n) = c·n^e the fitted exponent recovers e.
	err := quick.Check(func(c8, e8 uint8) bool {
		c := 1 + float64(c8%50)
		e := 0.5 + float64(e8%30)/10 // e ∈ [0.5, 3.4]
		ns := []int{100, 200, 400, 800, 1600}
		ts := make([]float64, len(ns))
		for i, n := range ns {
			ts[i] = c * math.Pow(float64(n), e)
		}
		got, err := ScalingExponent(ns, ts)
		return err == nil && almostEqual(got, e, 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalingExponentRejectsNonPositive(t *testing.T) {
	if _, err := ScalingExponent([]int{1, 0}, []float64{1, 1}); err == nil {
		t.Error("zero n accepted")
	}
	if _, err := ScalingExponent([]int{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Fraction(xs, func(x float64) bool { return x > 2 }); got != 0.5 {
		t.Fatalf("Fraction = %v", got)
	}
	if !math.IsNaN(Fraction(nil, func(float64) bool { return true })) {
		t.Error("Fraction of empty sample should be NaN")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty sample should be NaN")
	}
}

// Package stats provides the small statistics toolkit used by the
// experiment harness: summary statistics, quantiles, and least-squares
// regression on log-log data to estimate empirical scaling exponents.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (NaN for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit holds the result of a least-squares line fit y = a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitLine fits y = a + b·x by least squares. Both slices must have equal
// length ≥ 2 and xs must not be constant.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least 2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: constant x values")
	}
	b := sxy / sxx
	fit := LinearFit{Slope: b, Intercept: my - b*mx, R2: 1}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// ScalingExponent fits T(n) = c·n^e on log-log axes and returns the
// empirical exponent e. Inputs must be positive.
func ScalingExponent(ns []int, ts []float64) (exponent float64, err error) {
	if len(ns) != len(ts) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	xs := make([]float64, len(ns))
	ys := make([]float64, len(ts))
	for i := range ns {
		if ns[i] <= 0 || ts[i] <= 0 {
			return 0, errors.New("stats: non-positive value in log-log fit")
		}
		xs[i] = math.Log(float64(ns[i]))
		ys[i] = math.Log(ts[i])
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}

// Fraction returns the fraction of xs for which pred holds (NaN when
// empty).
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := 0
	for _, x := range xs {
		if pred(x) {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

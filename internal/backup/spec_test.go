package backup_test

import (
	"testing"

	"popcount/internal/backup"
	"popcount/internal/sim"
)

// TestSpecAgentMatchesApproxBitForBit pins the spec-derived agent form
// of the approximate backup against the hand-written simulation: the
// rule is deterministic, so equal seeds must produce identical runs
// and identical per-agent states.
func TestSpecAgentMatchesApproxBitForBit(t *testing.T) {
	const n = 100
	cfg := sim.Config{Seed: 0xB1, CheckEvery: n, MaxInteractions: int64(n) * int64(n) * 2000}
	hand := backup.NewApprox(n)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(backup.NewApproxSpec(n))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		if got, want := agent.Output(i), hand.Output(i); got != want {
			t.Fatalf("agent %d: spec output %d, hand-written %d", i, got, want)
		}
	}
	if got, want := agent.View().N(), int64(n); got != want {
		t.Fatalf("view population %d, want %d", got, want)
	}
}

// TestSpecAgentMatchesSparseApproxBitForBit pins the reduced-state
// variant the same way (via outputs — the sparse protocol keeps no
// State accessor).
func TestSpecAgentMatchesSparseApproxBitForBit(t *testing.T) {
	const n = 64
	cfg := sim.Config{Seed: 0xB2, CheckEvery: n, MaxInteractions: int64(n) * int64(n) * 2000}
	hand := backup.NewSparseApprox(n)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(backup.NewSparseApproxSpec(n))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		if got, want := agent.Output(i), hand.Output(i); got != want {
			t.Fatalf("agent %d: spec output %d, hand-written %d", i, got, want)
		}
	}
}

// TestSpecAgentMatchesExactBitForBit pins the exact backup spec.
func TestSpecAgentMatchesExactBitForBit(t *testing.T) {
	const n = 128
	cfg := sim.Config{Seed: 0xB3, CheckEvery: n, MaxInteractions: int64(n) * int64(n) * 1000}
	hand := backup.NewExact(n)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(backup.NewExactSpec(n))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		if got, want := agent.Output(i), hand.Output(i); got != want {
			t.Fatalf("agent %d: spec output %d, hand-written %d", i, got, want)
		}
	}
}

// TestBackupSpecsCountEngine runs the backup specs on the count engine
// (exact and batched) to the Lemma 12/13 terminal configurations,
// checking token conservation through the skip path: the approximate
// backup conserves Σ 2^k over piles, the exact backup conserves Σ
// unmerged tokens — both must equal n at every probe.
func TestBackupSpecsCountEngine(t *testing.T) {
	const n = 256
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"exact", false}, {"batched", true}} {
		e, err := sim.NewCountEngine(sim.NewSpecCount(backup.NewApproxSpec(n)),
			sim.Config{Seed: 0xB4, CheckEvery: n, BatchSteps: mode.batch,
				MaxInteractions: int64(n) * int64(n) * 2000})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 5; probe++ {
			e.Step(int64(n) * int64(n) / 4)
			var tokens int64
			e.Counts().ForEach(func(code uint64, cnt int64) {
				if k := backup.DecodeApprox(code).K; k >= 0 {
					tokens += cnt << uint(k)
				}
			})
			if tokens != n {
				t.Fatalf("approx/%s: Σ 2^k = %d after %d interactions, want %d",
					mode.name, tokens, e.Interactions(), n)
			}
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("approx/%s: backup did not reach Lemma 12's configuration", mode.name)
		}
		if out, ok := e.PluralityOutput(); !ok || out != 8 {
			t.Fatalf("approx/%s: plurality output %d (ok=%v), want ⌊log 256⌋ = 8", mode.name, out, ok)
		}

		ex, err := sim.NewCountEngine(sim.NewSpecCount(backup.NewExactSpec(n)),
			sim.Config{Seed: 0xB5, CheckEvery: n, BatchSteps: mode.batch,
				MaxInteractions: int64(n) * int64(n) * 1000})
		if err != nil {
			t.Fatal(err)
		}
		res, err = ex.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("exact/%s: backup did not converge", mode.name)
		}
		if out, ok := ex.PluralityOutput(); !ok || out != n {
			t.Fatalf("exact/%s: plurality output %d (ok=%v), want %d", mode.name, out, ok, n)
		}
	}
}

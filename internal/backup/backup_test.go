package backup

import (
	"testing"
	"testing/quick"

	"popcount/internal/sim"
)

func TestApproxInteractMerge(t *testing.T) {
	u := ApproxState{K: 2, KMax: 2}
	v := ApproxState{K: 2, KMax: 2}
	ApproxInteract(&u, &v)
	if u.K != 3 || v.K != -1 {
		t.Fatalf("merge failed: u=%+v v=%+v", u, v)
	}
	if u.KMax != 3 || v.KMax != 3 {
		t.Fatalf("kmax not updated after merge: u=%+v v=%+v", u, v)
	}
}

func TestApproxInteractNoMergeDifferent(t *testing.T) {
	u := ApproxState{K: 1, KMax: 1}
	v := ApproxState{K: 3, KMax: 3}
	ApproxInteract(&u, &v)
	if u.K != 1 || v.K != 3 {
		t.Fatalf("piles of different sizes merged: u=%+v v=%+v", u, v)
	}
	if u.KMax != 3 || v.KMax != 3 {
		t.Fatalf("kmax not exchanged: u=%+v v=%+v", u, v)
	}
}

func TestApproxEmptyNeverMerges(t *testing.T) {
	u := ApproxState{K: -1, KMax: 4}
	v := ApproxState{K: -1, KMax: 2}
	ApproxInteract(&u, &v)
	if u.K != -1 || v.K != -1 {
		t.Fatalf("empty agents produced tokens: u=%+v v=%+v", u, v)
	}
	if u.KMax != 4 || v.KMax != 4 {
		t.Fatalf("kmax broadcast failed: u=%+v v=%+v", u, v)
	}
}

func TestApproxConservesTokens(t *testing.T) {
	tokens := func(k int16) int64 {
		if k < 0 {
			return 0
		}
		return 1 << uint(k)
	}
	err := quick.Check(func(a, b int8) bool {
		ku := int16(a % 30)
		kv := int16(b % 30)
		if ku < -1 {
			ku = -1
		}
		if kv < -1 {
			kv = -1
		}
		u := ApproxState{K: ku, KMax: ku}
		v := ApproxState{K: kv, KMax: kv}
		before := tokens(u.K) + tokens(v.K)
		ApproxInteract(&u, &v)
		return tokens(u.K)+tokens(v.K) == before
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestApproxBackupConvergesToBinaryRepresentation(t *testing.T) {
	// Lemma 12 at small n (the protocol needs Θ(n² log² n) interactions).
	for _, n := range []int{13, 32, 100} {
		p := NewApprox(n)
		res, err := sim.Run(p, sim.Config{
			Seed:            uint64(n),
			MaxInteractions: int64(n) * int64(n) * 600,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: backup did not converge; piles=%v", n, p.PileCounts())
		}
		if p.TotalTokens() != int64(n) {
			t.Fatalf("n=%d: tokens not conserved: %d", n, p.TotalTokens())
		}
		counts := p.PileCounts()
		for i, c := range counts {
			if want := (n >> uint(i)) & 1; c != want {
				t.Errorf("n=%d: level %d holds %d piles, want %d", n, i, c, want)
			}
		}
		want := int64(log2Floor(n))
		for i := 0; i < n; i++ {
			if p.Output(i) != want {
				t.Fatalf("n=%d: agent %d outputs %d, want %d", n, i, p.Output(i), want)
			}
		}
	}
}

func TestExactInteractMerge(t *testing.T) {
	u := InitExact()
	v := InitExact()
	ExactInteract(&u, &v)
	if u.Counted || u.Count != 2 {
		t.Fatalf("initiator after merge: %+v", u)
	}
	if !v.Counted || v.Count != 2 {
		t.Fatalf("responder after merge: %+v", v)
	}
}

func TestExactInteractBroadcast(t *testing.T) {
	u := ExactState{Counted: true, Count: 7}
	v := ExactState{Counted: true, Count: 3}
	ExactInteract(&u, &v)
	if u.Count != 7 || v.Count != 7 {
		t.Fatalf("max count did not spread: u=%+v v=%+v", u, v)
	}
}

func TestExactUncountedInvariant(t *testing.T) {
	// Property: the number of uncounted agents decreases by exactly one
	// per merge and never below one in a real run.
	n := 64
	p := NewExact(n)
	res, err := sim.Run(p, sim.Config{Seed: 1, MaxInteractions: int64(n) * int64(n) * 200})
	if err != nil {
		t.Fatal(err)
	}
	if p.Uncounted() != 1 {
		t.Fatalf("uncounted agents: %d, want 1", p.Uncounted())
	}
	if !res.Converged {
		t.Fatal("exact backup did not converge")
	}
}

func TestExactBackupOutputsN(t *testing.T) {
	for _, n := range []int{7, 50, 200} {
		p := NewExact(n)
		res, err := sim.Run(p, sim.Config{
			Seed:            uint64(n),
			MaxInteractions: int64(n) * int64(n) * 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		for i := 0; i < n; i++ {
			if p.Output(i) != int64(n) {
				t.Fatalf("n=%d: agent %d outputs %d", n, i, p.Output(i))
			}
		}
	}
}

func TestSparseApproxBackup(t *testing.T) {
	// Theorem 1.3 / Appendix C.1: the reduced-state variant converges
	// with at most log n agents not knowing ⌊log n⌋.
	for _, n := range []int{13, 50, 100} {
		p := NewSparseApprox(n)
		res, err := sim.Run(p, sim.Config{
			Seed:            uint64(n),
			MaxInteractions: int64(n) * int64(n) * 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: sparse backup did not converge", n)
		}
		if w := p.Wrong(); w > log2Floor(n)+1 {
			t.Errorf("n=%d: %d agents wrong, allowed ≤ log n = %d", n, w, log2Floor(n))
		}
	}
}

func TestSparseApproxPileHoldersOutputOwnPile(t *testing.T) {
	p := NewSparseApprox(32)
	if _, err := sim.Run(p, sim.Config{Seed: 3, MaxInteractions: 32 * 32 * 800}); err != nil {
		t.Fatal(err)
	}
	// n = 32 = 2^5: a single pile of 32 tokens remains; its holder
	// outputs 5, as does everyone else (binary representation has one bit).
	for i := 0; i < 32; i++ {
		if p.Output(i) != 5 {
			t.Fatalf("agent %d outputs %d, want 5", i, p.Output(i))
		}
	}
}

func TestExactInteractUncountedKeepsTokens(t *testing.T) {
	// The deviation note on ExactInteract: an uncounted agent must keep
	// its exact token count in the broadcast branch.
	u := ExactState{Counted: false, Count: 3}
	v := ExactState{Counted: true, Count: 5}
	ExactInteract(&u, &v)
	if u.Count != 3 {
		t.Fatalf("uncounted agent's tokens corrupted: %+v", u)
	}
	if v.Count != 5 {
		t.Fatalf("counted agent changed: %+v", v)
	}
}

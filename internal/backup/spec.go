package backup

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Approx spec state codes pack the (k, kmax) pair, each shifted by one
// so the empty marker −1 maps to 0: code = (k+1)·2⁷ + (kmax+1). Both
// variables stay below ⌊log n⌋ + 1 ≤ 63 (Lemma 12), so 7 bits each
// suffice and the packing is dense over the reachable fragment.
const approxKShift = 7

// EncodeApprox packs an approximate-backup agent state into its spec
// state code.
func EncodeApprox(s ApproxState) uint64 {
	return uint64(s.K+1)<<approxKShift | uint64(s.KMax+1)
}

// DecodeApprox unpacks a spec state code.
func DecodeApprox(c uint64) ApproxState {
	return ApproxState{
		K:    int16(c>>approxKShift) - 1,
		KMax: int16(c&((1<<approxKShift)-1)) - 1,
	}
}

// approxSelfLoop reports the certain no-ops of Equation (3): no merge
// (different or empty pile exponents) and nothing for the maximum
// broadcast to move.
func approxSelfLoop(u, v ApproxState) bool {
	if u.K == v.K && u.K >= 0 {
		return false
	}
	kmax := u.KMax
	for _, x := range []int16{v.KMax, u.K, v.K} {
		if x > kmax {
			kmax = x
		}
	}
	return u.KMax == kmax && v.KMax == kmax
}

// approxBinaryRep checks Lemma 12's pile condition over a configuration
// view: for each level i up to want, the number of agents holding 2^i
// tokens equals the i-th bit of n.
func approxBinaryRep(v sim.ConfigView, want int16, kOf func(code uint64) int16) bool {
	n := v.N()
	var counts [64]int64
	v.ForEach(func(code uint64, cnt int64) {
		if k := kOf(code); k >= 0 {
			counts[k] += cnt
		}
	})
	for i := int16(0); i <= want; i++ {
		if counts[i] != (n>>uint(i))&1 {
			return false
		}
	}
	return true
}

// NewApproxSpec returns the canonical transition spec of the
// approximate backup protocol (Appendix C.1, Equation (3)) over n
// agents. The alphabet is at most (log n + 1)² states and the
// equilibrium is no-op dominated — the count engine's skip path and the
// batch planner turn the protocol's Θ(n² log² n) interactions into
// roughly the number of merges — so the spec opts into both.
func NewApproxSpec(n int) *sim.Spec {
	return &sim.Spec{
		Name: "backup-approx",
		N:    n,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{EncodeApprox(InitApprox()): int64(n)}
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			su, sv := DecodeApprox(qu), DecodeApprox(qv)
			ApproxInteract(&su, &sv)
			return EncodeApprox(su), EncodeApprox(sv)
		},
		SelfLoop: func(qu, qv uint64) bool {
			return approxSelfLoop(DecodeApprox(qu), DecodeApprox(qv))
		},
		Skip:        true,
		PureDelta:   true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			want := int16(log2Floor(int(v.N())))
			ok := true
			v.ForEach(func(code uint64, _ int64) {
				if DecodeApprox(code).KMax != want {
					ok = false
				}
			})
			return ok && approxBinaryRep(v, want, func(code uint64) int16 {
				return DecodeApprox(code).K
			})
		},
		Output: func(q uint64) int64 { return int64(DecodeApprox(q).KMax) },
	}
}

// NewSparseApproxSpec returns the canonical transition spec of the
// reduced-state approximate backup (Theorem 1.3): pile holders pin
// kmax to their own exponent, so each agent needs only O(log n) states.
func NewSparseApproxSpec(n int) *sim.Spec {
	return &sim.Spec{
		Name: "backup-approx-sparse",
		N:    n,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{EncodeApprox(InitApprox()): int64(n)}
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			su, sv := DecodeApprox(qu), DecodeApprox(qv)
			ApproxInteract(&su, &sv)
			if su.K >= 0 {
				su.KMax = su.K
			}
			if sv.K >= 0 {
				sv.KMax = sv.K
			}
			return EncodeApprox(su), EncodeApprox(sv)
		},
		Skip:        true,
		PureDelta:   true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			// Theorem 1.3 allows the ≤ log n pile holders to disagree;
			// every empty agent must output ⌊log n⌋.
			want := int16(log2Floor(int(v.N())))
			ok := true
			v.ForEach(func(code uint64, _ int64) {
				s := DecodeApprox(code)
				if s.K < 0 && s.KMax != want {
					ok = false
				}
			})
			return ok && approxBinaryRep(v, want, func(code uint64) int16 {
				return DecodeApprox(code).K
			})
		},
		Output: func(q uint64) int64 { return int64(DecodeApprox(q).KMax) },
	}
}

// Exact spec state codes carry the token count in the high bits and the
// counted flag in the low bit. Counts reach at most n, so the packing
// is exact for every population the engines accept.
func encodeExact(s ExactState) uint64 {
	c := uint64(s.Count) << 1
	if s.Counted {
		c |= 1
	}
	return c
}

func decodeExact(c uint64) ExactState {
	return ExactState{Counted: c&1 != 0, Count: int64(c >> 1)}
}

// NewExactSpec returns the canonical transition spec of the exact
// backup protocol (Appendix C.2, Equation (4)) over n agents. The
// occupied alphabet at any instant is small — a handful of distinct
// merged counts — and the equilibrium is no-op dominated, so the spec
// opts into the skip path. Note the skip path's cost model: the merge
// chain DISCOVERS ~2n distinct count values over a run, and the
// engine's no-op adjacency is O(discovered²) to build, so the count
// forms pay a quadratic construction term past n ≈ 10⁵ (E18 records
// the practical range).
func NewExactSpec(n int) *sim.Spec {
	return &sim.Spec{
		Name: "backup-exact",
		N:    n,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{encodeExact(InitExact()): int64(n)}
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			su, sv := decodeExact(qu), decodeExact(qv)
			ExactInteract(&su, &sv)
			return encodeExact(su), encodeExact(sv)
		},
		PureDelta: true,
		SelfLoop: func(qu, qv uint64) bool {
			su, sv := decodeExact(qu), decodeExact(qv)
			if !su.Counted && !sv.Counted {
				return false // merge
			}
			m := su.Count
			if sv.Count > m {
				m = sv.Count
			}
			return (!su.Counted || su.Count == m) && (!sv.Counted || sv.Count == m)
		},
		Skip:        true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			// Every agent outputs n: exactly one occupied state per
			// counted flag value at count n — i.e. all counts equal n.
			ok := true
			v.ForEach(func(code uint64, _ int64) {
				if decodeExact(code).Count != v.N() {
					ok = false
				}
			})
			return ok
		},
		Output: func(q uint64) int64 { return decodeExact(q).Count },
	}
}

// Package backup implements the slow, always-correct backup protocols of
// Appendix C, which the hybrid (stable) protocols fall back to when their
// error-detection mechanisms fire.
//
// Approximate counting (Appendix C.1, Equation (3), Lemma 12): every
// agent starts with one token (k = 0, i.e. 2⁰ tokens). When two agents
// hold the same number of tokens the initiator takes all of them,
// doubling its pile (k+1); the responder becomes empty (k = −1). Agents
// propagate the maximum pile logarithm kmax by maximum broadcast. The
// process converges to the binary representation of n: level i holds
// exactly n_i piles (the i-th bit of n), the maximum pile is 2^⌊log n⌋,
// and every agent's kmax equals ⌊log n⌋. It uses at most (log n + 1)²
// states and stabilizes w.h.p. within O(n² log² n) interactions.
//
// Exact counting (Appendix C.2, Equation (4), Lemma 13): every agent
// starts uncounted with one token. When two uncounted agents meet, the
// initiator absorbs the responder's tokens and stays uncounted; the
// responder becomes counted. Both record the merged count; counted agents
// spread the maximum observed count. Exactly one uncounted agent remains
// and eventually holds all n tokens, so every agent outputs n. The
// protocol stabilizes w.h.p. within O(n² log n) interactions.
package backup

import "popcount/internal/rng"

// ApproxState is the per-agent state of the approximate backup protocol:
// the pair (k, kmax). k = −1 encodes an empty agent.
type ApproxState struct {
	K    int16
	KMax int16
}

// InitApprox returns the initial state (0, 0): one token.
func InitApprox() ApproxState { return ApproxState{K: 0, KMax: 0} }

// ApproxInteract applies Equation (3) to initiator u and responder v.
func ApproxInteract(u, v *ApproxState) {
	if u.K == v.K && u.K >= 0 {
		u.K++
		v.K = -1
	}
	kmax := u.KMax
	for _, x := range []int16{v.KMax, u.K, v.K} {
		if x > kmax {
			kmax = x
		}
	}
	u.KMax, v.KMax = kmax, kmax
}

// ApproxProtocol is a standalone simulation of the approximate backup.
type ApproxProtocol struct {
	states []ApproxState
}

// NewApprox returns the approximate backup over n agents.
func NewApprox(n int) *ApproxProtocol {
	s := make([]ApproxState, n)
	for i := range s {
		s[i] = InitApprox()
	}
	return &ApproxProtocol{states: s}
}

// N returns the population size.
func (p *ApproxProtocol) N() int { return len(p.states) }

// Interact applies one transition.
func (p *ApproxProtocol) Interact(u, v int, _ *rng.Rand) {
	ApproxInteract(&p.states[u], &p.states[v])
}

// Converged reports whether the configuration matches Lemma 12: the pile
// sizes form the binary representation of n and every agent's kmax equals
// ⌊log n⌋.
func (p *ApproxProtocol) Converged() bool {
	n := len(p.states)
	var counts [64]int
	want := int16(log2Floor(n))
	for i := range p.states {
		if p.states[i].KMax != want {
			return false
		}
		if k := p.states[i].K; k >= 0 {
			counts[k]++
		}
	}
	for i := 0; i <= int(want); i++ {
		if counts[i] != (n>>uint(i))&1 {
			return false
		}
	}
	return true
}

// Output returns agent i's kmax (the estimate ⌊log n⌋ at convergence).
func (p *ApproxProtocol) Output(i int) int64 { return int64(p.states[i].KMax) }

// TotalTokens returns Σ 2^k over non-empty agents (conserved, equals n).
func (p *ApproxProtocol) TotalTokens() int64 {
	var s int64
	for i := range p.states {
		if k := p.states[i].K; k >= 0 {
			s += int64(1) << uint(k)
		}
	}
	return s
}

// PileCounts returns, for each level i, the number of agents holding 2^i
// tokens.
func (p *ApproxProtocol) PileCounts() []int {
	counts := make([]int, 64)
	maxK := 0
	for i := range p.states {
		if k := p.states[i].K; k >= 0 {
			counts[k]++
			if int(k) > maxK {
				maxK = int(k)
			}
		}
	}
	return counts[:maxK+1]
}

// SparseApproxProtocol is the reduced-state variant of the approximate
// backup used by Theorem 1.3 (Appendix C.1): it is sufficient that all
// but log n agents know the approximation. Agents holding a pile (k ≥ 0)
// do not maintain a separate kmax variable — their output is their own
// pile exponent — so each agent needs only O(log n) states instead of
// O(log² n). At convergence the ≤ ⌊log n⌋ + 1 pile holders may output a
// value below ⌊log n⌋; every empty agent outputs ⌊log n⌋ exactly.
type SparseApproxProtocol struct {
	states []ApproxState
}

// NewSparseApprox returns the reduced-state approximate backup over n
// agents.
func NewSparseApprox(n int) *SparseApproxProtocol {
	s := make([]ApproxState, n)
	for i := range s {
		s[i] = InitApprox()
	}
	return &SparseApproxProtocol{states: s}
}

// N returns the population size.
func (p *SparseApproxProtocol) N() int { return len(p.states) }

// Interact applies Equation (3) with the sparse kmax rule: pile holders
// do not store kmax (it is pinned to their own k).
func (p *SparseApproxProtocol) Interact(u, v int, _ *rng.Rand) {
	a, b := &p.states[u], &p.states[v]
	ApproxInteract(a, b)
	if a.K >= 0 {
		a.KMax = a.K
	}
	if b.K >= 0 {
		b.KMax = b.K
	}
}

// Output returns agent i's output: kmax for empty agents, the own pile
// exponent for pile holders.
func (p *SparseApproxProtocol) Output(i int) int64 { return int64(p.states[i].KMax) }

// Converged reports whether the piles form the binary representation of
// n and every empty agent outputs ⌊log n⌋ (Theorem 1.3 allows the
// ≤ log n pile holders to disagree).
func (p *SparseApproxProtocol) Converged() bool {
	n := len(p.states)
	var counts [64]int
	want := int16(log2Floor(n))
	for i := range p.states {
		s := &p.states[i]
		if s.K >= 0 {
			counts[s.K]++
		} else if s.KMax != want {
			return false
		}
	}
	for i := 0; i <= int(want); i++ {
		if counts[i] != (n>>uint(i))&1 {
			return false
		}
	}
	return true
}

// Wrong returns the number of agents whose output differs from ⌊log n⌋.
// Theorem 1.3 tolerates up to log n of them.
func (p *SparseApproxProtocol) Wrong() int {
	want := int64(log2Floor(len(p.states)))
	c := 0
	for i := range p.states {
		if p.Output(i) != want {
			c++
		}
	}
	return c
}

// ExactState is the per-agent state of the exact backup protocol: the
// pair (counted, n).
type ExactState struct {
	Counted bool
	Count   int64
}

// InitExact returns the initial state (false, 1).
func InitExact() ExactState { return ExactState{Counted: false, Count: 1} }

// ExactInteract applies Equation (4) to initiator u and responder v.
//
// Deviation from the paper's literal equation: in the non-merge branch,
// only counted agents adopt max{nu, nv}. Taking the maximum on an
// uncounted agent as well (as Equation (4) literally reads) would
// overwrite its exact token count with a broadcast estimate and destroy
// token conservation (e.g. n = 3 can then stabilize on the output 4).
// Restricting the maximum rule to counted agents matches the protocol's
// intent ("agents which have already been counted broadcast the maximum
// value they have observed so far") and makes Lemma 13 hold.
func ExactInteract(u, v *ExactState) {
	if !u.Counted && !v.Counted {
		sum := u.Count + v.Count
		u.Count = sum
		v.Counted = true
		v.Count = sum
		return
	}
	m := u.Count
	if v.Count > m {
		m = v.Count
	}
	if u.Counted {
		u.Count = m
	}
	if v.Counted {
		v.Count = m
	}
}

// ExactProtocol is a standalone simulation of the exact backup.
type ExactProtocol struct {
	states    []ExactState
	uncounted int
}

// NewExact returns the exact backup over n agents.
func NewExact(n int) *ExactProtocol {
	s := make([]ExactState, n)
	for i := range s {
		s[i] = InitExact()
	}
	return &ExactProtocol{states: s, uncounted: n}
}

// N returns the population size.
func (p *ExactProtocol) N() int { return len(p.states) }

// Interact applies one transition.
func (p *ExactProtocol) Interact(u, v int, _ *rng.Rand) {
	cv := p.states[v].Counted
	ExactInteract(&p.states[u], &p.states[v])
	if !cv && p.states[v].Counted {
		p.uncounted--
	}
}

// Converged reports whether every agent outputs n.
func (p *ExactProtocol) Converged() bool {
	n := int64(len(p.states))
	for i := range p.states {
		if p.states[i].Count != n {
			return false
		}
	}
	return true
}

// Output returns agent i's count.
func (p *ExactProtocol) Output(i int) int64 { return p.states[i].Count }

// Uncounted returns the number of agents still holding unmerged tokens.
func (p *ExactProtocol) Uncounted() int { return p.uncounted }

func log2Floor(n int) int {
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

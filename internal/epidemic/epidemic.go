// Package epidemic implements one-way epidemics (broadcast) and maximum
// broadcast from Section 2 of the paper.
//
// The transition is δ(u, v) = (max{u, v}, v): the initiator adopts the
// responder's value if it is larger. Starting from at least one agent
// holding the maximum value, the maximum spreads to all agents within
// O(n log n) interactions w.h.p. (Lemma 3).
//
// The rule is written down once, as a transition spec (NewSpec): the
// agent-array, count-based and batched engine forms all derive from it.
// Update and UpdateBoth expose the bare value rule for the composed
// protocols in internal/core, which run broadcast as one ingredient of a
// richer per-agent state.
package epidemic

// Update applies the one-way epidemic transition to the initiator's value
// given the responder's value, returning the updated initiator value.
func Update(initiator, responder int64) int64 {
	if responder > initiator {
		return responder
	}
	return initiator
}

// UpdateBoth applies the epidemic transition in both directions, which is
// how composed protocols in this repository use broadcast (every
// interaction is an opportunity for information to flow either way; this
// only speeds up spreading and preserves the one-way analysis as an upper
// bound).
func UpdateBoth(u, v *int64) {
	if *u < *v {
		*u = *v
	} else if *v < *u {
		*v = *u
	}
}

// Package epidemic implements one-way epidemics (broadcast) and maximum
// broadcast from Section 2 of the paper.
//
// The transition is δ(u, v) = (max{u, v}, v): the initiator adopts the
// responder's value if it is larger. Starting from at least one agent
// holding the maximum value, the maximum spreads to all agents within
// O(n log n) interactions w.h.p. (Lemma 3).
package epidemic

import (
	"popcount/internal/rng"
)

// Update applies the one-way epidemic transition to the initiator's value
// given the responder's value, returning the updated initiator value.
func Update(initiator, responder int64) int64 {
	if responder > initiator {
		return responder
	}
	return initiator
}

// UpdateBoth applies the epidemic transition in both directions, which is
// how composed protocols in this repository use broadcast (every
// interaction is an opportunity for information to flow either way; this
// only speeds up spreading and preserves the one-way analysis as an upper
// bound).
func UpdateBoth(u, v *int64) {
	if *u < *v {
		*u = *v
	} else if *v < *u {
		*v = *u
	}
}

// Protocol is a standalone maximum-broadcast population protocol for
// simulation and measurement. Each agent holds an int64 value; the global
// maximum spreads to everyone.
type Protocol struct {
	vals     []int64
	max      int64
	haveMax  int
	strictly bool // if true, use the strict one-way rule (initiator only)
}

// New returns a broadcast protocol over the given initial values. The
// slice is copied. If oneWay is true the protocol uses the paper's strict
// one-way rule δ(u,v) = (max{u,v}, v); otherwise values flow both ways.
func New(initial []int64, oneWay bool) *Protocol {
	vals := make([]int64, len(initial))
	copy(vals, initial)
	p := &Protocol{vals: vals, strictly: oneWay}
	p.max = vals[0]
	for _, v := range vals {
		if v > p.max {
			p.max = v
		}
	}
	for _, v := range vals {
		if v == p.max {
			p.haveMax++
		}
	}
	return p
}

// NewSingleSource returns a broadcast over n agents where only agent 0
// holds value 1 and everyone else holds 0 — the basic broadcast setting.
func NewSingleSource(n int, oneWay bool) *Protocol {
	vals := make([]int64, n)
	vals[0] = 1
	return New(vals, oneWay)
}

// N returns the population size.
func (p *Protocol) N() int { return len(p.vals) }

// Interact applies one transition.
func (p *Protocol) Interact(u, v int, _ *rng.Rand) {
	if p.vals[u] < p.vals[v] {
		p.vals[u] = p.vals[v]
		if p.vals[u] == p.max {
			p.haveMax++
		}
	} else if !p.strictly && p.vals[v] < p.vals[u] {
		p.vals[v] = p.vals[u]
		if p.vals[v] == p.max {
			p.haveMax++
		}
	}
}

// Converged reports whether every agent holds the maximum.
func (p *Protocol) Converged() bool { return p.haveMax == len(p.vals) }

// Output returns agent i's current value.
func (p *Protocol) Output(i int) int64 { return p.vals[i] }

// Informed returns the number of agents currently holding the maximum.
func (p *Protocol) Informed() int { return p.haveMax }

package epidemic

import (
	"sort"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// Counts is the configuration-level (count-based) form of Protocol for
// sim.CountEngine: the same maximum-broadcast dynamics expressed over
// value ranks instead of an agent array. State code r is the rank of a
// value in the sorted distinct initial values, so the max rule is a
// plain code comparison. Agents holding equal values are exchangeable,
// which makes the count view exact.
//
// The protocol implements sim.SelfLooper: under the strict one-way rule
// a pair is a certain no-op whenever the initiator's value is at least
// the responder's, which is the overwhelming majority of draws once the
// maximum has mostly spread — exactly the regime the engine's geometric
// skip collapses.
type Counts struct {
	n      int
	oneWay bool
	vals   []int64          // ascending distinct values; code = rank
	init   map[uint64]int64 // initial configuration over ranks
}

// NewCounts returns the count form of the broadcast protocol over the
// given initial values (the multiset is copied into rank counts).
func NewCounts(initial []int64, oneWay bool) *Counts {
	distinct := make(map[int64]struct{}, len(initial))
	for _, v := range initial {
		distinct[v] = struct{}{}
	}
	vals := make([]int64, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	rank := make(map[int64]uint64, len(vals))
	for i, v := range vals {
		rank[v] = uint64(i)
	}
	init := make(map[uint64]int64, len(vals))
	for _, v := range initial {
		init[rank[v]]++
	}
	return &Counts{n: len(initial), oneWay: oneWay, vals: vals, init: init}
}

// NewSingleSourceCounts returns the count form of the basic broadcast
// setting: one agent holds value 1, everyone else holds 0.
func NewSingleSourceCounts(n int, oneWay bool) *Counts {
	return &Counts{
		n:      n,
		oneWay: oneWay,
		vals:   []int64{0, 1},
		init:   map[uint64]int64{0: int64(n - 1), 1: 1},
	}
}

// N returns the population size.
func (p *Counts) N() int { return p.n }

// InitCounts returns the initial configuration.
func (p *Counts) InitCounts() map[uint64]int64 {
	out := make(map[uint64]int64, len(p.init))
	for k, v := range p.init {
		out[k] = v
	}
	return out
}

// Delta applies the broadcast transition to a state pair.
func (p *Counts) Delta(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
	if qv > qu {
		return qv, qv
	}
	if !p.oneWay && qu > qv {
		return qu, qu
	}
	return qu, qv
}

// DeltaDet exposes the transition matrix for batch stepping
// (sim.DeterministicDelta): the broadcast rule is deterministic and
// coin-free for every pair.
func (p *Counts) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	a, b := p.Delta(qu, qv, nil)
	return a, b, true
}

// SelfLoop reports the certainly inert pairs: equal values, and under
// the one-way rule any pair whose initiator is already at least as
// large.
func (p *Counts) SelfLoop(qu, qv uint64) bool {
	if p.oneWay {
		return qu >= qv
	}
	return qu == qv
}

// CountConverged reports whether every agent holds the maximum value.
func (p *Counts) CountConverged(c *sim.CountConfig) bool {
	return c.Count(uint64(len(p.vals)-1)) == int64(p.n)
}

// StateOutput returns the value a state's agents hold.
func (p *Counts) StateOutput(q uint64) int64 { return p.vals[q] }

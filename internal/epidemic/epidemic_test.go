package epidemic

import (
	"math"
	"testing"
	"testing/quick"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestUpdateTruthTable(t *testing.T) {
	cases := []struct{ u, v, want int64 }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {5, 5, 5}, {-3, 2, 2}, {7, -1, 7},
	}
	for _, c := range cases {
		if got := Update(c.u, c.v); got != c.want {
			t.Errorf("Update(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
}

func TestUpdateMonotone(t *testing.T) {
	// Property: Update never decreases the initiator value and never
	// exceeds the max of the two inputs.
	err := quick.Check(func(u, v int64) bool {
		got := Update(u, v)
		maxuv := u
		if v > maxuv {
			maxuv = v
		}
		return got >= u && got == maxuv
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateBothSymmetric(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		u, v := a, b
		UpdateBoth(&u, &v)
		maxab := a
		if b > maxab {
			maxab = b
		}
		return u == maxab && v == maxab
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastCompletes(t *testing.T) {
	for _, oneWay := range []bool{true, false} {
		p := sim.NewSpecAgent(NewSingleSourceSpec(512, oneWay))
		res, err := sim.Run(p, sim.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("oneWay=%v: broadcast did not complete", oneWay)
		}
		if !sim.AllOutputsEqual(p, 1) {
			t.Fatalf("oneWay=%v: some agent does not hold the max", oneWay)
		}
	}
}

func TestMaximumBroadcast(t *testing.T) {
	r := rng.New(7)
	vals := make([]int64, 300)
	var maxv int64
	for i := range vals {
		vals[i] = int64(r.Intn(1000))
		if vals[i] > maxv {
			maxv = vals[i]
		}
	}
	p := sim.NewSpecAgent(NewSpec(vals, true))
	res, err := sim.Run(p, sim.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !sim.AllOutputsEqual(p, maxv) {
		t.Fatalf("maximum broadcast failed: converged=%v", res.Converged)
	}
}

func TestSpecLayoutPreservesAgentOrder(t *testing.T) {
	vals := []int64{5, -2, 9, 5}
	p := sim.NewSpecAgent(NewSpec(vals, true))
	for i, v := range vals {
		if got := p.Output(i); got != v {
			t.Fatalf("agent %d starts with output %d, want %d", i, got, v)
		}
	}
	if MaxCode(NewSpec(vals, true)) != 2 { // ranks of {-2, 5, 9}
		t.Fatalf("MaxCode = %d, want 2", MaxCode(NewSpec(vals, true)))
	}
}

func TestBroadcastTimeIsNLogN(t *testing.T) {
	// Lemma 3 sanity check at small scale: T_bc / (n ln n) stays within a
	// modest constant band across a factor-16 range of n.
	for _, n := range []int{256, 1024, 4096} {
		var total float64
		const trials = 5
		for tr := 0; tr < trials; tr++ {
			p := sim.NewSpecAgent(NewSingleSourceSpec(n, true))
			res, err := sim.Run(p, sim.Config{Seed: uint64(100 + tr), CheckEvery: int64(n) / 8})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d trial=%d did not converge", n, tr)
			}
			total += float64(res.Interactions)
		}
		norm := total / trials / (float64(n) * math.Log(float64(n)))
		if norm < 0.5 || norm > 8 {
			t.Errorf("n=%d: T/(n ln n) = %.2f outside sanity band [0.5, 8]", n, norm)
		}
	}
}

func TestSpecCopiesInput(t *testing.T) {
	// Layout evaluates lazily, so the spec must have copied the caller's
	// slice at construction — later mutations must not leak in.
	vals := []int64{1, 2, 3}
	spec := NewSpec(vals, true)
	vals[0] = 99
	p := sim.NewSpecAgent(spec)
	if p.Output(0) != 1 {
		t.Fatalf("NewSpec did not copy the input slice: agent 0 starts at %d", p.Output(0))
	}
}

func TestInformedMonotone(t *testing.T) {
	spec := NewSingleSourceSpec(128, true)
	p := sim.NewSpecAgent(spec)
	maxCode := MaxCode(spec)
	r := rng.New(3)
	prev := p.StateCount(maxCode)
	for i := 0; i < 100000 && !p.Converged(); i++ {
		u, v := r.Pair(128)
		p.Interact(u, v, r)
		if got := p.StateCount(maxCode); got < prev {
			t.Fatalf("informed count decreased from %d to %d", prev, got)
		} else {
			prev = got
		}
	}
}

package epidemic

import (
	"sort"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// NewSpec returns the canonical transition spec of the broadcast
// protocol over the given initial values: state code r is the rank of a
// value in the sorted distinct initial values, so the max rule is a
// plain code comparison and agents holding equal values are
// exchangeable. The spec's layout preserves the caller's agent order
// (agent i starts on initial[i]), so the derived agent form is
// bit-for-bit the classical array simulation.
//
// The rule is deterministic and coin-free for every pair, and under the
// strict one-way rule a pair is a certain no-op whenever the initiator's
// value is at least the responder's — the overwhelming majority of draws
// once the maximum has mostly spread — so the spec opts into the count
// engine's self-loop skip path with a cheap comparison predicate.
func NewSpec(initial []int64, oneWay bool) *sim.Spec {
	// Copy the caller's slice: Layout evaluates lazily (at agent-adapter
	// materialization), so later caller mutations must not leak in.
	initial = append([]int64(nil), initial...)
	n := len(initial)
	distinct := make(map[int64]struct{}, len(initial))
	for _, v := range initial {
		distinct[v] = struct{}{}
	}
	vals := make([]int64, 0, len(distinct))
	for v := range distinct {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	rank := make(map[int64]uint64, len(vals))
	for i, v := range vals {
		rank[v] = uint64(i)
	}
	init := make(map[uint64]int64, len(vals))
	for _, v := range initial {
		init[rank[v]]++
	}
	layout := func() []uint64 {
		out := make([]uint64, n)
		for i, v := range initial {
			out[i] = rank[v]
		}
		return out
	}
	return rankSpec(n, vals, init, layout, oneWay)
}

// NewSingleSourceSpec returns the spec of the basic broadcast setting
// over n agents: agent 0 holds value 1, everyone else holds 0. Unlike
// the general NewSpec it is O(1) to construct — the count engines never
// materialize per-agent state, so a spec must not either (n = 10⁹
// configurations are two map entries; only the agent adapter's Layout
// expands to n entries, and only when that engine is actually used).
func NewSingleSourceSpec(n int, oneWay bool) *sim.Spec {
	vals := []int64{0, 1}
	init := map[uint64]int64{0: int64(n - 1), 1: 1}
	layout := func() []uint64 {
		out := make([]uint64, n)
		out[0] = 1
		return out
	}
	sp := rankSpec(n, vals, init, layout, oneWay)
	// One seeded agent spreading a monotone maximum keeps the informed
	// set a contiguous arc on a ring, so per-state counts stay a
	// sufficient statistic under the ring scheduler. The general
	// NewSpec does not qualify: multiple seeds fragment the arc.
	sp.RingExchangeable = true
	return sp
}

// rankSpec assembles the broadcast spec over value ranks from a
// prepared initial configuration.
func rankSpec(n int, vals []int64, init map[uint64]int64, layout func() []uint64, oneWay bool) *sim.Spec {
	maxRank := uint64(len(vals) - 1)
	selfLoop := func(qu, qv uint64) bool { return qu == qv }
	if oneWay {
		selfLoop = func(qu, qv uint64) bool { return qu >= qv }
	}
	return &sim.Spec{
		Name: "epidemic",
		N:    n,
		Init: func() map[uint64]int64 {
			out := make(map[uint64]int64, len(init))
			for k, v := range init {
				out[k] = v
			}
			return out
		},
		Layout: layout,
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			if qv > qu {
				return qv, qv
			}
			if !oneWay && qu > qv {
				return qu, qu
			}
			return qu, qv
		},
		SelfLoop:  selfLoop,
		Skip:      true,
		PureDelta: true,
		Converged: func(v sim.ConfigView) bool {
			return v.Count(maxRank) == int64(n)
		},
		Output: func(q uint64) int64 { return vals[q] },
	}
}

// MaxCode returns the state code of the maximum value under a spec built
// by NewSpec — the code whose count reaching n is the convergence event.
// Probes (the informed-count curve of F1) read the spreading front as
// agent.StateCount(MaxCode(...)).
func MaxCode(s *sim.Spec) uint64 {
	var max uint64
	for code := range s.Init() {
		if code > max {
			max = code
		}
	}
	return max
}

// Package rng provides a small, fast, deterministic random number
// generator used by the population-protocol scheduler and by transition
// functions that flip synthetic coins.
//
// The generator is xoshiro256++ seeded through splitmix64, following the
// reference implementations by Blackman and Vigna. It is not safe for
// concurrent use; create one generator per goroutine (see Split).
package rng

import "math/bits"

// Rand is a xoshiro256++ pseudo-random number generator.
//
// The zero value is not usable; construct instances with New.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given seed using splitmix64,
// so that closely related seeds still yield well-separated streams.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator state from seed.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// A state of all zeros would be a fixed point; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// State returns the generator's internal xoshiro256++ state, for
// serializing a stream mid-run. Restoring it with SetState continues the
// stream exactly where State captured it.
func (r *Rand) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState overwrites the generator's internal state with one previously
// captured by State. An all-zero state is a fixed point of the update
// and is rejected by falling back to the Reseed guard constant.
func (r *Rand) SetState(s [4]uint64) {
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances *x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Int63 returns a non-negative 63-bit integer. It makes *Rand usable as a
// math/rand Source64 if ever needed.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint32n returns a uniform integer in [0, n). n must be > 0.
// It uses Lemire's nearly-divisionless method.
func (r *Rand) Uint32n(n uint32) uint32 {
	v := uint32(r.Uint64())
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < n {
		thresh := -n % n
		for low < thresh {
			v = uint32(r.Uint64())
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return uint32(prod >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	if n <= 1<<31-1 {
		return int(r.Uint32n(uint32(n)))
	}
	// Rare large-n path: rejection sampling over 63 bits.
	maxv := uint64(n)
	mask := ^uint64(0) >> 1
	for {
		v := r.Uint64() & mask
		if v < mask-(mask+1)%maxv+1 || (mask+1)%maxv == 0 {
			return int(v % maxv)
		}
	}
}

// Int64n returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless method over the full 64-bit
// range, so it stays exact for the pair-weight totals of the count-based
// engine (up to n·(n−1) ≈ 10¹⁶).
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int64(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair random bit.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bits returns k uniform random bits packed into the low bits of a uint64.
// k must be in [0, 64].
func (r *Rand) Bits(k uint) uint64 {
	if k == 0 {
		return 0
	}
	return r.Uint64() >> (64 - k)
}

// Pair returns an ordered pair (u, v) of distinct agent indices chosen
// uniformly at random from [0, n). n must be >= 2.
func (r *Rand) Pair(n int) (u, v int) {
	u = r.Intn(n)
	v = r.Intn(n - 1)
	if v >= u {
		v++
	}
	return u, v
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new generator whose stream is independent of r's
// (seeded from r's output). Use it to derive per-trial or per-goroutine
// generators from a master seed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Geometric returns the number of fair-coin flips up to and including the
// first head, minus one (i.e. a Geometric(1/2) value starting at 0),
// capped at cap to bound the state space.
func (r *Rand) Geometric(cap int) int {
	g := 0
	for g < cap && !r.Bool() {
		g++
	}
	return g
}

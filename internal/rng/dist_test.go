package rng

import (
	"math"
	"testing"
)

// binMoments draws trials Binomial(n, p) variates and returns their
// sample mean and variance, checking every draw stays in [0, n].
func binMoments(t *testing.T, r *Rand, n int64, p float64, trials int) (mean, variance float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %g) = %d out of range", n, p, k)
		}
		x := float64(k)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(trials)
	variance = sumSq/float64(trials) - mean*mean
	return mean, variance
}

// TestBinomialMoments checks sample mean and variance against n·p and
// n·p·q across both sampler regimes (inversion and BTRS) and the
// mirrored p > 1/2 path. Tolerances are ~6 standard errors.
func TestBinomialMoments(t *testing.T) {
	r := New(1)
	const trials = 20000
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.3},        // inversion
		{1000, 0.004},    // inversion, larger n
		{1000, 0.3},      // BTRS
		{1 << 20, 0.25},  // BTRS, large n
		{1 << 20, 0.75},  // mirrored BTRS
		{50, 0.9},        // mirrored inversion
		{1 << 30, 1e-06}, // tiny p at huge n
	}
	for _, c := range cases {
		mean, variance := binMoments(t, r, c.n, c.p, trials)
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		seMean := math.Sqrt(wantVar / trials)
		if d := math.Abs(mean - wantMean); d > 6*seMean+1e-9 {
			t.Errorf("Binomial(%d, %g): mean %.2f, want %.2f ± %.2f",
				c.n, c.p, mean, wantMean, 6*seMean)
		}
		// Var of the sample variance ≈ 2σ⁴/trials for near-normal data.
		seVar := wantVar * math.Sqrt(2.0/trials)
		if d := math.Abs(variance - wantVar); wantVar > 1 && d > 8*seVar {
			t.Errorf("Binomial(%d, %g): variance %.2f, want %.2f ± %.2f",
				c.n, c.p, variance, wantVar, 8*seVar)
		}
	}
}

// TestBinomialEdges pins the degenerate parameters.
func TestBinomialEdges(t *testing.T) {
	r := New(2)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100, 0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100, 1) = %d", got)
	}
	if got := r.Binomial(100, -0.5); got != 0 {
		t.Fatalf("Binomial(100, -0.5) = %d", got)
	}
	if got := r.Binomial(100, 1.5); got != 100 {
		t.Fatalf("Binomial(100, 1.5) = %d", got)
	}
}

// TestHypergeometricMoments checks sample mean and variance against the
// exact hypergeometric moments across the symmetry-reduction branches.
func TestHypergeometricMoments(t *testing.T) {
	r := New(3)
	const trials = 20000
	cases := []struct {
		sample, good, total int64
	}{
		{10, 50, 100},
		{80, 50, 100},      // sample > total/2: complement branch
		{10, 90, 100},      // good > total/2: mirror branch
		{500, 5000, 10000}, // larger scale
		{1000, 999999, 1 << 20},
		{3, 4, 8},
	}
	for _, c := range cases {
		var sum, sumSq float64
		lo := c.sample + c.good - c.total
		if lo < 0 {
			lo = 0
		}
		hi := c.sample
		if c.good < hi {
			hi = c.good
		}
		for i := 0; i < trials; i++ {
			k := r.Hypergeometric(c.sample, c.good, c.total)
			if k < lo || k > hi {
				t.Fatalf("Hypergeometric(%d, %d, %d) = %d outside [%d, %d]",
					c.sample, c.good, c.total, k, lo, hi)
			}
			x := float64(k)
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		s, g, n := float64(c.sample), float64(c.good), float64(c.total)
		wantMean := s * g / n
		wantVar := s * (g / n) * (1 - g/n) * (n - s) / (n - 1)
		seMean := math.Sqrt(wantVar / trials)
		if d := math.Abs(mean - wantMean); d > 6*seMean+1e-9 {
			t.Errorf("Hypergeometric(%d, %d, %d): mean %.2f, want %.2f ± %.2f",
				c.sample, c.good, c.total, mean, wantMean, 6*seMean)
		}
		seVar := wantVar * math.Sqrt(2.0/trials)
		if d := math.Abs(variance - wantVar); wantVar > 1 && d > 8*seVar {
			t.Errorf("Hypergeometric(%d, %d, %d): variance %.2f, want %.2f ± %.2f",
				c.sample, c.good, c.total, variance, wantVar, 8*seVar)
		}
	}
}

// TestHypergeometricEdges pins degenerate supports and panics.
func TestHypergeometricEdges(t *testing.T) {
	r := New(4)
	if got := r.Hypergeometric(0, 5, 10); got != 0 {
		t.Fatalf("sample=0: got %d", got)
	}
	if got := r.Hypergeometric(10, 10, 10); got != 10 {
		t.Fatalf("all good, full sample: got %d", got)
	}
	if got := r.Hypergeometric(4, 0, 10); got != 0 {
		t.Fatalf("no good items: got %d", got)
	}
	if got := r.Hypergeometric(10, 7, 10); got != 7 {
		t.Fatalf("full sample: got %d, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range parameters did not panic")
		}
	}()
	r.Hypergeometric(11, 5, 10)
}

// TestBinomialDeterministic pins seed reproducibility across both
// sampler regimes.
func TestBinomialDeterministic(t *testing.T) {
	draw := func() []int64 {
		r := New(99)
		out := make([]int64, 0, 40)
		for i := 0; i < 10; i++ {
			out = append(out,
				r.Binomial(1000, 0.3),
				r.Binomial(20, 0.2),
				r.Hypergeometric(100, 300, 1000),
				r.Hypergeometric(3, 5, 9))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint32nUniformity(t *testing.T) {
	// Chi-squared style sanity bound on a small modulus.
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint32n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bucket %d has count %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestPairDistinct(t *testing.T) {
	r := New(9)
	for _, n := range []int{2, 3, 10, 1000} {
		for i := 0; i < 500; i++ {
			u, v := r.Pair(n)
			if u == v {
				t.Fatalf("Pair(%d) returned identical indices %d", n, u)
			}
			if u < 0 || u >= n || v < 0 || v >= n {
				t.Fatalf("Pair(%d) = (%d, %d) out of range", n, u, v)
			}
		}
	}
}

func TestPairUniform(t *testing.T) {
	// All n(n-1) ordered pairs should appear roughly equally often.
	r := New(13)
	const n = 5
	counts := make(map[[2]int]int)
	const trials = 200000
	for i := 0; i < trials; i++ {
		u, v := r.Pair(n)
		counts[[2]int{u, v}]++
	}
	want := float64(trials) / (n * (n - 1))
	if len(counts) != n*(n-1) {
		t.Fatalf("saw %d distinct pairs, want %d", len(counts), n*(n-1))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("pair %v count %d deviates from %.0f", p, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	err := quick.Check(func(k uint8) bool {
		n := int(k%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBits(t *testing.T) {
	r := New(19)
	if r.Bits(0) != 0 {
		t.Fatal("Bits(0) != 0")
	}
	for k := uint(1); k <= 64; k++ {
		for i := 0; i < 50; i++ {
			v := r.Bits(k)
			if k < 64 && v >= 1<<k {
				t.Fatalf("Bits(%d) = %d exceeds range", k, v)
			}
		}
	}
}

func TestGeometricBounds(t *testing.T) {
	r := New(23)
	const cap = 10
	sum := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		g := r.Geometric(cap)
		if g < 0 || g > cap {
			t.Fatalf("Geometric(cap=%d) = %d out of range", cap, g)
		}
		sum += g
	}
	// Mean of Geometric(1/2) starting at 0 is 1 (cap truncation lowers it slightly).
	mean := float64(sum) / trials
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("Geometric mean = %v, want about 1.0", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(29)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split generators produced %d/100 identical outputs", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPair(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		u, v := r.Pair(1 << 16)
		sink += u + v
	}
	_ = sink
}

// Discrete distribution samplers for the count-based engine's batch
// planner: exact binomial and hypergeometric variates over int64
// supports. A batch of τ interactions projects onto ordered state pairs
// as a multinomial over the pair weights; the planner decomposes that
// multinomial into a chain of conditional binomials, and splits an
// already-sampled batch in half with conditional hypergeometrics (the τ
// slots of a batch are exchangeable, so the first-half counts of each
// pair type are a multivariate hypergeometric of the sampled totals).
//
// Both samplers are exact (no normal approximation): Binomial uses
// geometric-waiting-time inversion for small n·p and Hörmann's
// transformed-rejection method BTRS for the bulk regime; Hypergeometric
// uses mode-centered inversion, whose expected cost is O(σ) — it is
// only called on drift-bound violations, which are rare by design.
package rng

import "math"

// Binomial returns a Binomial(n, p) variate: the number of successes in
// n independent trials of probability p. It panics for n < 0; p is
// clamped to [0, 1].
func (r *Rand) Binomial(n int64, p float64) int64 {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Work on q = min(p, 1-p) and mirror the result: both methods below
	// require p <= 1/2.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*p < 10 {
		return r.binomialInversion(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialInversion samples by summing Geometric(p) waiting times until
// they exceed n — exact, with expected cost O(n·p + 1). Requires
// 0 < p <= 1/2.
func (r *Rand) binomialInversion(n int64, p float64) int64 {
	lnq := math.Log1p(-p)
	var k, sum int64
	for {
		u := (float64(r.Uint64()>>11) + 1) / (1 << 53) // (0, 1]
		g := math.Ceil(math.Log(u) / lnq)              // Geometric(p) >= 1
		if g < 1 {
			g = 1 // u == 1.0 exactly: ceil(-0) would yield 0
		}
		if !(g < float64(n)+1-float64(sum)) { // also catches +Inf/NaN
			return k
		}
		sum += int64(g)
		if sum > n {
			return k
		}
		k++
	}
}

// binomialBTRS is Hörmann's transformed-rejection binomial sampler
// (BTRS, 1993), exact for p <= 1/2 and n·p >= 10.
func (r *Rand) binomialBTRS(n int64, p float64) int64 {
	fn := float64(n)
	stddev := math.Sqrt(fn * p * (1 - p))
	b := 1.15 + 2.53*stddev
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	odds := p / (1 - p)
	alpha := (2.83 + 5.1/b) * stddev
	m := math.Floor((fn + 1) * p)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > fn {
			continue
		}
		// Acceptance region fully inside the hat: no density evaluation.
		if us >= 0.07 && v <= vr {
			return int64(kf)
		}
		v = math.Log(v * alpha / (a/(us*us) + b))
		ub := (m+0.5)*math.Log((m+1)/(odds*(fn-m+1))) +
			(fn+1)*math.Log((fn-m+1)/(fn-kf+1)) +
			(kf+0.5)*math.Log(odds*(fn-kf+1)/(kf+1)) +
			stirlingTail(m) + stirlingTail(fn-m) -
			stirlingTail(kf) - stirlingTail(fn-kf)
		if v <= ub {
			return int64(kf)
		}
	}
}

// stirlingTail returns ln(k!) − [(k+½)·ln(k+1) − (k+1) + ½·ln(2π)], the
// Stirling-series remainder used by BTRS's exact acceptance bound.
func stirlingTail(k float64) float64 {
	if k <= 9 {
		return stirlingTailTable[int(k)]
	}
	kp1 := k + 1
	kp1sq := kp1 * kp1
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / kp1
}

var stirlingTailTable = [10]float64{
	0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
	0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
	0.01189670994589177, 0.01041126526197209, 0.009255462182712733,
	0.008330563433362871,
}

// Hypergeometric returns the number of "good" items in a uniform sample
// of sample items drawn without replacement from a population of total
// items containing good good ones. It panics unless
// 0 <= good <= total and 0 <= sample <= total.
func (r *Rand) Hypergeometric(sample, good, total int64) int64 {
	if good < 0 || total < 0 || good > total || sample < 0 || sample > total {
		panic("rng: Hypergeometric parameters out of range")
	}
	// Symmetry reductions: sample the smaller side of each pair.
	if sample*2 > total {
		// Complement of the unsampled items.
		return good - r.Hypergeometric(total-sample, good, total)
	}
	if good*2 > total {
		return sample - r.Hypergeometric(sample, total-good, total)
	}
	// Support after reduction: [max(0, sample+good-total), min(sample, good)].
	lo := sample + good - total
	if lo < 0 {
		lo = 0
	}
	hi := sample
	if good < hi {
		hi = good
	}
	if lo == hi {
		return lo
	}
	return r.hypergeomInversion(sample, good, total, lo, hi)
}

// hypergeomInversion samples by inverting the CDF outward from the
// mode: the pmf at the mode is computed once via lgamma, neighbors
// follow from the one-step ratio recurrence, and probability mass is
// consumed alternating right/left until the uniform variate is
// exhausted. Expected cost is O(σ) steps.
func (r *Rand) hypergeomInversion(sample, good, total, lo, hi int64) int64 {
	mode := (sample + 1) * (good + 1) / (total + 2)
	if mode < lo {
		mode = lo
	}
	if mode > hi {
		mode = hi
	}
	logPmf := func(k int64) float64 {
		return lnChoose(good, k) + lnChoose(total-good, sample-k) - lnChoose(total, sample)
	}
	// ratioUp(k) = pmf(k+1)/pmf(k).
	ratioUp := func(k int64) float64 {
		return float64(good-k) * float64(sample-k) /
			(float64(k+1) * float64(total-good-sample+k+1))
	}
	u := r.Float64()
	pm := math.Exp(logPmf(mode))
	if u < pm {
		return mode
	}
	u -= pm
	pUp, pDn := pm, pm
	up, dn := mode, mode
	for up < hi || dn > lo {
		if up < hi {
			pUp *= ratioUp(up)
			up++
			if u < pUp {
				return up
			}
			u -= pUp
		}
		if dn > lo {
			pDn /= ratioUp(dn - 1)
			dn--
			if u < pDn {
				return dn
			}
			u -= pDn
		}
	}
	// Accumulated float error consumed the tail mass (u was within one
	// ulp of 1): return the mode, the maximum-likelihood value.
	return mode
}

// lnChoose returns ln C(n, k) for 0 <= k <= n.
func lnChoose(n, k int64) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Cross-engine distributional equivalence for the two stable hybrids —
// the second half of the root package's core conformance suite (see
// coreconformance_test.go there for the tolerance rationale: T_C is
// multi-modal with σ/mean ≈ 0.45, so 0.35 at 40 paired trials is
// ≈ 3.5σ on the difference of means). The split keeps each test
// package inside the default per-package budget on a single-core
// runner; helpers are mirrored, constants identical.
package core_test

import (
	"math"
	"testing"

	"popcount/internal/core"
	"popcount/internal/sim"
)

const (
	stableEquivTolerance = 0.35
	stableEquivTrials    = 40
	stableEquivN         = 1024
)

func stableMeanAgent(t *testing.T, name string, factory func(int) sim.Protocol, cfg sim.Config) float64 {
	t.Helper()
	runs, err := sim.RunTrials(factory, stableEquivTrials, cfg, sim.TrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s agent trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s agent trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / stableEquivTrials
}

func stableMeanCount(t *testing.T, name string, spec func() *sim.Spec, cfg sim.Config) float64 {
	t.Helper()
	factory := func(int) sim.CountProtocol { return sim.NewSpecCount(spec()) }
	runs, err := sim.RunCountTrials(factory, stableEquivTrials, cfg, sim.CountTrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("%s count trials: %v", name, err)
	}
	var sum float64
	for i, r := range runs {
		if !r.Result.Converged {
			t.Fatalf("%s count trial %d did not converge", name, i)
		}
		sum += float64(r.Result.Interactions)
	}
	return sum / stableEquivTrials
}

func checkStableEquivalence(t *testing.T, name string, agent, count float64) {
	t.Helper()
	gap := math.Abs(agent-count) / agent
	t.Logf("%s: agent mean T_C = %.0f, count mean T_C = %.0f, relative gap %.3f",
		name, agent, count, gap)
	if gap > stableEquivTolerance {
		t.Errorf("%s: engines disagree: agent mean %.0f vs count mean %.0f (gap %.3f > %.2f)",
			name, agent, count, gap, stableEquivTolerance)
	}
}

func stableEquivalence(t *testing.T, name string, agentFactory func(int) sim.Protocol, spec func() *sim.Spec, cfg sim.Config) {
	t.Helper()
	batched := cfg
	batched.BatchSteps = true
	agent := stableMeanAgent(t, name, agentFactory, cfg)
	checkStableEquivalence(t, name, agent, stableMeanCount(t, name, spec, cfg))
	checkStableEquivalence(t, name+" batched", agent,
		stableMeanCount(t, name+" batched", spec, batched))
}

func TestCoreEngineEquivalenceStableApproximate(t *testing.T) {
	if testing.Short() {
		t.Skip("three engine columns of a Θ(n log² n) protocol; skipped with -short")
	}
	t.Parallel()
	cfg := sim.Config{Seed: 0xCE3, CheckEvery: stableEquivN}
	stableEquivalence(t, "stable-approximate",
		func(int) sim.Protocol { return core.NewStableApproximate(core.Config{N: stableEquivN}) },
		func() *sim.Spec { return core.NewStableApproximateSpec(core.Config{N: stableEquivN}, false).Spec },
		cfg)
}

func TestCoreEngineEquivalenceStableCountExact(t *testing.T) {
	t.Parallel()
	cfg := sim.Config{Seed: 0xCE4, CheckEvery: stableEquivN}
	stableEquivalence(t, "stable-exact",
		func(int) sim.Protocol { return core.NewStableCountExact(core.Config{N: stableEquivN}) },
		func() *sim.Spec { return core.NewStableCountExactSpec(core.Config{N: stableEquivN}, false).Spec },
		cfg)
}

package core

import (
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// canonExact canonicalizes one CountExact agent state for interning.
func canonExact(w exactAgent) exactAgent {
	w.clk = canonClock(w.clk)
	w.led = canonFastLed(w.led)
	return w
}

// exactStateOutput is the output function ω(v) = ⌊2^8·2^(2k)/ℓ⌉ on one
// decoded state (0 while the agent has no multiplied load) — the state
// form of CountExact.Output.
func exactStateOutput(w exactAgent) int64 {
	if !w.refMultiplied || w.l <= 0 {
		return 0
	}
	num := refC << uint(2*w.k)
	return (num + w.l/2) / w.l
}

// CountExactSpec couples protocol CountExact's transition spec with its
// state codec.
type CountExactSpec struct {
	*sim.Spec
	rule *exactRule
	in   *sim.Interner[exactAgent]
}

// NewCountExactSpec returns the canonical transition spec of protocol
// CountExact over cfg, derived from the same stepPair the agent-array
// form runs. Unlike the building-block specs, the state space is not
// constant-size: classical loads make the alphabet Õ(n), so codes are
// interned over the occupied fragment. The count forms therefore scale
// with the number of distinct loads in flight — far beyond agent-array
// memory at equal n, but not to the n = 10⁹ of the skip-path protocols
// (see DESIGN.md).
func NewCountExactSpec(cfg Config) *CountExactSpec {
	rule := newExactRule(cfg)
	p := &CountExactSpec{rule: &rule, in: sim.NewInterner[exactAgent]()}
	initCode := p.in.Code(canonExact(rule.initAgent()))
	p.Spec = &sim.Spec{
		Name: "exact",
		N:    rule.cfg.N,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{initCode: int64(rule.cfg.N)}
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			a, b := p.in.State(qu), p.in.State(qv)
			rule.stepPair(&a, &b, r)
			return p.in.Code(canonExact(a)), p.in.Code(canonExact(b))
		},
		ShardDelta: func(k int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
			g := sim.ShardViews(p.in, k)
			ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), k)
			for i := range ds {
				v := g.View(i)
				ds[i] = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
					a, b := v.State(qu), v.State(qv)
					rule.stepPair(&a, &b, r)
					return v.Code(canonExact(a)), v.Code(canonExact(b))
				}
			}
			return ds, g.Reconcile
		},
		Randomized: func(qu, qv uint64) bool {
			return rule.pairDrawsCoins(p.in.State(qu), p.in.State(qv))
		},
		Converged: func(v sim.ConfigView) bool {
			return p.converged(v)
		},
		Output: func(q uint64) int64 { return exactStateOutput(p.in.State(q)) },
		EncodeState: func(q uint64) []byte {
			return encodeExact(p.in.State(q))
		},
		DecodeState: func(b []byte) (uint64, error) {
			s, err := decodeExact(b)
			if err != nil {
				return 0, err
			}
			return p.in.Code(canonExact(s)), nil
		},
	}
	// Memoize the deterministic fragment on interned codes (see
	// sim.DeltaMemo). CountExact's load alphabet is Õ(n), so the memo's
	// open-addressed table matters more than its dense promotion here.
	p.Spec.MemoizeDelta()
	return p
}

// converged mirrors CountExact.Converged on a configuration view: every
// occupied state has a multiplied positive load and all state outputs
// agree.
func (p *CountExactSpec) converged(v sim.ConfigView) bool {
	ok, first := true, true
	var want int64
	v.ForEach(func(code uint64, _ int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.refMultiplied || s.l <= 0 {
			ok = false
			return
		}
		out := exactStateOutput(s)
		if first {
			want, first = out, false
		} else if out != want {
			ok = false
		}
	})
	return ok && !first
}

// Metrics reports the observed variable ranges over a configuration
// view (the configuration-level analogue of CountExact.Metrics).
func (p *CountExactSpec) Metrics(v sim.ConfigView) StateMetrics {
	var m StateMetrics
	v.ForEach(func(code uint64, _ int64) {
		s := p.in.State(code)
		if l := int(s.jnt.Level); l > m.MaxLevel {
			m.MaxLevel = l
		}
		if k := int(s.k); k > m.MaxK {
			m.MaxK = k
		}
		if s.l > m.MaxLoad {
			m.MaxLoad = s.l
		}
	})
	return m
}

// States returns the number of distinct states interned so far.
func (p *CountExactSpec) States() int { return p.in.Len() }

// pairDrawsCoins reports whether an interaction of the pair (a, b)
// consumes synthetic coins. FastLeaderElection samples only when a
// still-contending, not-yet-done agent crosses a phase boundary into an
// even (sampling) phase — the predicate re-derives the boundary from a
// dry run of the deterministic prefix and is exact, not conservative:
// odd-phase boundaries and non-contenders draw nothing.
func (p *exactRule) pairDrawsCoins(a, b exactAgent) bool {
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(&a, &b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(&b, &a, preA)
	}
	p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	samples := func(w exactAgent) bool {
		return w.clk.FirstTick && !w.led.Done && w.led.IsLeader &&
			p.clk.PhaseIdx(w.clk)%2 == 0
	}
	return samples(a) || samples(b)
}

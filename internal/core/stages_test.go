package core

import (
	"testing"

	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/rng"
)

// mkApprox builds an Approximate instance for unit-testing stage
// functions directly on synthetic agent states.
func mkApprox(t *testing.T) *Approximate {
	t.Helper()
	return NewApproximate(Config{N: 8})
}

func TestSearchLeaderInfusion(t *testing.T) {
	p := mkApprox(t)
	c := p.clk
	leaderAgent := approxAgent{
		jnt: junta.InitState(),
		clk: clock.State{Val: uint16(1 * int(c.M)), FirstTick: true}, // phase index 1
		led: p.elect.Init(),
		k:   5,
	}
	leaderAgent.led.Done = true
	follower := approxAgent{jnt: junta.InitState(), clk: c.Init(), led: p.elect.Init(), k: -1}
	follower.led.Done = true
	follower.led.IsLeader = false

	p.searchLeaderActions(&leaderAgent, &follower)
	if follower.k != 5 {
		t.Fatalf("infusion failed: follower k = %d, want 5", follower.k)
	}
}

func TestSearchLeaderDecisionContinue(t *testing.T) {
	p := mkApprox(t)
	c := p.clk
	leaderAgent := approxAgent{
		clk: clock.State{Val: uint16(4 * int(c.M)), FirstTick: true}, // phase index 4
		led: p.elect.Init(),
		k:   3,
	}
	leaderAgent.led.Done = true
	follower := approxAgent{led: p.elect.Init(), k: 0} // max load 1 → continue
	follower.led.IsLeader = false
	follower.led.Done = true

	p.searchLeaderActions(&leaderAgent, &follower)
	if leaderAgent.k != 4 || leaderAgent.searchDone {
		t.Fatalf("decision should continue search: k=%d done=%v", leaderAgent.k, leaderAgent.searchDone)
	}
}

func TestSearchLeaderDecisionStop(t *testing.T) {
	p := mkApprox(t)
	c := p.clk
	leaderAgent := approxAgent{
		clk: clock.State{Val: uint16(4 * int(c.M)), FirstTick: true},
		led: p.elect.Init(),
		k:   9,
	}
	leaderAgent.led.Done = true
	follower := approxAgent{led: p.elect.Init(), k: 1} // some agent had load ≥ 2
	follower.led.IsLeader = false
	follower.led.Done = true

	p.searchLeaderActions(&leaderAgent, &follower)
	if !leaderAgent.searchDone || leaderAgent.k != 9 {
		t.Fatalf("decision should stop: k=%d done=%v", leaderAgent.k, leaderAgent.searchDone)
	}
}

func TestSearchLeaderNoActionWithoutFirstTick(t *testing.T) {
	p := mkApprox(t)
	c := p.clk
	leaderAgent := approxAgent{
		clk: clock.State{Val: uint16(4 * int(c.M)), FirstTick: false},
		led: p.elect.Init(),
		k:   3,
	}
	leaderAgent.led.Done = true
	follower := approxAgent{led: p.elect.Init(), k: 1}
	follower.led.IsLeader = false
	follower.led.Done = true

	p.searchLeaderActions(&leaderAgent, &follower)
	if leaderAgent.searchDone || leaderAgent.k != 3 {
		t.Fatal("leader acted outside its first tick")
	}
}

func TestSearchBoundaryResetsOnlyInPhase0(t *testing.T) {
	p := mkApprox(t)
	c := p.clk
	w := approxAgent{
		clk: clock.State{Val: 0, FirstTick: true}, // phase index 0
		led: p.elect.Init(),
		k:   7,
	}
	w.led.IsLeader = false
	w.led.Done = true
	p.searchBoundary(&w)
	if w.k != -1 {
		t.Fatalf("phase-0 entry did not reset k: %d", w.k)
	}

	w.k = 7
	w.clk = clock.State{Val: uint16(2 * int(c.M)), FirstTick: true} // phase 2
	p.searchBoundary(&w)
	if w.k != 7 {
		t.Fatal("reset fired outside phase 0")
	}
}

func TestSearchBoundaryLeaderKeepsK(t *testing.T) {
	p := mkApprox(t)
	w := approxAgent{
		clk: clock.State{Val: 0, FirstTick: true},
		led: p.elect.Init(),
		k:   7,
	}
	w.led.Done = true // leader (IsLeader true from Init)
	p.searchBoundary(&w)
	if w.k != 7 {
		t.Fatal("the leader's k must survive phase 0 (it is the search cursor)")
	}
}

func TestBroadcastStageInfection(t *testing.T) {
	p := NewApproximate(Config{N: 4})
	// Hand-craft: agent 0 finished the search with k=9, agent 1 fresh.
	p.ag[0].led.Done = true
	p.ag[0].led.IsLeader = true
	p.ag[0].searchDone = true
	p.ag[0].k = 9
	p.ag[1].led.Done = true
	p.ag[1].led.IsLeader = false

	// Give both the same junta level so no re-initialization fires.
	p.ag[0].jnt = junta.State{Level: 2}
	p.ag[1].jnt = junta.State{Level: 2}

	r := newTestRand()
	p.Interact(0, 1, r)
	if !p.ag[1].searchDone || p.ag[1].k != 9 {
		t.Fatalf("broadcast stage did not infect: %+v", p.ag[1])
	}
}

func TestCountExactApxBoundaryFirstPhase(t *testing.T) {
	p := NewCountExact(Config{N: 8})
	w := exactAgent{
		jnt: junta.State{Level: 6}, // injectExp = 2^6 >> 3 = 8
		clk: clock.State{FirstTick: true},
		led: p.elect.Init(),
	}
	w.led.Done = true // leader, in the Approximation Stage
	p.apxBoundary(&w)
	if w.i != 1 {
		t.Fatalf("phase counter = %d, want 1", w.i)
	}
	if w.l != 1<<8 {
		t.Fatalf("after the first boundary the leader holds %d tokens, want 2^8", w.l)
	}
}

func TestCountExactApxBoundaryConcludes(t *testing.T) {
	p := NewCountExact(Config{N: 8})
	w := exactAgent{
		jnt: junta.State{Level: 6},
		clk: clock.State{FirstTick: true},
		led: p.elect.Init(),
		i:   3,
		l:   5, // ≥ 4 → conclude
	}
	w.led.Done = true
	p.apxBoundary(&w)
	if !w.apxDone {
		t.Fatal("leader did not conclude with l ≥ 4")
	}
	// k = i·e − ⌊log₂ l⌋ = 3·8 − 2 = 22.
	if w.k != 22 {
		t.Fatalf("k = %d, want 22", w.k)
	}
	if !w.refEntered || w.l != 0 {
		t.Fatalf("refinement entry not initialized: %+v", w)
	}
}

func TestCountExactRefBoundaryInjection(t *testing.T) {
	p := NewCountExact(Config{N: 8})
	c := p.clk
	w := exactAgent{
		clk: clock.State{Val: uint16(1 * int(c.M)), FirstTick: true}, // phase idx 1
		led: p.elect.Init(),
		k:   4,
	}
	w.led.Done = true
	w.apxDone = true
	w.refEntered = true
	w.refAnchor = 0 // rp = 1
	p.refBoundary(&w)
	if !w.refInjected || w.l != 256<<4 {
		t.Fatalf("injection failed: %+v", w)
	}
}

func TestCountExactRefBoundaryMultiplication(t *testing.T) {
	p := NewCountExact(Config{N: 8})
	c := p.clk
	w := exactAgent{
		clk: clock.State{Val: uint16(2 * int(c.M)), FirstTick: true}, // phase idx 2
		led: p.elect.Init(),
		k:   4,
		l:   10,
	}
	w.led.Done = true
	w.led.IsLeader = false
	w.apxDone = true
	w.refEntered = true
	w.refAnchor = 0 // rp = 2
	p.refBoundary(&w)
	if !w.refMultiplied || w.l != 10<<4 {
		t.Fatalf("multiplication failed: %+v", w)
	}
	// The flag prevents a second multiplication.
	p.refBoundary(&w)
	if w.l != 10<<4 {
		t.Fatalf("load multiplied twice: %d", w.l)
	}
}

func TestRefineBalancingRespectsMultiplicationTag(t *testing.T) {
	p := NewCountExact(Config{N: 8})
	a := exactAgent{led: p.elect.Init(), l: 100, refMultiplied: true}
	a.led.Done = true
	a.apxDone = true
	b := exactAgent{led: p.elect.Init(), l: 10, refMultiplied: false}
	b.led.Done = true
	b.apxDone = true
	p.refineStep(&a, &b)
	if a.l != 100 || b.l != 10 {
		t.Fatalf("tokens crossed the multiplication boundary: a=%d b=%d", a.l, b.l)
	}
	b.refMultiplied = true
	p.refineStep(&a, &b)
	if a.l != 55 || b.l != 55 {
		t.Fatalf("balancing failed between equal tags: a=%d b=%d", a.l, b.l)
	}
}

func TestCountExactOutputFormula(t *testing.T) {
	p := NewCountExact(Config{N: 4})
	p.ag[0].refMultiplied = true
	p.ag[0].k = 10
	// M = 256·2^20; with n=1000 the balanced load is ≈ 268435.
	p.ag[0].l = 268435
	if got := p.Output(0); got != 1000 {
		t.Fatalf("output = %d, want 1000", got)
	}
	p.ag[0].l = 0
	if got := p.Output(0); got != 0 {
		t.Fatalf("output with no load = %d, want 0", got)
	}
}

// newTestRand returns a deterministic generator for stage unit tests.
func newTestRand() *rng.Rand { return rng.New(1) }

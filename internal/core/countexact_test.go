package core

import (
	"math"
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestNewCountExactValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	NewCountExact(Config{N: 0})
}

func TestCountExactOutputsExactN(t *testing.T) {
	// Theorem 2: every agent outputs the exact population size.
	for _, n := range []int{256, 1000, 4096, 10000} {
		for trial := 0; trial < 3; trial++ {
			p := NewCountExact(Config{N: n})
			res, err := sim.Run(p, sim.Config{Seed: uint64(100*n + trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d trial %d: did not converge", n, trial)
			}
			for i := 0; i < n; i++ {
				if out := p.Output(i); out != int64(n) {
					t.Fatalf("n=%d trial %d: agent %d outputs %d", n, trial, i, out)
				}
			}
			if p.Overflowed() {
				t.Errorf("n=%d: unexpected overflow", n)
			}
		}
	}
}

func TestCountExactTimeIsNLogN(t *testing.T) {
	// Theorem 2: O(n log n) interactions; the normalized time must stay
	// flat across the sweep.
	var norms []float64
	for _, n := range []int{1024, 4096, 16384} {
		p := NewCountExact(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		norms = append(norms, float64(res.Interactions)/(float64(n)*math.Log(float64(n))))
	}
	for i, norm := range norms {
		if norm > 1500 {
			t.Errorf("run %d: %.1f × n ln n is out of band", i, norm)
		}
	}
	if norms[2] > 4*norms[0]+200 {
		t.Errorf("normalized time grows with n: %v", norms)
	}
}

func TestCountExactStateBounds(t *testing.T) {
	// Theorem 2 / Lemma 10: k ≤ log n + 3 and loads bounded by
	// 2^8·2^(2k) ≤ 2^14·n².
	n := 2048
	p := NewCountExact(Config{N: n})
	if _, err := sim.Run(p, sim.Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.MaxK > sim.Log2Ceil(n)+3 {
		t.Errorf("max k = %d exceeds log n + 3", m.MaxK)
	}
	bound := int64(1) << uint(14+2*sim.Log2Ceil(n))
	if m.MaxLoad > bound {
		t.Errorf("max load %d exceeds 2^14·n² = %d", m.MaxLoad, bound)
	}
}

func TestCountExactDeterministic(t *testing.T) {
	run := func() (sim.Result, int64) {
		p := NewCountExact(Config{N: 500})
		res, err := sim.Run(p, sim.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res, p.Output(0)
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || o1 != o2 {
		t.Fatalf("non-deterministic: %+v/%d vs %+v/%d", r1, o1, r2, o2)
	}
}

func TestCountExactAlwaysHasALeader(t *testing.T) {
	n := 256
	p := NewCountExact(Config{N: n})
	r := rng.New(23)
	for i := 0; i < 3_000_000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if i%5000 == 0 && p.Leaders() < 1 {
			t.Fatalf("no leader contender at interaction %d", i)
		}
	}
}

func TestCountExactShiftAblation(t *testing.T) {
	// The shift parameter trades phases for per-phase growth
	// (experiment A2); the result must stay exact across settings.
	for _, shift := range []int{2, 3, 4} {
		p := NewCountExact(Config{N: 1000, Shift: shift})
		res, err := sim.Run(p, sim.Config{Seed: uint64(shift)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || p.Output(0) != 1000 {
			t.Errorf("shift=%d: converged=%v output=%d", shift, res.Converged, p.Output(0))
		}
	}
}

func TestInjectExpBounds(t *testing.T) {
	p := NewCountExact(Config{N: 16})
	cases := []struct {
		level uint8
		want  int32
	}{
		{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 4}, {6, 8}, {7, 16}, {10, 16},
	}
	for _, c := range cases {
		if got := p.injectExp(c.level); got != c.want {
			t.Errorf("injectExp(%d) = %d, want %d", c.level, got, c.want)
		}
	}
}

func TestLog2Floor64(t *testing.T) {
	cases := []struct {
		x    int64
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := log2Floor64(c.x); got != c.want {
			t.Errorf("log2Floor64(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

package core

import (
	"popcount/internal/balance"
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// maxSearchK caps the search variable k (load exponents never approach it
// for physical populations; the cap only guards the representation).
const maxSearchK = 62

// approxAgent is the combined per-agent state of protocol Approximate
// (Figure 2): junta process, phase clock, leader election and Search
// Protocol sub-states.
type approxAgent struct {
	jnt        junta.State
	clk        clock.State
	led        leader.State
	k          int16
	searchDone bool
}

// Approximate is the paper's protocol Approximate (Algorithm 2,
// Theorem 1.1): a uniform protocol after which every agent outputs
// ⌊log₂ n⌋ or ⌈log₂ n⌉ w.h.p., converging in O(n log² n) interactions
// with O(log n · log log n) states.
//
// Stage structure per agent (tracked through the flags leaderDone and
// searchDone): Stage 1 elects a leader with the slow protocol of [GS18];
// Stage 2 runs the Search Protocol (Algorithm 1), in which the leader
// performs a linear search over k, injecting 2^k tokens per round and
// using powers-of-two load balancing to test whether 2^k exceeds ¾·n;
// Stage 3 broadcasts the leader's final k to every agent.
type Approximate struct {
	approxRule
	ag []approxAgent
}

// approxRule is the n-independent part of protocol Approximate: the
// configuration and sub-protocol wiring that defines the pairwise
// transition rule. The agent-array form (Approximate) applies it to an
// indexed array; the transition spec (NewApproximateSpec) applies it to
// decoded state pairs — one rule, every engine form.
type approxRule struct {
	cfg   Config
	clk   clock.Clock
	elect leader.Election
}

// newApproxRule wires the rule for cfg (with defaults applied).
func newApproxRule(cfg Config) approxRule {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		panic("core: population must have at least 2 agents")
	}
	c := clock.New(cfg.ClockM)
	return approxRule{cfg: cfg, clk: c, elect: leader.NewElection(c, cfg.OuterM)}
}

// initAgent returns the initial per-agent state.
func (p *approxRule) initAgent() approxAgent {
	return approxAgent{
		jnt: junta.InitState(),
		clk: p.clk.Init(),
		led: p.elect.Init(),
		k:   -1,
	}
}

// NewApproximate returns a fresh instance of protocol Approximate.
func NewApproximate(cfg Config) *Approximate {
	p := &Approximate{approxRule: newApproxRule(cfg)}
	p.ag = make([]approxAgent, p.cfg.N)
	for i := range p.ag {
		p.ag[i] = p.initAgent()
	}
	return p
}

// N returns the population size.
func (p *Approximate) N() int { return p.cfg.N }

// Interact applies one interaction of protocol Approximate (Algorithm 2)
// with initiator u and responder v.
func (p *Approximate) Interact(u, v int, r *rng.Rand) {
	p.stepPair(&p.ag[u], &p.ag[v], r)
}

// stepPair applies one interaction of the rule to the pair (a, b) with
// initiator a.
func (p *approxRule) stepPair(a, b *approxAgent, r *rng.Rand) {
	// Line 3: junta process, with re-initialization (line 1–2) of every
	// agent whose level changed. The paper resets an agent's phase clock,
	// leader election and Search Protocol state when it encounters a
	// higher junta level; each junta level conceptually runs its own
	// protocol instance, so an agent also starts from a clean state when
	// it climbs to a new level itself ("all agents eventually run the
	// phase clocks and the leader election process based on the junta on
	// the highest level" — without resetting climbers, the top-level
	// junta would carry clock state accumulated while everyone was still
	// driving the clock, and leaderDone could fire prematurely).
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(a, b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(b, a, preA)
	}

	// Line 4: phase clocks.
	p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)

	// Line 5–6, Stage 1: leader election while not leaderDone.
	if !a.led.Done || !b.led.Done {
		p.elect.Interact(&a.led, &b.led, a.clk, b.clk, a.jnt.Junta, b.jnt.Junta, r)
	}

	// Line 7–8, Stage 2: the Search Protocol.
	p.searchStep(a, b)

	// Line 9–10, Stage 3: broadcasting stage — an agent that finished the
	// search infects its partner with (searchDone, k).
	if a.led.Done && a.searchDone && !b.searchDone {
		b.searchDone = true
		b.k = a.k
	} else if b.led.Done && b.searchDone && !a.searchDone {
		a.searchDone = true
		a.k = b.k
	}
}

// InteractBatch implements sim.BatchInteractor: it executes count
// interactions in one tight loop, bit-for-bit equivalent to count scalar
// Interact calls. The win over the engine's scalar loop is the removal
// of two virtual calls per interaction — the protocol dispatch and, on
// the uniform scheduler, the pair draw.
func (p *Approximate) InteractBatch(count int64, sched sim.Scheduler, r *rng.Rand) {
	n := p.cfg.N
	if _, ok := sched.(sim.UniformScheduler); ok {
		for i := int64(0); i < count; i++ {
			u, v := r.Pair(n)
			p.Interact(u, v, r)
		}
		return
	}
	for i := int64(0); i < count; i++ {
		u, v := sched.Next(n, r)
		p.Interact(u, v, r)
	}
}

// reinit re-initializes agent w's phase clock, leader election and Search
// Protocol state after w's junta level changed (Algorithm 2, line 2). If
// the partner q was already on w's new level (srcPreLevel ≥ new level),
// w's clock restarts synchronized to q's clock — q's level instance is
// the authority — rather than from zero, which avoids the transient
// desynchronization a cold reset would cause on the extended circular
// clock (see package clock). A climbing agent (first on its new level)
// starts from a fresh clock.
func (p *approxRule) reinit(w, q *approxAgent, qPreLevel uint8) {
	if qPreLevel >= w.jnt.Level {
		w.clk = q.clk
		w.clk.FirstTick = false
	} else {
		w.clk = p.clk.Init()
	}
	w.led = p.elect.Init()
	w.k = -1
	w.searchDone = false
}

// inSearch reports whether agent w currently executes the Search Protocol
// (Stage 2).
func (p *approxRule) inSearch(w *approxAgent) bool {
	return w.led.Done && !w.searchDone
}

// searchStep applies one interaction of the Search Protocol (Algorithm 1)
// with initiator a and responder b.
func (p *approxRule) searchStep(a, b *approxAgent) {
	p.searchBoundary(a)
	p.searchBoundary(b)
	p.searchLeaderActions(a, b)
	p.searchLeaderActions(b, a)

	// Follower rules (Algorithm 1, lines 9–16) apply when both agents
	// are non-leaders; balancing and epidemics are keyed on the
	// initiator's phase, as in the pseudo-code. Both endpoints must be
	// in the Search Stage — in particular an agent already in the
	// Broadcasting Stage carries the final answer in k, which must not
	// be mistaken for load.
	if !p.inSearch(a) || !p.inSearch(b) || a.led.IsLeader || b.led.IsLeader {
		return
	}
	switch p.clk.PhaseMod(a.clk, 5) {
	case 2: // powers-of-two load balancing
		balance.PowerOfTwo(&a.k, &b.k)
	case 3: // one-way epidemics of the maximum load exponent
		if a.k < b.k {
			a.k = b.k
		} else if b.k < a.k {
			b.k = a.k
		}
	}
}

// searchBoundary applies the Phase 0 initialization (Algorithm 1,
// lines 10–11) at the moment a non-leader enters phase 0. Resetting once
// at entry, rather than on every phase-0 interaction as the pseudo-code
// literally reads, avoids a token leak during the phase transition
// window: the leader performs its phase-1 injection at its own first
// tick, when the recipient may still be lingering in phase 0 — a
// per-interaction reset would then destroy the injected tokens, the
// round would silently fail, and the search would overshoot ⌈log n⌉.
func (p *approxRule) searchBoundary(w *approxAgent) {
	if !p.inSearch(w) || w.led.IsLeader || !w.clk.FirstTick {
		return
	}
	if p.clk.PhaseMod(w.clk, 5) == 0 {
		w.k = -1
	}
}

// searchLeaderActions applies the leader's Search Protocol rules
// (Algorithm 1, lines 1–8) for endpoint w with partner q.
func (p *approxRule) searchLeaderActions(w, q *approxAgent) {
	if !w.led.IsLeader || !p.inSearch(w) || !w.clk.FirstTick {
		return
	}
	switch p.clk.PhaseMod(w.clk, 5) {
	case 1: // load infusion: transfer 2^k tokens to the partner
		if !q.led.IsLeader && p.inSearch(q) {
			q.k = w.k
		}
	case 4: // decision
		if q.k <= 0 {
			if w.k < maxSearchK {
				w.k++
			}
		} else {
			w.searchDone = true
		}
	}
}

// Converged reports whether every agent finished the search and all
// agents agree on k — the desired configuration of Theorem 1.1.
func (p *Approximate) Converged() bool {
	k := p.ag[0].k
	for i := range p.ag {
		if !p.ag[i].searchDone || p.ag[i].k != k {
			return false
		}
	}
	return k >= 0
}

// Output returns agent i's current output: its estimate of log₂ n.
func (p *Approximate) Output(i int) int64 { return int64(p.ag[i].k) }

// Estimate returns agent i's population-size estimate 2^k (0 when the
// agent is still empty).
func (p *Approximate) Estimate(i int) int64 {
	if p.ag[i].k < 0 {
		return 0
	}
	return int64(1) << uint(p.ag[i].k)
}

// Leaders returns the number of current leader contenders.
func (p *Approximate) Leaders() int {
	c := 0
	for i := range p.ag {
		if p.ag[i].led.IsLeader {
			c++
		}
	}
	return c
}

// Metrics reports the observed variable ranges for state accounting
// (Theorem 1.1: O(log n · log log n) states — the only non-constant
// variables are the junta level and k; see Figure 2).
func (p *Approximate) Metrics() StateMetrics {
	var m StateMetrics
	for i := range p.ag {
		if l := int(p.ag[i].jnt.Level); l > m.MaxLevel {
			m.MaxLevel = l
		}
		if k := int(p.ag[i].k); k > m.MaxK {
			m.MaxK = k
		}
	}
	return m
}

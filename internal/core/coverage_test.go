package core

import (
	"strings"
	"testing"

	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestCountExactDebugSummary(t *testing.T) {
	p := NewCountExact(Config{N: 16})
	s := p.Debug()
	for _, want := range []string{"leaders=16", "done=0", "phase=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Debug() = %q missing %q", s, want)
		}
	}
}

func TestCountExactOverflowGuard(t *testing.T) {
	p := NewCountExact(Config{N: 4})
	w := &p.ag[0]
	w.led.Done = true
	w.apxDone = true
	w.refEntered = true
	w.k = 30
	w.l = int64(1) << 60
	w.clk = clock.State{Val: uint16(2 * int(p.clk.M)), FirstTick: true} // rp = 2
	p.refBoundary(w)
	if !w.overflow {
		t.Fatal("overflow not flagged")
	}
	if !p.Overflowed() {
		t.Fatal("Overflowed() did not report")
	}
}

func TestApproximateReinitFreshClimber(t *testing.T) {
	p := NewApproximate(Config{N: 4})
	w := &p.ag[0]
	q := &p.ag[1]
	w.jnt.Level = 3 // w climbed to 3
	w.k = 5
	w.searchDone = true
	w.clk.Val = 99
	// Partner was below w's new level: w is a fresh climber and starts a
	// cold clock.
	p.reinit(w, q, 2)
	if w.clk.Val != 0 || w.k != -1 || w.searchDone || !w.led.IsLeader {
		t.Fatalf("fresh-climber reinit wrong: %+v", w)
	}
}

func TestApproximateReinitAdoptsAuthorityClock(t *testing.T) {
	p := NewApproximate(Config{N: 4})
	w := &p.ag[0]
	q := &p.ag[1]
	q.clk.Val = 77
	w.jnt.Level = 3
	// Partner was already at w's new level: adopt its clock.
	p.reinit(w, q, 3)
	if w.clk.Val != 77 {
		t.Fatalf("authority clock not adopted: %+v", w.clk)
	}
}

func TestStableApproximateRaiseIdempotent(t *testing.T) {
	p := NewStableApproximate(Config{N: 4})
	w := &p.ag[0]
	p.raise(w)
	if !w.errFlag || w.bkInstance != 1 {
		t.Fatalf("raise did not initialize the backup instance: %+v", w)
	}
	w.bk.K = 3 // simulate progress in the fresh instance
	p.raise(w) // second raise must not reset it
	if w.bk.K != 3 {
		t.Fatal("second raise reset the backup instance")
	}
}

func TestStableApproximateTwoLeadersDetected(t *testing.T) {
	p := NewStableApproximate(Config{N: 4})
	for i := 0; i < 2; i++ {
		p.ag[i].led.Done = true
		p.ag[i].led.IsLeader = true
		p.ag[i].jnt = junta.State{Level: 1}
	}
	r := rng.New(1)
	p.Interact(0, 1, r)
	if !p.ag[0].errFlag || !p.ag[1].errFlag {
		t.Fatal("two concluded leaders meeting did not raise the error flag")
	}
}

func TestStableApproximateEDPhaseDesyncDetected(t *testing.T) {
	p := NewStableApproximate(Config{N: 4})
	a := &p.ag[0]
	b := &p.ag[1]
	for _, w := range []*stableAgent{a, b} {
		w.led.Done = true
		w.led.IsLeader = false
		w.searchDone = true
	}
	a.edPhase = 0
	b.edPhase = 3
	p.edStep(a, b)
	if !a.errFlag || !b.errFlag {
		t.Fatal("phase divergence of 3 not detected")
	}
}

func TestStableApproximateEDBalancingErrorDetected(t *testing.T) {
	p := NewStableApproximate(Config{N: 4})
	a := &p.ag[0]
	b := &p.ag[1]
	for _, w := range []*stableAgent{a, b} {
		w.led.Done = true
		w.led.IsLeader = false
		w.searchDone = true
		w.edPhase = 4
	}
	a.l, b.l = 1, 1 // below the minimum of 3 → k was too small
	p.edStep(a, b)
	if !a.errFlag {
		t.Fatal("under-load in phase 4 not detected")
	}
}

func TestStableApproximateEDPileTooLargeDetected(t *testing.T) {
	p := NewStableApproximate(Config{N: 4})
	w := &p.ag[0]
	w.led.Done = true
	w.led.IsLeader = false
	w.searchDone = true
	w.edPhase = 2
	w.k = 3 // a pile of 8 tokens survived the powers-of-two balancing
	w.clk.FirstTick = true
	q := &p.ag[1]
	p.edBoundary(w, q)
	if !w.errFlag {
		t.Fatal("unsplit pile in phase 2 not detected")
	}
}

func TestStableCountExactKDisagreementDetected(t *testing.T) {
	p := NewStableCountExact(Config{N: 4})
	a := &p.ag[0]
	b := &p.ag[1]
	for _, w := range []*stableExactAgent{a, b} {
		w.led.Done = true
		w.apxDone = true
		w.refEntered = true
		w.refMultiplied = true
	}
	a.k, b.k = 9, 10
	p.refineStep(a, b)
	if !a.errFlag || !b.errFlag {
		t.Fatal("k disagreement after multiplication not detected")
	}
}

func TestStableCountExactUnderloadDetected(t *testing.T) {
	p := NewStableCountExact(Config{N: 4})
	w := &p.ag[0]
	w.led.Done = true
	w.led.IsLeader = false
	w.apxDone = true
	w.refEntered = true
	w.k = 5
	w.l = 10 // below 2^5 − 1.5
	w.clk = clock.State{Val: uint16(2 * int(p.clk.M)), FirstTick: true}
	p.refBoundary(w)
	if !w.errFlag {
		t.Fatal("under-load before multiplication not detected")
	}
}

func TestStableProtocolsUnderPerturbedScheduler(t *testing.T) {
	// The stable variants must stay correct even off-model (their whole
	// point): run under the matching scheduler.
	n := 300
	p := NewStableCountExact(Config{N: n})
	res, err := sim.Run(p, sim.Config{
		Seed:            3,
		Scheduler:       sim.NewMatchingScheduler(),
		MaxInteractions: int64(n) * int64(n) * 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || p.Output(0) != int64(n) {
		t.Fatalf("stable exact under matching scheduler: conv=%v out=%d (errored=%v)",
			res.Converged, p.Output(0), p.Errored())
	}
}

func TestApproximateLeadersCountsContenders(t *testing.T) {
	p := NewApproximate(Config{N: 5})
	if p.Leaders() != 5 {
		t.Fatalf("initially %d leaders, want 5", p.Leaders())
	}
}

package core

import (
	"popcount/internal/backup"
	"popcount/internal/balance"
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
)

// edTokens is the constant 32 with which the Error Detection protocol
// over-compensates its load initialization (Algorithm 7, line 12).
const edTokens = 32

// stableAgent is the per-agent state of the stable protocol
// StableApproximate: the fast path of Approximate, the Error Detection
// protocol of Algorithm 7, and the backup protocol of Appendix C.1.
type stableAgent struct {
	// Fast path (identical to Approximate).
	jnt        junta.State
	clk        clock.State
	led        leader.State
	k          int16
	searchDone bool

	// Error Detection (Algorithm 7).
	edAnchor uint8 // synchronized phase at which error detection began
	edPhase  uint8 // phase′ ∈ {0,…,4}, stops at 4
	l        int16 // error-detection load ∈ [0, 32]
	frozen   bool  // clock stopped (phase′ 4 reached)
	errFlag  bool

	// Backup protocol (Appendix C.1). Instance 0 runs from the start
	// until leaderDone; instance 1 is a fresh instance started when the
	// error flag is raised. Piles merge only within the same instance.
	bk         backup.ApproxState
	bkInstance uint8
}

// StableApproximate is the stable (always correct) hybrid variant of
// protocol Approximate (Theorem 1.2, Section 3.4 and Appendices B–C).
//
// It runs protocol Approximate, replacing the Broadcasting Stage with the
// ErrorDetection protocol (Algorithm 7): the leader re-injects 2^(k−2)
// tokens, powers-of-two balancing spreads them, every agent converts its
// share into 32 classical tokens, classical balancing spreads those, and
// the leader recomputes k = ⌊k + 3 − log ℓ⌉ from its own balanced load.
// Any inconsistency — unbalanced piles, too-small loads, discrepancy
// above 2, phase desynchronization, or two leaders meeting — raises an
// error flag that spreads by one-way epidemics and switches every agent
// to a fresh instance of the slow backup protocol, which computes
// ⌊log n⌋ with probability 1.
type StableApproximate struct {
	stableApproxRule
	ag []stableAgent
}

// stableApproxRule is the n-independent part of StableApproximate: the
// configuration and sub-protocol wiring defining the pairwise rule,
// shared by the agent-array form and the transition spec
// (NewStableApproximateSpec).
type stableApproxRule struct {
	cfg   Config
	clk   clock.Clock
	elect leader.Election

	// FaultInjection corrupts the leader's k when the search concludes,
	// forcing the error-detection → backup path (experiment E9).
	FaultInjection bool
}

// newStableApproxRule wires the rule for cfg (with defaults applied).
func newStableApproxRule(cfg Config) stableApproxRule {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		panic("core: population must have at least 2 agents")
	}
	c := clock.New(cfg.ClockM)
	return stableApproxRule{cfg: cfg, clk: c, elect: leader.NewElection(c, cfg.OuterM)}
}

// initAgent returns the initial per-agent state.
func (p *stableApproxRule) initAgent() stableAgent {
	return stableAgent{
		jnt: junta.InitState(),
		clk: p.clk.Init(),
		led: p.elect.Init(),
		k:   -1,
		bk:  backup.InitApprox(),
	}
}

// NewStableApproximate returns a fresh instance of the stable protocol.
func NewStableApproximate(cfg Config) *StableApproximate {
	p := &StableApproximate{stableApproxRule: newStableApproxRule(cfg)}
	p.ag = make([]stableAgent, p.cfg.N)
	for i := range p.ag {
		p.ag[i] = p.initAgent()
	}
	return p
}

// N returns the population size.
func (p *StableApproximate) N() int { return p.cfg.N }

// Interact applies one interaction of the stable protocol.
func (p *StableApproximate) Interact(u, v int, r *rng.Rand) {
	p.stepPair(&p.ag[u], &p.ag[v], r)
}

// stepPair applies one interaction of the rule to the pair (a, b) with
// initiator a.
func (p *stableApproxRule) stepPair(a, b *stableAgent, r *rng.Rand) {
	// Error flags spread by one-way epidemics; an agent switches to a
	// fresh backup instance the moment it learns of an error.
	if a.errFlag != b.errFlag {
		if a.errFlag {
			p.raise(b)
		} else {
			p.raise(a)
		}
	}

	// Backup protocol: instance 0 runs until leaderDone, instance 1
	// after an error. Piles merge only within one instance (Appendix B).
	if p.bkActive(a) && p.bkActive(b) && a.bkInstance == b.bkInstance {
		backup.ApproxInteract(&a.bk, &b.bk)
	}

	// Junta process with per-level re-initialization, as in Approximate.
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(a, b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(b, a, preA)
	}

	// Phase clocks; a frozen agent (phase′ 4) no longer participates,
	// but its partner still reads its value (Algorithm 7, line 23).
	switch {
	case !a.frozen && !b.frozen:
		p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	case a.frozen && !b.frozen:
		p.clk.TickOne(&b.clk, a.clk.Val, b.jnt.Junta)
	case !a.frozen && b.frozen:
		p.clk.TickOne(&a.clk, b.clk.Val, a.jnt.Junta)
	}

	// Two leaders that both concluded leader election meeting each other
	// is a detectable error (Appendix B).
	if a.led.IsLeader && b.led.IsLeader && a.led.Done && b.led.Done {
		p.raise(a)
		p.raise(b)
	}
	if a.errFlag && b.errFlag {
		return
	}

	// Stage 1: leader election.
	if !a.led.Done || !b.led.Done {
		p.elect.Interact(&a.led, &b.led, a.clk, b.clk, a.jnt.Junta, b.jnt.Junta, r)
	}

	// Stage 2: the Search Protocol (identical to Approximate).
	p.searchStep(a, b)

	// Stage 3: Error Detection (replaces the Broadcasting Stage;
	// Algorithm 6).
	p.edStep(a, b)
}

func (p *stableApproxRule) reinit(w, q *stableAgent, qPreLevel uint8) {
	if qPreLevel >= w.jnt.Level {
		w.clk = q.clk
		w.clk.FirstTick = false
	} else {
		w.clk = p.clk.Init()
	}
	w.led = p.elect.Init()
	w.k = -1
	w.searchDone = false
	w.edAnchor, w.edPhase, w.l, w.frozen = 0, 0, 0, false
}

// raise sets the error flag and starts the fresh backup instance
// (Appendix B: the agent ignores all of its previous computations and
// executes a new instance of the backup protocol).
func (p *stableApproxRule) raise(w *stableAgent) {
	if w.errFlag {
		return
	}
	w.errFlag = true
	w.bk = backup.InitApprox()
	w.bkInstance = 1
}

// bkActive reports whether agent w currently executes the backup
// protocol: instance 0 until leaderDone, instance 1 after an error.
func (p *stableApproxRule) bkActive(w *stableAgent) bool {
	if w.errFlag {
		return true
	}
	return !w.led.Done
}

// inSearch reports whether agent w currently executes the Search Protocol.
func (p *stableApproxRule) inSearch(w *stableAgent) bool {
	return w.led.Done && !w.searchDone && !w.errFlag
}

// searchStep is the Search Protocol step (Algorithm 1), identical to
// Approximate's.
func (p *stableApproxRule) searchStep(a, b *stableAgent) {
	p.searchBoundary(a)
	p.searchBoundary(b)
	p.searchLeaderActions(a, b)
	p.searchLeaderActions(b, a)
	if !p.inSearch(a) || !p.inSearch(b) || a.led.IsLeader || b.led.IsLeader {
		return
	}
	switch p.clk.PhaseMod(a.clk, 5) {
	case 2:
		balance.PowerOfTwo(&a.k, &b.k)
	case 3:
		if a.k < b.k {
			a.k = b.k
		} else if b.k < a.k {
			b.k = a.k
		}
	}
}

// searchBoundary resets a non-leader's k once at phase-0 entry; see the
// corresponding comment in Approximate.searchBoundary for why the reset
// must not repeat throughout phase 0.
func (p *stableApproxRule) searchBoundary(w *stableAgent) {
	if !p.inSearch(w) || w.led.IsLeader || !w.clk.FirstTick {
		return
	}
	if p.clk.PhaseMod(w.clk, 5) == 0 {
		w.k = -1
	}
}

func (p *stableApproxRule) searchLeaderActions(w, q *stableAgent) {
	if !w.led.IsLeader || !p.inSearch(w) || !w.clk.FirstTick {
		return
	}
	switch p.clk.PhaseMod(w.clk, 5) {
	case 1:
		if !q.led.IsLeader && p.inSearch(q) {
			q.k = w.k
		}
	case 4:
		if q.k <= 0 {
			if w.k < maxSearchK {
				w.k++
			}
		} else {
			w.searchDone = true
			if p.FaultInjection {
				// Corrupt the result to exercise the error-detection →
				// backup path: claim a population sixteen times too
				// small. (Smaller corruptions are silently *corrected*
				// by Algorithm 7's line 19, which recomputes k from the
				// balanced load — a feature, covered by its own test.)
				w.k -= 4
				if w.k < 1 {
					w.k = 1
				}
			}
			// The leader anchors the Error Detection stage to the phase
			// in which it concluded the search; the anchor travels with
			// the searchDone infection.
			w.edAnchor = p.clk.PhaseIdx(w.clk)
			w.edPhase = 0
			w.l = 0
		}
	}
}

// inED reports whether agent w currently executes the Error Detection
// protocol.
func (p *stableApproxRule) inED(w *stableAgent) bool {
	return w.led.Done && w.searchDone && !w.errFlag
}

// edStep applies one interaction of the ErrorDetection protocol
// (Algorithm 7) to the pair (a, b).
func (p *stableApproxRule) edStep(a, b *stableAgent) {
	// Line 1–2: an agent entering error detection resets its state; the
	// synchronized anchor travels with the searchDone infection.
	if p.inED(a) && !p.inED(b) && !b.errFlag && b.led.Done {
		p.enterED(b, a.edAnchor)
	} else if p.inED(b) && !p.inED(a) && !a.errFlag && a.led.Done {
		p.enterED(a, b.edAnchor)
	}
	if !p.inED(a) || !p.inED(b) {
		return
	}

	p.edBoundary(a, b)
	p.edBoundary(b, a)

	// Synchronization check: after the clock update at the beginning of
	// the interaction, two correctly synchronized agents are in the same
	// phase′ — except that a junta member advancing from an equal clock
	// value can legitimately be exactly one phase ahead at a boundary.
	// A difference of two or more phases means the execution became
	// asynchronous.
	if d := absInt16(int16(a.edPhase) - int16(b.edPhase)); d >= 2 {
		p.raise(a)
		p.raise(b)
		return
	}
	if a.edPhase != b.edPhase {
		// Boundary window: postpone the phase-keyed pair rules until the
		// agents agree.
		return
	}

	switch a.edPhase {
	case 1:
		// Line 5–7: powers-of-two load balancing among non-leaders.
		if !a.led.IsLeader && !b.led.IsLeader {
			balance.PowerOfTwo(&a.k, &b.k)
		}
	case 3:
		// Line 15–16: classical load balancing (all agents).
		lu, lv := int64(a.l), int64(b.l)
		balance.Classical(&lu, &lv)
		a.l, b.l = int16(lu), int16(lv)
	case 4:
		// Line 20–21: balancing error checks.
		if a.l < 3 || b.l < 3 || absInt16(a.l-b.l) > 2 {
			p.raise(a)
			p.raise(b)
			return
		}
		// Line 22: broadcast the result from the leader.
		if a.k < b.k {
			a.k = b.k
		} else if b.k < a.k {
			b.k = a.k
		}
	}
}

// enterED moves agent w into the Error Detection stage (Algorithm 7,
// lines 1–2): non-leaders clear k so the stage's powers-of-two balancing
// starts from empty agents.
func (p *stableApproxRule) enterED(w *stableAgent, anchor uint8) {
	w.searchDone = true
	w.edAnchor = anchor
	w.edPhase = 0
	w.l = 0
	if !w.led.IsLeader {
		w.k = -1
	}
}

// edBoundary applies the Error Detection first-tick rules to endpoint w
// with partner q, and maintains the agent's phase′ counter.
func (p *stableApproxRule) edBoundary(w, q *stableAgent) {
	if w.frozen {
		return
	}
	if ph := p.clk.PhasesSince(w.clk, w.edAnchor); ph < int(w.edPhase) {
		// The modular distance wrapped; treat as stuck (the stage lasts
		// 5 phases ≪ the modulus, so this indicates desynchronization).
		p.raise(w)
		return
	} else if ph > 4 {
		w.edPhase = 4
		w.frozen = true
	} else {
		w.edPhase = uint8(ph)
	}
	if !w.clk.FirstTick {
		return
	}
	switch w.edPhase {
	case 0:
		// Line 3–4: the leader initializes another agent with 2^(k−2)
		// tokens in powers-of-two representation.
		if w.led.IsLeader && !q.led.IsLeader && p.inED(q) && w.k >= 2 {
			q.k = w.k - 2
		}
	case 2:
		// Line 8–14: convert the powers-of-two share into 32 classical
		// tokens; any pile larger than one token means the balancing
		// failed.
		switch {
		case w.k == -1 || w.led.IsLeader:
			w.l = 0
		case w.k == 0:
			w.l = edTokens
		default:
			p.raise(w)
		}
	case 4:
		// Line 18–19: the leader recomputes the approximation of log n
		// from its own balanced load; then the clock stops (line 23).
		if w.led.IsLeader && w.l >= 1 {
			w.k = int16(roundToInt(float64(w.k) + 3 - log2f(float64(w.l))))
		}
		w.frozen = true
	}
}

// Output returns agent i's output: the backup instance's result after an
// error, otherwise the fast path's k.
func (p *StableApproximate) Output(i int) int64 {
	w := &p.ag[i]
	if w.errFlag {
		return int64(w.bk.KMax)
	}
	return int64(w.k)
}

// Errored reports whether any agent has raised the error flag.
func (p *StableApproximate) Errored() bool {
	for i := range p.ag {
		if p.ag[i].errFlag {
			return true
		}
	}
	return false
}

// Converged reports whether the population has stabilized on a common
// output: either every agent is frozen in phase′ 4 with the same k and no
// errors, or every agent has switched to the backup instance and the
// backup has converged to ⌊log n⌋'s configuration.
func (p *StableApproximate) Converged() bool {
	if p.ag[0].errFlag {
		return p.backupConverged()
	}
	k := p.ag[0].k
	for i := range p.ag {
		w := &p.ag[i]
		if w.errFlag {
			return p.backupConverged()
		}
		if !w.frozen || w.k != k || k < 0 {
			return false
		}
	}
	return true
}

// backupConverged mirrors Lemma 12's terminal condition on the fresh
// backup instance.
func (p *StableApproximate) backupConverged() bool {
	n := len(p.ag)
	var counts [64]int
	want := int16(sliceLog2Floor(n))
	for i := range p.ag {
		w := &p.ag[i]
		if !w.errFlag || w.bkInstance != 1 {
			return false
		}
		if w.bk.KMax != want {
			return false
		}
		if k := w.bk.K; k >= 0 {
			counts[k]++
		}
	}
	for i := 0; i <= int(want); i++ {
		if counts[i] != (n>>uint(i))&1 {
			return false
		}
	}
	return true
}

// Leaders returns the number of current leader contenders.
func (p *StableApproximate) Leaders() int {
	c := 0
	for i := range p.ag {
		if p.ag[i].led.IsLeader {
			c++
		}
	}
	return c
}

func absInt16(x int16) int16 {
	if x < 0 {
		return -x
	}
	return x
}

func roundToInt(x float64) int {
	if x >= 0 {
		return int(x + 0.5)
	}
	return -int(-x + 0.5)
}

// log2f returns log₂ x for x > 0.
func log2f(x float64) float64 {
	// ln(x)/ln(2) via the standard library would pull in math; a small
	// iterative log2 on the integer and fractional parts keeps the hot
	// path allocation-free. Loads here are ≤ 32, so a table would do,
	// but the closed form is clearer.
	n := 0
	for x >= 2 {
		x /= 2
		n++
	}
	for x < 1 {
		x *= 2
		n--
	}
	// x ∈ [1, 2): one step of binary-log refinement per fractional bit.
	frac := 0.0
	add := 0.5
	for i := 0; i < 20; i++ {
		x *= x
		if x >= 2 {
			frac += add
			x /= 2
		}
		add /= 2
	}
	return float64(n) + frac
}

func sliceLog2Floor(n int) int {
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

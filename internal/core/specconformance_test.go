// Bit-for-bit conformance of the core transition specs against the
// hand-written composed protocols. The spec-derived agent adapter runs
// the same stepPair on the same engine pair stream with the same coin
// consumption, so every run must be IDENTICAL — results, outputs,
// error flags — not merely close. This is the strongest pin on the
// spec port: any divergence in the rule repackaging, the state
// canonicalization (a field zeroed that was actually still read), or
// the coin-claim predicates shows up as the first differing agent.
package core_test

import (
	"testing"

	"popcount/internal/core"
	"popcount/internal/sim"
)

// runBoth drives the hand-written protocol and the spec-derived agent
// adapter under identical engine configs and pins results and all
// per-agent outputs.
func runBoth(t *testing.T, name string, n int, hand sim.Protocol, agent *sim.SpecAgent, cfg sim.Config) {
	t.Helper()
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatalf("%s hand-written run: %v", name, err)
	}
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatalf("%s spec run: %v", name, err)
	}
	if handRes != specRes {
		t.Fatalf("%s results differ: hand %+v vs spec %+v", name, handRes, specRes)
	}
	ho, ok := hand.(sim.Outputter)
	if !ok {
		t.Fatalf("%s hand-written protocol has no outputs", name)
	}
	for i := 0; i < n; i++ {
		if got, want := agent.Output(i), ho.Output(i); got != want {
			t.Fatalf("%s agent %d: spec output %d, hand-written output %d", name, i, got, want)
		}
	}
}

func TestSpecAgentMatchesApproximateBitForBit(t *testing.T) {
	const n = 300
	cfg := sim.Config{Seed: 0xC0A1, CheckEvery: n}
	spec := core.NewApproximateSpec(core.Config{N: n})
	runBoth(t, "approximate", n,
		core.NewApproximate(core.Config{N: n}), sim.NewSpecAgent(spec.Spec), cfg)
}

func TestSpecAgentMatchesCountExactBitForBit(t *testing.T) {
	const n = 300
	cfg := sim.Config{Seed: 0xC0A2, CheckEvery: n}
	spec := core.NewCountExactSpec(core.Config{N: n})
	runBoth(t, "exact", n,
		core.NewCountExact(core.Config{N: n}), sim.NewSpecAgent(spec.Spec), cfg)
}

// The stable variants are pinned on the clean path (run to convergence)
// and on the fault-injected path (fixed interaction budget sized to reach error detection — backup
// convergence is Θ(n² log² n), so the fault pin compares mid-backup
// states instead of waiting it out). The Errored probe must agree too.
func TestSpecAgentMatchesStableApproximateBitForBit(t *testing.T) {
	const n = 256
	for _, fault := range []bool{false, true} {
		cfg := sim.Config{Seed: 0xC0A3, CheckEvery: n}
		if fault {
			cfg.MaxInteractions = 4_000_000
		}
		hand := core.NewStableApproximate(core.Config{N: n})
		hand.FaultInjection = fault
		agent := sim.NewSpecAgent(core.NewStableApproximateSpec(core.Config{N: n}, fault).Spec)
		runBoth(t, "stable-approximate", n, hand, agent, cfg)
		if agent.Errored() != hand.Errored() {
			t.Fatalf("fault=%v: spec Errored %v, hand-written %v", fault, agent.Errored(), hand.Errored())
		}
		if fault && !agent.Errored() {
			t.Fatal("fault injection did not trip error detection within the budget")
		}
	}
}

func TestSpecAgentMatchesStableCountExactBitForBit(t *testing.T) {
	const n = 256
	for _, fault := range []bool{false, true} {
		cfg := sim.Config{Seed: 0xC0A4, CheckEvery: n}
		if fault {
			cfg.MaxInteractions = 4_000_000
		}
		hand := core.NewStableCountExact(core.Config{N: n})
		hand.FaultInjection = fault
		agent := sim.NewSpecAgent(core.NewStableCountExactSpec(core.Config{N: n}, fault).Spec)
		runBoth(t, "stable-exact", n, hand, agent, cfg)
		if agent.Errored() != hand.Errored() {
			t.Fatalf("fault=%v: spec Errored %v, hand-written %v", fault, agent.Errored(), hand.Errored())
		}
		if fault && !agent.Errored() {
			t.Fatal("fault injection did not trip error detection within the budget")
		}
	}
}

// TestSpecViewMetricsMatch pins the configuration-level metrics
// decoders against the agent-array originals after a converged run.
func TestSpecViewMetricsMatch(t *testing.T) {
	const n = 300
	cfg := sim.Config{Seed: 0xC0A5, CheckEvery: n}

	hand := core.NewApproximate(core.Config{N: n})
	if _, err := sim.Run(hand, cfg); err != nil {
		t.Fatal(err)
	}
	spec := core.NewApproximateSpec(core.Config{N: n})
	agent := sim.NewSpecAgent(spec.Spec)
	if _, err := sim.Run(agent, cfg); err != nil {
		t.Fatal(err)
	}
	if got, want := spec.Metrics(agent.View()), hand.Metrics(); got != want {
		t.Fatalf("approximate metrics: spec %+v, hand-written %+v", got, want)
	}

	handE := core.NewCountExact(core.Config{N: n})
	if _, err := sim.Run(handE, cfg); err != nil {
		t.Fatal(err)
	}
	specE := core.NewCountExactSpec(core.Config{N: n})
	agentE := sim.NewSpecAgent(specE.Spec)
	if _, err := sim.Run(agentE, cfg); err != nil {
		t.Fatal(err)
	}
	if gotE, wantE := specE.Metrics(agentE.View()), handE.Metrics(); gotE != wantE {
		t.Fatalf("exact metrics: spec %+v, hand-written %+v", gotE, wantE)
	}
}

package core

import (
	"popcount/internal/backup"
	"popcount/internal/balance"
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
)

// stableExactAgent is the per-agent state of StableCountExact: the fast
// path of CountExact plus the error flag and the exact backup protocol of
// Appendix C.2.
type stableExactAgent struct {
	jnt junta.State
	clk clock.State
	led leader.FastState

	i       int32
	k       int32
	l       int64
	apxDone bool

	refAnchor     uint8
	refEntered    bool
	refInjected   bool
	refMultiplied bool
	frozen        bool

	errFlag bool

	bk         backup.ExactState
	bkInstance uint8
}

// StableCountExact is the stable (always correct) variant of protocol
// CountExact (Theorem 2 and Appendix F). On top of the fast path it
// detects: two concluded leaders meeting, phase-counter divergence during
// the Refinement Stage, insufficient load before the refinement
// multiplication (ℓ < 2⁵ − 1.5, meaning the approximation k was too
// small), disagreeing k values, and arithmetic overflow. Any error
// switches the population to a fresh instance of the exact backup
// protocol (Appendix C.2), which outputs n with probability 1.
type StableCountExact struct {
	stableExactRule
	ag []stableExactAgent
}

// stableExactRule is the n-independent part of StableCountExact,
// shared by the agent-array form and the transition spec
// (NewStableCountExactSpec).
type stableExactRule struct {
	cfg   Config
	clk   clock.Clock
	elect leader.FastElection

	// FaultInjection corrupts the leader's approximation k when the
	// Approximation Stage concludes, forcing the error path.
	FaultInjection bool
}

// newStableExactRule wires the rule for cfg (with defaults applied).
func newStableExactRule(cfg Config) stableExactRule {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		panic("core: population must have at least 2 agents")
	}
	c := clock.New(cfg.ClockM)
	return stableExactRule{cfg: cfg, clk: c, elect: leader.NewFastElection(c, cfg.FastRounds)}
}

// initAgent returns the initial per-agent state.
func (p *stableExactRule) initAgent() stableExactAgent {
	return stableExactAgent{
		jnt: junta.InitState(),
		clk: p.clk.Init(),
		led: p.elect.Init(),
		bk:  backup.InitExact(),
	}
}

// NewStableCountExact returns a fresh instance of the stable protocol.
func NewStableCountExact(cfg Config) *StableCountExact {
	p := &StableCountExact{stableExactRule: newStableExactRule(cfg)}
	p.ag = make([]stableExactAgent, p.cfg.N)
	for i := range p.ag {
		p.ag[i] = p.initAgent()
	}
	return p
}

// N returns the population size.
func (p *StableCountExact) N() int { return p.cfg.N }

func (p *stableExactRule) injectExp(level uint8) int32 {
	e := int32(1) << level >> uint(p.cfg.Shift)
	if e < 1 {
		e = 1
	}
	if e > 16 {
		e = 16
	}
	return e
}

// Interact applies one interaction of the stable protocol.
func (p *StableCountExact) Interact(u, v int, r *rng.Rand) {
	p.stepPair(&p.ag[u], &p.ag[v], r)
}

// stepPair applies one interaction of the rule to the pair (a, b) with
// initiator a.
func (p *stableExactRule) stepPair(a, b *stableExactAgent, r *rng.Rand) {
	// Error flags spread by one-way epidemics.
	if a.errFlag != b.errFlag {
		if a.errFlag {
			p.raise(b)
		} else {
			p.raise(a)
		}
	}

	// Backup protocol: instance 0 runs until leaderDone, instance 1
	// after an error; merges only within one instance.
	if p.bkActive(a) && p.bkActive(b) && a.bkInstance == b.bkInstance {
		backup.ExactInteract(&a.bk, &b.bk)
	}

	// Junta process with per-level re-initialization.
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(a, b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(b, a, preA)
	}

	// Phase clocks (frozen agents no longer participate).
	switch {
	case !a.frozen && !b.frozen:
		p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	case a.frozen && !b.frozen:
		p.clk.TickOne(&b.clk, a.clk.Val, b.jnt.Junta)
	case !a.frozen && b.frozen:
		p.clk.TickOne(&a.clk, b.clk.Val, a.jnt.Junta)
	}

	// Two concluded leaders meeting is a detectable error (Appendix F).
	if a.led.IsLeader && b.led.IsLeader && a.led.Done && b.led.Done {
		p.raise(a)
		p.raise(b)
	}
	if a.errFlag && b.errFlag {
		return
	}

	// Stage 1: FastLeaderElection.
	if !a.led.Done || !b.led.Done {
		p.elect.Interact(&a.led, &b.led, a.clk, b.clk, a.jnt.Level, b.jnt.Level, r)
	}

	// Stage 2: Approximation Stage.
	p.apxStep(a, b)

	// Stage 3: Refinement Stage with error checks.
	p.refineStep(a, b)
}

func (p *stableExactRule) reinit(w, q *stableExactAgent, qPreLevel uint8) {
	if qPreLevel >= w.jnt.Level {
		w.clk = q.clk
		w.clk.FirstTick = false
	} else {
		w.clk = p.clk.Init()
	}
	w.led = p.elect.Init()
	w.i, w.k, w.l = 0, 0, 0
	w.apxDone = false
	w.refAnchor, w.refEntered, w.refInjected, w.refMultiplied = 0, false, false, false
	w.frozen = false
}

func (p *stableExactRule) raise(w *stableExactAgent) {
	if w.errFlag {
		return
	}
	w.errFlag = true
	w.bk = backup.InitExact()
	w.bkInstance = 1
}

func (p *stableExactRule) bkActive(w *stableExactAgent) bool {
	if w.errFlag {
		return true
	}
	return !w.led.Done
}

func (p *stableExactRule) inApx(w *stableExactAgent) bool {
	return w.led.Done && !w.apxDone && !w.errFlag
}

func (p *stableExactRule) apxStep(a, b *stableExactAgent) {
	p.apxBoundary(a)
	p.apxBoundary(b)
	if p.inApx(a) && p.inApx(b) {
		balance.Classical(&a.l, &b.l)
	}
	if a.apxDone && p.inApx(b) {
		p.enterRefinement(b, a.refAnchor)
	} else if b.apxDone && p.inApx(a) {
		p.enterRefinement(a, b.refAnchor)
	}
}

func (p *stableExactRule) apxBoundary(w *stableExactAgent) {
	if !p.inApx(w) || !w.clk.FirstTick {
		return
	}
	e := p.injectExp(w.jnt.Level)
	if w.led.IsLeader && w.i == 0 {
		w.l = 1
	}
	if w.led.IsLeader && w.l >= 4 && w.i > 0 {
		k := w.i*e - int32(log2Floor64(w.l))
		if k < 0 {
			k = 0
		}
		if p.FaultInjection {
			// Claim a population 16 times too small: the refinement's
			// pre-multiplication load check must catch this.
			k -= 4
			if k < 0 {
				k = 0
			}
		}
		w.k = k
		p.enterRefinement(w, p.clk.PhaseIdx(w.clk))
		return
	}
	w.i++
	if w.l > 0 {
		if w.l > int64(1)<<(62-uint(e)) {
			p.raise(w)
		} else {
			w.l <<= uint(e)
		}
	}
}

func (p *stableExactRule) enterRefinement(w *stableExactAgent, anchor uint8) {
	w.apxDone = true
	if w.refEntered {
		return
	}
	w.refEntered = true
	w.refAnchor = anchor
	w.l = 0
	if w.k < 0 {
		w.k = 0
	}
}

func (p *stableExactRule) inRef(w *stableExactAgent) bool {
	return w.led.Done && w.apxDone && !w.errFlag
}

func (p *stableExactRule) refineStep(a, b *stableExactAgent) {
	p.refBoundary(a)
	p.refBoundary(b)
	if !p.inRef(a) || !p.inRef(b) {
		return
	}

	rpA := p.clk.PhasesSince(a.clk, a.refAnchor)
	rpB := p.clk.PhasesSince(b.clk, b.refAnchor)
	if rpA > 4 {
		rpA = 4
	}
	if rpB > 4 {
		rpB = 4
	}
	// Appendix F: agents compare their (stage-local) phase counts;
	// divergence beyond the legitimate one-phase boundary window is an
	// error.
	if d := rpA - rpB; d >= 2 || d <= -2 {
		p.raise(a)
		p.raise(b)
		return
	}

	// k broadcast (phase 0 rule); after both agents multiplied, their k
	// values must agree (Appendix F).
	if a.refMultiplied && b.refMultiplied && a.k != b.k {
		p.raise(a)
		p.raise(b)
		return
	}
	if a.k < b.k {
		a.k = b.k
	} else if b.k < a.k {
		b.k = a.k
	}

	if a.refMultiplied == b.refMultiplied {
		balance.Classical(&a.l, &b.l)
	}
}

func (p *stableExactRule) refBoundary(w *stableExactAgent) {
	if !p.inRef(w) || !w.clk.FirstTick || w.frozen {
		return
	}
	switch rp := p.clk.PhasesSince(w.clk, w.refAnchor); rp {
	case 1:
		if w.led.IsLeader && !w.refInjected {
			w.refInjected = true
			w.l = refC << uint(w.k)
		}
	case 2:
		if !w.refMultiplied {
			w.refMultiplied = true
			// Appendix F: verify the load is at least 2⁵ − 1.5 before
			// multiplying; an under-loaded agent means the total load is
			// insufficient to compute n exactly.
			if !w.led.IsLeader && w.l < 31 {
				p.raise(w)
				return
			}
			if w.l > 0 && w.k > 0 {
				if w.l > int64(1)<<(62-uint(w.k)) {
					p.raise(w)
				} else {
					w.l <<= uint(w.k)
				}
			}
		}
	default:
		if rp >= 3 {
			// The stage is complete: stop the phase clock so the
			// configuration is stable.
			w.frozen = true
		}
	}
}

// Output returns agent i's output: the backup's count after an error,
// otherwise ⌊2^8·2^(2k)/ℓ⌉.
func (p *StableCountExact) Output(i int) int64 {
	w := &p.ag[i]
	if w.errFlag {
		return w.bk.Count
	}
	if !w.refMultiplied || w.l <= 0 {
		return 0
	}
	num := refC << uint(2*w.k)
	return (num + w.l/2) / w.l
}

// Errored reports whether any agent has raised the error flag.
func (p *StableCountExact) Errored() bool {
	for i := range p.ag {
		if p.ag[i].errFlag {
			return true
		}
	}
	return false
}

// Converged reports whether the population has stabilized: either every
// agent is frozen after the Refinement Stage with equal outputs and no
// errors, or every agent runs the fresh backup instance and it has
// converged (one uncounted agent, all counts equal).
func (p *StableCountExact) Converged() bool {
	if p.ag[0].errFlag {
		return p.backupConverged()
	}
	want := p.Output(0)
	if want == 0 {
		return false
	}
	for i := range p.ag {
		w := &p.ag[i]
		if w.errFlag {
			return p.backupConverged()
		}
		if !w.frozen || !w.refMultiplied || w.l <= 0 || p.Output(i) != want {
			return false
		}
	}
	return true
}

func (p *StableCountExact) backupConverged() bool {
	uncounted := 0
	want := int64(0)
	for i := range p.ag {
		w := &p.ag[i]
		if !w.errFlag || w.bkInstance != 1 {
			return false
		}
		if !w.bk.Counted {
			uncounted++
		}
		if w.bk.Count > want {
			want = w.bk.Count
		}
	}
	if uncounted != 1 {
		return false
	}
	for i := range p.ag {
		if p.ag[i].bk.Count != want {
			return false
		}
	}
	return true
}

// Leaders returns the number of current leader contenders.
func (p *StableCountExact) Leaders() int {
	c := 0
	for i := range p.ag {
		if p.ag[i].led.IsLeader {
			c++
		}
	}
	return c
}

// Portable binary encodings of the composed protocols' product states,
// backing the spec layer's EncodeState/DecodeState snapshot hooks
// (sim.StateCodec).
//
// The interned state codes of the four headline protocols are
// trajectory-local — code 17 names whatever state that spec instance
// discovered seventeenth — so engine snapshots cannot store codes. They
// store these encodings instead: a fixed-layout little-endian dump of
// the decoded product state, which any fresh spec instance of the same
// protocol decodes and re-interns. The encodings are injective by
// construction (every field round-trips exactly), which is what lets
// the restored instance's code assignment be a faithful renaming of the
// original's.
//
// Layouts are versioned implicitly through the engine snapshot version
// (sim/snapshot.go): a field added to an agent struct must bump that
// version, because the decoder here rejects blobs of the wrong length.
package core

import (
	"encoding/binary"
	"fmt"

	"popcount/internal/backup"
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
)

// stateEnc appends fixed-width little-endian fields to a buffer.
type stateEnc struct {
	buf []byte
}

func (e *stateEnc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *stateEnc) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *stateEnc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *stateEnc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *stateEnc) i16(v int16)  { e.u16(uint16(v)) }
func (e *stateEnc) i32(v int32)  { e.u32(uint32(v)) }
func (e *stateEnc) i64(v int64)  { e.u64(uint64(v)) }
func (e *stateEnc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// stateDec reads the same layout back, latching the first error.
// Booleans must be exactly 0 or 1 — anything else marks a blob that no
// encoder produced, and accepting it would break the injectivity the
// snapshot renaming argument rests on.
type stateDec struct {
	buf []byte
	off int
	err error
}

func (d *stateDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("core: state blob truncated at byte %d of %d", d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *stateDec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *stateDec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *stateDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *stateDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *stateDec) i16(v *int16) { *v = int16(d.u16()) }
func (d *stateDec) i32(v *int32) { *v = int32(d.u32()) }
func (d *stateDec) i64(v *int64) { *v = int64(d.u64()) }

func (d *stateDec) bool() bool {
	v := d.u8()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("core: state blob boolean byte %#x at offset %d", v, d.off-1)
	}
	return v == 1
}

// done checks the blob was consumed exactly.
func (d *stateDec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("core: state blob has %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// Sub-protocol state layouts.

func encJunta(e *stateEnc, s junta.State) {
	e.u8(s.Level)
	e.bool(s.Active)
	e.bool(s.Junta)
}

func decJunta(d *stateDec) (s junta.State) {
	s.Level = d.u8()
	s.Active = d.bool()
	s.Junta = d.bool()
	return s
}

func encClock(e *stateEnc, s clock.State) {
	e.u16(s.Val)
	e.u32(s.Phase)
	e.bool(s.FirstTick)
}

func decClock(d *stateDec) (s clock.State) {
	s.Val = d.u16()
	s.Phase = d.u32()
	s.FirstTick = d.bool()
	return s
}

func encSlowLed(e *stateEnc, s leader.State) {
	e.bool(s.IsLeader)
	e.bool(s.Done)
	e.u8(s.Bit)
	e.u8(s.SeenMax)
	e.u8(s.Tag)
	encClock(e, s.Outer)
}

func decSlowLed(d *stateDec) (s leader.State) {
	s.IsLeader = d.bool()
	s.Done = d.bool()
	s.Bit = d.u8()
	s.SeenMax = d.u8()
	s.Tag = d.u8()
	s.Outer = decClock(d)
	return s
}

func encFastLed(e *stateEnc, s leader.FastState) {
	e.bool(s.IsLeader)
	e.bool(s.Done)
	e.u64(s.Val)
	e.u8(s.Tag)
	e.u8(s.Phases)
}

func decFastLed(d *stateDec) (s leader.FastState) {
	s.IsLeader = d.bool()
	s.Done = d.bool()
	s.Val = d.u64()
	s.Tag = d.u8()
	s.Phases = d.u8()
	return s
}

func encBackupApprox(e *stateEnc, s backup.ApproxState) {
	e.i16(s.K)
	e.i16(s.KMax)
}

func decBackupApprox(d *stateDec) (s backup.ApproxState) {
	d.i16(&s.K)
	d.i16(&s.KMax)
	return s
}

func encBackupExact(e *stateEnc, s backup.ExactState) {
	e.bool(s.Counted)
	e.i64(s.Count)
}

func decBackupExact(d *stateDec) (s backup.ExactState) {
	s.Counted = d.bool()
	d.i64(&s.Count)
	return s
}

// Agent-state layouts, one per headline protocol.

func encodeApprox(w approxAgent) []byte {
	e := &stateEnc{}
	encJunta(e, w.jnt)
	encClock(e, w.clk)
	encSlowLed(e, w.led)
	e.i16(w.k)
	e.bool(w.searchDone)
	return e.buf
}

func decodeApprox(b []byte) (approxAgent, error) {
	d := &stateDec{buf: b}
	var w approxAgent
	w.jnt = decJunta(d)
	w.clk = decClock(d)
	w.led = decSlowLed(d)
	d.i16(&w.k)
	w.searchDone = d.bool()
	return w, d.done()
}

func encodeExact(w exactAgent) []byte {
	e := &stateEnc{}
	encJunta(e, w.jnt)
	encClock(e, w.clk)
	encFastLed(e, w.led)
	e.i32(w.i)
	e.i32(w.k)
	e.i64(w.l)
	e.bool(w.apxDone)
	e.u8(w.refAnchor)
	e.bool(w.refEntered)
	e.bool(w.refInjected)
	e.bool(w.refMultiplied)
	e.bool(w.overflow)
	return e.buf
}

func decodeExact(b []byte) (exactAgent, error) {
	d := &stateDec{buf: b}
	var w exactAgent
	w.jnt = decJunta(d)
	w.clk = decClock(d)
	w.led = decFastLed(d)
	d.i32(&w.i)
	d.i32(&w.k)
	d.i64(&w.l)
	w.apxDone = d.bool()
	w.refAnchor = d.u8()
	w.refEntered = d.bool()
	w.refInjected = d.bool()
	w.refMultiplied = d.bool()
	w.overflow = d.bool()
	return w, d.done()
}

func encodeStableApprox(w stableAgent) []byte {
	e := &stateEnc{}
	encJunta(e, w.jnt)
	encClock(e, w.clk)
	encSlowLed(e, w.led)
	e.i16(w.k)
	e.bool(w.searchDone)
	e.u8(w.edAnchor)
	e.u8(w.edPhase)
	e.i16(w.l)
	e.bool(w.frozen)
	e.bool(w.errFlag)
	encBackupApprox(e, w.bk)
	e.u8(w.bkInstance)
	return e.buf
}

func decodeStableApprox(b []byte) (stableAgent, error) {
	d := &stateDec{buf: b}
	var w stableAgent
	w.jnt = decJunta(d)
	w.clk = decClock(d)
	w.led = decSlowLed(d)
	d.i16(&w.k)
	w.searchDone = d.bool()
	w.edAnchor = d.u8()
	w.edPhase = d.u8()
	d.i16(&w.l)
	w.frozen = d.bool()
	w.errFlag = d.bool()
	w.bk = decBackupApprox(d)
	w.bkInstance = d.u8()
	return w, d.done()
}

func encodeStableExact(w stableExactAgent) []byte {
	e := &stateEnc{}
	encJunta(e, w.jnt)
	encClock(e, w.clk)
	encFastLed(e, w.led)
	e.i32(w.i)
	e.i32(w.k)
	e.i64(w.l)
	e.bool(w.apxDone)
	e.u8(w.refAnchor)
	e.bool(w.refEntered)
	e.bool(w.refInjected)
	e.bool(w.refMultiplied)
	e.bool(w.frozen)
	e.bool(w.errFlag)
	encBackupExact(e, w.bk)
	e.u8(w.bkInstance)
	return e.buf
}

func decodeStableExact(b []byte) (stableExactAgent, error) {
	d := &stateDec{buf: b}
	var w stableExactAgent
	w.jnt = decJunta(d)
	w.clk = decClock(d)
	w.led = decFastLed(d)
	d.i32(&w.i)
	d.i32(&w.k)
	d.i64(&w.l)
	w.apxDone = d.bool()
	w.refAnchor = d.u8()
	w.refEntered = d.bool()
	w.refInjected = d.bool()
	w.refMultiplied = d.bool()
	w.frozen = d.bool()
	w.errFlag = d.bool()
	w.bk = decBackupExact(d)
	w.bkInstance = d.u8()
	return w, d.done()
}

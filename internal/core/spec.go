// Transition specs for the paper's composed counting protocols.
//
// The four headline protocols — Approximate, CountExact and their
// stable hybrids — are products of sub-protocols: a junta triplet, an
// extended phase-clock value, an election record and the counting
// variables. The spec constructors here derive a sim.Spec from exactly
// the same rule code the agent-array forms run (the *Rule stepPair
// methods), so the spec is not a re-implementation but a re-packaging:
// decode the two state codes, apply stepPair, re-encode.
//
// State codes are interned (sim.Interner) rather than bit-packed: the
// product domain does not fit a fixed-width encoding (classical loads
// and sampled election values are unbounded-width), but the set of
// states a trajectory actually occupies stays small — agents
// synchronize — so first-sight dense codes keep the count engines'
// alphabet compact.
//
// Before interning, each state is canonicalized: fields that can never
// influence any future transition or output are zeroed, which quotients
// away state distinctions the count view would otherwise pay for.
// Every canonicalization below is a bisimulation — the zeroed field is
// provably never read before it is overwritten — and each carries the
// argument in a comment. Two are load-bearing for scale: the absolute
// phase counter (monotone, never read by the composed protocols; kept
// it would make every state unique per phase) and the slow election
// record of leaderDone agents (the outer clock keeps rotating after
// Done; kept it would multiply the occupied alphabet by the outer clock
// face). The fast election record is deliberately NOT canonicalized on
// Done: a frozen (Val, Tag) pair still retires same-tag contenders in
// their final pre-Done interaction, so zeroing it would change which
// duplicate leaders survive.
package core

import (
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// canonClock quotients the clock state: the absolute phase counter is
// instrumentation (the composed protocols read only Val-derived phase
// indices and the per-interaction FirstTick), and FirstTick itself is
// written by the tick at the head of every interaction before any rule
// reads it — frozen agents skip the tick but also every FirstTick
// consumer — so neither survives into the stored state.
func canonClock(c clock.State) clock.State {
	c.Phase = 0
	c.FirstTick = false
	return c
}

// canonSlowLed quotients the slow election record. The outer clock's
// FirstTick and absolute phase are never read (only Phase ≥ 1, which
// immediately and permanently sets Done in the same interaction, so a
// stored not-Done agent always has outer phase 0). Once Done the whole
// record except (IsLeader, Done) is dead: boundary is skipped, SeenMax/
// Bit/Tag are only ever *adopted from* a Done agent by a partner that
// the Done-epidemic makes Done in that same interaction (after which
// its own record is dead too), and the outer value a Done agent
// contributes to a partner's outer tick is likewise only read by
// partners that end the interaction Done.
func canonSlowLed(s leader.State) leader.State {
	s.Outer.FirstTick = false
	s.Outer.Phase = 0
	if s.Done {
		s.Bit, s.SeenMax, s.Tag = 0, 0, 0
		s.Outer = clock.State{}
	}
	return s
}

// canonFastLed quotients the fast election record: only the saturating
// phase counter of Done agents is dead (fastBoundary, its sole reader,
// is skipped once Done). Val and Tag stay — see the package comment.
func canonFastLed(s leader.FastState) leader.FastState {
	if s.Done {
		s.Phases = 0
	}
	return s
}

// canonApprox canonicalizes one Approximate agent state for interning.
func canonApprox(w approxAgent) approxAgent {
	w.clk = canonClock(w.clk)
	w.led = canonSlowLed(w.led)
	return w
}

// ApproximateSpec couples protocol Approximate's transition spec with
// its state codec, so configuration-level consumers (experiments,
// tests) can decode what the engines report.
type ApproximateSpec struct {
	*sim.Spec
	rule *approxRule
	in   *sim.Interner[approxAgent]
}

// NewApproximateSpec returns the canonical transition spec of protocol
// Approximate over cfg. The spec's Delta applies the same stepPair the
// agent-array form runs, so the derived agent adapter is bit-for-bit
// the hand-written protocol (pinned by the conformance suite) and the
// count forms simulate the same chain on the configuration.
func NewApproximateSpec(cfg Config) *ApproximateSpec {
	rule := newApproxRule(cfg)
	p := &ApproximateSpec{rule: &rule, in: sim.NewInterner[approxAgent]()}
	initCode := p.in.Code(canonApprox(rule.initAgent()))
	p.Spec = &sim.Spec{
		Name: "approximate",
		N:    cfg.withDefaults().N,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{initCode: int64(rule.cfg.N)}
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			a, b := p.in.State(qu), p.in.State(qv)
			rule.stepPair(&a, &b, r)
			return p.in.Code(canonApprox(a)), p.in.Code(canonApprox(b))
		},
		ShardDelta: func(k int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
			g := sim.ShardViews(p.in, k)
			ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), k)
			for i := range ds {
				v := g.View(i)
				ds[i] = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
					a, b := v.State(qu), v.State(qv)
					rule.stepPair(&a, &b, r)
					return v.Code(canonApprox(a)), v.Code(canonApprox(b))
				}
			}
			return ds, g.Reconcile
		},
		Randomized: func(qu, qv uint64) bool {
			return rule.pairDrawsCoins(p.in.State(qu), p.in.State(qv))
		},
		Converged: func(v sim.ConfigView) bool {
			return p.converged(v)
		},
		Output: func(q uint64) int64 { return int64(p.in.State(q).k) },
		EncodeState: func(q uint64) []byte {
			return encodeApprox(p.in.State(q))
		},
		DecodeState: func(b []byte) (uint64, error) {
			s, err := decodeApprox(b)
			if err != nil {
				return 0, err
			}
			return p.in.Code(canonApprox(s)), nil
		},
	}
	// Each code pair decodes, steps and re-interns exactly once; repeats
	// are pure code-space lookups. Shard views bypass the memo (their
	// provisional codes carry the tag bit), so the closures above stay
	// the parallel path.
	p.Spec.MemoizeDelta()
	return p
}

// converged mirrors Approximate.Converged on a configuration view:
// every occupied state finished the search and agrees on a k ≥ 0.
func (p *ApproximateSpec) converged(v sim.ConfigView) bool {
	ok, first := true, true
	var k int16
	v.ForEach(func(code uint64, _ int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.searchDone {
			ok = false
			return
		}
		if first {
			k, first = s.k, false
		} else if s.k != k {
			ok = false
		}
	})
	return ok && !first && k >= 0
}

// Metrics reports the observed variable ranges over a configuration
// view (the configuration-level analogue of Approximate.Metrics).
func (p *ApproximateSpec) Metrics(v sim.ConfigView) StateMetrics {
	var m StateMetrics
	v.ForEach(func(code uint64, _ int64) {
		s := p.in.State(code)
		if l := int(s.jnt.Level); l > m.MaxLevel {
			m.MaxLevel = l
		}
		if k := int(s.k); k > m.MaxK {
			m.MaxK = k
		}
	})
	return m
}

// States returns the number of distinct states interned so far — the
// reachable alphabet fragment the engines discovered.
func (p *ApproximateSpec) States() int { return p.in.Len() }

// pairDrawsCoins reports whether an interaction of the pair (a, b)
// consumes synthetic coins: after the deterministic prefix (junta,
// re-initialization, clock tick), a still-contending, not-yet-done
// endpoint crossing a phase boundary draws its per-phase election coin.
// Conservative like the leader spec's predicate: a contender that the
// boundary would retire before drawing is still claimed.
func (p *approxRule) pairDrawsCoins(a, b approxAgent) bool {
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(&a, &b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(&b, &a, preA)
	}
	p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	return (a.clk.FirstTick && !a.led.Done && a.led.IsLeader) ||
		(b.clk.FirstTick && !b.led.Done && b.led.IsLeader)
}

package core

import (
	"testing"

	"popcount/internal/sim"
)

func TestStableApproximateCleanPath(t *testing.T) {
	// Theorem 1.2: w.h.p. the fast path succeeds with no error and the
	// protocol stabilizes on ⌊log n⌋ or ⌈log n⌉.
	for _, n := range []int{512, 1000, 2048} {
		lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
		p := NewStableApproximate(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(7 * n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		for i := 0; i < n; i++ {
			if out := p.Output(i); out != lo && out != hi {
				t.Fatalf("n=%d: agent %d outputs %d, want %d or %d", n, i, out, lo, hi)
			}
		}
	}
}

func TestStableApproximateFaultPath(t *testing.T) {
	// Fault injection corrupts the leader's search result; the
	// ErrorDetection protocol (Algorithm 7) must detect it and the backup
	// must deliver exactly ⌊log n⌋.
	for _, n := range []int{128, 300} {
		want := int64(sim.Log2Floor(n))
		p := NewStableApproximate(Config{N: n})
		p.FaultInjection = true
		res, err := sim.Run(p, sim.Config{
			Seed:            uint64(3 * n),
			MaxInteractions: int64(n) * int64(n) * 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Errored() {
			t.Fatalf("n=%d: fault was not detected", n)
		}
		if !res.Converged {
			t.Fatalf("n=%d: backup did not stabilize", n)
		}
		for i := 0; i < n; i++ {
			if out := p.Output(i); out != want {
				t.Fatalf("n=%d: agent %d outputs %d, want %d", n, i, out, want)
			}
		}
	}
}

func TestStableApproximateErrorDetectionCorrectsSmallDrift(t *testing.T) {
	// Algorithm 7's line 19 recomputes k = ⌊k + 3 − log ℓ⌉ from the
	// balanced load, so the final answer is anchored to the load
	// balancing rather than to the search result alone. This test pins
	// that behavior indirectly: across seeds the clean path never leaves
	// the {⌊log n⌋, ⌈log n⌉} window even when the search concluded at the
	// upper end.
	n := 1500
	lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
	for trial := 0; trial < 3; trial++ {
		p := NewStableApproximate(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(13*n + trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		if out := p.Output(0); out != lo && out != hi {
			t.Fatalf("trial %d: output %d outside {%d, %d}", trial, out, lo, hi)
		}
	}
}

func TestStableCountExactCleanPath(t *testing.T) {
	for _, n := range []int{512, 1000, 2048} {
		p := NewStableCountExact(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(11 * n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		for i := 0; i < n; i++ {
			if out := p.Output(i); out != int64(n) {
				t.Fatalf("n=%d: agent %d outputs %d", n, i, out)
			}
		}
	}
}

func TestStableCountExactFaultPath(t *testing.T) {
	// Fault injection makes the approximation k four doublings too
	// small; the refinement's pre-multiplication load check must fire
	// and the exact backup must deliver n with probability 1.
	for _, n := range []int{128, 300} {
		p := NewStableCountExact(Config{N: n})
		p.FaultInjection = true
		res, err := sim.Run(p, sim.Config{
			Seed:            uint64(5 * n),
			MaxInteractions: int64(n) * int64(n) * 800,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Errored() {
			t.Fatalf("n=%d: fault was not detected", n)
		}
		if !res.Converged {
			t.Fatalf("n=%d: backup did not stabilize", n)
		}
		for i := 0; i < n; i++ {
			if out := p.Output(i); out != int64(n) {
				t.Fatalf("n=%d: agent %d outputs %d, want %d", n, i, out, n)
			}
		}
	}
}

func TestStableVariantsValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewStableApproximate(Config{N: 1}) },
		func() { NewStableCountExact(Config{N: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for n < 2")
				}
			}()
			f()
		}()
	}
}

func TestLog2fAccuracy(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0}, {2, 1}, {4, 2}, {8, 3}, {32, 5}, {3, 1.584962500721156},
	}
	for _, c := range cases {
		if got := log2f(c.x); got < c.want-1e-4 || got > c.want+1e-4 {
			t.Errorf("log2f(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRoundToInt(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{{0.4, 0}, {0.5, 1}, {1.6, 2}, {-0.4, 0}, {-0.6, -1}, {9.5, 10}}
	for _, c := range cases {
		if got := roundToInt(c.x); got != c.want {
			t.Errorf("roundToInt(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

package core

import (
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// canonStableExact canonicalizes one StableCountExact agent state for
// interning (clock quotient plus the fast election's dead Phases
// counter; Val/Tag stay, see the package comment in spec.go).
func canonStableExact(w stableExactAgent) stableExactAgent {
	w.clk = canonClock(w.clk)
	w.led = canonFastLed(w.led)
	return w
}

// stableExactStateOutput is the state form of StableCountExact.Output.
func stableExactStateOutput(w stableExactAgent) int64 {
	if w.errFlag {
		return w.bk.Count
	}
	if !w.refMultiplied || w.l <= 0 {
		return 0
	}
	num := refC << uint(2*w.k)
	return (num + w.l/2) / w.l
}

// StableCountExactSpec couples the stable protocol's transition spec
// with its state codec.
type StableCountExactSpec struct {
	*sim.Spec
	rule *stableExactRule
	in   *sim.Interner[stableExactAgent]
}

// NewStableCountExactSpec returns the canonical transition spec of
// StableCountExact over cfg, derived from the same stepPair the
// agent-array form runs. faultInject corrupts the leader's k when the
// Approximation Stage concludes, forcing the error → backup path.
func NewStableCountExactSpec(cfg Config, faultInject bool) *StableCountExactSpec {
	rule := newStableExactRule(cfg)
	rule.FaultInjection = faultInject
	p := &StableCountExactSpec{rule: &rule, in: sim.NewInterner[stableExactAgent]()}
	initCode := p.in.Code(canonStableExact(rule.initAgent()))
	p.Spec = &sim.Spec{
		Name: "stable-exact",
		N:    rule.cfg.N,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{initCode: int64(rule.cfg.N)}
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			a, b := p.in.State(qu), p.in.State(qv)
			rule.stepPair(&a, &b, r)
			return p.in.Code(canonStableExact(a)), p.in.Code(canonStableExact(b))
		},
		ShardDelta: func(k int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
			g := sim.ShardViews(p.in, k)
			ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), k)
			for i := range ds {
				v := g.View(i)
				ds[i] = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
					a, b := v.State(qu), v.State(qv)
					rule.stepPair(&a, &b, r)
					return v.Code(canonStableExact(a)), v.Code(canonStableExact(b))
				}
			}
			return ds, g.Reconcile
		},
		Randomized: func(qu, qv uint64) bool {
			return rule.pairDrawsCoins(p.in.State(qu), p.in.State(qv))
		},
		Converged: func(v sim.ConfigView) bool {
			return p.converged(v)
		},
		Output: func(q uint64) int64 { return stableExactStateOutput(p.in.State(q)) },
		Errored: func(v sim.ConfigView) bool {
			any := false
			v.ForEach(func(code uint64, _ int64) {
				if p.in.State(code).errFlag {
					any = true
				}
			})
			return any
		},
		EncodeState: func(q uint64) []byte {
			return encodeStableExact(p.in.State(q))
		},
		DecodeState: func(b []byte) (uint64, error) {
			s, err := decodeStableExact(b)
			if err != nil {
				return 0, err
			}
			return p.in.Code(canonStableExact(s)), nil
		},
	}
	// Memoize the deterministic fragment on interned codes (see
	// sim.DeltaMemo); shard views bypass the memo by construction.
	p.Spec.MemoizeDelta()
	return p
}

// converged mirrors StableCountExact.Converged on a configuration view.
func (p *StableCountExactSpec) converged(v sim.ConfigView) bool {
	anyErr := false
	v.ForEach(func(code uint64, _ int64) {
		if p.in.State(code).errFlag {
			anyErr = true
		}
	})
	if anyErr {
		return p.backupConverged(v)
	}
	ok, first := true, true
	var want int64
	v.ForEach(func(code uint64, _ int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.frozen || !s.refMultiplied || s.l <= 0 {
			ok = false
			return
		}
		out := stableExactStateOutput(s)
		if out == 0 {
			ok = false
			return
		}
		if first {
			want, first = out, false
		} else if out != want {
			ok = false
		}
	})
	return ok && !first
}

// backupConverged mirrors Lemma 13's terminal condition over state
// multiplicities: every agent on the fresh backup instance, exactly one
// uncounted agent, and all counts equal to the maximum.
func (p *StableCountExactSpec) backupConverged(v sim.ConfigView) bool {
	ok := true
	var uncounted int64
	var want int64
	v.ForEach(func(code uint64, cnt int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.errFlag || s.bkInstance != 1 {
			ok = false
			return
		}
		if !s.bk.Counted {
			uncounted += cnt
		}
		if s.bk.Count > want {
			want = s.bk.Count
		}
	})
	if !ok || uncounted != 1 {
		return false
	}
	v.ForEach(func(code uint64, _ int64) {
		if p.in.State(code).bk.Count != want {
			ok = false
		}
	})
	return ok
}

// States returns the number of distinct states interned so far.
func (p *StableCountExactSpec) States() int { return p.in.Len() }

// pairDrawsCoins reports whether an interaction of the pair consumes
// synthetic coins: the fast election's even-boundary sampling condition
// after the deterministic prefix, with the stable variant's
// frozen-partner tick cases. Conservative only in ignoring the
// error-flag gate.
func (p *stableExactRule) pairDrawsCoins(a, b stableExactAgent) bool {
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(&a, &b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(&b, &a, preA)
	}
	switch {
	case !a.frozen && !b.frozen:
		p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	case a.frozen && !b.frozen:
		p.clk.TickOne(&b.clk, a.clk.Val, b.jnt.Junta)
	case !a.frozen && b.frozen:
		p.clk.TickOne(&a.clk, b.clk.Val, a.jnt.Junta)
	}
	samples := func(w stableExactAgent) bool {
		return w.clk.FirstTick && !w.led.Done && w.led.IsLeader &&
			p.clk.PhaseIdx(w.clk)%2 == 0
	}
	return samples(a) || samples(b)
}

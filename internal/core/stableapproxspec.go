package core

import (
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// canonStableApprox canonicalizes one StableApproximate agent state for
// interning. The slow-election quotient of canonSlowLed carries over
// unchanged: the stable variant reads the election record in exactly
// the same places (plus the two-leaders check, which uses only the kept
// IsLeader/Done fields), and frozen agents are always Done.
func canonStableApprox(w stableAgent) stableAgent {
	w.clk = canonClock(w.clk)
	w.led = canonSlowLed(w.led)
	return w
}

// StableApproximateSpec couples the stable protocol's transition spec
// with its state codec.
type StableApproximateSpec struct {
	*sim.Spec
	rule *stableApproxRule
	in   *sim.Interner[stableAgent]
}

// NewStableApproximateSpec returns the canonical transition spec of
// StableApproximate over cfg, derived from the same stepPair the
// agent-array form runs. faultInject corrupts the leader's k when the
// search concludes (the rule's FaultInjection knob), forcing the
// error-detection → backup path.
func NewStableApproximateSpec(cfg Config, faultInject bool) *StableApproximateSpec {
	rule := newStableApproxRule(cfg)
	rule.FaultInjection = faultInject
	p := &StableApproximateSpec{rule: &rule, in: sim.NewInterner[stableAgent]()}
	initCode := p.in.Code(canonStableApprox(rule.initAgent()))
	p.Spec = &sim.Spec{
		Name: "stable-approximate",
		N:    rule.cfg.N,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{initCode: int64(rule.cfg.N)}
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			a, b := p.in.State(qu), p.in.State(qv)
			rule.stepPair(&a, &b, r)
			return p.in.Code(canonStableApprox(a)), p.in.Code(canonStableApprox(b))
		},
		ShardDelta: func(k int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
			g := sim.ShardViews(p.in, k)
			ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), k)
			for i := range ds {
				v := g.View(i)
				ds[i] = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
					a, b := v.State(qu), v.State(qv)
					rule.stepPair(&a, &b, r)
					return v.Code(canonStableApprox(a)), v.Code(canonStableApprox(b))
				}
			}
			return ds, g.Reconcile
		},
		Randomized: func(qu, qv uint64) bool {
			return rule.pairDrawsCoins(p.in.State(qu), p.in.State(qv))
		},
		Converged: func(v sim.ConfigView) bool {
			return p.converged(v)
		},
		Output: func(q uint64) int64 {
			s := p.in.State(q)
			if s.errFlag {
				return int64(s.bk.KMax)
			}
			return int64(s.k)
		},
		Errored: func(v sim.ConfigView) bool {
			any := false
			v.ForEach(func(code uint64, _ int64) {
				if p.in.State(code).errFlag {
					any = true
				}
			})
			return any
		},
		EncodeState: func(q uint64) []byte {
			return encodeStableApprox(p.in.State(q))
		},
		DecodeState: func(b []byte) (uint64, error) {
			s, err := decodeStableApprox(b)
			if err != nil {
				return 0, err
			}
			return p.in.Code(canonStableApprox(s)), nil
		},
	}
	// Memoize the deterministic fragment on interned codes (see
	// sim.DeltaMemo); shard views bypass the memo by construction.
	p.Spec.MemoizeDelta()
	return p
}

// converged mirrors StableApproximate.Converged on a configuration
// view: either every occupied state is frozen with one common k ≥ 0 and
// no error, or every state runs the fresh backup instance and the
// backup has reached Lemma 12's terminal configuration.
func (p *StableApproximateSpec) converged(v sim.ConfigView) bool {
	anyErr := false
	v.ForEach(func(code uint64, _ int64) {
		if p.in.State(code).errFlag {
			anyErr = true
		}
	})
	if anyErr {
		return p.backupConverged(v)
	}
	ok, first := true, true
	var k int16
	v.ForEach(func(code uint64, _ int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.frozen || s.k < 0 {
			ok = false
			return
		}
		if first {
			k, first = s.k, false
		} else if s.k != k {
			ok = false
		}
	})
	return ok && !first
}

// backupConverged mirrors Lemma 12's terminal condition on the fresh
// backup instance, over state multiplicities: the pile exponents form
// the binary representation of n and every agent's kmax is ⌊log n⌋.
func (p *StableApproximateSpec) backupConverged(v sim.ConfigView) bool {
	n := p.rule.cfg.N
	var counts [64]int64
	want := int16(sliceLog2Floor(n))
	ok := true
	v.ForEach(func(code uint64, cnt int64) {
		if !ok {
			return
		}
		s := p.in.State(code)
		if !s.errFlag || s.bkInstance != 1 || s.bk.KMax != want {
			ok = false
			return
		}
		if s.bk.K >= 0 {
			counts[s.bk.K] += cnt
		}
	})
	if !ok {
		return false
	}
	for i := 0; i <= int(want); i++ {
		if counts[i] != int64((n>>uint(i))&1) {
			return false
		}
	}
	return true
}

// States returns the number of distinct states interned so far.
func (p *StableApproximateSpec) States() int { return p.in.Len() }

// pairDrawsCoins reports whether an interaction of the pair consumes
// synthetic coins, by dry-running the deterministic prefix (junta,
// re-initialization, clock tick with the frozen-partner cases) and
// checking the slow election's boundary-draw condition. Conservative:
// it ignores the error-flag gate (a both-errored pair skips the
// election entirely) and pre-retirement contenders, claiming both.
func (p *stableApproxRule) pairDrawsCoins(a, b stableAgent) bool {
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(&a, &b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(&b, &a, preA)
	}
	switch {
	case !a.frozen && !b.frozen:
		p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)
	case a.frozen && !b.frozen:
		p.clk.TickOne(&b.clk, a.clk.Val, b.jnt.Junta)
	case !a.frozen && b.frozen:
		p.clk.TickOne(&a.clk, b.clk.Val, a.jnt.Junta)
	}
	return (a.clk.FirstTick && !a.led.Done && a.led.IsLeader) ||
		(b.clk.FirstTick && !b.led.Done && b.led.IsLeader)
}

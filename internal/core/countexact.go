package core

import (
	"fmt"
	"popcount/internal/balance"
	"popcount/internal/clock"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// refC is the constant factor 2^8 with which the Refinement Stage
// over-provisions its load injection (Algorithm 5, line 5).
const refC = int64(1) << 8

// exactAgent is the combined per-agent state of protocol CountExact
// (Figure 3).
type exactAgent struct {
	jnt junta.State
	clk clock.State
	led leader.FastState

	// Approximation Stage (Algorithm 4).
	i       int32 // phase counter iu
	k       int32 // log-estimate ku
	l       int64 // load lu
	apxDone bool

	// Refinement Stage (Algorithm 5) bookkeeping.
	refAnchor     uint8 // synchronized phase index at which the stage began
	refEntered    bool
	refInjected   bool // leader only: 2^8·2^k injected
	refMultiplied bool // this agent multiplied its load by 2^k
	overflow      bool // a load multiplication would have overflowed int64
}

// CountExact is the paper's protocol CountExact (Algorithm 3, Theorem 2):
// a uniform protocol after which every agent outputs the exact population
// size n, stabilizing in O(n log n) interactions with Õ(n) states.
//
// Stage structure: Stage 1 elects a leader with FastLeaderElection
// (Lemma 7); Stage 2 (Approximation Stage, Algorithm 4) computes
// k = log n ± 3 by repeated load explosion and classical load balancing;
// Stage 3 (Refinement Stage, Algorithm 5) injects 2^8·2^k tokens,
// balances them, multiplies all loads by 2^k and balances again, after
// which every agent computes n exactly as ⌊2^8·2^(2k)/ℓ⌉.
type CountExact struct {
	exactRule
	ag []exactAgent
}

// exactRule is the n-independent part of protocol CountExact: the
// configuration and sub-protocol wiring that defines the pairwise
// transition rule, shared by the agent-array form and the transition
// spec (NewCountExactSpec).
type exactRule struct {
	cfg   Config
	clk   clock.Clock
	elect leader.FastElection
}

// newExactRule wires the rule for cfg (with defaults applied).
func newExactRule(cfg Config) exactRule {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		panic("core: population must have at least 2 agents")
	}
	c := clock.New(cfg.ClockM)
	return exactRule{cfg: cfg, clk: c, elect: leader.NewFastElection(c, cfg.FastRounds)}
}

// initAgent returns the initial per-agent state.
func (p *exactRule) initAgent() exactAgent {
	return exactAgent{
		jnt: junta.InitState(),
		clk: p.clk.Init(),
		led: p.elect.Init(),
	}
}

// NewCountExact returns a fresh instance of protocol CountExact.
func NewCountExact(cfg Config) *CountExact {
	p := &CountExact{exactRule: newExactRule(cfg)}
	p.ag = make([]exactAgent, p.cfg.N)
	for i := range p.ag {
		p.ag[i] = p.initAgent()
	}
	return p
}

// N returns the population size.
func (p *CountExact) N() int { return p.cfg.N }

// injectExp returns the per-phase load-explosion exponent e for an agent
// on the given junta level: the phase multiplier is 2^e ≈ n^η. This is
// the paper's 2^(level−8) rescaled by Config.Shift (see DESIGN.md).
func (p *exactRule) injectExp(level uint8) int32 {
	e := int32(1) << level >> uint(p.cfg.Shift)
	if e < 1 {
		e = 1
	}
	if e > 16 {
		e = 16
	}
	return e
}

// InteractBatch implements sim.BatchInteractor: it executes count
// interactions in one tight loop, bit-for-bit equivalent to count scalar
// Interact calls, with pair drawing devirtualized for the uniform
// scheduler.
func (p *CountExact) InteractBatch(count int64, sched sim.Scheduler, r *rng.Rand) {
	n := p.cfg.N
	if _, ok := sched.(sim.UniformScheduler); ok {
		for i := int64(0); i < count; i++ {
			u, v := r.Pair(n)
			p.Interact(u, v, r)
		}
		return
	}
	for i := int64(0); i < count; i++ {
		u, v := sched.Next(n, r)
		p.Interact(u, v, r)
	}
}

// Interact applies one interaction of protocol CountExact (Algorithm 3)
// with initiator u and responder v.
func (p *CountExact) Interact(u, v int, r *rng.Rand) {
	p.stepPair(&p.ag[u], &p.ag[v], r)
}

// stepPair applies one interaction of the rule to the pair (a, b) with
// initiator a.
func (p *exactRule) stepPair(a, b *exactAgent, r *rng.Rand) {
	// Line 3: junta process, with re-initialization (line 1–2) of every
	// agent whose level changed — see the corresponding comment in
	// Approximate.Interact for why climbers reset too.
	preA, preB := a.jnt.Level, b.jnt.Level
	junta.Interact(&a.jnt, &b.jnt)
	if a.jnt.Level != preA {
		p.reinit(a, b, preB)
	}
	if b.jnt.Level != preB {
		p.reinit(b, a, preA)
	}

	// Line 4: phase clocks.
	p.clk.Tick(&a.clk, &b.clk, a.jnt.Junta, b.jnt.Junta)

	// Line 5–6, Stage 1: FastLeaderElection while not leaderDone.
	if !a.led.Done || !b.led.Done {
		p.elect.Interact(&a.led, &b.led, a.clk, b.clk, a.jnt.Level, b.jnt.Level, r)
	}

	// Line 7–8, Stage 2: Approximation Stage.
	p.apxStep(a, b)

	// Line 9–10, Stage 3: Refinement Stage.
	p.refineStep(a, b)
}

func (p *exactRule) reinit(w, q *exactAgent, qPreLevel uint8) {
	if qPreLevel >= w.jnt.Level {
		w.clk = q.clk
		w.clk.FirstTick = false
	} else {
		w.clk = p.clk.Init()
	}
	w.led = p.elect.Init()
	w.i, w.k, w.l = 0, 0, 0
	w.apxDone = false
	w.refAnchor, w.refEntered, w.refInjected, w.refMultiplied = 0, false, false, false
}

// inApx reports whether agent w currently executes the Approximation
// Stage.
func (p *exactRule) inApx(w *exactAgent) bool { return w.led.Done && !w.apxDone }

// apxStep applies one interaction of the Approximation Stage
// (Algorithm 4) to the pair (a, b).
func (p *exactRule) apxStep(a, b *exactAgent) {
	p.apxBoundary(a)
	p.apxBoundary(b)

	// Line 8: classical load balancing, between agents of the stage.
	if p.inApx(a) && p.inApx(b) {
		balance.Classical(&a.l, &b.l)
	}

	// Line 9: ApxDone spreads by one-way epidemics; the synchronized
	// refinement anchor travels with it so that every agent runs the
	// Refinement Stage on the leader's schedule.
	if a.apxDone && p.inApx(b) {
		p.enterRefinement(b, a.refAnchor)
	} else if b.apxDone && p.inApx(a) {
		p.enterRefinement(a, b.refAnchor)
	}
}

// apxBoundary applies the Approximation Stage's first-tick rules
// (Algorithm 4, lines 1–7) to one endpoint.
func (p *exactRule) apxBoundary(w *exactAgent) {
	if !p.inApx(w) || !w.clk.FirstTick {
		return
	}
	e := p.injectExp(w.jnt.Level)
	if w.led.IsLeader && w.i == 0 {
		// Line 2–3: the leader seeds the very first phase with one token.
		w.l = 1
	}
	if w.led.IsLeader && w.l >= 4 && w.i > 0 {
		// Line 4–6: the total load reached ≥ 2n w.h.p.; conclude with
		// k = i·e − ⌊log ℓ⌋ ( = log of total load minus log of the
		// per-agent share, i.e. ≈ log n).
		k := w.i*e - int32(log2Floor64(w.l))
		if k < 0 {
			k = 0
		}
		w.k = k
		p.enterRefinement(w, p.clk.PhaseIdx(w.clk))
		return
	}
	// Line 7: load explosion — every agent multiplies its load by 2^e.
	w.i++
	if w.l > 0 {
		if w.l > int64(1)<<(62-uint(e)) {
			w.overflow = true
		} else {
			w.l <<= uint(e)
		}
	}
}

// enterRefinement moves agent w into the Refinement Stage with the given
// synchronized anchor phase (the phase in which the leader raised
// ApxDone). The load is cleared exactly once, on entry — this realizes
// Algorithm 5's phase-0 initialization without the token-leak hazard of
// re-zeroing during the phase transition window.
func (p *exactRule) enterRefinement(w *exactAgent, anchor uint8) {
	w.apxDone = true
	if w.refEntered {
		return
	}
	w.refEntered = true
	w.refAnchor = anchor
	w.l = 0
	if w.k < 0 {
		w.k = 0
	}
}

// inRef reports whether agent w currently executes the Refinement Stage.
func (p *exactRule) inRef(w *exactAgent) bool { return w.led.Done && w.apxDone }

// refineStep applies one interaction of the Refinement Stage
// (Algorithm 5) to the pair (a, b).
func (p *exactRule) refineStep(a, b *exactAgent) {
	p.refBoundary(a)
	p.refBoundary(b)
	if !p.inRef(a) || !p.inRef(b) {
		return
	}

	// Phase 0 rule (line 1–2): broadcast the leader's k. (Running the
	// maximum broadcast throughout the stage is harmless — k only grows
	// to the leader's value — and tolerant of phase-boundary windows.)
	if a.k < b.k {
		a.k = b.k
	} else if b.k < a.k {
		b.k = a.k
	}

	// Line 8: classical load balancing — only between agents whose loads
	// live in the same unit ("multiplied by 2^k" or not). Mixing across
	// the multiplication boundary would let tokens miss the
	// multiplication and break exactness (Lemma 11 needs the total to be
	// exactly 2^8·2^2k).
	if a.refMultiplied == b.refMultiplied {
		balance.Classical(&a.l, &b.l)
	}
}

// refBoundary applies the Refinement Stage's first-tick rules
// (Algorithm 5, lines 3–7) to one endpoint.
func (p *exactRule) refBoundary(w *exactAgent) {
	if !p.inRef(w) || !w.clk.FirstTick {
		return
	}
	switch p.clk.PhasesSince(w.clk, w.refAnchor) {
	case 1:
		// Line 4–5: the leader injects 2^8 · 2^k tokens.
		if w.led.IsLeader && !w.refInjected {
			w.refInjected = true
			w.l = refC << uint(w.k)
		}
	case 2:
		// Line 6–7: every agent multiplies its load by 2^k.
		if !w.refMultiplied {
			w.refMultiplied = true
			if w.l > 0 && w.k > 0 {
				if w.l > int64(1)<<(62-uint(w.k)) {
					w.overflow = true
				} else {
					w.l <<= uint(w.k)
				}
			}
		}
	}
}

// Output returns agent i's output ω(i) = ⌊2^8·2^(2k)/ℓ⌉, the agent's
// estimate of the exact population size (0 while the agent has no load).
func (p *CountExact) Output(i int) int64 {
	w := &p.ag[i]
	if !w.refMultiplied || w.l <= 0 {
		return 0
	}
	num := refC << uint(2*w.k)
	return (num + w.l/2) / w.l
}

// Converged reports whether every agent has completed the Refinement
// Stage and all outputs agree — the desired configuration of Theorem 2.
func (p *CountExact) Converged() bool {
	if !p.ag[0].refMultiplied || p.ag[0].l <= 0 {
		return false
	}
	want := p.Output(0)
	for i := range p.ag {
		w := &p.ag[i]
		if !w.refMultiplied || w.l <= 0 || p.Output(i) != want {
			return false
		}
	}
	return true
}

// Leaders returns the number of current leader contenders.
func (p *CountExact) Leaders() int {
	c := 0
	for i := range p.ag {
		if p.ag[i].led.IsLeader {
			c++
		}
	}
	return c
}

// Overflowed reports whether any agent hit the int64 load guard (only
// possible beyond n ≈ 7·10⁸, see DESIGN.md).
func (p *CountExact) Overflowed() bool {
	for i := range p.ag {
		if p.ag[i].overflow {
			return true
		}
	}
	return false
}

// Metrics reports the observed variable ranges for state accounting
// (Theorem 2: Õ(n) states — levels O(log log n), i O(1), k ≤ log n + 3,
// loads O(n²·2^O(1)); see Figure 3 and the proof in Appendix F).
func (p *CountExact) Metrics() StateMetrics {
	var m StateMetrics
	for i := range p.ag {
		if l := int(p.ag[i].jnt.Level); l > m.MaxLevel {
			m.MaxLevel = l
		}
		if k := int(p.ag[i].k); k > m.MaxK {
			m.MaxK = k
		}
		if p.ag[i].l > m.MaxLoad {
			m.MaxLoad = p.ag[i].l
		}
	}
	return m
}

// log2Floor64 returns ⌊log₂ x⌋ for x ≥ 1.
func log2Floor64(x int64) int {
	k := -1
	for ; x > 0; x >>= 1 {
		k++
	}
	return k
}

// Debug returns a one-line summary of the population for development.
func (p *CountExact) Debug() string {
	leaders, done, apx, ref, mult := 0, 0, 0, 0, 0
	var maxPhase uint32
	minLevel, maxLevel := 255, 0
	for i := range p.ag {
		w := &p.ag[i]
		if w.led.IsLeader {
			leaders++
		}
		if w.led.Done {
			done++
		}
		if w.apxDone {
			apx++
		}
		if w.refEntered {
			ref++
		}
		if w.refMultiplied {
			mult++
		}
		if w.clk.Phase > maxPhase {
			maxPhase = w.clk.Phase
		}
		if int(w.jnt.Level) < minLevel {
			minLevel = int(w.jnt.Level)
		}
		if int(w.jnt.Level) > maxLevel {
			maxLevel = int(w.jnt.Level)
		}
	}
	return fmt.Sprintf("leaders=%d done=%d apx=%d ref=%d mult=%d phase=%d lvl=[%d,%d]",
		leaders, done, apx, ref, mult, maxPhase, minLevel, maxLevel)
}

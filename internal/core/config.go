// Package core implements the paper's primary contributions: the uniform
// population protocols Approximate (Section 3, Theorem 1) and CountExact
// (Section 4, Theorem 2), their auxiliary Search, ErrorDetection,
// ApproximationStage and RefinementStage sub-protocols, and the stable
// hybrid variants that combine them with the backup protocols of
// Appendix C.
package core

import "popcount/internal/clock"

// Config collects the tunable constants of the combined protocols. The
// paper treats all of these as suitable constants inside asymptotic
// bounds; DESIGN.md documents how the defaults were calibrated.
type Config struct {
	// N is the population size (≥ 2).
	N int
	// ClockM is the number of hours of the inner phase clock
	// (Lemma 5's constant m). Zero selects clock.DefaultM.
	ClockM int
	// OuterM is the number of hours of the outer phase clock used by the
	// slow leader election (Lemma 6). Zero selects ClockM.
	OuterM int
	// FastRounds is the number of sample/broadcast rounds of
	// FastLeaderElection (Lemma 7). Zero selects the package default.
	FastRounds int
	// Shift is the junta-level exponent shift of the Approximation
	// Stage: the per-phase load multiplier is 2^e with
	// e = max(1, 2^level >> Shift), i.e. ≈ n^(1/2^Shift)
	// (the paper's constant −8 in 2^(2^level−8), rescaled so the stage
	// is observable at laptop-scale n; see DESIGN.md). Zero selects 3.
	Shift int
}

// DefaultShift is the default junta-level exponent shift.
const DefaultShift = 3

func (c Config) withDefaults() Config {
	if c.ClockM == 0 {
		c.ClockM = clock.DefaultM
	}
	if c.OuterM == 0 {
		c.OuterM = c.ClockM
	}
	if c.FastRounds == 0 {
		c.FastRounds = 3
	}
	if c.Shift == 0 {
		c.Shift = DefaultShift
	}
	return c
}

// StateMetrics reports the observed ranges of the non-constant-size
// variables, which is how the paper accounts for the protocols' state
// usage (Section 1.1: "we are interested in bounds on the ranges of the
// variables ... that hold w.h.p.").
type StateMetrics struct {
	// MaxLevel is the maximum junta level reached (O(log log n) w.h.p.).
	MaxLevel int
	// MaxK is the maximum value of the search/approximation variable k
	// (O(log n) w.h.p.).
	MaxK int
	// MaxLoad is the maximum load variable value (CountExact only;
	// Õ(n²)·2^O(1) tokens w.h.p., contributing the Õ(n) state factor
	// after the paper's encoding).
	MaxLoad int64
}

package core

import (
	"math"
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestNewApproximateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	NewApproximate(Config{N: 1})
}

func TestApproximateOutputsFloorOrCeilLog(t *testing.T) {
	// Theorem 1.1: w.h.p. every agent outputs ⌊log n⌋ or ⌈log n⌉.
	// Non-powers of two exercise the interesting case ⌊log n⌋ ≠ ⌈log n⌉.
	for _, n := range []int{300, 1000, 1500, 4096} {
		lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
		for trial := 0; trial < 3; trial++ {
			p := NewApproximate(Config{N: n})
			res, err := sim.Run(p, sim.Config{Seed: uint64(1000*n + trial)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("n=%d trial %d: did not converge", n, trial)
			}
			for i := 0; i < n; i++ {
				if out := p.Output(i); out != lo && out != hi {
					t.Fatalf("n=%d: agent %d outputs %d, want %d or %d", n, i, out, lo, hi)
				}
			}
			if p.Leaders() != 1 {
				t.Errorf("n=%d: %d leaders after convergence", n, p.Leaders())
			}
		}
	}
}

func TestApproximateEstimateWithinFactorTwo(t *testing.T) {
	n := 1000
	p := NewApproximate(Config{N: n})
	if _, err := sim.Run(p, sim.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	est := p.Estimate(0)
	if est < int64(n)/2 || est > 2*int64(n) {
		t.Fatalf("estimate %d outside [n/2, 2n]", est)
	}
}

func TestApproximateConvergesInNLog2N(t *testing.T) {
	// Theorem 1.1: O(n log² n) interactions. The band is generous — the
	// point is that the normalized time does not grow with n.
	var norms []float64
	for _, n := range []int{512, 2048, 8192} {
		p := NewApproximate(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: did not converge", n)
		}
		lg := math.Log(float64(n))
		norms = append(norms, float64(res.Interactions)/(float64(n)*lg*lg))
	}
	for i, norm := range norms {
		if norm > 500 {
			t.Errorf("run %d: %.1f × n ln² n is out of band", i, norm)
		}
	}
	// The normalized constant must not blow up across the sweep.
	if norms[2] > 4*norms[0]+100 {
		t.Errorf("normalized time grows with n: %v", norms)
	}
}

func TestApproximateStateBounds(t *testing.T) {
	// Theorem 1.1: states O(log n · log log n) — level stays O(log log n)
	// and k stays ≤ ⌈log n⌉ + O(1).
	n := 4096
	p := NewApproximate(Config{N: n})
	if _, err := sim.Run(p, sim.Config{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	loglogn := math.Log2(math.Log2(float64(n)))
	if float64(m.MaxLevel) > loglogn+8 {
		t.Errorf("max level %d exceeds log log n + 8", m.MaxLevel)
	}
	if m.MaxK > sim.Log2Ceil(n)+2 {
		t.Errorf("max k %d exceeds ⌈log n⌉ + 2", m.MaxK)
	}
}

func TestApproximateDeterministic(t *testing.T) {
	run := func() (sim.Result, int64) {
		p := NewApproximate(Config{N: 300})
		res, err := sim.Run(p, sim.Config{Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		return res, p.Output(0)
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || o1 != o2 {
		t.Fatalf("non-deterministic: %+v/%d vs %+v/%d", r1, o1, r2, o2)
	}
}

func TestApproximateSearchInvariants(t *testing.T) {
	// During the whole run: at least one leader contender exists, and the
	// output variable k never exceeds its cap.
	n := 256
	p := NewApproximate(Config{N: n})
	r := rng.New(17)
	for i := 0; i < 3_000_000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if i%5000 == 0 {
			if p.Leaders() < 1 {
				t.Fatalf("no leader contender at interaction %d", i)
			}
			if m := p.Metrics(); m.MaxK > maxSearchK {
				t.Fatalf("k exceeded cap: %d", m.MaxK)
			}
		}
	}
}

func TestApproximateSmallPopulations(t *testing.T) {
	// The uniform protocol must behave sensibly for tiny n too (the
	// w.h.p. guarantees are vacuous there, so only sanity is checked:
	// convergence to some non-negative k).
	for _, n := range []int{2, 3, 5, 8} {
		p := NewApproximate(Config{N: n})
		res, err := sim.Run(p, sim.Config{Seed: uint64(n), MaxInteractions: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Logf("n=%d: no convergence within cap (acceptable for tiny n)", n)
			continue
		}
		if p.Output(0) < 0 {
			t.Errorf("n=%d: negative output %d", n, p.Output(0))
		}
	}
}

package baseline

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// GeometricCounts is the configuration-level (count-based) form of
// GeometricEstimate for sim.CountEngine. State code 0 is "not yet
// sampled"; code 1+g is "sampled value g". First-interaction sampling
// draws the geometric value from the engine's generator — the same
// synthetic-coin distribution the agent form draws from the scheduler
// stream — and the maximum then spreads by two-way epidemics over the at
// most cap+2 states. Pairs of equal sampled values are certain no-ops
// (sim.SelfLooper), which is the dominant pair class once the maximum
// has spread, so runs at n = 10⁸ collapse to about n productive draws.
type GeometricCounts struct {
	n      int
	maxCap int
}

// NewGeometricCounts returns the count form of the estimator over n
// agents, with samples capped at 62 like the agent form.
func NewGeometricCounts(n int) *GeometricCounts {
	return &GeometricCounts{n: n, maxCap: 62}
}

// N returns the population size.
func (p *GeometricCounts) N() int { return p.n }

// InitCounts returns the initial configuration: everyone unsampled.
func (p *GeometricCounts) InitCounts() map[uint64]int64 {
	return map[uint64]int64{0: int64(p.n)}
}

// Delta samples unsampled endpoints (initiator first, then responder,
// matching the agent form's coin order) and spreads the maximum.
func (p *GeometricCounts) Delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	if qu == 0 {
		qu = 1 + uint64(r.Geometric(p.maxCap))
	}
	if qv == 0 {
		qv = 1 + uint64(r.Geometric(p.maxCap))
	}
	if qu < qv {
		return qv, qv
	}
	if qv < qu {
		return qu, qu
	}
	return qu, qv
}

// DeltaDet exposes the transition matrix for batch stepping
// (sim.DeterministicDelta): pairs of sampled agents spread the maximum
// deterministically; pairs involving an unsampled agent draw their
// geometric sample from the generator and stay on the per-interaction
// path.
func (p *GeometricCounts) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	if qu == 0 || qv == 0 {
		return 0, 0, false
	}
	a, b := p.Delta(qu, qv, nil)
	return a, b, true
}

// SelfLoop reports the certainly inert pairs: both sampled with equal
// values. Pairs involving an unsampled agent always change state (and
// consume coins), so they are never skipped.
func (p *GeometricCounts) SelfLoop(qu, qv uint64) bool {
	return qu != 0 && qu == qv
}

// CountConverged reports whether all agents have sampled and agree on
// the maximum — i.e. the configuration occupies exactly one sampled
// state.
func (p *GeometricCounts) CountConverged(c *sim.CountConfig) bool {
	states := 0
	sampled := true
	c.ForEach(func(code uint64, _ int64) {
		states++
		if code == 0 {
			sampled = false
		}
	})
	return sampled && states == 1
}

// StateOutput returns the log-estimate of a state: value + 1, matching
// GeometricEstimate.Output (which reports val+1 = 1 for agents that have
// not sampled yet, val being zero-initialized).
func (p *GeometricCounts) StateOutput(q uint64) int64 {
	if q == 0 {
		return 1
	}
	return int64(q)
}

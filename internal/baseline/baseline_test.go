package baseline

import (
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestTokenBagOutputsN(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		p := NewTokenBag(n)
		res, err := sim.Run(p, sim.Config{Seed: uint64(n), MaxInteractions: int64(n) * int64(n) * 100})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: token bag did not converge", n)
		}
		for i := 0; i < n; i++ {
			if p.Output(i) != int64(n) {
				t.Fatalf("n=%d: agent %d outputs %d", n, i, p.Output(i))
			}
		}
	}
}

func TestTokenBagConservesTokens(t *testing.T) {
	n := 128
	p := NewTokenBag(n)
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if i%10000 == 0 && p.TotalTokens() != int64(n) {
			t.Fatalf("token total %d after %d interactions", p.TotalTokens(), i)
		}
	}
	if p.TotalTokens() != int64(n) {
		t.Fatalf("final token total %d", p.TotalTokens())
	}
}

func TestTokenBagBestMonotone(t *testing.T) {
	n := 64
	p := NewTokenBag(n)
	r := rng.New(3)
	prev := make([]int64, n)
	for i := 0; i < 200000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		for _, w := range [2]int{u, v} {
			if p.Output(w) < prev[w] {
				t.Fatalf("agent %d best decreased from %d to %d", w, prev[w], p.Output(w))
			}
			prev[w] = p.Output(w)
		}
	}
}

func TestGeometricEstimateApproximatesLogN(t *testing.T) {
	// Max of n Geometric(1/2) samples is log₂ n + Θ(1); allow a wide
	// window of ±6 as the baseline only promises a polynomial-factor
	// approximation.
	for _, n := range []int{1 << 8, 1 << 12, 1 << 15} {
		p := sim.NewSpecAgent(NewGeometricSpec(n))
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: estimator did not converge", n)
		}
		logn := int64(sim.Log2Floor(n))
		out := p.Output(0)
		if out < logn-6 || out > logn+8 {
			t.Errorf("n=%d: estimate %d too far from log n = %d", n, out, logn)
		}
	}
}

func TestGeometricEstimateAgreement(t *testing.T) {
	n := 512
	p := sim.NewSpecAgent(NewGeometricSpec(n))
	if _, err := sim.Run(p, sim.Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	want := p.Output(0)
	for i := 1; i < n; i++ {
		if p.Output(i) != want {
			t.Fatalf("agents disagree: %d vs %d", p.Output(i), want)
		}
	}
}

// TestGeometricInitSamplerDistribution pins the multinomial coin-phase
// sampler against the classical per-agent Geometric(1/2) draw: over one
// large population the pre-sampled value histogram must match the
// geometric pmf (conditional-binomial halving is exactly flipping every
// remaining agent's next coin at once).
func TestGeometricInitSamplerDistribution(t *testing.T) {
	const n = 1 << 20
	spec := NewGeometricSpec(n)
	init := spec.InitSample(n, rng.New(11))
	var sum int64
	for code, cnt := range init {
		if code&1 != 0 {
			t.Fatalf("init sampler produced an activated state %#x", code)
		}
		if cnt <= 0 {
			t.Fatalf("non-positive count %d for state %#x", cnt, code)
		}
		sum += cnt
	}
	if sum != n {
		t.Fatalf("init counts sum to %d, want %d", sum, n)
	}
	// P[value = g] = 2^-(g+1): the first few bins are large enough at
	// n = 2^20 for a tight relative check (binomial std ≈ 0.1–0.2%).
	for g := 0; g < 6; g++ {
		want := float64(n) / float64(int64(1)<<uint(g+1))
		got := float64(init[uint64(g)<<1])
		if d := (got - want) / want; d < -0.02 || d > 0.02 {
			t.Errorf("value %d: sampled %0.f agents, want ≈%.0f (relative gap %.3f)", g, got, want, d)
		}
	}
}

package baseline

import (
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

func TestTokenBagOutputsN(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		p := NewTokenBag(n)
		res, err := sim.Run(p, sim.Config{Seed: uint64(n), MaxInteractions: int64(n) * int64(n) * 100})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: token bag did not converge", n)
		}
		for i := 0; i < n; i++ {
			if p.Output(i) != int64(n) {
				t.Fatalf("n=%d: agent %d outputs %d", n, i, p.Output(i))
			}
		}
	}
}

func TestTokenBagConservesTokens(t *testing.T) {
	n := 128
	p := NewTokenBag(n)
	r := rng.New(2)
	for i := 0; i < 100000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		if i%10000 == 0 && p.TotalTokens() != int64(n) {
			t.Fatalf("token total %d after %d interactions", p.TotalTokens(), i)
		}
	}
	if p.TotalTokens() != int64(n) {
		t.Fatalf("final token total %d", p.TotalTokens())
	}
}

func TestTokenBagBestMonotone(t *testing.T) {
	n := 64
	p := NewTokenBag(n)
	r := rng.New(3)
	prev := make([]int64, n)
	for i := 0; i < 200000; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
		for _, w := range [2]int{u, v} {
			if p.Output(w) < prev[w] {
				t.Fatalf("agent %d best decreased from %d to %d", w, prev[w], p.Output(w))
			}
			prev[w] = p.Output(w)
		}
	}
}

func TestGeometricEstimateApproximatesLogN(t *testing.T) {
	// Max of n Geometric(1/2) samples is log₂ n + Θ(1); allow a wide
	// window of ±6 as the baseline only promises a polynomial-factor
	// approximation.
	for _, n := range []int{1 << 8, 1 << 12, 1 << 15} {
		p := NewGeometricEstimate(n)
		res, err := sim.Run(p, sim.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: estimator did not converge", n)
		}
		logn := int64(sim.Log2Floor(n))
		out := p.Output(0)
		if out < logn-6 || out > logn+8 {
			t.Errorf("n=%d: estimate %d too far from log n = %d", n, out, logn)
		}
	}
}

func TestGeometricEstimateAgreement(t *testing.T) {
	n := 512
	p := NewGeometricEstimate(n)
	if _, err := sim.Run(p, sim.Config{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	want := p.Output(0)
	for i := 1; i < n; i++ {
		if p.Output(i) != want {
			t.Fatalf("agents disagree: %d vs %d", p.Output(i), want)
		}
	}
}

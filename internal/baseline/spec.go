package baseline

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// geoCap caps the geometric samples at 62 to bound the state space,
// like the classical formulation.
const geoCap = 62

// Geometric spec state codes: value g with an "activated" flag in the
// low bit. code = g<<1 is an agent whose pre-drawn sample is g but who
// has not interacted yet ("fresh"); code = g<<1|1 is an activated agent
// spreading its value. The flag ordering makes the max rule a plain
// code comparison among activated states.
func geoFresh(g int) uint64 { return uint64(g) << 1 }

// NewGeometricSpec returns the canonical transition spec of the
// GeometricEstimate baseline over n agents: every agent holds a
// Geometric(1/2) sample (capped at 62) that it reveals at its first
// interaction, and the maximum spreads by two-way epidemics; the
// maximum of n samples is log₂ n + Θ(1) w.h.p.
//
// Classically each agent draws its sample from synthetic coins at its
// first interaction — a Θ(n) randomized phase that defeats batching
// (one Delta call per agent, no transition matrix). The spec instead
// declares a one-shot initialization sampler: the whole population's
// draws are sampled at engine start as one multinomial over the
// geometric pmf, by O(log n) conditional binomials — the conditional
// success probability of each halving round is exactly 1/2, so round g
// splits the not-yet-resolved agents Binomial(·, ½) into "value g" and
// "keep flipping", which is precisely flipping every remaining agent's
// g-th coin at once. By the principle of deferred decisions the
// trajectory distribution is unchanged (a fresh agent's pending value
// is never read before its first interaction), but the per-interaction
// rule becomes deterministic and therefore fully batchable: the batched
// count engine amortizes the whole coin phase, where the classical form
// fell back to per-interaction stepping.
func NewGeometricSpec(n int) *sim.Spec {
	return &sim.Spec{
		Name: "geometric",
		N:    n,
		InitSample: func(pop int64, r *rng.Rand) map[uint64]int64 {
			init := make(map[uint64]int64, 2*sim.Log2Ceil(int(pop)))
			rem := pop
			for g := 0; g < geoCap && rem > 0; g++ {
				c := r.Binomial(rem, 0.5)
				if c > 0 {
					init[geoFresh(g)] = c
				}
				rem -= c
			}
			if rem > 0 {
				init[geoFresh(geoCap)] += rem
			}
			return init
		},
		Delta: func(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
			// Activate both endpoints, then spread the maximum two-way.
			au, av := qu|1, qv|1
			if au < av {
				return av, av
			}
			if av < au {
				return au, au
			}
			return au, av
		},
		SelfLoop: func(qu, qv uint64) bool {
			// Certainly inert: both activated with equal values. Pairs
			// involving a fresh agent always change state (activation).
			return qu == qv && qu&1 == 1
		},
		Skip:        true,
		PureDelta:   true,
		PreferCount: true,
		Converged: func(v sim.ConfigView) bool {
			// All agents activated and agreeing on the maximum: exactly
			// one occupied state, and it is an activated one.
			states, activated := 0, true
			v.ForEach(func(code uint64, _ int64) {
				states++
				if code&1 == 0 {
					activated = false
				}
			})
			return activated && states == 1
		},
		Output: func(q uint64) int64 {
			// The log-estimate: sample + 1 once activated; 1 before (the
			// classical form zero-initializes unrevealed values).
			if q&1 == 0 {
				return 1
			}
			return int64(q>>1) + 1
		},
	}
}

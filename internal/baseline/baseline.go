// Package baseline implements the comparison protocols referenced in the
// paper's introduction and related work, used by experiment E15.
//
// TokenBag is the "simple and uniform protocol for exact population
// counting" from Section 1: every agent starts with one token, agents
// keep combining the tokens into bags, propagating at the same time the
// maximum size of a bag and using that maximum as their current output.
// It completes in expected Θ(n²) interactions and uses Θ(n²) states
// (bag × maximum), the baseline CountExact improves on by a factor of
// ≈ n / log n.
//
// GeometricEstimate (NewGeometricSpec) is a uniform O(log n)-state
// estimator in the spirit of Alistarh et al. [1] (see Section 1.2):
// every agent samples a geometric random value on its first interaction
// (via synthetic coins) and the maximum spreads by epidemics. The
// maximum of n Geometric(1/2) samples is log₂ n + Θ(1) w.h.p., giving
// an estimate of the population size within a polynomial factor in
// O(n log n) interactions — much weaker than protocol Approximate's
// ⌊log n⌋/⌈log n⌉ guarantee, which experiment E15 quantifies. It is
// defined as a transition spec (spec.go), so all three engine forms
// derive from one rule; TokenBag has no spec — its per-agent state
// space is Θ(n²), which is exactly what rules a configuration-level
// form out.
package baseline

import (
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// TokenBag is the Θ(n²)-interaction exact counting baseline.
type TokenBag struct {
	bags []int64
	best []int64
}

// NewTokenBag returns the baseline over n agents, one token each.
func NewTokenBag(n int) *TokenBag {
	b := &TokenBag{bags: make([]int64, n), best: make([]int64, n)}
	for i := range b.bags {
		b.bags[i] = 1
		b.best[i] = 1
	}
	return b
}

// N returns the population size.
func (p *TokenBag) N() int { return len(p.bags) }

// Interact merges the responder's bag into the initiator's and spreads
// the maximum bag size.
func (p *TokenBag) Interact(u, v int, _ *rng.Rand) {
	p.interactOne(u, v)
}

// interactOne is the transition body shared by the scalar and batched
// interaction paths.
func (p *TokenBag) interactOne(u, v int) {
	bu, bv := p.bags[u], p.bags[v]
	if bu > 0 && bv > 0 {
		bu += bv
		p.bags[u], p.bags[v] = bu, 0
		bv = 0
	}
	m := p.best[u]
	if x := p.best[v]; x > m {
		m = x
	}
	if bu > m {
		m = bu
	}
	if bv > m {
		m = bv
	}
	p.best[u], p.best[v] = m, m
}

// InteractBatch implements sim.BatchInteractor: it executes count
// interactions in one tight loop, bit-for-bit equivalent to count scalar
// Interact calls, with pair drawing devirtualized for the uniform
// scheduler.
func (p *TokenBag) InteractBatch(count int64, sched sim.Scheduler, r *rng.Rand) {
	n := len(p.bags)
	if _, ok := sched.(sim.UniformScheduler); ok {
		for i := int64(0); i < count; i++ {
			u, v := r.Pair(n)
			p.interactOne(u, v)
		}
		return
	}
	for i := int64(0); i < count; i++ {
		u, v := sched.Next(n, r)
		p.interactOne(u, v)
	}
}

// Converged reports whether every agent outputs n.
func (p *TokenBag) Converged() bool {
	n := int64(len(p.bags))
	for _, b := range p.best {
		if b != n {
			return false
		}
	}
	return true
}

// Output returns agent i's current output (the largest bag it knows of).
func (p *TokenBag) Output(i int) int64 { return p.best[i] }

// TotalTokens returns the conserved token total (always n).
func (p *TokenBag) TotalTokens() int64 {
	var s int64
	for _, b := range p.bags {
		s += b
	}
	return s
}

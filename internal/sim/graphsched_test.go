package sim_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"popcount/internal/epidemic"
	"popcount/internal/rng"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// TestGraphSchedulerPairs pins the structural invariants of every graph
// family: pairs are distinct graph neighbours, deterministic under
// equal seeds, and the adjacency itself is reproducible.
func TestGraphSchedulerPairs(t *testing.T) {
	const n = 36
	cases := map[string]func() *sim.GraphScheduler{
		"ring":  func() *sim.GraphScheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} },
		"torus": func() *sim.GraphScheduler { return &sim.GraphScheduler{Kind: sim.GraphKindTorus} },
		"kron":  func() *sim.GraphScheduler { return &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 6} },
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			s1, s2 := mk(), mk()
			r1, r2 := rng.New(3), rng.New(3)
			for i := 0; i < 20_000; i++ {
				u, v := s1.Next(n, r1)
				if u < 0 || u >= n || v < 0 || v >= n || u == v {
					t.Fatalf("draw %d: bad pair (%d, %d)", i, u, v)
				}
				if u2, v2 := s2.Next(n, r2); u != u2 || v != v2 {
					t.Fatalf("draw %d: diverged under equal seeds", i)
				}
				switch name {
				case "ring":
					if d := (v - u + n) % n; d != 1 && d != n-1 {
						t.Fatalf("ring pair (%d, %d) not adjacent", u, v)
					}
				case "torus":
					// 6×6 grid: neighbours differ by one step in exactly
					// one coordinate, modulo wraparound.
					ur, uc, vr, vc := u/6, u%6, v/6, v%6
					dr := (vr - ur + 6) % 6
					dc := (vc - uc + 6) % 6
					rowStep := (dr == 1 || dr == 5) && dc == 0
					colStep := (dc == 1 || dc == 5) && dr == 0
					if !rowStep && !colStep {
						t.Fatalf("torus pair (%d, %d) not grid-adjacent", u, v)
					}
				}
			}
		})
	}
}

// TestGraphSchedulerValidate exercises the typed validation errors the
// engines surface at construction.
func TestGraphSchedulerValidate(t *testing.T) {
	bad := map[string]*sim.GraphScheduler{
		"torus-prime":  {Kind: sim.GraphKindTorus},
		"torus-small":  {Kind: sim.GraphKindTorus},
		"kron-k0":      {Kind: sim.GraphKindKron},
		"kron-k-small": {Kind: sim.GraphKindKron, K: 4},
		"kron-neg-p":   {Kind: sim.GraphKindKron, K: 8, Initiator: [4]float64{-1, 1, 1, 1}},
		"kron-no-off":  {Kind: sim.GraphKindKron, K: 8, Initiator: [4]float64{0.5, 0, 0, 0.5}},
	}
	ns := map[string]int{
		"torus-prime": 31, "torus-small": 3,
		"kron-k0": 32, "kron-k-small": 32, "kron-neg-p": 32, "kron-no-off": 32,
	}
	for name, g := range bad {
		if err := g.Validate(ns[name]); !errors.Is(err, sim.ErrScheduler) {
			t.Errorf("%s: Validate(%d) = %v, want ErrScheduler", name, ns[name], err)
		}
		if _, err := sim.NewEngine(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(ns[name], true)),
			sim.Config{Seed: 1, Scheduler: g}); !errors.Is(err, sim.ErrScheduler) {
			t.Errorf("%s: NewEngine accepted the scheduler: %v", name, err)
		}
	}
	// The ring accepts every population an engine accepts, so its only
	// invalid input sits below the engine's own floor.
	if err := (&sim.GraphScheduler{Kind: sim.GraphKindRing}).Validate(1); !errors.Is(err, sim.ErrScheduler) {
		t.Errorf("ring Validate(1) = %v, want ErrScheduler", err)
	}
	good := map[int]*sim.GraphScheduler{
		2:  {Kind: sim.GraphKindRing},
		4:  {Kind: sim.GraphKindTorus},
		33: {Kind: sim.GraphKindTorus},
		64: {Kind: sim.GraphKindKron, K: 6},
	}
	for n, g := range good {
		if err := g.Validate(n); err != nil {
			t.Errorf("Validate(%d) on %v: %v", n, g.Kind, err)
		}
	}
}

// TestBiasedSchedulerValidate pins the engine-level biased validation:
// a hot index outside [0, n) fails NewEngine with ErrScheduler.
func TestBiasedSchedulerValidate(t *testing.T) {
	for _, c := range []sim.BiasedScheduler{{Hot: 16, Bias: 0.2}, {Hot: -1, Bias: 0.2}} {
		_, err := sim.NewEngine(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(16, true)),
			sim.Config{Seed: 1, Scheduler: c})
		if !errors.Is(err, sim.ErrScheduler) {
			t.Errorf("hot=%d: NewEngine err = %v, want ErrScheduler", c.Hot, err)
		}
	}
	if err := (sim.BiasedScheduler{Hot: 15, Bias: 0.2}).Validate(16); err != nil {
		t.Errorf("in-range hot rejected: %v", err)
	}
}

// TestGraphCountRingConformance runs the one-way single-source epidemic
// on a ring under the agent engine and under the count engine's exact
// boundary dynamics, and compares the distributions of the completion
// time. The count form replaces per-agent simulation with a two-point
// boundary process — a mismatch in the productive-draw weights or the
// orientation coin shows up as a shifted mean.
func TestGraphCountRingConformance(t *testing.T) {
	const n, trials = 256, 40
	mean := func(run func(seed uint64) int64) float64 {
		var xs []float64
		for i := 0; i < trials; i++ {
			xs = append(xs, float64(run(sim.TrialSeed(99, i))))
		}
		return stats.Mean(xs)
	}
	agent := mean(func(seed uint64) int64 {
		res, err := sim.Run(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true)),
			sim.Config{Seed: seed, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindRing}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("agent ring epidemic did not converge")
		}
		return res.Interactions
	})
	count := mean(func(seed uint64) int64 {
		res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)),
			sim.Config{Seed: seed, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindRing}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("count ring epidemic did not converge")
		}
		return res.Interactions
	})
	// Each mean is an average of ~n²-spread variates; 15% brackets the
	// sampling noise at these trial counts with a wide margin while
	// still catching any systematic weight error (the smallest possible
	// mistake — a factor 2 in the productive weight — shifts the mean
	// 100%).
	if ratio := count / agent; math.Abs(ratio-1) > 0.15 {
		t.Fatalf("count/agent mean completion ratio %.3f (agent %.0f, count %.0f)", ratio, agent, count)
	}

	// Two-way dynamics double the boundary weight; the same bound.
	agent2 := mean(func(seed uint64) int64 {
		res, err := sim.Run(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, false)),
			sim.Config{Seed: seed, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindRing}})
		if err != nil || !res.Converged {
			t.Fatalf("two-way agent run: %v converged=%v", err, res.Converged)
		}
		return res.Interactions
	})
	count2 := mean(func(seed uint64) int64 {
		res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, false)),
			sim.Config{Seed: seed, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindRing}})
		if err != nil || !res.Converged {
			t.Fatalf("two-way count run: %v converged=%v", err, res.Converged)
		}
		return res.Interactions
	})
	if ratio := count2 / agent2; math.Abs(ratio-1) > 0.15 {
		t.Fatalf("two-way count/agent mean completion ratio %.3f (agent %.0f, count %.0f)", ratio, agent2, count2)
	}
	// One-way spread pays roughly twice the interactions of two-way
	// (half the productive boundary draws) — sanity-check the ordering.
	if agent <= agent2 {
		t.Errorf("one-way mean %.0f not slower than two-way mean %.0f", agent, agent2)
	}
}

// TestGraphCountRingRejections pins the count engine's refusals: only
// ring graphs, only RingExchangeable specs, no batching, no sharding,
// no fault plans.
func TestGraphCountRingRejections(t *testing.T) {
	ringSched := func() *sim.GraphScheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} }
	spec := func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(64, true)) }
	cases := map[string]sim.Config{
		"torus": {Seed: 1, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindTorus}},
		"kron":  {Seed: 1, Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 6}},
		"batch": {Seed: 1, Scheduler: ringSched(), BatchSteps: true},
		"shard": {Seed: 1, Scheduler: ringSched(), Shards: 2, BatchSteps: true},
		"fault": {Seed: 1, Scheduler: ringSched(),
			Faults: &sim.FaultPlan{Seed: 1, Bursts: []sim.FaultBurst{{At: 10, Agents: 2}}}},
	}
	for name, cfg := range cases {
		if _, err := sim.NewCountEngine(spec(), cfg); !errors.Is(err, sim.ErrCountScheduler) {
			t.Errorf("%s: err = %v, want ErrCountScheduler", name, err)
		}
	}
	// A multi-seed epidemic spec is not RingExchangeable: the informed
	// set fragments into several arcs.
	multi := sim.NewSpecCount(epidemic.NewSpec([]int64{1, 0, 0, 1, 0, 0, 0, 0}, true))
	if _, err := sim.NewCountEngine(multi, sim.Config{Seed: 1, Scheduler: ringSched()}); !errors.Is(err, sim.ErrCountScheduler) {
		t.Errorf("non-exchangeable spec: err = %v, want ErrCountScheduler", err)
	}
	// And the qualified combination works.
	if _, err := sim.NewCountEngine(spec(), sim.Config{Seed: 1, Scheduler: ringSched()}); err != nil {
		t.Errorf("qualified ring count engine rejected: %v", err)
	}
}

// TestGraphSchedulerSnapshot round-trips the agent engine's scheduler
// state section: a mid-run checkpoint under each graph family resumes
// bit-for-bit, including the Kronecker drawn-seed state.
func TestGraphSchedulerSnapshot(t *testing.T) {
	mks := map[string]func() sim.Scheduler{
		"ring":      func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} },
		"torus":     func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindTorus} },
		"kron":      func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 6} },
		"kron-seed": func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 6, Seed: 42} },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			const n = 64
			ref, err := sim.NewEngine(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true)),
				sim.Config{Seed: 17, Scheduler: mk()})
			if err != nil {
				t.Fatal(err)
			}
			ref.Step(100)
			snap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := sim.NewEngine(sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true)),
				sim.Config{Seed: 0xdead, Scheduler: mk()})
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(snap); err != nil {
				t.Fatal(err)
			}
			ref.Step(200)
			resumed.Step(200)
			a, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := resumed.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatal("resumed graph run diverged from the uninterrupted one")
			}
		})
	}
}

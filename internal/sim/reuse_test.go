package sim_test

import (
	"math"
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// burstProto is a violation-forcing count protocol: every interaction
// between two bulk agents (state 0) moves both onto one of targets
// randomly chosen fresh target states, so early batch epochs concentrate
// far more arrivals on near-empty states than the pre-leap rate estimate
// (which only sees the randomized pair's two source states) predicts —
// exactly the regime the batch planner's post-leap safety net exists
// for. All other pairs are identities.
type burstProto struct {
	n       int
	targets int
}

func (p *burstProto) N() int { return p.n }

func (p *burstProto) InitCounts() map[uint64]int64 {
	return map[uint64]int64{0: int64(p.n)}
}

func (p *burstProto) Delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	if qu == 0 && qv == 0 {
		t := uint64(1 + r.Intn(p.targets))
		return t, t
	}
	return qu, qv
}

// runBurst steps a burst protocol for a fixed horizon and returns the
// engine.
func runBurst(t *testing.T, batch bool, seed uint64, n, steps int) *sim.CountEngine {
	t.Helper()
	cfg := sim.Config{Seed: seed, BatchSteps: batch}
	e, err := sim.NewCountEngine(&burstProto{n: n, targets: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Step(int64(steps))
	return e
}

// TestCountBatchViolationReuse forces the batch planner's safety net to
// trip and checks the Anderson-style retry path: violations must occur,
// sampled second half-epochs must be conditionally reused (not always
// discarded), the conservation invariants must hold throughout, and the
// retry path's statistics must agree with the exact sequential engine —
// the per-target conversion fractions of the batched runs match the
// sequential ones within a few percent, i.e. the safety path does not
// drag the dynamics.
func TestCountBatchViolationReuse(t *testing.T) {
	const (
		n      = 1 << 13
		steps  = 50 * n
		trials = 8
	)

	fractions := func(batch bool) ([]float64, sim.EngineStats) {
		sums := make([]float64, 5)
		var stats sim.EngineStats
		var converted float64
		for tr := 0; tr < trials; tr++ {
			e := runBurst(t, batch, sim.TrialSeed(31, tr), n, steps)
			if got := e.Counts().Sum(); got != n {
				t.Fatalf("Σ counts = %d, want %d", got, n)
			}
			if e.Interactions() != steps {
				t.Fatalf("Interactions = %d, want %d", e.Interactions(), steps)
			}
			e.Counts().ForEach(func(code uint64, cnt int64) {
				if cnt < 0 {
					t.Fatalf("negative count %d for state %#x", cnt, code)
				}
				sums[code] += float64(cnt)
				if code != 0 {
					converted += float64(cnt)
				}
			})
			s := e.Stats()
			stats.Epochs += s.Epochs
			stats.Violations += s.Violations
			stats.HalfReuses += s.HalfReuses
			stats.HalfDiscards += s.HalfDiscards
		}
		for i := range sums {
			sums[i] /= converted
		}
		return sums, stats
	}

	batched, stats := fractions(true)
	sequential, _ := fractions(false)

	t.Logf("batched stats over %d trials: %+v", trials, stats)
	if stats.Violations == 0 {
		t.Fatal("safety net never tripped — the test no longer forces violations")
	}
	if stats.HalfReuses == 0 {
		t.Fatal("no second half-epoch was reused — the conditional-reuse path is dead")
	}
	if stats.Epochs == 0 {
		t.Fatal("no epoch applied — batching never engaged")
	}

	// Retry-path statistics: the conversion mass must split uniformly
	// over the targets on both engines. 8 trials × ~n conversions put
	// the per-target standard error well under 1%.
	for code := 1; code <= 4; code++ {
		b, s := batched[code], sequential[code]
		if math.Abs(b-0.25) > 0.02 {
			t.Errorf("batched target %d fraction %.4f strays from uniform 0.25", code, b)
		}
		if math.Abs(b-s) > 0.02 {
			t.Errorf("target %d: batched fraction %.4f vs sequential %.4f", code, b, s)
		}
	}
}

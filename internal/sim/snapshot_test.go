package sim

import (
	"errors"
	"testing"

	"popcount/internal/rng"
)

// snapFixtureSpec is a small protocol exercising every pair class the
// engines distinguish: deterministic adoptions (initiator above the
// responder), certain no-ops (initiator below), and randomized
// same-level coin flips. Levels rise to 7, where the chain absorbs.
func snapFixtureSpec(n int, skip bool) *Spec {
	return &Spec{
		Name: "snapfix",
		N:    n,
		Init: func() map[uint64]int64 {
			return map[uint64]int64{0: int64(n) - 1, 1: 1}
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			switch {
			case qu > qv:
				return qu, qu
			case qu < qv:
				return qu, qv
			case qu < 7:
				if r.Bool() {
					return qu + 1, qv
				}
				return qu, qv
			default:
				return qu, qv
			}
		},
		Randomized: func(qu, qv uint64) bool { return qu == qv && qu < 7 },
		SelfLoop:   func(qu, qv uint64) bool { return qu < qv || (qu == qv && qu == 7) },
		Skip:       skip,
		Converged: func(v ConfigView) bool {
			return v.Count(7) == v.N()
		},
		Output: func(q uint64) int64 { return int64(q) },
	}
}

// stepChunks drives an engine through a fixed chunk sequence, so both
// sides of a comparison execute identical Step call patterns (the batch
// planner's epoch boundaries depend on them).
func stepChunks(ops engineOps, chunks []int64) {
	for _, c := range chunks {
		ops.Step(c)
	}
}

func countStateOf(t *testing.T, e *CountEngine) map[uint64]int64 {
	t.Helper()
	m := make(map[uint64]int64)
	e.Counts().ForEach(func(code uint64, cnt int64) { m[code] = cnt })
	return m
}

func compareCountEngines(t *testing.T, want, got *CountEngine) {
	t.Helper()
	if want.Interactions() != got.Interactions() {
		t.Fatalf("interactions: want %d, got %d", want.Interactions(), got.Interactions())
	}
	if want.Stats() != got.Stats() {
		t.Fatalf("stats: want %+v, got %+v", want.Stats(), got.Stats())
	}
	wm, gm := countStateOf(t, want), countStateOf(t, got)
	if len(wm) != len(gm) {
		t.Fatalf("occupied states: want %d, got %d", len(wm), len(gm))
	}
	for code, cnt := range wm {
		if gm[code] != cnt {
			t.Fatalf("state %#x: want count %d, got %d", code, cnt, gm[code])
		}
	}
	if want.Converged() != got.Converged() {
		t.Fatalf("converged: want %v, got %v", want.Converged(), got.Converged())
	}
}

// TestCountEngineSnapshotRoundTrip pins the tentpole property on the
// count engine in all three modes: a run snapshotted mid-flight and
// restored into a fresh engine finishes bit-for-bit identical to the
// uninterrupted run — same counts, same interaction clock, same
// deterministic stats, same RNG stream.
func TestCountEngineSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		skip  bool
		batch bool
	}{
		{"plain", false, false},
		{"skip", true, false},
		{"batched", true, true},
	}
	pre := []int64{300, 500, 217}
	post := []int64{411, 1000, 93, 2048}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Seed: 42, BatchSteps: tc.batch}
			mk := func() (*CountEngine, error) {
				return NewCountEngine(NewSpecCount(snapFixtureSpec(512, tc.skip)), cfg)
			}
			ref, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			stepChunks(ref, pre)
			snap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stepChunks(ref, post)

			res, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Restore(snap); err != nil {
				t.Fatal(err)
			}
			stepChunks(res, post)
			compareCountEngines(t, ref, res)
		})
	}
}

// TestEngineSnapshotRoundTrip pins the same property on the agent
// engine: agent codes, interaction clock and RNG stream all resume
// exactly.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Seed: 7}
	mk := func() (*Engine, *SpecAgent, error) {
		p := NewSpecAgent(snapFixtureSpec(256, false))
		e, err := NewEngine(p, cfg)
		return e, p, err
	}
	ref, refP, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	ref.Step(900)
	snap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ref.Step(1500)

	res, resP, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Restore(snap); err != nil {
		t.Fatal(err)
	}
	res.Step(1500)
	if ref.Interactions() != res.Interactions() {
		t.Fatalf("interactions: want %d, got %d", ref.Interactions(), res.Interactions())
	}
	for i := 0; i < 256; i++ {
		if refP.Code(i) != resP.Code(i) {
			t.Fatalf("agent %d: want code %#x, got %#x", i, refP.Code(i), resP.Code(i))
		}
	}
	if ref.Converged() != res.Converged() {
		t.Fatalf("converged: want %v, got %v", ref.Converged(), res.Converged())
	}
}

// TestSnapshotAtConvergencePreservesConvAt checks that the
// first-convergence record survives a round trip: a restored engine
// must report the original convergence time, not its restore position.
func TestSnapshotAtConvergencePreservesConvAt(t *testing.T) {
	cfg := Config{Seed: 3}
	ref, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, true)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Converged {
		t.Fatal("fixture did not converge")
	}
	snap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, true)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Restore(snap); err != nil {
		t.Fatal(err)
	}
	resRes, err := res.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if resRes.Interactions != refRes.Interactions {
		t.Fatalf("restored convergence time %d, want %d", resRes.Interactions, refRes.Interactions)
	}
}

type noSnapProtocol struct{ n int }

func (p *noSnapProtocol) N() int                         { return p.n }
func (p *noSnapProtocol) Interact(u, v int, r *rng.Rand) {}

// TestSnapshotErrors pins the failure modes: protocols without a
// snapshot hook, cross-engine blobs, and corrupted blobs all fail
// loudly with the typed sentinels.
func TestSnapshotErrors(t *testing.T) {
	e, err := NewEngine(&noSnapProtocol{n: 4}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("no-hook protocol: err = %v, want ErrNotSnapshottable", err)
	}

	ce, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, false)), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ce.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	ae, err := NewEngine(NewSpecAgent(snapFixtureSpec(64, false)), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ae.Restore(snap); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("cross-engine restore: err = %v, want ErrSnapshotFormat", err)
	}

	for cut := 0; cut < len(snap); cut += 7 {
		ce2, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, false)), Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := ce2.Restore(snap[:cut]); !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("truncation at %d: err = %v, want ErrSnapshotFormat", cut, err)
		}
	}

	// A batched snapshot must not restore into a non-batched engine.
	be, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, false)), Config{Seed: 1, BatchSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	bsnap, err := be.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ce3, err := NewCountEngine(NewSpecCount(snapFixtureSpec(64, false)), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ce3.Restore(bsnap); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("config-mismatch restore: err = %v, want ErrSnapshotFormat", err)
	}
}

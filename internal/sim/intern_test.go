package sim_test

import (
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// benchProduct approximates a core-spec product state: several machine
// words, so the map-hash cost the interner pays per lookup is realistic.
type benchProduct struct {
	a, b, c, d uint64
}

func benchStates(n int) []benchProduct {
	out := make([]benchProduct, n)
	for i := range out {
		x := uint64(i) * scatterMul
		out[i] = benchProduct{a: x, b: x >> 7, c: x ^ 0xfeed, d: uint64(i)}
	}
	return out
}

// BenchmarkInternerCodeHit measures the repeat-lookup path — the one
// every interned Delta call used to pay twice per interaction before
// the successor memo.
func BenchmarkInternerCodeHit(b *testing.B) {
	in := sim.NewInterner[benchProduct]()
	states := benchStates(1024)
	for _, s := range states {
		in.Code(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Code(states[i&1023])
	}
}

// BenchmarkInternerCodeMiss measures the first-sight insert path (one
// hash + one insert since the single-lookup rewrite, not two hashes).
func BenchmarkInternerCodeMiss(b *testing.B) {
	states := benchStates(b.N)
	in := sim.NewInterner[benchProduct]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Code(states[i])
	}
}

// BenchmarkInternViewCodeHit measures a shard view resolving a state
// the frozen base already interned — the dominant read of a sharded
// epoch's parallel round.
func BenchmarkInternViewCodeHit(b *testing.B) {
	in := sim.NewInterner[benchProduct]()
	states := benchStates(1024)
	for _, s := range states {
		in.Code(s)
	}
	g := sim.ShardViews(in, 1)
	v := g.View(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Code(states[i&1023])
	}
}

// BenchmarkInternGroupReconcile measures a round's provisional fold:
// two views each discover two fresh states, then Reconcile folds them.
// The remap is group-owned and reused, so steady-state allocs/op stay
// at the base interner's own inserts.
func BenchmarkInternGroupReconcile(b *testing.B) {
	in := sim.NewInterner[benchProduct]()
	g := sim.ShardViews(in, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := uint64(i) * scatterMul
		g.View(0).Code(benchProduct{a: x, d: 1})
		g.View(0).Code(benchProduct{a: x, d: 2})
		g.View(1).Code(benchProduct{a: x, d: 3})
		g.View(1).Code(benchProduct{a: x, d: 4})
		if remap := g.Reconcile(); len(remap) != 4 {
			b.Fatalf("remap has %d entries, want 4", len(remap))
		}
	}
}

// BenchmarkDeltaMemoHit measures the memo's repeat-resolution path over
// a small stable fragment — first on the probe table, then (after the
// promotion stride) on the flat dense fragment.
func BenchmarkDeltaMemoHit(b *testing.B) {
	in := sim.NewInterner[benchProduct]()
	states := benchStates(16)
	codes := make([]uint64, len(states))
	for i, s := range states {
		codes[i] = in.Code(s)
	}
	m := sim.NewDeltaMemo(func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		// The underlying closure pays the interned round trip the memo
		// is there to skip.
		a := in.State(qu)
		bb := in.State(qv)
		a.d, bb.d = bb.d, a.d
		return in.Code(a), in.Code(bb)
	}, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Delta(codes[i&15], codes[(i>>4)&15], nil)
	}
}

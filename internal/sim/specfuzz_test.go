package sim_test

import (
	"sort"
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// fuzzSpec builds a random transition spec over a tiny alphabet from
// fuzz input: a deterministic successor table, an optional randomized
// fragment (claimed pairs pick between two successor entries by one
// coin), and an optional opt-in to the self-loop skip path. It
// exercises the spec layer's derivations — agent adapter, count
// adapter, transition matrix, no-op predicate — on rule structures no
// hand-written protocol has.
func fuzzSpec(n int, k uint64, raw []byte, flags uint8) *sim.Spec {
	at := func(i int) uint8 {
		if len(raw) == 0 {
			return 0
		}
		return raw[i%len(raw)]
	}
	size := int(k * k)
	table := make([]uint8, size)
	alt := make([]uint8, size)
	randMask := make([]bool, size)
	withRand := flags&1 != 0
	for i := 0; i < size; i++ {
		table[i] = uint8(uint64(at(i)) % (k * k))
		alt[i] = uint8(uint64(at(i+size)) % (k * k))
		// Sparse randomized fragment: roughly a quarter of the pairs.
		randMask[i] = withRand && at(2*size+i)%4 == 0
	}
	var randomized func(qu, qv uint64) bool
	if withRand {
		randomized = func(qu, qv uint64) bool { return randMask[qu*k+qv] }
	}
	var domain uint64
	if flags&4 != 0 {
		// Declare the dense domain: NewSpecAgent precompiles the flat
		// successor table, and the naive reference (which always runs
		// the closure) pins table == closure bit for bit.
		domain = k
	}
	initCounts := func() map[uint64]int64 {
		init := make(map[uint64]int64, k)
		per := int64(n) / int64(k)
		rem := int64(n) - per*int64(k)
		for q := uint64(0); q < k; q++ {
			c := per
			if q == 0 {
				c += rem
			}
			if c > 0 {
				init[q] = c
			}
		}
		return init
	}
	return &sim.Spec{
		Name: "fuzz",
		N:    n,
		Init: initCounts,
		// A fixed block layout keeps the derived agent adapter's random
		// stream identical to the naive reference's (no-Layout specs
		// shuffle their initial assignment with engine randomness).
		Layout: func() []uint64 {
			out := make([]uint64, 0, n)
			init := initCounts()
			for q := uint64(0); q < k; q++ {
				for i := int64(0); i < init[q]; i++ {
					out = append(out, q)
				}
			}
			return out
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			idx := qu*k + qv
			packed := uint64(table[idx])
			if randMask[idx] && r.Bool() {
				packed = uint64(alt[idx])
			}
			return packed / k, packed % k
		},
		Randomized: randomized,
		Skip:       flags&2 != 0,
		Domain:     domain,
		Output:     func(q uint64) int64 { return int64(q) },
	}
}

// scatterMul spreads a small logical alphabet over the full uint64 code
// space (odd multiplier, hence injective): the shape of an interned or
// hashed product-state spec, where codes carry no arithmetic structure
// and the engines' lazy discovery paths do all the work.
const scatterMul = 0x9E3779B97F4A7C15

// sparseSpec wraps fuzzSpec's random rule in scattered codes: the
// logical state q lives at code q·scatterMul, and Delta round-trips
// through the inverse table. The deterministic fragment is exposed the
// same lazy way (DeltaDet resolves per pair on demand), so the fuzz
// exercises the sparse/large-alphabet row path of the batch planner —
// no dense table can exist over these codes.
func sparseSpec(n int, k uint64, raw []byte, flags uint8) *sim.Spec {
	dense := fuzzSpec(n, k, raw, flags)
	dense.Domain = 0 // scattered codes have no dense domain
	enc := func(q uint64) uint64 { return q * scatterMul }
	dec := make(map[uint64]uint64, k)
	for q := uint64(0); q < k; q++ {
		dec[enc(q)] = q
	}
	denseInit := dense.Init
	denseDelta := dense.Delta
	denseRand := dense.Randomized
	spec := *dense
	spec.Name = "fuzz-sparse"
	spec.Init = func() map[uint64]int64 {
		init := make(map[uint64]int64, k)
		for q, c := range denseInit() {
			init[enc(q)] = c
		}
		return init
	}
	spec.Layout = func() []uint64 {
		// Expand blocks in ascending SCATTERED-code order, matching the
		// naive reference's sorted-block construction (scattering does
		// not preserve the logical order of the alphabet).
		init := spec.Init()
		codes := make([]uint64, 0, len(init))
		for code := range init {
			codes = append(codes, code)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		out := make([]uint64, 0, n)
		for _, code := range codes {
			for x := int64(0); x < init[code]; x++ {
				out = append(out, code)
			}
		}
		return out
	}
	spec.Delta = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		a, b := denseDelta(dec[qu], dec[qv], r)
		return enc(a), enc(b)
	}
	if denseRand != nil {
		spec.Randomized = func(qu, qv uint64) bool { return denseRand(dec[qu], dec[qv]) }
	}
	spec.Output = func(q uint64) int64 { return int64(dec[q]) }
	return &spec
}

// naiveSpecAgent is the obvious agent-array implementation of a spec —
// a plain code array with no mirror, no batching — used as the
// reference the derived SpecAgent must match bit for bit.
type naiveSpecAgent struct {
	spec *sim.Spec
	code []uint64
}

func newNaiveSpecAgent(spec *sim.Spec) *naiveSpecAgent {
	p := &naiveSpecAgent{spec: spec}
	init := spec.Init()
	codes := make([]uint64, 0, len(init))
	for code := range init {
		codes = append(codes, code)
	}
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			if codes[j] < codes[i] {
				codes[i], codes[j] = codes[j], codes[i]
			}
		}
	}
	for _, code := range codes {
		for x := int64(0); x < init[code]; x++ {
			p.code = append(p.code, code)
		}
	}
	return p
}

func (p *naiveSpecAgent) N() int { return len(p.code) }

func (p *naiveSpecAgent) Interact(u, v int, r *rng.Rand) {
	p.code[u], p.code[v] = p.spec.Delta(p.code[u], p.code[v], r)
}

// FuzzSpecAdapters fuzzes the spec layer end to end: the derived agent
// adapter must match the naive reference implementation bit for bit
// (same seed, same engine), its count mirror must equal the code
// array's histogram and sum to n, and the derived count form must
// conserve Σ counts == n with non-negative counts and an exact
// interaction counter on the exact, skip and batched paths alike.
func FuzzSpecAdapters(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(500), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), []byte{})
	f.Add(uint64(7), uint16(300), uint16(9999), uint8(2), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(33), uint16(256), uint8(3), []byte{0xff, 0x00})
	f.Add(uint64(3), uint16(17), uint16(77), uint8(7), []byte{0x10, 0x9c, 0x33})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, flags uint8, raw []byte) {
		n := int(nRaw)%1022 + 2 // [2, 1023]
		steps := int64(stepsRaw)%5000 + 1
		k := uint64(len(raw))%5 + 2 // alphabet size [2, 6]
		checkSpecAdapters(t, func() *sim.Spec { return fuzzSpec(n, k, raw, flags) }, n, k, steps, seed)
	})
}

// FuzzSpecSparseAdapters is FuzzSpecAdapters over scattered
// large-alphabet codes: the same random rules, but with state codes
// spread across the full uint64 space the way interned product-state
// specs spread theirs. It exercises the engines' lazy discovery and
// the batch planner's on-demand (sparse) DeltaDet row derivation,
// where no dense successor table can exist.
func FuzzSpecSparseAdapters(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(500), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), []byte{})
	f.Add(uint64(7), uint16(300), uint16(9999), uint8(2), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(33), uint16(256), uint8(3), []byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, flags uint8, raw []byte) {
		n := int(nRaw)%1022 + 2
		steps := int64(stepsRaw)%5000 + 1
		k := uint64(len(raw))%5 + 2
		checkSpecAdapters(t, func() *sim.Spec { return sparseSpec(n, k, raw, flags) }, n, k, steps, seed)
	})
}

// checkSpecAdapters runs the shared spec-layer invariant battery: the
// derived agent adapter must match the naive reference bit for bit,
// its count mirror must equal the code array's histogram, and the
// derived count form must conserve Σ counts == n with non-negative
// counts and an exact interaction counter on the exact and batched
// paths alike.
func checkSpecAdapters(t *testing.T, mkSpec func() *sim.Spec, n int, k uint64, steps int64, seed uint64) {
	t.Helper()

	// Agent adapter vs naive reference, bit for bit.
	agent := sim.NewSpecAgent(mkSpec())
	naive := newNaiveSpecAgent(mkSpec())
	ea, err := sim.NewEngine(agent, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	en, err := sim.NewEngine(naive, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ea.Step(steps)
	en.Step(steps)
	hist := make(map[uint64]int64, k)
	for i := 0; i < n; i++ {
		if agent.Code(i) != naive.code[i] {
			t.Fatalf("agent %d: adapter code %d, naive code %d", i, agent.Code(i), naive.code[i])
		}
		hist[naive.code[i]]++
	}
	var mirrorSum int64
	agent.View().ForEach(func(code uint64, cnt int64) {
		mirrorSum += cnt
		if hist[code] != cnt {
			t.Fatalf("mirror count %d for state %d, histogram %d", cnt, code, hist[code])
		}
	})
	if mirrorSum != int64(n) {
		t.Fatalf("mirror sums to %d, want %d", mirrorSum, n)
	}

	// Count adapter conservation on every engine path.
	for _, mode := range []struct {
		name  string
		batch bool
	}{{"exact", false}, {"batched", true}} {
		e, err := sim.NewCountEngine(sim.NewSpecCount(mkSpec()),
			sim.Config{Seed: seed, BatchSteps: mode.batch})
		if err != nil {
			t.Fatalf("%s: NewCountEngine: %v", mode.name, err)
		}
		var done int64
		for batch := int64(1); done < steps; batch = batch*3 + 1 {
			if batch > steps-done {
				batch = steps - done
			}
			e.Step(batch)
			done += batch
			if got := e.Counts().Sum(); got != int64(n) {
				t.Fatalf("%s: Σ counts = %d after %d interactions, want %d", mode.name, got, done, n)
			}
			e.Counts().ForEach(func(code uint64, cnt int64) {
				if cnt < 0 {
					t.Fatalf("%s: negative count %d for state %d", mode.name, cnt, code)
				}
			})
			if e.Interactions() != done {
				t.Fatalf("%s: Interactions = %d, want %d", mode.name, e.Interactions(), done)
			}
		}
	}
}

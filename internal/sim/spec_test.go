package sim_test

import (
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/leader"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// TestSpecAgentMatchesJuntaBitForBit pins the spec-derived agent form
// against the hand-written (instrumented) junta simulation: same seed,
// same engine — the Result and every agent's final state must be
// identical, because both sides apply the identical rule to the
// identical pair stream with identical coin consumption.
func TestSpecAgentMatchesJuntaBitForBit(t *testing.T) {
	const n = 512
	cfg := sim.Config{Seed: 0xA1, CheckEvery: n / 4}
	hand := junta.New(n)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(junta.NewSpec(n))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		if got, want := junta.Decode(agent.Code(i)), hand.State(i); got != want {
			t.Fatalf("agent %d: spec state %+v, hand-written state %+v", i, got, want)
		}
	}
}

// TestSpecAgentMatchesClockBitForBit pins the spec-derived clock form
// against the hand-written phase-clock simulation: identical Result,
// and every agent's completed-phase count (capped at maxPhase, which is
// all the spec encodes) must agree.
func TestSpecAgentMatchesClockBitForBit(t *testing.T) {
	const (
		n        = 512
		maxPhase = 3
	)
	js := 2 * sim.Log2Ceil(n)
	cfg := sim.Config{Seed: 0xA2, CheckEvery: n}
	hand := clock.NewProtocol(n, clock.DefaultM, js, maxPhase)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(clock.NewSpec(n, clock.DefaultM, js, maxPhase))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	for i := 0; i < n; i++ {
		want := int64(hand.State(i).Phase)
		if want > maxPhase {
			want = maxPhase
		}
		if got := agent.Output(i); got != want {
			t.Fatalf("agent %d: spec phase %d, hand-written phase %d", i, got, want)
		}
	}
}

// TestSpecAgentMatchesLeaderBitForBit pins the spec-derived leader_elect
// form against the hand-written simulation. leader_elect draws synthetic
// coins at phase boundaries, so this additionally pins that the spec's
// Delta consumes the random stream in exactly the hand-written order.
func TestSpecAgentMatchesLeaderBitForBit(t *testing.T) {
	const n = 512
	js := 2 * sim.Log2Ceil(n)
	cfg := sim.Config{Seed: 0xA3, CheckEvery: n}
	hand := leader.NewProtocol(n, clock.DefaultM, js)
	handRes, err := sim.Run(hand, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agent := sim.NewSpecAgent(leader.NewSpec(n, clock.DefaultM, js))
	specRes, err := sim.Run(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if handRes != specRes {
		t.Fatalf("results differ: hand %+v vs spec %+v", handRes, specRes)
	}
	var specLeaders int64
	for i := 0; i < n; i++ {
		specLeaders += agent.Output(i)
	}
	if specLeaders != int64(hand.Leaders()) {
		t.Fatalf("leader counts differ: spec %d, hand-written %d", specLeaders, hand.Leaders())
	}
}

// refMax is the classical array implementation of maximum broadcast,
// kept in the tests as the reference the epidemic spec replaced.
type refMax struct {
	vals   []int64
	oneWay bool
}

func (p *refMax) N() int { return len(p.vals) }

func (p *refMax) Interact(u, v int, _ *rng.Rand) {
	if p.vals[u] < p.vals[v] {
		p.vals[u] = p.vals[v]
	} else if !p.oneWay && p.vals[v] < p.vals[u] {
		p.vals[v] = p.vals[u]
	}
}

func (p *refMax) Output(i int) int64 { return p.vals[i] }

// TestSpecAgentMatchesEpidemicReference pins the spec-derived epidemic
// agent form against the classical array simulation it replaced: same
// seed, same horizon — every agent's value must match at every probed
// step.
func TestSpecAgentMatchesEpidemicReference(t *testing.T) {
	const n = 256
	r := rng.New(5)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(8))
	}
	for _, oneWay := range []bool{true, false} {
		ref := &refMax{vals: append([]int64(nil), vals...), oneWay: oneWay}
		agent := sim.NewSpecAgent(epidemic.NewSpec(vals, oneWay))
		refEng, err := sim.NewEngine(ref, sim.Config{Seed: 0xA4})
		if err != nil {
			t.Fatal(err)
		}
		specEng, err := sim.NewEngine(agent, sim.Config{Seed: 0xA4})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			refEng.Step(n / 2)
			specEng.Step(n / 2)
			for i := 0; i < n; i++ {
				if agent.Output(i) != ref.Output(i) {
					t.Fatalf("oneWay=%v step %d agent %d: spec %d, reference %d",
						oneWay, step, i, agent.Output(i), ref.Output(i))
				}
			}
		}
	}
}

// TestSpecAgentShufflesInitialAssignment pins the de-correlation of
// agent index and initial state for specs without a fixed Layout: the
// engine's SampleInit hook must shuffle the block expansion, so that
// non-uniform schedulers (which distinguish agents) see an unbiased
// assignment — agent 0 must not deterministically receive the smallest
// state.
func TestSpecAgentShufflesInitialAssignment(t *testing.T) {
	const n = 4096
	agent := sim.NewSpecAgent(baseline.NewGeometricSpec(n))
	if _, err := sim.NewEngine(agent, sim.Config{Seed: 99}); err != nil {
		t.Fatal(err)
	}
	descents := 0
	for i := 1; i < n; i++ {
		if agent.Code(i) < agent.Code(i-1) {
			descents++
		}
	}
	if descents == 0 {
		t.Fatal("initial codes are in sorted block order — the assignment was not shuffled")
	}
	var sum int64
	agent.View().ForEach(func(_ uint64, cnt int64) { sum += cnt })
	if sum != n {
		t.Fatalf("mirror sums to %d after shuffle, want %d", sum, n)
	}
}

// TestSpecCountGeometricBatched pins the headline capability the
// initialization sampler unlocks: the geometric estimator converges on
// the batched count engine — its multinomial coin phase replaces the
// Θ(n) per-agent draws that previously forced the exact fallback — and
// the batched run agrees distributionally with the sequential one.
func TestSpecCountGeometricBatched(t *testing.T) {
	const (
		n      = 1 << 20
		trials = 8
	)
	mean := func(batch bool) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			eng, err := sim.NewCountEngine(sim.NewSpecCount(baseline.NewGeometricSpec(n)),
				sim.Config{Seed: sim.TrialSeed(23, i), CheckEvery: n / 4, BatchSteps: batch})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunToConvergence()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("trial %d (batch=%v) did not converge", i, batch)
			}
			if batch && eng.Stats().Epochs == 0 {
				t.Fatalf("trial %d: batched run applied no epochs (fell back to exact stepping)", i)
			}
			sum += float64(res.Interactions)
		}
		return sum / trials
	}
	batched, seq := mean(true), mean(false)
	gap := batched/seq - 1
	if gap < 0 {
		gap = -gap
	}
	t.Logf("geometric n=%d: sequential mean T_C = %.0f, batched mean T_C = %.0f, gap %.3f", n, seq, batched, gap)
	if gap > 0.10 {
		t.Errorf("batched mean %.0f vs sequential mean %.0f (gap %.3f > 0.10)", batched, seq, gap)
	}
}

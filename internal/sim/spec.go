// The transition-spec layer: one canonical description of a population
// protocol from which every engine form is derived.
//
// The paper's protocols are pure pairwise transition rules δ: Q×Q → Q×Q
// over a finite state space, yet an engine wants the rule in different
// shapes: the agent-array Engine applies it to two indexed agents, the
// CountEngine applies it to a configuration of per-state counts, and the
// batch planner wants the deterministic fragment as a transition matrix
// (DeterministicDelta) plus a certain-no-op predicate (SelfLooper).
// Before this layer, every protocol hand-wrote all three forms and the
// equivalence between them was only pinned statistically.
//
// A Spec states the rule once — a state-code domain, a transition
// function over codes, the predicates that classify pairs (randomized,
// certain no-op), the convergence/output functions, and the initial
// configuration — and the two adapters derive the engine forms
// mechanically:
//
//   - NewSpecAgent builds the agent form: an array of state codes driven
//     by the spec's Delta, with a count mirror over the occupied alphabet
//     so the configuration-level convergence predicate needs no O(n)
//     scan. It implements Protocol, BatchInteractor, Converger and
//     Outputter.
//   - NewSpecCount builds the count form: a CountProtocol (plus
//     CountConverger, CountOutputter, DeterministicDelta, and — when the
//     spec opts in — SelfLooper) whose methods are direct projections of
//     the spec's fields.
//
// Protocols whose agents draw a random value at their first interaction
// (the geometric estimator baseline) can declare a one-shot
// initialization sampler instead: InitSample draws the whole
// population's values up front from the engine's generator — by the
// principle of deferred decisions this has exactly the trajectory
// distribution of drawing lazily, because an agent's pending value is
// never read before its first interaction — which turns the
// per-interaction rule deterministic and therefore batchable. Both
// engines invoke the sampler at construction, before any interaction,
// through the InitSampler/CountInitSampler hooks.
package sim

import (
	"fmt"
	"sort"

	"popcount/internal/rng"
)

// ConfigView is a read-only view of a population configuration — the
// multiset of agent states as counts over the occupied alphabet. The
// count engine's CountConfig implements it, as does the agent adapter's
// count mirror, so one configuration-level convergence predicate serves
// every engine form.
type ConfigView interface {
	// N returns the population size.
	N() int64
	// Count returns the number of agents in the state with the given
	// code (zero for states never occupied).
	Count(code uint64) int64
	// ForEach calls f for every currently occupied state.
	ForEach(f func(code uint64, count int64))
}

// Spec is the canonical transition specification of a population
// protocol: the one place a protocol's rule is written down, from which
// the agent-array, count-based and batched engine forms all derive.
type Spec struct {
	// Name labels the protocol in diagnostics.
	Name string

	// N is the population size.
	N int

	// Init returns the initial configuration as a map from state code to
	// multiplicity (positive entries summing to N). Exactly one of Init
	// and InitSample must be set.
	Init func() map[uint64]int64

	// InitSample, if set, replaces Init: it draws the initial
	// configuration from the engine's generator, once, at engine
	// construction. It is the hook for protocols whose agents sample a
	// random value at their first interaction — pre-drawing the whole
	// population's values (deferred decisions) makes Delta deterministic
	// and the protocol batchable.
	InitSample func(n int64, r *rng.Rand) map[uint64]int64

	// Layout, if set, fixes the agent adapter's assignment of initial
	// codes to agent indices (len N, consistent with Init). Protocols
	// whose classical form pins particular agents — the broadcast source
	// at index 0, the junta members first — set it so the derived agent
	// form is bit-for-bit the hand-written one. Nil assigns codes in
	// ascending order in contiguous blocks, which is equivalent under
	// the uniform scheduler (agents are exchangeable).
	Layout func() []uint64

	// Delta is the transition function δ(qu, qv) → (qu', qv') over state
	// codes, with the initiator first. Pairs not claimed by Randomized
	// must be deterministic and must not touch r (they are resolved with
	// r == nil when the engines derive transition matrices and no-op
	// predicates); claimed pairs draw their synthetic coins from r.
	Delta func(qu, qv uint64, r *rng.Rand) (uint64, uint64)

	// Randomized, if set, reports the pairs whose transition consumes
	// synthetic coins. It may be conservative: claiming a pair that is
	// actually deterministic only costs the batch planner speed, never
	// correctness. Nil means the rule is fully deterministic.
	Randomized func(qu, qv uint64) bool

	// SelfLoop, if set, is a cheap certain-no-op predicate (see
	// SelfLooper for the contract). Nil derives it from Delta, which is
	// correct but evaluates the full rule per pair.
	SelfLoop func(qu, qv uint64) bool

	// Skip opts the count form into the engine's self-loop skip path.
	// Protocols with small occupied alphabets and no-op-dominated
	// equilibria (epidemics, junta processes) should set it; protocols
	// whose alphabet is rich and moving (phase clocks, leader election)
	// should not — the no-op bookkeeping costs more than it saves.
	Skip bool

	// Converged, if set, is the convergence predicate over the current
	// configuration.
	Converged func(v ConfigView) bool

	// Output, if set, is the output function ω over state codes.
	Output func(q uint64) int64

	// Errored, if set, reports whether the configuration has raised the
	// protocol's error flag — the stable hybrids' detection → backup
	// handover. Protocols without error detection leave it nil.
	Errored func(v ConfigView) bool

	// EncodeState and DecodeState, if set, give state codes a portable
	// encoding for engine snapshots (see StateCodec): EncodeState must
	// be injective and DecodeState must map an encoding produced by any
	// instance of the same protocol to the code naming that state in
	// *this* instance — for interned specs, by decoding the product
	// state and re-interning it. Specs whose codes are arithmetic (the
	// code itself is the state) leave both nil and get the identity
	// encoding. Set both or neither.
	EncodeState func(q uint64) []byte
	DecodeState func(b []byte) (uint64, error)

	// Domain, if positive, declares that every reachable state code lies
	// in [0, Domain). It is metadata, not a constraint the adapters
	// enforce: a small declared domain lets NewSpecAgent precompile
	// Delta's deterministic fragment into a flat successor table (one
	// lookup per interaction instead of a closure call). Specs with
	// sparse or interned codes leave it zero and keep the lazy paths.
	Domain uint64

	// ShardDelta, if set, equips the spec for the count engine's
	// intra-run sharding (Config.Shards ≥ 2): ShardDelta(k) returns k
	// Delta closures that may run concurrently with each other while the
	// engine holds every other spec entry point quiescent, plus a
	// reconcile function the engine calls serially after each parallel
	// round. Interned specs back the closures with ShardViews — fresh
	// product states get shard-provisional codes, and reconcile folds
	// them into the canonical namespace (ascending shard order) and
	// returns the provisional → canonical remap (nil when no fresh state
	// appeared). Specs whose Delta is already safe to call concurrently
	// set PureDelta instead; specs providing neither have their
	// randomized pairs resolved serially under sharding, which only
	// costs speed.
	ShardDelta func(k int) (deltas []func(qu, qv uint64, r *rng.Rand) (uint64, uint64), reconcile func() map[uint64]uint64)

	// PureDelta declares that Delta closes over no mutable state and may
	// be invoked concurrently (each call still gets its own generator).
	// Arithmetic-code specs qualify; interned specs never do — their
	// Delta assigns codes on first sight and must use ShardDelta.
	PureDelta bool

	// PreferCount marks the count form as the profitable default: the
	// public EngineAuto resolution picks the count engine only for specs
	// that set it. Protocols with small occupied alphabets and
	// no-op-dominated equilibria benefit; the composed counting
	// protocols — whose count form trades per-interaction struct ops for
	// interning — stay on the agent engine unless explicitly requested.
	PreferCount bool

	// RingExchangeable certifies that the spec's dynamics remain a
	// function of per-state counts under the ring interaction graph:
	// from the spec's initial configurations, every reachable ring
	// configuration keeps the spreading state's agents on one contiguous
	// arc whose two boundary adjacencies are the only productive
	// interactions. Single-source monotone spread (one seeded agent, a
	// totally ordered state set, Delta only ever lifts toward the
	// maximum) qualifies; anything with multiple seeds or non-monotone
	// rules does not. The count engine accepts a ring GraphScheduler
	// only for specs that set it — others fall back to the agent engine.
	RingExchangeable bool

	// Memo, set by MemoizeDelta, is the code-indexed successor memo the
	// Delta and Randomized fields resolve through. The adapters use it
	// to answer DeltaDet and derived self-loop queries in one probe
	// instead of a classify + resolve pair. It is derived state — never
	// serialized into snapshots, rebuilt lazily on restore.
	Memo *DeltaMemo
}

// validate checks the spec's structural invariants.
func (s *Spec) validate() error {
	if s == nil {
		return fmt.Errorf("sim: nil Spec")
	}
	if s.N < 2 {
		return ErrTooSmall
	}
	if s.Delta == nil {
		return fmt.Errorf("sim: Spec %q has no Delta", s.Name)
	}
	if (s.Init == nil) == (s.InitSample == nil) {
		return fmt.Errorf("sim: Spec %q must set exactly one of Init and InitSample", s.Name)
	}
	if (s.EncodeState == nil) != (s.DecodeState == nil) {
		return fmt.Errorf("sim: Spec %q must set both EncodeState and DecodeState or neither", s.Name)
	}
	if s.PureDelta && s.ShardDelta != nil {
		return fmt.Errorf("sim: Spec %q sets both PureDelta and ShardDelta", s.Name)
	}
	if s.PureDelta && s.Memo != nil {
		// The memo writes its table on first resolutions, so a memoized
		// Delta is never safe to call concurrently.
		return fmt.Errorf("sim: Spec %q sets PureDelta on a memoized Delta", s.Name)
	}
	if s.Layout != nil && s.InitSample != nil {
		// A fixed agent layout would silently override the sampler on
		// the agent adapter while the count adapter draws from it — the
		// two engine forms of one spec would simulate different initial
		// distributions.
		return fmt.Errorf("sim: Spec %q sets both Layout and InitSample", s.Name)
	}
	return nil
}

// randomized reports whether the pair's transition consumes coins.
func (s *Spec) randomized(qu, qv uint64) bool {
	return s.Randomized != nil && s.Randomized(qu, qv)
}

// selfLoop reports whether the pair is a certain no-op, deriving the
// answer from Delta when no cheap predicate was declared.
func (s *Spec) selfLoop(qu, qv uint64) bool {
	if s.SelfLoop != nil {
		return s.SelfLoop(qu, qv)
	}
	if m := s.Memo; m != nil {
		a, b, ok := m.DeltaDet(qu, qv)
		return ok && a == qu && b == qv
	}
	if s.randomized(qu, qv) {
		return false
	}
	a, b := s.Delta(qu, qv, nil)
	return a == qu && b == qv
}

// MemoizeDelta routes the spec's Delta and Randomized through a
// code-indexed successor memo (see DeltaMemo): repeated deterministic
// resolutions become one table probe, bit-for-bit equivalent to the raw
// closures. Call it last in a spec constructor, after Delta and
// Randomized are set. Interned product-state specs are the intended
// users; the memo assumes Randomized is a pure function of the code
// pair with no interning side effects.
func (s *Spec) MemoizeDelta() *DeltaMemo {
	m := NewDeltaMemo(s.Delta, s.Randomized)
	s.Delta = m.Delta
	if s.Randomized != nil {
		s.Randomized = m.Randomized
	}
	s.Memo = m
	return m
}

// initCounts resolves the initial configuration, drawing it when the
// spec has an initialization sampler.
func (s *Spec) initCounts(r *rng.Rand) map[uint64]int64 {
	if s.InitSample != nil {
		return s.InitSample(int64(s.N), r)
	}
	return s.Init()
}

// sortedCodes returns the configuration's codes in ascending order (map
// iteration order must never leak into a trajectory).
func sortedCodes(init map[uint64]int64) []uint64 {
	codes := make([]uint64, 0, len(init))
	for code := range init {
		codes = append(codes, code)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	return codes
}

// InitSampler is an optional Protocol hook invoked by NewEngine once at
// construction, before any interaction, with the engine's generator —
// the agent-side twin of CountInitSampler. It is how a Spec's one-shot
// initialization sampler reaches the agent adapter at a well-defined
// point of the random stream.
type InitSampler interface {
	SampleInit(r *rng.Rand)
}

// specMirror is the agent adapter's count mirror: the occupied-alphabet
// histogram of the code array, maintained incrementally so that the
// configuration-level convergence predicate is O(occupied states) per
// poll instead of O(n).
type specMirror struct {
	n      int64
	counts map[uint64]int64
}

func (m *specMirror) N() int64 { return m.n }

func (m *specMirror) Count(code uint64) int64 { return m.counts[code] }

func (m *specMirror) ForEach(f func(code uint64, count int64)) {
	for code, cnt := range m.counts {
		if cnt > 0 {
			f(code, cnt)
		}
	}
}

// SpecAgent is the agent-array form derived from a Spec: an array of
// state codes plus the spec's transition function, replacing the
// hand-written Interact/InteractBatch bodies of pre-spec protocols. It
// implements Protocol, BatchInteractor, Converger, Outputter and (for
// sampler specs) InitSampler.
type SpecAgent struct {
	spec *Spec
	code []uint64 // nil until the one-shot init sampler has run
	view specMirror

	// Flat successor table for dense small-alphabet specs (see
	// precompile): succ[qu·dom+qv] holds the packed successor pair
	// a·dom+b, or specRandomizedEntry for pairs that consume coins.
	succ []uint64
	dom  uint64
}

// specTableMaxEntries bounds the flat successor table to Domain² ≤ 2¹⁶
// entries (512 KiB): large enough for every dense packed spec in the
// repository (junta: 2⁸ codes; powers-of-two balancing: <2⁸), small
// enough that per-trial precompilation stays in the low milliseconds —
// negligible against the Ω(n log n)-interaction runs the table speeds
// up.
const specTableMaxEntries = 1 << 16

// specRandomizedEntry marks a table slot whose pair is resolved through
// the Delta closure (it consumes synthetic coins). Packed successor
// values are below Domain² ≤ specTableMaxEntries, so the sentinel can
// never collide.
const specRandomizedEntry = ^uint64(0)

// NewSpecAgent derives the agent form of spec. It panics on a
// structurally invalid spec — specs are compiled-in protocol
// definitions, so an invalid one is a programming bug, not input.
func NewSpecAgent(spec *Spec) *SpecAgent {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	p := &SpecAgent{spec: spec, view: specMirror{n: int64(spec.N)}}
	p.precompile()
	if spec.InitSample == nil {
		p.materialize(nil)
	}
	return p
}

// precompile builds the flat successor table for specs that declare a
// table-sized dense code domain: every deterministic pair resolves to
// one slice lookup per interaction instead of a Delta closure call,
// which recovers the last ~20–30% of agent-engine throughput for the
// small-alphabet protocols. Pairs claimed by Randomized keep the
// closure path. Delta must be total on [0, Domain)² for unclaimed pairs
// — the Domain contract — because the table enumerates code pairs the
// trajectory may never reach.
func (p *SpecAgent) precompile() {
	d := p.spec.Domain
	if d == 0 || d > specTableMaxEntries/d {
		return
	}
	p.dom = d
	p.succ = make([]uint64, d*d)
	for qu := uint64(0); qu < d; qu++ {
		for qv := uint64(0); qv < d; qv++ {
			if p.spec.randomized(qu, qv) {
				p.succ[qu*d+qv] = specRandomizedEntry
				continue
			}
			a, b := p.spec.Delta(qu, qv, nil)
			if a >= d || b >= d {
				panic(fmt.Sprintf("sim: Spec %q Delta(%#x, %#x) leaves the declared domain %d", p.spec.Name, qu, qv, d))
			}
			p.succ[qu*d+qv] = a*d + b
		}
	}
}

// SampleInit runs the spec's one-shot initialization sampler and, for
// specs without a Layout, shuffles the initial code assignment with the
// engine's generator. The engine calls it at construction; direct
// drivers that step the protocol by hand get a lazy fallback in
// Interact/InteractBatch (and, lacking a generator at construction,
// keep the block assignment — which is equivalent under the uniform
// scheduler those drivers use).
func (p *SpecAgent) SampleInit(r *rng.Rand) {
	if p.code == nil {
		p.materialize(r)
		return
	}
	p.shuffle(r)
}

// materialize expands the initial configuration into the per-agent code
// array and the count mirror.
func (p *SpecAgent) materialize(r *rng.Rand) {
	spec := p.spec
	if spec.Layout != nil {
		layout := spec.Layout()
		if len(layout) != spec.N {
			panic(fmt.Sprintf("sim: Spec %q Layout has %d agents, want %d", spec.Name, len(layout), spec.N))
		}
		p.code = append([]uint64(nil), layout...)
		p.view.counts = make(map[uint64]int64)
		for _, c := range p.code {
			p.view.counts[c]++
		}
		// The layout must be a permutation of the Init configuration:
		// the count form starts from Init, so a mismatch would make the
		// two engine forms of one spec simulate different initial
		// configurations.
		init := spec.Init()
		if len(init) != len(p.view.counts) {
			panic(fmt.Sprintf("sim: Spec %q Layout occupies %d states, Init %d", spec.Name, len(p.view.counts), len(init)))
		}
		for code, cnt := range init {
			if p.view.counts[code] != cnt {
				panic(fmt.Sprintf("sim: Spec %q Layout has %d agents in state %#x, Init %d", spec.Name, p.view.counts[code], code, cnt))
			}
		}
		return
	}
	init := spec.initCounts(r)
	p.code = make([]uint64, 0, spec.N)
	p.view.counts = make(map[uint64]int64, len(init))
	for _, code := range sortedCodes(init) {
		cnt := init[code]
		if cnt <= 0 {
			panic(fmt.Sprintf("sim: Spec %q initial count %d for state %#x", spec.Name, cnt, code))
		}
		p.view.counts[code] = cnt
		for i := int64(0); i < cnt; i++ {
			p.code = append(p.code, code)
		}
	}
	if len(p.code) != spec.N {
		panic(fmt.Sprintf("sim: Spec %q initial counts sum to %d, want n=%d", spec.Name, len(p.code), spec.N))
	}
	p.shuffle(r)
}

// shuffle de-correlates agent index from initial state for specs
// without a fixed Layout: the block expansion above assigns codes in
// sorted contiguous runs, which is only equivalent to an arbitrary
// assignment under the uniform scheduler (agents exchangeable) — a
// biased or matching scheduler distinguishes agents, so the assignment
// must be uniformly random. Single-state configurations are invariant
// under permutation and skip the draw, keeping such specs' random
// streams identical to the pre-shuffle contract (the junta bit-for-bit
// pin relies on this).
func (p *SpecAgent) shuffle(r *rng.Rand) {
	if r == nil || p.spec.Layout != nil || len(p.view.counts) <= 1 {
		return
	}
	for i := len(p.code) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p.code[i], p.code[j] = p.code[j], p.code[i]
	}
}

// N returns the population size.
func (p *SpecAgent) N() int { return p.spec.N }

// Spec returns the underlying transition spec.
func (p *SpecAgent) Spec() *Spec { return p.spec }

// View returns the live count mirror of the agent array. For sampler
// specs it is empty until the initialization sampler has run.
func (p *SpecAgent) View() ConfigView { return &p.view }

// StateCount returns the number of agents currently in the state with
// the given code.
func (p *SpecAgent) StateCount(code uint64) int64 { return p.view.counts[code] }

// Code returns agent i's current state code (zero before a sampler
// spec's one-shot initialization has run, like Output and Converged).
func (p *SpecAgent) Code(i int) uint64 {
	if p.code == nil {
		return 0
	}
	return p.code[i]
}

// move reassigns one agent's code and repairs the mirror.
func (p *SpecAgent) move(i int, from, to uint64) {
	p.code[i] = to
	if c := p.view.counts[from] - 1; c == 0 {
		delete(p.view.counts, from)
	} else {
		p.view.counts[from] = c
	}
	p.view.counts[to]++
}

// Interact applies one transition of the spec's rule, through the flat
// successor table when the spec's domain allowed precompilation.
func (p *SpecAgent) Interact(u, v int, r *rng.Rand) {
	if p.code == nil {
		p.materialize(r) // direct driver without an engine: lazy one-shot init
	}
	qu, qv := p.code[u], p.code[v]
	var a, b uint64
	if p.succ != nil {
		if s := p.succ[qu*p.dom+qv]; s != specRandomizedEntry {
			a, b = s/p.dom, s%p.dom
		} else {
			a, b = p.spec.Delta(qu, qv, r)
		}
	} else {
		a, b = p.spec.Delta(qu, qv, r)
	}
	if a != qu {
		p.move(u, qu, a)
	}
	if b != qv {
		p.move(v, qv, b)
	}
}

// InteractBatch implements the engine's batch fast path: count
// consecutive interactions in one loop, bit-for-bit equal to count
// scalar Interact calls, with pair drawing devirtualized for the uniform
// scheduler.
func (p *SpecAgent) InteractBatch(count int64, sched Scheduler, r *rng.Rand) {
	if p.code == nil {
		p.materialize(r)
	}
	n := len(p.code)
	if _, uniform := sched.(UniformScheduler); uniform {
		for i := int64(0); i < count; i++ {
			u, v := r.Pair(n)
			p.Interact(u, v, r)
		}
		return
	}
	for i := int64(0); i < count; i++ {
		u, v := sched.Next(n, r)
		p.Interact(u, v, r)
	}
}

// Converged evaluates the spec's convergence predicate on the count
// mirror (false for specs without one, and before a sampler spec's
// initialization has run).
func (p *SpecAgent) Converged() bool {
	if p.spec.Converged == nil || p.code == nil {
		return false
	}
	return p.spec.Converged(&p.view)
}

// Output returns agent i's output under the spec's output function
// (zero for specs without one, and before a sampler spec's one-shot
// initialization has run).
func (p *SpecAgent) Output(i int) int64 {
	if p.spec.Output == nil || p.code == nil {
		return 0
	}
	return p.spec.Output(p.code[i])
}

// Errored evaluates the spec's error predicate on the count mirror
// (false for specs without error detection). It is how the stable
// hybrids' detection → backup handover surfaces through the engine
// API's Errored probe.
func (p *SpecAgent) Errored() bool {
	if p.spec.Errored == nil || p.code == nil {
		return false
	}
	return p.spec.Errored(&p.view)
}

// specCount is the count form derived from a Spec: a CountProtocol whose
// methods are direct projections of the spec's fields. It always
// implements CountConverger, CountOutputter, DeterministicDelta and
// CountInitSampler; the self-loop skip path is opted into via the
// specCountSkip wrapper so that specs without Skip never pay the
// engine's no-op bookkeeping.
type specCount struct {
	spec *Spec
}

// NewSpecCount derives the count form of spec. Like NewSpecAgent it
// panics on a structurally invalid spec.
func NewSpecCount(spec *Spec) CountProtocol {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	if spec.Skip {
		return &specCountSkip{specCount{spec: spec}}
	}
	return &specCount{spec: spec}
}

// N returns the population size.
func (p *specCount) N() int { return p.spec.N }

// Spec returns the underlying transition spec.
func (p *specCount) Spec() *Spec { return p.spec }

// InitCounts returns the deterministic initial configuration. Sampler
// specs have none — the engine resolves them through CountInitSampler
// instead, which is always implemented.
func (p *specCount) InitCounts() map[uint64]int64 {
	if p.spec.Init == nil {
		panic(fmt.Sprintf("sim: Spec %q has an initialization sampler; run it through an engine", p.spec.Name))
	}
	return p.spec.Init()
}

// InitCountsSample implements CountInitSampler: the one-shot
// initialization draw for sampler specs, the plain Init otherwise.
func (p *specCount) InitCountsSample(r *rng.Rand) map[uint64]int64 {
	return p.spec.initCounts(r)
}

// Delta applies the spec's transition function.
func (p *specCount) Delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	return p.spec.Delta(qu, qv, r)
}

// DeltaDet exposes the deterministic fragment of the rule as the batch
// planner's transition matrix: every pair not claimed by the spec's
// Randomized predicate resolves to a single successor pair. Memoized
// specs answer both the classification and the successors in one probe.
func (p *specCount) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	if m := p.spec.Memo; m != nil {
		return m.DeltaDet(qu, qv)
	}
	if p.spec.randomized(qu, qv) {
		return 0, 0, false
	}
	a, b := p.spec.Delta(qu, qv, nil)
	return a, b, true
}

// ShardDelta implements ShardedDelta: the spec's own hook when set, k
// aliases of a declared-pure Delta otherwise. Specs with neither return
// nil, and the sharded planner resolves their randomized pairs
// serially.
func (p *specCount) ShardDelta(k int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
	if p.spec.ShardDelta != nil {
		return p.spec.ShardDelta(k)
	}
	if p.spec.PureDelta {
		ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), k)
		for i := range ds {
			ds[i] = p.spec.Delta
		}
		return ds, nil
	}
	return nil, nil
}

// CountConverged evaluates the spec's convergence predicate.
func (p *specCount) CountConverged(c *CountConfig) bool {
	return p.spec.Converged != nil && p.spec.Converged(c)
}

// StateOutput applies the spec's output function.
func (p *specCount) StateOutput(q uint64) int64 {
	if p.spec.Output == nil {
		return 0
	}
	return p.spec.Output(q)
}

// specCountSkip additionally exposes the certain-no-op predicate for
// specs that opted into the engine's self-loop skip path.
type specCountSkip struct {
	specCount
}

// SelfLoop implements SelfLooper via the spec's (declared or derived)
// no-op predicate.
func (p *specCountSkip) SelfLoop(qu, qv uint64) bool {
	return p.spec.selfLoop(qu, qv)
}

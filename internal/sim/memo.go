// Code-indexed successor memoization for interned-product specs.
//
// The interned core specs (Approximate, CountExact, the stable hybrids)
// resolve every Delta call by decoding two product states, running the
// full rule, canonicalizing, and re-encoding both successors through
// Interner.Code — two hash-map lookups over ~100-byte structs per
// interaction. But interner codes are first-sight-dense over a small
// reachable fragment, and the deterministic part of the rule is a pure
// function of the code pair: once (qu, qv) has been resolved once, every
// later resolution is a repeat. A DeltaMemo caches that deterministic
// fragment keyed by the packed code pair, turning the hot path into an
// open-addressed integer-table probe — no struct hashing, no rule
// evaluation — and promotes the discovered fragment into a flat dense
// table (the same representation the SpecAgent precompile builds up
// front for declared-domain specs) once the occupied code range
// stabilizes.
//
// Correctness hinges on three invariants, each load-bearing for the
// engines' bit-for-bit determinism contract:
//
//   - First resolution runs the underlying closure. Interned specs
//     assign codes on first sight inside Delta, so the memo must not
//     reorder or suppress any first resolution: a pair's initial Delta
//     call reaches the closure exactly as it would unmemoized (interning
//     fresh successors at exactly that point of the trajectory), and
//     only repeats are answered from the table. Classifying a pair
//     (Randomized) never resolves successors — an unresolved
//     deterministic pair is parked in a "pending" state — so probing
//     the claim predicate cannot perturb code-assignment order either.
//   - Randomized pairs always call through. A claimed pair's transition
//     consumes synthetic coins, so only its classification (a pure
//     function of the code pair) is memoized; resolution keeps reading
//     the caller's generator exactly like the raw closure.
//   - Shard-provisional codes bypass the memo. During a sharded epoch's
//     parallel round (countshard.go) fresh states carry provisional
//     codes (tag bit 63 set) that are private to one shard view and die
//     at Reconcile; memoizing them would leak one round's private
//     namespace into the next. Every code ≥ memoCodeBound — which
//     includes all provisional codes — falls through to the closure.
//     The parallel round itself never touches the memo at all: shard
//     resolution goes through the spec's ShardDelta closures, and the
//     engines call Delta/DeltaDet/Randomized only from serial phases,
//     so the memo needs no locking.
//
// The memo is derived state: it is rebuilt lazily from the trajectory
// and is never serialized into engine snapshots (PSNA/PSNC). A restored
// engine starts with an empty memo and repopulates it on first
// resolutions, which are pure repeats of facts the snapshot's
// configuration already fixes.
package sim

import "popcount/internal/rng"

// Memo entry states. A deterministic resolved pair packs both successor
// codes into one entry with the high bit set; every other state is a
// small sentinel, so an entry is never ambiguous and a zero value always
// means "empty slot".
const (
	memoUnknown uint64 = 0 // empty slot: pair never classified
	memoRand    uint64 = 1 // claimed by Randomized: always resolve through the closure
	memoPending uint64 = 2 // classified deterministic, successors not yet resolved
	memoWide    uint64 = 3 // deterministic, but successors exceed memoCodeBound: resolve through the closure

	// memoDetBit marks a resolved deterministic entry packing the
	// successor pair as a<<31 | b.
	memoDetBit uint64 = 1 << 63

	// memoCodeBound bounds memoizable codes: two codes must pack into
	// the low 62 bits of a det entry. Interner codes are first-sight
	// dense, so real trajectories sit far below it; shard-provisional
	// codes (bit 63 set) are far above it and bypass the memo, which is
	// exactly the InternView contract.
	memoCodeBound uint64 = 1 << 31
)

// Flat-promotion tuning: every memoPromoteStride memoized resolutions
// the memo checks whether the occupied code range has stabilized since
// the previous check, and if so (and the range is small enough) copies
// the resolved deterministic entries into a dense width×width table —
// one bounds check and one slice index per repeat resolution, the same
// endgame as the SpecAgent precompile but over the fragment the
// trajectory actually discovered. Pairs first resolved after a
// promotion stay on the probe path until the range grows and triggers a
// rebuild; the flat table is never stale, merely incomplete, because
// entries are immutable facts about the rule.
const (
	memoPromoteStride   = 1 << 15
	memoFlatMaxWidth    = 1 << 10 // 2²⁰ entries, 8 MiB ceiling
	memoInitialTableCap = 1 << 8
)

// DeltaMemo caches the deterministic fragment of a transition function
// over interned state codes, keyed by the packed (initiator, responder)
// code pair. Construct with NewDeltaMemo or Spec.MemoizeDelta. Not safe
// for concurrent use — like the Interner it shadows, it is only ever
// called from the engines' serial phases.
type DeltaMemo struct {
	delta func(qu, qv uint64, r *rng.Rand) (uint64, uint64)
	rand  func(qu, qv uint64) bool

	// Open-addressed table: each slot packs the key (qu<<32|qv) next to
	// its entry so a repeat resolution touches one cache line — at the
	// table sizes CountExact's Õ(n) alphabet reaches, every probe is a
	// memory miss and the split-array layout would pay it twice. A slot
	// is empty iff its val is memoUnknown. Linear probing, power-of-two
	// capacity, grown at 3/4 load.
	ents []memoEnt
	mask uint64
	used int

	// Flat promoted fragment: fw×fw packed det entries (memoUnknown
	// where the pair is randomized, unresolved, or resolved after the
	// build). fw == 0 until the first promotion.
	flat []uint64
	fw   uint64

	width     uint64 // 1 + highest code stored in the table
	lastWidth uint64 // width at the previous promotion check
	tick      int    // resolutions until the next promotion check
}

// NewDeltaMemo wraps the deterministic fragment of delta in a
// code-indexed memo. randomized is the spec's claim predicate (nil means
// fully deterministic); it must be a pure function of the code pair and
// must not intern or otherwise mutate spec state — the core specs'
// pairDrawsCoins dry runs qualify.
func NewDeltaMemo(
	delta func(qu, qv uint64, r *rng.Rand) (uint64, uint64),
	randomized func(qu, qv uint64) bool,
) *DeltaMemo {
	if randomized == nil {
		randomized = func(qu, qv uint64) bool { return false }
	}
	return &DeltaMemo{
		delta: delta,
		rand:  randomized,
		ents:  make([]memoEnt, memoInitialTableCap),
		mask:  memoInitialTableCap - 1,
		tick:  memoPromoteStride,
	}
}

// memoEnt is one open-addressed slot: key and entry adjacent, 16 bytes,
// so slot i never straddles a cache line.
type memoEnt struct{ key, val uint64 }

// memoHash mixes a packed code pair into a table index (splitmix64
// finalizer) — integer mixing, never struct hashing.
func memoHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0x9E3779B97F4A7C15
	k ^= k >> 29
	return k
}

// probe returns the slot holding key, or the empty slot where it would
// be inserted.
func (m *DeltaMemo) probe(key uint64) uint64 {
	i := memoHash(key) & m.mask
	for m.ents[i].val != memoUnknown && m.ents[i].key != key {
		i = (i + 1) & m.mask
	}
	return i
}

// store inserts or overwrites the pair's entry, growing the table as
// needed and tracking the occupied code range for flat promotion.
func (m *DeltaMemo) store(qu, qv, val uint64) {
	if 4*(m.used+1) > 3*len(m.ents) {
		m.grow()
	}
	key := qu<<32 | qv
	i := m.probe(key)
	if m.ents[i].val == memoUnknown {
		m.ents[i].key = key
		m.used++
	}
	m.ents[i].val = val
	if qu >= m.width {
		m.width = qu + 1
	}
	if qv >= m.width {
		m.width = qv + 1
	}
}

func (m *DeltaMemo) grow() {
	old := m.ents
	m.ents = make([]memoEnt, 2*len(old))
	m.mask = uint64(len(m.ents) - 1)
	for _, e := range old {
		if e.val == memoUnknown {
			continue
		}
		m.ents[m.probe(e.key)] = e
	}
}

// promoteCheck rebuilds the flat fragment when the occupied code range
// held still across one full stride — the "occupied set stabilizes"
// trigger — and the range fits the size ceiling.
func (m *DeltaMemo) promoteCheck() {
	m.tick = memoPromoteStride
	w := m.width
	if w == m.lastWidth && w > m.fw && w <= memoFlatMaxWidth {
		flat := make([]uint64, w*w)
		for _, e := range m.ents {
			if e.val&memoDetBit == 0 {
				continue
			}
			qu, qv := e.key>>32, e.key&(1<<32-1)
			if qu < w && qv < w {
				flat[qu*w+qv] = e.val
			}
		}
		m.flat, m.fw = flat, w
	}
	m.lastWidth = w
}

// Delta resolves the pair through the memo: cached deterministic pairs
// return in O(1) with no rule evaluation; first sights, randomized
// pairs, and out-of-range (shard-provisional) codes run the underlying
// closure. Bit-for-bit equivalent to the raw closure in outputs,
// interner side effects, and generator consumption.
func (m *DeltaMemo) Delta(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	if (qu | qv) < m.fw {
		if e := m.flat[qu*m.fw+qv]; e&memoDetBit != 0 {
			return e >> 31 & (memoCodeBound - 1), e & (memoCodeBound - 1)
		}
	}
	if (qu | qv) >= memoCodeBound {
		return m.delta(qu, qv, r)
	}
	if m.tick--; m.tick <= 0 {
		m.promoteCheck()
	}
	i := m.probe(qu<<32 | qv)
	switch e := m.ents[i].val; {
	case e&memoDetBit != 0:
		return e >> 31 & (memoCodeBound - 1), e & (memoCodeBound - 1)
	case e == memoRand || e == memoWide:
		return m.delta(qu, qv, r)
	case e == memoUnknown && m.rand(qu, qv):
		m.store(qu, qv, memoRand)
		return m.delta(qu, qv, r)
	}
	// First resolution of a deterministic pair (unknown or pending):
	// run the closure — interning fresh successors exactly as the
	// unmemoized spec would at this point — and cache the code pair.
	a, b := m.delta(qu, qv, r)
	if (a | b) < memoCodeBound {
		m.store(qu, qv, memoDetBit|a<<31|b)
	} else {
		m.store(qu, qv, memoWide)
	}
	return a, b
}

// Randomized reports the memoized claim predicate. A deterministic
// verdict parks the pair as pending without resolving successors, so
// classification alone never interns.
func (m *DeltaMemo) Randomized(qu, qv uint64) bool {
	if (qu | qv) >= memoCodeBound {
		return m.rand(qu, qv)
	}
	i := m.probe(qu<<32 | qv)
	switch m.ents[i].val {
	case memoUnknown:
		if m.rand(qu, qv) {
			m.store(qu, qv, memoRand)
			return true
		}
		m.store(qu, qv, memoPending)
		return false
	case memoRand:
		return true
	default: // pending, wide, or resolved det: known deterministic
		return false
	}
}

// DeltaDet exposes the deterministic fragment in the batch planner's
// shape — one probe answers both the classification and the successor
// pair, replacing the adapter's separate Randomized + Delta(nil) calls.
func (m *DeltaMemo) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	if (qu | qv) < m.fw {
		if e := m.flat[qu*m.fw+qv]; e&memoDetBit != 0 {
			return e >> 31 & (memoCodeBound - 1), e & (memoCodeBound - 1), true
		}
	}
	if (qu | qv) >= memoCodeBound {
		if m.rand(qu, qv) {
			return 0, 0, false
		}
		a, b := m.delta(qu, qv, nil)
		return a, b, true
	}
	i := m.probe(qu<<32 | qv)
	switch e := m.ents[i].val; {
	case e&memoDetBit != 0:
		return e >> 31 & (memoCodeBound - 1), e & (memoCodeBound - 1), true
	case e == memoRand:
		return 0, 0, false
	case e == memoWide:
		a, b := m.delta(qu, qv, nil)
		return a, b, true
	case e == memoUnknown && m.rand(qu, qv):
		m.store(qu, qv, memoRand)
		return 0, 0, false
	}
	a, b := m.delta(qu, qv, nil)
	if (a | b) < memoCodeBound {
		m.store(qu, qv, memoDetBit|a<<31|b)
	} else {
		m.store(qu, qv, memoWide)
	}
	return a, b, true
}

// Pairs returns the number of code pairs the memo has classified or
// resolved — the discovered fragment's size.
func (m *DeltaMemo) Pairs() int { return m.used }

// Promoted reports whether the memo has built its flat dense fragment.
func (m *DeltaMemo) Promoted() bool { return m.fw > 0 }

package sim

import (
	"errors"
	"fmt"

	"popcount/internal/rng"
)

// ErrScheduler marks a scheduler whose parameters are invalid for the
// population it is asked to schedule: a biased hot index outside
// [0, n), a torus over a population with no 2-D factorization, a
// Kronecker graph with fewer vertices than agents. Engines probe for
// SchedulerValidator at construction so these surface as errors
// instead of panics deep inside a trial.
var ErrScheduler = errors.New("sim: invalid scheduler configuration")

// SchedulerValidator is implemented by schedulers whose parameters can
// be invalid for a given population size. NewEngine and NewCountEngine
// call Validate(n) before the first step and refuse construction on
// error.
type SchedulerValidator interface {
	Validate(n int) error
}

// SchedulerSnapshotter is implemented by non-uniform schedulers whose
// internal state has a deterministic serialized form. A scheduler that
// implements it can ride in PSNA snapshots: Engine.Snapshot appends
// SchedulerState() after the fault section, and Engine.Restore feeds
// the bytes back through RestoreSchedulerState so a resumed run
// replays bit-for-bit. Schedulers without it (arbitrary closures) stay
// refused by the snapshot layer.
type SchedulerSnapshotter interface {
	SchedulerState() []byte
	RestoreSchedulerState(state []byte) error
}

// GraphRand is the randomness a graph scheduler draws from. It is the
// intersection of *rng.Rand and the public popcount.Rand, so the graph
// sampling logic exists once and both the engine path and the public
// scheduler path share it.
type GraphRand interface {
	Uint64() uint64
	Intn(n int) int
	Float64() float64
	Bool() bool
}

// GraphKind selects the interaction-graph family of a GraphScheduler.
type GraphKind uint8

const (
	// GraphKindRing is the cycle C_n: agent i interacts with i±1 mod n.
	GraphKindRing GraphKind = iota + 1
	// GraphKindTorus is the 2-D torus on the most-square rows×cols
	// factorization of n: agent (r, c) interacts with its four
	// axis-aligned neighbors, wrapping at the edges.
	GraphKindTorus
	// GraphKindKron is a stochastic-Kronecker (R-MAT) random graph:
	// kronEdgeFactor·n edges sampled by K-level quadrant descent over
	// the 2×2 initiator matrix, vertex ids folded mod n, self-loops
	// rewired to the successor vertex, stored in CSR form for O(1)
	// directed-edge draws.
	GraphKindKron
)

// String names the graph kind for error messages and the canonical
// scheduler spec form.
func (k GraphKind) String() string {
	switch k {
	case GraphKindRing:
		return "ring"
	case GraphKindTorus:
		return "torus"
	case GraphKindKron:
		return "kron"
	default:
		return fmt.Sprintf("GraphKind(%d)", uint8(k))
	}
}

// DefaultKronInitiator is the Graph500 reference initiator matrix
// (a, b, c, d): heavy self-similar clustering with a power-law degree
// tail, the standard parameterization in the R-MAT literature.
var DefaultKronInitiator = [4]float64{0.57, 0.19, 0.19, 0.05}

// kronEdgeFactor is the sampled undirected edge count per vertex
// (Graph500 uses 16; 8 keeps the CSR arrays compact while staying far
// above the ~½·log₂ n / vertex connectivity threshold of the
// connected regime characterized by Łuczak & Tabor).
const kronEdgeFactor = 8

// maxKronN bounds Kronecker populations so the int32 CSR arrays
// (2·kronEdgeFactor·n entries) stay well inside addressable memory.
const maxKronN = 1 << 26

// GraphScheduler restricts interactions to the edges of an interaction
// graph. Next draws a uniform random directed edge (u, v) of the
// graph; ring and torus neighborhoods are computed arithmetically,
// Kronecker graphs are sampled once (per trial, or once globally when
// Seed is pinned) and stored in CSR form.
//
// The zero value is invalid; set Kind. For GraphKindKron, K is the
// Kronecker recursion depth (graph has 2^K vertices before folding
// mod n), Initiator the 2×2 probability matrix in row-major (a, b, c,
// d) order (the zero value selects DefaultKronInitiator), and Seed the
// graph seed — 0 draws a fresh graph seed from the trial's scheduler
// RNG at the first Next call (so every trial sees an independent
// graph, yet the run stays a pure function of the trial seed), any
// other value pins one graph across all trials.
//
// A GraphScheduler is single-goroutine state, like every Scheduler:
// build one per trial (TrialOptions.MakeScheduler does).
type GraphScheduler struct {
	Kind      GraphKind
	K         int
	Initiator [4]float64
	Seed      uint64

	// Lazily built adjacency state, a pure function of (Kind, K,
	// Initiator, graphSeed, n).
	n          int
	built      bool
	seeded     bool
	graphSeed  uint64
	rows, cols int
	off        []int32 // CSR row offsets, len n+1
	adj        []int32 // edge targets, len 2·kronEdgeFactor·n
	esrc       []int32 // edge sources (parallel to adj), for O(1) edge draws
}

// Next implements Scheduler.
func (s *GraphScheduler) Next(n int, r *rng.Rand) (u, v int) {
	return s.NextPair(n, r)
}

// NextPair draws a uniform random directed edge of the interaction
// graph. It is Next generalized over the randomness source so the
// public popcount scheduler wrapper can share the exact sampling
// logic (and hence the exact draw sequence) with the engine.
func (s *GraphScheduler) NextPair(n int, r GraphRand) (u, v int) {
	if !s.built || s.n != n {
		s.build(n, r)
	}
	switch s.Kind {
	case GraphKindRing:
		u = r.Intn(n)
		if r.Bool() {
			return u, (u + 1) % n
		}
		return u, (u + n - 1) % n
	case GraphKindTorus:
		u = r.Intn(n)
		row, col := u/s.cols, u%s.cols
		switch r.Intn(4) {
		case 0:
			col = (col + 1) % s.cols
		case 1:
			col = (col + s.cols - 1) % s.cols
		case 2:
			row = (row + 1) % s.rows
		default:
			row = (row + s.rows - 1) % s.rows
		}
		return u, row*s.cols + col
	default:
		e := r.Intn(len(s.adj))
		return int(s.esrc[e]), int(s.adj[e])
	}
}

// build materializes the adjacency state for population n. The
// parameters were validated at engine construction, so failing here is
// a programming bug.
func (s *GraphScheduler) build(n int, r GraphRand) {
	if err := s.Validate(n); err != nil {
		panic(err)
	}
	s.n = n
	switch s.Kind {
	case GraphKindTorus:
		s.rows, s.cols = torusDims(n)
	case GraphKindKron:
		if s.Seed != 0 {
			s.graphSeed, s.seeded = s.Seed, true
		} else if !s.seeded {
			// One draw from the trial's scheduler stream seeds the graph;
			// the position of the draw (before any pair) is part of the
			// snapshot contract, so a restored run re-draws identically.
			s.graphSeed, s.seeded = r.Uint64(), true
		}
		s.buildKron(n)
	}
	s.built = true
}

// buildKron samples kronEdgeFactor·n edges by R-MAT quadrant descent
// and stores both orientations of each in CSR form.
func (s *GraphScheduler) buildKron(n int) {
	g := rng.New(s.graphSeed)
	init := s.Initiator
	if init == ([4]float64{}) {
		init = DefaultKronInitiator
	}
	sum := init[0] + init[1] + init[2] + init[3]
	ta := init[0] / sum
	tb := ta + init[1]/sum
	tc := tb + init[2]/sum
	m := kronEdgeFactor * n
	us := make([]int32, m)
	vs := make([]int32, m)
	for e := 0; e < m; e++ {
		var u, v int
		for level := 0; level < s.K; level++ {
			x := g.Float64()
			var ub, vb int
			switch {
			case x < ta: // quadrant a: (0, 0)
			case x < tb: // quadrant b: (0, 1)
				vb = 1
			case x < tc: // quadrant c: (1, 0)
				ub = 1
			default: // quadrant d: (1, 1)
				ub, vb = 1, 1
			}
			u = u<<1 | ub
			v = v<<1 | vb
		}
		u, v = u%n, v%n
		if u == v {
			// Fold collisions onto the successor so the sampled graph
			// stays loop-free (self-pairs are not interactions).
			v = (v + 1) % n
		}
		us[e], vs[e] = int32(u), int32(v)
	}
	// CSR over both orientations: 2m directed edges.
	deg := make([]int32, n+1)
	for e := 0; e < m; e++ {
		deg[us[e]+1]++
		deg[vs[e]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	s.off = deg
	s.adj = make([]int32, 2*m)
	s.esrc = make([]int32, 2*m)
	cur := make([]int32, n)
	copy(cur, s.off[:n])
	for e := 0; e < m; e++ {
		u, v := us[e], vs[e]
		s.esrc[cur[u]], s.adj[cur[u]] = u, v
		cur[u]++
		s.esrc[cur[v]], s.adj[cur[v]] = v, u
		cur[v]++
	}
}

// Validate implements SchedulerValidator.
func (s *GraphScheduler) Validate(n int) error {
	switch s.Kind {
	case GraphKindRing:
		if n < 2 {
			return fmt.Errorf("%w: ring needs n ≥ 2, got %d", ErrScheduler, n)
		}
	case GraphKindTorus:
		if n < 4 {
			return fmt.Errorf("%w: torus needs n ≥ 4, got %d", ErrScheduler, n)
		}
		if rows, _ := torusDims(n); rows < 2 {
			return fmt.Errorf("%w: torus needs a composite population, %d is prime", ErrScheduler, n)
		}
	case GraphKindKron:
		if s.K < 1 || s.K > 30 {
			return fmt.Errorf("%w: Kronecker depth %d outside [1, 30]", ErrScheduler, s.K)
		}
		if n < 2 {
			return fmt.Errorf("%w: Kronecker graph needs n ≥ 2, got %d", ErrScheduler, n)
		}
		if n > maxKronN {
			return fmt.Errorf("%w: Kronecker population %d exceeds limit %d", ErrScheduler, n, maxKronN)
		}
		if s.K < 31 && n > 1<<s.K {
			return fmt.Errorf("%w: Kronecker graph has 2^%d vertices, fewer than n=%d", ErrScheduler, s.K, n)
		}
		init := s.Initiator
		if init == ([4]float64{}) {
			init = DefaultKronInitiator
		}
		var sum float64
		for i, p := range init {
			if p < 0 || p != p || p > 1e18 {
				return fmt.Errorf("%w: Kronecker initiator entry %d is %v", ErrScheduler, i, p)
			}
			sum += p
		}
		if sum <= 0 {
			return fmt.Errorf("%w: Kronecker initiator sums to zero", ErrScheduler)
		}
		if init[1]+init[2] <= 0 {
			// All mass on the diagonal quadrants folds every edge onto
			// u == v: no off-diagonal mass means no productive edges.
			return fmt.Errorf("%w: Kronecker initiator needs off-diagonal mass (b+c > 0)", ErrScheduler)
		}
	default:
		return fmt.Errorf("%w: unknown graph kind %d", ErrScheduler, s.Kind)
	}
	return nil
}

// torusDims returns the most-square rows×cols factorization of n with
// rows ≤ cols (rows is the largest divisor of n at most √n).
func torusDims(n int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

// SchedulerState implements SchedulerSnapshotter. Ring and torus
// schedulers are stateless (the encoded seed bytes are zero); a
// Kronecker scheduler's whole state is whether its graph seed has
// been drawn plus the seed itself — the CSR arrays are a pure
// function of it and are rebuilt lazily after restore.
func (s *GraphScheduler) SchedulerState() []byte {
	b := make([]byte, 9)
	if s.seeded {
		b[0] = 1
		for i := 0; i < 8; i++ {
			b[1+i] = byte(s.graphSeed >> (8 * i))
		}
	}
	return b
}

// RestoreSchedulerState implements SchedulerSnapshotter.
func (s *GraphScheduler) RestoreSchedulerState(state []byte) error {
	if len(state) != 9 || state[0] > 1 {
		return fmt.Errorf("%w: malformed graph scheduler state", ErrSnapshotFormat)
	}
	s.seeded = state[0] == 1
	s.graphSeed = 0
	for i := 0; i < 8; i++ {
		s.graphSeed |= uint64(state[1+i]) << (8 * i)
	}
	s.built = false
	return nil
}

// The fault plane: deterministic, seed-reproducible fault schedules
// applied to a running engine at the spec layer.
//
// A FaultPlan describes three fault families over the interaction
// clock — transient state corruption (single bursts and a Poisson-rate
// stream, resetting agents to spec-chosen init states or to random
// occupied codes), population churn (agents leaving mid-run, each
// replaced by a fresh agent in a fresh init state, so n is conserved),
// and adversarial interactions (stale-pair replay, initiator bias, and
// a corruption-timed adversary that strikes at the first converged
// poll). Faults are code-to-code transformations over the spec's state
// domain, so every engine form executes the same schedule: the
// agent-array engine reassigns sampled agents, the count engine moves
// counts between states with one multivariate-hypergeometric victim
// draw over the occupied configuration (the batched engine shares it —
// epochs are truncated at fault times by the step splitter), and both
// remain conformant — bit-for-bit against themselves across
// snapshot/restore, distributionally against each other.
//
// Determinism: the whole schedule (event times, sizes, kinds) is
// compiled up front from the plan's own RNG stream, seeded from
// plan.Seed mixed with the engine seed — equal (plan, Config) pairs
// produce the identical schedule on every engine form, and different
// trials of an ensemble decorrelate automatically. Fault randomness
// (victims, replacement states, adversarial coins) is drawn from the
// same dedicated stream, never from the engine's scheduler RNG, so
// enabling a fault plan does not perturb the underlying trajectory
// between fault times.
//
// Recovery instrumentation rides on the convergence poll: every
// applied corruption/churn event opens a pending-recovery window, the
// next converged poll closes it (FaultStats.Reconvergences and the
// reconvergence times), and for protocols with an error predicate
// (the stable hybrids) the latency from first damage to the raised
// error flag is recorded once (FaultStats.ErrorLatency).
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"popcount/internal/rng"
)

// ErrFaultPlan is returned for a structurally invalid fault plan, or
// when a fault plan is requested for a protocol that is not spec-backed
// (fault transformations are defined over a Spec's state domain).
var ErrFaultPlan = errors.New("sim: invalid fault plan")

// AdversaryKind selects the adversarial interaction model of a
// FaultPlan.
type AdversaryKind uint8

const (
	// AdversaryNone disables adversarial interactions.
	AdversaryNone AdversaryKind = iota
	// AdversaryStaleReplay replays a previously recorded interaction
	// pair: at every adversary event the recorded (initiator, responder)
	// state pair is forced to interact again — if both states are still
	// occupied — and a fresh pair is recorded for the next replay. It
	// models a scheduler acting on stale configuration information.
	AdversaryStaleReplay
	// AdversaryInitiatorBias forces an interaction whose initiator is
	// drawn from the plurality (most populated) state, with the
	// responder uniform over the remaining agents — a scheduler biased
	// toward the majority.
	AdversaryInitiatorBias
	// AdversaryConvergence is the corruption-timed adversary: it waits
	// for the first converged poll and corrupts AdversaryAgents agents
	// at that moment (to random occupied codes when CorruptRandom, to
	// fresh init states otherwise). The run then continues to genuine
	// re-convergence — the detect-and-restart measurement for the
	// stable hybrids.
	AdversaryConvergence
)

// String returns the adversary kind's name.
func (a AdversaryKind) String() string {
	switch a {
	case AdversaryNone:
		return "none"
	case AdversaryStaleReplay:
		return "stale-replay"
	case AdversaryInitiatorBias:
		return "initiator-bias"
	case AdversaryConvergence:
		return "convergence"
	default:
		return fmt.Sprintf("AdversaryKind(%d)", int(a))
	}
}

// FaultBurst is one scheduled corruption burst: at interaction At,
// Agents agents (drawn uniformly without replacement) are reset — to
// random occupied codes when Random, to fresh init states otherwise.
type FaultBurst struct {
	At     int64
	Agents int
	Random bool
}

// FaultChurn is one scheduled churn event: at interaction At, Agents
// agents leave the population and are replaced by fresh agents in
// fresh init states, conserving n.
type FaultChurn struct {
	At     int64
	Agents int
}

// FaultPlan is a deterministic, seed-reproducible fault schedule.
// The zero value is a valid empty plan (no faults).
//
// Rates are expressed per n interactions — CorruptRate 1.0 means one
// corruption event per n interactions in expectation — so a plan keeps
// its meaning across population sizes. Event times are drawn once, at
// engine construction, from a dedicated RNG stream seeded by Seed
// mixed with Config.Seed: the same plan and engine seed yield the
// identical schedule on every engine form.
type FaultPlan struct {
	// Seed decorrelates the fault stream from the scheduler stream. Two
	// runs with equal Config.Seed but different plan seeds see different
	// schedules.
	Seed uint64

	// Bursts are scheduled one-off corruption bursts.
	Bursts []FaultBurst
	// CorruptRate, when positive, adds a Poisson stream of corruption
	// events (expected events per n interactions), each resetting
	// CorruptAgents agents.
	CorruptRate float64
	// CorruptAgents sizes rate-driven and convergence-adversary
	// corruption events (default 1).
	CorruptAgents int
	// CorruptRandom selects random occupied codes as corruption targets
	// for rate-driven and convergence-adversary events (fresh init
	// states otherwise).
	CorruptRandom bool

	// Churn are scheduled one-off churn events.
	Churn []FaultChurn
	// ChurnRate, when positive, adds a Poisson stream of churn events
	// (expected events per n interactions), each replacing ChurnAgents
	// agents.
	ChurnRate float64
	// ChurnAgents sizes rate-driven churn events (default 1).
	ChurnAgents int

	// Adversary selects the adversarial interaction model.
	Adversary AdversaryKind
	// AdversaryRate is the Poisson rate of forced interactions
	// (expected events per n interactions) for AdversaryStaleReplay and
	// AdversaryInitiatorBias; it must be positive for those kinds and is
	// ignored otherwise.
	AdversaryRate float64
	// AdversaryAgents sizes the convergence adversary's corruption
	// strike (default 1). The replay and bias adversaries force one
	// interaction per event and ignore it.
	AdversaryAgents int
}

// Enabled reports whether the plan schedules any faults.
func (p *FaultPlan) Enabled() bool {
	return p != nil && (len(p.Bursts) > 0 || len(p.Churn) > 0 ||
		p.CorruptRate > 0 || p.ChurnRate > 0 || p.Adversary != AdversaryNone)
}

// Validate checks the plan's structural invariants against a population
// of n agents. All errors wrap ErrFaultPlan.
func (p *FaultPlan) Validate(n int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrFaultPlan}, args...)...)
	}
	checkRate := func(name string, rate float64) error {
		if rate < 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			return bad("%s %v is not a finite non-negative rate", name, rate)
		}
		return nil
	}
	checkAgents := func(name string, agents int) error {
		if agents < 0 || agents > n {
			return bad("%s %d outside [0, n=%d]", name, agents, n)
		}
		return nil
	}
	for i, b := range p.Bursts {
		if b.At < 0 {
			return bad("burst %d at negative interaction %d", i, b.At)
		}
		if b.Agents < 1 || b.Agents > n {
			return bad("burst %d corrupts %d agents, want 1..n=%d", i, b.Agents, n)
		}
	}
	for i, c := range p.Churn {
		if c.At < 0 {
			return bad("churn %d at negative interaction %d", i, c.At)
		}
		if c.Agents < 1 || c.Agents > n {
			return bad("churn %d replaces %d agents, want 1..n=%d", i, c.Agents, n)
		}
	}
	if err := checkRate("corrupt rate", p.CorruptRate); err != nil {
		return err
	}
	if err := checkRate("churn rate", p.ChurnRate); err != nil {
		return err
	}
	if err := checkRate("adversary rate", p.AdversaryRate); err != nil {
		return err
	}
	if err := checkAgents("corrupt agents", p.CorruptAgents); err != nil {
		return err
	}
	if err := checkAgents("churn agents", p.ChurnAgents); err != nil {
		return err
	}
	if err := checkAgents("adversary agents", p.AdversaryAgents); err != nil {
		return err
	}
	switch p.Adversary {
	case AdversaryNone, AdversaryConvergence:
	case AdversaryStaleReplay, AdversaryInitiatorBias:
		if p.AdversaryRate <= 0 {
			return bad("adversary %v needs a positive adversary rate", p.Adversary)
		}
	default:
		return bad("unknown adversary kind %d", int(p.Adversary))
	}
	return nil
}

// Fault event kinds, in tie-break order for events scheduled at the
// same interaction.
const (
	evCorrupt uint8 = iota
	evChurn
	evAdversary
)

// faultEvent is one compiled schedule entry: at interaction `at`, apply
// the fault. Events never advance the interaction clock.
type faultEvent struct {
	at     int64
	kind   uint8
	agents int
	random bool
}

// maxFaultEvents bounds the compiled schedule: a rate high enough to
// exceed it (a million events) signals a plan that would spend the
// whole run inside fault application.
const maxFaultEvents = 1 << 20

// FaultStats are the fault plane's deterministic run counters,
// including the recovery-time instrumentation.
type FaultStats struct {
	// Events counts applied fault events of every kind.
	Events int64
	// Corrupted and Churned count affected agents (corruption bursts
	// and rate events; churn replacements).
	Corrupted int64
	Churned   int64
	// Forced counts adversarial interactions actually forced (a stale
	// replay whose recorded pair has died is an event but not a forced
	// interaction).
	Forced int64
	// Reconvergences counts completed recovery cycles: a corruption or
	// churn event opens a pending window, the next converged poll
	// closes it. ReconvergeTotal and ReconvergeMax aggregate the
	// window lengths in interactions (mean = total/count).
	Reconvergences  int64
	ReconvergeTotal int64
	ReconvergeMax   int64
	// ErrorLatency is the number of interactions from the first
	// corruption or churn event to the first poll at which the
	// protocol's error predicate held, or -1 while undetected
	// (protocols without error detection never detect).
	ErrorLatency int64
}

// faultState is the per-engine runtime of a compiled fault plan.
type faultState struct {
	plan   FaultPlan
	n      int64
	r      *rng.Rand // dedicated fault stream; never the scheduler RNG
	events []faultEvent
	cursor int

	// Stale-replay adversary: the recorded pair awaiting replay.
	staleSet       bool
	staleU, staleV uint64

	// Convergence adversary: fired once.
	convFired bool

	// Recovery instrumentation.
	pendingSince int64 // damage awaiting a converged poll, -1 when none
	firstCorrupt int64 // interaction of the first damage event, -1 before

	stats FaultStats
}

// compileFaults validates plan and compiles its full event schedule for
// a population of n agents under the (normalized) cfg. The schedule
// covers MaxInteractions plus the confirmation window.
func compileFaults(plan *FaultPlan, n int, cfg Config) (*faultState, error) {
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	fs := &faultState{
		plan:         *plan,
		n:            int64(n),
		r:            rng.New(plan.Seed ^ (cfg.Seed * 0x9e3779b97f4a7c15)),
		pendingSince: -1,
		firstCorrupt: -1,
	}
	fs.stats.ErrorLatency = -1
	horizon := cfg.MaxInteractions + cfg.ConfirmWindow
	for _, b := range plan.Bursts {
		if b.At < horizon {
			fs.events = append(fs.events, faultEvent{at: b.At, kind: evCorrupt, agents: b.Agents, random: b.Random})
		}
	}
	for _, c := range plan.Churn {
		if c.At < horizon {
			fs.events = append(fs.events, faultEvent{at: c.At, kind: evChurn, agents: c.Agents})
		}
	}
	// The Poisson streams are drawn in a fixed order so the schedule is
	// a pure function of (plan, n, cfg.Seed, horizon).
	def := func(agents int) int {
		if agents < 1 {
			return 1
		}
		return agents
	}
	if err := fs.poissonStream(evCorrupt, plan.CorruptRate, def(plan.CorruptAgents), plan.CorruptRandom, horizon); err != nil {
		return nil, err
	}
	if err := fs.poissonStream(evChurn, plan.ChurnRate, def(plan.ChurnAgents), false, horizon); err != nil {
		return nil, err
	}
	if plan.Adversary == AdversaryStaleReplay || plan.Adversary == AdversaryInitiatorBias {
		if err := fs.poissonStream(evAdversary, plan.AdversaryRate, 1, false, horizon); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(fs.events, func(i, j int) bool {
		a, b := fs.events[i], fs.events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.kind < b.kind
	})
	return fs, nil
}

// poissonStream appends one Poisson event stream with the given rate
// (expected events per n interactions) up to the horizon. Gaps are
// exponential with mean n/rate, floored at one interaction.
func (fs *faultState) poissonStream(kind uint8, ratePerN float64, agents int, random bool, horizon int64) error {
	if ratePerN <= 0 {
		return nil
	}
	mean := float64(fs.n) / ratePerN
	tf := 0.0
	for {
		u := (float64(fs.r.Uint64()>>11) + 1) / (1 << 53) // uniform in (0, 1]
		g := -math.Log(u) * mean
		if g < 1 {
			g = 1
		}
		tf += g
		if !(tf < float64(horizon)) {
			return nil
		}
		if len(fs.events) >= maxFaultEvents {
			return fmt.Errorf("%w: schedule exceeds %d events over %d interactions — lower the rates", ErrFaultPlan, maxFaultEvents, horizon)
		}
		fs.events = append(fs.events, faultEvent{at: int64(tf), kind: kind, agents: agents, random: random})
	}
}

// advAgents sizes the convergence adversary's corruption strike.
func (fs *faultState) advAgents() int {
	if a := fs.plan.AdversaryAgents; a >= 1 {
		return a
	}
	return 1
}

// noteApplied updates the fault counters and recovery windows after an
// event has been applied by the engine.
func (fs *faultState) noteApplied(ev faultEvent, t int64) {
	fs.stats.Events++
	switch ev.kind {
	case evCorrupt:
		fs.stats.Corrupted += int64(ev.agents)
		fs.markDamage(t)
	case evChurn:
		fs.stats.Churned += int64(ev.agents)
		fs.markDamage(t)
	}
}

// markDamage opens the pending-recovery window (and pins the first
// damage time for the error-latency measurement).
func (fs *faultState) markDamage(t int64) {
	if fs.pendingSince < 0 {
		fs.pendingSince = t
	}
	if fs.firstCorrupt < 0 {
		fs.firstCorrupt = t
	}
}

// onPoll runs the fault plane's convergence-poll hooks: the
// corruption-timed adversary, recovery-window bookkeeping, and the
// error-flag latency probe. It returns the (possibly re-evaluated)
// convergence verdict.
func (fs *faultState) onPoll(c *engineCore, ops engineOps, conv bool) bool {
	if conv && fs.plan.Adversary == AdversaryConvergence && !fs.convFired {
		fs.convFired = true
		ev := faultEvent{at: c.t, kind: evCorrupt, agents: fs.advAgents(), random: fs.plan.CorruptRandom}
		ops.applyFault(ev)
		fs.noteApplied(ev, c.t)
		// Re-evaluate so the driving loop continues to genuine
		// re-convergence — the detect-and-restart measurement.
		conv = ops.Converged()
	}
	if conv && fs.pendingSince >= 0 {
		d := c.t - fs.pendingSince
		fs.stats.Reconvergences++
		fs.stats.ReconvergeTotal += d
		if d > fs.stats.ReconvergeMax {
			fs.stats.ReconvergeMax = d
		}
		fs.pendingSince = -1
	}
	if fs.firstCorrupt >= 0 && fs.stats.ErrorLatency < 0 && ops.faultErrored() {
		fs.stats.ErrorLatency = c.t - fs.firstCorrupt
	}
	return conv
}

// stepFaulted drives raw stepping through the compiled schedule: every
// event due at the current clock is applied (events never advance the
// clock), and raw runs are truncated at the next event time. An event
// landing exactly on a Step boundary applies at the start of the next
// Step call — after the intervening convergence poll — identically on
// every engine form.
func (c *engineCore) stepFaulted(count int64, raw func(int64), ops engineOps) {
	fs := c.fs
	for count > 0 {
		for fs.cursor < len(fs.events) && fs.events[fs.cursor].at <= c.t {
			ev := fs.events[fs.cursor]
			fs.cursor++
			ops.applyFault(ev)
			fs.noteApplied(ev, c.t)
		}
		run := count
		if fs.cursor < len(fs.events) {
			if d := fs.events[fs.cursor].at - c.t; d < run {
				run = d
			}
		}
		raw(run)
		count -= run
	}
}

// targetDraw returns a closure drawing replacement state codes for one
// corruption or churn event. Random corruption draws uniformly over the
// codes occupied when the event struck (the caller freezes the list);
// everything else — churn joins and spec-chosen corruption — draws a
// fresh state from the spec's initial configuration, exactly as a
// newly joined agent would initialize.
func (fs *faultState) targetDraw(spec *Spec, occupied []uint64, ev faultEvent) func() uint64 {
	if ev.kind == evCorrupt && ev.random {
		return func() uint64 { return occupied[fs.r.Intn(len(occupied))] }
	}
	init := spec.initCounts(fs.r)
	codes := sortedCodes(init)
	cum := make([]int64, len(codes))
	var total int64
	for i, c := range codes {
		total += init[c]
		cum[i] = total
	}
	return func() uint64 {
		z := fs.r.Int64n(total)
		i := sort.Search(len(cum), func(i int) bool { return cum[i] > z })
		return codes[i]
	}
}

// ---- Agent-engine fault application ----------------------------------

// occupiedCodes returns the distinct codes currently occupied, in
// first-occurrence order over the agent array. Array order — not code
// magnitude — keeps the draw stable across snapshot/restore renaming.
func (p *SpecAgent) occupiedCodes() []uint64 {
	seen := make(map[uint64]bool, len(p.view.counts))
	out := make([]uint64, 0, len(p.view.counts))
	for _, c := range p.code {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// findAgent returns a uniformly drawn agent index currently in the
// given state, excluding index excl (-1 for none), or -1 if no such
// agent exists.
func (p *SpecAgent) findAgent(code uint64, excl int, fr *rng.Rand) int {
	cnt := p.view.counts[code]
	if excl >= 0 && p.code[excl] == code {
		cnt--
	}
	if cnt <= 0 {
		return -1
	}
	k := fr.Int64n(cnt)
	for i, c := range p.code {
		if c == code && i != excl {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// pluralityCode returns the code of the most populated state, ties
// broken by first occurrence in the agent array.
func (p *SpecAgent) pluralityCode() uint64 {
	var best uint64
	bestCnt := int64(-1)
	for _, c := range p.code {
		if cnt := p.view.counts[c]; cnt > bestCnt {
			bestCnt, best = cnt, c
		}
	}
	return best
}

// applyFault implements the fault plane on the agent-array engine:
// victims are distinct agents drawn uniformly, reassigned via the spec
// adapter's mirror-repairing move.
func (e *Engine) applyFault(ev faultEvent) {
	fs, sa := e.fs, e.fsa
	fr := fs.r
	if ev.kind == evAdversary {
		if e.forceInteraction() {
			fs.stats.Forced++
		}
		return
	}
	draw := fs.targetDraw(sa.spec, sa.occupiedCodes(), ev)
	// Distinct victims (rejection over the at-most-n agent indices)
	// match the count engine's without-replacement hypergeometric draw.
	seen := make(map[int]bool, ev.agents)
	for k := 0; k < ev.agents; k++ {
		i := fr.Intn(e.n)
		for seen[i] {
			i = fr.Intn(e.n)
		}
		seen[i] = true
		to := draw()
		if from := sa.code[i]; from != to {
			sa.move(i, from, to)
		}
	}
}

// forceInteraction applies one adversarial interaction on the agent
// engine, reporting whether an interaction was actually forced. Coins
// come from the fault stream; the scheduler RNG and the interaction
// clock are untouched.
func (e *Engine) forceInteraction() bool {
	fs, sa := e.fs, e.fsa
	fr := fs.r
	switch fs.plan.Adversary {
	case AdversaryStaleReplay:
		forced := false
		if fs.staleSet {
			u := sa.findAgent(fs.staleU, -1, fr)
			if u >= 0 {
				if v := sa.findAgent(fs.staleV, u, fr); v >= 0 {
					a, b := sa.spec.Delta(fs.staleU, fs.staleV, fr)
					if a != fs.staleU {
						sa.move(u, fs.staleU, a)
					}
					if b != fs.staleV {
						sa.move(v, fs.staleV, b)
					}
					forced = true
				}
			}
		}
		u, v := fr.Pair(e.n)
		fs.staleU, fs.staleV, fs.staleSet = sa.code[u], sa.code[v], true
		return forced
	case AdversaryInitiatorBias:
		u := sa.findAgent(sa.pluralityCode(), -1, fr)
		if u < 0 {
			return false
		}
		v := fr.Intn(e.n - 1)
		if v >= u {
			v++
		}
		qu, qv := sa.code[u], sa.code[v]
		a, b := sa.spec.Delta(qu, qv, fr)
		if a != qu {
			sa.move(u, qu, a)
		}
		if b != qv {
			sa.move(v, qv, b)
		}
		return true
	}
	return false
}

// faultErrored probes the spec's error predicate (engineOps).
func (e *Engine) faultErrored() bool {
	return e.fsa != nil && e.fsa.Errored()
}

// FaultStats returns the fault plane's counters (zero, with
// ErrorLatency -1, when no fault plan is configured).
func (e *Engine) FaultStats() FaultStats {
	if e.fs == nil {
		return FaultStats{ErrorLatency: -1}
	}
	return e.fs.stats
}

// ---- Count-engine fault application ----------------------------------

// applyFault implements the fault plane on the count engine: one
// multivariate-hypergeometric draw over the occupied configuration
// selects the victims without replacement — the configuration-level
// image of drawing distinct agents uniformly — and counts move between
// states through shift, which repairs the samplers, the occupied list
// and the no-op aggregates.
func (e *CountEngine) applyFault(ev faultEvent) {
	fs := e.fs
	fr := fs.r
	if ev.kind == evAdversary {
		if e.forceCountInteraction() {
			fs.stats.Forced++
		}
		return
	}
	// Freeze the occupied configuration: the victim draw and the
	// random-target pool must not see their own mutations. Ascending
	// dense (discovery) order keeps the draw stable across
	// snapshot/restore renaming.
	occ := append([]int(nil), e.occ...)
	counts := make([]int64, len(occ))
	for i, idx := range occ {
		counts[i] = e.c.counts[idx]
	}
	victims := make([]int, 0, ev.agents)
	rem, remTotal := int64(ev.agents), e.n
	for i, idx := range occ {
		if rem <= 0 {
			break
		}
		k := fr.Hypergeometric(rem, counts[i], remTotal)
		remTotal -= counts[i]
		rem -= k
		for j := int64(0); j < k; j++ {
			victims = append(victims, idx)
		}
	}
	var codes []uint64
	if ev.kind == evCorrupt && ev.random {
		codes = make([]uint64, len(occ))
		for i, idx := range occ {
			codes[i] = e.c.codes[idx]
		}
	}
	draw := fs.targetDraw(e.fspec, codes, ev)
	for _, idx := range victims {
		to := draw()
		if e.c.codes[idx] == to {
			continue
		}
		e.shift(idx, -1)
		e.shift(e.stateIndex(to), 1)
	}
}

// pluralityIndex returns the dense index of the most populated state,
// ties broken by lowest dense (discovery) index, or -1 on an empty
// configuration.
func (e *CountEngine) pluralityIndex() int {
	best, bestCnt := -1, int64(0)
	for _, idx := range e.occ {
		if c := e.c.counts[idx]; c > bestCnt {
			best, bestCnt = idx, c
		}
	}
	return best
}

// forceCountInteraction applies one adversarial interaction on the
// count engine (see Engine.forceInteraction).
func (e *CountEngine) forceCountInteraction() bool {
	fs, c := e.fs, e.c
	fr := fs.r
	switch fs.plan.Adversary {
	case AdversaryStaleReplay:
		forced := false
		if fs.staleSet {
			iu, okU := c.index[fs.staleU]
			iv, okV := c.index[fs.staleV]
			if okU && okV {
				alive := (iu != iv && c.counts[iu] > 0 && c.counts[iv] > 0) ||
					(iu == iv && c.counts[iu] >= 2)
				if alive {
					a, b := e.p.Delta(fs.staleU, fs.staleV, fr)
					e.apply(iu, iv, a, b)
					forced = true
				}
			}
		}
		i, j := e.samplePairR(fr)
		fs.staleU, fs.staleV, fs.staleSet = c.codes[i], c.codes[j], true
		return forced
	case AdversaryInitiatorBias:
		i := e.pluralityIndex()
		if i < 0 {
			return false
		}
		j := e.responderIndex(i, fr)
		a, b := e.p.Delta(c.codes[i], c.codes[j], fr)
		e.apply(i, j, a, b)
		return true
	}
	return false
}

// faultErrored probes the spec's error predicate (engineOps).
func (e *CountEngine) faultErrored() bool {
	return e.fspec != nil && e.fspec.Errored != nil && e.fspec.Errored(e.c)
}

// FaultStats returns the fault plane's counters (zero, with
// ErrorLatency -1, when no fault plan is configured).
func (e *CountEngine) FaultStats() FaultStats {
	if e.fs == nil {
		return FaultStats{ErrorLatency: -1}
	}
	return e.fs.stats
}

// ---- Snapshot section -------------------------------------------------

// faultSnap is the decoded fault section of an engine snapshot,
// buffered so a later parse failure leaves the fault state untouched.
type faultSnap struct {
	cursor         int
	rngState       [4]uint64
	staleSet       bool
	staleU, staleV uint64
	convFired      bool
	pendingSince   int64
	firstCorrupt   int64
	stats          FaultStats
}

// snapshot appends the fault plane's runtime state to an engine
// snapshot. The compiled event schedule is not stored — it is a pure
// function of (plan, n, Config) and is recompiled at construction;
// only the cursor, the fault RNG, the stale pair (as portable state
// encodings) and the instrumentation travel.
func (fs *faultState) snapshot(w *snapWriter, enc func(uint64) []byte) {
	w.u32(uint32(fs.cursor))
	for _, s := range fs.r.State() {
		w.u64(s)
	}
	if fs.staleSet {
		w.u8(1)
		w.bytes(enc(fs.staleU))
		w.bytes(enc(fs.staleV))
	} else {
		w.u8(0)
	}
	if fs.convFired {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.i64(fs.pendingSince)
	w.i64(fs.firstCorrupt)
	w.i64(fs.stats.Events)
	w.i64(fs.stats.Corrupted)
	w.i64(fs.stats.Churned)
	w.i64(fs.stats.Forced)
	w.i64(fs.stats.Reconvergences)
	w.i64(fs.stats.ReconvergeTotal)
	w.i64(fs.stats.ReconvergeMax)
	w.i64(fs.stats.ErrorLatency)
}

// readSnapshot parses the fault section into a buffered faultSnap,
// latching failures on r.
func (fs *faultState) readSnapshot(r *snapReader, dec func([]byte) (uint64, error)) faultSnap {
	var s faultSnap
	s.cursor = int(r.u32())
	if r.err == nil && s.cursor > len(fs.events) {
		r.fail("fault cursor %d exceeds the %d scheduled events", s.cursor, len(fs.events))
	}
	for i := range s.rngState {
		s.rngState[i] = r.u64()
	}
	s.staleSet = r.u8() == 1
	if s.staleSet {
		bu := r.bytes()
		bv := r.bytes()
		if r.err == nil {
			var err error
			if s.staleU, err = dec(bu); err != nil {
				r.fail("stale initiator state: %v", err)
			} else if s.staleV, err = dec(bv); err != nil {
				r.fail("stale responder state: %v", err)
			}
		}
	}
	s.convFired = r.u8() == 1
	s.pendingSince = r.i64()
	s.firstCorrupt = r.i64()
	s.stats.Events = r.i64()
	s.stats.Corrupted = r.i64()
	s.stats.Churned = r.i64()
	s.stats.Forced = r.i64()
	s.stats.Reconvergences = r.i64()
	s.stats.ReconvergeTotal = r.i64()
	s.stats.ReconvergeMax = r.i64()
	s.stats.ErrorLatency = r.i64()
	return s
}

// restoreSnap installs a successfully parsed fault section.
func (fs *faultState) restoreSnap(s faultSnap) {
	fs.cursor = s.cursor
	fs.r.SetState(s.rngState)
	fs.staleSet, fs.staleU, fs.staleV = s.staleSet, s.staleU, s.staleV
	fs.convFired = s.convFired
	fs.pendingSince = s.pendingSince
	fs.firstCorrupt = s.firstCorrupt
	fs.stats = s.stats
}

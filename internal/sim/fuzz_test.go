package sim_test

import (
	"runtime"
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/rng"
	"popcount/internal/sim"
)

// fuzzTable is a CountProtocol with an arbitrary deterministic
// transition table over a tiny alphabet, derived from fuzz input. It
// exercises the engine's bookkeeping — state discovery, sampler repair,
// no-op adjacency — on transition structures no hand-written protocol
// has.
type fuzzTable struct {
	n     int
	k     uint64
	table []uint8 // table[qu*k+qv] packs (qu2, qv2) as qu2*k+qv2
}

func newFuzzTable(n int, k uint64, raw []byte) *fuzzTable {
	t := &fuzzTable{n: n, k: k, table: make([]uint8, k*k)}
	for i := range t.table {
		var b uint8
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		}
		t.table[i] = uint8(uint64(b) % (k * k))
	}
	return t
}

func (t *fuzzTable) N() int { return t.n }

func (t *fuzzTable) InitCounts() map[uint64]int64 {
	// Spread the population over the alphabet, all states occupied.
	init := make(map[uint64]int64, t.k)
	per := int64(t.n) / int64(t.k)
	rem := int64(t.n) - per*int64(t.k)
	for q := uint64(0); q < t.k; q++ {
		c := per
		if q == 0 {
			c += rem
		}
		if c > 0 {
			init[q] = c
		}
	}
	return init
}

func (t *fuzzTable) Delta(qu, qv uint64, _ *rng.Rand) (uint64, uint64) {
	packed := uint64(t.table[qu*t.k+qv])
	return packed / t.k, packed % t.k
}

func (t *fuzzTable) SelfLoop(qu, qv uint64) bool {
	a, b := t.Delta(qu, qv, nil)
	return a == qu && b == qv
}

// DeltaDet exposes the fuzz table's (deterministic) transition matrix
// so the batched path exercises the bulk-apply route, not just the
// per-interaction fallback.
func (t *fuzzTable) DeltaDet(qu, qv uint64) (uint64, uint64, bool) {
	a, b := t.Delta(qu, qv, nil)
	return a, b, true
}

// fuzzProto builds the count protocol selected by a fuzz input byte.
func fuzzProto(sel uint8, n int, raw []byte) sim.CountProtocol {
	switch sel % 5 {
	case 0:
		return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true))
	case 1:
		return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, false))
	case 2:
		return sim.NewSpecCount(junta.NewSpec(n))
	case 3:
		return sim.NewSpecCount(baseline.NewGeometricSpec(n))
	default:
		k := uint64(len(raw))%5 + 2 // alphabet size [2, 6]
		return newFuzzTable(n, k, raw)
	}
}

// FuzzCountConservation asserts the agent-conservation invariant
// Σ counts == n after every batch, across the hand-written count
// protocols and random transition tables, on both engine paths.
func FuzzCountConservation(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(500), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), []byte{})
	f.Add(uint64(7), uint16(300), uint16(9999), uint8(2), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(33), uint16(256), uint8(3), []byte{0xff, 0x00})
	f.Add(uint64(3), uint16(17), uint16(77), uint8(4), []byte{0x10, 0x9c, 0x33})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, sel uint8, raw []byte) {
		n := int(nRaw)%1022 + 2 // [2, 1023]
		steps := int64(stepsRaw)%5000 + 1
		p := fuzzProto(sel, n, raw)
		for _, disable := range []bool{false, true} {
			e, err := sim.NewCountEngine(p, sim.Config{Seed: seed, DisableBatch: disable})
			if err != nil {
				t.Fatalf("NewCountEngine: %v", err)
			}
			var done int64
			for batch := int64(1); done < steps; batch = batch*3 + 1 {
				if batch > steps-done {
					batch = steps - done
				}
				e.Step(batch)
				done += batch
				if got := e.Counts().Sum(); got != int64(n) {
					t.Fatalf("Σ counts = %d after %d interactions (disableSkip=%v), want %d",
						got, done, disable, n)
				}
				e.Counts().ForEach(func(code uint64, cnt int64) {
					if cnt < 0 {
						t.Fatalf("negative count %d for state %#x", cnt, code)
					}
				})
				if e.Interactions() != done {
					t.Fatalf("Interactions = %d, want %d", e.Interactions(), done)
				}
			}
		}
	})
}

// FuzzCountBatchEquivalence fuzzes the multinomial batch-stepping mode:
// arbitrary interleavings of batch sizes must conserve Σ counts == n
// with non-negative counts and an exact interaction counter, and — the
// exact-fallback contract — a batch-mode engine stepped only below the
// batching threshold must stay bit-for-bit equal to a seed-matched
// sequential count engine.
func FuzzCountBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint16(1000), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), []byte{})
	f.Add(uint64(7), uint16(800), uint16(60000), uint8(2), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(64), uint16(256), uint8(3), []byte{0xff, 0x00})
	f.Add(uint64(3), uint16(17), uint16(77), uint8(4), []byte{0x10, 0x9c, 0x33})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, sel uint8, raw []byte) {
		n := int(nRaw)%1022 + 2 // [2, 1023]
		steps := int64(stepsRaw)%60000 + 1
		e, err := sim.NewCountEngine(fuzzProto(sel, n, raw),
			sim.Config{Seed: seed, BatchSteps: true})
		if err != nil {
			t.Fatalf("NewCountEngine: %v", err)
		}
		// Uneven interleaving of batch sizes straddling the batching
		// threshold, derived from the raw bytes.
		var done int64
		for i := 0; done < steps; i++ {
			batch := int64(1)
			if len(raw) > 0 {
				batch += int64(raw[i%len(raw)]) * (1 + int64(i)%97)
			} else {
				batch += int64(i) % 257
			}
			if batch > steps-done {
				batch = steps - done
			}
			e.Step(batch)
			done += batch
			if got := e.Counts().Sum(); got != int64(n) {
				t.Fatalf("Σ counts = %d after %d interactions, want %d", got, done, n)
			}
			e.Counts().ForEach(func(code uint64, cnt int64) {
				if cnt < 0 {
					t.Fatalf("negative count %d for state %#x", cnt, code)
				}
			})
			if e.Interactions() != done {
				t.Fatalf("Interactions = %d, want %d", e.Interactions(), done)
			}
		}

		// Exact-fallback contract: below-threshold stepping is bit-for-bit
		// the sequential engine.
		batched, err := sim.NewCountEngine(fuzzProto(sel, n, raw),
			sim.Config{Seed: seed, BatchSteps: true})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := sim.NewCountEngine(fuzzProto(sel, n, raw), sim.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var small int64
		for i := 0; small < 500; i++ {
			// Unsigned arithmetic: a seed >= 2^63 must not flip the
			// modulo negative. step stays in [1, 63] < batchMinTau.
			step := int64(1 + (seed+uint64(i)*7)%63)
			batched.Step(step)
			seq.Step(step)
			small += step
		}
		want := map[uint64]int64{}
		seq.Counts().ForEach(func(code uint64, cnt int64) { want[code] = cnt })
		states := 0
		batched.Counts().ForEach(func(code uint64, cnt int64) {
			states++
			if want[code] != cnt {
				t.Fatalf("state %#x: batched count %d, sequential %d", code, cnt, want[code])
			}
		})
		if states != len(want) {
			t.Fatalf("occupied states differ: batched %d vs sequential %d", states, len(want))
		}
	})
}

// FuzzShardMergeEquivalence fuzzes the sharded batch planner
// (sim.Config.Shards, countshard.go) across random protocols, shard
// counts and batch interleavings. Three contracts: Σ counts == n with
// non-negative counts and an exact interaction counter after every
// batch at any shard count; Shards ≤ 1 is the compatibility stream,
// bit-for-bit identical to the plain serial batched planner; and at a
// fixed shard count ≥ 2 the run — configuration and every engine
// counter — is identical on one core and many.
func FuzzShardMergeEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint16(5000), uint8(0), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), uint8(3), []byte{})
	f.Add(uint64(7), uint16(800), uint16(60000), uint8(2), uint8(6), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(64), uint16(256), uint8(3), uint8(1), []byte{0xff, 0x00})
	f.Add(uint64(3), uint16(17), uint16(77), uint8(4), uint8(7), []byte{0x10, 0x9c, 0x33})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, sel, shardsRaw uint8, raw []byte) {
		n := int(nRaw)%1022 + 2 // [2, 1023]
		steps := int64(stepsRaw)%30000 + 1
		shards := int(shardsRaw)%7 + 2 // [2, 8]

		// run steps a fresh engine through the shared uneven batch
		// interleaving, checking the conservation invariants after every
		// batch, and returns the final configuration and stats.
		run := func(shards int) (map[uint64]int64, sim.EngineStats) {
			e, err := sim.NewCountEngine(fuzzProto(sel, n, raw),
				sim.Config{Seed: seed, BatchSteps: true, Shards: shards})
			if err != nil {
				t.Fatalf("NewCountEngine(shards=%d): %v", shards, err)
			}
			var done int64
			for i := 0; done < steps; i++ {
				batch := int64(1)
				if len(raw) > 0 {
					batch += int64(raw[i%len(raw)]) * (1 + int64(i)%97)
				} else {
					batch += int64(i) % 257
				}
				if batch > steps-done {
					batch = steps - done
				}
				e.Step(batch)
				done += batch
				if got := e.Counts().Sum(); got != int64(n) {
					t.Fatalf("shards=%d: Σ counts = %d after %d interactions, want %d", shards, got, done, n)
				}
				e.Counts().ForEach(func(code uint64, cnt int64) {
					if cnt < 0 {
						t.Fatalf("shards=%d: negative count %d for state %#x", shards, cnt, code)
					}
				})
				if e.Interactions() != done {
					t.Fatalf("shards=%d: Interactions = %d, want %d", shards, e.Interactions(), done)
				}
			}
			counts := map[uint64]int64{}
			e.Counts().ForEach(func(code uint64, cnt int64) { counts[code] = cnt })
			return counts, e.Stats()
		}
		same := func(label string, a, b map[uint64]int64) {
			if len(a) != len(b) {
				t.Fatalf("%s: occupied states differ: %d vs %d", label, len(a), len(b))
			}
			for code, cnt := range a {
				if b[code] != cnt {
					t.Fatalf("%s: state %#x count %d vs %d", label, code, cnt, b[code])
				}
			}
		}

		// Compatibility stream: Shards values ≤ 1 keep the serial planner
		// bit for bit.
		serialCounts, serialStats := run(0)
		compatCounts, compatStats := run(1)
		if compatStats != serialStats {
			t.Fatalf("Shards=1 stats %+v differ from serial %+v", compatStats, serialStats)
		}
		if compatStats.ShardEpochs != 0 {
			t.Fatalf("compatibility mode planned %d sharded epochs", compatStats.ShardEpochs)
		}
		same("Shards=1 vs serial", serialCounts, compatCounts)

		// GOMAXPROCS invariance: the sharded run's trajectory is a
		// function of (protocol, seed, shards), never of the core count.
		prev := runtime.GOMAXPROCS(1)
		c1, s1 := run(shards)
		runtime.GOMAXPROCS(4)
		c4, s4 := run(shards)
		runtime.GOMAXPROCS(prev)
		if s1 != s4 {
			t.Fatalf("shards=%d: stats differ across GOMAXPROCS: 1 core %+v, 4 cores %+v", shards, s1, s4)
		}
		same("GOMAXPROCS 1 vs 4", c1, c4)
	})
}

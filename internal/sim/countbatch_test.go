package sim_test

import (
	"math"
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/sim"
)

// batchCfg returns a batch-stepping config for the given seed.
func batchCfg(seed uint64) sim.Config {
	return sim.Config{Seed: seed, BatchSteps: true}
}

// TestCountBatchConservation steps batch-mode engines in uneven batch
// sizes across every count protocol and asserts Σ counts == n and
// non-negativity after each Step, plus an exact interaction counter.
func TestCountBatchConservation(t *testing.T) {
	const n = 1024
	protos := map[string]func() sim.CountProtocol{
		"epidemic":  func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		"junta":     func() sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(n)) },
		"clock":     func() sim.CountProtocol { return sim.NewSpecCount(clock.NewSpec(n, clock.DefaultM, 16, 3)) },
		"geometric": func() sim.CountProtocol { return sim.NewSpecCount(baseline.NewGeometricSpec(n)) },
	}
	for name, mk := range protos {
		e, err := sim.NewCountEngine(mk(), batchCfg(7))
		if err != nil {
			t.Fatalf("%s: NewCountEngine: %v", name, err)
		}
		var done int64
		for _, batch := range []int64{1, 63, 64, 1000, 4096, 100000, n * n} {
			e.Step(batch)
			done += batch
			if got := e.Counts().Sum(); got != n {
				t.Fatalf("%s: Σ counts = %d after Step(%d), want %d", name, got, batch, n)
			}
			e.Counts().ForEach(func(code uint64, cnt int64) {
				if cnt < 0 {
					t.Fatalf("%s: negative count %d for state %#x", name, cnt, code)
				}
			})
			if e.Interactions() != done {
				t.Fatalf("%s: Interactions = %d, want %d", name, e.Interactions(), done)
			}
		}
	}
}

// TestCountBatchSmallStepsMatchSequential pins the exact-fallback
// contract: Step calls below the batching threshold route through the
// identical sequential code path, so a batch-mode engine stepped only
// in small increments is bit-for-bit equal to a sequential engine under
// the same seed.
func TestCountBatchSmallStepsMatchSequential(t *testing.T) {
	const n = 512
	mk := func() (*sim.CountEngine, *sim.CountEngine) {
		b, err := sim.NewCountEngine(sim.NewSpecCount(baseline.NewGeometricSpec(n)), batchCfg(42))
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.NewCountEngine(sim.NewSpecCount(baseline.NewGeometricSpec(n)), sim.Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return b, s
	}
	batched, seq := mk()
	for _, step := range []int64{1, 7, 31, 63, 63, 50, 13, 63} {
		batched.Step(step)
		seq.Step(step)
	}
	want := map[uint64]int64{}
	seq.Counts().ForEach(func(code uint64, cnt int64) { want[code] = cnt })
	states := 0
	batched.Counts().ForEach(func(code uint64, cnt int64) {
		states++
		if want[code] != cnt {
			t.Fatalf("state %#x: batched count %d, sequential %d", code, cnt, want[code])
		}
	})
	if states != len(want) {
		t.Fatalf("occupied states differ: batched %d vs sequential %d", states, len(want))
	}
}

// TestCountBatchFrozenConfig pins the absorbing behavior: a
// configuration of certain no-ops passes arbitrarily large batches
// without looping per interaction.
func TestCountBatchFrozenConfig(t *testing.T) {
	p := sim.NewSpecCount(epidemic.NewSpec([]int64{5, 5, 5, 5}, true)) // already uniform
	e, err := sim.NewCountEngine(p, batchCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	e.Step(1 << 40)
	if got := e.Interactions(); got != 1<<40 {
		t.Fatalf("Interactions = %d, want %d", got, int64(1)<<40)
	}
	if !e.Converged() {
		t.Fatal("uniform configuration should be converged")
	}
}

// TestCountBatchEquivalence compares batched and sequential count
// engines distributionally: mean convergence times over paired trials
// must agree within the pinned 10% tolerance (they are far within it;
// the modes consume randomness differently so runs are not bit-for-bit
// comparable).
func TestCountBatchEquivalence(t *testing.T) {
	const (
		n      = 1024
		trials = 48
		tol    = 0.10
	)
	protos := map[string]func() sim.CountProtocol{
		"epidemic": func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		"junta":    func() sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(n)) },
	}
	for name, mk := range protos {
		mean := func(batch bool) float64 {
			var sum float64
			for i := 0; i < trials; i++ {
				cfg := sim.Config{Seed: sim.TrialSeed(17, i), CheckEvery: n / 2, BatchSteps: batch}
				res, err := sim.RunCount(mk(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("%s trial %d (batch=%v) did not converge", name, i, batch)
				}
				sum += float64(res.Interactions)
			}
			return sum / trials
		}
		batched, seq := mean(true), mean(false)
		gap := math.Abs(batched-seq) / seq
		t.Logf("%s: sequential mean T_C = %.0f, batched mean T_C = %.0f, relative gap %.3f",
			name, seq, batched, gap)
		if gap > tol {
			t.Errorf("%s: batched mean %.0f vs sequential mean %.0f (gap %.3f > %.2f)",
				name, batched, seq, gap, tol)
		}
	}
}

// TestCountBatchReproducible pins seed determinism of the batched mode.
func TestCountBatchReproducible(t *testing.T) {
	run := func() (sim.Result, map[uint64]int64) {
		e, err := sim.NewCountEngine(sim.NewSpecCount(junta.NewSpec(2048)), batchCfg(99))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		final := map[uint64]int64{}
		e.Counts().ForEach(func(code uint64, cnt int64) { final[code] = cnt })
		return res, final
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("final configurations differ: %v vs %v", f1, f2)
	}
	for code, cnt := range f1 {
		if f2[code] != cnt {
			t.Fatalf("final configurations differ at %#x: %d vs %d", code, cnt, f2[code])
		}
	}
}

// TestCountBatchKnobs pins the Config knobs: BatchMaxRounds caps the
// epoch, BatchDrift tightens or loosens the split behavior — both must
// still converge to the right place.
func TestCountBatchKnobs(t *testing.T) {
	const n = 4096
	for _, cfg := range []sim.Config{
		{Seed: 5, BatchSteps: true, BatchMaxRounds: 4},
		{Seed: 5, BatchSteps: true, BatchDrift: 0.02},
		{Seed: 5, BatchSteps: true, BatchDrift: 0.5, BatchMaxRounds: 2},
	} {
		res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("cfg %+v did not converge", cfg)
		}
		norm := float64(res.Interactions) / (float64(n) * math.Log(float64(n)))
		if norm < 0.5 || norm > 20 {
			t.Fatalf("T/(n ln n) = %.2f outside plausible range (cfg %+v)", norm, cfg)
		}
	}
}

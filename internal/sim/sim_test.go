package sim

import (
	"sync"
	"testing"

	"popcount/internal/rng"
)

// spread is a toy one-way epidemic used to exercise the engine.
type spread struct {
	informed []bool
	count    int
}

func newSpread(n int) *spread {
	s := &spread{informed: make([]bool, n), count: 1}
	s.informed[0] = true
	return s
}

func (s *spread) N() int { return len(s.informed) }

func (s *spread) Interact(u, v int, _ *rng.Rand) {
	if s.informed[v] && !s.informed[u] {
		s.informed[u] = true
		s.count++
	}
}

func (s *spread) Converged() bool { return s.count == len(s.informed) }

func (s *spread) Output(i int) int64 {
	if s.informed[i] {
		return 1
	}
	return 0
}

func TestRunConverges(t *testing.T) {
	p := newSpread(256)
	res, err := Run(p, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("epidemic did not converge")
	}
	if res.Interactions <= 0 || res.Interactions > res.Total {
		t.Fatalf("bad interaction counts: %+v", res)
	}
	if !AllOutputsEqual(p, 1) {
		t.Fatal("not all agents informed at convergence")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _ := Run(newSpread(128), Config{Seed: 42})
	b, _ := Run(newSpread(128), Config{Seed: 42})
	if a != b {
		t.Fatalf("identical seeds gave different results: %+v vs %+v", a, b)
	}
	c, _ := Run(newSpread(128), Config{Seed: 43})
	if a == c {
		t.Log("different seeds coincided (possible but unlikely); not fatal")
	}
}

func TestRunRespectsCap(t *testing.T) {
	p := newSpread(64)
	res, err := Run(p, Config{Seed: 1, MaxInteractions: 10, CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10 {
		t.Fatalf("Total = %d, want 10", res.Total)
	}
}

func TestRunTooSmall(t *testing.T) {
	if _, err := Run(newSpread(1), Config{}); err != ErrTooSmall {
		t.Fatalf("err = %v, want ErrTooSmall", err)
	}
}

func TestRunObserve(t *testing.T) {
	var calls []int64
	p := newSpread(32)
	_, err := Run(p, Config{Seed: 1, MaxInteractions: 100, CheckEvery: 25,
		Observe: func(o Observation) { calls = append(calls, o.Interactions) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("Observe never called")
	}
	for i, c := range calls {
		if want := int64(25 * (i + 1)); c != want && c <= 100 {
			t.Fatalf("Observe call %d = %d, want %d", i, c, want)
		}
	}
}

func TestRunSteps(t *testing.T) {
	p := newSpread(64)
	if err := RunSteps(p, 7, 50_000); err != nil {
		t.Fatal(err)
	}
	if !p.Converged() {
		t.Fatal("epidemic not complete after 50k interactions on 64 agents")
	}
}

func TestRunTrials(t *testing.T) {
	f := func(trial int) Protocol { return newSpread(64) }
	res, err := RunTrials(f, 8, Config{Seed: 5}, TrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("got %d results, want 8", len(res))
	}
	for i, r := range res {
		if !r.Result.Converged {
			t.Fatalf("trial %d did not converge", i)
		}
		if r.Protocol == nil {
			t.Fatalf("trial %d lost its protocol instance", i)
		}
	}
	// Reproducibility across invocations and parallelism levels.
	res2, err := RunTrials(f, 8, Config{Seed: 5}, TrialOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Result != res2[i].Result {
			t.Fatalf("trial %d not reproducible: %+v vs %+v", i, res[i].Result, res2[i].Result)
		}
	}
}

func TestRunTrialsRejectsBadCount(t *testing.T) {
	if _, err := RunTrials(func(int) Protocol { return newSpread(4) }, 0, Config{}, TrialOptions{}); err == nil {
		t.Fatal("expected error for zero trials")
	}
}

func TestRunTrialsPerTrialObserver(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	_, err := RunTrials(func(int) Protocol { return newSpread(64) }, 4, Config{Seed: 5},
		TrialOptions{Parallelism: 4, Observe: func(trial int, obs Observation) {
			mu.Lock()
			seen[trial]++
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("trial %d produced no observations", i)
		}
	}
}

func TestEngineResumable(t *testing.T) {
	p := newSpread(128)
	e, err := NewEngine(p, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e.Step(500)
	if e.Interactions() != 500 {
		t.Fatalf("Interactions = %d after manual stepping", e.Interactions())
	}
	res, err := e.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Total != e.Interactions() {
		t.Fatalf("resumed run inconsistent: %+v vs t=%d", res, e.Interactions())
	}
	// Driving a converged engine again is a no-op.
	res2, err := e.RunToConvergence()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total != res.Total || !res2.Converged {
		t.Fatalf("re-driving a converged engine changed the result: %+v", res2)
	}
}

func TestRunInterrupt(t *testing.T) {
	polls := 0
	res, err := Run(newSpread(1024), Config{Seed: 1, CheckEvery: 64,
		Interrupt: func() bool { polls++; return polls > 3 }})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("run was not interrupted: %+v", res)
	}
	if res.Converged || res.Total >= DefaultMaxInteractions(1024) {
		t.Fatalf("interrupted run ran to completion: %+v", res)
	}
}

func TestLog2Helpers(t *testing.T) {
	cases := []struct{ n, floor, ceil int }{
		{1, 0, 0}, {2, 1, 1}, {3, 1, 2}, {4, 2, 2}, {5, 2, 3},
		{7, 2, 3}, {8, 3, 3}, {9, 3, 4}, {1023, 9, 10}, {1024, 10, 10}, {1025, 10, 11},
	}
	for _, c := range cases {
		if got := Log2Floor(c.n); got != c.floor {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.n, got, c.floor)
		}
		if got := Log2Ceil(c.n); got != c.ceil {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.ceil)
		}
	}
}

func TestOutputs(t *testing.T) {
	p := newSpread(4)
	out := Outputs(p)
	if len(out) != 4 || out[0] != 1 || out[1] != 0 {
		t.Fatalf("unexpected outputs %v", out)
	}
}

func TestBiasedSchedulerFavoursHot(t *testing.T) {
	s := BiasedScheduler{Hot: 3, Bias: 0.5}
	r := rng.New(1)
	hot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		u, v := s.Next(10, r)
		if u == v {
			t.Fatal("identical pair")
		}
		if u == 3 {
			hot++
		}
	}
	// Expected initiator rate for the hot agent: 0.5 + 0.5·(1/10) = 0.55.
	rate := float64(hot) / trials
	if rate < 0.5 || rate > 0.6 {
		t.Fatalf("hot initiator rate = %v, want ≈ 0.55", rate)
	}
}

func TestMatchingSchedulerCoversEveryAgentPerRound(t *testing.T) {
	s := NewMatchingScheduler()
	r := rng.New(2)
	const n = 10
	seen := make(map[int]int)
	for i := 0; i < n/2; i++ {
		u, v := s.Next(n, r)
		if u == v {
			t.Fatal("identical pair")
		}
		seen[u]++
		seen[v]++
	}
	if len(seen) != n {
		t.Fatalf("one matching round touched %d agents, want %d", len(seen), n)
	}
	for a, c := range seen {
		if c != 1 {
			t.Fatalf("agent %d appeared %d times in one matching", a, c)
		}
	}
}

func TestMatchingSchedulerOddPopulation(t *testing.T) {
	s := NewMatchingScheduler()
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		u, v := s.Next(7, r)
		if u == v || u < 0 || v < 0 || u >= 7 || v >= 7 {
			t.Fatalf("bad pair (%d, %d)", u, v)
		}
	}
}

func TestRunWithSchedulerOption(t *testing.T) {
	p := newSpread(128)
	res, err := Run(p, Config{Seed: 4, Scheduler: NewMatchingScheduler()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("broadcast under matching scheduler did not converge")
	}
}

func TestRunConfirmWindow(t *testing.T) {
	p := newSpread(64)
	res, err := Run(p, Config{Seed: 5, ConfirmWindow: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Stable {
		t.Fatalf("broadcast should be stable: %+v", res)
	}
	if res.Total != res.Interactions+10_000 {
		t.Fatalf("confirm window not executed: %+v", res)
	}
}

// flapper converges at 10k interactions and leaves the desired set again
// afterwards — Stable must come back false.
type flapper struct{ t int64 }

func (f *flapper) N() int                         { return 2 }
func (f *flapper) Interact(_, _ int, _ *rng.Rand) { f.t++ }
func (f *flapper) Converged() bool                { return f.t >= 10_000 && f.t < 12_000 }

func TestRunConfirmWindowDetectsFlapping(t *testing.T) {
	res, err := Run(&flapper{}, Config{Seed: 6, CheckEvery: 500, ConfirmWindow: 5_000,
		MaxInteractions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("flapper never reported converged")
	}
	if res.Stable {
		t.Fatal("flapping configuration reported stable")
	}
}

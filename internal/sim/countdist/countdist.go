// Package countdist provides an incrementally repaired categorical
// sampler over non-negative integer weights — the count-vector analogue
// of drawing a uniformly random agent. The count-based simulation engine
// keeps one Sampler over the per-state agent counts (and a second one
// over per-state productive pair weights): drawing a state with
// probability proportional to its weight is then a single Find call, and
// a transition that moves one agent between states repairs the cached
// cumulative structure with two Add calls instead of rebuilding a prefix
// table.
//
// The implementation is a Fenwick (binary indexed) tree, so Add, Prefix
// and Find all cost O(log k) for k slots, and Total is O(1). Slots are
// append-only: the engine discovers protocol states lazily and never
// removes one (a vacated state simply keeps weight zero).
package countdist

// Sampler is a Fenwick-tree cumulative sampler over int64 weights.
//
// The zero value is an empty sampler ready for Append.
type Sampler struct {
	tree  []int64 // 1-based Fenwick tree over cap slots
	w     []int64 // plain weights, for O(1) Weight queries
	total int64
	cap   int // power-of-two capacity of tree (len(tree) == cap+1)
}

// NewSampler returns an empty sampler sized for about hint slots.
func NewSampler(hint int) *Sampler {
	s := &Sampler{}
	if hint > 0 {
		s.grow(hint)
	}
	return s
}

// Len returns the number of slots.
func (s *Sampler) Len() int { return len(s.w) }

// Total returns the sum of all weights.
func (s *Sampler) Total() int64 { return s.total }

// Weight returns the weight of slot i.
func (s *Sampler) Weight(i int) int64 { return s.w[i] }

// Append adds a new slot with weight w and returns its index.
func (s *Sampler) Append(w int64) int {
	i := len(s.w)
	if i >= s.cap {
		s.grow(i + 1)
	}
	s.w = append(s.w, 0)
	if w != 0 {
		s.Add(i, w)
	}
	return i
}

// Add adjusts slot i's weight by d. The resulting weight must stay
// non-negative; the sampler does not check.
func (s *Sampler) Add(i int, d int64) {
	if d == 0 {
		return
	}
	s.w[i] += d
	s.total += d
	for j := i + 1; j <= s.cap; j += j & -j {
		s.tree[j] += d
	}
}

// Prefix returns the sum of the weights of slots 0..i-1.
func (s *Sampler) Prefix(i int) int64 {
	var sum int64
	for j := i; j > 0; j -= j & -j {
		sum += s.tree[j]
	}
	return sum
}

// Find returns the slot i holding cumulative position x, i.e. the unique
// i with Prefix(i) <= x < Prefix(i)+Weight(i). x must be in [0, Total());
// out-of-range x yields an arbitrary slot.
func (s *Sampler) Find(x int64) int {
	pos := 0
	for step := s.cap; step > 0; step >>= 1 {
		next := pos + step
		if next <= s.cap && s.tree[next] <= x {
			x -= s.tree[next]
			pos = next
		}
	}
	// pos is the count of slots whose cumulative weight is <= x, i.e.
	// the 0-based index of the slot containing x.
	if pos >= len(s.w) {
		pos = len(s.w) - 1
	}
	return pos
}

// grow rebuilds the tree with capacity at least need (rounded up to a
// power of two).
func (s *Sampler) grow(need int) {
	c := 1
	for c < need {
		c <<= 1
	}
	s.cap = c
	s.tree = make([]int64, c+1)
	for i, w := range s.w {
		for j := i + 1; j <= c; j += j & -j {
			s.tree[j] += w
		}
	}
}

// Sampler32 is a Sampler whose weights and total are bounded by 2³¹ —
// the count engine's agent-count distribution qualifies (total = n,
// capped by the engine at 2³¹). Storage is uint32, halving the Fenwick
// tree's cache footprint on the per-interaction Find/Prefix descents;
// the API stays int64 so the two samplers are drop-in interchangeable.
// Arithmetic on the uint32 nodes wraps two's-complement under negative
// Add deltas, which is exact as long as every true node value stays in
// [0, 2³¹] — the caller's bound, not checked here.
type Sampler32 struct {
	tree  []uint32 // 1-based Fenwick tree over cap slots
	w     []uint32 // plain weights, for O(1) Weight queries
	total int64
	cap   int
}

// NewSampler32 returns an empty bounded sampler sized for about hint
// slots.
func NewSampler32(hint int) *Sampler32 {
	s := &Sampler32{}
	if hint > 0 {
		s.grow(hint)
	}
	return s
}

// Len returns the number of slots.
func (s *Sampler32) Len() int { return len(s.w) }

// Total returns the sum of all weights.
func (s *Sampler32) Total() int64 { return s.total }

// Weight returns the weight of slot i.
func (s *Sampler32) Weight(i int) int64 { return int64(s.w[i]) }

// Append adds a new slot with weight w and returns its index.
func (s *Sampler32) Append(w int64) int {
	i := len(s.w)
	if i >= s.cap {
		s.grow(i + 1)
	}
	s.w = append(s.w, 0)
	if w != 0 {
		s.Add(i, w)
	}
	return i
}

// Add adjusts slot i's weight by d. The resulting weight must stay in
// [0, 2³¹]; the sampler does not check.
func (s *Sampler32) Add(i int, d int64) {
	if d == 0 {
		return
	}
	s.w[i] += uint32(d)
	s.total += d
	for j := i + 1; j <= s.cap; j += j & -j {
		s.tree[j] += uint32(d)
	}
}

// Prefix returns the sum of the weights of slots 0..i-1.
func (s *Sampler32) Prefix(i int) int64 {
	var sum int64
	for j := i; j > 0; j -= j & -j {
		sum += int64(s.tree[j])
	}
	return sum
}

// Find returns the slot i holding cumulative position x, i.e. the unique
// i with Prefix(i) <= x < Prefix(i)+Weight(i). x must be in [0, Total());
// out-of-range x yields an arbitrary slot.
func (s *Sampler32) Find(x int64) int {
	pos := 0
	for step := s.cap; step > 0; step >>= 1 {
		next := pos + step
		if next <= s.cap && int64(s.tree[next]) <= x {
			x -= int64(s.tree[next])
			pos = next
		}
	}
	if pos >= len(s.w) {
		pos = len(s.w) - 1
	}
	return pos
}

// grow rebuilds the tree with capacity at least need (rounded up to a
// power of two).
func (s *Sampler32) grow(need int) {
	c := 1
	for c < need {
		c <<= 1
	}
	s.cap = c
	s.tree = make([]uint32, c+1)
	for i, w := range s.w {
		for j := i + 1; j <= c; j += j & -j {
			s.tree[j] += w
		}
	}
}

package countdist

import (
	"testing"

	"popcount/internal/rng"
)

// brute is a reference implementation over a plain slice.
type brute struct{ w []int64 }

func (b *brute) total() int64 {
	var s int64
	for _, w := range b.w {
		s += w
	}
	return s
}

func (b *brute) prefix(i int) int64 {
	var s int64
	for j := 0; j < i; j++ {
		s += b.w[j]
	}
	return s
}

func (b *brute) find(x int64) int {
	for i, w := range b.w {
		if x < w {
			return i
		}
		x -= w
	}
	return len(b.w) - 1
}

// TestSamplerAgainstBruteForce drives a random sequence of Append/Add
// operations and checks every query against the reference.
func TestSamplerAgainstBruteForce(t *testing.T) {
	r := rng.New(42)
	s := NewSampler(0)
	var ref brute
	for op := 0; op < 5000; op++ {
		switch {
		case len(ref.w) == 0 || r.Intn(10) == 0:
			w := int64(r.Intn(20))
			i := s.Append(w)
			ref.w = append(ref.w, w)
			if i != len(ref.w)-1 {
				t.Fatalf("Append returned %d, want %d", i, len(ref.w)-1)
			}
		default:
			i := r.Intn(len(ref.w))
			d := int64(r.Intn(7)) - ref.w[i]%3 // mixed signs, stays >= 0
			if ref.w[i]+d < 0 {
				d = -ref.w[i]
			}
			s.Add(i, d)
			ref.w[i] += d
		}
		if s.Total() != ref.total() {
			t.Fatalf("op %d: Total=%d want %d", op, s.Total(), ref.total())
		}
		if op%37 != 0 {
			continue
		}
		for i := range ref.w {
			if s.Weight(i) != ref.w[i] {
				t.Fatalf("op %d: Weight(%d)=%d want %d", op, i, s.Weight(i), ref.w[i])
			}
			if s.Prefix(i) != ref.prefix(i) {
				t.Fatalf("op %d: Prefix(%d)=%d want %d", op, i, s.Prefix(i), ref.prefix(i))
			}
		}
		if tot := ref.total(); tot > 0 {
			for probe := 0; probe < 20; probe++ {
				x := r.Int64n(tot)
				if got, want := s.Find(x), ref.find(x); got != want {
					t.Fatalf("op %d: Find(%d)=%d want %d (weights %v)", op, x, got, want, ref.w)
				}
			}
			// Boundary positions.
			if got, want := s.Find(0), ref.find(0); got != want {
				t.Fatalf("op %d: Find(0)=%d want %d", op, got, want)
			}
			if got, want := s.Find(tot-1), ref.find(tot-1); got != want {
				t.Fatalf("op %d: Find(total-1)=%d want %d", op, got, want)
			}
		}
	}
}

// TestSamplerFindSkipsEmptySlots pins the zero-weight boundary behavior:
// a position on the boundary of an empty slot resolves to the next
// occupied slot.
func TestSamplerFindSkipsEmptySlots(t *testing.T) {
	s := NewSampler(4)
	s.Append(5)
	s.Append(0)
	s.Append(3)
	if got := s.Find(4); got != 0 {
		t.Fatalf("Find(4)=%d want 0", got)
	}
	if got := s.Find(5); got != 2 {
		t.Fatalf("Find(5)=%d want 2", got)
	}
	if got := s.Find(7); got != 2 {
		t.Fatalf("Find(7)=%d want 2", got)
	}
}

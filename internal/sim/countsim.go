// Count-based simulation: the CountEngine simulates a population
// protocol directly on its configuration — the vector of per-state agent
// counts — instead of on an array of n agents.
//
// For protocols whose agents are exchangeable given their state (the
// configuration view of the population-protocol Markov chain), one
// interaction of the paper's uniform scheduler draws an ordered pair of
// distinct agents uniformly at random; projected onto states, the
// initiator/responder state pair (i, j) occurs with probability
// proportional to c[i]·c[j] for i ≠ j and c[i]·(c[i]−1) on the diagonal.
// The CountEngine samples exactly that distribution from a cached
// cumulative (Fenwick) sampler over the counts that is incrementally
// repaired as transitions move agents between states, so memory is
// O(|occupied states|) and a step costs O(log k) — independent of n.
//
// Protocols that additionally implement SelfLooper get a second fast
// path: pairs whose transition is certainly the identity ("certain
// no-ops", which dominate late in epidemic-style runs) are never drawn
// individually. The engine tracks the total weight of certain-no-op
// pairs, advances the interaction clock over whole runs of them with one
// geometric jump, and then draws the next pair conditioned on being
// productive. A run is then dominated by the number of state-changing
// interactions (e.g. exactly n−1 for a one-way epidemic) rather than by
// the Θ(n log n) scheduler draws of the agent-array engine.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"popcount/internal/rng"
	"popcount/internal/sim/countdist"
)

// CountProtocol is a population protocol in configuration (count) form:
// a finite state alphabet, an initial configuration, and a transition
// function over state codes. State codes are opaque uint64 values chosen
// by the protocol; the engine discovers the occupied alphabet lazily.
type CountProtocol interface {
	// N returns the population size.
	N() int
	// InitCounts returns the initial configuration as a map from state
	// code to multiplicity. Multiplicities must be positive and sum to
	// N().
	InitCounts() map[uint64]int64
	// Delta applies the transition δ(qu, qv) for an interaction whose
	// initiator is in state qu and responder in state qv, returning the
	// successor states. The generator provides synthetic coins; the
	// engine calls Delta once per state-changing interaction candidate.
	Delta(qu, qv uint64, r *rng.Rand) (qu2, qv2 uint64)
}

// CountInitSampler is an optional CountProtocol hook: protocols whose
// agents draw a random value at their first interaction can instead
// pre-sample the whole population's draws once, at engine construction,
// from the engine's generator (the principle of deferred decisions — an
// agent's pending value is never read before its first interaction, so
// the trajectory distribution is unchanged). The engine prefers this
// hook over InitCounts when implemented. It is how a Spec's InitSample
// reaches the count engine.
type CountInitSampler interface {
	InitCountsSample(r *rng.Rand) map[uint64]int64
}

// CountConverger is implemented by count protocols that can report
// whether a configuration is a desired (converged) one. The engine calls
// it only every Config.CheckEvery interactions; the check may scan all
// occupied states.
type CountConverger interface {
	CountConverged(c *CountConfig) bool
}

// CountOutputter is implemented by count protocols whose states produce
// an integer output (the output function ω of the paper, per state
// rather than per agent).
type CountOutputter interface {
	StateOutput(q uint64) int64
}

// SelfLooper is the optional CountProtocol fast path. SelfLoop reports
// whether δ(qu, qv) is *certainly* the identity — same successor states,
// no synthetic coins consumed. It must be sound (never true for a pair
// that could change state or draw randomness) but may be incomplete:
// returning false for an actual no-op only costs the engine an explicit
// draw. Protocols with small occupied alphabets and no-op-dominated
// equilibria (epidemics, junta processes) gain the most; protocols with
// large alphabets (phase clocks, leader election) typically should not
// implement it — maintaining the no-op pair weights costs more than the
// skipped draws save.
type SelfLooper interface {
	SelfLoop(qu, qv uint64) bool
}

// ErrCountScheduler is returned when a CountEngine is configured with a
// scheduler it has no count-level dynamics for: the configuration view
// is only equivalent to the agent view when agents in the same state
// are exchangeable under the scheduler. That holds for the paper's
// uniform scheduler always, and for the ring scheduler exactly when
// the protocol's spec certifies Spec.RingExchangeable (single-source
// monotone spread); biased and matching schedulers, and the torus and
// Kronecker graphs (where cluster geometry matters), break it.
var ErrCountScheduler = errors.New("sim: count engine does not support this scheduler")

// MaxCountPopulation bounds the count engine's population size: the
// engine's pair-weight arithmetic works in int64 over n·(n−1) ordered
// pairs, so n is capped at 2³¹ — overflow would otherwise silently
// disable the self-loop skip and corrupt sampling bounds rather than
// fail loudly.
const MaxCountPopulation = 1 << 31

// CountConfig is a population configuration: the multiset of agent
// states, stored as counts over the occupied alphabet. It is owned and
// mutated by a CountEngine; protocols receive it read-only in their
// convergence predicates.
type CountConfig struct {
	codes  []uint64       // dense index -> state code, in discovery order
	counts []int64        // dense index -> number of agents in the state
	index  map[uint64]int // state code -> dense index
	n      int64
	s      *countdist.Sampler32 // cumulative sampler over counts (total n ≤ 2³¹)

	// dense caches index for codes below denseCodeCap: dense[code] is
	// index+1, zero means unregistered. Interner-backed specs emit
	// first-sight-dense codes, so for them this turns the successor
	// lookup on every state-changing interaction into one array load
	// instead of a map probe. The map stays authoritative: every
	// registration writes both, and any code ≥ denseCodeCap (raw packed
	// state, shard-provisional tags) is served by the map alone.
	dense []int32
}

// denseCodeCap bounds the code range the dense index cache covers —
// 2²¹ slots is an 8 MiB worst case for a protocol whose codes are
// small but sparse, and interned alphabets at the engine's practical
// sizes sit far below it.
const denseCodeCap = 1 << 21

// N returns the population size.
func (c *CountConfig) N() int64 { return c.n }

// Count returns the number of agents in the state with the given code
// (zero for states never occupied).
func (c *CountConfig) Count(code uint64) int64 {
	if i, ok := c.index[code]; ok {
		return c.counts[i]
	}
	return 0
}

// ForEach calls f for every currently occupied state.
func (c *CountConfig) ForEach(f func(code uint64, count int64)) {
	for i, cnt := range c.counts {
		if cnt > 0 {
			f(c.codes[i], cnt)
		}
	}
}

// States returns the number of currently occupied states.
func (c *CountConfig) States() int {
	k := 0
	for _, cnt := range c.counts {
		if cnt > 0 {
			k++
		}
	}
	return k
}

// Sum returns the total agent count Σ counts. It equals N() at all times
// — population protocols conserve agents — and exists so tests and fuzz
// targets can assert the invariant.
func (c *CountConfig) Sum() int64 {
	var s int64
	for _, cnt := range c.counts {
		s += cnt
	}
	return s
}

// CountEngine simulates a CountProtocol on its configuration. It shares
// Config/Result semantics and the convergence-driving loop with the
// agent-array Engine: MaxInteractions, CheckEvery, Observe, Interrupt
// and ConfirmWindow all behave identically, and Config.DisableBatch
// disables the self-loop skip path (for differential testing), leaving
// the per-interaction categorical sampling path.
type CountEngine struct {
	engineCore
	p    CountProtocol
	conv CountConverger // nil when the protocol has no predicate
	sl   SelfLooper     // nil when unsupported or disabled
	r    *rng.Rand
	c    *CountConfig
	n    int64 // population size

	// ring is the spec's self-loop predicate when the engine runs the
	// ring-restricted dynamics (GraphScheduler of GraphKindRing over a
	// RingExchangeable spec), nil for the clique dynamics. In ring mode
	// the configuration is a contiguous arc of the spreading state, so
	// the boundary-pair weight replaces the clique pair weights.
	ring func(qu, qv uint64) bool

	// Self-loop skip state (allocated only when sl != nil). For each
	// dense state index i:
	//   noopRow[i] = Σ_j SelfLoop(i,j)·counts[j]
	//   diag[i]    = SelfLoop(i,i)
	//   elig(i)    = n−1 − noopRow[i] + diag[i]   (eligible responders)
	// and rowW holds counts[i]·elig(i), so rowW.Total() is the weight of
	// productive ordered pairs. noopOut[i]/noopIn[i] are the sorted
	// adjacency lists of the (sparse) certain-no-op relation.
	rowW    *countdist.Sampler
	noopRow []int64
	diag    []bool
	noopOut [][]int32
	noopIn  [][]int32

	// Batch-stepping state (allocated only when Config.BatchSteps): the
	// multinomial epoch planner of countbatch.go.
	bp *batchPlanner

	// Intra-run sharding state (allocated only when Config.Shards ≥ 2):
	// the block partition, worker pool and per-block streams of
	// countshard.go.
	sr *shardRunner

	// fspec is the protocol's transition spec, resolved at construction
	// when a fault plan is active (fault targets and the error probe
	// are defined over the spec), nil without faults.
	fspec *Spec

	// occ lists the dense indices of currently occupied states in
	// ascending order. The interned product-state specs discover far
	// more states over a run than are ever occupied at once (a moving
	// synchronization front abandons states permanently), so the epoch
	// planner iterates this list instead of the full discovery history —
	// O(occupied²) per epoch instead of O(discovered·occupied). Ascending
	// order matters: it keeps the planner's conditional-binomial
	// decomposition order, and with it the random stream, bit-for-bit
	// identical to a scan over the dense arrays.
	occ []int

	// trackOcc gates occ maintenance. Only the batch planner, the shard
	// runner and the fault plane read the list — all fixed at
	// construction — so the plain sequential engine skips the sorted
	// splice its zero-crossing-heavy protocols (CountExact crosses on
	// nearly every interaction) would otherwise pay per apply.
	trackOcc bool

	stats EngineStats
}

// EngineStats are deterministic, machine-independent counters of one
// count-engine run: equal protocols, seeds and Step sequences produce
// equal stats on any machine, which is what lets the CI perf gate
// (cmd/benchdiff) detect dynamics drift without depending on the
// runner's machine class.
type EngineStats struct {
	// DeltaCalls counts transition-rule invocations (certain no-ops the
	// skip path jumps over and bulk-applied deterministic pairs of the
	// batch planner are exactly the interactions NOT counted here).
	DeltaCalls int64
	// Epochs counts applied batch epochs, including reused second
	// halves (zero without Config.BatchSteps).
	Epochs int64
	// Violations counts safety-net trips of the batch planner's
	// post-leap drift check.
	Violations int64
	// HalfReuses counts second half-epochs whose already-sampled counts
	// passed the post-leap recheck after the retried first half and
	// were applied as-is (the Anderson-style conditional reuse).
	HalfReuses int64
	// HalfDiscards counts second half-epochs that had to be discarded
	// and re-planned — the recheck failed, or the first half did not
	// complete at its sampled size.
	HalfDiscards int64
	// ShardEpochs counts batch epochs planned by the sharded path
	// (zero unless Config.Shards ≥ 2). Like every field here it is a
	// function of (protocol, seed, Shards, Step sequence) only — never
	// of GOMAXPROCS or scheduling.
	ShardEpochs int64
	// ShardBlocks counts initiator-row blocks across all sharded
	// epochs' resolve passes.
	ShardBlocks int64
	// MergeConflicts counts sharded epochs whose merged result tripped
	// the post-leap safety net and fell back to the serial
	// half-splitting plan application.
	MergeConflicts int64
	// StealEvents counts blocks beyond the shard worker count in
	// fanned-out passes — Σ max(0, blocks−Shards) — the deterministic
	// measure of how much work was available for stealing.
	StealEvents int64
}

// Stats returns the engine's deterministic run counters.
func (e *CountEngine) Stats() EngineStats { return e.stats }

// NewCountEngine validates p and cfg and returns a count engine
// positioned at interaction 0. cfg.Scheduler must be nil, the uniform
// scheduler, or a ring GraphScheduler over a RingExchangeable spec
// (ErrCountScheduler otherwise).
func NewCountEngine(p CountProtocol, cfg Config) (*CountEngine, error) {
	n := p.N()
	if n < 2 {
		return nil, ErrTooSmall
	}
	if int64(n) > MaxCountPopulation {
		return nil, fmt.Errorf("sim: count engine population %d exceeds %d (int64 pair-weight bound)", n, int64(MaxCountPopulation))
	}
	var ringSL func(qu, qv uint64) bool
	if cfg.Scheduler != nil {
		switch sched := cfg.Scheduler.(type) {
		case UniformScheduler:
			// The paper's scheduler: the plain clique dynamics.
		case *GraphScheduler:
			if err := sched.Validate(n); err != nil {
				return nil, err
			}
			if sched.Kind != GraphKindRing {
				return nil, fmt.Errorf("%w: %v graphs have no count form (cluster geometry is not a function of per-state counts)", ErrCountScheduler, sched.Kind)
			}
			sp, ok := p.(interface{ Spec() *Spec })
			if !ok || !sp.Spec().RingExchangeable {
				return nil, fmt.Errorf("%w: ring dynamics need a RingExchangeable spec (got %T)", ErrCountScheduler, p)
			}
			if cfg.BatchSteps || cfg.Shards >= 2 {
				return nil, fmt.Errorf("%w: ring dynamics have no batched or sharded form", ErrCountScheduler)
			}
			if cfg.Faults != nil {
				return nil, fmt.Errorf("%w: fault plans require the uniform scheduler", ErrCountScheduler)
			}
			ringSL = sp.Spec().selfLoop
		default:
			return nil, ErrCountScheduler
		}
	}
	cfg = normalizeConfig(cfg, n)
	e := &CountEngine{
		engineCore: engineCore{cfg: cfg, convAt: -1},
		p:          p,
		r:          rng.New(cfg.Seed),
		n:          int64(n),
		ring:       ringSL,
	}
	if !cfg.DisableBatch && e.ring == nil {
		e.sl, _ = p.(SelfLooper)
	}
	e.conv, _ = p.(CountConverger)
	if e.sl != nil {
		e.rowW = countdist.NewSampler(8)
	}
	if cfg.BatchSteps {
		e.bp = newBatchPlanner(p, cfg, e.n)
	}
	if cfg.Shards >= 2 {
		if !cfg.BatchSteps {
			return nil, fmt.Errorf("sim: Config.Shards=%d requires BatchSteps — only batch epochs shard", cfg.Shards)
		}
		e.sr = newShardRunner(e, cfg)
	}
	if cfg.Faults != nil {
		sp, ok := p.(interface{ Spec() *Spec })
		if !ok {
			return nil, fmt.Errorf("%w: count protocol %T is not spec-backed — fault transformations are defined over a Spec's state domain", ErrFaultPlan, p)
		}
		fs, err := compileFaults(cfg.Faults, n, cfg)
		if err != nil {
			return nil, err
		}
		e.fs, e.fspec = fs, sp.Spec()
	}
	e.trackOcc = e.bp != nil || e.sr != nil || e.fs != nil

	// The one-shot initialization sampler (when implemented) runs here,
	// at a fixed point of the random stream before any interaction.
	var init map[uint64]int64
	if is, ok := p.(CountInitSampler); ok {
		init = is.InitCountsSample(e.r)
	} else {
		init = p.InitCounts()
	}
	codes := make([]uint64, 0, len(init))
	var sum int64
	for code, cnt := range init {
		if cnt <= 0 {
			return nil, fmt.Errorf("sim: count protocol initial count %d for state %#x", cnt, code)
		}
		codes = append(codes, code)
		sum += cnt
	}
	if sum != e.n {
		return nil, fmt.Errorf("sim: count protocol initial counts sum to %d, want n=%d", sum, n)
	}
	// Map iteration order is randomized; sort so state discovery — and
	// with it the engine's sampling stream — is deterministic per seed.
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	e.c = &CountConfig{
		index: make(map[uint64]int, len(codes)),
		n:     e.n,
		s:     countdist.NewSampler32(len(codes)),
	}
	for _, code := range codes {
		e.shift(e.stateIndex(code), init[code])
	}
	return e, nil
}

// Protocol returns the protocol under simulation.
func (e *CountEngine) Protocol() CountProtocol { return e.p }

// Counts returns the current configuration. The caller must not retain
// it across Step calls if it mutates the engine concurrently; within one
// goroutine, reading it between steps is the intended use.
func (e *CountEngine) Counts() *CountConfig { return e.c }

// Converged reports whether the protocol's convergence predicate holds
// for the current configuration (false for protocols without one).
func (e *CountEngine) Converged() bool {
	return e.conv != nil && e.conv.CountConverged(e.c)
}

// PluralityOutput returns the output of the most populated state — at
// convergence, the consensus output. ok is false when the protocol has
// no output function.
func (e *CountEngine) PluralityOutput() (out int64, ok bool) {
	o, isOut := e.p.(CountOutputter)
	if !isOut {
		return 0, false
	}
	best := int64(-1)
	var bestCode uint64
	for i, cnt := range e.c.counts {
		if cnt > best {
			best = cnt
			bestCode = e.c.codes[i]
		}
	}
	if best <= 0 {
		return 0, false
	}
	return o.StateOutput(bestCode), true
}

// RunToConvergence drives the simulation from its current position until
// the convergence predicate holds (plus the optional confirmation
// window), the interaction cap is reached, or Interrupt fires.
func (e *CountEngine) RunToConvergence() (Result, error) {
	return e.runToConvergence(e)
}

// Step executes exactly count interactions without convergence checks,
// in multinomial epochs when batch stepping is enabled (Config.
// BatchSteps) and per interaction otherwise. With a fault plan,
// scheduled events interleave at their exact interaction times — batch
// epochs are truncated at fault boundaries, so the batched mode
// executes the same schedule as the exact modes.
func (e *CountEngine) Step(count int64) {
	if count <= 0 {
		return
	}
	if e.fs != nil {
		e.stepFaulted(count, e.stepRaw, e)
		return
	}
	e.stepRaw(count)
}

// stepRaw is the fault-free stepping body.
func (e *CountEngine) stepRaw(count int64) {
	if e.ring != nil {
		e.stepRing(count)
		return
	}
	if e.sr != nil {
		e.stepBatchedSharded(count)
		return
	}
	if e.bp != nil {
		e.stepBatched(count)
		return
	}
	e.stepExact(count)
}

// stepRing is the ring-restricted dynamics over a RingExchangeable
// spec. The spreading state occupies one contiguous arc, so of the 2n
// equiprobable directed ring-adjacent draws only the arc's two
// boundary adjacencies can be productive: 2 directed draws per
// orientation class ((lo, hi) and (hi, lo)), each productive exactly
// when the spec's no-op predicate rejects it. Runs of no-op draws are
// applied as one geometric jump of the interaction clock, mirroring
// the clique engine's skip path.
func (e *CountEngine) stepRing(count int64) {
	rem := count
	total := 2 * e.n // directed ring-adjacent (agent, direction) draws
	for rem > 0 {
		lo, hi, k := e.ringBoundary()
		if k > 2 {
			panic("sim: RingExchangeable contract violated: more than two occupied states")
		}
		var w int64
		if k == 2 {
			if !e.ring(lo, hi) {
				w += 2
			}
			if !e.ring(hi, lo) {
				w += 2
			}
		}
		if w == 0 {
			// Fully spread (or a single frozen state): the remaining
			// interactions pass in one jump.
			e.t += rem
			return
		}
		if w < total {
			skip := geomSkip(e.r, float64(w)/float64(total))
			if skip >= rem {
				e.t += rem
				return
			}
			e.t += skip
			rem -= skip
		}
		qu, qv := lo, hi
		switch {
		case w == 4:
			// Both orientations productive and equally weighted.
			if e.r.Bool() {
				qu, qv = hi, lo
			}
		case e.ring(lo, hi):
			// Only (hi, lo) is productive.
			qu, qv = hi, lo
		}
		i, j := e.c.index[qu], e.c.index[qv]
		a, b := e.p.Delta(qu, qv, e.r)
		e.apply(i, j, a, b)
		e.stats.DeltaCalls++
		e.t++
		rem--
	}
}

// ringBoundary scans the configuration for its occupied states,
// returning the smallest and largest occupied codes and the occupied
// count. A RingExchangeable trajectory has at most two occupied
// states (the spreading state and the one it displaces).
func (e *CountEngine) ringBoundary() (lo, hi uint64, k int) {
	for i, cnt := range e.c.counts {
		if cnt <= 0 {
			continue
		}
		code := e.c.codes[i]
		if k == 0 {
			lo, hi = code, code
		} else if code < lo {
			lo = code
		} else if code > hi {
			hi = code
		}
		k++
	}
	return lo, hi, k
}

// stepEach is the per-interaction path: one categorical pair draw and
// one Delta call per interaction.
func (e *CountEngine) stepEach(count int64) {
	for k := int64(0); k < count; k++ {
		i, j := e.samplePair()
		a, b := e.p.Delta(e.c.codes[i], e.c.codes[j], e.r)
		e.apply(i, j, a, b)
	}
	e.stats.DeltaCalls += count
	e.t += count
}

// stepSkip is the self-loop skip path: runs of certain-no-op
// interactions are applied as one geometric jump of the interaction
// clock, and only productive pair candidates are drawn explicitly.
func (e *CountEngine) stepSkip(count int64) {
	rem := count
	total := e.n * (e.n - 1)
	for rem > 0 {
		wProd := e.rowW.Total()
		if wProd <= 0 {
			// Every pair is a certain no-op: the configuration is
			// frozen, the remaining interactions pass in one jump.
			e.t += rem
			return
		}
		if wProd < total {
			skip := geomSkip(e.r, float64(wProd)/float64(total))
			if skip >= rem {
				e.t += rem
				return
			}
			e.t += skip
			rem -= skip
		}
		// One pair, conditioned on not being a certain no-op. The row
		// weight counts[i]·elig(i) factorizes, so one draw selects both
		// the initiator state and the responder's eligible slot.
		z := e.r.Int64n(wProd)
		i := e.rowW.Find(z)
		y := (z - e.rowW.Prefix(i)) % e.elig(i)
		j := e.sampleResponder(i, y)
		a, b := e.p.Delta(e.c.codes[i], e.c.codes[j], e.r)
		e.apply(i, j, a, b)
		e.stats.DeltaCalls++
		e.t++
		rem--
	}
}

// geomSkip samples the number of consecutive certain-no-op interactions
// before the next productive candidate: a Geometric(p) failure count,
// where p is the probability that a uniform pair draw is productive.
// Requires 0 < p <= 1.
func geomSkip(r *rng.Rand, p float64) int64 {
	lnq := math.Log1p(-p)
	if lnq == 0 {
		return 0 // p ≈ 1: no room for no-ops
	}
	u := (float64(r.Uint64()>>11) + 1) / (1 << 53) // uniform in (0, 1]
	k := math.Log(u) / lnq
	if !(k < math.MaxInt64/2) { // also catches NaN/+Inf
		return math.MaxInt64 / 2
	}
	return int64(k)
}

// samplePair draws the initiator and responder states of one uniform
// ordered pair of distinct agents, returned as dense indices.
func (e *CountEngine) samplePair() (int, int) { return e.samplePairR(e.r) }

// samplePairR is samplePair over an explicit generator — the fault
// plane's adversaries draw from the fault stream, the hot path from the
// scheduler stream, with identical draw order either way.
func (e *CountEngine) samplePairR(r *rng.Rand) (int, int) {
	i := e.c.s.Find(r.Int64n(e.n))
	return i, e.responderIndex(i, r)
}

// responderIndex draws the responder state for an initiator in dense
// state i, uniform among the n−1 agents other than the initiator:
// positions below the initiator's block are unchanged, the initiator's
// block loses one slot, positions above shift by one.
func (e *CountEngine) responderIndex(i int, r *rng.Rand) int {
	c := e.c
	y := r.Int64n(e.n - 1)
	pre := c.s.Prefix(i)
	switch {
	case y < pre:
		return c.s.Find(y)
	case y < pre+c.counts[i]-1:
		return i
	default:
		return c.s.Find(y + 1)
	}
}

// sampleResponder maps y — uniform over the elig(i) eligible responder
// slots for an initiator in state i — to the responder's dense state
// index. Eligible slots are the full count ordering minus the exclusion
// intervals: the blocks of states that certainly no-op with i, plus one
// slot of i's own block for the initiator itself (already covered when
// SelfLoop(i,i)). Exclusions are walked in dense order; each either
// absorbs y (y falls before it) or shifts the remaining positions.
func (e *CountEngine) sampleResponder(i int, y int64) int {
	c := e.c
	var removed int64
	selfDone := e.diag[i]
	selfStart := c.s.Prefix(i) + c.counts[i] - 1
	for _, jj := range e.noopOut[i] {
		j := int(jj)
		if !selfDone && j > i {
			if y < selfStart-removed {
				return c.s.Find(y + removed)
			}
			removed++
			selfDone = true
		}
		start := c.s.Prefix(j)
		if y < start-removed {
			return c.s.Find(y + removed)
		}
		removed += c.counts[j]
	}
	if !selfDone {
		if y < selfStart-removed {
			return c.s.Find(y + removed)
		}
		removed++
	}
	return c.s.Find(y + removed)
}

// apply moves the interaction's two agents from their old states to the
// successor states returned by Delta. Successor codes are resolved
// against the two source states first — adoption-style transitions
// (initiator takes the responder's state and vice versa) then never
// touch the code index map — and the four ±1 deltas are netted so each
// affected slot is repaired once.
func (e *CountEngine) apply(i, j int, a, b uint64) {
	c := e.c
	if a == c.codes[i] && b == c.codes[j] {
		return
	}
	ia := e.lookup(a, i, j)
	ib := e.lookup(b, i, j)
	var idxs [4]int
	var ds [4]int64
	k := 0
	net := func(idx int, d int64) {
		for m := 0; m < k; m++ {
			if idxs[m] == idx {
				ds[m] += d
				return
			}
		}
		idxs[k], ds[k] = idx, d
		k++
	}
	net(i, -1)
	net(j, -1)
	net(ia, 1)
	net(ib, 1)
	for m := 0; m < k; m++ {
		if ds[m] != 0 {
			e.shift(idxs[m], ds[m])
		}
	}
}

// lookup resolves a successor state code to its dense index, checking
// the interaction's two source states before the map.
func (e *CountEngine) lookup(code uint64, i, j int) int {
	c := e.c
	if code == c.codes[i] {
		return i
	}
	if code == c.codes[j] {
		return j
	}
	return e.stateIndex(code)
}

// elig returns the eligible (non-certain-no-op) responder weight for an
// initiator in dense state i.
func (e *CountEngine) elig(i int) int64 {
	el := e.n - 1 - e.noopRow[i]
	if e.diag[i] {
		el++
	}
	return el
}

// shift adjusts state idx's count by d, repairing the cumulative
// sampler, the occupied-index list and — on the skip path — the no-op
// aggregates of every affected row.
func (e *CountEngine) shift(idx int, d int64) {
	c := e.c
	if e.sl == nil {
		e.occShift(idx, d)
		c.s.Add(idx, d)
		return
	}
	e.rowW.Add(idx, -c.counts[idx]*e.elig(idx))
	for _, ii := range e.noopIn[idx] {
		i := int(ii)
		if i == idx {
			e.noopRow[idx] += d
			continue
		}
		// Row i loses/gains d eligible responders in state idx.
		e.rowW.Add(i, -c.counts[i]*d)
		e.noopRow[i] += d
	}
	e.occShift(idx, d)
	c.s.Add(idx, d)
	e.rowW.Add(idx, c.counts[idx]*e.elig(idx))
}

// occShift applies the count change and keeps the sorted occupied list
// in step with zero crossings. Occupied alphabets are small (the moving
// front of a synchronized protocol), so the O(occupied) splice on a
// crossing is cheaper than any tree would be.
func (e *CountEngine) occShift(idx int, d int64) {
	c := e.c
	was := c.counts[idx]
	c.counts[idx] = was + d
	if !e.trackOcc {
		return
	}
	switch {
	case was == 0 && c.counts[idx] > 0:
		i := sort.SearchInts(e.occ, idx)
		e.occ = append(e.occ, 0)
		copy(e.occ[i+1:], e.occ[i:])
		e.occ[i] = idx
	case was > 0 && c.counts[idx] == 0:
		i := sort.SearchInts(e.occ, idx)
		e.occ = append(e.occ[:i], e.occ[i+1:]...)
	}
}

// stateIndex returns the dense index for a state code, registering the
// state on first sight.
func (e *CountEngine) stateIndex(code uint64) int {
	c := e.c
	// Registration grows the dense cache past every small code it
	// records, so for code < len(dense) the cache's answer — including
	// "unregistered" — is definitive and the map is never probed.
	if code < uint64(len(c.dense)) {
		if v := c.dense[code]; v != 0 {
			return int(v) - 1
		}
	} else if code >= denseCodeCap {
		if i, ok := c.index[code]; ok {
			return i
		}
	}
	idx := len(c.codes)
	c.codes = append(c.codes, code)
	c.counts = append(c.counts, 0)
	c.index[code] = idx
	if code < denseCodeCap {
		if need := int(code) + 1; need > len(c.dense) {
			if need > cap(c.dense) {
				grown := make([]int32, need, max(2*cap(c.dense), need))
				copy(grown, c.dense)
				c.dense = grown
			} else {
				c.dense = c.dense[:need]
			}
		}
		c.dense[code] = int32(idx) + 1
	}
	c.s.Append(0)
	if e.sl != nil {
		e.extendNoop(code, idx)
	}
	return idx
}

// extendNoop grows the certain-no-op relation by the freshly discovered
// state. The new state has count 0, so no aggregate weights change yet;
// only the adjacency lists and the new row's sums are built. Appending
// keeps the lists sorted: idx is the largest dense index so far.
func (e *CountEngine) extendNoop(code uint64, idx int) {
	c := e.c
	e.noopRow = append(e.noopRow, 0)
	e.diag = append(e.diag, false)
	e.noopOut = append(e.noopOut, nil)
	e.noopIn = append(e.noopIn, nil)
	e.rowW.Append(0)
	for j, cj := range c.codes {
		if e.sl.SelfLoop(code, cj) {
			e.noopOut[idx] = append(e.noopOut[idx], int32(j))
			e.noopIn[j] = append(e.noopIn[j], int32(idx))
			e.noopRow[idx] += c.counts[j]
			if j == idx {
				e.diag[idx] = true
			}
		}
		if j != idx && e.sl.SelfLoop(cj, code) {
			e.noopOut[j] = append(e.noopOut[j], int32(idx))
			e.noopIn[idx] = append(e.noopIn[idx], int32(j))
		}
	}
}

// RunCount simulates p under cfg on the count engine until it converges
// or the interaction cap is reached.
func RunCount(p CountProtocol, cfg Config) (Result, error) {
	e, err := NewCountEngine(p, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.RunToConvergence()
}

// CountFactory builds a fresh count protocol instance for trial number
// trial. The factory must return an independent instance every call.
type CountFactory func(trial int) CountProtocol

// CountTrialRun couples a trial's finished engine with its result, so
// callers can read the final configuration after the run.
type CountTrialRun struct {
	Engine *CountEngine
	Result Result
}

// CountTrialOptions configures RunCountTrials beyond the per-run Config.
type CountTrialOptions struct {
	// Parallelism bounds concurrent trials (≤ 0 selects 1).
	Parallelism int
	// Observe, if non-nil, receives every trial's observations tagged
	// with the trial index and engine. It overrides Config.Observe and
	// must be safe for concurrent use when Parallelism > 1.
	Observe func(trial int, e *CountEngine, obs Observation)
}

// RunCountTrials runs independent trials of a count protocol in parallel
// and returns the per-trial runs in trial order. Trial i uses seed
// TrialSeed(cfg.Seed, i), exactly like RunTrials, so agent-engine and
// count-engine ensembles line up trial for trial.
func RunCountTrials(f CountFactory, trials int, cfg Config, opt CountTrialOptions) ([]CountTrialRun, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	runs := make([]CountTrialRun, trials)
	observe := opt.Observe
	err := forEachTrial(trials, opt.Parallelism, func(i int) error {
		c := cfg
		c.Seed = TrialSeed(cfg.Seed, i)
		// The observer closure is wired before the engine exists, so it
		// captures the engine variable rather than the engine.
		var eng *CountEngine
		if observe != nil {
			c.Observe = func(obs Observation) { observe(i, eng, obs) }
		}
		eng, err := NewCountEngine(f(i), c)
		if err != nil {
			return err
		}
		res, err := eng.RunToConvergence()
		runs[i] = CountTrialRun{Engine: eng, Result: res}
		return err
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// Discovered returns the number of states ever discovered (occupied now
// or in the past) — the size of the engine's dense index space.
func (c *CountConfig) Discovered() int { return len(c.codes) }

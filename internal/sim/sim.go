// Package sim implements the probabilistic population-protocol scheduler
// and simulation engine from the paper's computation model (Section 1.1):
// in every time step an ordered pair of distinct agents — the initiator and
// the responder — is selected independently and uniformly at random, and
// the pair updates its states by applying the protocol's transition
// function.
//
// The engine is deliberately minimal: a Protocol owns its agent states and
// applies one transition per Interact call; the engine supplies the random
// pair sequence, counts interactions, and polls for convergence.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"popcount/internal/rng"
)

// Protocol is a population protocol under simulation. Implementations own
// the per-agent state vector.
type Protocol interface {
	// N returns the population size.
	N() int
	// Interact applies one transition with initiator u and responder v.
	// The generator provides scheduler randomness (synthetic coins).
	Interact(u, v int, r *rng.Rand)
}

// Converger is implemented by protocols that can report whether the
// current configuration is a desired (converged) one. The check may scan
// all agents; the engine calls it only every Config.CheckEvery
// interactions.
type Converger interface {
	Converged() bool
}

// Outputter is implemented by protocols whose agents produce an integer
// output (the output function ω of the paper).
type Outputter interface {
	Output(i int) int64
}

// Config controls a single simulation run.
type Config struct {
	// Seed seeds the scheduler RNG. Runs with equal seeds and protocols
	// are bit-for-bit reproducible.
	Seed uint64
	// MaxInteractions caps the run. Zero selects a generous default of
	// 4096·n·ceil(log2 n)² interactions.
	MaxInteractions int64
	// CheckEvery is the interval, in interactions, between convergence
	// polls. Zero selects n.
	CheckEvery int64
	// Observe, if non-nil, is called at every convergence poll with the
	// number of interactions so far (including after the final poll).
	Observe func(interactions int64)
	// Scheduler selects interaction pairs. Nil selects the paper's
	// uniform random scheduler.
	Scheduler Scheduler
	// ConfirmWindow, when positive, distinguishes convergence from
	// stabilization (Section 1.1: T_C vs T_S): after the convergence
	// predicate first holds, the run continues for this many further
	// interactions and Result.Stable reports whether the predicate held
	// at every poll throughout the window.
	ConfirmWindow int64
}

// Result reports the outcome of a run.
type Result struct {
	// Interactions is the number of interactions after which the
	// convergence predicate was first observed true (granularity
	// CheckEvery). If the run did not converge it equals Total.
	Interactions int64
	// Total is the total number of interactions executed.
	Total int64
	// Converged reports whether the convergence predicate held when the
	// run stopped.
	Converged bool
	// Stable reports whether the predicate held at every poll of the
	// ConfirmWindow after first convergence (equal to Converged when no
	// window was requested).
	Stable bool
}

// ErrTooSmall is returned when a protocol population has fewer than two
// agents, which cannot interact.
var ErrTooSmall = errors.New("sim: population must have at least 2 agents")

// DefaultMaxInteractions returns the default interaction cap for a
// population of n agents: 4096·n·⌈log₂ n⌉².
func DefaultMaxInteractions(n int) int64 {
	l := int64(Log2Ceil(n))
	if l < 1 {
		l = 1
	}
	return 4096 * int64(n) * l * l
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1).
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Log2Floor returns ⌊log₂ n⌋ for n ≥ 1. It panics for n < 1.
func Log2Floor(n int) int {
	if n < 1 {
		panic("sim: Log2Floor of non-positive value")
	}
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Run simulates p under cfg until it converges or the interaction cap is
// reached.
func Run(p Protocol, cfg Config) (Result, error) {
	n := p.N()
	if n < 2 {
		return Result{}, ErrTooSmall
	}
	maxI := cfg.MaxInteractions
	if maxI <= 0 {
		maxI = DefaultMaxInteractions(n)
	}
	check := cfg.CheckEvery
	if check <= 0 {
		check = int64(n)
	}
	r := rng.New(cfg.Seed)
	sched := cfg.Scheduler
	if sched == nil {
		sched = UniformScheduler{}
	}
	conv, canConverge := p.(Converger)

	var t int64
	for t < maxI {
		batch := check
		if rem := maxI - t; rem < batch {
			batch = rem
		}
		for i := int64(0); i < batch; i++ {
			u, v := sched.Next(n, r)
			p.Interact(u, v, r)
		}
		t += batch
		if cfg.Observe != nil {
			cfg.Observe(t)
		}
		if canConverge && conv.Converged() {
			res := Result{Interactions: t, Total: t, Converged: true, Stable: true}
			if cfg.ConfirmWindow > 0 {
				res.Stable, res.Total = confirm(p, conv, sched, r, t, check, cfg)
			}
			return res, nil
		}
	}
	converged := canConverge && conv.Converged()
	return Result{Interactions: t, Total: t, Converged: converged, Stable: converged}, nil
}

// confirm continues the run for cfg.ConfirmWindow interactions after
// first convergence and reports whether the predicate held at every
// poll (the stabilization check of Section 1.1).
func confirm(p Protocol, conv Converger, sched Scheduler, r *rng.Rand, t, check int64, cfg Config) (stable bool, total int64) {
	n := p.N()
	stable = true
	end := t + cfg.ConfirmWindow
	for t < end {
		batch := check
		if rem := end - t; rem < batch {
			batch = rem
		}
		for i := int64(0); i < batch; i++ {
			u, v := sched.Next(n, r)
			p.Interact(u, v, r)
		}
		t += batch
		if cfg.Observe != nil {
			cfg.Observe(t)
		}
		if !conv.Converged() {
			stable = false
		}
	}
	return stable, t
}

// RunSteps executes exactly steps interactions without convergence checks,
// useful for fixed-horizon experiments.
func RunSteps(p Protocol, seed uint64, steps int64) error {
	n := p.N()
	if n < 2 {
		return ErrTooSmall
	}
	r := rng.New(seed)
	for i := int64(0); i < steps; i++ {
		u, v := r.Pair(n)
		p.Interact(u, v, r)
	}
	return nil
}

// Factory builds a fresh protocol instance for trial number trial. The
// factory must return an independent instance every call.
type Factory func(trial int) Protocol

// RunTrials runs independent trials of a protocol in parallel and returns
// the per-trial results in trial order. Trial i uses seed base cfg.Seed+i
// (hashed internally by the generator), so results are reproducible.
// parallelism ≤ 0 selects 1.
func RunTrials(f Factory, trials int, cfg Config, parallelism int) ([]Result, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	if parallelism <= 0 {
		parallelism = 1
	}
	if parallelism > trials {
		parallelism = trials
	}
	results := make([]Result, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
				results[i], errs[i] = Run(f(i), c)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// AllOutputsEqual reports whether every agent of p outputs want.
func AllOutputsEqual(p Protocol, want int64) bool {
	o, ok := p.(Outputter)
	if !ok {
		return false
	}
	for i := 0; i < p.N(); i++ {
		if o.Output(i) != want {
			return false
		}
	}
	return true
}

// Outputs returns the current output vector of p.
func Outputs(p Protocol) []int64 {
	o, ok := p.(Outputter)
	if !ok {
		return nil
	}
	out := make([]int64, p.N())
	for i := range out {
		out[i] = o.Output(i)
	}
	return out
}

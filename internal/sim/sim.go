// Package sim implements the probabilistic population-protocol scheduler
// and simulation engine from the paper's computation model (Section 1.1):
// in every time step an ordered pair of distinct agents — the initiator and
// the responder — is selected independently and uniformly at random, and
// the pair updates its states by applying the protocol's transition
// function.
//
// The engine is organized around the resumable Engine type: a Protocol
// owns its agent states and applies transitions; the Engine supplies the
// random pair sequence, counts interactions, polls for convergence,
// notifies observers, and drives the optional confirmation window that
// separates convergence from stabilization (T_C vs T_S). Run, RunSteps
// and RunTrials are thin drivers over the same Engine, so every consumer
// — the public popcount package, the experiment harness, the commands —
// shares one loop.
//
// Protocols that additionally implement BatchInteractor get a fast path:
// the Engine hands them a whole batch of interactions at once and the
// protocol pulls scheduler-drawn pairs in a tight loop, eliminating the
// per-interaction interface dispatch of the scalar path while remaining
// bit-for-bit reproducible with it.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"popcount/internal/rng"
)

// Protocol is a population protocol under simulation. Implementations own
// the per-agent state vector.
type Protocol interface {
	// N returns the population size.
	N() int
	// Interact applies one transition with initiator u and responder v.
	// The generator provides scheduler randomness (synthetic coins).
	Interact(u, v int, r *rng.Rand)
}

// BatchInteractor is an optional Protocol fast path. The engine hands the
// protocol a whole batch of interactions at once; the implementation must
// behave exactly like count consecutive sched.Next + Interact calls —
// drawing each pair from sched and interleaving transition coins on r in
// the same order as the scalar path — so that a batched run is bit-for-bit
// identical to a scalar run under equal seeds. The payoff is that the
// per-interaction virtual calls disappear: the protocol loops over its own
// (devirtualized, inlinable) transition body, and may special-case
// UniformScheduler to draw pairs with a direct r.Pair call.
type BatchInteractor interface {
	InteractBatch(count int64, sched Scheduler, r *rng.Rand)
}

// Converger is implemented by protocols that can report whether the
// current configuration is a desired (converged) one. The check may scan
// all agents; the engine calls it only every Config.CheckEvery
// interactions.
type Converger interface {
	Converged() bool
}

// Outputter is implemented by protocols whose agents produce an integer
// output (the output function ω of the paper).
type Outputter interface {
	Output(i int) int64
}

// Observation is a periodic snapshot passed to Config.Observe at every
// convergence poll.
type Observation struct {
	// Interactions is the number of interactions executed so far.
	Interactions int64
	// Converged reports whether the convergence predicate held at this
	// poll (always false for protocols without a Converger).
	Converged bool
	// Errored reports whether the protocol's error predicate held at
	// this poll. It is only probed when a fault plan is active
	// (Config.Faults) and the spec declares error detection; false
	// otherwise.
	Errored bool
}

// Config controls a single simulation run.
type Config struct {
	// Seed seeds the scheduler RNG. Runs with equal seeds and protocols
	// are bit-for-bit reproducible.
	Seed uint64
	// MaxInteractions caps the run. Zero selects a generous default of
	// 4096·n·ceil(log2 n)² interactions.
	MaxInteractions int64
	// CheckEvery is the interval, in interactions, between convergence
	// polls. Zero selects n.
	CheckEvery int64
	// Observe, if non-nil, is called at every convergence poll (including
	// the polls inside a confirmation window) with the current progress.
	Observe func(Observation)
	// Interrupt, if non-nil, is polled before every batch; when it
	// returns true the run stops early and Result.Interrupted is set.
	// It is how context cancellation reaches the engine.
	Interrupt func() bool
	// Scheduler selects interaction pairs. Nil selects the paper's
	// uniform random scheduler.
	Scheduler Scheduler
	// ConfirmWindow, when positive, distinguishes convergence from
	// stabilization (Section 1.1: T_C vs T_S): after the convergence
	// predicate first holds, the run continues for this many further
	// interactions and Result.Stable reports whether the predicate held
	// at every poll throughout the window.
	ConfirmWindow int64
	// DisableBatch forces the scalar interaction path even for protocols
	// implementing BatchInteractor. The batch path is bit-for-bit
	// equivalent; the switch exists for differential tests and for
	// benchmarking one path against the other.
	DisableBatch bool
	// BatchSteps enables multinomial batch stepping on the count engine:
	// whole epochs of interactions are projected onto ordered state
	// pairs with conditional binomial draws and applied to the
	// configuration in bulk (see countbatch.go). The mode is a
	// τ-leaping approximation — distributionally faithful within the
	// BatchDrift bound, not bit-for-bit comparable to sequential
	// stepping. The agent-array Engine ignores it.
	BatchSteps bool
	// BatchMaxRounds caps one batch epoch at BatchMaxRounds·n
	// interactions (zero selects 1 round). Only read when BatchSteps is
	// set.
	BatchMaxRounds int
	// BatchDrift is the per-state relative drift bound of one batch
	// epoch: an epoch whose net count change on any touched state
	// exceeds max(1, BatchDrift·count) is split and retried at half
	// size. Zero selects 0.125. Only read when BatchSteps is set.
	BatchDrift float64
	// Shards, when ≥ 2, shards each batch epoch across that many
	// deterministic work streams (see countshard.go): epoch planning and
	// the conditional-binomial decomposition run concurrently over
	// pair-row blocks of the occupied alphabet, each block on an RNG
	// stream derived from (Seed, epoch counter, block index), with a
	// serial merge in ascending block order. Results depend on Shards
	// but never on GOMAXPROCS or scheduling. Values ≤ 1 keep the serial
	// planner, bit-for-bit identical to earlier releases. Only read when
	// BatchSteps is set; the agent engine rejects values ≥ 2.
	Shards int
	// Faults, if non-nil, applies a deterministic fault schedule to the
	// run (see FaultPlan): corruption bursts, Poisson corruption and
	// churn streams, and adversarial interactions, identical across the
	// engine forms. The protocol must be spec-backed (fault
	// transformations are defined over a Spec's state domain) and the
	// scheduler uniform; the engine constructors error otherwise.
	Faults *FaultPlan
}

// Result reports the outcome of a run.
type Result struct {
	// Interactions is the number of interactions after which the
	// convergence predicate was first observed true (granularity
	// CheckEvery). If the run did not converge it equals Total.
	Interactions int64
	// Total is the total number of interactions executed.
	Total int64
	// Converged reports whether the convergence predicate held when the
	// run stopped.
	Converged bool
	// Stable reports whether the predicate held at every poll of the
	// ConfirmWindow after first convergence (equal to Converged when no
	// window was requested).
	Stable bool
	// Interrupted reports whether Config.Interrupt stopped the run early.
	Interrupted bool
}

// ErrTooSmall is returned when a protocol population has fewer than two
// agents, which cannot interact.
var ErrTooSmall = errors.New("sim: population must have at least 2 agents")

// DefaultMaxInteractions returns the default interaction cap for a
// population of n agents: 4096·n·⌈log₂ n⌉².
func DefaultMaxInteractions(n int) int64 {
	l := int64(Log2Ceil(n))
	if l < 1 {
		l = 1
	}
	return 4096 * int64(n) * l * l
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1).
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Log2Floor returns ⌊log₂ n⌋ for n ≥ 1. It panics for n < 1.
func Log2Floor(n int) int {
	if n < 1 {
		panic("sim: Log2Floor of non-positive value")
	}
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

// engineOps is the stepping surface the shared convergence driver runs
// over: the agent-array Engine and the count-based CountEngine both
// implement it, so RunToConvergence and the confirmation window have a
// single definition.
type engineOps interface {
	// Step executes exactly count interactions and advances the
	// embedded engineCore's interaction counter.
	Step(count int64)
	// Converged reports whether the protocol's convergence predicate
	// currently holds (false for protocols without one).
	Converged() bool
	// applyFault applies one fault event to the current configuration
	// without advancing the interaction counter. Only called when a
	// fault plan is active.
	applyFault(ev faultEvent)
	// faultErrored probes the protocol's error predicate (false for
	// protocols without one). Only called when a fault plan is active.
	faultErrored() bool
}

// engineCore is the engine state shared by the agent-array and
// count-based engines: the normalized configuration, the interaction
// counter, and the convergence-driving loop.
type engineCore struct {
	cfg    Config // normalized: MaxInteractions and CheckEvery filled in
	t      int64
	convAt int64       // interactions at first observed convergence, -1 before
	fs     *faultState // compiled fault plan, nil when Config.Faults is nil
}

// normalizeConfig fills in the defaults that depend on the population
// size.
func normalizeConfig(cfg Config, n int) Config {
	if cfg.MaxInteractions <= 0 {
		cfg.MaxInteractions = DefaultMaxInteractions(n)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = int64(n)
	}
	return cfg
}

// Interactions returns the number of interactions executed so far.
func (c *engineCore) Interactions() int64 { return c.t }

// poll runs one convergence poll: it records first convergence, notifies
// the observer, and returns the predicate's value.
func (c *engineCore) poll(ops engineOps) bool {
	conv := ops.Converged()
	if c.fs != nil {
		conv = c.fs.onPoll(c, ops, conv)
	}
	if conv && c.convAt < 0 {
		c.convAt = c.t
	}
	if c.cfg.Observe != nil {
		obs := Observation{Interactions: c.t, Converged: conv}
		if c.fs != nil {
			obs.Errored = ops.faultErrored()
		}
		c.cfg.Observe(obs)
	}
	return conv
}

// interrupted polls the Interrupt hook.
func (c *engineCore) interrupted() bool {
	return c.cfg.Interrupt != nil && c.cfg.Interrupt()
}

// result packages the engine's current progress. The first-convergence
// time is only meaningful on a converged result: a predicate that held
// once and flapped out before the budget ran out must report the
// budget, per the Interactions contract.
func (c *engineCore) result(converged, stable, interrupted bool) Result {
	first := c.t
	if converged && c.convAt >= 0 {
		first = c.convAt
	}
	return Result{
		Interactions: first,
		Total:        c.t,
		Converged:    converged,
		Stable:       stable,
		Interrupted:  interrupted,
	}
}

// runToConvergence drives ops from its current position until the
// convergence predicate holds (plus the optional confirmation window),
// the interaction cap is reached, or Interrupt fires.
func (c *engineCore) runToConvergence(ops engineOps) (Result, error) {
	maxI, check := c.cfg.MaxInteractions, c.cfg.CheckEvery
	converged := ops.Converged()
	if converged && c.convAt < 0 {
		c.convAt = c.t
	}
	for !converged && c.t < maxI {
		if c.interrupted() {
			return c.result(false, false, true), nil
		}
		batch := check
		if rem := maxI - c.t; rem < batch {
			batch = rem
		}
		ops.Step(batch)
		converged = c.poll(ops)
	}
	if !converged {
		return c.result(false, false, false), nil
	}
	if c.cfg.ConfirmWindow <= 0 {
		return c.result(true, true, false), nil
	}
	return c.confirm(ops)
}

// confirm continues the run for cfg.ConfirmWindow interactions after
// first convergence and reports whether the predicate held at every
// poll (the stabilization check of Section 1.1). Result.Converged stays
// true — it records that convergence was observed, even if the window
// then catches the configuration flapping out of the desired set.
func (c *engineCore) confirm(ops engineOps) (Result, error) {
	check := c.cfg.CheckEvery
	stable := true
	end := c.t + c.cfg.ConfirmWindow
	for c.t < end {
		if c.interrupted() {
			return c.result(true, false, true), nil
		}
		batch := check
		if rem := end - c.t; rem < batch {
			batch = rem
		}
		ops.Step(batch)
		if !c.poll(ops) {
			stable = false
		}
	}
	return c.result(true, stable, false), nil
}

// Engine is a resumable simulation of one protocol instance: stepwise
// control (Step) plus convergence driving (RunToConvergence) over the
// same interaction counter, scheduler, and RNG stream. Mixing the two is
// legal — RunToConvergence picks up wherever manual stepping left off.
type Engine struct {
	engineCore
	p       Protocol
	bi      BatchInteractor // nil when unsupported or disabled
	conv    Converger       // nil when the protocol has no predicate
	sched   Scheduler
	uniform bool // sched is the uniform scheduler: draw pairs directly
	n       int  // cached p.N(), hoisted out of the scalar step loop
	r       *rng.Rand
	fsa     *SpecAgent // fault-plane access to the agent array, nil without faults
}

// NewEngine validates p and cfg and returns an engine positioned at
// interaction 0.
func NewEngine(p Protocol, cfg Config) (*Engine, error) {
	n := p.N()
	if n < 2 {
		return nil, ErrTooSmall
	}
	if cfg.Shards >= 2 {
		return nil, fmt.Errorf("sim: Config.Shards=%d is only supported by the count engine's batched mode, not the agent engine", cfg.Shards)
	}
	cfg = normalizeConfig(cfg, n)
	if cfg.Scheduler == nil {
		cfg.Scheduler = UniformScheduler{}
	}
	if v, ok := cfg.Scheduler.(SchedulerValidator); ok {
		if err := v.Validate(n); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		engineCore: engineCore{cfg: cfg, convAt: -1},
		p:          p,
		sched:      cfg.Scheduler,
		n:          n,
		r:          rng.New(cfg.Seed),
	}
	// The scheduler type assertion is done once here rather than per
	// scalar Step iteration: the uniform scheduler's Next is exactly
	// r.Pair, so the hot loop can call the generator directly.
	_, e.uniform = cfg.Scheduler.(UniformScheduler)
	if !cfg.DisableBatch {
		e.bi, _ = p.(BatchInteractor)
	}
	e.conv, _ = p.(Converger)
	if cfg.Faults != nil {
		sa, ok := p.(*SpecAgent)
		if !ok {
			return nil, fmt.Errorf("%w: protocol %T is not spec-backed — fault transformations are defined over a Spec's state domain", ErrFaultPlan, p)
		}
		if !e.uniform {
			return nil, fmt.Errorf("%w: fault plans require the uniform scheduler (got %T)", ErrFaultPlan, cfg.Scheduler)
		}
		fs, err := compileFaults(cfg.Faults, n, cfg)
		if err != nil {
			return nil, err
		}
		e.fs, e.fsa = fs, sa
	}
	// One-shot initialization sampling (spec.go) happens here, before
	// any interaction, so the scalar and batched paths consume the
	// random stream identically.
	if is, ok := p.(InitSampler); ok {
		is.SampleInit(e.r)
	}
	return e, nil
}

// Protocol returns the protocol under simulation.
func (e *Engine) Protocol() Protocol { return e.p }

// Converged reports whether the protocol's convergence predicate
// currently holds (false for protocols without one).
func (e *Engine) Converged() bool { return e.conv != nil && e.conv.Converged() }

// Step executes exactly count interactions without convergence checks,
// using the batch fast path when the protocol supports it. With a fault
// plan, scheduled events interleave at their exact interaction times.
func (e *Engine) Step(count int64) {
	if count <= 0 {
		return
	}
	if e.fs != nil {
		e.stepFaulted(count, e.stepRaw, e)
		return
	}
	e.stepRaw(count)
}

// stepRaw is the fault-free stepping body.
func (e *Engine) stepRaw(count int64) {
	switch {
	case e.bi != nil:
		e.bi.InteractBatch(count, e.sched, e.r)
	case e.uniform:
		// Devirtualized scalar loop: the uniform scheduler's Next is
		// r.Pair, bit for bit.
		for i := int64(0); i < count; i++ {
			u, v := e.r.Pair(e.n)
			e.p.Interact(u, v, e.r)
		}
	default:
		for i := int64(0); i < count; i++ {
			u, v := e.sched.Next(e.n, e.r)
			e.p.Interact(u, v, e.r)
		}
	}
	e.t += count
}

// RunToConvergence drives the simulation from its current position until
// the convergence predicate holds (plus the optional confirmation
// window), the interaction cap is reached, or Interrupt fires.
func (e *Engine) RunToConvergence() (Result, error) {
	return e.runToConvergence(e)
}

// Run simulates p under cfg until it converges or the interaction cap is
// reached.
func Run(p Protocol, cfg Config) (Result, error) {
	e, err := NewEngine(p, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.RunToConvergence()
}

// RunSteps executes exactly steps interactions without convergence checks,
// useful for fixed-horizon experiments.
func RunSteps(p Protocol, seed uint64, steps int64) error {
	e, err := NewEngine(p, Config{Seed: seed})
	if err != nil {
		return err
	}
	e.Step(steps)
	return nil
}

// Factory builds a fresh protocol instance for trial number trial. The
// factory must return an independent instance every call.
type Factory func(trial int) Protocol

// TrialRun couples a trial's finished protocol instance with its result,
// so callers can read protocol-specific metrics after the run.
type TrialRun struct {
	Protocol Protocol
	Result   Result
}

// TrialOptions configures RunTrials beyond the per-run Config.
type TrialOptions struct {
	// Parallelism bounds concurrent trials (≤ 0 selects 1).
	Parallelism int
	// MakeScheduler, if non-nil, builds a fresh scheduler for every trial
	// — schedulers may be stateful and must never be shared across
	// trials. It overrides Config.Scheduler.
	MakeScheduler func() Scheduler
	// Observe, if non-nil, receives every trial's observations tagged
	// with the trial index. It overrides Config.Observe and must be safe
	// for concurrent use when Parallelism > 1.
	Observe func(trial int, obs Observation)
}

// TrialSeed derives trial i's scheduler seed from a base seed. The
// golden-ratio stride keeps the seeds well separated before they are
// hashed by the generator's splitmix64 seeding.
func TrialSeed(base uint64, trial int) uint64 {
	return base + uint64(trial)*0x9e3779b97f4a7c15
}

// forEachTrial runs trial indices 0..trials-1 over a bounded worker
// pool and returns the first error (all trials run to completion
// regardless). It is the one trial-parallelism scaffold shared by the
// agent-engine and count-engine trial drivers.
func forEachTrial(trials, parallelism int, run func(trial int) error) error {
	if parallelism <= 0 {
		parallelism = 1
	}
	if parallelism > trials {
		parallelism = trials
	}
	errs := make([]error, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunTrials runs independent trials of a protocol in parallel and returns
// the per-trial runs in trial order. Trial i uses seed TrialSeed(cfg.Seed,
// i), so results are bit-for-bit reproducible regardless of parallelism.
func RunTrials(f Factory, trials int, cfg Config, opt TrialOptions) ([]TrialRun, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sim: non-positive trial count %d", trials)
	}
	runs := make([]TrialRun, trials)
	mkSched, observe := opt.MakeScheduler, opt.Observe
	err := forEachTrial(trials, opt.Parallelism, func(i int) error {
		c := cfg
		c.Seed = TrialSeed(cfg.Seed, i)
		if mkSched != nil {
			c.Scheduler = mkSched()
		}
		if observe != nil {
			// No closure is allocated on the common nil-observer path.
			c.Observe = func(obs Observation) { observe(i, obs) }
		}
		p := f(i)
		res, err := Run(p, c)
		runs[i] = TrialRun{Protocol: p, Result: res}
		return err
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// AllOutputsEqual reports whether every agent of p outputs want.
func AllOutputsEqual(p Protocol, want int64) bool {
	o, ok := p.(Outputter)
	if !ok {
		return false
	}
	for i := 0; i < p.N(); i++ {
		if o.Output(i) != want {
			return false
		}
	}
	return true
}

// Outputs returns the current output vector of p.
func Outputs(p Protocol) []int64 {
	o, ok := p.(Outputter)
	if !ok {
		return nil
	}
	out := make([]int64, p.N())
	for i := range out {
		out[i] = o.Output(i)
	}
	return out
}

// Intra-run sharding of the batch planner: one batch epoch, executed
// across cores.
//
// The serial planner (countbatch.go) spends an epoch in three O(occ²)
// or O(τ-resolved) walks — the pre-leap rate accumulation, the
// conditional-binomial multinomial decomposition, and the per-
// interaction resolution of randomized pairs — all on one core. With
// Config.Shards ≥ 2 the engine splits each walk over contiguous
// pair-row blocks of the sorted occupied-index list and runs the blocks
// concurrently, following the speculative-parallel-work / serial-
// confirm split of core-chain's trie prefetcher: the parallel phases
// only read engine state that is frozen for the epoch, anything that
// must mutate shared structures (transition-matrix classification,
// state discovery, the interner, the commit itself) is deferred to a
// serial confirm step that folds shard results in ascending block
// order. Results are therefore a deterministic function of (protocol,
// seed, Shards) — never of GOMAXPROCS or goroutine scheduling — which
// is what the multicore CI gate checks by requiring exactly equal
// counters across differently-pinned runs.
//
// Epoch anatomy:
//
//  1. Flow pass (parallel): each block accumulates the pre-leap
//     expected-change rates of its initiator rows into block-local
//     scratch, reading the shared transition-matrix cache without
//     writing — pairs not yet classified are parked on a block-local
//     miss list.
//  2. Classify + τ (serial): misses are classified in ascending block
//     order (the only det-cache writes and state discoveries of the
//     epoch), block flows merge in block order, and τ is sized exactly
//     like the serial planner.
//  3. Row totals (serial): the initiator-row binomial chain draws each
//     row's share of the τ interactions from the engine stream.
//  4. Resolve pass (parallel): blocks are re-partitioned by sampled
//     row weight, and each block — on a private stream derived from
//     (seed, epoch counter, block index) — decomposes its rows over
//     responders, bulk-applies deterministic pairs into block-local
//     deltas, and resolves randomized pairs with per-interaction Delta
//     calls through the spec's shard closures (fresh product states
//     land in shard-provisional interner namespaces, see intern.go).
//  5. Merge + commit (serial): provisional states reconcile into the
//     canonical namespace, block deltas fold in ascending block order,
//     and the epoch commits under the same safety bound as the serial
//     planner. A violation (a "merge conflict") discards the shard
//     deltas and hands the full ordered plan to the serial split/
//     retry machinery of applyPlan, which preserves the fidelity
//     argument of countbatch.go unchanged.
//
// Scheduling: blocks outnumber workers (up to shardBlocksPerWorker per
// worker) and are claimed off a shared atomic counter, so a slow block
// only idles one worker — every claim beyond the workers' initial
// assignments is counted as a steal event, a deterministic function of
// the block count. Small epochs skip the fan-out entirely and run the
// same blocks sequentially on the calling goroutine (identical
// results, no barrier cost); idle workers retire after a timeout so
// finished engines leak nothing.
package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"popcount/internal/rng"
)

// ShardedDelta is the optional CountProtocol hook of intra-run
// sharding: ShardDelta(k) returns k transition closures safe to call
// concurrently with each other while the engine's serial state is
// frozen, plus a reconcile function the engine calls serially after
// each parallel round (nil when the closures never intern). A protocol
// may return nil closures to opt out, in which case the sharded
// planner resolves randomized pairs serially — correct, just slower.
// Spec-derived protocols implement it via Spec.ShardDelta/PureDelta.
type ShardedDelta interface {
	ShardDelta(k int) (deltas []func(qu, qv uint64, r *rng.Rand) (uint64, uint64), reconcile func() map[uint64]uint64)
}

const (
	// shardBlocksPerWorker oversizes the block partition relative to the
	// worker count so the atomic claim loop can rebalance skewed blocks.
	shardBlocksPerWorker = 4
	// shardFanoutMinWork is the estimated per-epoch work (column visits
	// plus expected randomized Delta calls) below which fanning out
	// cannot beat running the blocks sequentially on the caller.
	shardFanoutMinWork = 4096
	// shardIdleTimeout retires a parked worker goroutine; the runner
	// respawns on demand, so an engine that stops stepping leaks
	// nothing.
	shardIdleTimeout = 250 * time.Millisecond
)

// shardStreamSeed derives block b's private stream seed for one epoch:
// a splitmix64-style finalizer over the run seed, the epoch counter and
// the block index, so every (epoch, block) cell of a run gets an
// independent, reproducible stream regardless of which worker executes
// it.
func shardStreamSeed(base, epoch uint64, b int) uint64 {
	x := base + 0x9e3779b97f4a7c15*(epoch+1) + 0xbf58476d1ce4e5b9*uint64(b+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardBlock is one contiguous range of occupied pair rows plus the
// block-local scratch its passes accumulate into. A block is touched by
// exactly one goroutine per pass.
type shardBlock struct {
	lo, hi int       // occupied-list positions [lo, hi)
	r      *rng.Rand // per-epoch private stream (reseeded at block start)

	// Flow-pass scratch: per dense state expected change rate, plus the
	// pairs whose transition-matrix entry was absent from the shared
	// cache (classified serially after the pass).
	flow   []float64
	fseen  []bool
	ftouch []int
	misses []uint64 // packed (occ position)<<32 | responder dense index

	// Resolve-pass scratch: per dense state net count deltas, the
	// block's ordered slice of the epoch plan, randomized pairs deferred
	// to the serial confirm step (protocols without shard closures), and
	// deltas on codes the engine has not yet discovered (fresh canonical
	// or shard-provisional codes).
	delta      []int64
	seen       []bool
	touched    []int
	plan       []pairCount
	randPairs  []pairCount
	extraIdx   map[uint64]int
	extraCode  []uint64
	extraDelta []int64

	deltaCalls int64
	violated   bool
}

// addFlow accumulates an expected-change rate for dense state idx.
func (blk *shardBlock) addFlow(idx int, f float64) {
	for idx >= len(blk.flow) {
		blk.flow = append(blk.flow, 0)
		blk.fseen = append(blk.fseen, false)
	}
	if !blk.fseen[idx] {
		blk.fseen[idx] = true
		blk.ftouch = append(blk.ftouch, idx)
	}
	blk.flow[idx] += f
}

// resetFlow clears the flow scratch.
func (blk *shardBlock) resetFlow() {
	for _, idx := range blk.ftouch {
		blk.flow[idx] = 0
		blk.fseen[idx] = false
	}
	blk.ftouch = blk.ftouch[:0]
}

// add accumulates a count delta for dense state idx.
func (blk *shardBlock) add(idx int, d int64) {
	for idx >= len(blk.delta) {
		blk.delta = append(blk.delta, 0)
		blk.seen = append(blk.seen, false)
	}
	if !blk.seen[idx] {
		blk.seen[idx] = true
		blk.touched = append(blk.touched, idx)
	}
	blk.delta[idx] += d
}

// addCode accumulates a +1 delta for a successor code, against the two
// source states first, then the engine's index, then the block-local
// extras (codes the engine discovers only at the serial merge).
func (blk *shardBlock) addCode(e *CountEngine, code uint64, i, j int) {
	c := e.c
	if code == c.codes[i] {
		blk.add(i, 1)
		return
	}
	if code == c.codes[j] {
		blk.add(j, 1)
		return
	}
	if idx, ok := c.index[code]; ok {
		blk.add(idx, 1)
		return
	}
	if blk.extraIdx == nil {
		blk.extraIdx = make(map[uint64]int)
	}
	if k, ok := blk.extraIdx[code]; ok {
		blk.extraDelta[k]++
		return
	}
	blk.extraIdx[code] = len(blk.extraCode)
	blk.extraCode = append(blk.extraCode, code)
	blk.extraDelta = append(blk.extraDelta, 1)
}

// applyRand folds one resolved randomized interaction into the block
// deltas (the block-local analogue of CountEngine.apply).
func (blk *shardBlock) applyRand(e *CountEngine, i, j int, a, b uint64) {
	c := e.c
	if a == c.codes[i] && b == c.codes[j] {
		return
	}
	blk.add(i, -1)
	blk.add(j, -1)
	blk.addCode(e, a, i, j)
	blk.addCode(e, b, i, j)
}

// safetyOK applies the planner's drift bound to the block's own deltas
// — a conservative early-abort (other blocks could offset a local
// excess, which the merged check would accept); the authoritative test
// runs on the merged deltas. Extra codes are fresh states (count 0), so
// their bound is the constant floor.
func (blk *shardBlock) safetyOK(e *CountEngine) bool {
	drift := e.bp.drift
	for _, idx := range blk.touched {
		d := blk.delta[idx]
		if d == 0 {
			continue
		}
		cnt := e.c.counts[idx]
		if cnt+d < 0 {
			return false
		}
		lim := int64(2 * drift * float64(cnt))
		if lim < 8 {
			lim = 8
		}
		if d > lim || d < -lim {
			return false
		}
	}
	for _, d := range blk.extraDelta {
		if d > 8 {
			return false
		}
	}
	return true
}

// resetAll clears the resolve-pass scratch.
func (blk *shardBlock) resetAll() {
	for _, idx := range blk.touched {
		blk.delta[idx] = 0
		blk.seen[idx] = false
	}
	blk.touched = blk.touched[:0]
	if len(blk.extraCode) > 0 {
		clear(blk.extraIdx)
		blk.extraCode = blk.extraCode[:0]
		blk.extraDelta = blk.extraDelta[:0]
	}
	blk.randPairs = blk.randPairs[:0]
	blk.plan = blk.plan[:0]
}

// shardPass is one parallel phase: blocks are claimed off the atomic
// counter by the caller and any woken workers; wg completes when every
// block has run, regardless of who ran it (a lost wake token only
// costs parallelism, never progress).
type shardPass struct {
	next atomic.Int32
	n    int32
	run  func(int)
	wg   sync.WaitGroup
}

// claim runs blocks off the pass's counter until none remain.
func (ps *shardPass) claim() {
	for {
		b := ps.next.Add(1) - 1
		if b >= ps.n {
			return
		}
		ps.run(int(b))
		ps.wg.Done()
	}
}

// shardRunner owns one engine's sharded-epoch state: the block
// partition and scratch, the per-protocol shard transition closures,
// the worker pool, and the epoch counter the block streams derive from.
type shardRunner struct {
	e         *CountEngine
	shards    int    // configured worker parallelism (≥ 2)
	maxBlocks int    // shards · shardBlocksPerWorker
	seedBase  uint64 // Config.Seed: the block-stream derivation base
	epochSeq  uint64 // sharded epochs planned so far (snapshotted)

	deltas    []func(qu, qv uint64, r *rng.Rand) (uint64, uint64) // per-block shard closures (nil: serial randomized resolution)
	reconcile func() map[uint64]uint64                            // nil when the closures never intern

	blocks   []*shardBlock
	rowTau   []int64   // per occ position: the row's sampled interaction total
	randRow  []float64 // per occ position: randomized-pair rate mass of the row
	randFlow float64   // Σ randRow: expected randomized fraction per interaction
	fullPlan []pairCount

	wake chan *shardPass
	live atomic.Int32
}

// newShardRunner wires intra-run sharding for an engine.
func newShardRunner(e *CountEngine, cfg Config) *shardRunner {
	sr := &shardRunner{
		e:         e,
		shards:    cfg.Shards,
		maxBlocks: cfg.Shards * shardBlocksPerWorker,
		seedBase:  cfg.Seed,
		wake:      make(chan *shardPass, cfg.Shards),
	}
	sr.blocks = make([]*shardBlock, sr.maxBlocks)
	for i := range sr.blocks {
		sr.blocks[i] = &shardBlock{r: rng.New(0)}
	}
	if sd, ok := e.p.(ShardedDelta); ok {
		if deltas, rec := sd.ShardDelta(sr.maxBlocks); len(deltas) == sr.maxBlocks {
			sr.deltas, sr.reconcile = deltas, rec
		}
	}
	return sr
}

// topUp spawns parked workers until `want` are live (best effort: a
// worker retiring concurrently costs one pass some parallelism, never
// correctness).
func (sr *shardRunner) topUp(want int) {
	for int(sr.live.Load()) < want {
		sr.live.Add(1)
		go sr.worker()
	}
}

// worker parks on the wake channel, claims blocks of whatever pass
// wakes it, and retires after an idle timeout.
func (sr *shardRunner) worker() {
	t := time.NewTimer(shardIdleTimeout)
	defer t.Stop()
	for {
		select {
		case ps := <-sr.wake:
			ps.claim()
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(shardIdleTimeout)
		case <-t.C:
			sr.live.Add(-1)
			return
		}
	}
}

// runBlocks executes blocks [0, nb) — concurrently when fanned, else
// sequentially on the caller with identical results. Fanned passes with
// more blocks than workers count the excess claims as steal events.
func (sr *shardRunner) runBlocks(nb int, fanned bool, run func(int)) {
	if !fanned || nb < 2 {
		for b := 0; b < nb; b++ {
			run(b)
		}
		return
	}
	if nb > sr.shards {
		sr.e.stats.StealEvents += int64(nb - sr.shards)
	}
	ps := &shardPass{n: int32(nb), run: run}
	ps.wg.Add(nb)
	want := sr.shards - 1
	if want > nb-1 {
		want = nb - 1
	}
	sr.topUp(want)
	for i := 0; i < want; i++ {
		select {
		case sr.wake <- ps:
		default:
		}
	}
	ps.claim()
	ps.wg.Wait()
}

// splitEven partitions `rows` occupied positions into ≤ maxBlocks
// equal ranges (the flow pass costs O(occupied) per row uniformly).
func (sr *shardRunner) splitEven(rows int) int {
	nb := sr.maxBlocks
	if nb > rows {
		nb = rows
	}
	for b := 0; b < nb; b++ {
		sr.blocks[b].lo = rows * b / nb
		sr.blocks[b].hi = rows * (b + 1) / nb
	}
	return nb
}

// splitWeighted partitions the rows by resolve-pass work — the fixed
// per-row column walk plus the row's expected randomized Delta calls —
// so blocks carry comparable load before stealing has to even out the
// rest.
func (sr *shardRunner) splitWeighted(rows int, tau int64) int {
	nbMax := sr.maxBlocks
	if nbMax > rows {
		nbMax = rows
	}
	weight := func(pos int) int64 {
		return int64(rows) + int64(sr.randRow[pos]*float64(tau))
	}
	var total int64
	for pos := 0; pos < rows; pos++ {
		total += weight(pos)
	}
	target := total/int64(nbMax) + 1
	nb, lo := 0, 0
	var acc int64
	for pos := 0; pos < rows; pos++ {
		acc += weight(pos)
		if acc >= target || pos == rows-1 {
			sr.blocks[nb].lo, sr.blocks[nb].hi = lo, pos+1
			nb++
			lo = pos + 1
			acc = 0
		}
	}
	sr.blocks[nb-1].hi = rows
	return nb
}

// flowPass accumulates the block's pair-row rates into block-local
// scratch, reading the shared transition-matrix cache without writing:
// unclassified pairs are parked on the miss list for the serial
// classify step. Per-row randomized rate mass lands in randRow (block
// position ranges are disjoint, so the shared slice has no write
// overlap).
func (blk *shardBlock) flowPass(e *CountEngine, randRow []float64) {
	det := e.bp.det
	c := e.c
	totalW := float64(e.n) * float64(e.n-1)
	for pos := blk.lo; pos < blk.hi; pos++ {
		i := e.occ[pos]
		ci := c.counts[i]
		rr := 0.0
		for _, j := range e.occ {
			w := c.counts[j]
			if j == i {
				w = ci - 1
			}
			if w == 0 {
				continue
			}
			ent, ok := det[uint64(uint32(i))<<32|uint64(uint32(j))]
			if !ok {
				blk.misses = append(blk.misses, uint64(uint32(pos))<<32|uint64(uint32(j)))
				continue
			}
			if ent.kind == pairNoop {
				continue
			}
			lam := float64(ci) * float64(w) / totalW
			if ent.kind == pairDet {
				for x := 0; x < int(ent.nm); x++ {
					d := float64(ent.d[x])
					if d < 0 {
						d = -d
					}
					blk.addFlow(int(ent.idx[x]), lam*d)
				}
			} else {
				blk.addFlow(i, lam)
				blk.addFlow(j, lam)
				rr += lam
			}
		}
		randRow[pos] = rr
	}
}

// planTauSharded is the sharded planner's pre-leap sizing: the flow
// pass fans out over even row blocks, then a serial step classifies the
// det-cache misses (the epoch's only shared-state writes), merges block
// flows in ascending block order, and sizes τ exactly like the serial
// planTau.
func (e *CountEngine) planTauSharded() (tau int64, frozen bool) {
	sr, bp, c := e.sr, e.bp, e.c
	rows := len(e.occ)
	if cap(sr.randRow) < rows {
		sr.randRow = make([]float64, rows)
	}
	sr.randRow = sr.randRow[:rows]
	nb := sr.splitEven(rows)
	fanned := int64(rows)*int64(rows) >= shardFanoutMinWork
	sr.runBlocks(nb, fanned, func(b int) { sr.blocks[b].flowPass(e, sr.randRow) })

	// Serial confirm: merge block flows in block order, then classify
	// the misses — the only det-cache writes and state discoveries of
	// the epoch, in ascending (row, responder) order.
	for _, blk := range sr.blocks[:nb] {
		for _, idx := range blk.ftouch {
			bp.addFlow(idx, blk.flow[idx])
		}
		blk.resetFlow()
	}
	totalW := float64(e.n) * float64(e.n-1)
	for _, blk := range sr.blocks[:nb] {
		for _, key := range blk.misses {
			pos, j := int(key>>32), int(uint32(key))
			i := e.occ[pos]
			ent := e.pairEntry(i, j)
			if ent.kind == pairNoop {
				continue
			}
			ci := c.counts[i]
			w := c.counts[j]
			if j == i {
				w = ci - 1
			}
			lam := float64(ci) * float64(w) / totalW
			if ent.kind == pairDet {
				for x := 0; x < int(ent.nm); x++ {
					d := float64(ent.d[x])
					if d < 0 {
						d = -d
					}
					bp.addFlow(int(ent.idx[x]), lam*d)
				}
			} else {
				bp.addFlow(i, lam)
				bp.addFlow(j, lam)
				sr.randRow[pos] += lam
			}
		}
		blk.misses = blk.misses[:0]
	}
	sr.randFlow = 0
	for pos := 0; pos < rows; pos++ {
		sr.randFlow += sr.randRow[pos]
	}
	if len(bp.ftouch) == 0 {
		return 0, true
	}
	best := float64(bp.maxTau)
	for _, idx := range bp.ftouch {
		f := bp.flow[idx]
		if f <= 0 {
			continue
		}
		target := bp.drift * float64(c.counts[idx]) / 2
		if target < 0.5 {
			target = 0.5
		}
		if t := target / f; t < best {
			best = t
		}
	}
	bp.resetFlow()
	return int64(best), false
}

// resolve is one block's resolve pass: the conditional-binomial
// responder decomposition of its rows on the block's private stream,
// deterministic pairs bulk-applied into block deltas, randomized pairs
// resolved through the block's shard closure (or deferred to the serial
// confirm step when the protocol has none). The full ordered pair plan
// is retained for the serial fallback on a merge conflict — which is
// why a drift violation mid-block stops delta resolution (the deltas
// will be discarded) but keeps sampling the decomposition: the fallback
// replays the plan for the whole epoch, so every block's plan must
// cover its full row totals. The binomial chain never depends on Delta
// outcomes, so the post-violation plan remains an exact conditional
// sample.
func (blk *shardBlock) resolve(e *CountEngine, rowTau []int64, delta func(qu, qv uint64, r *rng.Rand) (uint64, uint64)) {
	c := e.c
	det := e.bp.det
	blk.violated = false
	blk.deltaCalls = 0
	sinceCheck := int64(0)
	for pos := blk.lo; pos < blk.hi; pos++ {
		i := e.occ[pos]
		ri := rowTau[pos]
		if ri == 0 {
			continue
		}
		respRem, respW := ri, e.n-1
		for _, j := range e.occ {
			if respRem <= 0 {
				break
			}
			w := c.counts[j]
			if j == i {
				w--
			}
			if w <= 0 {
				continue
			}
			m := respRem
			if w < respW {
				m = blk.r.Binomial(respRem, float64(w)/float64(respW))
			}
			respRem -= m
			respW -= w
			if m == 0 {
				continue
			}
			blk.plan = append(blk.plan, pairCount{int32(i), int32(j), m})
			if blk.violated {
				continue
			}
			// The flow pass classified every occupied pair this epoch, so
			// the cache read cannot miss; a zero entry would only fall
			// through to the (always-correct) randomized path.
			ent := det[uint64(uint32(i))<<32|uint64(uint32(j))]
			switch ent.kind {
			case pairNoop:
			case pairDet:
				for x := 0; x < int(ent.nm); x++ {
					blk.add(int(ent.idx[x]), int64(ent.d[x])*m)
				}
			default:
				if delta == nil {
					blk.randPairs = append(blk.randPairs, pairCount{int32(i), int32(j), m})
				} else {
					qu, qv := c.codes[i], c.codes[j]
					blk.deltaCalls += m
					for x := int64(0); x < m; x++ {
						a, b := delta(qu, qv, blk.r)
						blk.applyRand(e, i, j, a, b)
					}
				}
			}
			sinceCheck += m
			if sinceCheck >= driftCheckStride {
				if !blk.safetyOK(e) {
					blk.violated = true
					continue
				}
				sinceCheck = 0
			}
		}
	}
	if !blk.violated && !blk.safetyOK(e) {
		blk.violated = true
	}
}

// applyEpochSharded executes one sharded epoch of tau interactions:
// serial row totals, parallel per-block resolution, serial merge and
// commit. On a merge conflict the full ordered plan falls back to the
// serial split/retry machinery. Returns the number of interactions
// executed.
func (e *CountEngine) applyEpochSharded(tau int64) int64 {
	sr, bp, c := e.sr, e.bp, e.c
	sr.epochSeq++
	e.stats.ShardEpochs++

	// Serial: the initiator-row binomial chain, on the engine stream.
	rows := len(e.occ)
	sr.rowTau = sr.rowTau[:0]
	rowRem, rowW := tau, e.n
	for _, i := range e.occ {
		ci := c.counts[i]
		ri := int64(0)
		if rowRem > 0 {
			ri = rowRem
			if ci < rowW {
				ri = e.r.Binomial(rowRem, float64(ci)/float64(rowW))
			}
			rowRem -= ri
		}
		rowW -= ci
		sr.rowTau = append(sr.rowTau, ri)
	}

	// Parallel: per-block responder decomposition and delta resolution,
	// each block on its (seed, epoch, block) stream.
	nb := sr.splitWeighted(rows, tau)
	e.stats.ShardBlocks += int64(nb)
	work := int64(rows)*int64(rows) + int64(sr.randFlow*float64(tau))
	epoch := sr.epochSeq
	sr.runBlocks(nb, work >= shardFanoutMinWork, func(b int) {
		blk := sr.blocks[b]
		blk.r.Reseed(shardStreamSeed(sr.seedBase, epoch, b))
		blk.resolve(e, sr.rowTau, sr.blockDelta(b))
	})

	// Serial confirm: reconcile provisional states, fold block deltas in
	// ascending block order, resolve deferred randomized pairs, and
	// commit under the global safety bound.
	violated := false
	for _, blk := range sr.blocks[:nb] {
		violated = violated || blk.violated
		e.stats.DeltaCalls += blk.deltaCalls
	}
	var remap map[uint64]uint64
	if sr.reconcile != nil {
		remap = sr.reconcile()
	}
	if !violated {
		for _, blk := range sr.blocks[:nb] {
			for _, idx := range blk.touched {
				bp.add(idx, blk.delta[idx])
			}
			for k, code := range blk.extraCode {
				if len(remap) > 0 {
					if canon, ok := remap[code]; ok {
						code = canon
					}
				}
				bp.add(e.stateIndex(code), blk.extraDelta[k])
			}
		}
		violated = !sr.resolveDeferred(nb)
	}
	if !violated && e.safetyOK() {
		for _, blk := range sr.blocks[:nb] {
			blk.resetAll()
		}
		e.commitDeltas()
		e.t += tau
		return tau
	}

	// Merge conflict: discard the shard deltas and replay the full
	// ordered plan (block order is ascending initiator order, so the
	// concatenation is exactly a serial planPairs plan) through the
	// serial split/retry machinery.
	e.stats.MergeConflicts++
	bp.reset()
	plan := sr.fullPlan[:0]
	for _, blk := range sr.blocks[:nb] {
		plan = append(plan, blk.plan...)
		blk.resetAll()
	}
	sr.fullPlan = plan
	return e.applyPlan(plan, tau)
}

// blockDelta returns block b's shard transition closure (nil when the
// protocol has none and randomized pairs defer to the confirm step).
func (sr *shardRunner) blockDelta(b int) func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
	if sr.deltas == nil {
		return nil
	}
	return sr.deltas[b]
}

// resolveDeferred serially resolves the randomized pairs of protocols
// without shard closures, on the engine stream in ascending block
// order, and reports whether the safety bound still holds.
func (sr *shardRunner) resolveDeferred(nb int) bool {
	e, bp := sr.e, sr.e.bp
	sinceCheck := int64(0)
	for _, blk := range sr.blocks[:nb] {
		for _, pc := range blk.randPairs {
			i, j := int(pc.i), int(pc.j)
			qu, qv := e.c.codes[i], e.c.codes[j]
			e.stats.DeltaCalls += pc.m
			for x := int64(0); x < pc.m; x++ {
				a, b := e.p.Delta(qu, qv, e.r)
				ia, ib := e.lookup(a, i, j), e.lookup(b, i, j)
				if ia != i || ib != j {
					bp.add(i, -1)
					bp.add(j, -1)
					bp.add(ia, 1)
					bp.add(ib, 1)
				}
			}
			sinceCheck += pc.m
			if sinceCheck >= driftCheckStride {
				if !e.safetyOK() {
					return false
				}
				sinceCheck = 0
			}
		}
	}
	return true
}

// stepBatchedSharded is stepBatched with the sharded planner: the same
// gates, backoff and exact-stepping fallbacks (those run on the engine
// stream, exactly like the serial mode), with epoch planning and
// application sharded across blocks.
func (e *CountEngine) stepBatchedSharded(count int64) {
	bp := e.bp
	if bp.maxTau < batchMinTau {
		e.stepExact(count)
		return
	}
	rem := count
	for rem > 0 {
		if e.sl != nil && e.rowW.Total() <= 0 {
			e.t += rem
			return
		}
		if bp.cool > 0 {
			run := bp.cool
			if run > rem {
				run = rem
			}
			e.stepExact(run)
			bp.cool -= run
			rem -= run
			continue
		}
		if rem < batchMinTau {
			e.stepExact(rem)
			return
		}
		occ2 := int64(len(e.occ)) * int64(len(e.occ))
		if occ2 >= bp.maxTau {
			bp.backoff()
			continue
		}
		tau, frozen := e.planTauSharded()
		if frozen {
			e.t += rem
			return
		}
		if tau < batchMinTau || tau < occ2/2 {
			bp.backoff()
			continue
		}
		if tau > rem {
			tau = rem
		}
		bp.bottom = false
		rem -= e.applyEpochSharded(tau)
		if bp.bottom {
			bp.backoff()
		} else {
			bp.coolLen = batchCoolBase
		}
	}
}

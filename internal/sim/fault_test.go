package sim

import (
	"errors"
	"testing"
)

// faultFixtureSpec is snapFixtureSpec plus an error predicate: a
// configuration mixing absorbed (level-7) agents with fresh init levels
// is only reachable through fault injection, so the predicate models the
// stable hybrids' damage detection.
func faultFixtureSpec(n int, skip bool) *Spec {
	s := snapFixtureSpec(n, skip)
	s.Errored = func(v ConfigView) bool {
		return v.Count(7) > 0 && v.Count(7) < v.N()
	}
	return s
}

// richPlan exercises every fault family at once: scheduled bursts (one
// spec-init, one random-target), Poisson corruption and churn streams,
// and the stale-replay adversary.
func richPlan() *FaultPlan {
	return &FaultPlan{
		Seed:          99,
		Bursts:        []FaultBurst{{At: 400, Agents: 5}, {At: 1100, Agents: 3, Random: true}},
		CorruptRate:   0.5,
		CorruptAgents: 2,
		Churn:         []FaultChurn{{At: 700, Agents: 4}},
		ChurnRate:     0.25,
		Adversary:     AdversaryStaleReplay,
		AdversaryRate: 1.0,
	}
}

func TestFaultPlanValidate(t *testing.T) {
	n := 64
	bad := []struct {
		name string
		plan FaultPlan
	}{
		{"negative burst time", FaultPlan{Bursts: []FaultBurst{{At: -1, Agents: 1}}}},
		{"zero burst agents", FaultPlan{Bursts: []FaultBurst{{At: 0, Agents: 0}}}},
		{"burst above n", FaultPlan{Bursts: []FaultBurst{{At: 0, Agents: n + 1}}}},
		{"negative churn agents", FaultPlan{Churn: []FaultChurn{{At: 0, Agents: -2}}}},
		{"negative rate", FaultPlan{CorruptRate: -0.5}},
		{"corrupt agents above n", FaultPlan{CorruptRate: 1, CorruptAgents: n + 1}},
		{"replay without rate", FaultPlan{Adversary: AdversaryStaleReplay}},
		{"bias without rate", FaultPlan{Adversary: AdversaryInitiatorBias}},
		{"unknown adversary", FaultPlan{Adversary: AdversaryKind(42)}},
	}
	for _, tc := range bad {
		if err := tc.plan.Validate(n); !errors.Is(err, ErrFaultPlan) {
			t.Errorf("%s: err = %v, want ErrFaultPlan", tc.name, err)
		}
	}
	good := FaultPlan{}
	if err := good.Validate(n); err != nil {
		t.Errorf("zero plan: err = %v, want nil", err)
	}
	if good.Enabled() {
		t.Error("zero plan reports Enabled")
	}
	var nilPlan *FaultPlan
	if nilPlan.Enabled() {
		t.Error("nil plan reports Enabled")
	}
	if !richPlan().Enabled() {
		t.Error("rich plan reports not Enabled")
	}
	if !(&FaultPlan{Adversary: AdversaryConvergence}).Enabled() {
		t.Error("adversary-only plan reports not Enabled")
	}
}

func TestFaultPlanNeedsSpecBackedProtocol(t *testing.T) {
	cfg := Config{Seed: 1, Faults: richPlan()}
	if _, err := NewEngine(&noSnapProtocol{n: 8}, cfg); !errors.Is(err, ErrFaultPlan) {
		t.Fatalf("agent engine on non-spec protocol: err = %v, want ErrFaultPlan", err)
	}
	if _, err := NewEngine(NewSpecAgent(faultFixtureSpec(8, false)), cfg); err != nil {
		t.Fatalf("agent engine on spec protocol: %v", err)
	}
}

// TestFaultScheduleDeterministic pins seed reproducibility: two agent
// engines built from equal (plan, Config) execute identical faulted
// trajectories — same agent codes, same fault counters — while a
// different plan seed diverges.
func TestFaultScheduleDeterministic(t *testing.T) {
	const n = 128
	chunks := []int64{300, 777, 1500, 2048}
	run := func(planSeed uint64) (*Engine, *SpecAgent) {
		t.Helper()
		plan := richPlan()
		plan.Seed = planSeed
		p := NewSpecAgent(faultFixtureSpec(n, false))
		e, err := NewEngine(p, Config{Seed: 11, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		stepChunks(e, chunks)
		return e, p
	}
	e1, p1 := run(99)
	e2, p2 := run(99)
	if e1.FaultStats() != e2.FaultStats() {
		t.Fatalf("fault stats diverged: %+v vs %+v", e1.FaultStats(), e2.FaultStats())
	}
	if e1.FaultStats().Events == 0 {
		t.Fatal("rich plan applied no events")
	}
	for i := 0; i < n; i++ {
		if p1.Code(i) != p2.Code(i) {
			t.Fatalf("agent %d diverged: %#x vs %#x", i, p1.Code(i), p2.Code(i))
		}
	}
	e3, _ := run(100)
	if e1.FaultStats() == e3.FaultStats() {
		t.Fatal("different plan seeds produced identical fault stats")
	}
}

// TestFaultAgentSnapshotResume pins the tentpole's bit-for-bit claim on
// the agent engine: a faulted run snapshotted mid-schedule and restored
// into a fresh engine finishes identical to the uninterrupted run.
func TestFaultAgentSnapshotResume(t *testing.T) {
	const n = 128
	cfg := Config{Seed: 5, Faults: richPlan()}
	mk := func() (*Engine, *SpecAgent) {
		t.Helper()
		p := NewSpecAgent(faultFixtureSpec(n, false))
		e, err := NewEngine(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, p
	}
	ref, refP := mk()
	stepChunks(ref, []int64{450, 500}) // lands mid-schedule, past burst 1
	snap, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	post := []int64{300, 1200, 2000}
	stepChunks(ref, post)

	res, resP := mk()
	if err := res.Restore(snap); err != nil {
		t.Fatal(err)
	}
	stepChunks(res, post)
	if ref.Interactions() != res.Interactions() {
		t.Fatalf("interactions: want %d, got %d", ref.Interactions(), res.Interactions())
	}
	if ref.FaultStats() != res.FaultStats() {
		t.Fatalf("fault stats: want %+v, got %+v", ref.FaultStats(), res.FaultStats())
	}
	for i := 0; i < n; i++ {
		if refP.Code(i) != resP.Code(i) {
			t.Fatalf("agent %d: want %#x, got %#x", i, refP.Code(i), resP.Code(i))
		}
	}
}

// TestFaultCountSnapshotResume pins the same property on the count
// engine in all three modes (plain, self-loop skip, batched).
func TestFaultCountSnapshotResume(t *testing.T) {
	cases := []struct {
		name  string
		skip  bool
		batch bool
	}{
		{"plain", false, false},
		{"skip", true, false},
		{"batched", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Seed: 21, BatchSteps: tc.batch, Faults: richPlan()}
			mk := func() *CountEngine {
				t.Helper()
				e, err := NewCountEngine(NewSpecCount(faultFixtureSpec(512, tc.skip)), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			ref := mk()
			stepChunks(ref, []int64{450, 500})
			snap, err := ref.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			post := []int64{300, 1200, 2000}
			stepChunks(ref, post)

			res := mk()
			if err := res.Restore(snap); err != nil {
				t.Fatal(err)
			}
			stepChunks(res, post)
			compareCountEngines(t, ref, res)
			if ref.FaultStats() != res.FaultStats() {
				t.Fatalf("fault stats: want %+v, got %+v", ref.FaultStats(), res.FaultStats())
			}
			if ref.FaultStats().Events == 0 {
				t.Fatal("rich plan applied no events")
			}
		})
	}

	// A faulted snapshot must not restore into a fault-free engine (and
	// vice versa): the feature flags disagree.
	faulted, err := NewCountEngine(NewSpecCount(faultFixtureSpec(64, false)), Config{Seed: 1, Faults: richPlan()})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := faulted.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewCountEngine(NewSpecCount(faultFixtureSpec(64, false)), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Restore(snap); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("faulted snapshot into clean engine: err = %v, want ErrSnapshotFormat", err)
	}
}

// TestFaultChurnConservesN pins the conservation invariant: churn
// replaces agents, so Σcounts stays exactly n through an aggressive
// churn-and-corruption schedule, on both count-engine modes.
func TestFaultChurnConservesN(t *testing.T) {
	const n = 256
	plan := &FaultPlan{
		Seed:        7,
		ChurnRate:   4.0,
		ChurnAgents: 8,
		CorruptRate: 2.0,
		Churn:       []FaultChurn{{At: 100, Agents: n}}, // full replacement
		Bursts:      []FaultBurst{{At: 150, Agents: n, Random: true}},
	}
	for _, batch := range []bool{false, true} {
		// The aggressive rates need an explicit horizon: over the default
		// interaction budget they would compile past the event cap.
		e, err := NewCountEngine(NewSpecCount(faultFixtureSpec(n, true)), Config{Seed: 3, MaxInteractions: 8000, BatchSteps: batch, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int64{90, 20, 50, 500, 3000} {
			e.Step(chunk)
			var sum int64
			e.Counts().ForEach(func(_ uint64, cnt int64) { sum += cnt })
			if sum != n {
				t.Fatalf("batch=%v after t=%d: Σcounts = %d, want %d", batch, e.Interactions(), sum, n)
			}
		}
		if churned := e.FaultStats().Churned; churned < n {
			t.Fatalf("batch=%v: churned %d agents, want ≥ %d", batch, churned, n)
		}
	}
}

// TestFaultConvergenceAdversary pins the corruption-timed adversary and
// the recovery instrumentation: the strike lands at the first converged
// poll, the error flag is raised, and the run recovers to genuine
// re-convergence with a recorded reconvergence window.
func TestFaultConvergenceAdversary(t *testing.T) {
	const n = 64
	plan := &FaultPlan{Seed: 13, Adversary: AdversaryConvergence, AdversaryAgents: 16}
	mkAgent := func() (Result, FaultStats) {
		t.Helper()
		e, err := NewEngine(NewSpecAgent(faultFixtureSpec(n, false)), Config{Seed: 2, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		return res, e.FaultStats()
	}
	mkCount := func() (Result, FaultStats) {
		t.Helper()
		e, err := NewCountEngine(NewSpecCount(faultFixtureSpec(n, true)), Config{Seed: 2, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		return res, e.FaultStats()
	}
	for name, mk := range map[string]func() (Result, FaultStats){"agent": mkAgent, "count": mkCount} {
		res, st := mk()
		if !res.Converged {
			t.Fatalf("%s: faulted run did not re-converge", name)
		}
		if st.Events != 1 || st.Corrupted != 16 {
			t.Fatalf("%s: stats %+v, want exactly one 16-agent strike", name, st)
		}
		if st.Reconvergences != 1 || st.ReconvergeTotal <= 0 || st.ReconvergeMax != st.ReconvergeTotal {
			t.Fatalf("%s: recovery window not recorded: %+v", name, st)
		}
		if st.ErrorLatency < 0 {
			t.Fatalf("%s: error flag never detected: %+v", name, st)
		}
	}
}

// TestFaultInitiatorBias smoke-checks the bias adversary on both engine
// forms: events are compiled, every event forces an interaction, and
// the trajectory stays well-formed.
func TestFaultInitiatorBias(t *testing.T) {
	plan := &FaultPlan{Seed: 4, Adversary: AdversaryInitiatorBias, AdversaryRate: 2.0}
	e, err := NewEngine(NewSpecAgent(faultFixtureSpec(64, false)), Config{Seed: 9, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	e.Step(4000)
	st := e.FaultStats()
	if st.Events == 0 || st.Forced != st.Events {
		t.Fatalf("agent bias adversary: %+v, want every event forced", st)
	}
	ce, err := NewCountEngine(NewSpecCount(faultFixtureSpec(64, true)), Config{Seed: 9, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	ce.Step(4000)
	cst := ce.FaultStats()
	if cst.Events == 0 || cst.Forced != cst.Events {
		t.Fatalf("count bias adversary: %+v, want every event forced", cst)
	}
	var sum int64
	ce.Counts().ForEach(func(_ uint64, cnt int64) { sum += cnt })
	if sum != 64 {
		t.Fatalf("count bias adversary: Σcounts = %d, want 64", sum)
	}
}

package sim_test

import (
	"math"
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/sim"
)

// TestCountEngineConservation steps count protocols in uneven batches
// and asserts the agent-conservation invariant Σ counts == n after every
// batch, on both the skip and the per-interaction path.
func TestCountEngineConservation(t *testing.T) {
	const n = 256
	protos := map[string]func() sim.CountProtocol{
		"epidemic":  func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		"junta":     func() sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(n)) },
		"clock":     func() sim.CountProtocol { return sim.NewSpecCount(clock.NewSpec(n, clock.DefaultM, 16, 3)) },
		"geometric": func() sim.CountProtocol { return sim.NewSpecCount(baseline.NewGeometricSpec(n)) },
	}
	for name, mk := range protos {
		for _, disable := range []bool{false, true} {
			e, err := sim.NewCountEngine(mk(), sim.Config{Seed: 7, DisableBatch: disable})
			if err != nil {
				t.Fatalf("%s: NewCountEngine: %v", name, err)
			}
			for _, batch := range []int64{1, 3, 17, 100, 1000, 4096, 10000} {
				e.Step(batch)
				if got := e.Counts().Sum(); got != n {
					t.Fatalf("%s (disableSkip=%v): Σ counts = %d after batch, want %d",
						name, disable, got, n)
				}
				e.Counts().ForEach(func(code uint64, cnt int64) {
					if cnt < 0 {
						t.Fatalf("%s: negative count %d for state %#x", name, cnt, code)
					}
				})
			}
		}
	}
}

// TestCountEngineEpidemicConverges checks the count engine drives a
// broadcast to the all-maximum configuration and reports a plausible
// convergence time (Θ(n log n)).
func TestCountEngineEpidemicConverges(t *testing.T) {
	const n = 4096
	res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)),
		sim.Config{Seed: 3, CheckEvery: n / 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("broadcast did not converge")
	}
	norm := float64(res.Interactions) / (float64(n) * math.Log(float64(n)))
	if norm < 0.5 || norm > 20 {
		t.Fatalf("T/(n ln n) = %.2f outside plausible range", norm)
	}
}

// TestCountEngineSkipMatchesPerInteraction compares the skip path
// against the per-interaction path distributionally: mean convergence
// time over paired trials must agree within tolerance. (The two paths
// consume randomness differently, so runs are not bit-for-bit equal.)
func TestCountEngineSkipMatchesPerInteraction(t *testing.T) {
	const (
		n      = 512
		trials = 32
		tol    = 0.20
	)
	mean := func(disable bool) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			res, err := sim.RunCount(sim.NewSpecCount(junta.NewSpec(n)), sim.Config{
				Seed:         sim.TrialSeed(11, i),
				CheckEvery:   n / 4,
				DisableBatch: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("trial %d (disable=%v) did not converge", i, disable)
			}
			sum += float64(res.Interactions)
		}
		return sum / trials
	}
	skip, plain := mean(false), mean(true)
	if d := math.Abs(skip-plain) / plain; d > tol {
		t.Fatalf("skip-path mean %.0f vs per-interaction mean %.0f: relative gap %.2f > %.2f",
			skip, plain, d, tol)
	}
}

// TestCountEngineFrozenConfig pins the absorbing no-op behavior: a
// configuration where every pair is a certain no-op must pass whole
// batches in one jump instead of looping.
func TestCountEngineFrozenConfig(t *testing.T) {
	p := sim.NewSpecCount(epidemic.NewSpec([]int64{5, 5, 5, 5}, true)) // already uniform
	e, err := sim.NewCountEngine(p, sim.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Step(1 << 40)
	if got := e.Interactions(); got != 1<<40 {
		t.Fatalf("Interactions = %d, want %d", got, int64(1)<<40)
	}
	if !e.Converged() {
		t.Fatal("uniform configuration should be converged")
	}
}

// TestCountEngineRejectsNonUniformScheduler pins ErrCountScheduler: the
// configuration view is only valid under the uniform scheduler.
func TestCountEngineRejectsNonUniformScheduler(t *testing.T) {
	_, err := sim.NewCountEngine(sim.NewSpecCount(junta.NewSpec(64)),
		sim.Config{Scheduler: sim.BiasedScheduler{Hot: 0, Bias: 0.2}})
	if err != sim.ErrCountScheduler {
		t.Fatalf("got %v, want ErrCountScheduler", err)
	}
	if _, err := sim.NewCountEngine(sim.NewSpecCount(junta.NewSpec(64)),
		sim.Config{Scheduler: sim.UniformScheduler{}}); err != nil {
		t.Fatalf("uniform scheduler rejected: %v", err)
	}
}

// TestCountEngineReproducible pins seed determinism: equal seeds yield
// identical results and final configurations.
func TestCountEngineReproducible(t *testing.T) {
	run := func() (sim.Result, map[uint64]int64) {
		e, err := sim.NewCountEngine(sim.NewSpecCount(baseline.NewGeometricSpec(1000)), sim.Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunToConvergence()
		if err != nil {
			t.Fatal(err)
		}
		final := map[uint64]int64{}
		e.Counts().ForEach(func(code uint64, cnt int64) { final[code] = cnt })
		return res, final
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	if len(f1) != len(f2) {
		t.Fatalf("final configurations differ: %v vs %v", f1, f2)
	}
	for code, cnt := range f1 {
		if f2[code] != cnt {
			t.Fatalf("final configurations differ at %#x: %d vs %d", code, cnt, f2[code])
		}
	}
}

// TestCountEngineConfirmWindowAndObserver exercises the shared driver
// features — ConfirmWindow, Observe, Interrupt — on the count engine.
func TestCountEngineConfirmWindowAndObserver(t *testing.T) {
	const n = 256
	polls := 0
	cfg := sim.Config{
		Seed:          5,
		CheckEvery:    n,
		ConfirmWindow: 4 * n,
		Observe:       func(sim.Observation) { polls++ },
	}
	res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, false)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Stable {
		t.Fatalf("expected stable convergence, got %+v", res)
	}
	if res.Total != res.Interactions+4*n {
		t.Fatalf("Total = %d, want Interactions+window = %d", res.Total, res.Interactions+4*n)
	}
	if polls == 0 {
		t.Fatal("observer never fired")
	}

	// Interrupt before any work: the run must stop at the first batch.
	cfg = sim.Config{Seed: 5, Interrupt: func() bool { return true }}
	res, err = sim.RunCount(sim.NewSpecCount(junta.NewSpec(n)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Total != 0 {
		t.Fatalf("expected immediate interrupt, got %+v", res)
	}
}

// TestRunCountTrials pins the trial driver: per-trial seeds match
// RunTrials' derivation and results arrive in trial order.
func TestRunCountTrials(t *testing.T) {
	const n, trials = 256, 8
	runs, err := sim.RunCountTrials(
		func(int) sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		trials, sim.Config{Seed: 21}, sim.CountTrialOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		if !run.Result.Converged {
			t.Fatalf("trial %d did not converge", i)
		}
		// Re-run the trial standalone with its derived seed: must match.
		solo, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)),
			sim.Config{Seed: sim.TrialSeed(21, i)})
		if err != nil {
			t.Fatal(err)
		}
		if solo != run.Result {
			t.Fatalf("trial %d: ensemble %+v vs solo %+v", i, run.Result, solo)
		}
	}
}

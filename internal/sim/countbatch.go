// Multinomial batch stepping for the count engine: instead of drawing
// one ordered pair per interaction, the engine steps the configuration
// forward a whole epoch of τ interactions at once.
//
// Under the uniform scheduler, the τ interactions of an epoch project
// onto ordered (initiator-state, responder-state) pairs as a multinomial
// over the pair weights c[i]·(c[j]−[i=j]) — assuming the configuration
// stays frozen across the epoch. The planner samples that multinomial by
// a chain of conditional binomials (rows over initiator states, then
// responders within each row), resolves every sampled pair type through
// a transition matrix derived once per protocol (DeterministicDelta,
// falling back to per-interaction Delta calls for randomized pairs), and
// applies the net count deltas in bulk.
//
// Fidelity is controlled pre-leap, in the standard τ-leaping way: before
// sampling, the planner computes each state's expected count-change rate
// from the cached transition matrix and sizes τ so that the expected
// net change of every state stays within half the drift bound
// max(1, drift·count). Sized this way, a sampled epoch is applied
// essentially always, so the applied transition counts are unbiased
// draws at the frozen rates and the only systematic error is the
// frozen-rate (τ-leap) bias itself, of order drift/4 per epoch. A
// rejection test — any touched state driven negative, or past a hard
// bound several times the target — remains as a safety net for the
// regimes the rate estimate cannot see (randomized transitions
// concentrating mass on fresh states); a rejected epoch is split in
// half with conditional hypergeometrics (the τ slots are exchangeable,
// so the first half of an already-sampled batch is a multivariate
// hypergeometric of the sampled pair totals), the first half retried
// recursively, the second half re-planned from the updated
// configuration. Rejections must stay rare: a post-hoc accept/reject on
// the sampled content censors high-churn prefixes and drags the
// dynamics, which is measurable when rejection is the τ controller (a
// ~30% convergence-time inflation on the epidemic) and immeasurable at
// the safety net's trigger rates.
//
// Epochs that cannot reach the batching threshold — tiny populations,
// sampling-dominated phases, rejection cascades — fall back to exact
// sequential stepping with exponential backoff before batching is
// retried. The fallback runs the same code path, with the same
// randomness consumption, as a non-batched engine, so a batch-mode
// engine stepped only below the threshold stays bit-for-bit equal to a
// sequential one.
//
// The result is o(1) amortized cost per interaction where the
// configuration mixes slowly enough to batch: one epoch costs
// O(occupied² + sampled pair types) regardless of τ, so the
// Θ(n log n)-interaction skip-path protocols cost polylog(n) epochs end
// to end.
package sim

// DeterministicDelta is the optional transition-matrix fast path of the
// batch-stepping mode. DeltaDet reports the successor pair of δ(qu, qv)
// when the transition is deterministic and consumes no synthetic coins;
// ok=false marks randomized pairs, which the engine resolves with one
// Delta call per interaction instead of one table lookup per pair type.
// DeltaDet must agree exactly with Delta on every pair it claims (the
// engine derives and caches the per-pair transition matrix from it),
// and like SelfLoop it may be incomplete: returning ok=false for a
// deterministic pair only costs speed, never correctness.
type DeterministicDelta interface {
	DeltaDet(qu, qv uint64) (qu2, qv2 uint64, ok bool)
}

const (
	// batchMinTau is the epoch size below which batching cannot beat
	// sequential stepping: Step remainders, pre-leap τ estimates and
	// epochs split this fine run the exact per-interaction path.
	batchMinTau = 64
	// defaultBatchDrift is the default per-state relative drift bound.
	defaultBatchDrift = 0.125
	// batchCoolBase is the initial exact-stepping backoff after batching
	// fails to pay off (τ* below threshold or a rejection cascade); the
	// backoff doubles while failures repeat, so unbatchable regimes
	// degrade to exact stepping with vanishing planning overhead.
	batchCoolBase = 4 * batchMinTau
	// driftCheckStride bounds the work wasted on an epoch that will be
	// rejected: long randomized-Delta loops re-check the safety bound
	// every stride interactions and abort early on violation.
	driftCheckStride = 1024
)

// pairCount is one sampled pair type of an epoch plan: m of the epoch's
// interactions fall on initiator state i and responder state j (dense
// indices).
type pairCount struct {
	i, j int32
	m    int64
}

// pair-classification kinds cached per ordered dense state pair.
const (
	pairRandomized = iota // resolve with one Delta call per interaction
	pairDet               // deterministic: bulk-apply the cached net moves
	pairNoop              // identity on the configuration: no deltas
)

// detEntry is the cached transition-matrix entry of one ordered dense
// pair: its kind and, for deterministic pairs, the netted count moves
// (at most four states change, by ±1 or ±2 agents each).
type detEntry struct {
	kind uint8
	nm   uint8 // number of netted moves
	idx  [4]int32
	d    [4]int16
}

// batchPlanner holds the batch-stepping state and scratch of one
// CountEngine.
type batchPlanner struct {
	maxTau int64   // epoch cap: BatchMaxRounds·n
	drift  float64 // relative per-state drift bound

	dd  DeterministicDelta  // nil: every pair is resolved via Delta
	det map[uint64]detEntry // ordered dense pair -> transition matrix

	cool    int64 // remaining exact-stepping backoff
	coolLen int64 // next backoff length (doubles on repeat failures)
	bottom  bool  // the last epoch cascaded into the exact fallback

	plan    []pairCount // scratch: current epoch's sampled pair types
	delta   []int64     // scratch: per dense state net count change
	seen    []bool      // scratch: delta[idx] has been touched
	touched []int       // scratch: indices with seen set
	flow    []float64   // scratch: per dense state expected change rate
	fseen   []bool
	ftouch  []int
}

// newBatchPlanner wires batch stepping for an engine over n agents.
func newBatchPlanner(p CountProtocol, cfg Config, n int64) *batchPlanner {
	rounds := cfg.BatchMaxRounds
	if rounds <= 0 {
		rounds = 1
	}
	drift := cfg.BatchDrift
	if drift <= 0 {
		drift = defaultBatchDrift
	}
	bp := &batchPlanner{
		maxTau:  int64(rounds) * n,
		drift:   drift,
		det:     make(map[uint64]detEntry),
		coolLen: batchCoolBase,
	}
	bp.dd, _ = p.(DeterministicDelta)
	return bp
}

// backoff schedules an exact-stepping cooloff, doubling on repeated
// failures up to one epoch cap.
func (bp *batchPlanner) backoff() {
	bp.cool = bp.coolLen
	bp.coolLen *= 2
	if bp.coolLen > bp.maxTau {
		bp.coolLen = bp.maxTau
	}
}

// add accumulates a count delta for dense state idx, growing the
// scratch on first sight of a freshly discovered state.
func (bp *batchPlanner) add(idx int, d int64) {
	for idx >= len(bp.delta) {
		bp.delta = append(bp.delta, 0)
		bp.seen = append(bp.seen, false)
	}
	if !bp.seen[idx] {
		bp.seen[idx] = true
		bp.touched = append(bp.touched, idx)
	}
	bp.delta[idx] += d
}

// reset clears the delta scratch.
func (bp *batchPlanner) reset() {
	for _, idx := range bp.touched {
		bp.delta[idx] = 0
		bp.seen[idx] = false
	}
	bp.touched = bp.touched[:0]
}

// addFlow accumulates an expected-change rate for dense state idx.
func (bp *batchPlanner) addFlow(idx int, f float64) {
	for idx >= len(bp.flow) {
		bp.flow = append(bp.flow, 0)
		bp.fseen = append(bp.fseen, false)
	}
	if !bp.fseen[idx] {
		bp.fseen[idx] = true
		bp.ftouch = append(bp.ftouch, idx)
	}
	bp.flow[idx] += f
}

// resetFlow clears the flow scratch.
func (bp *batchPlanner) resetFlow() {
	for _, idx := range bp.ftouch {
		bp.flow[idx] = 0
		bp.fseen[idx] = false
	}
	bp.ftouch = bp.ftouch[:0]
}

// stepBatched executes exactly count interactions in pre-leap-sized,
// drift-bounded epochs, falling back to exact sequential stepping for
// remainders too small to batch and for regimes where batching cannot
// pay off.
func (e *CountEngine) stepBatched(count int64) {
	bp := e.bp
	if bp.maxTau < batchMinTau {
		// The population is too small for any epoch to reach the
		// batching threshold: batch mode degenerates to the exact path.
		e.stepExact(count)
		return
	}
	rem := count
	for rem > 0 {
		if e.sl != nil && e.rowW.Total() <= 0 {
			// Every pair is a certain no-op: the configuration is
			// frozen, the remaining interactions pass in one jump.
			e.t += rem
			return
		}
		if bp.cool > 0 {
			// Exact-stepping backoff after a planning failure.
			run := bp.cool
			if run > rem {
				run = rem
			}
			e.stepExact(run)
			bp.cool -= run
			rem -= run
			continue
		}
		if rem < batchMinTau {
			e.stepExact(rem)
			return
		}
		// Epoch planning costs O(occupied²) regardless of τ — the
		// pre-leap rate accumulation and the multinomial decomposition
		// both walk every occupied ordered pair. Product-state protocols
		// in a scattered regime (CountExact mid-balancing holds ~n
		// distinct loads, one agent each) can square the occupied
		// alphabet past anything an epoch could amortize; planning there
		// costs more than exactly executing the epoch would. Gate on the
		// epoch cap before planning, and on the actual τ after: batching
		// pays only while occupied² stays well below the interactions an
		// epoch executes.
		occ2 := int64(len(e.occ)) * int64(len(e.occ))
		if occ2 >= bp.maxTau {
			bp.backoff()
			continue
		}
		tau, frozen := e.planTau()
		if frozen {
			e.t += rem
			return
		}
		if tau < batchMinTau || tau < occ2/2 {
			// The drift target allows only tiny epochs here (fast-mixing
			// or freshly-seeded states, or an alphabet too scattered to
			// amortize the planner): batching cannot pay off, step
			// exactly and retry later.
			bp.backoff()
			continue
		}
		if tau > rem {
			tau = rem
		}
		bp.bottom = false
		rem -= e.applyPlan(e.planPairs(tau), tau)
		if bp.bottom {
			bp.backoff()
		} else {
			bp.coolLen = batchCoolBase
		}
	}
}

// stepExact runs the per-interaction path (with the self-loop skip when
// available) — the same code, and the same randomness consumption, as a
// non-batched engine.
func (e *CountEngine) stepExact(count int64) {
	if e.sl != nil {
		e.stepSkip(count)
	} else {
		e.stepEach(count)
	}
}

// planTau sizes the next epoch pre-leap: it accumulates every occupied
// ordered pair's per-interaction rate λ = c[i]·(c[j]−[i=j])/(n·(n−1))
// into the expected change rates of the states the pair's transition
// touches (the cached net moves for deterministic pairs; the two source
// states for randomized ones) and returns the largest τ that keeps
// every state's expected net change within half its drift bound
// max(1, drift·count). frozen reports that no occupied pair can change
// the configuration at all — the chain is absorbed.
func (e *CountEngine) planTau() (tau int64, frozen bool) {
	bp := e.bp
	c := e.c
	totalW := float64(e.n) * float64(e.n-1)
	for _, i := range e.occ {
		ci := c.counts[i]
		for _, j := range e.occ {
			w := c.counts[j]
			if j == i {
				w = ci - 1
			}
			if w == 0 {
				continue
			}
			ent := e.pairEntry(i, j)
			if ent.kind == pairNoop {
				continue
			}
			lam := float64(ci) * float64(w) / totalW
			if ent.kind == pairDet {
				for x := 0; x < int(ent.nm); x++ {
					d := float64(ent.d[x])
					if d < 0 {
						d = -d
					}
					bp.addFlow(int(ent.idx[x]), lam*d)
				}
			} else {
				bp.addFlow(i, lam)
				bp.addFlow(j, lam)
			}
		}
	}
	if len(bp.ftouch) == 0 {
		return 0, true
	}
	best := float64(bp.maxTau)
	for _, idx := range bp.ftouch {
		f := bp.flow[idx]
		if f <= 0 {
			continue
		}
		target := bp.drift * float64(c.counts[idx]) / 2
		if target < 0.5 {
			target = 0.5
		}
		if t := target / f; t < best {
			best = t
		}
	}
	bp.resetFlow()
	return int64(best), false
}

// pairEntry returns the cached transition-matrix entry for one ordered
// dense pair, deriving it on first sight.
func (e *CountEngine) pairEntry(i, j int) detEntry {
	key := uint64(uint32(i))<<32 | uint64(uint32(j))
	ent, ok := e.bp.det[key]
	if !ok {
		ent = e.classifyPair(i, j)
		e.bp.det[key] = ent
	}
	return ent
}

// classifyPair derives the transition-matrix entry for one ordered
// dense pair, preferring the cheap SelfLoop predicate, then the
// protocol's deterministic transition table. Deterministic transitions
// are netted into per-state moves; a pair whose net moves vanish (an
// identity, or a swap of the two states) is a configuration no-op.
func (e *CountEngine) classifyPair(i, j int) detEntry {
	qu, qv := e.c.codes[i], e.c.codes[j]
	if e.sl != nil && e.sl.SelfLoop(qu, qv) {
		return detEntry{kind: pairNoop}
	}
	if e.bp.dd != nil {
		if a, b, ok := e.bp.dd.DeltaDet(qu, qv); ok {
			ia, ib := e.lookup(a, i, j), e.lookup(b, i, j)
			ent := detEntry{kind: pairDet}
			net := func(idx int, d int16) {
				for x := 0; x < int(ent.nm); x++ {
					if ent.idx[x] == int32(idx) {
						ent.d[x] += d
						return
					}
				}
				ent.idx[ent.nm], ent.d[ent.nm] = int32(idx), d
				ent.nm++
			}
			net(i, -1)
			net(j, -1)
			net(ia, 1)
			net(ib, 1)
			// Compact zero moves; a fully cancelled transition (identity
			// or swap) leaves the configuration unchanged.
			keep := uint8(0)
			for x := 0; x < int(ent.nm); x++ {
				if ent.d[x] != 0 {
					ent.idx[keep], ent.d[keep] = ent.idx[x], ent.d[x]
					keep++
				}
			}
			ent.nm = keep
			if keep == 0 {
				return detEntry{kind: pairNoop}
			}
			return ent
		}
	}
	return detEntry{kind: pairRandomized}
}

// planPairs samples how the next tau interactions distribute over
// ordered (initiator-state, responder-state) pairs, assuming the
// configuration frozen: rows by conditional binomials over the
// initiator weights c[i], then responders within each row over the
// weights c[j]−[i=j]. The sampled counts always sum to exactly tau.
func (e *CountEngine) planPairs(tau int64) []pairCount {
	bp := e.bp
	plan := bp.plan[:0]
	c := e.c
	rowRem, rowW := tau, e.n
	for _, i := range e.occ {
		if rowRem <= 0 {
			break
		}
		ci := c.counts[i]
		ri := rowRem
		if ci < rowW {
			ri = e.r.Binomial(rowRem, float64(ci)/float64(rowW))
		}
		rowRem -= ri
		rowW -= ci
		if ri == 0 {
			continue
		}
		respRem, respW := ri, e.n-1
		for _, j := range e.occ {
			if respRem <= 0 {
				break
			}
			w := c.counts[j]
			if j == i {
				w--
			}
			if w <= 0 {
				continue
			}
			m := respRem
			if w < respW {
				m = e.r.Binomial(respRem, float64(w)/float64(respW))
			}
			respRem -= m
			respW -= w
			if m > 0 {
				plan = append(plan, pairCount{int32(i), int32(j), m})
			}
		}
	}
	bp.plan = plan
	return plan
}

// applyPlan resolves a sampled epoch plan into net count deltas and
// applies it unless the safety bound trips. On a violation the epoch is
// halved: the first half of the plan is carved out hypergeometrically
// and retried recursively. The second half keeps its already-sampled
// pair counts and, once the full first half has executed, is rechecked
// against the updated configuration and applied as-is when the
// post-leap bound holds (Anderson-style conditional reuse: conditioned
// on the first half, the retained counts are exactly the multivariate-
// hypergeometric remainder of the epoch's sample, so reusing them keeps
// the accepted samples uncensored — discarding them unconditionally
// would resample, and thereby bias, every post-violation half-epoch).
// Only when the recheck also fails, or the first half fell through to
// the exact path short of its sampled size, is the second half
// discarded for the caller to re-plan from the updated configuration.
// Returns the number of interactions executed.
func (e *CountEngine) applyPlan(plan []pairCount, tau int64) int64 {
	if tau < batchMinTau {
		// Too fine to batch: discard the plan and replay the
		// interactions exactly.
		e.bp.bottom = true
		e.stepExact(tau)
		return tau
	}
	if e.resolveDeltas(plan) {
		e.commitDeltas()
		e.t += tau
		return tau
	}
	e.stats.Violations++
	e.bp.reset()
	half := tau / 2
	first, second := e.splitPlan(plan, half, tau)
	done := e.applyPlan(first, half)
	if done != half || e.bp.bottom {
		// The first half was not executed as sampled: either it came up
		// short (a nested second half was discarded mid-cascade), or some
		// leaf of its cascade hit the exact fallback — which replays the
		// interactions with fresh scalar randomness instead of applying
		// the sampled pair counts (bp.bottom records this; stepBatched
		// clears it before every top-level plan, so a set flag here can
		// only come from this call tree). Either way the second half's
		// counts are conditioned on first-half content that never ran,
		// and reusing them would break the hypergeometric conditioning.
		e.stats.HalfDiscards++
		return done
	}
	if e.resolveDeltas(second) {
		e.commitDeltas()
		e.t += tau - half
		e.stats.HalfReuses++
		return tau
	}
	e.stats.Violations++
	e.stats.HalfDiscards++
	e.bp.reset()
	return done
}

// commitDeltas applies the resolved per-state deltas in the planner
// scratch to the configuration and counts the epoch.
func (e *CountEngine) commitDeltas() {
	bp := e.bp
	for _, idx := range bp.touched {
		if d := bp.delta[idx]; d != 0 {
			e.shift(idx, d)
		}
	}
	bp.reset()
	e.stats.Epochs++
}

// splitPlan carves a sampled plan of tau interactions into its first
// half interactions and the remainder: the slots of an epoch are
// exchangeable, so the first-half count of each pair type is a
// conditional (multivariate) hypergeometric of the sampled totals, and
// the second half is the exact complement.
func (e *CountEngine) splitPlan(plan []pairCount, half, tau int64) (first, second []pairCount) {
	first = make([]pairCount, 0, len(plan))
	second = make([]pairCount, 0, len(plan))
	sampleRem, totalRem := half, tau
	for _, pc := range plan {
		h := int64(0)
		if sampleRem > 0 {
			h = sampleRem
			if pc.m < totalRem {
				h = e.r.Hypergeometric(sampleRem, pc.m, totalRem)
			}
			sampleRem -= h
		}
		totalRem -= pc.m
		if h > 0 {
			first = append(first, pairCount{pc.i, pc.j, h})
		}
		if rest := pc.m - h; rest > 0 {
			second = append(second, pairCount{pc.i, pc.j, rest})
		}
	}
	return first, second
}

// resolveDeltas turns a plan into net per-state count deltas in the
// planner scratch and reports whether the safety bound holds.
// Randomized pairs call Delta per interaction, re-checking the bound
// periodically so a doomed epoch aborts early.
func (e *CountEngine) resolveDeltas(plan []pairCount) bool {
	bp := e.bp
	sinceCheck := int64(0)
	for _, pc := range plan {
		i, j := int(pc.i), int(pc.j)
		ent := e.pairEntry(i, j)
		switch ent.kind {
		case pairNoop:
			continue
		case pairDet:
			for x := 0; x < int(ent.nm); x++ {
				bp.add(int(ent.idx[x]), int64(ent.d[x])*pc.m)
			}
		default:
			qu, qv := e.c.codes[i], e.c.codes[j]
			e.stats.DeltaCalls += pc.m
			for x := int64(0); x < pc.m; x++ {
				a, b := e.p.Delta(qu, qv, e.r)
				ia, ib := e.lookup(a, i, j), e.lookup(b, i, j)
				if ia != i || ib != j {
					bp.add(i, -1)
					bp.add(j, -1)
					bp.add(ia, 1)
					bp.add(ib, 1)
				}
			}
		}
		sinceCheck += pc.m
		if sinceCheck >= driftCheckStride {
			if !e.safetyOK() {
				return false
			}
			sinceCheck = 0
		}
	}
	return e.safetyOK()
}

// safetyOK reports whether the accumulated deltas keep every touched
// state non-negative and inside the hard bound max(8, 2·drift·count) —
// several times the pre-leap target, so with τ sized by planTau the
// test almost never trips and the applied counts stay unbiased (see
// the package comment on rejection censoring).
func (e *CountEngine) safetyOK() bool {
	bp := e.bp
	for _, idx := range bp.touched {
		d := bp.delta[idx]
		if d == 0 {
			continue
		}
		cnt := e.c.counts[idx]
		if cnt+d < 0 {
			return false
		}
		lim := int64(2 * bp.drift * float64(cnt))
		if lim < 8 {
			lim = 8
		}
		if d > lim || d < -lim {
			return false
		}
	}
	return true
}

package sim_test

import (
	"testing"

	"popcount/internal/rng"
	"popcount/internal/sim"
)

// TestDeltaMemoCachesDeterministic pins the memo's core promise: a
// deterministic pair's closure runs exactly once, every repeat is a
// table hit with identical successors.
func TestDeltaMemoCachesDeterministic(t *testing.T) {
	calls := 0
	m := sim.NewDeltaMemo(func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		calls++
		return qu + 1, qv + 2
	}, nil)
	for i := 0; i < 100; i++ {
		a, b := m.Delta(3, 5, nil)
		if a != 4 || b != 7 {
			t.Fatalf("Delta(3,5) = (%d,%d), want (4,7)", a, b)
		}
	}
	if calls != 1 {
		t.Fatalf("closure ran %d times for one pair, want 1", calls)
	}
	if m.Pairs() != 1 {
		t.Fatalf("Pairs() = %d, want 1", m.Pairs())
	}
}

// TestDeltaMemoRandomizedPassThrough pins that claimed pairs always
// resolve through the closure (they consume coins), while their
// classification is memoized: the predicate runs once per pair.
func TestDeltaMemoRandomizedPassThrough(t *testing.T) {
	deltas, classifies := 0, 0
	m := sim.NewDeltaMemo(
		func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			deltas++
			return qu, qv
		},
		func(qu, qv uint64) bool {
			classifies++
			return true
		})
	for i := 0; i < 50; i++ {
		m.Delta(1, 2, nil)
	}
	if deltas != 50 {
		t.Fatalf("randomized pair resolved %d times through the closure, want 50", deltas)
	}
	if classifies != 1 {
		t.Fatalf("claim predicate ran %d times, want 1", classifies)
	}
	if got, _, ok := m.DeltaDet(1, 2); ok || got != 0 {
		t.Fatalf("DeltaDet on a randomized pair reported deterministic")
	}
}

// TestDeltaMemoClassifyDoesNotResolve pins the pending state: asking
// Randomized about a deterministic pair must not run Delta — for
// interned specs a premature resolution would intern successors out of
// trajectory order.
func TestDeltaMemoClassifyDoesNotResolve(t *testing.T) {
	deltas := 0
	m := sim.NewDeltaMemo(
		func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			deltas++
			return qu, qv
		},
		func(qu, qv uint64) bool { return false })
	for i := 0; i < 10; i++ {
		if m.Randomized(7, 9) {
			t.Fatal("Randomized(7,9) = true, want false")
		}
	}
	if deltas != 0 {
		t.Fatalf("classification resolved the pair %d times, want 0", deltas)
	}
	if a, b := m.Delta(7, 9, nil); a != 7 || b != 9 {
		t.Fatalf("Delta after classification = (%d,%d), want (7,9)", a, b)
	}
	if deltas != 1 {
		t.Fatalf("first resolution ran the closure %d times, want 1", deltas)
	}
}

// TestDeltaMemoBypassHighCodes pins the shard-view bypass rule: codes
// outside the packable bound — which includes every provisional code,
// whose tag bit 63 is set — always call through and are never stored.
func TestDeltaMemoBypassHighCodes(t *testing.T) {
	calls := 0
	m := sim.NewDeltaMemo(func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		calls++
		return qu, qv
	}, nil)
	provisional := uint64(1)<<63 | 5
	for i := 0; i < 4; i++ {
		if a, b := m.Delta(provisional, 1, nil); a != provisional || b != 1 {
			t.Fatalf("bypass Delta = (%#x,%d)", a, b)
		}
		m.Delta(1, provisional, nil)
	}
	if calls != 8 {
		t.Fatalf("out-of-range pairs resolved %d times through the closure, want 8", calls)
	}
	if m.Pairs() != 0 {
		t.Fatalf("out-of-range pairs stored %d entries, want 0", m.Pairs())
	}
}

// TestDeltaMemoWideSuccessors: a deterministic pair whose successors do
// not fit the packed entry stays correct (resolved through the closure
// every time) without corrupting the classification.
func TestDeltaMemoWideSuccessors(t *testing.T) {
	wide := uint64(1) << 40
	m := sim.NewDeltaMemo(func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		return wide, qv
	}, nil)
	for i := 0; i < 3; i++ {
		if a, _ := m.Delta(1, 2, nil); a != wide {
			t.Fatalf("wide Delta = %#x, want %#x", a, wide)
		}
	}
	if m.Randomized(1, 2) {
		t.Fatal("wide deterministic pair classified randomized")
	}
	if a, _, ok := m.DeltaDet(1, 2); !ok || a != wide {
		t.Fatalf("wide DeltaDet = (%#x, ok=%v), want (%#x, true)", a, ok, wide)
	}
}

// TestDeltaMemoFlatPromotion drives enough repeat resolutions over a
// small stable code range to trigger the dense-fragment promotion and
// checks the flat path returns the same successors as before.
func TestDeltaMemoFlatPromotion(t *testing.T) {
	const k = 4
	m := sim.NewDeltaMemo(func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
		return qv % k, qu % k
	}, nil)
	for i := 0; i < 1<<17; i++ {
		qu, qv := uint64(i)%k, uint64(i/int(k))%k
		if a, b := m.Delta(qu, qv, nil); a != qv || b != qu {
			t.Fatalf("Delta(%d,%d) = (%d,%d), want (%d,%d)", qu, qv, a, b, qv, qu)
		}
	}
	if !m.Promoted() {
		t.Fatal("stable 4-code fragment never promoted to the flat table")
	}
	for qu := uint64(0); qu < k; qu++ {
		for qv := uint64(0); qv < k; qv++ {
			if a, b := m.Delta(qu, qv, nil); a != qv || b != qu {
				t.Fatalf("flat Delta(%d,%d) = (%d,%d)", qu, qv, a, b)
			}
			if a, b, ok := m.DeltaDet(qu, qv); !ok || a != qv || b != qu {
				t.Fatalf("flat DeltaDet(%d,%d) = (%d,%d,%v)", qu, qv, a, b, ok)
			}
		}
	}
}

// fuzzProduct is the interned "product state" of the memo fuzz: the
// logical state plus a scattered salt, so codes carry no arithmetic
// structure and every resolution must go through the interner — the
// shape of the core specs' product structs.
type fuzzProduct struct {
	q    uint64
	salt uint64
}

// internedFuzzSpec wraps fuzzSpec's random logical rule behind a real
// interner, the way the core specs wrap stepPair: Delta decodes both
// codes, steps the logical rule, and re-interns the successors;
// ShardDelta backs the shard closures with ShardViews. The returned
// interner lets the fuzz compare discovery order across runs.
func internedFuzzSpec(n int, k uint64, raw []byte, flags uint8) (*sim.Spec, *sim.Interner[fuzzProduct]) {
	at := func(i int) uint8 {
		if len(raw) == 0 {
			return 0
		}
		return raw[i%len(raw)]
	}
	size := int(k * k)
	table := make([]uint8, size)
	alt := make([]uint8, size)
	randMask := make([]bool, size)
	withRand := flags&1 != 0
	for i := 0; i < size; i++ {
		table[i] = uint8(uint64(at(i)) % (k * k))
		alt[i] = uint8(uint64(at(i+size)) % (k * k))
		randMask[i] = withRand && at(2*size+i)%4 == 0
	}
	step := func(lu, lv uint64, r *rng.Rand) (uint64, uint64) {
		idx := lu*k + lv
		packed := uint64(table[idx])
		if randMask[idx] && r.Bool() {
			packed = uint64(alt[idx])
		}
		return packed / k, packed % k
	}
	enc := func(q uint64) fuzzProduct { return fuzzProduct{q: q, salt: q * scatterMul} }

	in := sim.NewInterner[fuzzProduct]()
	counts := make(map[uint64]int64, k)
	per := int64(n) / int64(k)
	rem := int64(n) - per*int64(k)
	for q := uint64(0); q < k; q++ {
		c := per
		if q == 0 {
			c += rem
		}
		if c > 0 {
			counts[in.Code(enc(q))] = c
		}
	}
	spec := &sim.Spec{
		Name: "fuzz-interned",
		N:    n,
		Init: func() map[uint64]int64 {
			out := make(map[uint64]int64, len(counts))
			for c, v := range counts {
				out[c] = v
			}
			return out
		},
		Delta: func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
			a, b := step(in.State(qu).q, in.State(qv).q, r)
			return in.Code(enc(a)), in.Code(enc(b))
		},
		ShardDelta: func(sk int) ([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), func() map[uint64]uint64) {
			g := sim.ShardViews(in, sk)
			ds := make([]func(qu, qv uint64, r *rng.Rand) (uint64, uint64), sk)
			for i := range ds {
				v := g.View(i)
				ds[i] = func(qu, qv uint64, r *rng.Rand) (uint64, uint64) {
					a, b := step(v.State(qu).q, v.State(qv).q, r)
					return v.Code(enc(a)), v.Code(enc(b))
				}
			}
			return ds, g.Reconcile
		},
		Skip:   flags&2 != 0,
		Output: func(q uint64) int64 { return int64(in.State(q).q) },
	}
	if withRand {
		spec.Randomized = func(qu, qv uint64) bool {
			return randMask[in.State(qu).q*k+in.State(qv).q]
		}
	}
	return spec, in
}

// FuzzMemoDeltaEquivalence pins the tentpole's determinism contract on
// random interned specs: a memoized run must be bit-for-bit identical
// to a direct run — same final configuration (same codes, meaning the
// same interner discovery order, and same decoded states), same
// deterministic engine counters — on the sequential, batched and
// sharded (Shards ∈ {1, 2, 4}) count-engine paths alike.
func FuzzMemoDeltaEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(500), uint8(0), []byte{0x5a})
	f.Add(uint64(42), uint16(2), uint16(1), uint8(1), []byte{})
	f.Add(uint64(7), uint16(300), uint16(9999), uint8(3), []byte{1, 2, 3, 4})
	f.Add(uint64(9), uint16(33), uint16(256), uint8(9), []byte{0xff, 0x00})
	f.Add(uint64(3), uint16(800), uint16(4096), uint8(11), []byte{0x10, 0x9c, 0x33})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, stepsRaw uint16, flags uint8, raw []byte) {
		n := int(nRaw)%1022 + 2
		steps := int64(stepsRaw)%5000 + 1
		k := uint64(len(raw))%5 + 2
		for _, shards := range []int{1, 2, 4} {
			batched := shards > 1 || flags&8 != 0
			cfg := sim.Config{Seed: seed, BatchSteps: batched, Shards: shards}

			directSpec, directIn := internedFuzzSpec(n, k, raw, flags)
			memoSpec, memoIn := internedFuzzSpec(n, k, raw, flags)
			memoSpec.MemoizeDelta()

			ed, err := sim.NewCountEngine(sim.NewSpecCount(directSpec), cfg)
			if err != nil {
				t.Fatalf("shards=%d: direct engine: %v", shards, err)
			}
			em, err := sim.NewCountEngine(sim.NewSpecCount(memoSpec), cfg)
			if err != nil {
				t.Fatalf("shards=%d: memo engine: %v", shards, err)
			}
			var done int64
			for batch := int64(1); done < steps; batch = batch*3 + 1 {
				if batch > steps-done {
					batch = steps - done
				}
				ed.Step(batch)
				em.Step(batch)
				done += batch
			}

			want := make(map[uint64]int64)
			ed.Counts().ForEach(func(code uint64, cnt int64) { want[code] = cnt })
			got := make(map[uint64]int64)
			em.Counts().ForEach(func(code uint64, cnt int64) { got[code] = cnt })
			if len(got) != len(want) {
				t.Fatalf("shards=%d: %d occupied states memoized, %d direct", shards, len(got), len(want))
			}
			for code, cnt := range want {
				if got[code] != cnt {
					t.Fatalf("shards=%d: count[%d] = %d memoized, %d direct (code-assignment order perturbed)",
						shards, code, got[code], cnt)
				}
				if directIn.State(code) != memoIn.State(code) {
					t.Fatalf("shards=%d: code %d decodes to %+v memoized, %+v direct",
						shards, code, memoIn.State(code), directIn.State(code))
				}
			}
			if directIn.Len() != memoIn.Len() {
				t.Fatalf("shards=%d: interner discovered %d states memoized, %d direct",
					shards, memoIn.Len(), directIn.Len())
			}
			if ds, ms := ed.Stats(), em.Stats(); ds != ms {
				t.Fatalf("shards=%d: engine stats diverge: memoized %+v, direct %+v", shards, ms, ds)
			}
		}
	})
}

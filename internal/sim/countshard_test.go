package sim_test

import (
	"math"
	"runtime"
	"testing"

	"popcount/internal/baseline"
	"popcount/internal/clock"
	"popcount/internal/core"
	"popcount/internal/epidemic"
	"popcount/internal/junta"
	"popcount/internal/sim"
)

// shardProtos are the protocols the sharded-path tests sweep: the pure
// building blocks (shard closures synthesized from PureDelta) and the
// interned composed protocols (shard closures over provisional interner
// views).
func shardProtos(n int) map[string]func() sim.CountProtocol {
	return map[string]func() sim.CountProtocol{
		"epidemic":  func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		"junta":     func() sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(n)) },
		"clock":     func() sim.CountProtocol { return sim.NewSpecCount(clock.NewSpec(n, clock.DefaultM, 16, 3)) },
		"geometric": func() sim.CountProtocol { return sim.NewSpecCount(baseline.NewGeometricSpec(n)) },
		"approximate": func() sim.CountProtocol {
			return sim.NewSpecCount(core.NewApproximateSpec(core.Config{N: n}).Spec)
		},
	}
}

// shardedCfg returns a sharded batch config.
func shardedCfg(seed uint64, shards int) sim.Config {
	return sim.Config{Seed: seed, BatchSteps: true, Shards: shards}
}

// snapshotCounts copies an engine's configuration into a map.
func snapshotCounts(e *sim.CountEngine) map[uint64]int64 {
	m := map[uint64]int64{}
	e.Counts().ForEach(func(code uint64, cnt int64) { m[code] = cnt })
	return m
}

// TestCountShardConservation steps sharded engines in uneven batch
// sizes across the protocol sweep and asserts Σ counts == n,
// non-negativity and an exact interaction counter after every Step.
func TestCountShardConservation(t *testing.T) {
	const n = 4096
	for name, mk := range shardProtos(n) {
		for _, shards := range []int{2, 3, 8} {
			e, err := sim.NewCountEngine(mk(), shardedCfg(7, shards))
			if err != nil {
				t.Fatalf("%s/S=%d: NewCountEngine: %v", name, shards, err)
			}
			var done int64
			for _, batch := range []int64{1, 63, 1000, 100000, n * n / 4} {
				e.Step(batch)
				done += batch
				if got := e.Counts().Sum(); got != int64(n) {
					t.Fatalf("%s/S=%d: Σ counts = %d after Step(%d), want %d", name, shards, got, batch, n)
				}
				e.Counts().ForEach(func(code uint64, cnt int64) {
					if cnt < 0 {
						t.Fatalf("%s/S=%d: negative count %d for state %#x", name, shards, cnt, code)
					}
				})
				if e.Interactions() != done {
					t.Fatalf("%s/S=%d: Interactions = %d, want %d", name, shards, e.Interactions(), done)
				}
			}
		}
	}
}

// TestCountShardGOMAXPROCSInvariance pins the determinism contract of
// the sharded planner: at a fixed shard count, the final configuration
// and every engine counter are bit-for-bit equal whether the run
// executes on one core or many. This is the property the multicore CI
// gate checks across differently-pinned hosts.
func TestCountShardGOMAXPROCSInvariance(t *testing.T) {
	const n = 4096
	run := func(mk func() sim.CountProtocol, procs int) (map[uint64]int64, sim.EngineStats) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		e, err := sim.NewCountEngine(mk(), shardedCfg(99, 4))
		if err != nil {
			t.Fatal(err)
		}
		e.Step(n * n / 2)
		return snapshotCounts(e), e.Stats()
	}
	for name, mk := range shardProtos(n) {
		c1, s1 := run(mk, 1)
		c8, s8 := run(mk, 8)
		if s1 != s8 {
			t.Fatalf("%s: stats differ across GOMAXPROCS: 1 core %+v, 8 cores %+v", name, s1, s8)
		}
		if len(c1) != len(c8) {
			t.Fatalf("%s: occupied states differ across GOMAXPROCS: %d vs %d", name, len(c1), len(c8))
		}
		for code, cnt := range c1 {
			if c8[code] != cnt {
				t.Fatalf("%s: state %#x count %d on 1 core, %d on 8", name, code, cnt, c8[code])
			}
		}
		if s1.ShardEpochs == 0 {
			t.Fatalf("%s: sharded run planned no sharded epochs", name)
		}
	}
}

// TestCountShardSerialCompat pins the compatibility mode: Shards values
// ≤ 1 keep the serial planner, so the run is bit-for-bit identical to a
// plain batched engine under the same seed — every conformance pin and
// committed baseline counter survives the config knob existing.
func TestCountShardSerialCompat(t *testing.T) {
	const n = 2048
	for name, mk := range shardProtos(n) {
		var ref map[uint64]int64
		var refStats sim.EngineStats
		for i, shards := range []int{0, 1} {
			e, err := sim.NewCountEngine(mk(), shardedCfg(21, shards))
			if err != nil {
				t.Fatal(err)
			}
			e.Step(n * n / 4)
			if i == 0 {
				ref, refStats = snapshotCounts(e), e.Stats()
				continue
			}
			got, gotStats := snapshotCounts(e), e.Stats()
			if gotStats != refStats {
				t.Fatalf("%s: Shards=%d stats %+v differ from serial %+v", name, shards, gotStats, refStats)
			}
			for code, cnt := range ref {
				if got[code] != cnt {
					t.Fatalf("%s: Shards=%d state %#x count %d, serial %d", name, shards, code, got[code], cnt)
				}
			}
			if gotStats.ShardEpochs != 0 {
				t.Fatalf("%s: Shards=%d planned sharded epochs in compatibility mode", name, shards)
			}
		}
	}
}

// TestCountShardEquivalence compares sharded and serial batched engines
// distributionally: mean convergence times over paired trials must
// agree within the pinned tolerance (the modes consume randomness
// differently, so runs are not bit-for-bit comparable).
func TestCountShardEquivalence(t *testing.T) {
	const (
		n      = 1024
		trials = 48
		tol    = 0.10
	)
	protos := map[string]func() sim.CountProtocol{
		"epidemic": func() sim.CountProtocol { return sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)) },
		"junta":    func() sim.CountProtocol { return sim.NewSpecCount(junta.NewSpec(n)) },
	}
	for name, mk := range protos {
		mean := func(shards int) float64 {
			var sum float64
			for i := 0; i < trials; i++ {
				cfg := sim.Config{Seed: sim.TrialSeed(17, i), CheckEvery: n / 2, BatchSteps: true, Shards: shards}
				res, err := sim.RunCount(mk(), cfg)
				if err != nil {
					t.Fatalf("%s: RunCount: %v", name, err)
				}
				if !res.Converged {
					t.Fatalf("%s: trial %d did not converge", name, i)
				}
				sum += float64(res.Interactions)
			}
			return sum / trials
		}
		serial, sharded := mean(0), mean(4)
		if diff := math.Abs(sharded-serial) / serial; diff > tol {
			t.Fatalf("%s: sharded mean %.0f vs serial %.0f (%.1f%% > %.0f%%)",
				name, sharded, serial, 100*diff, 100*tol)
		}
	}
}

// TestCountShardSnapshotRoundTrip pins checkpointing of a sharded run:
// the epoch counter the block streams derive from survives the
// snapshot, so the resumed run continues the exact trajectory of the
// uninterrupted one.
func TestCountShardSnapshotRoundTrip(t *testing.T) {
	const n = 4096
	for name, mk := range shardProtos(n) {
		a, err := sim.NewCountEngine(mk(), shardedCfg(5, 4))
		if err != nil {
			t.Fatal(err)
		}
		a.Step(n * n / 4)
		blob, err := a.Snapshot()
		if err != nil {
			t.Fatalf("%s: Snapshot: %v", name, err)
		}
		b, err := sim.NewCountEngine(mk(), shardedCfg(5, 4))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(blob); err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		a.Step(n * n / 4)
		b.Step(n * n / 4)
		if sa, sb := a.Stats(), b.Stats(); sa != sb {
			t.Fatalf("%s: stats diverge after restore: %+v vs %+v", name, sa, sb)
		}
		ca, cb := snapshotCounts(a), snapshotCounts(b)
		if len(ca) != len(cb) {
			t.Fatalf("%s: occupied states diverge after restore: %d vs %d", name, len(ca), len(cb))
		}
		for code, cnt := range ca {
			// Codes are interner-relative, but discovery replays in
			// snapshot order, so equal trajectories give equal codes.
			if cb[code] != cnt {
				t.Fatalf("%s: state %#x count %d vs %d after restore", name, code, cnt, cb[code])
			}
		}
	}
}

// TestCountShardConfigRejections pins the configuration contract:
// sharding requires batch stepping, and the agent engine supports no
// sharding at all.
func TestCountShardConfigRejections(t *testing.T) {
	const n = 64
	if _, err := sim.NewCountEngine(sim.NewSpecCount(junta.NewSpec(n)), sim.Config{Seed: 1, Shards: 2}); err == nil {
		t.Fatal("count engine accepted Shards=2 without BatchSteps")
	}
	if _, err := sim.NewEngine(sim.NewSpecAgent(junta.NewSpec(n)), sim.Config{Seed: 1, Shards: 2}); err == nil {
		t.Fatal("agent engine accepted Shards=2")
	}
}

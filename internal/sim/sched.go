package sim

import (
	"fmt"

	"popcount/internal/rng"
)

// Scheduler selects the ordered agent pair for each interaction. The
// paper's probabilistic scheduler is UniformScheduler; the other
// implementations let experiments probe how robust the protocols are
// when the scheduling assumption is bent (experiment E16 — an extension
// beyond the paper).
type Scheduler interface {
	// Next returns the initiator and responder for the next interaction,
	// distinct indices in [0, n).
	Next(n int, r *rng.Rand) (u, v int)
}

// UniformScheduler is the paper's scheduler: an ordered pair of distinct
// agents chosen independently and uniformly at random.
type UniformScheduler struct{}

// Next returns a uniformly random ordered pair.
func (UniformScheduler) Next(n int, r *rng.Rand) (int, int) { return r.Pair(n) }

// BiasedScheduler perturbs the uniform scheduler: with probability Bias
// the initiator is the fixed agent Hot (the responder stays uniform).
// This models a "chatty" agent — a mild violation of the model under
// which the w.h.p. analyses no longer apply verbatim.
type BiasedScheduler struct {
	// Hot is the index of the favoured agent.
	Hot int
	// Bias is the probability the favoured agent initiates, on top of
	// its uniform chance. Must be in [0, 1).
	Bias float64
}

// Validate implements SchedulerValidator: Hot must be a valid agent
// index and Bias a probability below 1. Engines check this at
// construction so a misconfigured bias is an error, not a mid-trial
// panic.
func (s BiasedScheduler) Validate(n int) error {
	if s.Hot < 0 || s.Hot >= n {
		return fmt.Errorf("%w: biased hot index %d outside [0, %d)", ErrScheduler, s.Hot, n)
	}
	if s.Bias < 0 || s.Bias >= 1 {
		return fmt.Errorf("%w: bias %v outside [0, 1)", ErrScheduler, s.Bias)
	}
	return nil
}

// Next returns the next pair under the bias. It panics when Hot is not a
// valid agent index — better than the opaque out-of-range panic the
// protocol's state arrays would raise later.
func (s BiasedScheduler) Next(n int, r *rng.Rand) (int, int) {
	if s.Hot < 0 || s.Hot >= n {
		panic("sim: BiasedScheduler.Hot is not a valid agent index")
	}
	if r.Float64() < s.Bias {
		v := r.Intn(n - 1)
		if v >= s.Hot {
			v++
		}
		return s.Hot, v
	}
	return r.Pair(n)
}

// MatchingScheduler draws interactions from random perfect matchings:
// each "round" it shuffles the population and plays the ⌊n/2⌋ disjoint
// pairs in sequence before reshuffling. Every agent interacts exactly
// once per round — a synchronous flavour common in practical gossip
// systems. It is not the paper's model, but the protocols' building
// blocks (epidemics, balancing, clocks) tolerate it well.
type MatchingScheduler struct {
	perm []int
	pos  int
}

// NewMatchingScheduler returns an empty matching scheduler; the first
// call to Next draws the first matching.
func NewMatchingScheduler() *MatchingScheduler { return &MatchingScheduler{} }

// Next returns the next pair of the current matching, drawing a new
// matching when the current one is exhausted.
func (s *MatchingScheduler) Next(n int, r *rng.Rand) (int, int) {
	if s.perm == nil || len(s.perm) != n || s.pos+1 >= len(s.perm)-(n%2) {
		s.perm = r.Perm(n)
		s.pos = 0
	}
	u, v := s.perm[s.pos], s.perm[s.pos+1]
	s.pos += 2
	// Randomize the initiator/responder role within the matched pair.
	if r.Bool() {
		return v, u
	}
	return u, v
}

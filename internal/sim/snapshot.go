// Engine-state serialization: versioned binary snapshots of a running
// Engine or CountEngine, restorable bit-for-bit.
//
// A snapshot captures everything the trajectory depends on — the
// configuration (agent codes or per-state counts), the RNG stream
// state, the interaction counter, the deterministic run counters, and
// the batch planner's cross-epoch backoff — so that a restored engine
// continues exactly the interaction sequence the snapshotted one would
// have executed. Derived structures (cumulative samplers, no-op
// adjacency, the planner's transition-matrix cache) are rebuilt rather
// than stored: they are pure functions of the configuration and the
// protocol's rule.
//
// Interned state codes (internal/core's product-state specs) are
// trajectory-local: code 17 of one spec instance names whatever state
// that instance discovered seventeenth, so raw codes are meaningless to
// the fresh protocol a restored engine runs. Snapshots therefore store
// portable state encodings (StateCodec) and restore by re-interning the
// decoded states in snapshot order. The restored instance's codes are
// an injective renaming of the originals, which is invisible to the
// dynamics: engines compare codes only for equality, cache transition
// entries under dense indices (preserved by replaying discovery in
// snapshot order), and iterate occupied states in dense order — no code
// magnitude ever reaches a sampling decision after initialization.
package sim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"popcount/internal/sim/countdist"
)

// Snapshot format constants. The magic words distinguish the two engine
// forms so a blob restored into the wrong engine kind fails loudly; the
// version gates format evolution.
const (
	snapMagicAgent uint32 = 0x50534E41 // "PSNA"
	snapMagicCount uint32 = 0x50534E43 // "PSNC"
	snapVersion    uint16 = 1

	snapFlagSkip    uint8 = 1 << 0 // engine had the self-loop skip path
	snapFlagPlanner uint8 = 1 << 1 // engine had the batch planner
	snapFlagFaults  uint8 = 1 << 2 // engine carried a fault plan (count form)
	snapFlagSharded uint8 = 1 << 3 // engine had the sharded batch planner
	snapFlagRing    uint8 = 1 << 4 // engine ran the ring-restricted count path
)

// ErrNotSnapshottable is returned when an engine's protocol or
// configuration has no serializable form: the protocol does not
// implement the snapshot hooks, or a non-uniform (potentially stateful)
// scheduler drives the run.
var ErrNotSnapshottable = errors.New("sim: engine state is not snapshottable")

// ErrSnapshotFormat is returned when a snapshot blob is malformed,
// carries an unknown version, or does not match the engine it is being
// restored into.
var ErrSnapshotFormat = errors.New("sim: invalid snapshot")

// StateCodec is an optional protocol hook: a portable encoding of state
// codes. Protocols whose codes are trajectory-local (interned product
// states) implement it so snapshots survive into fresh protocol
// instances; protocols with arithmetic codes omit it and get the
// identity encoding (the 8-byte little-endian code itself).
//
// EncodeState must be injective and DecodeState its inverse: decoding
// an encoded state in a fresh protocol instance must yield a code that
// names the same state there.
type StateCodec interface {
	EncodeState(q uint64) []byte
	DecodeState(b []byte) (uint64, error)
}

// ProtocolSnapshotter is an optional Protocol hook: full serialization
// of the protocol's own state (the agent array, for the spec adapter).
// SnapshotState must capture everything Interact reads; RestoreState,
// called on a freshly constructed instance of the same protocol, must
// leave it indistinguishable from the snapshotted one.
type ProtocolSnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(b []byte) error
}

// identityEncode is the default StateCodec encoding: the code itself.
func identityEncode(q uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], q)
	return b[:]
}

// identityDecode inverts identityEncode.
func identityDecode(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: identity-coded state blob has %d bytes, want 8", ErrSnapshotFormat, len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// stateCodecFor resolves a protocol's state codec, defaulting to the
// identity encoding.
func stateCodecFor(p any) (enc func(uint64) []byte, dec func([]byte) (uint64, error)) {
	if c, ok := p.(StateCodec); ok {
		return c.EncodeState, c.DecodeState
	}
	return identityEncode, identityDecode
}

// snapWriter accumulates a snapshot blob. All integers are fixed-width
// little-endian: snapshot blobs are small next to the engines' state,
// and fixed widths keep the reader trivially robust.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *snapWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *snapWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *snapWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *snapWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// snapReader decodes a snapshot blob, latching the first error so a
// sequence of reads needs only one check at the end. Reads after an
// error return zero values.
type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrSnapshotFormat}, args...)...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (want %d more bytes of %d)", r.off, n, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) i64() int64 { return int64(r.u64()) }

func (r *snapReader) bytes() []byte {
	n := int(r.u32())
	if r.err == nil && n > len(r.buf)-r.off {
		r.fail("blob length %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return nil
	}
	return r.take(n)
}

// done checks that the blob was consumed exactly.
func (r *snapReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshotFormat, len(r.buf)-r.off)
	}
	return nil
}

// EncodeState implements StateCodec for the count form: the spec's
// declared codec, or the identity encoding for arithmetic codes.
func (p *specCount) EncodeState(q uint64) []byte {
	if p.spec.EncodeState != nil {
		return p.spec.EncodeState(q)
	}
	return identityEncode(q)
}

// DecodeState implements StateCodec for the count form.
func (p *specCount) DecodeState(b []byte) (uint64, error) {
	if p.spec.DecodeState != nil {
		return p.spec.DecodeState(b)
	}
	return identityDecode(b)
}

// SnapshotState implements ProtocolSnapshotter for the agent form: the
// per-agent code array, stored as a dictionary of distinct portable
// state encodings (in first-occurrence order over the agent array) plus
// one dictionary index per agent. The count mirror is derived state and
// is rebuilt on restore.
func (p *SpecAgent) SnapshotState() ([]byte, error) {
	if p.code == nil {
		return nil, fmt.Errorf("%w: Spec %q agent form not yet initialized", ErrNotSnapshottable, p.spec.Name)
	}
	enc := p.spec.EncodeState
	if enc == nil {
		enc = identityEncode
	}
	dictIdx := make(map[uint64]uint32, len(p.view.counts))
	dict := make([]uint64, 0, len(p.view.counts))
	idxs := make([]uint32, len(p.code))
	for i, c := range p.code {
		di, ok := dictIdx[c]
		if !ok {
			di = uint32(len(dict))
			dictIdx[c] = di
			dict = append(dict, c)
		}
		idxs[i] = di
	}
	w := &snapWriter{}
	w.u32(uint32(len(dict)))
	for _, c := range dict {
		w.bytes(enc(c))
	}
	w.u32(uint32(len(idxs)))
	for _, di := range idxs {
		w.u32(di)
	}
	return w.buf, nil
}

// RestoreState implements ProtocolSnapshotter for the agent form,
// decoding the dictionary in stored order (so interned specs re-intern
// states deterministically) and rebuilding the count mirror.
func (p *SpecAgent) RestoreState(b []byte) error {
	dec := p.spec.DecodeState
	if dec == nil {
		dec = identityDecode
	}
	r := &snapReader{buf: b}
	dl := int(r.u32())
	// The declared length is untrusted input: cap the pre-allocation by
	// what the remaining bytes could possibly hold (each entry is at
	// least a u32 length prefix) so a forged header cannot force a
	// gigantic allocation before the parse fails.
	capHint := dl
	if max := len(b) / 4; capHint > max {
		capHint = max
	}
	dict := make([]uint64, 0, capHint)
	for i := 0; i < dl && r.err == nil; i++ {
		blob := r.bytes()
		if r.err != nil {
			break
		}
		c, err := dec(blob)
		if err != nil {
			return err
		}
		dict = append(dict, c)
	}
	n := int(r.u32())
	if r.err == nil && n != p.spec.N {
		r.fail("agent array has %d agents, Spec %q wants %d", n, p.spec.Name, p.spec.N)
	}
	code := make([]uint64, 0, p.spec.N)
	for i := 0; i < n && r.err == nil; i++ {
		di := int(r.u32())
		if r.err != nil {
			break
		}
		if di >= len(dict) {
			r.fail("agent %d references dictionary entry %d of %d", i, di, len(dict))
			break
		}
		code = append(code, dict[di])
	}
	if err := r.done(); err != nil {
		return err
	}
	p.code = code
	p.view.counts = make(map[uint64]int64, len(dict))
	for _, c := range code {
		p.view.counts[c]++
	}
	return nil
}

// header writes the shared snapshot prefix of both engine forms.
func (c *engineCore) header(w *snapWriter, magic uint32, n int64, rngState [4]uint64) {
	w.u32(magic)
	w.u16(snapVersion)
	w.u64(uint64(n))
	w.i64(c.t)
	w.i64(c.convAt)
	for _, s := range rngState {
		w.u64(s)
	}
}

// readHeader parses and validates the shared snapshot prefix.
func (c *engineCore) readHeader(r *snapReader, magic uint32, n int64) (t, convAt int64, rngState [4]uint64, err error) {
	if m := r.u32(); r.err == nil && m != magic {
		r.fail("magic %#x, want %#x (wrong engine kind?)", m, magic)
	}
	if v := r.u16(); r.err == nil && v != snapVersion {
		r.fail("version %d, want %d", v, snapVersion)
	}
	if sn := r.u64(); r.err == nil && sn != uint64(n) {
		r.fail("population %d, engine has %d", sn, n)
	}
	t = r.i64()
	convAt = r.i64()
	for i := range rngState {
		rngState[i] = r.u64()
	}
	return t, convAt, rngState, r.err
}

// Snapshot serializes the engine's full dynamic state. The protocol
// must implement ProtocolSnapshotter, and the run must use either the
// uniform scheduler or a scheduler with a deterministic serialized
// form (SchedulerSnapshotter — the graph schedulers); arbitrary
// stateful schedulers get ErrNotSnapshottable.
func (e *Engine) Snapshot() ([]byte, error) {
	ps, ok := e.p.(ProtocolSnapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: protocol %T has no state codec", ErrNotSnapshottable, e.p)
	}
	ss, snapSched := e.sched.(SchedulerSnapshotter)
	if !e.uniform && !snapSched {
		return nil, fmt.Errorf("%w: non-uniform scheduler %T has no serialized form", ErrNotSnapshottable, e.sched)
	}
	blob, err := ps.SnapshotState()
	if err != nil {
		return nil, err
	}
	w := &snapWriter{}
	e.header(w, snapMagicAgent, int64(e.n), e.r.State())
	w.bytes(blob)
	// The fault section travels only for faulted runs, so fault-free
	// snapshots stay byte-identical to the pre-fault-plane format.
	if e.fs != nil {
		enc := e.fsa.spec.EncodeState
		if enc == nil {
			enc = identityEncode
		}
		e.fs.snapshot(w, enc)
	}
	// The scheduler section travels only for non-uniform runs (faults
	// require the uniform scheduler, so the two sections never
	// coexist); uniform snapshots stay byte-identical to the
	// pre-graph-scheduler format.
	if !e.uniform && snapSched {
		w.bytes(ss.SchedulerState())
	}
	return w.buf, nil
}

// Restore overwrites the engine's dynamic state from a snapshot taken
// from an engine over the same protocol and configuration. The engine
// must be freshly constructed (NewEngine with the same arguments);
// restoring resumes the snapshotted trajectory bit-for-bit.
func (e *Engine) Restore(data []byte) error {
	ps, ok := e.p.(ProtocolSnapshotter)
	if !ok {
		return fmt.Errorf("%w: protocol %T has no state codec", ErrNotSnapshottable, e.p)
	}
	ss, snapSched := e.sched.(SchedulerSnapshotter)
	if !e.uniform && !snapSched {
		return fmt.Errorf("%w: non-uniform scheduler %T has no serialized form", ErrNotSnapshottable, e.sched)
	}
	r := &snapReader{buf: data}
	t, convAt, rngState, err := e.readHeader(r, snapMagicAgent, int64(e.n))
	if err != nil {
		return err
	}
	blob := r.bytes()
	var fsn faultSnap
	if e.fs != nil {
		dec := e.fsa.spec.DecodeState
		if dec == nil {
			dec = identityDecode
		}
		fsn = e.fs.readSnapshot(r, dec)
	}
	var sblob []byte
	if !e.uniform && snapSched {
		sblob = r.bytes()
	}
	if err := r.done(); err != nil {
		return err
	}
	if err := ps.RestoreState(blob); err != nil {
		return err
	}
	if !e.uniform && snapSched {
		if err := ss.RestoreSchedulerState(sblob); err != nil {
			return err
		}
	}
	e.t, e.convAt = t, convAt
	e.r.SetState(rngState)
	if e.fs != nil {
		e.fs.restoreSnap(fsn)
	}
	return nil
}

// Snapshot serializes the count engine's full dynamic state: the dense
// state list in discovery order (portable encodings plus counts, so the
// restored engine rebuilds identical dense indices), the RNG stream,
// the interaction counter, the deterministic run counters, and the
// planner's cross-epoch backoff. Derived structures — cumulative
// samplers, no-op adjacency, the cached transition matrix — are rebuilt
// on restore.
func (e *CountEngine) Snapshot() ([]byte, error) {
	enc, _ := stateCodecFor(e.p)
	w := &snapWriter{}
	e.header(w, snapMagicCount, e.n, e.r.State())
	w.i64(e.stats.DeltaCalls)
	w.i64(e.stats.Epochs)
	w.i64(e.stats.Violations)
	w.i64(e.stats.HalfReuses)
	w.i64(e.stats.HalfDiscards)
	var flags uint8
	if e.sl != nil {
		flags |= snapFlagSkip
	}
	if e.bp != nil {
		flags |= snapFlagPlanner
	}
	if e.fs != nil {
		flags |= snapFlagFaults
	}
	if e.sr != nil {
		flags |= snapFlagSharded
	}
	if e.ring != nil {
		flags |= snapFlagRing
	}
	w.u8(flags)
	if e.bp != nil {
		w.i64(e.bp.cool)
		w.i64(e.bp.coolLen)
	}
	// The sharded planner's block streams derive from (seed, epoch
	// counter, block), so the epoch counter must survive a checkpoint
	// for the resumed run to continue the exact stream layout.
	if e.sr != nil {
		w.i64(e.stats.ShardEpochs)
		w.i64(e.stats.ShardBlocks)
		w.i64(e.stats.MergeConflicts)
		w.i64(e.stats.StealEvents)
		w.u64(e.sr.epochSeq)
	}
	// The full discovery history, zero-count states included: dense
	// indices index the planner's pair cache and the sampling prefix
	// sums, so the restored engine must re-discover every state — even
	// ones the trajectory only probed — in the same order.
	w.u32(uint32(len(e.c.codes)))
	for i, code := range e.c.codes {
		w.bytes(enc(code))
		w.i64(e.c.counts[i])
	}
	if e.fs != nil {
		e.fs.snapshot(w, enc)
	}
	return w.buf, nil
}

// Restore overwrites the count engine's dynamic state from a snapshot
// taken from an engine over the same protocol and configuration. The
// engine must be freshly constructed (NewCountEngine with the same
// arguments); restoring resumes the snapshotted trajectory bit-for-bit
// — the restored protocol instance's codes may be a renaming of the
// originals, which the dynamics cannot observe (see the package
// comment).
func (e *CountEngine) Restore(data []byte) error {
	_, dec := stateCodecFor(e.p)
	r := &snapReader{buf: data}
	t, convAt, rngState, err := e.readHeader(r, snapMagicCount, e.n)
	if err != nil {
		return err
	}
	var stats EngineStats
	stats.DeltaCalls = r.i64()
	stats.Epochs = r.i64()
	stats.Violations = r.i64()
	stats.HalfReuses = r.i64()
	stats.HalfDiscards = r.i64()
	flags := r.u8()
	if r.err == nil {
		var want uint8
		if e.sl != nil {
			want |= snapFlagSkip
		}
		if e.bp != nil {
			want |= snapFlagPlanner
		}
		if e.fs != nil {
			want |= snapFlagFaults
		}
		if e.sr != nil {
			want |= snapFlagSharded
		}
		if e.ring != nil {
			want |= snapFlagRing
		}
		if flags != want {
			r.fail("engine feature flags %#x, engine has %#x (different Config?)", flags, want)
		}
	}
	var cool, coolLen int64
	if flags&snapFlagPlanner != 0 {
		cool = r.i64()
		coolLen = r.i64()
	}
	var epochSeq uint64
	if flags&snapFlagSharded != 0 {
		stats.ShardEpochs = r.i64()
		stats.ShardBlocks = r.i64()
		stats.MergeConflicts = r.i64()
		stats.StealEvents = r.i64()
		epochSeq = r.u64()
	}
	k := int(r.u32())
	type denseState struct {
		code  uint64
		count int64
	}
	// Untrusted length: cap the pre-allocation by what the remaining
	// bytes could hold (each state is at least a u32 length prefix plus
	// an i64 count).
	capHint := k
	if max := (len(data) - r.off) / 12; capHint > max {
		capHint = max
	}
	states := make([]denseState, 0, capHint)
	var sum int64
	for i := 0; i < k && r.err == nil; i++ {
		blob := r.bytes()
		cnt := r.i64()
		if r.err != nil {
			break
		}
		code, err := dec(blob)
		if err != nil {
			return err
		}
		if cnt < 0 {
			r.fail("negative count %d for dense state %d", cnt, i)
			break
		}
		states = append(states, denseState{code, cnt})
		sum += cnt
	}
	if r.err == nil && sum != e.n {
		r.fail("counts sum to %d, want n=%d", sum, e.n)
	}
	var fsn faultSnap
	if e.fs != nil {
		// Stale states decode after the full state list, so an interned
		// codec has already re-discovered them in snapshot order.
		fsn = e.fs.readSnapshot(r, dec)
	}
	if err := r.done(); err != nil {
		return err
	}

	// Rebuild the engine's derived structures from scratch and replay
	// state discovery in snapshot order, so dense indices — and with
	// them every sampling decision — line up with the snapshotted run.
	e.c = &CountConfig{
		index: make(map[uint64]int, len(states)),
		n:     e.n,
		s:     countdist.NewSampler32(len(states)),
	}
	e.occ = nil
	if e.sl != nil {
		e.rowW = countdist.NewSampler(len(states))
		e.noopRow, e.diag = nil, nil
		e.noopOut, e.noopIn = nil, nil
	}
	if e.bp != nil {
		e.bp = newBatchPlanner(e.p, e.cfg, e.n)
		e.bp.cool, e.bp.coolLen = cool, coolLen
	}
	if e.sr != nil {
		e.sr = newShardRunner(e, e.cfg)
		e.sr.epochSeq = epochSeq
	}
	for i, st := range states {
		idx := e.stateIndex(st.code)
		if idx != i {
			return fmt.Errorf("%w: dense state %d decoded to an already-registered state (non-injective codec?)", ErrSnapshotFormat, i)
		}
		if st.count > 0 {
			e.shift(idx, st.count)
		}
	}
	e.t, e.convAt = t, convAt
	e.stats = stats
	e.r.SetState(rngState)
	if e.fs != nil {
		e.fs.restoreSnap(fsn)
	}
	return nil
}

// State-code interning for product-state specs.
//
// The small building-block specs (junta, epidemic, clock) pack their
// agent state into a uint64 code arithmetically: the state tuple is
// small enough for a mixed-radix encoding, and the whole code domain is
// dense. The paper's composed counting protocols are different: their
// per-agent state is a product of a phase clock, a junta triplet, an
// election record and counting variables whose ranges (classical loads,
// sampled election values) do not fit any fixed-width packing — the
// product domain is astronomically large and almost entirely
// unreachable. What stays small is the set of states actually occupied
// along a trajectory: agents synchronize, so a run visits thousands of
// distinct states, not 2⁶⁴.
//
// An Interner assigns codes lazily in first-sight order: the code of a
// state is its index in the discovery sequence. Codes are dense over
// the reachable fragment (good for the engines' maps and dense-pair
// caches) and the mapping is injective by construction, so the count
// view stays exact: agents are exchangeable given the full state tuple,
// and equal tuples get equal codes.
//
// Determinism: codes depend on discovery order, which is a
// deterministic function of the trajectory — equal seeds yield equal
// code assignments. Codes from different engine instances (or different
// seeds) are not comparable; everything that interprets codes
// (Converged, Output, tests) must go through the same Interner that
// produced them, which is why each spec constructor owns one.
//
// An Interner is not safe for concurrent use. Spec constructors are
// called once per trial (every trial builds a fresh spec), so engine
// parallelism never shares one.
package sim

// Interner assigns dense uint64 codes to product states in first-sight
// order. The zero value is not ready for use; call NewInterner.
type Interner[S comparable] struct {
	codes  map[S]uint64
	states []S
}

// NewInterner returns an empty interner.
func NewInterner[S comparable]() *Interner[S] {
	return &Interner[S]{codes: make(map[S]uint64)}
}

// Code returns the state's code, assigning the next free one on first
// sight.
func (in *Interner[S]) Code(s S) uint64 {
	if c, ok := in.codes[s]; ok {
		return c
	}
	c := uint64(len(in.states))
	in.codes[s] = c
	in.states = append(in.states, s)
	return c
}

// State returns the state a code was assigned to. It panics on a code
// this interner never issued — such a code cannot come from the same
// trajectory and indicates mixed-up spec instances.
func (in *Interner[S]) State(c uint64) S {
	return in.states[c]
}

// Len returns the number of interned states — the size of the reachable
// alphabet fragment discovered so far.
func (in *Interner[S]) Len() int { return len(in.states) }

// State-code interning for product-state specs.
//
// The small building-block specs (junta, epidemic, clock) pack their
// agent state into a uint64 code arithmetically: the state tuple is
// small enough for a mixed-radix encoding, and the whole code domain is
// dense. The paper's composed counting protocols are different: their
// per-agent state is a product of a phase clock, a junta triplet, an
// election record and counting variables whose ranges (classical loads,
// sampled election values) do not fit any fixed-width packing — the
// product domain is astronomically large and almost entirely
// unreachable. What stays small is the set of states actually occupied
// along a trajectory: agents synchronize, so a run visits thousands of
// distinct states, not 2⁶⁴.
//
// An Interner assigns codes lazily in first-sight order: the code of a
// state is its index in the discovery sequence. Codes are dense over
// the reachable fragment (good for the engines' maps and dense-pair
// caches) and the mapping is injective by construction, so the count
// view stays exact: agents are exchangeable given the full state tuple,
// and equal tuples get equal codes.
//
// Determinism: codes depend on discovery order, which is a
// deterministic function of the trajectory — equal seeds yield equal
// code assignments. Codes from different engine instances (or different
// seeds) are not comparable; everything that interprets codes
// (Converged, Output, tests) must go through the same Interner that
// produced them, which is why each spec constructor owns one.
//
// An Interner is not safe for concurrent use. Spec constructors are
// called once per trial (every trial builds a fresh spec), so engine
// parallelism never shares one. Intra-run sharding (countshard.go) gets
// structured concurrency through ShardViews: concurrent views read the
// frozen base and park fresh states in per-shard provisional
// namespaces, which a serial Reconcile folds back in deterministic
// order.
package sim

// Interner assigns dense uint64 codes to product states in first-sight
// order. The zero value is not ready for use; call NewInterner.
type Interner[S comparable] struct {
	// codes stores code+1 so the zero value of a map read means "not
	// interned": the hit path of Code is a single one-return map access
	// (mapaccess1) instead of the comma-ok form, and the miss path is
	// one access plus one insert — hashing the (large) product struct
	// once per path where the comma-ok + insert sequence hashed it
	// twice on miss.
	codes  map[S]uint64
	states []S
}

// NewInterner returns an empty interner.
func NewInterner[S comparable]() *Interner[S] {
	return &Interner[S]{codes: make(map[S]uint64)}
}

// Code returns the state's code, assigning the next free one on first
// sight.
func (in *Interner[S]) Code(s S) uint64 {
	if c := in.codes[s]; c != 0 {
		return c - 1
	}
	in.states = append(in.states, s)
	in.codes[s] = uint64(len(in.states)) // code+1; see the field comment
	return uint64(len(in.states)) - 1
}

// State returns the state a code was assigned to. It panics on a code
// this interner never issued — such a code cannot come from the same
// trajectory and indicates mixed-up spec instances.
func (in *Interner[S]) State(c uint64) S {
	return in.states[c]
}

// Len returns the number of interned states — the size of the reachable
// alphabet fragment discovered so far.
func (in *Interner[S]) Len() int { return len(in.states) }

// Shard-provisional code namespace. During a sharded epoch's parallel
// round (countshard.go) the base interner is frozen: concurrent shard
// views may read it but not assign. A view that encounters a fresh
// product state assigns a provisional code — the tag bit, the view's
// shard number, and the view-local discovery index — private to that
// view. Reconcile folds provisional states into the base namespace
// serially, in ascending shard order then view-local discovery order,
// so canonical code assignment is a deterministic function of the
// epoch's content, never of goroutine scheduling.
const (
	internProvisionalBit   = uint64(1) << 63
	internProvisionalShift = 48
	internProvisionalMask  = (uint64(1) << internProvisionalShift) - 1
)

// InternGroup is one parallel round's set of shard views over a base
// interner. The group is long-lived: the engine creates it once and
// calls Reconcile after every round, which resets the views for reuse.
type InternGroup[S comparable] struct {
	base  *Interner[S]
	views []InternView[S]
	// remap is the provisional → canonical map Reconcile returns,
	// allocated once with the group and cleared per round instead of
	// reallocated inside the per-view fold loop.
	remap map[uint64]uint64
}

// InternView is one shard's interning view: reads resolve against the
// frozen base first, misses are assigned provisional codes private to
// the view. A view must only be used by one goroutine per round.
type InternView[S comparable] struct {
	base  *Interner[S]
	tag   uint64
	codes map[S]uint64
	order []S
}

// ShardViews returns a group of k concurrent views over the base
// interner. While any view is in use the base must be quiescent: no
// Code calls on it, and no Reconcile.
func ShardViews[S comparable](in *Interner[S], k int) *InternGroup[S] {
	g := &InternGroup[S]{
		base:  in,
		views: make([]InternView[S], k),
		remap: make(map[uint64]uint64),
	}
	for i := range g.views {
		g.views[i] = InternView[S]{
			base:  in,
			tag:   internProvisionalBit | uint64(i)<<internProvisionalShift,
			codes: make(map[S]uint64),
		}
	}
	return g
}

// View returns shard i's view.
func (g *InternGroup[S]) View(i int) *InternView[S] { return &g.views[i] }

// Code returns the state's code: the canonical one when the base
// already interned it, the view's provisional one otherwise (assigning
// on first sight within the view). Both map reads use the zero-means-
// missing trick: base codes are stored +1, and provisional codes always
// carry the tag bit, so neither is ever zero.
func (v *InternView[S]) Code(s S) uint64 {
	if c := v.base.codes[s]; c != 0 {
		return c - 1
	}
	if c := v.codes[s]; c != 0 {
		return c
	}
	c := v.tag | uint64(len(v.order))
	v.codes[s] = c
	v.order = append(v.order, s)
	return c
}

// State resolves a code issued by the base or by this view. Codes from
// other views cannot reach a view by construction (shard results only
// mix at the serial merge, after Reconcile has rewritten them).
func (v *InternView[S]) State(c uint64) S {
	if c&internProvisionalBit != 0 {
		return v.order[c&internProvisionalMask]
	}
	return v.base.State(c)
}

// Reconcile folds every view's provisional states into the base
// interner — ascending shard order, then view-local discovery order —
// resets the views for the next round, and returns the
// provisional → canonical code remap (nil when no view assigned any).
// The returned map is owned by the group and reused: it is valid until
// the next Reconcile call, which the engine's use-immediately merge
// respects.
func (g *InternGroup[S]) Reconcile() map[uint64]uint64 {
	if len(g.remap) > 0 {
		clear(g.remap)
	}
	any := false
	for i := range g.views {
		v := &g.views[i]
		for k, s := range v.order {
			g.remap[v.tag|uint64(k)] = g.base.Code(s)
			any = true
		}
		if len(v.order) > 0 {
			clear(v.codes)
			v.order = v.order[:0]
		}
	}
	if !any {
		return nil
	}
	return g.remap
}

package exp

import (
	"fmt"
	"time"

	"popcount/internal/sim"
	"popcount/internal/stats"
)

// E22ShardScaling measures intra-run parallelism (sim.Config.Shards,
// countshard.go): one batched run of the composed Approximate protocol,
// its epochs sharded across independent per-block RNG streams that plan
// and resolve concurrently. The shards=1 row is the serial planner —
// the bit-reproducible compatibility mode — and the sharded rows show
// how far one run's wall clock drops as the shard count grows on a
// multi-core host. Trajectories depend on the shard count (each count
// lays out randomness differently) but never on GOMAXPROCS, so every
// counter column is machine-independent at a fixed shard count: the
// multicore CI gate runs this experiment pinned to one core and to all
// cores and requires identical counters with an interactions/sec ratio
// above its threshold.
func E22ShardScaling(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E22",
		Title: "intra-run shard scaling",
		Claim: "extension: sharding one batched run across cores preserves the trajectory distribution at machine-independent counters",
		Columns: []string{"protocol", "n", "shards", "trials", "conv",
			"T_C mean", "wall s/run", "interactions/s", "shard epochs", "conflicts", "steals"},
	}

	shardSweep := []int{1, 2, 4, 8}
	if o.Shards > 0 {
		shardSweep = []int{o.Shards}
	}

	type row struct {
		proto string
		n     int
	}
	var rows []row
	for _, n := range o.sizes([]int{1e6, 1e8}, []int{1 << 20}) {
		rows = append(rows, row{"approximate", n})
	}

	for _, rw := range rows {
		trials := 2
		if rw.n >= 1e7 || o.Quick {
			trials = 1
		}
		for _, shards := range shardSweep {
			var norms []float64
			var interactions, shardEpochs, conflicts, steals int64
			conv := 0
			start := time.Now()
			for tr := 0; tr < trials; tr++ {
				cfg := sim.Config{
					Seed:       sim.TrialSeed(o.Seed+uint64(rw.n), tr),
					CheckEvery: int64(rw.n) / 4,
					BatchSteps: true,
					Shards:     shards,
				}
				eng, err := sim.NewCountEngine(sim.NewSpecCount(protoSpec(rw.proto, rw.n)), cfg)
				if err != nil {
					panic(err) // configurations are static; an error is a programming bug
				}
				res, err := eng.RunToConvergence()
				if err != nil {
					panic(err)
				}
				st := eng.Stats()
				countEngineStats(st)
				shardEpochs += st.ShardEpochs
				conflicts += st.MergeConflicts
				steals += st.StealEvents
				interactions += res.Total
				if res.Converged {
					conv++
					norms = append(norms, float64(res.Interactions))
				}
			}
			wall := time.Since(start).Seconds() / float64(trials)
			countTrials(int64(trials), int64(conv), interactions)
			ips := float64(interactions) / (wall * float64(trials))
			tbl.AddRow(rw.proto, itoa(rw.n), itoa(shards), itoa(trials),
				pct(float64(conv)/float64(trials)), f1(stats.Mean(norms)),
				fmt.Sprintf("%.4g", wall), fmt.Sprintf("%.3g", ips),
				fmt.Sprintf("%d", shardEpochs), fmt.Sprintf("%d", conflicts), fmt.Sprintf("%d", steals))
		}
	}
	tbl.AddNote("shards=1 is the serial planner (bit-compatible with pre-sharding runs); " +
		"sharded rows change the randomness layout, so T_C agrees distributionally, not bit-for-bit")
	tbl.AddNote("shard epochs, conflicts and steals are functions of (protocol, seed, shards) only — " +
		"equal on any host at any GOMAXPROCS, which is what the multicore CI gate checks")
	return tbl
}

package exp

import (
	"popcount/internal/epidemic"
	"popcount/internal/rng"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// hermanRing is Herman-style token annihilation on a ring: every agent
// starts with a token, a token passes clockwise when the scheduler
// draws its holder as initiator with the clockwise neighbour as
// responder, and two tokens on the same agent annihilate. With an odd
// population the token parity is invariant, so exactly one token
// survives. Counterclockwise draws are no-ops: orientation matters,
// which is precisely what the graph schedulers add over the uniform
// model.
type hermanRing struct {
	token []bool
	left  int
}

func newHermanRing(n int) *hermanRing {
	t := make([]bool, n)
	for i := range t {
		t[i] = true
	}
	return &hermanRing{token: t, left: n}
}

func (h *hermanRing) N() int { return len(h.token) }

func (h *hermanRing) Interact(u, v int, _ *rng.Rand) {
	if v != (u+1)%len(h.token) || !h.token[u] {
		return
	}
	h.token[u] = false
	if h.token[v] {
		h.token[v] = false
		h.left -= 2
	} else {
		h.token[v] = true
	}
}

func (h *hermanRing) Converged() bool { return h.left == 1 }

// coverEpidemic is a symmetric epidemic with a coverage target: one
// seeded agent, either endpoint of an interaction informs the other,
// converged once goal agents are informed. The sub-full goal makes the
// spread time comparable across graphs — a power-law Kronecker graph
// keeps a small fraction of cold vertices out of the giant component,
// so full coverage would never arrive there while the clique reaches
// it trivially.
type coverEpidemic struct {
	informed []bool
	count    int
	goal     int
}

func newCoverEpidemic(n, goal int) *coverEpidemic {
	c := &coverEpidemic{informed: make([]bool, n), count: 1, goal: goal}
	c.informed[0] = true
	return c
}

func (c *coverEpidemic) N() int { return len(c.informed) }

func (c *coverEpidemic) Interact(u, v int, _ *rng.Rand) {
	switch {
	case c.informed[u] && !c.informed[v]:
		c.informed[v] = true
		c.count++
	case c.informed[v] && !c.informed[u]:
		c.informed[u] = true
		c.count++
	}
}

func (c *coverEpidemic) Converged() bool { return c.count >= c.goal }

// e24Initiator is the Kronecker initiator E24 samples from. The
// Graph500 initiator (0.57, 0.19, 0.19, 0.05) at edge factor 8 leaves
// a double-digit fraction of vertices isolated — no epidemic coverage
// target near n is reachable on it — so the experiment uses a milder
// power-law skew whose giant component covers >99% of vertices.
var e24Initiator = [4]float64{0.35, 0.25, 0.25, 0.15}

// E24GraphSchedulers validates the graph-restricted schedulers against
// known results: Herman-style token annihilation on the ring stabilizes
// in E[T_rounds] ≤ 0.64·N² (Bruna et al., arXiv:1504.01130, for the
// synchronous protocol — the asynchronous ring scheduler meets the same
// bound), and an epidemic on a power-law Kronecker graph spreads within
// a constant factor of the clique's n·ln n while ring and torus pay
// their diameters (cf. Łuczak & Tabor, arXiv:1603.05408). A final pair
// of rows runs the one-way single-source epidemic on the ring under
// both the agent engine and the count engine's exact boundary dynamics
// — the two must agree in distribution.
func E24GraphSchedulers(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E24",
		Title:   "graph-restricted schedulers",
		Claim:   "(beyond the paper) ring/torus/Kronecker interaction graphs: Herman ring bound E[T_rounds]/N² ≤ 0.64; Kronecker epidemic within a constant of the clique",
		Columns: []string{"protocol", "scheduler", "engine", "n", "trials", "converged", "norm T"},
	}

	// Part 1 — Herman ring bound. T is reported in rounds (n
	// interactions) normalized by N²; population must be odd for the
	// single-survivor invariant.
	hermanNs := o.sizes([]int{33, 65, 129}, []int{33})
	maxRatio := 0.0
	for _, n := range hermanNs {
		n = n | 1 // odd population: token parity leaves one survivor
		trials := o.trials(2)
		outs := runMany(func(int) sim.Protocol { return newHermanRing(n) },
			trials, sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism,
			withScheduler(func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} }))
		rounds := normTimes(outs, float64(n)) // interactions per round = n
		ratio := stats.Mean(rounds) / (float64(n) * float64(n))
		if ratio > maxRatio {
			maxRatio = ratio
		}
		tbl.AddRow("herman", "ring", "agent", itoa(n), itoa(trials),
			pct(convRate(outs)), f2(ratio))
	}
	tbl.AddNote("herman: norm T = E[T_rounds]/N², max %.2f vs the 0.64 bound (Bruna et al. 1504.01130)", maxRatio)

	// Part 2 — epidemic coverage across graphs. T/(n·ln n) per
	// scheduler; the clique (uniform) row is the baseline ratios are
	// taken against.
	type mk struct {
		name    string
		factory func() sim.Scheduler
	}
	scheds := []mk{
		{"uniform", func() sim.Scheduler { return sim.UniformScheduler{} }},
		{"ring", func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} }},
		{"torus", func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindTorus} }},
		{"kron:12", func() sim.Scheduler {
			return &sim.GraphScheduler{Kind: sim.GraphKindKron, K: 12, Initiator: e24Initiator}
		}},
	}
	ns := o.sizes([]int{1024, 4096}, []int{512})
	for _, n := range ns {
		goal := n * 95 / 100
		trials := o.trials(2)
		clique := 0.0
		for _, sc := range scheds {
			outs := runMany(func(int) sim.Protocol { return newCoverEpidemic(n, goal) },
				trials, sim.Config{Seed: o.Seed + uint64(2*n)}, o.Parallelism,
				withScheduler(sc.factory))
			norm := stats.Mean(normTimes(outs, nLogN(n)))
			if sc.name == "uniform" {
				clique = norm
			} else if sc.name == "kron:12" && clique > 0 {
				tbl.AddNote("epidemic n=%d: kron/clique spread ratio %.1f (Łuczak & Tabor 1603.05408: constant-factor on power-law graphs)", n, norm/clique)
			}
			tbl.AddRow("epidemic 95%", sc.name, "agent", itoa(n), itoa(trials),
				pct(convRate(outs)), f2(norm))
		}
	}

	// Part 3 — agent vs count engine on the ring. The one-way
	// single-source epidemic spec is RingExchangeable, so the count
	// engine's exact boundary dynamics must match the agent engine in
	// distribution; T/N² for full coverage.
	n := ns[0]
	trials := o.trials(2)
	agentOuts := runMany(func(int) sim.Protocol {
		return sim.NewSpecAgent(epidemic.NewSingleSourceSpec(n, true))
	}, trials, sim.Config{Seed: o.Seed + uint64(3*n)}, o.Parallelism,
		withScheduler(func() sim.Scheduler { return &sim.GraphScheduler{Kind: sim.GraphKindRing} }))
	agentNorm := stats.Mean(normTimes(agentOuts, float64(n)*float64(n)))
	tbl.AddRow("epidemic 1-way", "ring", "agent", itoa(n), itoa(trials),
		pct(convRate(agentOuts)), f2(agentNorm))

	var countTimes []float64
	conv := 0
	for i := 0; i < trials; i++ {
		res, err := sim.RunCount(sim.NewSpecCount(epidemic.NewSingleSourceSpec(n, true)),
			sim.Config{
				Seed:      sim.TrialSeed(o.Seed+uint64(3*n), i),
				Scheduler: &sim.GraphScheduler{Kind: sim.GraphKindRing},
			})
		if err != nil {
			panic(err)
		}
		if res.Converged {
			conv++
			countTimes = append(countTimes, float64(res.Interactions)/(float64(n)*float64(n)))
		}
	}
	countNorm := stats.Mean(countTimes)
	tbl.AddRow("epidemic 1-way", "ring", "count", itoa(n), itoa(trials),
		pct(float64(conv)/float64(trials)), f2(countNorm))
	tbl.AddNote("ring engines: count/agent mean-T ratio %.2f (exact boundary dynamics vs per-agent simulation)", countNorm/agentNorm)
	return tbl
}

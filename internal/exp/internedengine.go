package exp

import (
	"popcount/internal/sim"
)

// E23InternedThroughput measures the engine gap on the interned
// product-state protocols (Approximate and CountExact) at small to
// medium n — the regime where the agent array is still practical and
// the count forms used to trail it ~2× because every Delta call paid
// struct decode + rule + canonicalize + two interner lookups. The
// code-indexed successor memo (sim.DeltaMemo) collapses repeat
// resolutions to one integer-table probe, so the count and batched
// columns here gate the memo's reason to exist: interactions/s on the
// count engine roughly doubles against the pre-memo baseline while
// every deterministic counter (trials, interactions, delta calls,
// epochs) stays bit-identical — the memo may only change speed, never
// the trajectory.
func E23InternedThroughput(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E23",
		Title: "interned-protocol small-n throughput",
		Claim: "extension: code-indexed successor memoization closes the interner gap of the count engines",
		Columns: []string{"protocol", "engine", "n", "trials", "conv",
			"T_C mean", "wall s/run", "interactions/s"},
	}

	type row struct {
		proto   string
		engine  string
		n       int
		batched bool
	}
	var rows []row
	for _, n := range o.sizes([]int{1 << 12, 1 << 14}, []int{1 << 12}) {
		for _, proto := range []string{"approximate", "exact"} {
			rows = append(rows,
				row{proto, "agent", n, false},
				row{proto, "count", n, false},
				row{proto, "count-batched", n, true},
			)
		}
	}
	if !o.Quick && len(o.Sizes) == 0 {
		// The batched planner amortizes whole epochs, so it alone
		// stretches an interned protocol to the large-n edge of the
		// sweep; the sequential columns stay at small n where their
		// Θ(T_C) per-interaction loop is affordable. Approximate only:
		// CountExact discovers a product alphabet superlinear in n
		// (~136k interned codes already at n = 2¹²), so at 2²⁰ the
		// planner's occupied-pair work swamps the epochs it amortizes —
		// the same quadratic wall E18 documents for the exact backup,
		// hit here through the interner instead of the merge chain.
		rows = append(rows, row{"approximate", "count-batched", 1 << 20, true})
	}

	for _, rw := range rows {
		trials := o.trials(8)
		if rw.n >= 1<<20 {
			// The large-n appendix row prices amortization, not
			// variance; two trials keep the full sweep minutes long.
			trials = 2
		}
		// CheckEvery n (the cadence E18 uses for leader): the interned
		// predicates scan the occupied alphabet, and a tighter cadence
		// would measure the predicate, not the Delta path under test.
		cfg := sim.Config{Seed: o.Seed + uint64(rw.n), CheckEvery: int64(rw.n)}
		runEngineRows(&tbl, rw.proto, rw.engine, rw.n, trials, cfg, rw.batched)
	}
	tbl.AddNote("interned specs resolve Delta through the code-indexed successor memo (sim.DeltaMemo); " +
		"the memo changes wall clock only — all counters are bit-identical to unmemoized runs")
	tbl.AddNote("all counters are machine-independent functions of the seeds; " +
		"cmd/benchdiff gates them exactly and wall clock loosely")
	return tbl
}

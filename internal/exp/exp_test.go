package exp

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns options that make experiments run in test time.
func tiny() Options {
	return Options{Quick: true, Trials: 2, Parallelism: 4, Seed: 99}
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		ID:      "T0",
		Title:   "demo",
		Claim:   "c",
		Columns: []string{"a", "bbbb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.AddNote("n%d", 5)
	out := tbl.Format()
	for _, want := range []string{"T0 — demo", "paper: c", "a    bbbb", "333", "note: n5"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 10 || o.Parallelism != 4 || o.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Trials != 3 {
		t.Fatalf("quick trials = %d", q.Trials)
	}
	if got := o.trials(100); got != 2 {
		t.Fatalf("trials floor = %d", got)
	}
	if got := o.sizes([]int{1}, []int{2}); got[0] != 1 {
		t.Fatal("full sizes not selected")
	}
	if got := q.sizes([]int{1}, []int{2}); got[0] != 2 {
		t.Fatal("quick sizes not selected")
	}
	if got := (Options{Sizes: []int{7}}).sizes([]int{1}, []int{2}); got[0] != 7 {
		t.Fatal("size override ignored")
	}
}

func TestE1BroadcastTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{256, 512}
	tbl := E1Broadcast(o)
	if tbl.ID != "E1" || len(tbl.Rows) != 2 {
		t.Fatalf("unexpected table: %+v", tbl)
	}
	for _, row := range tbl.Rows {
		if row[2] != "100%" {
			t.Errorf("broadcast did not converge: %v", row)
		}
	}
}

func TestE2JuntaTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E2Junta(o)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	if tbl.Rows[0][7] != "100%" {
		t.Errorf("junta level outside Lemma 4 window: %v", tbl.Rows[0])
	}
}

func TestE6PowerOfTwoTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E6PowerOfTwo(o)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	if tbl.Rows[0][4] != "100%" {
		t.Errorf("underloaded case did not complete: %v", tbl.Rows[0])
	}
	if tbl.Rows[1][4] != "0%" {
		t.Errorf("overloaded case completed: %v", tbl.Rows[1])
	}
}

func TestCountExactSuiteTables(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	e10, e11, e12 := CountExactSuite(o)
	if e10.ID != "E10" || e11.ID != "E11" || e12.ID != "E12" {
		t.Fatal("wrong table ids")
	}
	if e11.Rows[0][2] != "100%" {
		t.Errorf("refinement not exact: %v", e11.Rows[0])
	}
	if e12.Rows[0][2] != "100%" {
		t.Errorf("CountExact not exact: %v", e12.Rows[0])
	}
}

func TestE8ApproximateTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E8Approximate(o)
	// A size override sweeps agent and count-batched columns per n.
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "100%" {
			t.Errorf("Approximate incorrect: %v", row)
		}
	}
}

func TestE13E14BackupTables(t *testing.T) {
	o := tiny()
	o.Sizes = []int{24}
	for _, row := range E13BackupApprox(o).Rows {
		// One row per engine column (agent, count, count-batched).
		if row[3] != "100%" {
			t.Errorf("approx backup failed: %v", row)
		}
	}
	o.Sizes = []int{32}
	for _, row := range E14BackupExact(o).Rows {
		if row[3] != "100%" {
			t.Errorf("exact backup failed: %v", row)
		}
	}
}

func TestA3FastLeaderRoundsTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := A3FastLeaderRounds(o)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// More rounds must never hurt uniqueness; the 4-round row should be
	// at 100% at this scale.
	if tbl.Rows[3][3] != "100%" {
		t.Errorf("4 rounds not unique: %v", tbl.Rows[3])
	}
}

func TestE16SchedulerRobustness(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E16SchedulerRobustness(o)
	// Three schedulers × two protocols, plus the two uniform count-engine
	// rows.
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// The uniform rows (paper's model) must be fully correct on both
	// engines.
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[1], "uniform") && row[4] != "100%" {
			t.Errorf("uniform scheduler row not fully correct: %v", row)
		}
	}
}

func TestE17Stabilization(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E17Stabilization(o)
	// Three protocols × two engine columns.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "100%" || row[5] != "100%" {
			t.Errorf("protocol not stable through the window: %v", row)
		}
	}
}

func TestFigures(t *testing.T) {
	o := tiny()
	o.Sizes = []int{256}
	figs := Figures(o)
	if len(figs) != 4 {
		t.Fatalf("figures: %d", len(figs))
	}
	for _, f := range figs {
		if len(f.T) == 0 || len(f.Y) != len(f.T) {
			t.Errorf("%s: empty or ragged series", f.ID)
		}
		csv := f.CSV()
		if !strings.Contains(csv, "interactions,") {
			t.Errorf("%s: CSV header missing", f.ID)
		}
	}
}

func TestF1ReachesFullInfection(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	f := F1EpidemicCurve(o)
	last := f.Y[len(f.Y)-1]
	if last[1] != 1 {
		t.Fatalf("epidemic did not finish: informed fraction %v", last[1])
	}
	// Monotone non-decreasing informed count.
	for i := 1; i < len(f.Y); i++ {
		if f.Y[i][0] < f.Y[i-1][0] {
			t.Fatalf("informed count decreased at %d", i)
		}
	}
}

func TestE3PhaseClockTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	tbl := E3PhaseClock(o)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] != "4/4" {
			t.Errorf("phase intervals invalid: %v", row)
		}
	}
}

func TestE4E5LeaderTables(t *testing.T) {
	o := tiny()
	o.Sizes = []int{512}
	if tbl := E4LeaderElect(o); tbl.Rows[0][2] != "100%" {
		t.Errorf("slow election not unique: %v", tbl.Rows[0])
	}
	if tbl := E5FastLeader(o); tbl.Rows[0][2] != "100%" {
		t.Errorf("fast election not unique: %v", tbl.Rows[0])
	}
}

func TestE7SearchTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{300}
	tbl := E7Search(o)
	if tbl.Rows[0][3] != "100%" {
		t.Errorf("search window violated: %v", tbl.Rows[0])
	}
}

func TestE9StableApproximateTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{128}
	tbl := E9StableApproximate(o)
	// Clean mode runs three engine columns, fault mode the agent column.
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "100%" {
			t.Errorf("stable run incorrect: %v", row)
		}
	}
	fault := tbl.Rows[len(tbl.Rows)-1]
	if fault[1] != "fault-injected" || fault[5] != "100%" {
		t.Errorf("fault not detected: %v", fault)
	}
}

func TestE15BaselinesTable(t *testing.T) {
	o := tiny()
	o.Sizes = []int{256}
	tbl := E15Baselines(o)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	if tbl.Rows[0][5] != "0.00" {
		t.Errorf("Approximate error nonzero: %v", tbl.Rows[0])
	}
}

func TestA1A2AblationTables(t *testing.T) {
	o := tiny()
	o.Sizes = []int{256}
	if tbl := A1ClockPeriod(o); len(tbl.Rows) != 4 {
		t.Fatalf("A1 rows: %d", len(tbl.Rows))
	}
	tbl := A2Shift(o)
	if len(tbl.Rows) != 5 {
		t.Fatalf("A2 rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "100%" {
			t.Errorf("A2 shift run inexact: %v", row)
		}
	}
}

func TestE24GraphSchedulers(t *testing.T) {
	tbl := E24GraphSchedulers(tiny())
	// One quick Herman size, four epidemic schedulers, and the
	// agent/count ring pair.
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "100%" {
			t.Errorf("row not fully converged: %v", row)
		}
	}
	// The Herman ratio must sit under the 0.64 bound with slack.
	herman, err := strconv.ParseFloat(tbl.Rows[0][6], 64)
	if err != nil || herman <= 0 || herman > 0.64 {
		t.Errorf("herman E[T_rounds]/N² = %v (err %v), want in (0, 0.64]", herman, err)
	}
	// The agent and count ring rows must agree within sampling noise.
	a, err1 := strconv.ParseFloat(tbl.Rows[5][6], 64)
	c, err2 := strconv.ParseFloat(tbl.Rows[6][6], 64)
	if err1 != nil || err2 != nil || a <= 0 || c/a > 1.5 || a/c > 1.5 {
		t.Errorf("ring engines disagree: agent %v count %v", a, c)
	}
}

package exp

import (
	"fmt"

	"popcount"
	"popcount/internal/clock"
	"popcount/internal/leader"
	"popcount/internal/sim"
	"popcount/internal/stats"
)

// E21FaultRecovery measures recovery from deterministic fault plans
// (popcount.WithFaults) in two regimes.
//
// Detect-and-restart: the convergence adversary waits for the first
// converged poll and corrupts n/8 agents back to fresh initial states.
// The counting protocols must re-converge — the stable hybrids
// additionally raise their error flag, whose propagation latency the
// engine records. Every protocol runs on all three engine forms under
// the same plan, so the rows double as a cross-engine conformance
// check: the schedule is identical, only the RNG consumption differs.
//
// Self-stabilization: the junta-driven phase clock runs under a
// sustained Poisson corruption stream and must keep converging anyway —
// its epidemics re-absorb corrupted agents indefinitely. Leader
// election instead takes repeated corruption bursts during the active
// tournament, which it absorbs; sustained corruption is deliberately
// excluded, because a fresh contender injected after the tournament has
// ended is never eliminated (self-stabilizing leader election is
// impossible in this model), and the experiment should demonstrate the
// recovery the protocol actually provides.
func E21FaultRecovery(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E21",
		Title: "fault recovery: detect-and-restart and self-stabilization",
		Claim: "robustness: stable hybrids detect post-convergence corruption and re-converge; the clock self-stabilizes under sustained corruption, leader election absorbs mid-tournament bursts",
		Columns: []string{"protocol", "engine", "n", "conv",
			"events", "recover T/(n ln n)", "err latency/(n ln n)"},
	}

	ns := o.sizes([]int{1 << 10}, []int{1 << 8})
	trials := o.trials(2)

	algs := []popcount.Algorithm{
		popcount.Approximate, popcount.CountExact,
		popcount.StableApproximate, popcount.StableCountExact,
	}
	engines := []popcount.EngineKind{
		popcount.EngineAgent, popcount.EngineCount, popcount.EngineCountBatched,
	}
	for _, n := range ns {
		plan := popcount.FaultPlan{
			Seed:            o.Seed ^ 0xfa171, // decorrelate from scheduler seeds
			Adversary:       popcount.AdversaryConvergence,
			AdversaryAgents: n / 8,
		}
		for _, alg := range algs {
			for _, engine := range engines {
				var conv int
				var events, total int64
				var recov, lat []float64
				for t := 0; t < trials; t++ {
					// Recovery from an adversarially corrupted configuration
					// is w.h.p., not certain — the stable guarantee covers
					// valid initial configurations, and a strike can (rarely)
					// land outside the recoverable set, wandering forever.
					// A bounded budget (~10× the largest observed recovery
					// window) makes such trials a reported non-convergence
					// instead of a 67M-interaction stall.
					s, err := popcount.NewSimulation(alg, n,
						popcount.WithSeed(o.Seed+uint64(t)+1),
						popcount.WithEngine(engine),
						popcount.WithMaxInteractions(int64(n)*20000),
						popcount.WithFaults(plan))
					if err != nil {
						panic(err)
					}
					res, err := s.RunToConvergence()
					if err != nil {
						panic(err)
					}
					total += res.Total
					st := s.Stats()
					events += st.FaultEvents
					if engine != popcount.EngineAgent {
						countEngineStats(sim.EngineStats{DeltaCalls: st.DeltaCalls, Epochs: st.Epochs})
					}
					if res.Converged {
						conv++
						recov = append(recov, float64(st.ReconvergeTotal)/nLogN(n))
					}
					if st.ErrorLatency >= 0 {
						lat = append(lat, float64(st.ErrorLatency)/nLogN(n))
					}
				}
				countTrials(int64(trials), int64(conv), total)
				latCell := "—"
				if len(lat) > 0 {
					latCell = f2(stats.Mean(lat))
				}
				tbl.AddRow(alg.String(), engine.String(), itoa(n),
					fmt.Sprintf("%d/%d", conv, trials), itoa(int(events)),
					f2(stats.Mean(recov)), latCell)
			}
		}

		// Self-stabilization of the building blocks. Corruption resets
		// victims to fresh initial states: for the clock a phase-0 agent
		// to re-absorb, for leader election a new contender the
		// tournament must eliminate. (Random occupied targets would not
		// self-stabilize: they can overwrite the last leader with a
		// follower code, which no rule ever undoes.) The clock takes a
		// sustained Poisson stream — one event per n/2 interactions
		// throughout the run. Leader election takes three bursts spread
		// across the active tournament instead: a contender injected
		// after the tournament has ended is never eliminated, so
		// sustained corruption would only demonstrate the known
		// impossibility of self-stabilizing leader election.
		blocks := []struct {
			name string
			mk   func(n int) *sim.Spec
			plan sim.FaultPlan
		}{
			{"clock", func(n int) *sim.Spec {
				return clock.NewSpec(n, clock.DefaultM, 2*sim.Log2Ceil(n), 6)
			}, sim.FaultPlan{
				Seed:          o.Seed ^ 0xfa172,
				CorruptRate:   2,
				CorruptAgents: n / 64,
			}},
			{"leader", func(n int) *sim.Spec {
				return leader.NewSpec(n, clock.DefaultM, 2*sim.Log2Ceil(n))
			}, sim.FaultPlan{
				Seed: o.Seed ^ 0xfa172,
				Bursts: []sim.FaultBurst{
					{At: int64(n) * 20, Agents: n / 64},
					{At: int64(n) * 80, Agents: n / 64},
					{At: int64(n) * 150, Agents: n / 64},
				},
			}},
		}
		for _, b := range blocks {
			var conv int
			var events, total int64
			var recov []float64
			for t := 0; t < trials; t++ {
				plan := b.plan
				cfg := sim.Config{
					Seed:            o.Seed + uint64(t) + 1,
					MaxInteractions: int64(n) * 20000,
					Faults:          &plan,
				}
				e, err := sim.NewEngine(sim.NewSpecAgent(b.mk(n)), cfg)
				if err != nil {
					panic(err)
				}
				res, err := e.RunToConvergence()
				if err != nil {
					panic(err)
				}
				total += res.Total
				fs := e.FaultStats()
				events += fs.Events
				if res.Converged {
					conv++
					recov = append(recov, float64(fs.ReconvergeTotal)/nLogN(n))
				}
			}
			countTrials(int64(trials), int64(conv), total)
			tbl.AddRow(b.name, "agent", itoa(n),
				fmt.Sprintf("%d/%d", conv, trials), itoa(int(events)),
				f2(stats.Mean(recov)), "—")
		}
	}

	tbl.AddNote("detect-and-restart: convergence adversary corrupts n/8 agents at the first converged poll; " +
		"recover T is the total reconvergence window, err latency the corruption→error-flag delay (stable hybrids only); " +
		"recovery is w.h.p. — a strike can land outside the recoverable set, so an occasional trial exhausts its 20000·n budget unconverged")
	tbl.AddNote("self-stabilization: corrupted agents reset to fresh initial states; the clock takes a sustained Poisson stream " +
		"(rate 2 per n interactions, n/64 agents) and must converge regardless, leader election takes three n/64-agent bursts " +
		"during the active tournament (a contender injected after the tournament ends is never eliminated — " +
		"self-stabilizing leader election is impossible, so only transient recovery is testable)")
	return tbl
}

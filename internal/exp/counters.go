package exp

import (
	"sync/atomic"

	"popcount/internal/sim"
)

// Package-level run counters: every trial the harness executes is
// tallied here, so cmd/popbench can report machine-readable
// per-experiment metrics (trials, convergence rate, interactions,
// interactions/sec) without each experiment carrying its own plumbing.
// Trials, Converged, Interactions, DeltaCalls and Epochs are
// deterministic functions of the experiment's seeds — machine class
// never changes them — which is what cmd/benchdiff's counter gate
// relies on. The counters are atomic — trials run concurrently.
var (
	ctrTrials         atomic.Int64
	ctrConverged      atomic.Int64
	ctrInteractions   atomic.Int64
	ctrDeltaCalls     atomic.Int64
	ctrEpochs         atomic.Int64
	ctrShardEpochs    atomic.Int64
	ctrShardBlocks    atomic.Int64
	ctrMergeConflicts atomic.Int64
	ctrStealEvents    atomic.Int64
)

// Counters is a snapshot of the run counters.
type Counters struct {
	// Trials is the number of protocol runs executed.
	Trials int64
	// Converged is the number of runs whose protocol converged.
	Converged int64
	// Interactions is the total number of interactions simulated.
	Interactions int64
	// DeltaCalls is the total number of transition-rule invocations on
	// count engines (zero for agent-engine experiments, whose
	// rule-invocation count is Interactions itself).
	DeltaCalls int64
	// Epochs is the total number of applied batch epochs.
	Epochs int64
	// ShardEpochs, ShardBlocks, MergeConflicts and StealEvents are the
	// sharded planner's counters (sim.Config.Shards ≥ 2), summed over
	// runs. Like the counters above they are deterministic in the seeds
	// and the shard count — never in GOMAXPROCS — so the multicore CI
	// gate compares them exactly across differently-pinned hosts.
	ShardEpochs    int64
	ShardBlocks    int64
	MergeConflicts int64
	StealEvents    int64
}

// ResetCounters zeroes the run counters. Call before an experiment to
// scope a CounterSnapshot to it.
func ResetCounters() {
	ctrTrials.Store(0)
	ctrConverged.Store(0)
	ctrInteractions.Store(0)
	ctrDeltaCalls.Store(0)
	ctrEpochs.Store(0)
	ctrShardEpochs.Store(0)
	ctrShardBlocks.Store(0)
	ctrMergeConflicts.Store(0)
	ctrStealEvents.Store(0)
}

// CounterSnapshot returns the counters accumulated since the last
// ResetCounters.
func CounterSnapshot() Counters {
	return Counters{
		Trials:         ctrTrials.Load(),
		Converged:      ctrConverged.Load(),
		Interactions:   ctrInteractions.Load(),
		DeltaCalls:     ctrDeltaCalls.Load(),
		Epochs:         ctrEpochs.Load(),
		ShardEpochs:    ctrShardEpochs.Load(),
		ShardBlocks:    ctrShardBlocks.Load(),
		MergeConflicts: ctrMergeConflicts.Load(),
		StealEvents:    ctrStealEvents.Load(),
	}
}

// countTrials tallies a batch of finished trials.
func countTrials(trials, converged, interactions int64) {
	ctrTrials.Add(trials)
	ctrConverged.Add(converged)
	ctrInteractions.Add(interactions)
}

// countEngineStats tallies one count-engine run's deterministic
// counters.
func countEngineStats(s sim.EngineStats) {
	ctrDeltaCalls.Add(s.DeltaCalls)
	ctrEpochs.Add(s.Epochs)
	ctrShardEpochs.Add(s.ShardEpochs)
	ctrShardBlocks.Add(s.ShardBlocks)
	ctrMergeConflicts.Add(s.MergeConflicts)
	ctrStealEvents.Add(s.StealEvents)
}

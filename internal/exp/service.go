package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"popcount/internal/service"
)

// E20Service measures the popcountd service layer end to end: jobs
// submitted over HTTP to an in-process daemon (real ServeMux, worker
// pool, state directory), per-size batches of the Approximate protocol
// on the count engine, and a second submission wave that must be
// answered from the content-addressed result cache byte-identically.
// The simulated interactions per row equal a direct engine run's — the
// service adds scheduling and I/O, not dynamics — so the counter gate
// (trials, interactions) holds exactly while the wall columns expose
// the HTTP + persistence overhead, which amortizes to noise at
// protocol scale.
func E20Service(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:    "E20",
		Title: "popcountd service throughput",
		Claim: "extension: simulation-as-a-service preserves engine dynamics exactly; identical requests dedup onto one cached result",
		Columns: []string{"n", "jobs", "conv", "interactions",
			"wall s", "jobs/s", "cache hits", "byte-identical"},
	}

	dir, err := os.MkdirTemp("", "popcountd-e20-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	srv, err := service.New(service.Config{Dir: dir, Workers: o.Parallelism})
	if err != nil {
		panic(err)
	}
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	jobs := o.trials(4)
	for _, n := range o.sizes([]int{1 << 10, 1 << 11, 1 << 12}, []int{1 << 8, 1 << 9}) {
		reqs := make([]service.JobRequest, jobs)
		for i := range reqs {
			reqs[i] = service.JobRequest{
				Algorithm: "approximate", N: n, Engine: "count",
				Seed: o.Seed + uint64(i) + 1,
			}
		}

		start := time.Now()
		ids := make([]string, jobs)
		for i, req := range reqs {
			ids[i] = submitJob(hs.URL, req)
		}
		var converged, interactions int64
		firstBytes := make([][]byte, jobs)
		for i, id := range ids {
			waitJobDone(hs.URL, id)
			firstBytes[i] = fetchResult(hs.URL, id)
			var doc service.ResultDoc
			if err := json.Unmarshal(firstBytes[i], &doc); err != nil {
				panic(err)
			}
			for _, tr := range doc.Trials {
				if tr.Converged {
					converged++
				}
				interactions += tr.Total
			}
		}
		wall := time.Since(start).Seconds()
		countTrials(int64(jobs), converged, interactions)

		// Second wave: every request must dedup onto the finished job and
		// serve the stored document verbatim.
		identical := 0
		for i, req := range reqs {
			if id := submitJob(hs.URL, req); id != ids[i] {
				panic(fmt.Sprintf("resubmission changed fingerprint: %s vs %s", id, ids[i]))
			}
			if bytes.Equal(fetchResult(hs.URL, ids[i]), firstBytes[i]) {
				identical++
			}
		}

		tbl.AddRow(itoa(n), itoa(jobs), fmt.Sprintf("%d/%d", converged, jobs),
			fmt.Sprintf("%d", interactions), f2(wall),
			f1(float64(jobs)/wall), itoa(jobs), fmt.Sprintf("%d/%d", identical, jobs))
	}
	tbl.AddNote("jobs run over live HTTP against an in-process popcountd (workers = parallelism); " +
		"interactions per row are deterministic in the seeds, exactly as a direct engine run")
	tbl.AddNote("the second submission wave is served from the content-addressed cache: " +
		"byte-identical documents, zero additional interactions")
	return tbl
}

// submitJob POSTs a job and returns its content-addressed id.
func submitJob(base string, req service.JobRequest) string {
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("submit: HTTP %d", resp.StatusCode))
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		panic(err)
	}
	return st.ID
}

// waitJobDone polls the status endpoint until the job is done.
func waitJobDone(base, id string) {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			panic(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			panic(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "cancelled":
			panic(fmt.Sprintf("job %s ended %s: %s", id, st.State, st.Error))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetchResult GETs a finished job's stored result document bytes.
func fetchResult(base, id string) []byte {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		panic(err)
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("result: HTTP %d: %s", resp.StatusCode, buf.String()))
	}
	return buf.Bytes()
}

package exp

import (
	"popcount/internal/core"
	"popcount/internal/sim"
)

// E16SchedulerRobustness probes the protocols beyond the paper's model:
// the analyses assume the uniform random scheduler, and this experiment
// measures what actually happens under (a) a mildly biased scheduler
// where one "chatty" agent initiates an extra 20% of all interactions
// and (b) a random-matching scheduler where every agent interacts
// exactly once per round. Neither is covered by the paper's w.h.p.
// claims — the point is to chart the protocols' practical robustness.
func E16SchedulerRobustness(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E16",
		Title:   "extension: scheduler robustness",
		Claim:   "(beyond the paper) the analyses assume the uniform scheduler; measured behaviour under perturbed schedulers",
		Columns: []string{"protocol", "scheduler", "n", "trials", "correct"},
	}
	ns := o.sizes([]int{1024, 4096}, []int{512})
	type mk struct {
		name    string
		factory func() sim.Scheduler
	}
	scheds := []mk{
		{"uniform", func() sim.Scheduler { return sim.UniformScheduler{} }},
		{"biased 20%", func() sim.Scheduler { return sim.BiasedScheduler{Hot: 0, Bias: 0.2} }},
		{"matching", func() sim.Scheduler { return sim.NewMatchingScheduler() }},
	}
	for _, n := range ns {
		for _, sc := range scheds {
			// Approximate.
			correct := 0
			trials := o.trials(4)
			outs := runManySched(func(int) sim.Protocol {
				return core.NewApproximate(core.Config{N: n})
			}, trials, sim.Config{Seed: o.Seed + uint64(n)}, o.Parallelism, sc.factory)
			lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
			for _, out := range outs {
				if !out.res.Converged {
					continue
				}
				if v := out.p.(*core.Approximate).Output(0); v == lo || v == hi {
					correct++
				}
			}
			tbl.AddRow("Approximate", sc.name, itoa(n), itoa(trials),
				pct(float64(correct)/float64(trials)))

			// CountExact.
			correct = 0
			outs = runManySched(func(int) sim.Protocol {
				return core.NewCountExact(core.Config{N: n})
			}, trials, sim.Config{Seed: o.Seed + uint64(2*n)}, o.Parallelism, sc.factory)
			for _, out := range outs {
				if out.res.Converged && out.p.(*core.CountExact).Output(0) == int64(n) {
					correct++
				}
			}
			tbl.AddRow("CountExact", sc.name, itoa(n), itoa(trials),
				pct(float64(correct)/float64(trials)))
		}

		// The count engine exists only under the paper's uniform model
		// (a biased or matching scheduler distinguishes agents, which
		// breaks the configuration view) — the uniform row is therefore
		// the one place a second engine column is meaningful, and it
		// must match the agent column's correctness.
		countCorrect := func(mkSpec func() *sim.Spec, want func(int64) bool) string {
			trials := o.trials(4)
			correct, conv := 0, 0
			var interactions int64
			cfg := sim.Config{Seed: o.Seed + uint64(3*n), CheckEvery: int64(n)}
			for _, r := range runSpecCells(func(int) *sim.Spec { return mkSpec() },
				"count", trials, o.Parallelism, cfg) {
				interactions += r.res.Total
				if r.res.Converged {
					conv++
					if out, ok := r.eng.PluralityOutput(); ok && want(out) {
						correct++
					}
				}
			}
			countTrials(int64(trials), int64(conv), interactions)
			return pct(float64(correct) / float64(trials))
		}
		lo, hi := int64(sim.Log2Floor(n)), int64(sim.Log2Ceil(n))
		tbl.AddRow("Approximate", "uniform × count engine", itoa(n), itoa(o.trials(4)),
			countCorrect(func() *sim.Spec { return core.NewApproximateSpec(core.Config{N: n}).Spec },
				func(v int64) bool { return v == lo || v == hi }))
		tbl.AddRow("CountExact", "uniform × count engine", itoa(n), itoa(o.trials(4)),
			countCorrect(func() *sim.Spec { return core.NewCountExactSpec(core.Config{N: n}).Spec },
				func(v int64) bool { return v == int64(n) }))
	}
	tbl.AddNote("the uniform rows are the paper's model; deviations on the others are expected and quantify robustness")
	tbl.AddNote("the count-engine rows run the same transition specs on the configuration view" +
		" (uniform scheduler only — the count engine rejects the others by construction)")
	return tbl
}

// runManySched is runMany with a fresh scheduler per trial (schedulers
// may be stateful).
func runManySched(factory func(trial int) sim.Protocol, trials int, cfg sim.Config,
	parallelism int, mkSched func() sim.Scheduler) []trialOut {
	return runMany(func(i int) sim.Protocol { return factory(i) }, trials, cfg, parallelism,
		withScheduler(mkSched))
}

// E17Stabilization separates convergence from stabilization (Section
// 1.1's T_C vs T_S): after first convergence the run continues for a
// confirmation window of 20·n·ln n interactions and verifies the desired
// configuration is never left.
func E17Stabilization(o Options) Table {
	o = o.withDefaults()
	tbl := Table{
		ID:      "E17",
		Title:   "extension: convergence vs stabilization (T_C vs T_S)",
		Claim:   "Section 1.1: a converged w.h.p. execution should not leave the desired configuration again",
		Columns: []string{"protocol", "engine", "n", "trials", "converged", "stable through window"},
	}
	ns := o.sizes([]int{1024, 4096}, []int{512})
	for _, n := range ns {
		window := int64(20 * nLogN(n))
		trials := o.trials(4)
		for _, c := range []struct {
			name   string
			spec   func() *sim.Spec
			engine string
		}{
			// Both engine columns of each protocol derive from one spec;
			// the count column uses the batched mode for Approximate
			// (whose exact count form pays a Delta per interaction over
			// the whole Θ(n log² n) run) and the exact count engine for
			// the cheaper Θ(n log n) protocols.
			{"Approximate", func() *sim.Spec { return core.NewApproximateSpec(core.Config{N: n}).Spec }, "agent"},
			{"Approximate", func() *sim.Spec { return core.NewApproximateSpec(core.Config{N: n}).Spec }, "count-batched"},
			{"CountExact", func() *sim.Spec { return core.NewCountExactSpec(core.Config{N: n}).Spec }, "agent"},
			{"CountExact", func() *sim.Spec { return core.NewCountExactSpec(core.Config{N: n}).Spec }, "count"},
			{"StableCountExact", func() *sim.Spec { return core.NewStableCountExactSpec(core.Config{N: n}, false).Spec }, "agent"},
			{"StableCountExact", func() *sim.Spec { return core.NewStableCountExactSpec(core.Config{N: n}, false).Spec }, "count"},
		} {
			conv, stable := 0, 0
			var interactions int64
			cfg := sim.Config{Seed: o.Seed + uint64(3*n),
				CheckEvery: int64(n), ConfirmWindow: window}
			for _, r := range runSpecCells(func(int) *sim.Spec { return c.spec() },
				c.engine, trials, o.Parallelism, cfg) {
				interactions += r.res.Total
				if r.res.Converged {
					conv++
				}
				if r.res.Stable && r.res.Converged {
					stable++
				}
			}
			countTrials(int64(trials), int64(conv), interactions)
			tbl.AddRow(c.name, c.engine, itoa(n), itoa(trials),
				pct(float64(conv)/float64(trials)), pct(float64(stable)/float64(trials)))
		}
	}
	tbl.AddNote("window: 20·n·ln n further interactions with the convergence predicate polled throughout")
	tbl.AddNote("both engine columns derive from one transition spec per protocol")
	return tbl
}

// Package exp defines the reproduction experiments E1–E15 and the
// ablations A1–A3 from DESIGN.md. The paper is a theory paper with no
// empirical tables or figures, so each experiment operationalizes one of
// its theorems or lemmas: the harness runs the protocols across a sweep
// of population sizes, normalizes measured interaction counts by the
// claimed asymptotic bounds, and reports correctness rates and state
// usage. EXPERIMENTS.md records the paper-claim vs. measured outcome of
// every table produced here.
package exp

import (
	"fmt"
	"math"
	"strings"

	"popcount/internal/sim"
	"popcount/internal/stats"
)

// Options controls an experiment run.
type Options struct {
	// Sizes overrides the experiment's default population-size sweep.
	Sizes []int
	// Trials is the number of independent trials per configuration
	// (default 10, heavy experiments reduce it).
	Trials int
	// Parallelism bounds concurrent trials (default 4).
	Parallelism int
	// Seed is the base seed; every (configuration, trial) derives a
	// distinct deterministic seed from it.
	Seed uint64
	// Quick shrinks sweeps and trial counts so the whole suite finishes
	// in benchmark-friendly time.
	Quick bool
	// Shards, when positive, pins the intra-run shard count of the
	// shard-aware experiments (E22) instead of their default sweep —
	// the multicore CI gate uses it to run the same sharded workload
	// under differently pinned GOMAXPROCS.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 10
		if o.Quick {
			o.Trials = 3
		}
	}
	if o.Parallelism == 0 {
		o.Parallelism = 4
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

// sizes returns the sweep for an experiment: the override if given,
// otherwise the quick or full default.
func (o Options) sizes(full, quick []int) []int {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	if o.Quick {
		return quick
	}
	return full
}

// trials returns the trial count, clamped by a per-experiment heaviness
// divisor.
func (o Options) trials(div int) int {
	t := o.Trials / div
	if t < 2 {
		t = 2
	}
	return t
}

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note (e.g. a fitted scaling exponent).
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// trialOut couples a finished protocol instance with its run result so
// experiments can read protocol-specific metrics after the run.
type trialOut struct {
	p   sim.Protocol
	res sim.Result
}

// runOpt customizes runMany.
type runOpt func(*runConfig)

type runConfig struct {
	mkSched func() sim.Scheduler
}

// withScheduler makes every trial run under a freshly built scheduler
// (schedulers may be stateful and must not be shared across trials).
func withScheduler(mk func() sim.Scheduler) runOpt {
	return func(rc *runConfig) { rc.mkSched = mk }
}

// runMany runs trials of factory-built protocols through the engine's
// shared trial driver (sim.RunTrials), with deterministic per-trial seeds
// derived from cfg.Seed.
func runMany(factory func(trial int) sim.Protocol, trials int, cfg sim.Config, parallelism int, opts ...runOpt) []trialOut {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	runs, err := sim.RunTrials(sim.Factory(factory), trials, cfg,
		sim.TrialOptions{Parallelism: parallelism, MakeScheduler: rc.mkSched})
	if err != nil {
		// Population sizes are validated by the factories; an error here
		// is a programming bug.
		panic(err)
	}
	out := make([]trialOut, len(runs))
	var converged, interactions int64
	for i, tr := range runs {
		out[i] = trialOut{p: tr.Protocol, res: tr.Result}
		if tr.Result.Converged {
			converged++
		}
		interactions += tr.Result.Total
	}
	countTrials(int64(len(runs)), converged, interactions)
	return out
}

// normTimes extracts Interactions/denom(n) for converged trials.
func normTimes(outs []trialOut, denom float64) []float64 {
	var xs []float64
	for _, o := range outs {
		if o.res.Converged {
			xs = append(xs, float64(o.res.Interactions)/denom)
		}
	}
	return xs
}

// convRate returns the fraction of converged trials.
func convRate(outs []trialOut) float64 {
	c := 0
	for _, o := range outs {
		if o.res.Converged {
			c++
		}
	}
	return float64(c) / float64(len(outs))
}

// meanInteractions averages the interaction counts of converged trials.
func meanInteractions(outs []trialOut) float64 {
	var xs []float64
	for _, o := range outs {
		if o.res.Converged {
			xs = append(xs, float64(o.res.Interactions))
		}
	}
	return stats.Mean(xs)
}

// nLogN returns n·ln n.
func nLogN(n int) float64 { return float64(n) * math.Log(float64(n)) }

// nLog2N returns n·ln² n.
func nLog2N(n int) float64 { l := math.Log(float64(n)); return float64(n) * l * l }

// n2LogN returns n²·ln n.
func n2LogN(n int) float64 { return float64(n) * float64(n) * math.Log(float64(n)) }

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string {
	if math.IsNaN(x) {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*x)
}
func itoa(n int) string { return fmt.Sprintf("%d", n) }

// fitNote appends a scaling-exponent note (T ∝ n^e) to tbl when the fit
// succeeds.
func fitNote(tbl *Table, ns []int, ts []float64, expect string) {
	if len(ns) < 2 || len(ns) != len(ts) {
		return
	}
	e, err := stats.ScalingExponent(ns, ts)
	if err != nil {
		return
	}
	tbl.AddNote("fitted exponent: T ∝ n^%.2f (expected %s)", e, expect)
}

// All runs the full reproduction suite and returns the tables in order.
// Experiments E10–E12 share a single set of CountExact runs.
func All(o Options) []Table {
	e10, e11, e12 := CountExactSuite(o)
	return []Table{
		E1Broadcast(o),
		E2Junta(o),
		E3PhaseClock(o),
		E4LeaderElect(o),
		E5FastLeader(o),
		E6PowerOfTwo(o),
		E7Search(o),
		E8Approximate(o),
		E9StableApproximate(o),
		e10,
		e11,
		e12,
		E13BackupApprox(o),
		E14BackupExact(o),
		E15Baselines(o),
		E16SchedulerRobustness(o),
		E17Stabilization(o),
		E18CountEngine(o),
		E19BatchedEngine(o),
		E20Service(o),
		E21FaultRecovery(o),
		E22ShardScaling(o),
		E23InternedThroughput(o),
		E24GraphSchedulers(o),
		A1ClockPeriod(o),
		A2Shift(o),
		A3FastLeaderRounds(o),
	}
}
